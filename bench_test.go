// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure plus the DESIGN.md ablations. Metrics that matter are
// reported via b.ReportMetric (virtual-time latencies, broadcast
// counts) — wall-clock ns/op measures simulator throughput, not the
// system under study. Run:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/oid"
	"repro/internal/placement"
	"repro/internal/wire"
)

// BenchmarkFigure2_E2E_vs_Controller regenerates Figure 2 at three
// sweep points and reports the headline metrics.
func BenchmarkFigure2_E2E_vs_Controller(b *testing.B) {
	var rows []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure2(experiments.Fig2Config{
			Seed:             int64(i + 1),
			AccessesPerPoint: 400,
			Points:           []int{0, 50, 90},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].E2EMeanUS, "e2e-0%new-µs")
	b.ReportMetric(rows[2].E2EMeanUS, "e2e-90%new-µs")
	b.ReportMetric(rows[2].ControllerMeanUS, "ctrl-90%new-µs")
	b.ReportMetric(rows[2].BroadcastsPer100, "bcast/100acc@90%")
}

// BenchmarkFigure3_StaleCache regenerates Figure 3 at three points.
func BenchmarkFigure3_StaleCache(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure3(experiments.Fig3Config{
			Seed:             int64(i + 1),
			AccessesPerPoint: 400,
			Points:           []int{0, 50, 90},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeanUS, "access-0%moved-µs")
	b.ReportMetric(rows[1].StddevUS, "sd-50%moved-µs")
	b.ReportMetric(rows[2].MeanUS, "access-90%moved-µs")
}

// BenchmarkCapacity_TableDensity regenerates the §3.2 switch numbers.
func BenchmarkCapacity_TableDensity(b *testing.B) {
	var rows []experiments.CapacityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Capacity()
	}
	b.ReportMetric(float64(rows[0].ModelCapacity), "entries-64bit")
	b.ReportMetric(float64(rows[1].ModelCapacity), "entries-128bit")
}

// BenchmarkRendezvous_Figure1 regenerates the strategy comparison.
func BenchmarkRendezvous_Figure1(b *testing.B) {
	var rows []experiments.RendezvousRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Rendezvous(experiments.RendezvousConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Strategy {
		case "manual-copy":
			b.ReportMetric(r.CompletionUS, "manual-µs")
		case "manual-copy-optimized":
			b.ReportMetric(r.CompletionUS, "optimized-µs")
		case "automatic-copy":
			b.ReportMetric(r.CompletionUS, "automatic-µs")
		case "dave-local":
			b.ReportMetric(r.CompletionUS, "dave-local-µs")
		}
	}
}

// BenchmarkSerialization_LoadPaths regenerates the §2/§3.1 comparison
// for one model size.
func BenchmarkSerialization_LoadPaths(b *testing.B) {
	var rows []experiments.SerializationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Serialization(experiments.SerializationConfig{
			Sizes:   []experiments.ModelShape{{Buckets: 2000, Dim: 32}},
			Repeats: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].DeserializeUS, "deserialize-µs")
	b.ReportMetric(rows[0].ByteCopyUS, "bytecopy-µs")
	b.ReportMetric(100*rows[0].LoadFractionBaseline, "loadfrac-baseline-%")
}

// BenchmarkAblationPrefetch_Traversal measures the A1 ablation.
func BenchmarkAblationPrefetch_Traversal(b *testing.B) {
	var rows []experiments.PrefetchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationPrefetch(experiments.PrefetchConfig{
			Seed:     int64(i + 1),
			ChainLen: 24,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TotalUS, "walk-nopf-µs")
	b.ReportMetric(rows[1].TotalUS, "walk-pf-µs")
}

// BenchmarkAblationLoss_Transport measures the A2 ablation.
func BenchmarkAblationLoss_Transport(b *testing.B) {
	var rows []experiments.LossRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationLoss(int64(i+1), 128<<10, []float64{0, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CompletionUS, "xfer-0%loss-µs")
	b.ReportMetric(rows[1].CompletionUS, "xfer-20%loss-µs")
	b.ReportMetric(float64(rows[1].Retransmits), "retransmits@20%")
}

// BenchmarkAblationHybrid_TableSaturation measures the A3 ablation.
func BenchmarkAblationHybrid_TableSaturation(b *testing.B) {
	var rows []experiments.HybridRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationHybrid(int64(i+1), 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Failures), "ctrl-failures")
	b.ReportMetric(float64(rows[1].Failures), "hybrid-failures")
	b.ReportMetric(rows[1].MeanUS, "hybrid-mean-µs")
}

// BenchmarkAblationNetSeq_Offload measures the A5 ablation.
func BenchmarkAblationNetSeq_Offload(b *testing.B) {
	var rows []experiments.SeqRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationNetSeq(int64(i+1), 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeanUS, "host-seq-µs")
	b.ReportMetric(rows[1].MeanUS, "switch-seq-µs")
}

// BenchmarkAblationOverlay_PrefixRouting measures the A6 ablation.
func BenchmarkAblationOverlay_PrefixRouting(b *testing.B) {
	var rows []experiments.OverlayRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationOverlay(int64(i+1), 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RulesPerSw, "exact-rules/sw")
	b.ReportMetric(rows[1].RulesPerSw, "overlay-rules/sw")
	b.ReportMetric(float64(rows[1].Successes), "overlay-successes")
}

// BenchmarkScaleTradeoff measures the E7 state-vs-traffic sweep.
func BenchmarkScaleTradeoff(b *testing.B) {
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ScaleTradeoff(experiments.ScaleConfig{
			Seed:       int64(i + 1),
			NodeCounts: []int{3, 27},
			Accesses:   100,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FabricFramesPerAccess, "e2e-frames/acc@3")
	b.ReportMetric(rows[2].FabricFramesPerAccess, "e2e-frames/acc@27")
	b.ReportMetric(float64(rows[3].ObjectRules), "ctrl-rules@27")
}

// BenchmarkAblationCRDT_Merge measures the A4 ablation.
func BenchmarkAblationCRDT_Merge(b *testing.B) {
	var rows []experiments.CRDTRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationCRDT(int64(i+1), 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Lost), "naive-lost")
	b.ReportMetric(float64(rows[1].Lost), "merge-lost")
}

// millionIDs is the shared 10^6-object ID population for the scale
// microbenchmarks, generated once per test binary.
var millionIDs = func() []oid.ID {
	gen := oid.NewSeededGenerator(42)
	ids := make([]oid.ID, 1_000_000)
	for i := range ids {
		ids[i] = gen.New()
	}
	return ids
}()

func benchStations(n int) []wire.StationID {
	sts := make([]wire.StationID, n)
	for i := range sts {
		sts[i] = wire.StationID(i + 1)
	}
	return sts
}

// BenchmarkSharder_Map measures shard→home resolution over 10^6
// object IDs — the operation every sharded-scheme access performs in
// place of a discovery broadcast or controller round trip. It must
// stay alloc-free: one allocation per lookup at a million objects is
// a gigabyte of garbage per generation.
func BenchmarkSharder_Map(b *testing.B) {
	s := placement.NewSharder(256, benchStations(104))
	ids := millionIDs
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = s.HomeOf(ids[0])
	}); allocs != 0 {
		b.Fatalf("Sharder.HomeOf allocates %.0f times per op, want 0", allocs)
	}
	b.ResetTimer()
	var sink wire.StationID
	for i := 0; i < b.N; i++ {
		sink ^= s.HomeOf(ids[i%len(ids)])
	}
	_ = sink
	b.ReportMetric(float64(s.Shards()), "shards")
}

// BenchmarkDirectory_Lookup measures sharer lookups against a
// directory tracking 10^6 objects, and pins the compact
// representation's per-object cost. Lookups must not allocate.
func BenchmarkDirectory_Lookup(b *testing.B) {
	d := coherence.NewDirectory()
	ids := millionIDs
	for i, id := range ids {
		d.Add(id, wire.StationID(i%64+1))
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = d.Sharers(ids[0])
		_, _ = d.Epoch(ids[0], 1)
	}); allocs != 0 {
		b.Fatalf("Directory lookup allocates %.0f times per op, want 0", allocs)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += d.Sharers(ids[i%len(ids)])
	}
	_ = sink
	b.ReportMetric(float64(d.Bytes())/float64(d.Len()), "bytes/object")
}

// BenchmarkFaultRecovery_Crash measures E8 recovery from a home-node
// fail-stop (replica promotion path).
func BenchmarkFaultRecovery_Crash(b *testing.B) {
	benchFaultClass(b, experiments.FaultCrash)
}

// BenchmarkFaultRecovery_LinkFlap measures E8 recovery from a 2ms
// link flap (retransmit-backoff path).
func BenchmarkFaultRecovery_LinkFlap(b *testing.B) {
	benchFaultClass(b, experiments.FaultFlap)
}

// BenchmarkFaultRecovery_TableWipe measures E8 recovery from a
// full switch-table wipe (controller repair / relearning path).
func BenchmarkFaultRecovery_TableWipe(b *testing.B) {
	benchFaultClass(b, experiments.FaultWipe)
}

func benchFaultClass(b *testing.B, class experiments.FaultClass) {
	b.Helper()
	var rows []experiments.FaultsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.FaultRecovery(experiments.FaultsConfig{
			Seed:     int64(i + 1),
			Accesses: 120,
			Classes:  []experiments.FaultClass{class},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.RecoveryUS, r.Scheme+"-recovery-µs")
		b.ReportMetric(r.FramesPerAccess, r.Scheme+"-frames/acc")
		b.ReportMetric(float64(r.Failures), r.Scheme+"-failed")
	}
}
