// KV store: the workload RPC is actually good at — and parity.
//
// §2 concedes that "RPC shines in situations where ... an RPC endpoint
// either fronts large data [or] large compute ... with small arguments
// and return values" — the fronted key-value store being the canonical
// case (§3.1 calls it "a fronted key-value store service").
//
// This example runs the same GET workload both ways over identical
// simulated hardware:
//
//	rpc:   classic location-centric service: GET(key) → value
//	refs:  a directory object maps keys to value-object references;
//	       clients read through references (bus-style loads)
//
// Both are ~1 round trip for cache-cold small values: the data-centric
// model subsumes the RPC sweet spot rather than regressing it.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/serde"
	"repro/internal/telemetry"
)

const (
	numKeys   = 64
	valueLen  = 128
	numReads  = 400
	seedValue = 9
)

func main() {
	fmt.Printf("GET workload: %d keys, %dB values, %d reads\n\n", numKeys, valueLen, numReads)
	for _, mode := range []string{"rpc", "refs"} {
		h := run(mode)
		s := h.Summarize()
		fmt.Printf("%-5s mean=%6.1fµs p50=%6.1fµs p99=%6.1fµs\n",
			mode, s.Mean, s.P50, s.P99)
	}
}

func value(k int) string {
	return fmt.Sprintf("value-%d-%0*d", k, valueLen-16, seedValue*k)
}

func run(mode string) *telemetry.Histogram {
	cluster, err := core.NewCluster(core.Config{Seed: 11, Scheme: core.SchemeE2E})
	if err != nil {
		log.Fatal(err)
	}
	client, server := cluster.Node(0), cluster.Node(1)

	// Server-side state for both modes.
	kv := make(map[string]string, numKeys)
	keys := make([]string, 0, numKeys)
	for i := 0; i < numKeys; i++ {
		k := fmt.Sprintf("key-%03d", i)
		kv[k] = value(i)
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// RPC mode: one service method.
	server.RPCServer.Register("kv.get", func(args []byte) ([]byte, error) {
		v, ok := kv[string(args)]
		if !ok {
			return nil, fmt.Errorf("no such key")
		}
		return []byte(v), nil
	})

	// Object mode: a directory object of (key, ref) pairs plus one
	// object per value. The client reads values *through references*
	// without a service API in the way — and could equally scan,
	// prefetch, or cache them, which the RPC surface cannot express
	// without new endpoints ("one need only look at the many S3 APIs
	// available", §3.1).
	valueRefs := make(map[string]object.Global, numKeys)
	for _, k := range keys {
		vo, err := server.CreateObject(2048)
		if err != nil {
			log.Fatal(err)
		}
		off, _ := vo.AllocString(kv[k])
		valueRefs[k] = object.Global{Obj: vo.ID(), Off: off}
	}
	cluster.Run()

	// Closed-loop reads, uniformly random keys.
	hist := telemetry.NewHistogram()
	rng := cluster.Sim.Rand()
	done := 0
	var issue func()
	issue = func() {
		if done >= numReads {
			return
		}
		done++
		k := keys[rng.Intn(len(keys))]
		start := cluster.Sim.Now()
		finish := func(got string, err error) {
			if err != nil {
				log.Fatal(err)
			}
			if got != kv[k] {
				log.Fatalf("wrong value for %s", k)
			}
			hist.Observe(float64(cluster.Sim.Now().Sub(start)) / float64(netsim.Microsecond))
			issue()
		}
		switch mode {
		case "rpc":
			client.RPCClient.Call(server.Station, "kv.get", []byte(k), func(res []byte, err error) {
				finish(string(res), err)
			})
		default:
			ref := valueRefs[k]
			// Length-prefixed string: read the 8-byte prefix plus the
			// value in one bus-style load.
			client.ReadRef(object.Global{Obj: ref.Obj, Off: ref.Off}, 8+len(kv[k]),
				func(b []byte, err error) {
					if err != nil {
						finish("", err)
						return
					}
					d := serde.NewDecoder(b)
					n := d.Uint64()
					finish(string(b[8:8+n]), d.Err())
				})
		}
	}
	issue()
	cluster.Run()
	return hist
}
