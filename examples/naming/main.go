// Naming: a name service that is just objects.
//
// Decoupled components need a way to find each other. Under RPC that
// is a discovery service or registry — more middleware (§1). In the
// global object space a name service needs no servers at all:
// directories are objects, entries hold first-class references, any
// node resolves by reading through references, and mutations are code
// invocations the system runs where the directory lives.
//
// Here a "publisher" node builds a model and binds it under
// /services/ml/scorer; a consumer on another node resolves the name
// and invokes inference on whatever the name points at — then the
// publisher hot-swaps the model behind the name and the consumer picks
// up the new version with no coordination.
//
//	go run ./examples/naming
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/namespace"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/serde"
)

func main() {
	cluster, err := core.NewCluster(core.Config{Seed: 5, Scheme: core.SchemeE2E})
	if err != nil {
		log.Fatal(err)
	}
	publisher, consumer := cluster.Node(1), cluster.Node(2)

	// The namespace root lives on node 0 — a neutral party.
	ns0, err := namespace.Create(cluster.Node(0))
	if err != nil {
		log.Fatal(err)
	}
	nsPub := namespace.Attach(publisher, ns0)
	nsCon := namespace.Attach(consumer, ns0)

	// Everyone can score a model object by reference.
	cluster.RegisterAll("score", func(ctx *core.ExecCtx) {
		ctx.Deref(ctx.Args[0], func(o *object.Object, err error) {
			if err != nil {
				ctx.Fail(err)
				return
			}
			v, err := model.LoadView(o)
			if err != nil {
				ctx.Fail(err)
				return
			}
			feats := v.Features()[:8]
			out := serde.NewEncoder(8)
			out.PutFloat64(v.Infer(feats))
			ctx.Return(out.Bytes())
		})
	})
	scoreCode, err := publisher.CreateCodeObject("score")
	if err != nil {
		log.Fatal(err)
	}

	// Publisher: build model v1, bind it under a path.
	mustRun(cluster, func(done func()) {
		nsPub.Mkdir("services", func(_ object.Global, err error) {
			check(err)
			nsPub.Mkdir("services/ml", func(_ object.Global, err error) {
				check(err)
				v1 := buildModel(cluster, publisher, 1)
				nsPub.Bind("services/ml/scorer", object.Global{Obj: v1}, func(err error) {
					check(err)
					done()
				})
			})
		})
	})
	fmt.Println("published: /services/ml/scorer (model v1 on publisher)")

	// Consumer: resolve the name, invoke over whatever it references.
	score := func(tag string) {
		mustRun(cluster, func(done func()) {
			nsCon.Resolve("services/ml/scorer", func(target object.Global, _ byte, err error) {
				check(err)
				consumer.Invoke(object.Global{Obj: scoreCode.ID()}, []object.Global{target},
					func(res core.InvokeResult, err error) {
						check(err)
						fmt.Printf("%s: score=%.4f (model object %s, executed at %v)\n",
							tag, serde.NewDecoder(res.Result).Float64(),
							target.Obj.Short(), res.Executor)
						done()
					},
					core.WithComputeWork(0.0005), core.WithResultSize(16))
			})
		})
	}
	score("consumer, v1")

	// Hot swap: the publisher rebinds the name to model v2. The
	// consumer re-resolves and transparently scores the new model.
	mustRun(cluster, func(done func()) {
		v2 := buildModel(cluster, publisher, 2)
		nsPub.Bind("services/ml/scorer", object.Global{Obj: v2}, func(err error) {
			check(err)
			done()
		})
	})
	fmt.Println("rebound:   /services/ml/scorer → model v2")
	score("consumer, v2")
}

func buildModel(cluster *core.Cluster, owner *core.Node, seed int64) oid.ID {
	m := model.NewRandom(seed, 256, 8)
	o, err := model.BuildObject(cluster.NewID(), m)
	check(err)
	check(owner.AdoptObject(o))
	return o.ID()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// mustRun drives fn to completion on the virtual clock.
func mustRun(cluster *core.Cluster, fn func(done func())) {
	finished := false
	fn(func() { finished = true })
	cluster.Run()
	if !finished {
		log.Fatal("workload stalled")
	}
}
