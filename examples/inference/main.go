// Inference: the paper's §2 motivating scenario, end to end.
//
// A sparse global model is partitioned across objects on cloud node
// Bob. Edge device Alice holds an activation and wants a
// classification:
//
//   - Bob is overloaded and Carol is idle, so the system rendezvouses
//     the code with the needed model shard at Carol (Figure 1, part 3);
//
//   - the root object's Foreign Object Table is a reachability graph,
//     so the prefetcher pulls shards ahead of use;
//
//   - Dave, a capable edge device with a cached shard, runs the same
//     invocation locally — "could not be realized via any RPC
//     mechanism" (§5).
//
//     go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/prefetch"
	"repro/internal/serde"
)

func main() {
	cluster, err := core.NewCluster(core.Config{
		Seed:           7,
		Scheme:         core.SchemeE2E,
		NumNodes:       4,
		EnablePrefetch: true,
		Prefetch:       prefetch.Config{MaxDepth: 1, MaxObjects: 16, BudgetBytes: 8 << 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	alice, bob, carol, dave := cluster.Node(0), cluster.Node(1), cluster.Node(2), cluster.Node(3)
	alice.SetLoadProfile(1, 0)     // modest edge device
	bob.SetLoadProfile(10, 0.95)   // cloud, overloaded (§2)
	carol.SetLoadProfile(10, 0.05) // cloud, mostly idle
	dave.SetLoadProfile(12, 0.9)   // powerful edge device (§5), busy for now

	// Build the sparse global model and partition it into shard
	// objects on Bob. The root object references every shard through
	// its FOT — the reachability graph the system can see.
	m := model.NewRandom(7, 4000, 32)
	parts, err := model.BuildPartitioned(cluster.Generator(), m, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := bob.AdoptObject(parts.Root); err != nil {
		log.Fatal(err)
	}
	for _, shard := range parts.Shards {
		if err := bob.AdoptObject(shard); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("model: %d buckets x %d dims, %d shards on Bob (root %s)\n",
		4000, 32, len(parts.Shards), parts.Root.ID().Short())

	// Alice's activation: a handful of feature IDs (small, by value).
	activation := m.Features()[100:132]
	want := m.Infer(activation)

	// The inference function every node carries: walk the partition
	// table, pull only the shards the activation touches, sum scores.
	for _, n := range cluster.Nodes {
		n.Registry.Register("sparse.infer", func(ctx *core.ExecCtx) {
			act := decodeActivation(ctx.Param)
			ctx.Deref(ctx.Args[0], func(root *object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				rv, err := model.LoadRootView(root)
				if err != nil {
					ctx.Fail(err)
					return
				}
				groups, err := rv.GroupByShard(act)
				if err != nil {
					ctx.Fail(err)
					return
				}
				var refs []object.Global
				var feats [][]uint64
				for id, fs := range groups {
					refs = append(refs, object.Global{Obj: id})
					feats = append(feats, fs)
				}
				ctx.DerefAll(refs, func(shards []*object.Object, err error) {
					if err != nil {
						ctx.Fail(err)
						return
					}
					total := 0.0
					for i, s := range shards {
						v, verr := model.LoadView(s)
						if verr != nil {
							ctx.Fail(verr)
							return
						}
						total += v.Infer(feats[i])
					}
					out := serde.NewEncoder(8)
					out.PutFloat64(total)
					ctx.Return(out.Bytes())
				})
			})
		})
	}

	code, err := alice.CreateCodeObject("sparse.infer", parts.Root.ID())
	if err != nil {
		log.Fatal(err)
	}
	codeRef := object.Global{Obj: code.ID()}
	rootRef := object.Global{Obj: parts.Root.ID()}

	// --- Scenario 1: Alice invokes; Bob overloaded → Carol executes.
	alice.Invoke(codeRef, []object.Global{rootRef},
		func(res core.InvokeResult, err error) {
			if err != nil {
				log.Fatal(err)
			}
			report("Alice's request", res, want, cluster)
		},
		core.WithParam(encodeActivation(activation)),
		core.WithComputeWork(0.01), core.WithResultSize(8))
	cluster.Run()

	// --- Scenario 2: same reference-based request from Dave, now
	// idle and holding a warmed cached copy — the system runs it
	// locally with zero data movement (elapsed simulated time ~0).
	dave.SetLoadProfile(12, 0)
	dave.Deref(rootRef, func(*object.Object, error) {})
	cluster.Run()
	dave.Invoke(codeRef, []object.Global{rootRef},
		func(res core.InvokeResult, err error) {
			if err != nil {
				log.Fatal(err)
			}
			report("Dave's request", res, want, cluster)
		},
		core.WithParam(encodeActivation(activation)),
		core.WithComputeWork(0.01), core.WithResultSize(8))
	cluster.Run()
}

func report(who string, res core.InvokeResult, want float64, cluster *core.Cluster) {
	got := serde.NewDecoder(res.Result).Float64()
	fmt.Printf("%-16s executor=%v elapsed=%v score=%.4f (expected %.4f)\n",
		who+":", res.Executor, res.Elapsed, got, want)
	if len(res.Decision.Candidates) > 0 {
		fmt.Printf("%-16s cost model ranked:", "")
		for _, c := range res.Decision.Candidates {
			fmt.Printf(" %v=%.1fms", c.Station, c.Total*1000)
		}
		fmt.Println()
	}
}

func encodeActivation(features []uint64) []byte {
	e := serde.NewEncoder(8 * (len(features) + 1))
	e.PutUvarint(uint64(len(features)))
	for _, f := range features {
		e.PutUvarint(f)
	}
	return e.Bytes()
}

func decodeActivation(raw []byte) []uint64 {
	d := serde.NewDecoder(raw)
	out := make([]uint64, d.Uvarint())
	for i := range out {
		out[i] = d.Uvarint()
	}
	return out
}
