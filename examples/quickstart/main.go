// Quickstart: the global object space in ~80 lines.
//
// Builds a simulated three-node cluster (the §4 topology), creates a
// data object with cross-machine references, and invokes a code
// reference over it — letting the system pick where code and data
// rendezvous.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/object"
)

func main() {
	// A cluster: 3 nodes behind 4 interconnected P4 switches, with
	// E2E (broadcast ARP-style) object discovery.
	cluster, err := core.NewCluster(core.Config{Seed: 1, Scheme: core.SchemeE2E})
	if err != nil {
		log.Fatal(err)
	}
	alice, bob := cluster.Node(0), cluster.Node(1)

	// Bob creates an object — a flat region in the 128-bit global
	// address space — and stores a greeting plus a *reference* to a
	// second object. References are first-class: they survive
	// movement between machines byte-for-byte.
	greetings, err := bob.CreateObject(4096)
	if err != nil {
		log.Fatal(err)
	}
	textOff, _ := greetings.AllocString("hello from the global address space")

	detail, err := bob.CreateObject(4096)
	if err != nil {
		log.Fatal(err)
	}
	detailOff, _ := detail.AllocString("reached through a cross-object pointer")
	refSlot, _ := greetings.Alloc(8, 8)
	if err := greetings.StoreRef(refSlot, detail.ID(), detailOff, object.FlagRead); err != nil {
		log.Fatal(err)
	}

	// Every node registers the same function under a symbol; a code
	// object names the symbol, making code itself addressable data.
	for _, n := range cluster.Nodes {
		n.Registry.Register("greet", func(ctx *core.ExecCtx) {
			ctx.Deref(ctx.Args[0], func(o *object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				text, _ := o.LoadString(textOff)
				// Follow the cross-object reference — the runtime
				// pulls the second object on demand.
				ref, _ := o.LoadRef(refSlot)
				ctx.Deref(ref, func(d *object.Object, err error) {
					if err != nil {
						ctx.Fail(err)
						return
					}
					more, _ := d.LoadString(ref.Off)
					ctx.Return([]byte(text + " / " + more))
				})
			})
		})
	}

	// Alice invokes the code reference over the data reference. She
	// names *what*, not *where*: the placement engine chooses the
	// executor from data location, load, and transfer costs.
	code, err := alice.CreateCodeObject("greet", greetings.ID())
	if err != nil {
		log.Fatal(err)
	}
	future := alice.InvokeFuture(
		object.Global{Obj: code.ID()},
		[]object.Global{{Obj: greetings.ID()}},
		core.WithComputeWork(0.0001), core.WithResultSize(128))

	// Await resolves the future on whichever backend the cluster runs:
	// under the simulator it pumps the virtual clock; over real sockets
	// (core.BackendRealnet) it blocks until the reply datagram lands.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := core.Await(ctx, cluster, future)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result:   %s\n", res.Result)
	fmt.Printf("executor: station %v (chosen by the system)\n", res.Executor)
	fmt.Printf("elapsed:  %v of simulated time\n", res.Elapsed)
}
