// Traversal: walking a remote linked data structure.
//
// §1 names "the invoker may wish to traverse a remote data structure"
// as a pattern RPC handles poorly: every hop is either a dedicated RPC
// round trip or bespoke server code. With first-class references the
// client just follows pointers, and the reachability-graph prefetcher
// (§3.1) hides the per-hop latency.
//
// Three ways to walk the same 48-node remote list:
//
//	rpc:        one "get node" RPC per hop (location-centric baseline)
//	refs:       dereference global pointers, prefetch off
//	refs+pf:    the same, with the FOT-driven prefetcher on
//
//	go run ./examples/traversal
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/prefetch"
)

const (
	chainLen  = 48
	valueSize = 2048
	thinkTime = 250 * netsim.Microsecond // per-hop application work
)

func main() {
	fmt.Printf("walking a %d-node linked structure on a remote host "+
		"(%.0fµs of app work per hop)\n\n", chainLen, float64(thinkTime)/1000)
	for _, mode := range []string{"rpc", "refs", "refs+pf"} {
		elapsed, sum := walk(mode)
		fmt.Printf("%-8s total=%9.1fµs per-hop=%6.1fµs checksum=%d\n",
			mode, elapsed.Microseconds(), elapsed.Microseconds()/chainLen, sum)
	}
}

// walk builds a fresh cluster, a chain on node 1, and traverses it
// from node 0, returning elapsed virtual time and a content checksum.
func walk(mode string) (netsim.Duration, uint64) {
	cluster, err := core.NewCluster(core.Config{
		Seed:           3,
		Scheme:         core.SchemeE2E,
		EnablePrefetch: mode == "refs+pf",
		Prefetch:       prefetch.Config{MaxDepth: 3, MaxObjects: 8, BudgetBytes: 4 << 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	client, server := cluster.Node(0), cluster.Node(1)

	// Build the chain: each node holds a value and a reference (or a
	// null pointer at the tail). The reference slot is the first
	// allocation, so every node looks the same.
	objs := make([]*object.Object, chainLen)
	var refSlot, valSlot uint64
	for i := range objs {
		o, err := server.CreateObject(valueSize + 512)
		if err != nil {
			log.Fatal(err)
		}
		objs[i] = o
	}
	for i, o := range objs {
		rs, _ := o.Alloc(8, 8)
		vs, _ := o.Alloc(8, 8)
		if i == 0 {
			refSlot, valSlot = rs, vs
		}
		o.PutUint64(vs, uint64(i)*uint64(i)+7)
		if i+1 < chainLen {
			o.StoreRef(rs, objs[i+1].ID(), 0, object.FlagRead)
		} else {
			o.PutPtr(rs, 0)
		}
	}
	// The RPC baseline: the server exposes a "get node by ID" method
	// returning (value, next-ID) — the shoehorned reference passing
	// of §2 ("we must shoehorn this functionality into the
	// application logic and the RPC's APIs").
	server.RPCServer.Register("list.get", func(args []byte) ([]byte, error) {
		id, err := oid.FromBytes(args)
		if err != nil {
			return nil, err
		}
		o, err := server.Store.Get(id)
		if err != nil {
			return nil, err
		}
		val, _ := o.Uint64(valSlot)
		next, _ := o.LoadRef(refSlot)
		out := make([]byte, 8+oid.Size)
		binary.BigEndian.PutUint64(out[:8], val)
		next.Obj.PutBytes(out[8:])
		return out, nil
	})
	cluster.Run()

	var sum uint64
	start := cluster.Sim.Now()
	end := start

	switch mode {
	case "rpc":
		var step func(id oid.ID)
		step = func(id oid.ID) {
			raw := id.Bytes()
			client.RPCClient.Call(server.Station, "list.get", raw[:], func(res []byte, err error) {
				if err != nil {
					log.Fatal(err)
				}
				sum += binary.BigEndian.Uint64(res[:8])
				next, _ := oid.FromBytes(res[8:])
				end = cluster.Sim.Now()
				if next.IsNil() {
					return
				}
				cluster.Sim.Schedule(thinkTime, func() { step(next) })
			})
		}
		step(objs[0].ID())
	default: // refs, refs+pf
		// Promise style: each hop's DerefFuture chains the next hop via
		// Then — following pointers reads like straight-line code.
		var step func(g object.Global)
		step = func(g object.Global) {
			client.DerefFuture(g).Then(func(o *object.Object, err error) {
				if err != nil {
					log.Fatal(err)
				}
				val, _ := o.Uint64(valSlot)
				sum += val
				next, _ := o.LoadRef(refSlot)
				end = cluster.Sim.Now()
				if next.IsNil() {
					return
				}
				cluster.Sim.Schedule(thinkTime, func() { step(next) })
			})
		}
		step(object.Global{Obj: objs[0].ID()})
	}
	cluster.Run()
	return end.Sub(start), sum
}
