// Pub/sub: forwarding decided by content, not addresses.
//
// Packet Subscriptions [17] is the mechanism the paper's prototype
// uses to make switches understand data identity (§3.2). This example
// uses it directly as an application surface: producers publish frames
// tagged with topic object-IDs; subscribers declare predicates over
// header fields; the compiler lowers the predicates into prioritized
// ternary rules in the switch, and the data plane — not any broker —
// routes each publication.
//
//	go run ./examples/pubsub
package main

import (
	"fmt"
	"log"

	"repro/internal/netsim"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/pubsub"
	"repro/internal/wire"
)

func main() {
	sim := netsim.NewSim(17)
	net := netsim.NewNetwork(sim)
	link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond, BitsPerSec: 10_000_000_000}

	// One switch; port 0 = producer, 1 = "alerts" subscriber,
	// 2 = "all telemetry" monitor.
	sw, err := p4sim.NewSwitch(net, "sw", 3, p4sim.SwitchConfig{})
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"producer", "alerts-subscriber", "monitor"}
	counts := make([]int, 3)
	hosts := make([]*netsim.Host, 3)
	for i := range hosts {
		h, err := netsim.NewHost(net, names[i])
		if err != nil {
			log.Fatal(err)
		}
		i := i
		h.OnFrame = func(fr netsim.Frame) {
			var hd wire.Header
			if hd.DecodeFrom(fr) == nil {
				counts[i]++
				fmt.Printf("  %-18s got %s on topic %s\n", names[i], hd.Type, hd.Object.Short())
			}
		}
		if err := net.Connect(h, 0, sw, i, link); err != nil {
			log.Fatal(err)
		}
		hosts[i] = h
	}

	// Topics are object IDs: a shared /32 prefix per topic family.
	gen := oid.NewSeededGenerator(17)
	alerts := oid.MakePrefix(oid.ID{Hi: 0xA1E7_0000_0000_0000}, 32)
	metrics := oid.MakePrefix(oid.ID{Hi: 0x3E7A_0000_0000_0000}, 32)

	// Subscriptions, most specific first by compilation:
	//   alerts-subscriber: everything under the alerts prefix;
	//   monitor: every publication (any MsgMem frame).
	engine := pubsub.NewEngine()
	mustSubscribe(engine, pubsub.And(
		pubsub.EqType(wire.MsgMem),
		pubsub.Prefix(wire.FieldObject, wire.ValueOfID(alerts.ID), 32),
	), p4sim.Action{Type: p4sim.ActForward, Port: 1})
	mustSubscribe(engine, pubsub.EqType(wire.MsgMem),
		p4sim.Action{Type: p4sim.ActForward, Port: 2})

	table, err := pubsub.NewFilterTable("subs", p4sim.TableConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.CompileTo(table); err != nil {
		log.Fatal(err)
	}
	sw.SetFilterTable(table)
	fmt.Printf("compiled %d subscriptions into %d switch rules\n\n",
		len(engine.Subscriptions()), table.Len())

	// Publish: two alerts, three metrics.
	publish := func(topic oid.Prefix, seq uint64) {
		h := wire.Header{
			Type: wire.MsgMem, Src: 1, Dst: 50, // content decides, not Dst
			Object: gen.NewInPrefix(topic), Seq: seq,
		}
		fr, err := wire.Encode(&h, []byte("event payload"))
		if err != nil {
			log.Fatal(err)
		}
		hosts[0].Send(fr)
	}
	publish(alerts, 1)
	publish(metrics, 2)
	publish(metrics, 3)
	publish(alerts, 4)
	publish(metrics, 5)
	sim.Run()

	fmt.Printf("\nalerts-subscriber received %d (want 2: only alert topics)\n", counts[1])
	fmt.Printf("monitor received           %d (want 3: the rest)\n", counts[2])
	fmt.Printf("switch filter hits         %d\n", sw.Counters().FilterHits)
}

func mustSubscribe(e *pubsub.Engine, p pubsub.Pred, act p4sim.Action) {
	if _, err := e.Subscribe(p, act); err != nil {
		log.Fatal(err)
	}
}
