// Package repro is a from-scratch Go reproduction of "Don't Let RPCs
// Constrain Your API" (Bittman et al., HotNets 2021): a data-centric
// alternative to RPC built on a global address space of 128-bit object
// identifiers, first-class cross-machine references, a network that
// routes on data identity, and system-chosen rendezvous of code and
// data.
//
// The public surface lives under internal/ (this module is a
// self-contained research artifact): internal/core is the runtime,
// internal/experiments regenerates every figure and table in the
// paper's evaluation, cmd/gaspbench prints them, and examples/ holds
// six runnable scenarios. See README.md for a tour, DESIGN.md for the
// system inventory and simulation substitutions, and EXPERIMENTS.md
// for paper-vs-measured results.
package repro
