package object

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/oid"
)

var gen = oid.NewSeededGenerator(99)

func newTestObject(t *testing.T, size int) *Object {
	t.Helper()
	o, err := New(gen.New(), size, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	if _, err := New(oid.Nil, 4096, 0); err == nil {
		t.Fatal("New accepted nil ID")
	}
	if _, err := New(gen.New(), 10, 0); err == nil {
		t.Fatal("New accepted size smaller than header+FOT")
	}
	if _, err := New(gen.New(), HeaderSize+FOTEntrySize*4, 4); err != nil {
		t.Fatalf("minimal object rejected: %v", err)
	}
	if _, err := New(gen.New(), 4096, MaxFOTIndex+1); err == nil {
		t.Fatal("New accepted FOT capacity beyond index width")
	}
}

func TestPtrEncoding(t *testing.T) {
	p := MustPtr(0x1234, 0x5678_9ABC_DEF0)
	if p.FOT() != 0x1234 {
		t.Fatalf("FOT() = %#x", p.FOT())
	}
	if p.Offset() != 0x5678_9ABC_DEF0 {
		t.Fatalf("Offset() = %#x", p.Offset())
	}
	if _, err := MakePtr(1, MaxOffset+1); err == nil {
		t.Fatal("MakePtr accepted 49-bit offset")
	}
	if !Ptr(0).IsNull() {
		t.Fatal("zero Ptr not null")
	}
	if MustPtr(0, 8).IsNull() {
		t.Fatal("non-zero Ptr reported null")
	}
}

func TestPropertyPtrRoundTrip(t *testing.T) {
	f := func(fot uint16, off uint64) bool {
		off &= MaxOffset
		p := MustPtr(fot, off)
		return p.FOT() == fot && p.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBasics(t *testing.T) {
	o := newTestObject(t, 8192)
	base := o.HeapBase()
	off1, err := o.Alloc(100, 0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off1 != base {
		t.Fatalf("first alloc at %#x, want heap base %#x", off1, base)
	}
	off2, err := o.Alloc(8, 8)
	if err != nil {
		t.Fatalf("Alloc aligned: %v", err)
	}
	if off2%8 != 0 {
		t.Fatalf("aligned alloc at %#x not 8-aligned", off2)
	}
	if off2 < off1+100 {
		t.Fatalf("allocations overlap: %#x after [%#x,+100)", off2, off1)
	}
}

func TestAllocExhaustion(t *testing.T) {
	o := newTestObject(t, HeaderSize+FOTEntrySize*DefaultFOTCap+64)
	if _, err := o.Alloc(64, 0); err != nil {
		t.Fatalf("Alloc within budget: %v", err)
	}
	if _, err := o.Alloc(1, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Alloc beyond budget: err = %v, want ErrNoSpace", err)
	}
	if o.Free() != 0 {
		t.Fatalf("Free() = %d, want 0", o.Free())
	}
}

func TestAllocBadAlignment(t *testing.T) {
	o := newTestObject(t, 4096)
	if _, err := o.Alloc(8, 3); err == nil {
		t.Fatal("Alloc accepted non-power-of-two alignment")
	}
	if _, err := o.Alloc(-1, 0); err == nil {
		t.Fatal("Alloc accepted negative size")
	}
}

func TestReadWrite(t *testing.T) {
	o := newTestObject(t, 4096)
	off, _ := o.Alloc(16, 8)
	want := []byte("hello, twizzler!")
	if err := o.WriteAt(off, want); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got, err := o.ReadAt(off, len(want))
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadAt = %q, want %q", got, want)
	}
	if _, err := o.ReadAt(uint64(o.Size())-4, 8); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := o.WriteAt(uint64(o.Size()), []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range write: %v", err)
	}
}

func TestScalarAccessors(t *testing.T) {
	o := newTestObject(t, 4096)
	off, _ := o.Alloc(32, 8)
	if err := o.PutUint64(off, 0xDEAD_BEEF_CAFE_F00D); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Uint64(off); v != 0xDEAD_BEEF_CAFE_F00D {
		t.Fatalf("Uint64 = %#x", v)
	}
	if err := o.PutUint32(off+8, 0x1234_5678); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Uint32(off + 8); v != 0x1234_5678 {
		t.Fatalf("Uint32 = %#x", v)
	}
	if err := o.PutFloat64(off+16, 3.25); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Float64(off + 16); v != 3.25 {
		t.Fatalf("Float64 = %v", v)
	}
}

func TestFOT(t *testing.T) {
	o := newTestObject(t, 8192)
	a, b := gen.New(), gen.New()
	i1, err := o.AddFOT(a, FlagRead)
	if err != nil {
		t.Fatalf("AddFOT: %v", err)
	}
	if i1 != 1 {
		t.Fatalf("first FOT index = %d, want 1", i1)
	}
	i2, _ := o.AddFOT(b, FlagRead|FlagWrite)
	if i2 != 2 {
		t.Fatalf("second FOT index = %d, want 2", i2)
	}
	// Dedup.
	again, _ := o.AddFOT(a, FlagRead)
	if again != i1 {
		t.Fatalf("duplicate AddFOT = %d, want %d", again, i1)
	}
	// Same target, different flags: new entry.
	i3, _ := o.AddFOT(a, FlagWrite)
	if i3 == i1 {
		t.Fatal("different flags deduplicated")
	}
	id, fl, err := o.FOTEntry(i2)
	if err != nil || id != b || fl != FlagRead|FlagWrite {
		t.Fatalf("FOTEntry(%d) = %v,%v,%v", i2, id, fl, err)
	}
	if _, _, err := o.FOTEntry(0); !errors.Is(err, ErrBadFOT) {
		t.Fatalf("FOTEntry(0): %v", err)
	}
	if _, _, err := o.FOTEntry(100); !errors.Is(err, ErrBadFOT) {
		t.Fatalf("FOTEntry(100): %v", err)
	}
	if _, err := o.AddFOT(oid.Nil, 0); !errors.Is(err, ErrBadFOT) {
		t.Fatalf("AddFOT(nil): %v", err)
	}
}

func TestFOTFull(t *testing.T) {
	o, err := New(gen.New(), HeaderSize+FOTEntrySize*2+64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddFOT(gen.New(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddFOT(gen.New(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddFOT(gen.New(), 0); !errors.Is(err, ErrFOTFull) {
		t.Fatalf("third entry in 2-cap FOT: %v", err)
	}
}

func TestStoreLoadRef(t *testing.T) {
	o := newTestObject(t, 8192)
	target := gen.New()
	slot, _ := o.Alloc(8, 8)
	if err := o.StoreRef(slot, target, 0x100, FlagRead); err != nil {
		t.Fatalf("StoreRef: %v", err)
	}
	g, err := o.LoadRef(slot)
	if err != nil {
		t.Fatalf("LoadRef: %v", err)
	}
	if g.Obj != target || g.Off != 0x100 {
		t.Fatalf("LoadRef = %v", g)
	}
	// Intra-object reference uses FOT index 0 and resolves to self.
	slot2, _ := o.Alloc(8, 8)
	if err := o.StoreRef(slot2, o.ID(), 0x40, 0); err != nil {
		t.Fatalf("StoreRef self: %v", err)
	}
	p, _ := o.GetPtr(slot2)
	if p.FOT() != 0 {
		t.Fatalf("self ref FOT index = %d, want 0", p.FOT())
	}
	g2, _ := o.LoadRef(slot2)
	if g2.Obj != o.ID() || g2.Off != 0x40 {
		t.Fatalf("self LoadRef = %v", g2)
	}
}

func TestResolveNullPtr(t *testing.T) {
	o := newTestObject(t, 4096)
	g, err := o.ResolvePtr(0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsNil() {
		t.Fatalf("null ptr resolved to %v", g)
	}
}

func TestReachable(t *testing.T) {
	o := newTestObject(t, 8192)
	a, b := gen.New(), gen.New()
	o.AddFOT(a, FlagRead)
	o.AddFOT(b, FlagRead)
	o.AddFOT(a, FlagWrite) // same target again under other flags
	r := o.Reachable()
	if len(r) != 2 {
		t.Fatalf("Reachable() = %d ids, want 2 (deduped)", len(r))
	}
	found := map[oid.ID]bool{}
	for _, id := range r {
		found[id] = true
	}
	if !found[a] || !found[b] {
		t.Fatalf("Reachable missing targets: %v", r)
	}
}

func TestByteCopyInvariance(t *testing.T) {
	// The core §3.1 claim: an object containing pointers survives a
	// byte-level copy with references intact.
	o := newTestObject(t, 8192)
	target := gen.New()
	slot, _ := o.Alloc(8, 8)
	o.StoreRef(slot, target, 0x2000, FlagRead)
	strOff, _ := o.AllocString("payload survives memcpy")

	moved, err := FromBytes(o.ID(), o.CloneBytes())
	if err != nil {
		t.Fatalf("FromBytes after byte copy: %v", err)
	}
	g, err := moved.LoadRef(slot)
	if err != nil || g.Obj != target || g.Off != 0x2000 {
		t.Fatalf("reference after copy = %v, %v", g, err)
	}
	s, err := moved.LoadString(strOff)
	if err != nil || s != "payload survives memcpy" {
		t.Fatalf("string after copy = %q, %v", s, err)
	}
	if moved.Checksum() != o.Checksum() {
		t.Fatal("checksum changed across byte copy")
	}
}

func TestFromBytesValidation(t *testing.T) {
	o := newTestObject(t, 4096)
	good := o.CloneBytes()

	if _, err := FromBytes(oid.Nil, good); err == nil {
		t.Error("FromBytes accepted nil ID")
	}
	if _, err := FromBytes(gen.New(), good[:10]); err == nil {
		t.Error("FromBytes accepted truncated buffer")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := FromBytes(gen.New(), bad); err == nil {
		t.Error("FromBytes accepted bad magic")
	}
	bad2 := append([]byte(nil), good...)
	bad2[4] = 99 // version
	if _, err := FromBytes(gen.New(), bad2); err == nil {
		t.Error("FromBytes accepted bad version")
	}
	bad3 := append([]byte(nil), good...)
	bad3 = append(bad3, 0) // size mismatch
	if _, err := FromBytes(gen.New(), bad3); err == nil {
		t.Error("FromBytes accepted size mismatch")
	}
}

func TestClone(t *testing.T) {
	o := newTestObject(t, 4096)
	off, _ := o.AllocString("original")
	nid := gen.New()
	c, err := o.Clone(nid)
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	if c.ID() != nid {
		t.Fatalf("clone ID = %v", c.ID())
	}
	// Mutating the clone must not touch the original.
	c.WriteAt(off+8, []byte("CLOBBER!"))
	s, _ := o.LoadString(off)
	if s != "original" {
		t.Fatalf("original mutated through clone: %q", s)
	}
}

func TestAllocBytesRoundTrip(t *testing.T) {
	o := newTestObject(t, 8192)
	payload := []byte{0, 1, 2, 3, 4, 255}
	off, err := o.AllocBytes(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.LoadBytes(off)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("LoadBytes = %v", got)
	}
	// Empty payload.
	off2, err := o.AllocBytes(nil)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := o.LoadBytes(off2)
	if err != nil || len(got2) != 0 {
		t.Fatalf("empty LoadBytes = %v, %v", got2, err)
	}
}

func TestPropertyAllocNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		o, err := New(gen.New(), 1<<20, 8)
		if err != nil {
			return false
		}
		type span struct{ off, n uint64 }
		var spans []span
		for _, s := range sizes {
			n := uint64(s%512) + 1
			off, err := o.Alloc(int(n), 8)
			if err != nil {
				break // exhaustion is fine
			}
			for _, sp := range spans {
				if off < sp.off+sp.n && sp.off < off+n {
					return false // overlap
				}
			}
			if off < o.HeapBase() || off+n > uint64(o.Size()) {
				return false
			}
			spans = append(spans, span{off, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStoreRefResolves(t *testing.T) {
	f := func(off uint64, hi, lo uint64) bool {
		if hi == 0 && lo == 0 {
			return true
		}
		o, err := New(gen.New(), 1<<16, 8)
		if err != nil {
			return false
		}
		slot, err := o.Alloc(8, 8)
		if err != nil {
			return false
		}
		target := oid.ID{Hi: hi, Lo: lo}
		off &= MaxOffset
		if err := o.StoreRef(slot, target, off, FlagRead); err != nil {
			return false
		}
		g, err := o.LoadRef(slot)
		return err == nil && g.Obj == target && g.Off == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkByteCopyLoad(b *testing.B) {
	o, _ := New(gen.New(), 1<<20, 64)
	raw := o.CloneBytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := make([]byte, len(raw))
		copy(buf, raw)
		if _, err := FromBytes(o.ID(), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreRef(b *testing.B) {
	o, _ := New(gen.New(), 1<<20, 1024)
	target := gen.New()
	slot, _ := o.Alloc(8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := o.StoreRef(slot, target, 64, FlagRead); err != nil {
			b.Fatal(err)
		}
	}
}
