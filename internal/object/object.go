// Package object implements the Twizzler-style object model the paper
// builds on (§3.1): an object is a flat region of memory identified by a
// 128-bit ID, acting as a pool where smaller data structures are placed.
//
// Cross-object references are encoded as 64-bit pointers that survive
// movement between hosts unchanged ("invariant pointers"): the pointer
// holds a 16-bit index into the object's Foreign Object Table (FOT) —
// a table at a known location inside the object listing the 128-bit IDs
// of every external object referenced — plus a 48-bit offset into the
// target. FOT index 0 is reserved for intra-object references.
//
// Because nothing in an object depends on the host it lives on, moving
// an object is a byte-level copy (§3.1 "Serialization"), and the FOT is
// a translucent reachability graph the system can use for prefetching.
package object

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/oid"
)

// Layout constants. All multi-byte fields are little-endian.
const (
	// Magic identifies a well-formed object header ("TWZO").
	Magic = 0x4F5A5754

	// LayoutVersion is the current header layout version.
	LayoutVersion = 1

	// HeaderSize is the fixed header at offset 0 of every object:
	//   [0:4)   magic
	//   [4:8)   layout version
	//   [8:16)  object size in bytes
	//   [16:24) allocation cursor (next free heap offset)
	//   [24:28) FOT length (entries used)
	//   [28:32) FOT capacity (entries)
	HeaderSize = 32

	// FOTEntrySize is the size of one Foreign Object Table entry:
	// 16-byte target ID followed by 8 bytes of flags.
	FOTEntrySize = 24

	// DefaultFOTCap is the FOT capacity used when the caller passes 0.
	DefaultFOTCap = 64

	// MaxFOTIndex is the largest usable FOT index (index 0 is the
	// reserved intra-object entry).
	MaxFOTIndex = 1<<16 - 1

	// MaxOffset is the largest encodable pointer offset (48 bits).
	MaxOffset = 1<<48 - 1
)

// Errors returned by object operations.
var (
	ErrBadObject  = errors.New("object: malformed object")
	ErrOutOfRange = errors.New("object: offset out of range")
	ErrNoSpace    = errors.New("object: allocation exceeds object size")
	ErrFOTFull    = errors.New("object: foreign object table full")
	ErrBadFOT     = errors.New("object: invalid FOT index")
	ErrBadPtr     = errors.New("object: invalid pointer")
)

// FOTFlags annotate a foreign-object reference.
type FOTFlags uint64

const (
	// FlagRead marks the reference as readable.
	FlagRead FOTFlags = 1 << iota
	// FlagWrite marks the reference as writable.
	FlagWrite
	// FlagExec marks the target as a code object (code mobility, §5).
	FlagExec
)

// Ptr is a 64-bit invariant pointer: the high 16 bits index the FOT of
// the containing object (0 = intra-object), the low 48 bits are a byte
// offset into the target object. The zero Ptr is the null pointer.
type Ptr uint64

// MakePtr builds a pointer from a FOT index and an offset.
func MakePtr(fot uint16, off uint64) (Ptr, error) {
	if off > MaxOffset {
		return 0, fmt.Errorf("%w: offset %#x exceeds 48 bits", ErrBadPtr, off)
	}
	return Ptr(uint64(fot)<<48 | off), nil
}

// MustPtr is MakePtr for statically valid inputs; it panics on error.
func MustPtr(fot uint16, off uint64) Ptr {
	p, err := MakePtr(fot, off)
	if err != nil {
		panic(err)
	}
	return p
}

// FOT returns the pointer's FOT index.
func (p Ptr) FOT() uint16 { return uint16(uint64(p) >> 48) }

// Offset returns the pointer's 48-bit offset.
func (p Ptr) Offset() uint64 { return uint64(p) & MaxOffset }

// IsNull reports whether p is the null pointer.
func (p Ptr) IsNull() bool { return p == 0 }

// String formats the pointer as "fot:offset".
func (p Ptr) String() string {
	return fmt.Sprintf("%d:%#x", p.FOT(), p.Offset())
}

// Global is a fully resolved reference: an object ID plus an offset.
// This is the form references take when they cross the OS/network
// boundary (the "common language for data and code references", §1).
type Global struct {
	Obj oid.ID
	Off uint64
}

// IsNil reports whether the reference points at no object.
func (g Global) IsNil() bool { return g.Obj.IsNil() }

// String formats the global reference.
func (g Global) String() string {
	return fmt.Sprintf("%s+%#x", g.Obj.Short(), g.Off)
}

// Object is a flat region of memory in the global address space. It is
// not safe for concurrent mutation; the per-host store serializes
// access.
type Object struct {
	id   oid.ID
	data []byte
}

// New creates an empty object of the given total size with a FOT of
// fotCap entries (DefaultFOTCap if 0). Size must cover the header and
// FOT.
func New(id oid.ID, size int, fotCap int) (*Object, error) {
	if id.IsNil() {
		return nil, fmt.Errorf("%w: nil ID", ErrBadObject)
	}
	if fotCap <= 0 {
		fotCap = DefaultFOTCap
	}
	if fotCap > MaxFOTIndex {
		return nil, fmt.Errorf("%w: FOT capacity %d exceeds %d", ErrBadObject, fotCap, MaxFOTIndex)
	}
	heapBase := HeaderSize + FOTEntrySize*fotCap
	if size < heapBase {
		return nil, fmt.Errorf("%w: size %d below minimum %d for %d FOT entries",
			ErrBadObject, size, heapBase, fotCap)
	}
	if uint64(size) > MaxOffset {
		return nil, fmt.Errorf("%w: size %d exceeds max offset", ErrBadObject, size)
	}
	o := &Object{id: id, data: make([]byte, size)}
	binary.LittleEndian.PutUint32(o.data[0:4], Magic)
	binary.LittleEndian.PutUint32(o.data[4:8], LayoutVersion)
	binary.LittleEndian.PutUint64(o.data[8:16], uint64(size))
	binary.LittleEndian.PutUint64(o.data[16:24], uint64(heapBase))
	binary.LittleEndian.PutUint32(o.data[24:28], 0)
	binary.LittleEndian.PutUint32(o.data[28:32], uint32(fotCap))
	return o, nil
}

// FromBytes adopts raw bytes as an object after validating the header.
// This is the byte-copy load path: no allocation walk, no pointer
// fixup — the buffer is used as-is.
func FromBytes(id oid.ID, data []byte) (*Object, error) {
	if id.IsNil() {
		return nil, fmt.Errorf("%w: nil ID", ErrBadObject)
	}
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than header", ErrBadObject, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadObject)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != LayoutVersion {
		return nil, fmt.Errorf("%w: unsupported layout version %d", ErrBadObject, v)
	}
	if sz := binary.LittleEndian.Uint64(data[8:16]); sz != uint64(len(data)) {
		return nil, fmt.Errorf("%w: header size %d != buffer size %d", ErrBadObject, sz, len(data))
	}
	o := &Object{id: id, data: data}
	fotCap := int(binary.LittleEndian.Uint32(data[28:32]))
	if HeaderSize+FOTEntrySize*fotCap > len(data) {
		return nil, fmt.Errorf("%w: FOT capacity %d overflows object", ErrBadObject, fotCap)
	}
	if int(o.fotLen()) > fotCap {
		return nil, fmt.Errorf("%w: FOT length exceeds capacity", ErrBadObject)
	}
	return o, nil
}

// ID returns the object's identifier.
func (o *Object) ID() oid.ID { return o.id }

// Size returns the object's total size in bytes.
func (o *Object) Size() int { return len(o.data) }

// Bytes returns the object's raw backing bytes. The slice aliases the
// object; callers that transmit it must copy (see CloneBytes).
func (o *Object) Bytes() []byte { return o.data }

// CloneBytes returns a copy of the raw bytes — the byte-level copy that
// moves an object between hosts.
func (o *Object) CloneBytes() []byte {
	c := make([]byte, len(o.data))
	copy(c, o.data)
	return c
}

// Clone produces an identical object under a new ID (used when the
// system replicates or forks objects during movement).
func (o *Object) Clone(newID oid.ID) (*Object, error) {
	return FromBytes(newID, o.CloneBytes())
}

func (o *Object) fotCap() uint32 { return binary.LittleEndian.Uint32(o.data[28:32]) }
func (o *Object) fotLen() uint32 { return binary.LittleEndian.Uint32(o.data[24:28]) }

// HeapBase returns the first offset usable for data.
func (o *Object) HeapBase() uint64 {
	return uint64(HeaderSize + FOTEntrySize*int(o.fotCap()))
}

// AllocCursor returns the next free heap offset.
func (o *Object) AllocCursor() uint64 {
	return binary.LittleEndian.Uint64(o.data[16:24])
}

// Alloc reserves n bytes in the object's heap aligned to align (a power
// of two; 0 or 1 for no alignment) and returns the offset.
func (o *Object) Alloc(n int, align int) (uint64, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: negative size", ErrNoSpace)
	}
	cur := o.AllocCursor()
	if align > 1 {
		a := uint64(align)
		if a&(a-1) != 0 {
			return 0, fmt.Errorf("object: alignment %d is not a power of two", align)
		}
		cur = (cur + a - 1) &^ (a - 1)
	}
	if cur+uint64(n) > uint64(len(o.data)) {
		return 0, fmt.Errorf("%w: need %d at %#x, object size %d", ErrNoSpace, n, cur, len(o.data))
	}
	binary.LittleEndian.PutUint64(o.data[16:24], cur+uint64(n))
	return cur, nil
}

// Free returns the number of unallocated heap bytes.
func (o *Object) Free() int {
	return len(o.data) - int(o.AllocCursor())
}

func (o *Object) check(off uint64, n int) error {
	if n < 0 || off > uint64(len(o.data)) || off+uint64(n) > uint64(len(o.data)) {
		return fmt.Errorf("%w: [%#x,+%d) in object of %d bytes", ErrOutOfRange, off, n, len(o.data))
	}
	return nil
}

// ReadAt returns a view of n bytes at off. The view aliases the object.
func (o *Object) ReadAt(off uint64, n int) ([]byte, error) {
	if err := o.check(off, n); err != nil {
		return nil, err
	}
	return o.data[off : off+uint64(n)], nil
}

// WriteAt copies b into the object at off.
func (o *Object) WriteAt(off uint64, b []byte) error {
	if err := o.check(off, len(b)); err != nil {
		return err
	}
	copy(o.data[off:], b)
	return nil
}

// Uint64 reads a little-endian uint64 at off.
func (o *Object) Uint64(off uint64) (uint64, error) {
	if err := o.check(off, 8); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(o.data[off:]), nil
}

// PutUint64 writes a little-endian uint64 at off.
func (o *Object) PutUint64(off uint64, v uint64) error {
	if err := o.check(off, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(o.data[off:], v)
	return nil
}

// Uint32 reads a little-endian uint32 at off.
func (o *Object) Uint32(off uint64) (uint32, error) {
	if err := o.check(off, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(o.data[off:]), nil
}

// PutUint32 writes a little-endian uint32 at off.
func (o *Object) PutUint32(off uint64, v uint32) error {
	if err := o.check(off, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(o.data[off:], v)
	return nil
}

// Float64 reads an IEEE-754 float64 at off.
func (o *Object) Float64(off uint64) (float64, error) {
	u, err := o.Uint64(off)
	return math.Float64frombits(u), err
}

// PutFloat64 writes an IEEE-754 float64 at off.
func (o *Object) PutFloat64(off uint64, v float64) error {
	return o.PutUint64(off, math.Float64bits(v))
}

// AddFOT registers a foreign object in the FOT and returns its index
// (>= 1). Identical (target, flags) entries are deduplicated.
func (o *Object) AddFOT(target oid.ID, flags FOTFlags) (uint16, error) {
	if target.IsNil() {
		return 0, fmt.Errorf("%w: nil target", ErrBadFOT)
	}
	n := o.fotLen()
	for i := uint32(0); i < n; i++ {
		id, fl, _ := o.FOTEntry(uint16(i + 1))
		if id == target && fl == flags {
			return uint16(i + 1), nil
		}
	}
	if n >= o.fotCap() {
		return 0, fmt.Errorf("%w: capacity %d", ErrFOTFull, o.fotCap())
	}
	base := HeaderSize + FOTEntrySize*int(n)
	target.PutBytes(o.data[base : base+oid.Size])
	binary.LittleEndian.PutUint64(o.data[base+oid.Size:base+FOTEntrySize], uint64(flags))
	binary.LittleEndian.PutUint32(o.data[24:28], n+1)
	return uint16(n + 1), nil
}

// FOTEntry returns the target and flags of FOT index idx (1-based).
func (o *Object) FOTEntry(idx uint16) (oid.ID, FOTFlags, error) {
	if idx == 0 || uint32(idx) > o.fotLen() {
		return oid.Nil, 0, fmt.Errorf("%w: index %d of %d", ErrBadFOT, idx, o.fotLen())
	}
	base := HeaderSize + FOTEntrySize*(int(idx)-1)
	id, err := oid.FromBytes(o.data[base : base+oid.Size])
	if err != nil {
		return oid.Nil, 0, err
	}
	flags := FOTFlags(binary.LittleEndian.Uint64(o.data[base+oid.Size : base+FOTEntrySize]))
	return id, flags, nil
}

// FOTLen returns the number of FOT entries in use.
func (o *Object) FOTLen() int { return int(o.fotLen()) }

// PutPtr writes pointer p at offset off.
func (o *Object) PutPtr(off uint64, p Ptr) error {
	return o.PutUint64(off, uint64(p))
}

// GetPtr reads a pointer at offset off.
func (o *Object) GetPtr(off uint64) (Ptr, error) {
	u, err := o.Uint64(off)
	return Ptr(u), err
}

// ResolvePtr turns an encoded pointer into a Global reference,
// resolving FOT index 0 to this object.
func (o *Object) ResolvePtr(p Ptr) (Global, error) {
	if p.IsNull() {
		return Global{}, nil
	}
	if p.FOT() == 0 {
		return Global{Obj: o.id, Off: p.Offset()}, nil
	}
	target, _, err := o.FOTEntry(p.FOT())
	if err != nil {
		return Global{}, err
	}
	return Global{Obj: target, Off: p.Offset()}, nil
}

// StoreRef writes a reference to (target, targetOff) at offset off,
// creating a FOT entry as needed. Intra-object references use index 0.
func (o *Object) StoreRef(off uint64, target oid.ID, targetOff uint64, flags FOTFlags) error {
	var idx uint16
	if target != o.id {
		var err error
		idx, err = o.AddFOT(target, flags)
		if err != nil {
			return err
		}
	}
	p, err := MakePtr(idx, targetOff)
	if err != nil {
		return err
	}
	return o.PutPtr(off, p)
}

// LoadRef reads the pointer at off and resolves it to a Global.
func (o *Object) LoadRef(off uint64) (Global, error) {
	p, err := o.GetPtr(off)
	if err != nil {
		return Global{}, err
	}
	return o.ResolvePtr(p)
}

// Reachable returns the IDs of every foreign object referenced by this
// object's FOT — the reachability graph edge set used for
// identity-based prefetching (§3.1).
func (o *Object) Reachable() []oid.ID {
	n := int(o.fotLen())
	out := make([]oid.ID, 0, n)
	seen := make(map[oid.ID]struct{}, n)
	for i := 1; i <= n; i++ {
		id, _, err := o.FOTEntry(uint16(i))
		if err != nil {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// Checksum returns a 64-bit FNV-1a checksum of the object's bytes,
// used by tests and the coherence layer to detect divergence.
func (o *Object) Checksum() uint64 {
	h := fnv.New64a()
	h.Write(o.data)
	return h.Sum64()
}

// AllocBytes allocates space for b (length-prefixed, 8-byte aligned)
// and copies it in, returning the offset of the length prefix. Read it
// back with LoadBytes.
func (o *Object) AllocBytes(b []byte) (uint64, error) {
	off, err := o.Alloc(8+len(b), 8)
	if err != nil {
		return 0, err
	}
	if err := o.PutUint64(off, uint64(len(b))); err != nil {
		return 0, err
	}
	if err := o.WriteAt(off+8, b); err != nil {
		return 0, err
	}
	return off, nil
}

// LoadBytes reads a length-prefixed byte slice written by AllocBytes.
// The returned slice aliases the object.
func (o *Object) LoadBytes(off uint64) ([]byte, error) {
	n, err := o.Uint64(off)
	if err != nil {
		return nil, err
	}
	return o.ReadAt(off+8, int(n))
}

// AllocString stores s via AllocBytes.
func (o *Object) AllocString(s string) (uint64, error) {
	return o.AllocBytes([]byte(s))
}

// LoadString reads a string written by AllocString.
func (o *Object) LoadString(off uint64) (string, error) {
	b, err := o.LoadBytes(off)
	return string(b), err
}
