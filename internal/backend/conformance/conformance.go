// Package conformance is the executable contract of backend.Link and
// backend.Clock: a test suite every backend implementation must pass,
// run by both internal/netsim and internal/realnet. It pins the
// properties the transport layer leans on — per-link FIFO delivery,
// SendBuf reference-count balance, and clock/timer monotonicity — so
// a new backend cannot silently weaken them.
package conformance

import (
	"encoding/binary"
	"sync/atomic"
	"testing"

	"repro/internal/backend"
	"repro/internal/wire"
)

// Fixture is one backend instance under test: two links wired
// together, plus backend-specific time progression and teardown.
type Fixture struct {
	// A and B are connected links; frames sent on A addressed to StB
	// arrive at B, and vice versa.
	A, B backend.Link
	// StA and StB are the wire stations of A and B.
	StA, StB wire.StationID
	// Settle lets the backend make progress for about d: the simulator
	// drains its event queue through d of virtual time; realnet sleeps
	// d of wall time while reader goroutines deliver.
	Settle func(d backend.Duration)
	// Close tears the fixture down (may be nil).
	Close func()
}

// Run executes the whole suite against fixtures built by mk. Each
// subtest gets a fresh fixture.
func Run(t *testing.T, mk func(t *testing.T) *Fixture) {
	t.Run("OrderedDelivery", func(t *testing.T) { testOrderedDelivery(t, mk(t)) })
	t.Run("RefcountBalance", func(t *testing.T) { testRefcountBalance(t, mk(t)) })
	t.Run("ClockMonotonic", func(t *testing.T) { testClockMonotonic(t, mk(t)) })
	t.Run("TimerFiresAndStops", func(t *testing.T) { testTimerFiresAndStops(t, mk(t)) })
	t.Run("MTUAgreement", func(t *testing.T) { testMTUAgreement(t, mk(t)) })
}

// RunBatched executes the batched-delivery contract against fixtures
// whose links implement backend.BatchLink and are configured to
// coalesce (netsim with batch delivery on, ring links). It pins what
// the doorbell path must preserve: per-link FIFO within and across
// batches, SendBuf refcount balance through the batch upcall, and
// that coalescing actually engages (otherwise the fixture is testing
// the per-frame path under a different name).
func RunBatched(t *testing.T, mk func(t *testing.T) *Fixture) {
	t.Run("BatchedFIFO", func(t *testing.T) { testBatchedFIFO(t, mk(t)) })
	t.Run("BatchedRefcountBalance", func(t *testing.T) { testBatchedRefcountBalance(t, mk(t)) })
}

// frame builds a minimal valid wire frame from src to dst whose
// payload carries seq (so receivers can check ordering without
// trusting header plumbing).
func frame(t *testing.T, src, dst wire.StationID, seq uint64) backend.Frame {
	t.Helper()
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], seq)
	fr, err := wire.Encode(&wire.Header{
		Type: wire.MsgMem, Src: src, Dst: dst, Seq: seq,
		PayloadLen: uint32(len(payload)),
	}, payload[:])
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return fr
}

// settleUntil settles in small steps until cond holds or the budget
// runs out; backends may deliver at very different speeds.
func settleUntil(fx *Fixture, cond func() bool) {
	const step = 2 * backend.Millisecond
	for i := 0; i < 500; i++ {
		var ok bool
		fx.A.Exec(func() { ok = cond() })
		if ok {
			return
		}
		fx.Settle(step)
	}
}

// testOrderedDelivery pins per-link FIFO: frames sent back-to-back on
// one link arrive at the peer complete and in send order. (The
// transport's cumulative-ack scheme assumes reordering is the rare
// case; both the simulator's queueing model and loopback UDP keep
// same-link frames in order.)
func testOrderedDelivery(t *testing.T, fx *Fixture) {
	if fx.Close != nil {
		defer fx.Close()
	}
	const n = 64
	var got []uint64
	fx.B.SetOnFrame(func(fr backend.Frame) {
		pl := wire.Payload(fr)
		if len(pl) < 8 {
			t.Errorf("short payload: %d bytes", len(pl))
			return
		}
		got = append(got, binary.BigEndian.Uint64(pl))
	})
	fx.A.Exec(func() {
		for i := uint64(0); i < n; i++ {
			fx.A.SendBuf(frame(t, fx.StA, fx.StB, i), nil)
		}
	})
	settleUntil(fx, func() bool { return len(got) >= n })

	var final []uint64
	fx.A.Exec(func() { final = append(final, got...) })
	if len(final) != n {
		t.Fatalf("delivered %d of %d frames", len(final), n)
	}
	for i, seq := range final {
		if seq != uint64(i) {
			t.Fatalf("frame %d arrived out of order: seq %d", i, seq)
		}
	}
}

// countBuf counts Retain/Release on a sent frame's buffer.
type countBuf struct {
	retains  atomic.Int64
	releases atomic.Int64
}

func (b *countBuf) Retain()  { b.retains.Add(1) }
func (b *countBuf) Release() { b.releases.Add(1) }

// testRefcountBalance pins SendBuf's ownership contract: each call
// consumes exactly one reference on buf — released after delivery or
// drop — plus one release per extra Retain the backend took. After
// quiescence, releases == sends + retains, whether the frame was
// deliverable (addressed to the peer) or not (unknown station).
func testRefcountBalance(t *testing.T, fx *Fixture) {
	if fx.Close != nil {
		defer fx.Close()
	}
	fx.B.SetOnFrame(func(backend.Frame) {})
	const deliverable, undeliverable = 32, 8
	buf := &countBuf{}
	fx.A.Exec(func() {
		for i := uint64(0); i < deliverable; i++ {
			fx.A.SendBuf(frame(t, fx.StA, fx.StB, i), buf)
		}
		for i := uint64(0); i < undeliverable; i++ {
			// Station 0x7eef is nobody; backends must still release.
			fx.A.SendBuf(frame(t, fx.StA, wire.StationID(0x7eef), i), buf)
		}
	})
	const sends = deliverable + undeliverable
	settleUntil(fx, func() bool {
		return buf.releases.Load() >= sends+buf.retains.Load()
	})
	if rel, want := buf.releases.Load(), sends+buf.retains.Load(); rel != want {
		t.Fatalf("refcount imbalance: %d sends + %d retains but %d releases",
			sends, buf.retains.Load(), rel)
	}
}

// testMTUAgreement pins the fragment-sizing contract: both ends of a
// link report the same MTU, and a nonzero MTU leaves usable payload
// room past the wire header. (Ring links must report their inner
// link's MTU, so a transfer's fragmentation is independent of
// co-residence; this subtest is what keeps that true.)
func testMTUAgreement(t *testing.T, fx *Fixture) {
	if fx.Close != nil {
		defer fx.Close()
	}
	ma, mb := fx.A.MTU(), fx.B.MTU()
	if ma != mb {
		t.Fatalf("MTU disagreement: A=%d B=%d", ma, mb)
	}
	if ma < 0 {
		t.Fatalf("negative MTU %d", ma)
	}
	if ma > 0 && ma < wire.HeaderSize+64 {
		t.Fatalf("MTU %d leaves no payload room past the %d-byte header", ma, wire.HeaderSize)
	}
}

// testBatchedFIFO pins ordering through the batch upcall: bursts of
// frames sent back-to-back arrive complete and in send order, both
// within one batch and across batch boundaries — and at least one
// delivered batch carries more than one frame, proving the fixture's
// coalescing is live rather than degenerating to singletons.
func testBatchedFIFO(t *testing.T, fx *Fixture) {
	if fx.Close != nil {
		defer fx.Close()
	}
	bl, ok := fx.B.(backend.BatchLink)
	if !ok {
		t.Fatalf("fixture link %T does not implement backend.BatchLink", fx.B)
	}
	const bursts, perBurst = 8, 8
	const n = bursts * perBurst
	var got []uint64
	var sizes []int
	bl.SetOnFrameBatch(func(frs []backend.Frame) {
		sizes = append(sizes, len(frs))
		for _, fr := range frs {
			pl := wire.Payload(fr)
			if len(pl) < 8 {
				t.Errorf("short payload: %d bytes", len(pl))
				return
			}
			got = append(got, binary.BigEndian.Uint64(pl))
		}
	})
	// Bursts land back-to-back so each one coalesces; the settle
	// between bursts forces batch boundaries, so the FIFO check spans
	// them.
	for burst := 0; burst < bursts; burst++ {
		base := uint64(burst * perBurst)
		fx.A.Exec(func() {
			for i := uint64(0); i < perBurst; i++ {
				fx.A.SendBuf(frame(t, fx.StA, fx.StB, base+i), nil)
			}
		})
		fx.Settle(backend.Millisecond)
	}
	settleUntil(fx, func() bool { return len(got) >= n })

	var final []uint64
	var finalSizes []int
	fx.A.Exec(func() {
		final = append(final, got...)
		finalSizes = append(finalSizes, sizes...)
	})
	if len(final) != n {
		t.Fatalf("delivered %d of %d frames", len(final), n)
	}
	for i, seq := range final {
		if seq != uint64(i) {
			t.Fatalf("frame %d arrived out of order: seq %d", i, seq)
		}
	}
	coalesced := false
	for _, s := range finalSizes {
		if s > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("no multi-frame batch in %d deliveries — coalescing never engaged", len(finalSizes))
	}
}

// testBatchedRefcountBalance pins SendBuf's ownership contract through
// the batch path: with a batch upcall installed, each send still
// consumes exactly one reference — released after the batch upcall
// returns, or on drop — so releases == sends + retains at quiescence.
func testBatchedRefcountBalance(t *testing.T, fx *Fixture) {
	if fx.Close != nil {
		defer fx.Close()
	}
	bl, ok := fx.B.(backend.BatchLink)
	if !ok {
		t.Fatalf("fixture link %T does not implement backend.BatchLink", fx.B)
	}
	bl.SetOnFrameBatch(func([]backend.Frame) {})
	const deliverable, undeliverable = 32, 8
	buf := &countBuf{}
	fx.A.Exec(func() {
		for i := uint64(0); i < deliverable; i++ {
			fx.A.SendBuf(frame(t, fx.StA, fx.StB, i), buf)
		}
		for i := uint64(0); i < undeliverable; i++ {
			// Station 0x7eef is nobody; backends must still release.
			fx.A.SendBuf(frame(t, fx.StA, wire.StationID(0x7eef), i), buf)
		}
	})
	const sends = deliverable + undeliverable
	settleUntil(fx, func() bool {
		return buf.releases.Load() >= sends+buf.retains.Load()
	})
	if rel, want := buf.releases.Load(), sends+buf.retains.Load(); rel != want {
		t.Fatalf("refcount imbalance through batch path: %d sends + %d retains but %d releases",
			sends, buf.retains.Load(), rel)
	}
}

// testClockMonotonic pins that Now never runs backwards, including
// across timer callbacks and Settle boundaries.
func testClockMonotonic(t *testing.T, fx *Fixture) {
	if fx.Close != nil {
		defer fx.Close()
	}
	clock := fx.A.Clock()
	var last backend.Time
	fx.A.Exec(func() { last = clock.Now() })
	check := func(where string) {
		now := clock.Now()
		if now < last {
			t.Errorf("%s: clock ran backwards: %v after %v", where, now, last)
		}
		last = now
	}
	fired := 0
	fx.A.Exec(func() {
		for i := 1; i <= 5; i++ {
			clock.AfterFunc(backend.Duration(i)*backend.Millisecond, func() {
				check("timer callback")
				fired++
			})
		}
	})
	settleUntil(fx, func() bool { return fired >= 5 })
	fx.A.Exec(func() { check("after settle") })
	if fired != 5 {
		t.Fatalf("fired %d of 5 timers", fired)
	}
}

// testTimerFiresAndStops pins AfterFunc semantics: a timer fires no
// earlier than its delay, Stop before firing prevents the callback
// and returns true, and Stop after firing returns false.
func testTimerFiresAndStops(t *testing.T, fx *Fixture) {
	if fx.Close != nil {
		defer fx.Close()
	}
	clock := fx.A.Clock()
	const delay = 5 * backend.Millisecond

	var start, firedAt backend.Time
	var fired, stoppedFired bool
	var stopped backend.Timer
	fx.A.Exec(func() {
		start = clock.Now()
		clock.AfterFunc(delay, func() {
			fired = true
			firedAt = clock.Now()
		})
		stopped = clock.AfterFunc(delay, func() { stoppedFired = true })
		if !stopped.Stop() {
			t.Error("Stop before firing returned false")
		}
	})
	settleUntil(fx, func() bool { return fired })
	fx.A.Exec(func() {
		if !fired {
			t.Fatal("timer never fired")
		}
		if elapsed := firedAt.Sub(start); elapsed < delay {
			t.Errorf("timer fired after %v, before its %v delay", elapsed, delay)
		}
		if stoppedFired {
			t.Error("stopped timer fired anyway")
		}
		if stopped.Stop() {
			t.Error("second Stop returned true")
		}
	})
}
