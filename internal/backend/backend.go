// Package backend defines the seam between the protocol stack and the
// machinery that moves its frames and fires its timers. Everything
// above this package — transport, coherence, discovery, the dataplane
// mux, the workload generator — is written against two small
// interfaces:
//
//   - Clock: now/schedule/after on some notion of time;
//   - Link: a node's NIC — send a frame, receive frames, and an
//     execution context that serializes upcalls.
//
// Two implementations exist. internal/netsim provides both on a
// deterministic discrete-event simulation (virtual time, synchronous
// single-threaded delivery — every run is bit-identical per seed).
// internal/realnet provides them on wall time and per-node UDP
// sockets with reader goroutines — same stack, real kernel path, real
// scheduling jitter, real backpressure.
//
// The paper's claim is that the API, not the transport, defines the
// system; this package is that claim made structural. Nothing above
// the seam may import netsim or the time package's clock — a check
// script (scripts/checkseam.sh) gates it in CI.
package backend

import "fmt"

// Time is a timestamp in nanoseconds: virtual (since simulation
// start) under netsim, wall (since cluster start) under realnet.
type Time int64

// Duration is a span of time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add offsets a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration between two Times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds returns d in (possibly fractional) microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration in microseconds for harness output.
func (d Duration) String() string { return fmt.Sprintf("%.2fµs", d.Microseconds()) }

// Frame is a raw layer-2 frame. Frames cross the backend as bytes —
// receivers must parse them — so serialization costs are honest.
//
// Frames pass through a backend zero-copy where it can manage it:
// once handed to SendBuf the bytes are shared by every in-flight hop
// and must not be mutated. Receivers borrow the frame for the
// duration of the upcall; anything kept longer must be copied (or
// retained, for pooled frames — see FrameBuffer).
type Frame []byte

// FrameBuffer is implemented by recyclable frame buffers (see
// internal/dataplane). SendBuf consumes one reference per call: the
// backend releases it when the frame is dropped, or after the final
// delivery upcall returns (netsim), or once the kernel has copied the
// bytes out (realnet), so a buffer returns to its pool only after its
// last use.
type FrameBuffer interface {
	Retain()
	Release()
}

// Timer is a cancellable scheduled callback.
type Timer interface {
	// Stop cancels the timer; the callback will not run. It reports
	// whether the call prevented a future firing. Stop is safe to
	// call from inside an upcall (it takes no backend locks).
	Stop() bool
}

// ResettableTimer is optionally implemented by timers that can be
// re-armed in place. Reset reschedules the callback to fire after d,
// whether or not the timer already fired or was stopped, and reports
// whether the call rescheduled a timer that was still pending. A
// reused timer must have a single owner: handing the Timer to other
// holders and then Resetting it would revive their stale Stop
// semantics.
type ResettableTimer interface {
	Timer
	Reset(d Duration) bool
}

// ResetTimer re-arms t to fire fn after d when t supports in-place
// reset, and otherwise stops it and arms a fresh timer on c. Hot paths
// that re-arm one timer per operation (retransmit, request timeout)
// go through this helper so the steady state allocates no timers on
// backends with resettable ones.
func ResetTimer(c Clock, t Timer, d Duration, fn func()) Timer {
	if rt, ok := t.(ResettableTimer); ok {
		rt.Reset(d)
		return rt
	}
	if t != nil {
		t.Stop()
	}
	return c.AfterFunc(d, fn)
}

// Clock is the time source and timer wheel a node runs on.
//
// Callbacks scheduled on a node's clock run serialized with that
// node's frame upcalls: under netsim because the whole simulation is
// single-threaded, under realnet because the backend wraps every
// callback in the cluster's upcall lock. Code above the seam may
// therefore mutate node state from timers without further locking —
// the same single-threaded model the simulator always provided.
type Clock interface {
	// Now returns the current time.
	Now() Time
	// Schedule runs fn after d elapses (d <= 0 means as soon as
	// possible, strictly after the current upcall returns under
	// netsim; best-effort immediately under realnet).
	Schedule(d Duration, fn func())
	// AfterFunc schedules fn after d and returns a Timer that can
	// cancel it.
	AfterFunc(d Duration, fn func()) Timer
}

// DaemonClock is optionally implemented by clocks that distinguish
// background housekeeping timers — work that perpetually re-arms
// itself, like consensus heartbeats and election timeouts — from
// foreground work. The simulator's drain loop (netsim.Sim.Run) stops
// when only daemon events remain, so a forever-ticking protocol
// cannot wedge "run until quiescent" callers; daemon timers still
// fire normally while foreground activity keeps time advancing. A
// wall clock needs no such distinction and simply does not implement
// the interface.
type DaemonClock interface {
	Clock
	// AfterFuncDaemon is AfterFunc for background housekeeping.
	AfterFuncDaemon(d Duration, fn func()) Timer
}

// AfterFuncDaemon schedules fn on c as a daemon timer when c supports
// the distinction, and as an ordinary timer otherwise. Protocol code
// with perpetual timers should arm them through this helper so the
// same implementation runs on both backends.
func AfterFuncDaemon(c Clock, d Duration, fn func()) Timer {
	if dc, ok := c.(DaemonClock); ok {
		return dc.AfterFuncDaemon(d, fn)
	}
	return c.AfterFunc(d, fn)
}

// Link is one node's attachment to the network: the seam the
// transport endpoint binds to.
type Link interface {
	// SendBuf transmits fr without copying; the caller relinquishes
	// the frame, which must not be mutated afterwards. buf (may be
	// nil) is the frame's reference-counted buffer, of which one
	// reference is consumed. Delivery is best-effort: frames may be
	// lost, and reliability is the transport's job.
	SendBuf(fr Frame, buf FrameBuffer)
	// SetOnFrame installs the receive upcall (nil to remove).
	// Arriving frames are borrowed for the duration of the call.
	SetOnFrame(fn func(fr Frame))
	// Clock returns the clock this node's timers run on.
	Clock() Clock
	// Exec runs fn serialized with the node's upcalls (frame
	// deliveries and timer callbacks), blocking until it returns.
	// This is how code outside the event context — a test harness, a
	// wall-clock measurement loop — safely calls into node state.
	// Exec is not reentrant: never call it from inside an upcall or
	// from inside another Exec on the same backend.
	Exec(fn func())
	// MTU returns the largest frame (header + payload) the link can
	// carry in one piece, or 0 for no limit. Senders of large
	// transfers size their fragments to it.
	MTU() int
}

// BatchLink is optionally implemented by links that can deliver every
// frame arriving in the same scheduling instant as one batch — the
// doorbell-coalescing seam. When a batch upcall is installed, the
// backend calls it with all frames that became ready together (in
// arrival order, preserving per-link FIFO) instead of making one
// OnFrame upcall per frame. The slice and the frames it holds are
// borrowed for the duration of the call. Backends that cannot batch
// simply do not implement the interface; installing a batch upcall
// must also keep the per-frame path working for single arrivals.
type BatchLink interface {
	Link
	// SetOnFrameBatch installs the batched receive upcall (nil to
	// remove). Links fall back to the per-frame OnFrame upcall when no
	// batch handler is installed.
	SetOnFrameBatch(fn func(frs []Frame))
}

// Device is anything attachable to a backend network fabric: a host
// NIC or a switch. Recv is called synchronously when a frame arrives
// on one of the device's ports.
type Device interface {
	// DevName identifies the device in traces.
	DevName() string
	// Recv handles a frame arriving on local port index port.
	Recv(port int, fr Frame)
}

// NetStats aggregates backend-wide frame counters. Both backends
// export the same counters so telemetry and experiments read one
// shape.
type NetStats struct {
	FramesSent      uint64
	FramesDelivered uint64
	FramesDropped   uint64
	BytesDelivered  uint64
}
