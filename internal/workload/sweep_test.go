package workload

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// testSweepConfig is a deliberately tiny grid so the determinism
// tests stay fast while still crossing every layer (discovery,
// coherence, placement, transport, switches).
func testSweepConfig() SweepConfig {
	return SweepConfig{
		Seed:    42,
		Schemes: []core.Scheme{core.SchemeE2E, core.SchemeController},
		Rates:   []float64{2000, 8000},
		Arrival: ArrivalConfig{Kind: ArrivalPoisson},
		Mix:     Mix{ColdFrac: 0.05},
		Keys:    KeyConfig{Dist: KeyZipf, Population: 16},
		Warmup:  2 * netsim.Millisecond,
		Measure: 5 * netsim.Millisecond,
		Target:  ClusterConfig{WarmPool: 8, ColdPool: 8, ObjectSize: 2048},
	}
}

// TestSweepDeterministic is the acceptance bar: two same-seed sweeps
// must produce byte-identical reports (GeneratedAt is stamped outside
// the run and stays empty here).
func TestSweepDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := Sweep(testSweepConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed sweeps differ:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
	rep, err := Sweep(testSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schemes) != 2 {
		t.Fatalf("want 2 schemes, got %d", len(rep.Schemes))
	}
	for _, ss := range rep.Schemes {
		if len(ss.Points) != 2 {
			t.Fatalf("%s: want 2 points, got %d", ss.Scheme, len(ss.Points))
		}
		for _, p := range ss.Points {
			if p.Completed == 0 {
				t.Fatalf("%s: no completions at %.0f ops/s: %+v", ss.Scheme, p.OfferedPerSec, p)
			}
			if p.FramesSent == 0 {
				t.Fatalf("%s: workload sent no frames", ss.Scheme)
			}
			if p.P50US <= 0 || p.P99US < p.P50US {
				t.Fatalf("%s: implausible latency %+v", ss.Scheme, p)
			}
		}
		if ss.Knee.Reason == "" {
			t.Fatalf("%s: knee missing", ss.Scheme)
		}
	}
}

// TestClusterRunDeterministic pins the fine-grained state two
// same-seed runs must agree on: the full op schedule is exercised and
// the latency histogram buckets match bit-for-bit.
func TestClusterRunDeterministic(t *testing.T) {
	run := func() ([]telemetry.Bucket, Counters, telemetry.Snapshot) {
		cl, err := core.NewCluster(core.Config{Seed: 11, Scheme: core.SchemeE2E})
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := NewClusterTarget(cl, ClusterConfig{WarmPool: 8, ColdPool: 4, ObjectSize: 2048})
		if err != nil {
			t.Fatal(err)
		}
		tgt.Warm()
		r := New(cl.Sim, tgt, Config{
			Seed:    cl.Sim.Rand().Int63(),
			Arrival: ArrivalConfig{Kind: ArrivalPoisson, RatePerSec: 20000},
			Mix:     Mix{ColdFrac: 0.1},
			Keys:    KeyConfig{Dist: KeyHotShift, Population: 16, ShiftEvery: 2 * netsim.Millisecond},
			Warmup:  netsim.Millisecond,
			Measure: 5 * netsim.Millisecond,
		})
		r.Start()
		cl.Run()
		reg := telemetry.NewRegistry()
		cl.AddTelemetry(reg)
		r.AddTelemetry(reg)
		tgt.AddTelemetry(reg)
		return r.Hist().Buckets(), r.Result().Counters, reg.Snapshot()
	}
	b1, c1, s1 := run()
	b2, c2, s2 := run()
	if c1 != c2 {
		t.Fatalf("counters diverged:\n%+v\n%+v", c1, c2)
	}
	if len(b1) != len(b2) {
		t.Fatalf("bucket counts diverged: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("bucket %d diverged: %+v vs %+v", i, b1[i], b2[i])
		}
	}
	j1, err := s1.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("telemetry snapshots diverged:\n%s\n%s", j1, j2)
	}
	if c1.OpsCompleted == 0 {
		t.Fatal("no ops completed")
	}
	if s1.Value("workload_target.coherence_ops") == 0 {
		t.Fatalf("coherence op observer saw nothing:\n%s", s1.String())
	}
	if c1.ColdOps == 0 {
		t.Fatal("no cold ops generated")
	}
}

// TestClusterTargetKinds drives each op kind once and checks it
// completes successfully against a real cluster.
func TestClusterTargetKinds(t *testing.T) {
	cl, err := core.NewCluster(core.Config{Seed: 9, Scheme: core.SchemeE2E})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewClusterTarget(cl, ClusterConfig{WarmPool: 4, ColdPool: 1, ObjectSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	tgt.Warm()
	kinds := []OpKind{OpRead, OpWrite, OpAcquireRelease, OpInvoke}
	done := make(map[OpKind]error, len(kinds))
	for i, k := range kinds {
		k := k
		tgt.Issue(Op{Kind: k, Key: i}, func(err error) { done[k] = err })
	}
	tgt.Issue(Op{Kind: OpRead, Cold: true}, func(err error) {
		if err != nil {
			t.Errorf("cold read: %v", err)
		}
	})
	cl.Run()
	for _, k := range kinds {
		err, ok := done[k]
		if !ok {
			t.Fatalf("%v never completed", k)
		}
		if err != nil {
			t.Fatalf("%v failed: %v", k, err)
		}
	}
	if tgt.counters.CoherenceOps == 0 {
		t.Fatal("op observer did not fire")
	}
}
