// Package workload is the deterministic load-generation subsystem: it
// drives a simulated cluster with configurable arrival processes
// (closed-loop, open-loop, Poisson), key-popularity models (uniform,
// Zipf, shifting hot set) and operation mixes, and records latency
// free of coordinated omission — every sample is measured from the
// operation's *intended* start time, so a stalled system cannot hide
// its own tail by slowing the generator down.
//
// Everything runs on the netsim virtual clock and draws randomness
// from seeded sources, so two runs with the same seed produce the
// same operation schedule, the same histogram buckets, and the same
// report bytes.
package workload

import (
	"fmt"

	"repro/internal/netsim"
)

// OpKind is the type of one generated operation.
type OpKind uint8

// Operation kinds.
const (
	// OpRead reads a small range through a reference (bus-style load).
	OpRead OpKind = iota
	// OpWrite writes a small range through a reference (coherent store).
	OpWrite
	// OpAcquireRelease takes an object exclusively and releases it.
	OpAcquireRelease
	// OpInvoke runs the no-op code object against the key's data
	// object, exercising placement and the RPC plane.
	OpInvoke

	numOpKinds
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAcquireRelease:
		return "acquire_release"
	case OpInvoke:
		return "invoke"
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// Op is one generated operation. Intended is the arrival-process
// timestamp the operation *should* have started at; latency is always
// measured against it, even when the operation sat in the runner's
// backlog first (the coordinated-omission-free core of the package).
type Op struct {
	Index    uint64
	Kind     OpKind
	Key      int
	Cold     bool
	Intended netsim.Time
}

// Mix is the operation mix in integer percent shares (they need not
// sum to 100 — shares are relative). A zero Mix means the default
// 80/14/4/2 read/write/acquire-release/invoke split. ColdFrac is the
// probability an op targets a never-before-discovered object,
// exercising the cold discovery path.
type Mix struct {
	ReadPct           int     `json:"read_pct"`
	WritePct          int     `json:"write_pct"`
	AcquireReleasePct int     `json:"acquire_release_pct"`
	InvokePct         int     `json:"invoke_pct"`
	ColdFrac          float64 `json:"cold_frac"`
}

func (m *Mix) fill() {
	if m.ReadPct+m.WritePct+m.AcquireReleasePct+m.InvokePct == 0 {
		m.ReadPct, m.WritePct, m.AcquireReleasePct, m.InvokePct = 80, 14, 4, 2
	}
}

// Counters tallies runner activity inside the measure window. The
// uint64 fields flatten into a telemetry.Registry under the
// "workload" prefix.
type Counters struct {
	OpsGenerated uint64
	OpsIssued    uint64
	OpsQueued    uint64
	OpsCompleted uint64
	OpsFailed    uint64
	Reads        uint64
	Writes       uint64
	AcqRels      uint64
	Invokes      uint64
	ColdOps      uint64
}
