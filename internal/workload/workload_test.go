package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/telemetry"
)

func TestGenDeterministic(t *testing.T) {
	mix := Mix{ColdFrac: 0.05}
	keys := KeyConfig{Dist: KeyZipf, Population: 64}
	a := NewGen(7, mix, keys)
	b := NewGen(7, mix, keys)
	for i := 0; i < 2000; i++ {
		at := netsim.Time(i * 1000)
		oa, ob := a.Next(at), b.Next(at)
		if oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
		if oa.Index != uint64(i) {
			t.Fatalf("op %d has index %d", i, oa.Index)
		}
	}
	c := NewGen(8, mix, keys)
	diff := 0
	for i := 0; i < 200; i++ {
		if a.Next(0) != c.Next(0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenMixShares(t *testing.T) {
	g := NewGen(1, Mix{}, KeyConfig{})
	var kinds [numOpKinds]int
	const n = 20000
	for i := 0; i < n; i++ {
		kinds[g.Next(0).Kind]++
	}
	// Default mix is 80/14/4/2; allow generous slack.
	if f := float64(kinds[OpRead]) / n; f < 0.75 || f > 0.85 {
		t.Fatalf("read share %.3f, want ~0.80", f)
	}
	if kinds[OpWrite] == 0 || kinds[OpAcquireRelease] == 0 || kinds[OpInvoke] == 0 {
		t.Fatalf("kind counts %v: every kind should appear", kinds)
	}
}

func TestGenAllocs(t *testing.T) {
	g := NewGen(1, Mix{ColdFrac: 0.1}, KeyConfig{Dist: KeyZipf})
	g.Next(0)
	if n := testing.AllocsPerRun(1000, func() { g.Next(12345) }); n > 1 {
		t.Fatalf("Next allocates %v/op, want <=1", n)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewGen(3, Mix{}, KeyConfig{Dist: KeyZipf, Population: 32, ZipfS: 1.1})
	counts := make([]int, 32)
	for i := 0; i < 20000; i++ {
		counts[g.Next(0).Key]++
	}
	if counts[0] <= counts[31]*4 {
		t.Fatalf("zipf not skewed: key0=%d key31=%d", counts[0], counts[31])
	}
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("key %d never drawn", k)
		}
	}
}

func TestHotShiftMoves(t *testing.T) {
	cfg := KeyConfig{
		Dist: KeyHotShift, Population: 100,
		HotFrac: 0.1, HotWeight: 0.95,
		ShiftEvery: 10 * netsim.Millisecond,
	}
	g := NewGen(5, Mix{}, cfg)
	countAt := func(at netsim.Time) []int {
		counts := make([]int, 100)
		for i := 0; i < 5000; i++ {
			counts[g.Next(at).Key]++
		}
		return counts
	}
	hotKey := func(counts []int) int {
		best := 0
		for k := range counts {
			if counts[k] > counts[best] {
				best = k
			}
		}
		return best
	}
	h0 := hotKey(countAt(0))
	h1 := hotKey(countAt(10 * 1000 * 1000)) // one ShiftEvery later
	if h0 == h1 {
		t.Fatalf("hot set did not move: epoch0 and epoch1 both peak at key %d", h0)
	}
	if h0 >= 10 {
		t.Fatalf("epoch-0 hot set should be keys 0..9, peak was %d", h0)
	}
}

// fakeTarget completes ops after a configurable service time on the
// virtual clock.
type fakeTarget struct {
	sim         *netsim.Sim
	service     func(op Op) netsim.Duration
	inflight    int
	maxInflight int
}

func (f *fakeTarget) Issue(op Op, done func(error)) {
	f.inflight++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	f.sim.Schedule(f.service(op), func() {
		f.inflight--
		done(nil)
	})
}

func TestClosedLoop(t *testing.T) {
	sim := netsim.NewSim(1)
	tgt := &fakeTarget{sim: sim,
		service: func(Op) netsim.Duration { return 10 * netsim.Microsecond }}
	r := New(sim, tgt, Config{
		Seed: 2,
		Arrival: ArrivalConfig{Kind: ArrivalClosed, Clients: 3,
			Think: 10 * netsim.Microsecond},
		Measure: 10 * netsim.Millisecond,
	})
	r.Start()
	sim.Run()
	res := r.Result()
	if tgt.maxInflight > 3 {
		t.Fatalf("closed loop exceeded client count: %d in flight", tgt.maxInflight)
	}
	// 3 clients, 20µs per cycle => ~500 ops/client over 10ms.
	if res.Counters.OpsCompleted < 1000 || res.Counters.OpsCompleted > 1600 {
		t.Fatalf("completed %d ops, want ~1500", res.Counters.OpsCompleted)
	}
	if res.Counters.OpsFailed != 0 {
		t.Fatalf("%d failures", res.Counters.OpsFailed)
	}
	if got := res.Latency.P50; got < 9 || got > 12 {
		t.Fatalf("P50 = %vµs, want ~10", got)
	}
}

func TestOpenLoopRate(t *testing.T) {
	sim := netsim.NewSim(1)
	tgt := &fakeTarget{sim: sim,
		service: func(Op) netsim.Duration { return netsim.Microsecond }}
	r := New(sim, tgt, Config{
		Seed:    3,
		Arrival: ArrivalConfig{Kind: ArrivalOpen, RatePerSec: 100_000},
		Warmup:  netsim.Millisecond,
		Measure: 10 * netsim.Millisecond,
	})
	r.Start()
	sim.Run()
	res := r.Result()
	// 100k ops/s over a 10ms window = 1000 ops, fixed spacing.
	if res.Counters.OpsGenerated != 1000 {
		t.Fatalf("generated %d, want 1000", res.Counters.OpsGenerated)
	}
	if res.Counters.OpsCompleted != 1000 {
		t.Fatalf("completed %d, want 1000", res.Counters.OpsCompleted)
	}
	if g := res.GoodputPerSec(); g < 99_000 || g > 101_000 {
		t.Fatalf("goodput %.0f, want ~100000", g)
	}
}

// TestCoordinatedOmissionStall is the regression test for the
// package's reason to exist: a 1ms server stall must surface in the
// recorded tail even though the runner could only issue one op at a
// time. Ops that were *due* during the stall record the wait they
// actually suffered, measured from their intended start.
func TestCoordinatedOmissionStall(t *testing.T) {
	sim := netsim.NewSim(1)
	stallStart := netsim.Time(2 * netsim.Millisecond)
	stalled := false
	tgt := &fakeTarget{sim: sim}
	tgt.service = func(Op) netsim.Duration {
		if !stalled && sim.Now() >= stallStart {
			stalled = true
			return netsim.Millisecond // one 1ms stall
		}
		return 5 * netsim.Microsecond
	}
	r := New(sim, tgt, Config{
		Seed:           4,
		Arrival:        ArrivalConfig{Kind: ArrivalOpen, RatePerSec: 50_000},
		Measure:        10 * netsim.Millisecond,
		MaxOutstanding: 1,
	})
	r.Start()
	sim.Run()
	res := r.Result()
	if res.Counters.OpsQueued == 0 {
		t.Fatal("stall should have queued ops behind the cap")
	}
	// ~50 ops were due during the 1ms stall; intended-start accounting
	// must spread the stall across them: the max is ~1ms and well over
	// 10 samples exceed 100µs. Issue-time accounting would report a
	// single slow op and a clean tail.
	if res.Latency.Max < 900 {
		t.Fatalf("max latency %vµs, want >=900 (the stall)", res.Latency.Max)
	}
	over := 0
	for _, b := range r.Hist().Buckets() {
		if b.Low >= 100 {
			over += int(b.Count)
		}
	}
	if over < 10 {
		t.Fatalf("only %d samples over 100µs; stall was coordinated away", over)
	}
	if res.Latency.P999 < 400 {
		t.Fatalf("P999 = %vµs, want inflated by the stall", res.Latency.P999)
	}
}

func TestRunnerTelemetry(t *testing.T) {
	sim := netsim.NewSim(1)
	tgt := &fakeTarget{sim: sim,
		service: func(Op) netsim.Duration { return netsim.Microsecond }}
	r := New(sim, tgt, Config{
		Seed:    5,
		Arrival: ArrivalConfig{Kind: ArrivalOpen, RatePerSec: 10_000},
		Measure: 5 * netsim.Millisecond,
	})
	r.Start()
	sim.Run()
	reg := telemetry.NewRegistry()
	r.AddTelemetry(reg)
	s := reg.Snapshot()
	if s.Value("workload.ops_generated") == 0 {
		t.Fatalf("workload counters missing from registry:\n%s", s.String())
	}
	if s.Value("workload.ops_completed") != s.Value("workload.ops_generated") {
		t.Fatalf("completed != generated in registry:\n%s", s.String())
	}
}

func TestKneeDetection(t *testing.T) {
	cfg := SweepConfig{}
	cfg.fill()
	pt := func(generated, completed uint64, p99 float64) Point {
		return Point{Generated: generated, Completed: completed, P99US: p99}
	}
	k := detectKnee([]Point{
		pt(100, 100, 50), pt(200, 199, 60), pt(400, 210, 80),
	}, cfg)
	if k.Index != 1 || k.Reason != "goodput_plateau" {
		t.Fatalf("goodput knee = %+v", k)
	}
	k = detectKnee([]Point{
		pt(100, 100, 50), pt(200, 199, 60), pt(400, 390, 500),
	}, cfg)
	if k.Index != 1 || k.Reason != "p99_blowup" {
		t.Fatalf("p99 knee = %+v", k)
	}
	k = detectKnee([]Point{pt(100, 100, 50), pt(200, 195, 60)}, cfg)
	if k.Index != 1 || k.Reason != "not_reached" {
		t.Fatalf("unreached knee = %+v", k)
	}
	k = detectKnee([]Point{pt(100, 10, 50)}, cfg)
	if k.Index != -1 || k.Reason != "goodput_plateau" {
		t.Fatalf("first-point knee = %+v", k)
	}
}

func BenchmarkWorkload_Gen(b *testing.B) {
	g := NewGen(1, Mix{ColdFrac: 0.02}, KeyConfig{Dist: KeyZipf, Population: 128})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next(netsim.Time(i))
	}
}

func BenchmarkWorkload_GenHotShift(b *testing.B) {
	g := NewGen(1, Mix{}, KeyConfig{Dist: KeyHotShift, Population: 128})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next(netsim.Time(i * 1000))
	}
}

func BenchmarkWorkload_Observe(b *testing.B) {
	rec := newRecorder(0, netsim.Time(1<<60))
	op := Op{Intended: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.observe(op, netsim.Time(100+i%1000))
	}
}

// BenchmarkWorkload_E2ECoherenceOp is the end-to-end hot-path alloc
// gate: one remote coherence read plus one remote write over the
// sharded scheme — generator to wire to switch pipeline to home and
// back — must stay within 2 allocs/op each (the read's surviving
// allocation is the response data copy). The gate runs even under
// -benchtime=1x, so the CI bench pass fails on any regression.
func BenchmarkWorkload_E2ECoherenceOp(b *testing.B) {
	cl, err := core.NewCluster(core.Config{Seed: 42, NumNodes: 3, Scheme: core.SchemeSharded})
	if err != nil {
		b.Fatal(err)
	}
	reader := cl.Node(0)
	var obj oid.ID
	for _, n := range cl.Nodes[1:] {
		if id, ok := cl.NewIDHomedAt(n.Station); ok {
			o, err := object.New(id, 1024, 4)
			if err != nil {
				b.Fatal(err)
			}
			if err := n.AdoptObjectLite(o); err != nil {
				b.Fatal(err)
			}
			obj = id
			break
		}
	}
	if obj == (oid.ID{}) {
		b.Fatal("no non-reader station owns a shard")
	}
	cl.Run()
	off := uint64(object.HeaderSize + object.FOTEntrySize*4)
	wdata := make([]byte, 64)
	var done bool
	var opErr error
	onRead := func(_ []byte, err error) { opErr, done = err, true }
	onWrite := func(err error) { opErr, done = err, true }
	step := func(what string) {
		cl.Run()
		if !done || opErr != nil {
			b.Fatalf("%s: done=%v err=%v", what, done, opErr)
		}
		done = false
	}
	readOnce := func() {
		reader.Coherence.ReadAtCB(obj, off, 64, onRead)
		step("read")
	}
	writeOnce := func() {
		reader.Coherence.WriteAtCB(obj, off, wdata, onWrite)
		step("write")
	}
	for i := 0; i < 32; i++ {
		readOnce()
		writeOnce()
	}
	if allocs := testing.AllocsPerRun(100, readOnce); allocs > 2 {
		b.Fatalf("remote read allocates %v/op, want <=2", allocs)
	}
	if allocs := testing.AllocsPerRun(100, writeOnce); allocs > 2 {
		b.Fatalf("remote write allocates %v/op, want <=2", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readOnce()
		writeOnce()
	}
}
