package workload

import (
	"repro/internal/backend"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Target is anything the runner can drive: it starts one operation
// and calls done exactly once when the operation's outcome is known.
type Target interface {
	Issue(op Op, done func(error))
}

// Config tunes one runner.
type Config struct {
	// Seed drives the generator (schedule, kinds, keys, arrival gaps).
	Seed int64
	// Arrival selects the arrival process.
	Arrival ArrivalConfig
	// Mix is the operation mix.
	Mix Mix
	// Keys is the key-popularity model.
	Keys KeyConfig
	// Warmup precedes the measure window; ops intended during warmup
	// run but are not counted or recorded.
	Warmup netsim.Duration
	// Measure is the measurement window length.
	Measure netsim.Duration
	// MaxOutstanding caps in-flight ops for open/Poisson arrivals
	// (0 = unlimited). Ops over the cap queue FIFO but keep their
	// original intended time, so queueing delay is measured, not
	// coordinated away.
	MaxOutstanding int
}

// Runner drives a Target with the configured workload on the backend
// clock — virtual or wall. Create with New, call Start, then drain
// the simulation (e.g. Cluster.Run) or sleep out the window
// (realnet), and read Result.
type Runner struct {
	clock backend.Clock
	tgt   Target
	cfg   Config
	gen   *Gen
	rec   *Recorder

	counters    Counters
	outstanding int
	backlog     []Op
	backlogHead int
	issueEnd    netsim.Time

	tickFn   func() // cached method values: one closure, many schedules
	clientFn func()
}

// New builds a runner; Start begins issuing.
func New(clock backend.Clock, tgt Target, cfg Config) *Runner {
	cfg.Arrival.fill()
	r := &Runner{
		clock: clock,
		tgt:   tgt,
		cfg:   cfg,
		gen:   NewGen(cfg.Seed, cfg.Mix, cfg.Keys),
	}
	r.tickFn = r.tick
	r.clientFn = r.clientOp
	return r
}

// Start schedules the arrival process. The measure window is
// [now+Warmup, now+Warmup+Measure); issuing stops at window end but
// in-flight and queued ops run to completion (and still record
// against their intended times).
func (r *Runner) Start() {
	start := r.clock.Now()
	mStart := start.Add(r.cfg.Warmup)
	r.rec = newRecorder(mStart, mStart.Add(r.cfg.Measure))
	r.issueEnd = mStart.Add(r.cfg.Measure)
	if r.cfg.Arrival.Kind == ArrivalClosed {
		for i := 0; i < r.cfg.Arrival.Clients; i++ {
			r.clock.Schedule(0, r.clientFn)
		}
		return
	}
	r.clock.Schedule(0, r.tickFn)
}

// tick is one open/Poisson arrival: generate, dispatch, re-arm.
func (r *Runner) tick() {
	now := r.clock.Now()
	if now >= r.issueEnd {
		return
	}
	r.dispatch(r.gen.Next(now))
	r.clock.Schedule(r.cfg.Arrival.gap(r.gen.Rand()), r.tickFn)
}

// clientOp is one closed-loop client issuing its next op.
func (r *Runner) clientOp() {
	now := r.clock.Now()
	if now >= r.issueEnd {
		return
	}
	r.dispatch(r.gen.Next(now))
}

func (r *Runner) dispatch(op Op) {
	if r.rec.inWindow(op.Intended) {
		r.counters.OpsGenerated++
		switch op.Kind {
		case OpRead:
			r.counters.Reads++
		case OpWrite:
			r.counters.Writes++
		case OpAcquireRelease:
			r.counters.AcqRels++
		case OpInvoke:
			r.counters.Invokes++
		}
		if op.Cold {
			r.counters.ColdOps++
		}
	}
	if r.cfg.MaxOutstanding > 0 && r.outstanding >= r.cfg.MaxOutstanding {
		if r.rec.inWindow(op.Intended) {
			r.counters.OpsQueued++
		}
		r.backlog = append(r.backlog, op)
		return
	}
	r.issue(op)
}

func (r *Runner) issue(op Op) {
	r.outstanding++
	if r.rec.inWindow(op.Intended) {
		r.counters.OpsIssued++
	}
	r.tgt.Issue(op, func(err error) { r.complete(op, err) })
}

func (r *Runner) complete(op Op, err error) {
	r.outstanding--
	now := r.clock.Now()
	if r.rec.inWindow(op.Intended) {
		if err != nil {
			r.counters.OpsFailed++
		} else {
			r.counters.OpsCompleted++
		}
	}
	if err == nil {
		r.rec.observe(op, now)
	}
	// A completion frees a slot: issue the oldest queued op, which
	// keeps its original intended time.
	if r.backlogHead < len(r.backlog) {
		next := r.backlog[r.backlogHead]
		r.backlog[r.backlogHead] = Op{}
		r.backlogHead++
		if r.backlogHead == len(r.backlog) {
			r.backlog = r.backlog[:0]
			r.backlogHead = 0
		}
		r.issue(next)
	}
	if r.cfg.Arrival.Kind == ArrivalClosed {
		r.clock.Schedule(r.cfg.Arrival.Think, r.clientFn)
	}
}

// Result is a finished run's aggregate view.
type Result struct {
	Counters Counters
	Latency  telemetry.Summary
	Measure  netsim.Duration
}

// GoodputPerSec is successful completions per second of measure window.
func (res Result) GoodputPerSec() float64 {
	if res.Measure <= 0 {
		return 0
	}
	return float64(res.Counters.OpsCompleted) * float64(netsim.Second) / float64(res.Measure)
}

// Result snapshots the run (call after draining the simulation).
func (r *Runner) Result() Result {
	return Result{
		Counters: r.counters,
		Latency:  r.rec.Hist().Summarize(),
		Measure:  r.cfg.Measure,
	}
}

// Hist exposes the latency histogram.
func (r *Runner) Hist() *telemetry.Histogram { return r.rec.Hist() }

// AddTelemetry registers the runner's counters under "workload".
func (r *Runner) AddTelemetry(reg *telemetry.Registry) {
	reg.Add("workload", r.counters)
}
