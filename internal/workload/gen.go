package workload

import (
	"math/rand"

	"repro/internal/netsim"
)

// Gen deterministically generates the operation schedule: kind, cold
// flag, and key for each op, from its own seeded source. The same
// seed and config always yield the same sequence, and Next allocates
// nothing, so generation cost never perturbs a measurement.
type Gen struct {
	rng   *rand.Rand
	mix   Mix
	total int
	cum   [3]int // read / +write / +acquire-release thresholds
	keys  *keyPicker
	next  uint64
}

// NewGen builds a generator from a seed, mix, and key model.
func NewGen(seed int64, mix Mix, keys KeyConfig) *Gen {
	mix.fill()
	g := &Gen{
		rng:  rand.New(rand.NewSource(seed)),
		mix:  mix,
		keys: newKeyPicker(keys),
	}
	g.cum[0] = mix.ReadPct
	g.cum[1] = g.cum[0] + mix.WritePct
	g.cum[2] = g.cum[1] + mix.AcquireReleasePct
	g.total = g.cum[2] + mix.InvokePct
	return g
}

// Rand exposes the generator's random source (the runner draws
// arrival gaps from it, keeping the whole schedule on one stream).
func (g *Gen) Rand() *rand.Rand { return g.rng }

// Next generates the op intended to start at the given time.
func (g *Gen) Next(intended netsim.Time) Op {
	op := Op{Index: g.next, Intended: intended}
	g.next++
	r := g.rng.Intn(g.total)
	switch {
	case r < g.cum[0]:
		op.Kind = OpRead
	case r < g.cum[1]:
		op.Kind = OpWrite
	case r < g.cum[2]:
		op.Kind = OpAcquireRelease
	default:
		op.Kind = OpInvoke
	}
	if g.mix.ColdFrac > 0 && g.rng.Float64() < g.mix.ColdFrac {
		op.Cold = true
	}
	op.Key = g.keys.pick(g.rng, intended)
	return op
}
