package workload

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/netsim"
)

// KeyDist selects the key-popularity model.
type KeyDist int

// Key distributions.
const (
	// KeyUniform picks keys uniformly over the population.
	KeyUniform KeyDist = iota
	// KeyZipf picks keys Zipf(s)-distributed: key 0 most popular.
	KeyZipf
	// KeyHotShift concentrates HotWeight of the traffic on a hot set
	// of HotFrac×Population keys whose base rotates every ShiftEvery —
	// the moving-working-set pattern that defeats static caching.
	KeyHotShift
)

// String names the distribution.
func (d KeyDist) String() string {
	switch d {
	case KeyUniform:
		return "uniform"
	case KeyZipf:
		return "zipf"
	case KeyHotShift:
		return "hotshift"
	}
	return "keydist?"
}

// KeyConfig tunes the key-popularity model.
type KeyConfig struct {
	Dist KeyDist
	// Population is the key-space size (default 256).
	Population int
	// ZipfS is the Zipf exponent (default 1.1).
	ZipfS float64
	// HotFrac is the hot-set share of the population (default 0.1).
	HotFrac float64
	// HotWeight is the traffic share the hot set absorbs (default 0.9).
	HotWeight float64
	// ShiftEvery is the hot-set rotation period (default 10ms).
	ShiftEvery netsim.Duration
}

func (c *KeyConfig) fill() {
	if c.Population <= 0 {
		c.Population = 256
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.1
	}
	if c.HotWeight == 0 {
		c.HotWeight = 0.9
	}
	if c.ShiftEvery == 0 {
		c.ShiftEvery = 10 * netsim.Millisecond
	}
}

// keyPicker draws keys from the configured distribution. The Zipf CDF
// is precomputed so the hot path is one binary search, no allocation.
type keyPicker struct {
	cfg KeyConfig
	cdf []float64 // KeyZipf: cdf[k] = P(key <= k), cdf[n-1] == 1
	hot int       // KeyHotShift: hot-set size
}

func newKeyPicker(cfg KeyConfig) *keyPicker {
	cfg.fill()
	p := &keyPicker{cfg: cfg}
	switch cfg.Dist {
	case KeyZipf:
		p.cdf = make([]float64, cfg.Population)
		total := 0.0
		for i := range p.cdf {
			total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
			p.cdf[i] = total
		}
		for i := range p.cdf {
			p.cdf[i] /= total
		}
		p.cdf[len(p.cdf)-1] = 1 // exact despite rounding
	case KeyHotShift:
		p.hot = int(cfg.HotFrac * float64(cfg.Population))
		if p.hot < 1 {
			p.hot = 1
		}
	}
	return p
}

// Keys is the exported face of the key-popularity sampler, for
// experiments (E12) that drive the generator outside the sweep runner.
// The Zipf CDF is precomputed once — at a 10^6-key population that is
// the difference between one binary search per op and one million
// pow() calls per op.
type Keys struct {
	p   *keyPicker
	rng *rand.Rand
}

// NewKeys builds a seeded sampler over cfg's distribution.
func NewKeys(cfg KeyConfig, seed int64) *Keys {
	return &Keys{p: newKeyPicker(cfg), rng: rand.New(rand.NewSource(seed))}
}

// Pick draws one key. now only matters for KeyHotShift.
func (k *Keys) Pick(now netsim.Time) int { return k.p.pick(k.rng, now) }

// Population reports the key-space size after defaulting.
func (k *Keys) Population() int { return k.p.cfg.Population }

// pick draws one key; now drives the hot-set rotation.
func (p *keyPicker) pick(rng *rand.Rand, now netsim.Time) int {
	n := p.cfg.Population
	switch p.cfg.Dist {
	case KeyZipf:
		return sort.SearchFloat64s(p.cdf, rng.Float64())
	case KeyHotShift:
		base := (int(int64(now)/int64(p.cfg.ShiftEvery)) * p.hot) % n
		if rng.Float64() < p.cfg.HotWeight {
			return (base + rng.Intn(p.hot)) % n
		}
		return rng.Intn(n)
	default:
		return rng.Intn(n)
	}
}
