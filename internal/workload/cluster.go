package workload

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/future"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// ClusterConfig shapes the object population a ClusterTarget drives.
type ClusterConfig struct {
	// Driver is the index of the node issuing every op (default 0).
	Driver int
	// WarmPool is the number of pre-discovered objects (default 64),
	// homed round-robin on the non-driver nodes.
	WarmPool int
	// ColdPool is the number of never-discovered single-use objects
	// cold ops consume (default 0). When exhausted, cold ops fall back
	// to the warm pool and ColdExhausted counts the shortfall.
	ColdPool int
	// ObjectSize is each object's total size in bytes (default 512).
	// Workload objects carry a small 4-entry FOT, so most of the size
	// is payload — an acquire moves ObjectSize bytes, not 1.5KB of
	// empty default FOT.
	ObjectSize int
	// IOSize is the read/write length per op (default 64).
	IOSize int
}

func (c *ClusterConfig) fill() {
	if c.WarmPool <= 0 {
		c.WarmPool = 64
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 512
	}
	if c.IOSize <= 0 {
		c.IOSize = 64
	}
}

// TargetCounters tallies target-side activity; the fields flatten
// into a telemetry.Registry under "workload_target".
type TargetCounters struct {
	// CoherenceOps / CoherenceErrs count every coherence-layer
	// operation completion observed at the driver (via the coherence
	// engine's per-op completion hook) — acquire-release ops complete
	// two, reads and writes one each.
	CoherenceOps  uint64
	CoherenceErrs uint64
	// ColdExhausted counts cold ops that fell back to warm objects
	// because the cold pool ran out.
	ColdExhausted uint64
}

// ClusterTarget adapts a core.Cluster to the runner's Target
// interface: one driver node issues reads, writes, acquire-release
// pairs, and invokes against a pool of objects homed on the other
// nodes, through the coherence engine's futures API.
type ClusterTarget struct {
	cl       *core.Cluster
	driver   *core.Node
	warm     []object.Global
	cold     []object.Global
	coldNext int
	code     object.Global
	writeBuf []byte
	ioSize   int
	counters TargetCounters
}

// noopSymbol is the registered function invoke ops run: placement
// routes it to the data's home, so the op cost is pure dispatch.
const noopSymbol = "workload.noop"

// dataFOTCap is the FOT capacity of workload data objects: small, so
// object transfers are mostly payload.
const dataFOTCap = 4

// ioOff is where reads and writes land: the start of a data object's
// heap, past the header and FOT so raw writes never clobber object
// metadata.
const ioOff = object.HeaderSize + object.FOTEntrySize*dataFOTCap

// NewClusterTarget builds the object population: warm and cold pools
// homed round-robin on the non-driver nodes, plus one code object.
// Call Warm before starting the runner.
func NewClusterTarget(cl *core.Cluster, cfg ClusterConfig) (t *ClusterTarget, err error) {
	// Population setup mutates node stores; under realnet that must be
	// serialized with socket upcalls (inline no-op under the sim).
	cl.Exec(func() { t, err = newClusterTarget(cl, cfg) })
	return t, err
}

func newClusterTarget(cl *core.Cluster, cfg ClusterConfig) (*ClusterTarget, error) {
	cfg.fill()
	if cfg.Driver < 0 || cfg.Driver >= len(cl.Nodes) {
		return nil, fmt.Errorf("workload: driver index %d out of range", cfg.Driver)
	}
	t := &ClusterTarget{
		cl:       cl,
		driver:   cl.Node(cfg.Driver),
		writeBuf: make([]byte, cfg.IOSize),
		ioSize:   cfg.IOSize,
	}
	for i := range t.writeBuf {
		t.writeBuf[i] = byte(i)
	}
	var homes []*core.Node
	for i, n := range cl.Nodes {
		if i != cfg.Driver {
			homes = append(homes, n)
		}
	}
	if len(homes) == 0 { // single-node cluster: everything is local
		homes = []*core.Node{t.driver}
	}
	alloc := func(n int) ([]object.Global, error) {
		gs := make([]object.Global, 0, n)
		for i := 0; i < n; i++ {
			home := homes[i%len(homes)]
			o, err := object.New(cl.NewID(), cfg.ObjectSize, dataFOTCap)
			if err != nil {
				return nil, err
			}
			if err := home.AdoptObject(o); err != nil {
				return nil, err
			}
			gs = append(gs, object.Global{Obj: o.ID()})
		}
		return gs, nil
	}
	var err error
	if t.warm, err = alloc(cfg.WarmPool); err != nil {
		return nil, err
	}
	if t.cold, err = alloc(cfg.ColdPool); err != nil {
		return nil, err
	}
	codeObj, err := homes[0].CreateCodeObject(noopSymbol)
	if err != nil {
		return nil, err
	}
	t.code = object.Global{Obj: codeObj.ID()}
	cl.RegisterAll(noopSymbol, func(ctx *core.ExecCtx) { ctx.Return(nil) })
	return t, nil
}

// Warm pre-discovers the warm pool and the code object from the
// driver (a 1-byte read resolves and caches each home), drains the
// simulation, then installs the per-op completion observer — warmup
// traffic stays out of the counters. Cold-pool objects are left
// untouched so their first access pays full discovery.
func (t *ClusterTarget) Warm() {
	coh := t.driver.Coherence
	for _, g := range t.warm {
		coh.ReadAt(g.Obj, ioOff, 1)
	}
	coh.ReadAt(t.code.Obj, ioOff, 1)
	t.cl.Run()
	t.observe()
}

// WarmCtx is Warm for backends without a drainable event loop: the
// same pre-discovery reads are issued and then awaited with ctx. It
// works on both backends (core.Await pumps the simulator), but the
// sim experiments keep calling Warm so their seeded runs stay
// bit-identical.
func (t *ClusterTarget) WarmCtx(ctx context.Context) error {
	var fs []*future.Future[[]byte]
	t.cl.Exec(func() {
		coh := t.driver.Coherence
		for _, g := range t.warm {
			fs = append(fs, coh.ReadAt(g.Obj, ioOff, 1))
		}
		fs = append(fs, coh.ReadAt(t.code.Obj, ioOff, 1))
	})
	for _, f := range fs {
		if _, err := core.Await(ctx, t.cl, f); err != nil {
			return fmt.Errorf("workload: warm read: %w", err)
		}
	}
	t.cl.Exec(t.observe)
	return nil
}

// observe installs the per-op completion counter (after warmup, so
// warm traffic stays out of the counters).
func (t *ClusterTarget) observe() {
	t.driver.Coherence.AddOpObserver(func(_ string, err error) {
		t.counters.CoherenceOps++
		if err != nil {
			t.counters.CoherenceErrs++
		}
	})
}

// obj picks the op's object: cold ops consume the cold pool once,
// warm ops hash the key into the warm pool.
func (t *ClusterTarget) obj(op Op) object.Global {
	if op.Cold {
		if t.coldNext < len(t.cold) {
			g := t.cold[t.coldNext]
			t.coldNext++
			return g
		}
		t.counters.ColdExhausted++
	}
	return t.warm[op.Key%len(t.warm)]
}

// Issue starts one operation through the futures API; done fires when
// the driver learns the outcome.
func (t *ClusterTarget) Issue(op Op, done func(error)) {
	g := t.obj(op)
	coh := t.driver.Coherence
	switch op.Kind {
	case OpWrite:
		coh.WriteAt(g.Obj, ioOff, t.writeBuf).Then(
			func(_ struct{}, err error) { done(err) })
	case OpAcquireRelease:
		coh.AcquireExclusive(g.Obj).Then(func(_ *object.Object, err error) {
			if err != nil {
				done(err)
				return
			}
			coh.Release(g.Obj).Then(func(_ struct{}, err error) { done(err) })
		})
	case OpInvoke:
		t.driver.Invoke(t.code, []object.Global{g},
			func(_ core.InvokeResult, err error) { done(err) })
	default: // OpRead
		coh.ReadAt(g.Obj, ioOff, t.ioSize).Then(
			func(_ []byte, err error) { done(err) })
	}
}

// AddTelemetry registers target counters under "workload_target".
func (t *ClusterTarget) AddTelemetry(reg *telemetry.Registry) {
	reg.Add("workload_target", t.counters)
}
