package workload

import (
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Recorder measures latency without coordinated omission: every
// sample is completion time minus the op's *intended* start, and an
// op belongs to the measure window by its intended time, not by when
// the system got around to issuing or finishing it. A 1ms stall
// therefore shows up as ~1ms of extra latency on every op that was
// due during the stall — instead of silently vanishing because the
// generator waited too.
type Recorder struct {
	start, end netsim.Time
	hist       *telemetry.Histogram
}

func newRecorder(start, end netsim.Time) *Recorder {
	return &Recorder{start: start, end: end, hist: telemetry.NewHistogram()}
}

// inWindow reports whether an op with the given intended time counts.
func (r *Recorder) inWindow(intended netsim.Time) bool {
	return intended >= r.start && intended < r.end
}

// observe records one successful completion (in microseconds from
// intended start). Completions arriving after the window closes still
// record — late is data, not exclusion.
func (r *Recorder) observe(op Op, done netsim.Time) {
	if r.inWindow(op.Intended) {
		r.hist.Observe(done.Sub(op.Intended).Microseconds())
	}
}

// Hist exposes the latency histogram (for merging and for the
// determinism tests' bucket comparison).
func (r *Recorder) Hist() *telemetry.Histogram { return r.hist }
