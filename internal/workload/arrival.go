package workload

import (
	"math/rand"

	"repro/internal/netsim"
)

// ArrivalKind selects the arrival process.
type ArrivalKind int

// Arrival processes. Poisson is the zero value: the right default
// for load sweeps, where offered rate must not adapt to the system.
const (
	// ArrivalPoisson issues ops with exponentially distributed gaps at
	// mean RatePerSec.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalOpen issues ops at a fixed RatePerSec regardless of
	// completions.
	ArrivalOpen
	// ArrivalClosed runs Clients concurrent clients, each issuing its
	// next op Think after the previous one completes — offered load
	// adapts to the system (the classic closed loop that *causes*
	// coordinated omission in naive harnesses).
	ArrivalClosed
)

// String names the arrival process.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalOpen:
		return "open"
	case ArrivalClosed:
		return "closed"
	}
	return "arrival?"
}

// ArrivalConfig tunes the arrival process.
type ArrivalConfig struct {
	Kind ArrivalKind
	// Clients is the closed-loop concurrency (default 4).
	Clients int
	// Think is the closed-loop post-completion pause.
	Think netsim.Duration
	// RatePerSec is the open/Poisson offered load.
	RatePerSec float64
}

func (a *ArrivalConfig) fill() {
	if a.Clients <= 0 {
		a.Clients = 4
	}
	if a.Kind != ArrivalClosed && a.RatePerSec <= 0 {
		a.RatePerSec = 1000
	}
}

// gap draws the next inter-arrival gap (open/Poisson only), floored
// at 1ns so the event loop always advances.
func (a ArrivalConfig) gap(rng *rand.Rand) netsim.Duration {
	mean := float64(netsim.Second) / a.RatePerSec
	d := netsim.Duration(mean)
	if a.Kind == ArrivalPoisson {
		d = netsim.Duration(rng.ExpFloat64() * mean)
	}
	if d < 1 {
		d = 1
	}
	return d
}
