package workload

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/netsim"
)

// SweepConfig describes a load sweep: for each discovery scheme, ramp
// the offered rate across Rates, run a fresh deterministic cluster at
// each point, and locate the saturation knee.
type SweepConfig struct {
	// Seed derives every per-point cluster and generator seed.
	Seed int64
	// Schemes to sweep (default E2E and Controller).
	Schemes []core.Scheme
	// Rates is the offered load ladder in ops/sec (open/Poisson). For
	// closed-loop arrivals each rate is instead the client count.
	Rates []float64
	// Arrival's kind/think are used; the per-point rate overrides
	// RatePerSec (or Clients when closed).
	Arrival ArrivalConfig
	// Mix, Keys, Warmup, Measure, MaxOutstanding configure each
	// point's runner.
	Mix            Mix
	Keys           KeyConfig
	Warmup         netsim.Duration
	Measure        netsim.Duration
	MaxOutstanding int
	// NumNodes, LinkBitsPerSec, DropRate configure each point's
	// cluster (zero values take the core defaults).
	NumNodes       int
	LinkBitsPerSec int64
	DropRate       float64
	// BatchDelivery and HostRxCost pass through to core.Config — the
	// hot-path delivery knobs E15 sweeps batched-vs-unbatched at the
	// same link speed.
	BatchDelivery bool
	HostRxCost    netsim.Duration
	// Target shapes the object population.
	Target ClusterConfig
	// KneeGoodputFrac: a point saturates when completed ops fall below
	// this fraction of generated ops (default 0.9). Comparing against
	// generated rather than nominal offered load keeps Poisson arrival
	// noise out of the criterion: after a full drain every generated op
	// either completed or failed, so the fraction is exactly the
	// success rate.
	KneeGoodputFrac float64
	// KneeP99Mult: a point saturates when P99 exceeds this multiple of
	// the lowest-rate point's P99 (default 5).
	KneeP99Mult float64
}

func (c *SweepConfig) fill() {
	if len(c.Schemes) == 0 {
		c.Schemes = []core.Scheme{core.SchemeE2E, core.SchemeController}
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * netsim.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 50 * netsim.Millisecond
	}
	if c.KneeGoodputFrac == 0 {
		c.KneeGoodputFrac = 0.9
	}
	if c.KneeP99Mult == 0 {
		c.KneeP99Mult = 5
	}
}

// Point is one (scheme, rate) measurement.
type Point struct {
	OfferedPerSec float64 `json:"offered_ops_per_sec"`
	Generated     uint64  `json:"generated_ops"`
	Issued        uint64  `json:"issued_ops"`
	Queued        uint64  `json:"queued_ops"`
	Completed     uint64  `json:"completed_ops"`
	Failed        uint64  `json:"failed_ops"`
	ColdOps       uint64  `json:"cold_ops"`
	GoodputPerSec float64 `json:"goodput_ops_per_sec"`
	MeanUS        float64 `json:"mean_us"`
	P50US         float64 `json:"p50_us"`
	P90US         float64 `json:"p90_us"`
	P99US         float64 `json:"p99_us"`
	P999US        float64 `json:"p999_us"`
	MaxUS         float64 `json:"max_us"`
	FramesSent    uint64  `json:"frames_sent"`
	FramesDropped uint64  `json:"frames_dropped"`
}

// Knee marks where a scheme saturates: the last point still meeting
// both the goodput and P99 criteria. Index is -1 when even the first
// point fails; Reason says which criterion the next point broke
// ("goodput_plateau", "p99_blowup") or "not_reached".
type Knee struct {
	Index         int     `json:"index"`
	OfferedPerSec float64 `json:"offered_ops_per_sec"`
	GoodputPerSec float64 `json:"goodput_ops_per_sec"`
	P99US         float64 `json:"p99_us"`
	Reason        string  `json:"reason"`
}

// SchemeSweep is one scheme's rate ladder.
type SchemeSweep struct {
	Scheme string  `json:"scheme"`
	Points []Point `json:"points"`
	Knee   Knee    `json:"knee"`
}

// Report is the sweep artifact (BENCH_load.json). Everything in it is
// deterministic from the config; GeneratedAt is stamped by the caller
// *after* the run (never inside it), so two same-seed reports are
// byte-identical with the stamp excluded.
type Report struct {
	SchemaVersion  int           `json:"schema_version"`
	GeneratedAt    string        `json:"generated_at,omitempty"`
	Seed           int64         `json:"seed"`
	Arrival        string        `json:"arrival"`
	Mix            Mix           `json:"mix"`
	KeyDist        string        `json:"key_dist"`
	Rates          []float64     `json:"rates_ops_per_sec"`
	NumNodes       int           `json:"num_nodes"`
	LinkBitsPerSec int64         `json:"link_bits_per_sec"`
	WarmupUS       float64       `json:"warmup_us"`
	MeasureUS      float64       `json:"measure_us"`
	Schemes        []SchemeSweep `json:"schemes"`
}

// JSON renders the report with stable field order and indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Sweep runs the full grid. Each point gets a fresh cluster seeded
// from (Seed, rate index, scheme), so points are independent and any
// subset of the grid reproduces exactly.
func Sweep(cfg SweepConfig) (*Report, error) {
	cfg.fill()
	rep := &Report{
		SchemaVersion:  1,
		Seed:           cfg.Seed,
		Arrival:        cfg.Arrival.Kind.String(),
		Mix:            cfg.Mix,
		KeyDist:        cfg.Keys.Dist.String(),
		Rates:          cfg.Rates,
		NumNodes:       cfg.NumNodes,
		LinkBitsPerSec: cfg.LinkBitsPerSec,
		WarmupUS:       cfg.Warmup.Microseconds(),
		MeasureUS:      cfg.Measure.Microseconds(),
	}
	rep.Mix.fill()
	for _, scheme := range cfg.Schemes {
		ss := SchemeSweep{Scheme: scheme.String()}
		for i, rate := range cfg.Rates {
			pt, err := runPoint(cfg, scheme, i, rate)
			if err != nil {
				return nil, err
			}
			ss.Points = append(ss.Points, pt)
		}
		ss.Knee = detectKnee(ss.Points, cfg)
		rep.Schemes = append(rep.Schemes, ss)
	}
	return rep, nil
}

// runPoint measures one (scheme, rate) cell on a fresh cluster.
func runPoint(cfg SweepConfig, scheme core.Scheme, i int, rate float64) (Point, error) {
	cl, err := core.NewCluster(core.Config{
		Seed:           cfg.Seed + int64(i)*1000 + int64(scheme),
		NumNodes:       cfg.NumNodes,
		Scheme:         scheme,
		LinkBitsPerSec: cfg.LinkBitsPerSec,
		DropRate:       cfg.DropRate,
		BatchDelivery:  cfg.BatchDelivery,
		HostRxCost:     cfg.HostRxCost,
	})
	if err != nil {
		return Point{}, err
	}
	tgt, err := NewClusterTarget(cl, cfg.Target)
	if err != nil {
		return Point{}, err
	}
	tgt.Warm()
	base := cl.Net.Stats()

	arr := cfg.Arrival
	if arr.Kind == ArrivalClosed {
		arr.Clients = int(rate)
	} else {
		arr.RatePerSec = rate
	}
	run := New(cl.Sim, tgt, Config{
		Seed:           cl.Sim.Rand().Int63(),
		Arrival:        arr,
		Mix:            cfg.Mix,
		Keys:           cfg.Keys,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		MaxOutstanding: cfg.MaxOutstanding,
	})
	run.Start()
	// Full drain: completions landing after the window still record
	// against their intended start times.
	cl.Run()

	res := run.Result()
	net := cl.Net.Stats()
	return Point{
		OfferedPerSec: rate,
		Generated:     res.Counters.OpsGenerated,
		Issued:        res.Counters.OpsIssued,
		Queued:        res.Counters.OpsQueued,
		Completed:     res.Counters.OpsCompleted,
		Failed:        res.Counters.OpsFailed,
		ColdOps:       res.Counters.ColdOps,
		GoodputPerSec: res.GoodputPerSec(),
		MeanUS:        res.Latency.Mean,
		P50US:         res.Latency.P50,
		P90US:         res.Latency.P90,
		P99US:         res.Latency.P99,
		P999US:        res.Latency.P999,
		MaxUS:         res.Latency.Max,
		FramesSent:    net.FramesSent - base.FramesSent,
		FramesDropped: net.FramesDropped - base.FramesDropped,
	}, nil
}

// detectKnee scans the ladder for the first saturated point.
func detectKnee(points []Point, cfg SweepConfig) Knee {
	if len(points) == 0 {
		return Knee{Index: -1, Reason: "no_points"}
	}
	baseP99 := points[0].P99US
	bad, reason := -1, ""
	for j, p := range points {
		okGoodput := p.Generated == 0 ||
			float64(p.Completed) >= cfg.KneeGoodputFrac*float64(p.Generated)
		okP99 := baseP99 <= 0 || p.P99US <= cfg.KneeP99Mult*baseP99
		if !okP99 {
			bad, reason = j, "p99_blowup"
			break
		}
		if !okGoodput {
			bad, reason = j, "goodput_plateau"
			break
		}
	}
	if bad < 0 {
		last := points[len(points)-1]
		return Knee{
			Index:         len(points) - 1,
			OfferedPerSec: last.OfferedPerSec,
			GoodputPerSec: last.GoodputPerSec,
			P99US:         last.P99US,
			Reason:        "not_reached",
		}
	}
	if bad == 0 {
		return Knee{Index: -1, Reason: reason}
	}
	k := points[bad-1]
	return Knee{
		Index:         bad - 1,
		OfferedPerSec: k.OfferedPerSec,
		GoodputPerSec: k.GoodputPerSec,
		P99US:         k.P99US,
		Reason:        reason,
	}
}
