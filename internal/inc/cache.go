package inc

import (
	"repro/internal/memproto"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

// The in-switch object cache. One switch — the home's first hop —
// caches a hot object's bytes, learned from read responses passing
// through; a claim byte flipped in the response keeps any second
// switch from caching the same bytes. The single-caching-switch
// invariant is what makes invalidation tractable: every frame that
// can mutate the object (writes, releases, invalidations, the home's
// explicit purge) must traverse the home's first hop, where it evicts
// the line and opens a shadow window long enough for stale responses
// already in flight to drain.

// handleMem inspects a MsgMem frame: serve reads from the cache,
// learn from read responses, evict on anything that mutates.
func (e *Engine) handleMem(ingress int, h *wire.Header, fr []byte) bool {
	payload := wire.Payload(fr)
	var m memproto.Msg
	if err := m.Unmarshal(payload); err != nil {
		return false
	}
	switch m.Op {
	case memproto.OpReadReq:
		return e.serveRead(ingress, h, &m)
	case memproto.OpReadResp:
		e.learn(h, payload, &m)
	case memproto.OpWriteReq, memproto.OpWriteResp,
		memproto.OpRelease, memproto.OpReleaseAck,
		memproto.OpInvalidate, memproto.OpInvalidateAck:
		e.invalidate(h.Object)
	}
	return false
}

// learn caches the bytes of a passing read response, if no switch
// upstream claimed it, the response is a whole unfragmented success,
// and the object is not inside a mutation shadow.
func (e *Engine) learn(h *wire.Header, payload []byte, m *memproto.Msg) {
	if m.Status != memproto.StatusOK || m.FragOffset != 0 || m.TotalLen != 0 {
		return
	}
	if len(m.Data) == 0 || len(m.Data) > e.cfg.CacheLine {
		return
	}
	if payload[memproto.IncCacheClaimOff] != 0 {
		return // another switch already caches these bytes
	}
	if _, shadowed := e.shadow[h.Object]; shadowed {
		return // a mutation passed recently; these bytes may predate it
	}
	err := e.cacheTable.Insert(p4sim.Entry{
		Match:  []p4sim.KeyValue{{Value: wire.ValueOfID(h.Object)}},
		Action: p4sim.Action{Type: p4sim.ActIncCache},
	})
	if err != nil {
		return
	}
	// Claim in flight: the header checksum does not cover the payload,
	// so the reserved byte flips without re-encoding.
	payload[memproto.IncCacheClaimOff] = 1
	e.lines[h.Object] = &cacheLine{
		home:    h.Src,
		off:     m.Offset,
		version: m.Version,
		data:    append([]byte(nil), m.Data...),
	}
	e.counters.CacheInserts++
}

// serveRead answers a read from the cached line when the request is
// addressed to the station the bytes came from and the line covers
// the requested range. Consuming the request, the switch must speak
// for the home completely: an ack to stop the requester's
// retransmission (reliable requests) plus the response.
func (e *Engine) serveRead(ingress int, h *wire.Header, m *memproto.Msg) bool {
	line, ok := e.lines[h.Object]
	if !ok {
		return false
	}
	// Serve only requests explicitly addressed to the caching line's
	// home: object-routed frames (StationAny) or a moved home would
	// otherwise let a bypassed switch serve stale bytes.
	if h.Dst != line.home || m.Length == 0 {
		e.counters.CacheMisses++
		return false
	}
	if _, hit := e.cacheTable.Lookup(h); !hit {
		// Rule recycled underneath (OnEvict keeps lines in sync, so
		// this is defensive only).
		delete(e.lines, h.Object)
		return false
	}
	end := m.Offset + uint64(m.Length)
	if m.Offset < line.off || end > line.off+uint64(len(line.data)) {
		e.counters.CacheMisses++
		return false
	}
	rm := memproto.Msg{
		Op: memproto.OpReadResp, Status: memproto.StatusOK,
		Offset: m.Offset, Version: line.version,
		Data: line.data[m.Offset-line.off : end-line.off],
	}
	out := wire.Header{
		Type: wire.MsgMem, Flags: wire.FlagResponse,
		Src: e.dp.Station(), Dst: h.Src, Object: h.Object,
		Seq: e.dp.NextReplySeq(), Ack: h.Seq,
	}
	frame, err := wire.Encode(&out, rm.Marshal(nil))
	if err != nil {
		return false
	}
	if h.Flags&wire.FlagReliable != 0 {
		ack := wire.Header{
			Type: wire.MsgAck, Src: e.dp.Station(), Dst: h.Src,
			Seq: e.dp.NextReplySeq(), Ack: h.Seq,
		}
		if af, aerr := wire.Encode(&ack, nil); aerr == nil {
			e.dp.EmitFrame(ingress, af)
		}
	}
	e.dp.EmitFrame(ingress, frame)
	e.counters.CacheHits++
	return true
}

// invalidate drops the cached line (if any) and shadows the object so
// in-flight pre-mutation responses cannot re-seed it.
func (e *Engine) invalidate(obj oid.ID) {
	if e.cacheTable == nil {
		return
	}
	e.shadowObj(obj)
	if _, ok := e.lines[obj]; !ok {
		return
	}
	delete(e.lines, obj)
	e.cacheTable.Delete([]p4sim.KeyValue{{Value: wire.ValueOfID(obj)}})
	e.counters.CacheInvalidates++
}

// shadowObj opens (or extends) the object's learn-suppression window.
func (e *Engine) shadowObj(obj oid.ID) {
	e.shadowSeq++
	seq := e.shadowSeq
	e.shadow[obj] = seq
	e.dp.ScheduleAfter(e.cfg.CacheShadow, func() {
		if e.shadow[obj] == seq {
			delete(e.shadow, obj)
		}
	})
}
