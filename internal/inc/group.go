package inc

import (
	"sort"

	"repro/internal/memproto"
	"repro/internal/wire"
)

// Multicast invalidation and ack aggregation. The controller installs
// sharer groups (id → member stations) on every switch through the
// replicated control plane; the home then invalidates a whole sharer
// set with ONE MsgIncInv frame naming the group, and each switch
// replicates it along the spanning tree toward the members it routes
// to. On the way back, the switch that claimed aggregation (the
// home's first hop) coalesces the members' MsgIncAck frames into one
// bitmap ack — and on timeout flushes only the acks it actually
// holds, so a dead sharer's ack is never fabricated.

// InstallGroup implements p4sim.IncGroupTable: the control plane
// programs a multicast group. Member order is the bitmap order, so it
// must match the home's (both use the sorted sharer set).
func (e *Engine) InstallGroup(id uint64, members []wire.StationID) {
	e.groups[id] = append([]wire.StationID(nil), members...)
}

// Groups returns the number of installed multicast groups.
func (e *Engine) Groups() int { return len(e.groups) }

// handleInv consumes a MsgIncInv frame: purge the cache line, then
// (for a real group) replicate toward the members and, at the first
// aggregation-capable switch, claim the ack aggregation.
func (e *Engine) handleInv(ingress int, h *wire.Header, fr []byte) bool {
	opID, group, claimed, ok := memproto.DecodeIncInv(wire.Payload(fr))
	if !ok {
		return true // malformed; consume rather than mis-forward
	}
	// Every invalidation evicts: this is how the home's writes reach
	// the cache even when no unicast invalidate would traverse us.
	e.invalidate(h.Object)
	if group == 0 {
		return true // pure cache purge: consumed at the first switch
	}
	if !e.cfg.Mcast {
		return true
	}

	members, known := e.groups[group]
	// Replication is deferred past ingress (pipeline delay), so the
	// copies must not alias the ingress buffer — it is recycled when
	// ingress returns.
	out := append([]byte(nil), fr...)

	// Claim aggregation here if enabled, unclaimed, and we know the
	// membership (the bitmap needs it). The replicated copies carry
	// the claim so no downstream switch aggregates the same round.
	aggHere := e.cfg.AckAgg && !claimed && known &&
		len(members) > 0 && len(members) <= MaxGroupMembers
	if aggHere {
		wire.Payload(out)[memproto.IncInvClaimedOff] = 1
		key := aggKey{home: h.Src, op: opID}
		if _, dup := e.aggs[key]; !dup {
			e.aggs[key] = &aggState{
				obj:     h.Object,
				group:   group,
				members: append([]wire.StationID(nil), members...),
				mask:    (uint64(1) << uint(len(members))) - 1,
			}
			e.dp.ScheduleAfter(e.cfg.AggTimeout, func() { e.flushAgg(key) })
		}
	}

	// Replicate: one copy per egress port that routes to a member.
	// Ports equal to the ingress are skipped — members behind it were
	// already covered upstream (reverse-path forwarding on a tree).
	// Any member without a station route degrades to a flood.
	if !known {
		e.counters.McastFloods++
		e.dp.FloodFrame(ingress, out)
		return true
	}
	seen := make(map[int]bool, len(members))
	ports := make([]int, 0, len(members))
	for _, m := range members {
		port, ok := e.dp.StationPort(m)
		if !ok {
			e.counters.McastFloods++
			e.dp.FloodFrame(ingress, out)
			return true
		}
		if port == ingress || seen[port] {
			continue
		}
		seen[port] = true
		ports = append(ports, port)
	}
	sort.Ints(ports)
	for _, port := range ports {
		e.counters.McastReplicated++
		e.dp.EmitFrame(port, out)
	}
	return true
}

// handleAck absorbs a member's MsgIncAck into the aggregation this
// switch claimed; with no matching state the ack forwards to the home
// untouched.
func (e *Engine) handleAck(h *wire.Header, fr []byte) bool {
	opID, _, bitmap, ok := memproto.DecodeIncAck(wire.Payload(fr))
	if !ok {
		return false
	}
	key := aggKey{home: h.Dst, op: opID}
	st, exists := e.aggs[key]
	if !exists {
		return false
	}
	var bits uint64
	if bitmap != 0 {
		// Already an aggregate (a downstream partial flush): merge.
		bits = bitmap & st.mask
	} else {
		idx := -1
		for i, m := range st.members {
			if m == h.Src {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false // not a member's ack; forward
		}
		bits = uint64(1) << uint(idx)
	}
	if st.got|bits == st.got {
		return true // duplicate: absorb silently
	}
	st.got |= bits
	e.counters.AcksCoalesced++
	if st.got == st.mask {
		delete(e.aggs, key)
		e.emitAgg(key, st)
	}
	return true
}

// flushAgg is the timeout path: emit the bitmap of acks actually
// received — possibly none, in which case nothing is sent. Missing
// members stay missing; the home's own timeout detects them and
// falls back to per-sharer invalidation.
func (e *Engine) flushAgg(key aggKey) {
	st, ok := e.aggs[key]
	if !ok {
		return // completed before the timeout
	}
	delete(e.aggs, key)
	e.counters.AggTimeouts++
	if st.got != 0 {
		e.emitAgg(key, st)
	}
}

// emitAgg sends the aggregated ack toward the home.
func (e *Engine) emitAgg(key aggKey, st *aggState) {
	out := wire.Header{
		Type: wire.MsgIncAck, Src: e.dp.Station(), Dst: key.home,
		Object: st.obj, Seq: e.dp.NextReplySeq(),
	}
	frame, err := wire.Encode(&out, memproto.EncodeIncAck(key.op, st.group, st.got))
	if err != nil {
		return
	}
	if port, ok := e.dp.StationPort(key.home); ok {
		e.dp.EmitFrame(port, frame)
	} else {
		e.dp.FloodFrame(-1, frame)
	}
	e.counters.AggAcksSent++
}
