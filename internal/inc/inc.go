// Package inc implements in-network computation (INC): application
// work that runs inside the switch pipeline once the fabric routes on
// object identity (§5; NetRPC and NetChain in PAPERS.md). Three
// switch-resident computations, each independently gated:
//
//  1. an in-switch object cache — hot read-only bytes parked in switch
//     register state behind a match-action table (capacity model and
//     LRU/CLOCK eviction shared with the table machinery), serving
//     ReadAt requests in the fabric before they reach the home;
//  2. multicast invalidation — the coherence home emits ONE invalidate
//     frame naming a controller-installed sharer group, and switches
//     replicate it along the spanning tree;
//  3. ack aggregation — the switch nearest the home coalesces the
//     sharers' invalidate-acks into one bitmap ack, with an explicit
//     timeout/flush so a dead sharer's missing ack is never fabricated.
//
// The engine attaches to a switch as a p4sim.IncProgram. Frame
// classification goes through the pubsub compiler: the three INC
// dispositions are subscriptions compiled into a private match-action
// filter table, exactly like application packet subscriptions.
//
// The package sits below the backend seam boundary only through the
// p4sim dataplane interface — it reaches frames and time exclusively
// through backend types, so checkseam covers it like the protocol
// packages.
package inc

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/pubsub"
	"repro/internal/wire"
)

// Defaults.
const (
	// DefaultCacheMemory is the register SRAM budget for the cache
	// table (64 KiB — a small slice of the 30 MiB table budget).
	DefaultCacheMemory = 64 << 10
	// DefaultCacheLine caps the bytes cached per object: register
	// state is word-addressed and scarce, so only small hot objects
	// (locks, counters, headers) are cacheable.
	DefaultCacheLine = 512
	// DefaultCacheShadow is how long an object stays non-cacheable
	// after the switch observes a mutation — long enough for any
	// stale read response already in flight from the home to drain,
	// so it cannot re-seed the cache with pre-write bytes.
	DefaultCacheShadow = backend.Millisecond
	// DefaultAggTimeout bounds how long an aggregation waits for
	// stragglers before flushing the acks it really holds.
	DefaultAggTimeout = 500 * backend.Microsecond
	// MaxGroupMembers bounds a multicast group (the ack bitmap is one
	// 64-bit register).
	MaxGroupMembers = 64
)

// Config gates and tunes the three computations. The zero value
// disables everything.
type Config struct {
	// Cache enables the in-switch object cache.
	Cache bool
	// CacheMemory is the cache table's SRAM budget
	// (0 = DefaultCacheMemory, negative = unlimited).
	CacheMemory int
	// CacheEviction selects the cache eviction policy; EvictNone (the
	// zero value) selects LRU — a cache must recycle.
	CacheEviction p4sim.EvictionPolicy
	// CacheLine caps cached bytes per object (0 = DefaultCacheLine).
	CacheLine int
	// CacheShadow is the post-mutation learn-suppression window
	// (0 = DefaultCacheShadow).
	CacheShadow backend.Duration
	// Mcast enables group-table replication of MsgIncInv frames.
	Mcast bool
	// AckAgg enables invalidate-ack aggregation.
	AckAgg bool
	// AggTimeout is the aggregation flush timeout (0 = DefaultAggTimeout).
	AggTimeout backend.Duration
}

func (c *Config) fill() {
	if c.CacheMemory == 0 {
		c.CacheMemory = DefaultCacheMemory
	}
	if c.CacheEviction == p4sim.EvictNone {
		c.CacheEviction = p4sim.EvictLRU
	}
	if c.CacheLine == 0 {
		c.CacheLine = DefaultCacheLine
	}
	if c.CacheShadow == 0 {
		c.CacheShadow = DefaultCacheShadow
	}
	if c.AggTimeout == 0 {
		c.AggTimeout = DefaultAggTimeout
	}
}

// Enabled reports whether any computation is on.
func (c Config) Enabled() bool { return c.Cache || c.Mcast || c.AckAgg }

// Counters aggregates one engine's statistics. Registered under the
// "inc" telemetry prefix (inc.cache_hits, inc.acks_coalesced, ...).
type Counters struct {
	CacheHits        uint64 // reads served from the switch
	CacheMisses      uint64 // reads inspected but not servable
	CacheInserts     uint64 // lines learned from read responses
	CacheInvalidates uint64 // lines dropped on observed mutations
	CacheEvictions   uint64 // lines recycled by the capacity policy
	McastReplicated  uint64 // invalidate copies emitted from the group table
	McastFloods      uint64 // unknown-group flood fallbacks
	AcksCoalesced    uint64 // acks absorbed into an aggregate
	AggAcksSent      uint64 // aggregated acks emitted
	AggTimeouts      uint64 // aggregations flushed by timeout
}

// Dataplane is what the engine needs from its switch. *p4sim.Switch
// implements it (netsim's Frame and Duration alias the backend types).
type Dataplane interface {
	Station() wire.StationID
	NextReplySeq() uint64
	EmitFrame(port int, fr backend.Frame)
	FloodFrame(skip int, fr backend.Frame)
	StationPort(st wire.StationID) (int, bool)
	ScheduleAfter(d backend.Duration, fn func())
}

// cacheLine is the register state behind one cache-table entry.
type cacheLine struct {
	home    wire.StationID // station the bytes came from; serve only its reads
	off     uint64
	version uint64
	data    []byte
}

// aggKey identifies one home's invalidation round.
type aggKey struct {
	home wire.StationID
	op   uint64
}

// aggState is one in-progress ack aggregation.
type aggState struct {
	obj     oid.ID
	group   uint64
	members []wire.StationID
	got     uint64 // bitmap of member acks actually received
	mask    uint64 // bitmap of all members
}

// Engine is one switch's INC program.
type Engine struct {
	cfg Config
	dp  Dataplane

	// classifier is the compiled pubsub filter table dispatching
	// frames to the three computations.
	classifier *p4sim.Table

	// cacheTable carries the capacity/eviction model; lines is the
	// register file it fronts (kept in sync via OnEvict).
	cacheTable *p4sim.Table
	lines      map[oid.ID]*cacheLine
	shadow     map[oid.ID]uint64
	shadowSeq  uint64

	groups map[uint64][]wire.StationID
	aggs   map[aggKey]*aggState

	counters Counters
}

// New builds an engine for a switch dataplane. At least one
// computation must be enabled, and the dataplane must have a station
// identity (the engine originates frames).
func New(name string, dp Dataplane, cfg Config) (*Engine, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("inc: no computation enabled")
	}
	if dp.Station() == 0 {
		return nil, fmt.Errorf("inc: %s needs a station identity to originate frames", name)
	}
	cfg.fill()
	e := &Engine{
		cfg:    cfg,
		dp:     dp,
		lines:  make(map[oid.ID]*cacheLine),
		shadow: make(map[oid.ID]uint64),
		groups: make(map[uint64][]wire.StationID),
		aggs:   make(map[aggKey]*aggState),
	}

	// Classification through the pubsub compiler: each enabled
	// computation is a subscription on the message type, compiled into
	// a private prioritized ternary table.
	ps := pubsub.NewEngine()
	if cfg.Cache {
		if _, err := ps.Subscribe(pubsub.EqType(wire.MsgMem),
			p4sim.Action{Type: p4sim.ActIncCache}); err != nil {
			return nil, err
		}
	}
	if cfg.Cache || cfg.Mcast {
		// Cache-only switches still consume MsgIncInv: a group-0 frame
		// is the home's cache purge.
		if _, err := ps.Subscribe(pubsub.EqType(wire.MsgIncInv),
			p4sim.Action{Type: p4sim.ActIncGroup}); err != nil {
			return nil, err
		}
	}
	if cfg.AckAgg {
		if _, err := ps.Subscribe(pubsub.EqType(wire.MsgIncAck),
			p4sim.Action{Type: p4sim.ActIncAgg}); err != nil {
			return nil, err
		}
	}
	ft, err := pubsub.NewFilterTable(name+"/inc", p4sim.TableConfig{MemoryBytes: -1})
	if err != nil {
		return nil, err
	}
	if err := ps.CompileTo(ft); err != nil {
		return nil, err
	}
	e.classifier = ft

	if cfg.Cache {
		ct, err := p4sim.NewTable(name+"/inc-cache",
			[]p4sim.Key{{Field: wire.FieldObject, Kind: p4sim.MatchExact}},
			p4sim.TableConfig{MemoryBytes: cfg.CacheMemory, Eviction: cfg.CacheEviction})
		if err != nil {
			return nil, err
		}
		ct.SetOnEvict(func(v *p4sim.Entry) {
			delete(e.lines, v.Match[0].Value.AsID())
			e.counters.CacheEvictions++
		})
		e.cacheTable = ct
	}
	return e, nil
}

// Counters returns a copy of the statistics.
func (e *Engine) Counters() Counters { return e.counters }

// ResetCounters zeroes the statistics.
func (e *Engine) ResetCounters() { e.counters = Counters{} }

// CacheTable exposes the cache's match-action table (nil when the
// cache is disabled) — telemetry and tests read Len/Evictions.
func (e *Engine) CacheTable() *p4sim.Table { return e.cacheTable }

// CoupleObjectTable ties a forwarding table's evictions to the cache:
// when a rule for an object is recycled, the cached line goes with it
// (and the object is shadowed), so a cached object whose forwarding
// rule vanished can never serve a stale read.
func (e *Engine) CoupleObjectTable(t *p4sim.Table) {
	t.SetOnEvict(func(v *p4sim.Entry) {
		e.invalidate(v.Match[0].Value.AsID())
	})
}

// HandleFrame implements p4sim.IncProgram: classify through the
// compiled filter table, then run the matched computation. Returning
// false forwards the frame through the normal pipeline.
func (e *Engine) HandleFrame(ingress int, h *wire.Header, fr backend.Frame) bool {
	act, ok := e.classifier.Lookup(h)
	if !ok {
		return false
	}
	switch act.Type {
	case p4sim.ActIncCache:
		return e.handleMem(ingress, h, fr)
	case p4sim.ActIncGroup:
		return e.handleInv(ingress, h, fr)
	case p4sim.ActIncAgg:
		return e.handleAck(h, fr)
	}
	return false
}
