package inc_test

import (
	"math/rand"
	"testing"

	"repro/internal/inc"
	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

// TestEngineSurvivesRandomFrames attaches a fully-enabled engine to a
// real switch and feeds it random traffic skewed toward the INC
// message types — garbage payloads, truncated INC encodings, random
// groups, claims, and bitmaps. The pipeline invariants: nothing
// panics, the switch keeps forwarding afterward, and the engine never
// emits a frame that fails to parse.
func TestEngineSurvivesRandomFrames(t *testing.T) {
	sim := netsim.NewSim(3)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw0", 3, p4sim.SwitchConfig{
		LearnStations: true, Station: 2001,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := inc.New("sw0", sw, inc.Config{Cache: true, Mcast: true, AckAgg: true})
	if err != nil {
		t.Fatal(err)
	}
	sw.SetIncProgram(eng)
	eng.InstallGroup(5, []wire.StationID{1, 2, 3})

	hosts := make([]*netsim.Host, 3)
	delivered := 0
	for i := range hosts {
		h, err := netsim.NewHost(net, "h"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		h.OnFrame = func(fr netsim.Frame) {
			var hd wire.Header
			if err := hd.DecodeFrom(fr); err != nil {
				t.Errorf("fabric delivered an unparseable frame: %v", err)
			}
			delivered++
		}
		if err := net.Connect(h, 0, sw, i, netsim.LinkConfig{Latency: netsim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
	}

	rng := rand.New(rand.NewSource(4242))
	types := []wire.MsgType{wire.MsgMem, wire.MsgIncInv, wire.MsgIncAck}
	const n = 3000
	for i := 0; i < n; i++ {
		h := wire.Header{
			Type:   types[rng.Intn(len(types))],
			Flags:  wire.Flags(rng.Uint32()),
			Src:    wire.StationID(rng.Intn(5)),
			Dst:    wire.StationID(rng.Intn(5)),
			Object: gen.New(),
			Seq:    rng.Uint64(),
		}
		payload := make([]byte, rng.Intn(48)) // covers truncated INC encodings
		rng.Read(payload)
		if rng.Intn(3) == 0 {
			// A well-formed INC payload with random group/claim/bitmap,
			// so the replicate and aggregate paths actually run.
			payload = make([]byte, 24)
			rng.Read(payload)
			payload[16] = byte(rng.Intn(2))
			if rng.Intn(2) == 0 {
				payload[8], payload[9], payload[10], payload[11] = 0, 0, 0, 0
				payload[12], payload[13], payload[14] = 0, 0, 0
				payload[15] = byte(rng.Intn(7)) // group 0..6: purge, known, unknown
			}
		}
		fr, _ := wire.Encode(&h, payload)
		hosts[rng.Intn(len(hosts))].Send(fr)
		if i%100 == 0 {
			sim.Run()
		}
	}
	sim.Run()

	// The switch still serves a normal frame after the storm.
	sw.ResetCounters()
	probe := wire.Header{Type: wire.MsgHello, Src: 1, Dst: wire.StationBroadcast, Seq: 1 << 60}
	fr, _ := wire.Encode(&probe, nil)
	hosts[0].Send(fr)
	sim.Run()
	if sw.Counters().Flooded != 1 {
		t.Fatal("switch wedged after INC fuzz")
	}
}
