package inc_test

import (
	"bytes"
	"testing"

	"repro/internal/backend"
	"repro/internal/inc"
	"repro/internal/memproto"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

// fakeDP is a recording Dataplane: emitted frames are captured per
// port and timers fire only when the test says so.
type fakeDP struct {
	station wire.StationID
	ports   map[wire.StationID]int
	emitted []emission
	floods  int
	timers  []func()
	seq     uint64
}

type emission struct {
	port  int
	frame []byte
}

func (d *fakeDP) Station() wire.StationID { return d.station }
func (d *fakeDP) NextReplySeq() uint64    { d.seq++; return d.seq }
func (d *fakeDP) EmitFrame(port int, fr backend.Frame) {
	d.emitted = append(d.emitted, emission{port: port, frame: fr})
}
func (d *fakeDP) FloodFrame(skip int, fr backend.Frame) { d.floods++ }
func (d *fakeDP) StationPort(st wire.StationID) (int, bool) {
	p, ok := d.ports[st]
	return p, ok
}
func (d *fakeDP) ScheduleAfter(_ backend.Duration, fn func()) {
	d.timers = append(d.timers, fn)
}

// fire runs and clears every armed timer.
func (d *fakeDP) fire() {
	ts := d.timers
	d.timers = nil
	for _, fn := range ts {
		fn()
	}
}

func (d *fakeDP) take() []emission {
	out := d.emitted
	d.emitted = nil
	return out
}

var gen = oid.NewSeededGenerator(99)

const (
	homeSt   = wire.StationID(7)
	readerSt = wire.StationID(2)
)

func memFrame(t *testing.T, h wire.Header, m memproto.Msg) []byte {
	t.Helper()
	fr, err := wire.Encode(&h, m.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// respFrame is a clean single-fragment read response from the home.
func respFrame(t *testing.T, obj oid.ID, off uint64, data []byte) []byte {
	t.Helper()
	return memFrame(t,
		wire.Header{Type: wire.MsgMem, Flags: wire.FlagResponse,
			Src: homeSt, Dst: readerSt, Object: obj, Seq: 1, Ack: 4},
		memproto.Msg{Op: memproto.OpReadResp, Status: memproto.StatusOK,
			Offset: off, Version: 3, Data: data})
}

func newCacheEngine(t *testing.T) (*inc.Engine, *fakeDP) {
	t.Helper()
	dp := &fakeDP{station: 2001, ports: map[wire.StationID]int{homeSt: 0, readerSt: 1}}
	e, err := inc.New("sw", dp, inc.Config{Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	return e, dp
}

func handle(t *testing.T, e *inc.Engine, ingress int, fr []byte) bool {
	t.Helper()
	var h wire.Header
	if err := h.DecodeFrom(fr); err != nil {
		t.Fatal(err)
	}
	return e.HandleFrame(ingress, &h, fr)
}

func TestCacheLearnsAndServes(t *testing.T) {
	e, dp := newCacheEngine(t)
	obj := gen.New()
	data := bytes.Repeat([]byte{0xab}, 64)

	// A passing read response is learned, forwarded, and claimed.
	resp := respFrame(t, obj, 100, data)
	if handle(t, e, 0, resp) {
		t.Fatal("read response consumed; must forward")
	}
	if e.Counters().CacheInserts != 1 {
		t.Fatalf("CacheInserts = %d", e.Counters().CacheInserts)
	}
	if wire.Payload(resp)[memproto.IncCacheClaimOff] != 1 {
		t.Fatal("forwarded response not claimed")
	}

	// A read inside the cached range, addressed to the home, is served
	// out the ingress: transport ack (reliable request) then response.
	req := memFrame(t,
		wire.Header{Type: wire.MsgMem, Flags: wire.FlagReliable,
			Src: readerSt, Dst: homeSt, Object: obj, Seq: 9},
		memproto.Msg{Op: memproto.OpReadReq, Offset: 110, Length: 16})
	if !handle(t, e, 1, req) {
		t.Fatal("in-range read not served")
	}
	out := dp.take()
	if len(out) != 2 {
		t.Fatalf("emitted %d frames, want ack+response", len(out))
	}
	var ah, rh wire.Header
	if err := ah.DecodeFrom(out[0].frame); err != nil || ah.Type != wire.MsgAck || ah.Ack != 9 {
		t.Fatalf("first frame not the transport ack: %+v (%v)", ah, err)
	}
	if err := rh.DecodeFrom(out[1].frame); err != nil {
		t.Fatal(err)
	}
	if out[1].port != 1 || rh.Flags&wire.FlagResponse == 0 || rh.Ack != 9 {
		t.Fatalf("response misdirected: port=%d hdr=%+v", out[1].port, rh)
	}
	var rm memproto.Msg
	if err := rm.Unmarshal(wire.Payload(out[1].frame)); err != nil {
		t.Fatal(err)
	}
	if rm.Op != memproto.OpReadResp || !bytes.Equal(rm.Data, data[10:26]) {
		t.Fatalf("served wrong bytes: op=%v len=%d", rm.Op, len(rm.Data))
	}
	if e.Counters().CacheHits != 1 {
		t.Fatalf("CacheHits = %d", e.Counters().CacheHits)
	}

	// Out-of-range and wrongly-addressed reads fall through to the home.
	miss := memFrame(t,
		wire.Header{Type: wire.MsgMem, Src: readerSt, Dst: homeSt, Object: obj, Seq: 10},
		memproto.Msg{Op: memproto.OpReadReq, Offset: 90, Length: 16})
	if handle(t, e, 1, miss) {
		t.Fatal("out-of-range read served from cache")
	}
	moved := memFrame(t,
		wire.Header{Type: wire.MsgMem, Src: readerSt, Dst: 9, Object: obj, Seq: 11},
		memproto.Msg{Op: memproto.OpReadReq, Offset: 110, Length: 8})
	if handle(t, e, 1, moved) {
		t.Fatal("read addressed to a different home served from cache")
	}
	if e.Counters().CacheMisses != 2 {
		t.Fatalf("CacheMisses = %d", e.Counters().CacheMisses)
	}
}

func TestCacheClaimStopsSecondSwitch(t *testing.T) {
	e1, _ := newCacheEngine(t)
	e2, _ := newCacheEngine(t)
	obj := gen.New()
	resp := respFrame(t, obj, 0, []byte{1, 2, 3, 4})

	handle(t, e1, 0, resp) // learns and claims in flight
	handle(t, e2, 0, resp) // sees the claim downstream
	if e2.Counters().CacheInserts != 0 {
		t.Fatal("second switch cached a claimed response")
	}
}

func TestCacheRejectsUnservableResponses(t *testing.T) {
	e, _ := newCacheEngine(t)
	obj := gen.New()
	for name, m := range map[string]memproto.Msg{
		"fragment": {Op: memproto.OpReadResp, Status: memproto.StatusOK,
			FragOffset: 8, Data: []byte{1}},
		"multi-frame": {Op: memproto.OpReadResp, Status: memproto.StatusOK,
			TotalLen: 4096, Data: []byte{1}},
		"error": {Op: memproto.OpReadResp, Status: memproto.StatusDenied,
			Data: []byte{1}},
		"empty": {Op: memproto.OpReadResp, Status: memproto.StatusOK},
		"oversize": {Op: memproto.OpReadResp, Status: memproto.StatusOK,
			Data: make([]byte, inc.DefaultCacheLine+1)},
	} {
		fr := memFrame(t, wire.Header{Type: wire.MsgMem, Flags: wire.FlagResponse,
			Src: homeSt, Dst: readerSt, Object: obj, Seq: 1}, m)
		handle(t, e, 0, fr)
		if got := e.Counters().CacheInserts; got != 0 {
			t.Fatalf("%s response cached (inserts=%d)", name, got)
		}
	}
}

func TestCacheInvalidateAndShadow(t *testing.T) {
	e, dp := newCacheEngine(t)
	obj := gen.New()
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	handle(t, e, 0, respFrame(t, obj, 0, data))

	// A passing write evicts the line...
	wr := memFrame(t,
		wire.Header{Type: wire.MsgMem, Src: readerSt, Dst: homeSt, Object: obj, Seq: 20},
		memproto.Msg{Op: memproto.OpWriteReq, Offset: 2, Data: []byte{9}})
	handle(t, e, 1, wr)
	if e.Counters().CacheInvalidates != 1 {
		t.Fatalf("CacheInvalidates = %d", e.Counters().CacheInvalidates)
	}
	req := memFrame(t,
		wire.Header{Type: wire.MsgMem, Src: readerSt, Dst: homeSt, Object: obj, Seq: 21},
		memproto.Msg{Op: memproto.OpReadReq, Offset: 0, Length: 4})
	if handle(t, e, 1, req) {
		t.Fatal("read served from an invalidated line")
	}

	// ...and shadows the object: a stale pre-write response drifting in
	// afterwards must not re-seed the cache until the shadow expires.
	handle(t, e, 0, respFrame(t, obj, 0, data))
	if e.Counters().CacheInserts != 1 {
		t.Fatal("stale response re-seeded a shadowed object")
	}
	dp.fire() // shadow window expires
	handle(t, e, 0, respFrame(t, obj, 0, data))
	if e.Counters().CacheInserts != 2 {
		t.Fatal("fresh response not cached after the shadow expired")
	}
	_ = dp.take()
}

func incInvFrame(t *testing.T, obj oid.ID, opID, group uint64, claimed bool) []byte {
	t.Helper()
	h := wire.Header{Type: wire.MsgIncInv, Src: homeSt, Dst: wire.StationAny,
		Object: obj, Seq: 30}
	fr, err := wire.Encode(&h, memproto.EncodeIncInv(opID, group, claimed))
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func incAckFrame(t *testing.T, obj oid.ID, from wire.StationID, opID, group, bitmap uint64) []byte {
	t.Helper()
	h := wire.Header{Type: wire.MsgIncAck, Src: from, Dst: homeSt,
		Object: obj, Seq: 31}
	fr, err := wire.Encode(&h, memproto.EncodeIncAck(opID, group, bitmap))
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// members in sorted (bitmap) order; 3 and 4 share an egress port.
var groupMembers = []wire.StationID{2, 3, 4}

func newGroupEngine(t *testing.T, cfg inc.Config) (*inc.Engine, *fakeDP) {
	t.Helper()
	dp := &fakeDP{station: 2001, ports: map[wire.StationID]int{
		homeSt: 0, 2: 1, 3: 2, 4: 2,
	}}
	e, err := inc.New("sw", dp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.InstallGroup(5, groupMembers)
	return e, dp
}

func TestGroupReplicatesPerEgressPort(t *testing.T) {
	e, dp := newGroupEngine(t, inc.Config{Mcast: true})
	obj := gen.New()

	fr := incInvFrame(t, obj, 11, 5, false)
	if !handle(t, e, 0, fr) {
		t.Fatal("multicast invalidation not consumed")
	}
	out := dp.take()
	if len(out) != 2 || out[0].port != 1 || out[1].port != 2 {
		t.Fatalf("replicated to ports %v, want one copy each on 1 and 2", out)
	}
	if e.Counters().McastReplicated != 2 {
		t.Fatalf("McastReplicated = %d", e.Counters().McastReplicated)
	}

	// Replicas must not alias the ingress buffer: the pipeline recycles
	// it before the deferred emission happens.
	for i := range fr {
		fr[i] = 0xff
	}
	for _, em := range out {
		var h wire.Header
		if err := h.DecodeFrom(em.frame); err != nil {
			t.Fatalf("replica aliased the recycled ingress buffer: %v", err)
		}
		if _, g, _, ok := memproto.DecodeIncInv(wire.Payload(em.frame)); !ok || g != 5 {
			t.Fatalf("replica payload corrupted: group=%d ok=%v", g, ok)
		}
	}
}

func TestGroupSkipsIngressPort(t *testing.T) {
	e, dp := newGroupEngine(t, inc.Config{Mcast: true})
	obj := gen.New()
	// Arriving on port 2 (members 3 and 4 live behind it): reverse-path
	// forwarding covers them upstream, only member 2 gets a copy.
	handle(t, e, 2, incInvFrame(t, obj, 11, 5, false))
	out := dp.take()
	if len(out) != 1 || out[0].port != 1 {
		t.Fatalf("replicated to %v, want only port 1", out)
	}
}

func TestGroupUnknownFloodsAndPurgeStops(t *testing.T) {
	e, dp := newGroupEngine(t, inc.Config{Mcast: true})
	obj := gen.New()

	handle(t, e, 0, incInvFrame(t, obj, 11, 6, false)) // group 6 never installed
	if dp.floods != 1 || e.Counters().McastFloods != 1 {
		t.Fatalf("unknown group: floods=%d counter=%d", dp.floods, e.Counters().McastFloods)
	}

	if !handle(t, e, 0, incInvFrame(t, obj, 11, 0, false)) {
		t.Fatal("group-0 purge not consumed")
	}
	if got := dp.take(); len(got) != 0 {
		t.Fatalf("group-0 purge replicated: %v", got)
	}
}

func TestAggCoalescesAcks(t *testing.T) {
	e, dp := newGroupEngine(t, inc.Config{Mcast: true, AckAgg: true})
	obj := gen.New()

	handle(t, e, 0, incInvFrame(t, obj, 11, 5, false))
	for _, em := range dp.take() {
		if _, _, claimed, _ := memproto.DecodeIncInv(wire.Payload(em.frame)); !claimed {
			t.Fatal("replicated copy not claimed by the aggregating switch")
		}
	}

	// Two of three acks absorb silently; the last completes the bitmap
	// and one aggregated ack goes to the home.
	for _, st := range groupMembers[:2] {
		if !handle(t, e, int(st), incAckFrame(t, obj, st, 11, 5, 0)) {
			t.Fatalf("member %d ack not absorbed", st)
		}
		if got := dp.take(); len(got) != 0 {
			t.Fatalf("partial aggregation leaked %d frames", len(got))
		}
	}
	handle(t, e, 2, incAckFrame(t, obj, 4, 11, 5, 0))
	out := dp.take()
	if len(out) != 1 || out[0].port != 0 {
		t.Fatalf("aggregate: %v, want one frame to the home port", out)
	}
	opID, group, bitmap, ok := memproto.DecodeIncAck(wire.Payload(out[0].frame))
	if !ok || opID != 11 || group != 5 || bitmap != 0b111 {
		t.Fatalf("aggregate payload: op=%d group=%d bitmap=%b", opID, group, bitmap)
	}
	c := e.Counters()
	if c.AcksCoalesced != 3 || c.AggAcksSent != 1 || c.AggTimeouts != 0 {
		t.Fatalf("counters: %+v", c)
	}

	// The round is closed: a straggling duplicate forwards untouched.
	if handle(t, e, 1, incAckFrame(t, obj, 2, 11, 5, 0)) {
		t.Fatal("ack absorbed into a completed aggregation")
	}
}

func TestAggTimeoutNeverFabricates(t *testing.T) {
	e, dp := newGroupEngine(t, inc.Config{Mcast: true, AckAgg: true})
	obj := gen.New()

	handle(t, e, 0, incInvFrame(t, obj, 11, 5, false))
	dp.take()
	handle(t, e, 1, incAckFrame(t, obj, 2, 11, 5, 0))
	handle(t, e, 2, incAckFrame(t, obj, 3, 11, 5, 0))
	// Member 4 is dead. The flush must carry exactly the two acks the
	// switch holds — bit 2 (member 4) stays clear.
	dp.fire()
	out := dp.take()
	if len(out) != 1 {
		t.Fatalf("flush emitted %d frames", len(out))
	}
	_, _, bitmap, _ := memproto.DecodeIncAck(wire.Payload(out[0].frame))
	if bitmap != 0b011 {
		t.Fatalf("flush bitmap = %b, fabricated a dead sharer's ack", bitmap)
	}
	if e.Counters().AggTimeouts != 1 {
		t.Fatalf("AggTimeouts = %d", e.Counters().AggTimeouts)
	}
}

func TestAggEmptyTimeoutSendsNothing(t *testing.T) {
	e, dp := newGroupEngine(t, inc.Config{Mcast: true, AckAgg: true})
	handle(t, e, 0, incInvFrame(t, gen.New(), 11, 5, false))
	dp.take()
	dp.fire()
	if out := dp.take(); len(out) != 0 {
		t.Fatalf("zero-ack flush emitted %d frames", len(out))
	}
	if e.Counters().AggTimeouts != 1 || e.Counters().AggAcksSent != 0 {
		t.Fatalf("counters: %+v", e.Counters())
	}
}

func TestAggRespectsUpstreamClaim(t *testing.T) {
	e, dp := newGroupEngine(t, inc.Config{Mcast: true, AckAgg: true})
	obj := gen.New()

	// An already-claimed invalidation still replicates but must not
	// start a second aggregation here.
	handle(t, e, 0, incInvFrame(t, obj, 11, 5, true))
	if len(dp.take()) != 2 {
		t.Fatal("claimed invalidation not replicated")
	}
	if handle(t, e, 1, incAckFrame(t, obj, 2, 11, 5, 0)) {
		t.Fatal("ack absorbed without a claimed aggregation")
	}
}

// TestObjectTableEvictionDropsCacheLine covers the coupling between
// the forwarding table and the cache: when an object's forwarding
// rule is recycled by the table's capacity policy, the cached line
// must go with it — a bypassed switch may otherwise serve stale bytes
// for an object the fabric no longer routes through it.
func TestObjectTableEvictionDropsCacheLine(t *testing.T) {
	e, dp := newCacheEngine(t)
	// A two-entry object-routing table (16-byte object key + overhead),
	// recycling LRU like the controller-programmed tables.
	const keyBytes = 16
	tbl, err := p4sim.NewTable("obj",
		[]p4sim.Key{{Field: wire.FieldObject, Kind: p4sim.MatchExact}},
		p4sim.TableConfig{
			MemoryBytes: 2 * (keyBytes + p4sim.EntryOverheadBytes),
			Eviction:    p4sim.EvictLRU,
		})
	if err != nil {
		t.Fatal(err)
	}
	e.CoupleObjectTable(tbl)

	obj := gen.New()
	route := func(o oid.ID) {
		t.Helper()
		err := tbl.Insert(p4sim.Entry{
			Match:  []p4sim.KeyValue{{Value: wire.ValueOfID(o)}},
			Action: p4sim.Action{Type: p4sim.ActForward, Port: 0},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	route(obj)
	handle(t, e, 0, respFrame(t, obj, 0, []byte{1, 2, 3, 4}))
	if e.Counters().CacheInserts != 1 {
		t.Fatal("line not cached")
	}

	// Two fresh rules push the cached object's rule out (LRU).
	route(gen.New())
	route(gen.New())
	if e.Counters().CacheInvalidates != 1 {
		t.Fatalf("CacheInvalidates = %d after rule eviction", e.Counters().CacheInvalidates)
	}
	req := memFrame(t,
		wire.Header{Type: wire.MsgMem, Src: readerSt, Dst: homeSt, Object: obj, Seq: 40},
		memproto.Msg{Op: memproto.OpReadReq, Offset: 0, Length: 4})
	if handle(t, e, 1, req) {
		t.Fatal("stale read served after the forwarding rule was evicted")
	}
	_ = dp.take()
}
