// Package crdt implements convergent replicated data types — the
// "auto-merging progressive objects like CRDTs" the paper plans to
// support during data movement (§5). When two replicas of an object
// diverge (e.g., both sides updated a counter while a copy was cached
// remotely), merging their states on movement converges them without
// coordination.
//
// Three classic types are provided: a grow-only counter (G-Counter), a
// last-writer-wins register, and an observed-remove set. All marshal
// through package serde so they can live inside global-address-space
// objects.
package crdt

import (
	"fmt"
	"sort"

	"repro/internal/serde"
	"repro/internal/wire"
)

// GCounter is a grow-only counter: one monotone slot per station;
// value = sum; merge = slot-wise max.
type GCounter struct {
	slots map[wire.StationID]uint64
}

// NewGCounter creates an empty counter.
func NewGCounter() *GCounter {
	return &GCounter{slots: make(map[wire.StationID]uint64)}
}

// Inc adds n at station st.
func (c *GCounter) Inc(st wire.StationID, n uint64) {
	c.slots[st] += n
}

// Value returns the counter total.
func (c *GCounter) Value() uint64 {
	var sum uint64
	for _, v := range c.slots {
		sum += v
	}
	return sum
}

// Merge folds other into c (slot-wise max); c converges toward the
// join of both histories.
func (c *GCounter) Merge(other *GCounter) {
	for st, v := range other.slots {
		if v > c.slots[st] {
			c.slots[st] = v
		}
	}
}

// Marshal encodes the counter.
func (c *GCounter) Marshal() []byte {
	sts := make([]wire.StationID, 0, len(c.slots))
	for st := range c.slots {
		sts = append(sts, st)
	}
	sort.Slice(sts, func(i, j int) bool { return sts[i] < sts[j] })
	e := serde.NewEncoder(16 * len(sts))
	e.PutUvarint(uint64(len(sts)))
	for _, st := range sts {
		e.PutUint64(uint64(st))
		e.PutUint64(c.slots[st])
	}
	return e.Bytes()
}

// UnmarshalGCounter decodes a counter.
func UnmarshalGCounter(raw []byte) (*GCounter, error) {
	d := serde.NewDecoder(raw)
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("crdt: absurd slot count %d", n)
	}
	c := NewGCounter()
	for i := uint64(0); i < n; i++ {
		st := wire.StationID(d.Uint64())
		v := d.Uint64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		c.slots[st] = v
	}
	return c, nil
}

// LWWRegister is a last-writer-wins register ordered by (timestamp,
// station) so concurrent writes resolve deterministically.
type LWWRegister struct {
	Value   []byte
	Stamp   uint64
	Station wire.StationID
}

// Set writes value at a timestamp (virtual time) from a station; it is
// a no-op if (stamp, station) does not dominate the current write.
func (r *LWWRegister) Set(value []byte, stamp uint64, st wire.StationID) {
	if stamp > r.Stamp || (stamp == r.Stamp && st > r.Station) {
		r.Value = append([]byte(nil), value...)
		r.Stamp = stamp
		r.Station = st
	}
}

// Merge folds other into r.
func (r *LWWRegister) Merge(other *LWWRegister) {
	r.Set(other.Value, other.Stamp, other.Station)
}

// Marshal encodes the register.
func (r *LWWRegister) Marshal() []byte {
	e := serde.NewEncoder(24 + len(r.Value))
	e.PutUint64(r.Stamp)
	e.PutUint64(uint64(r.Station))
	e.PutBytes(r.Value)
	return e.Bytes()
}

// UnmarshalLWW decodes a register.
func UnmarshalLWW(raw []byte) (*LWWRegister, error) {
	d := serde.NewDecoder(raw)
	r := &LWWRegister{}
	r.Stamp = d.Uint64()
	r.Station = wire.StationID(d.Uint64())
	r.Value = d.Bytes()
	return r, d.Err()
}

// ORSet is an observed-remove set: adds tag elements with unique
// (station, counter) tags; removes delete only observed tags, so a
// concurrent add wins over a remove (add-wins semantics).
type ORSet struct {
	station wire.StationID
	next    uint64
	// present maps element → live tags; tombs maps element → removed
	// tags.
	present map[string]map[uint64]bool
	tombs   map[string]map[uint64]bool
}

// NewORSet creates an empty set owned by a station (tags it generates
// embed the station so they are globally unique).
func NewORSet(st wire.StationID) *ORSet {
	return &ORSet{
		station: st,
		present: make(map[string]map[uint64]bool),
		tombs:   make(map[string]map[uint64]bool),
	}
}

// tag packs (station, counter) into one uint64: high 16 bits station
// (sufficient for simulations), low 48 counter.
func (s *ORSet) newTag() uint64 {
	s.next++
	return uint64(s.station)<<48 | (s.next & (1<<48 - 1))
}

// Add inserts an element.
func (s *ORSet) Add(elem string) {
	t := s.newTag()
	if s.present[elem] == nil {
		s.present[elem] = make(map[uint64]bool)
	}
	s.present[elem][t] = true
}

// Remove deletes the element's observed tags.
func (s *ORSet) Remove(elem string) {
	tags := s.present[elem]
	if len(tags) == 0 {
		return
	}
	if s.tombs[elem] == nil {
		s.tombs[elem] = make(map[uint64]bool)
	}
	for t := range tags {
		s.tombs[elem][t] = true
	}
	delete(s.present, elem)
}

// Contains reports membership.
func (s *ORSet) Contains(elem string) bool {
	return len(s.present[elem]) > 0
}

// Elems returns the members, sorted.
func (s *ORSet) Elems() []string {
	out := make([]string, 0, len(s.present))
	for e, tags := range s.present {
		if len(tags) > 0 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// Merge folds other into s: union adds, union tombstones, then drop
// tombstoned tags.
func (s *ORSet) Merge(other *ORSet) {
	for e, tags := range other.present {
		if s.present[e] == nil {
			s.present[e] = make(map[uint64]bool)
		}
		for t := range tags {
			s.present[e][t] = true
		}
	}
	for e, tags := range other.tombs {
		if s.tombs[e] == nil {
			s.tombs[e] = make(map[uint64]bool)
		}
		for t := range tags {
			s.tombs[e][t] = true
		}
	}
	for e, tombs := range s.tombs {
		for t := range tombs {
			delete(s.present[e], t)
		}
		if len(s.present[e]) == 0 {
			delete(s.present, e)
		}
	}
	// Advance the tag counter past anything seen so future local tags
	// stay unique.
	if other.next > s.next {
		s.next = other.next
	}
}

// Marshal encodes the set.
func (s *ORSet) Marshal() []byte {
	e := serde.NewEncoder(256)
	e.PutUint64(uint64(s.station))
	e.PutUint64(s.next)
	marshalTagMap(e, s.present)
	marshalTagMap(e, s.tombs)
	return e.Bytes()
}

func marshalTagMap(e *serde.Encoder, m map[string]map[uint64]bool) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.PutUvarint(uint64(len(keys)))
	for _, k := range keys {
		e.PutString(k)
		tags := make([]uint64, 0, len(m[k]))
		for t := range m[k] {
			tags = append(tags, t)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		e.PutUvarint(uint64(len(tags)))
		for _, t := range tags {
			e.PutUint64(t)
		}
	}
}

func unmarshalTagMap(d *serde.Decoder) (map[string]map[uint64]bool, error) {
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > 1<<22 {
		return nil, fmt.Errorf("crdt: absurd element count %d", n)
	}
	out := make(map[string]map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		k := d.String()
		tn := d.Uvarint()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if tn > 1<<22 {
			return nil, fmt.Errorf("crdt: absurd tag count %d", tn)
		}
		tags := make(map[uint64]bool, tn)
		for j := uint64(0); j < tn; j++ {
			tags[d.Uint64()] = true
		}
		out[k] = tags
	}
	return out, d.Err()
}

// UnmarshalORSet decodes a set.
func UnmarshalORSet(raw []byte) (*ORSet, error) {
	d := serde.NewDecoder(raw)
	s := &ORSet{}
	s.station = wire.StationID(d.Uint64())
	s.next = d.Uint64()
	var err error
	if s.present, err = unmarshalTagMap(d); err != nil {
		return nil, err
	}
	if s.tombs, err = unmarshalTagMap(d); err != nil {
		return nil, err
	}
	return s, d.Err()
}
