package crdt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGCounterBasics(t *testing.T) {
	c := NewGCounter()
	c.Inc(1, 5)
	c.Inc(2, 3)
	c.Inc(1, 2)
	if c.Value() != 10 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestGCounterMergeConverges(t *testing.T) {
	a, b := NewGCounter(), NewGCounter()
	a.Inc(1, 5)
	b.Inc(2, 7)
	b.Inc(1, 3) // b saw an older view of station 1
	a.Merge(b)
	b.Merge(a)
	if a.Value() != b.Value() {
		t.Fatalf("diverged: %d vs %d", a.Value(), b.Value())
	}
	if a.Value() != 12 { // max(5,3) + 7
		t.Fatalf("Value = %d, want 12", a.Value())
	}
}

func TestGCounterMergeIdempotentCommutative(t *testing.T) {
	a, b := NewGCounter(), NewGCounter()
	a.Inc(1, 4)
	b.Inc(2, 6)
	a.Merge(b)
	v := a.Value()
	a.Merge(b) // idempotent
	if a.Value() != v {
		t.Fatal("merge not idempotent")
	}
	// Commutative.
	x, y := NewGCounter(), NewGCounter()
	x.Inc(1, 4)
	y.Inc(2, 6)
	y.Merge(x)
	if y.Value() != v {
		t.Fatal("merge not commutative")
	}
}

func TestGCounterMarshalRoundTrip(t *testing.T) {
	c := NewGCounter()
	c.Inc(1, 5)
	c.Inc(9, 100)
	got, err := UnmarshalGCounter(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Value() != c.Value() {
		t.Fatalf("Value = %d", got.Value())
	}
	if _, err := UnmarshalGCounter([]byte{0xFF}); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestLWWRegister(t *testing.T) {
	var r LWWRegister
	r.Set([]byte("first"), 10, 1)
	r.Set([]byte("older"), 5, 2) // loses: older stamp
	if string(r.Value) != "first" {
		t.Fatalf("Value = %q", r.Value)
	}
	r.Set([]byte("newer"), 20, 1)
	if string(r.Value) != "newer" {
		t.Fatalf("Value = %q", r.Value)
	}
	// Concurrent (same stamp): higher station wins.
	var a, b LWWRegister
	a.Set([]byte("from-1"), 30, 1)
	b.Set([]byte("from-2"), 30, 2)
	a.Merge(&b)
	b.Merge(&a)
	if string(a.Value) != "from-2" || string(b.Value) != "from-2" {
		t.Fatalf("tie-break: a=%q b=%q", a.Value, b.Value)
	}
}

func TestLWWMarshalRoundTrip(t *testing.T) {
	var r LWWRegister
	r.Set([]byte("payload"), 42, 7)
	got, err := UnmarshalLWW(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, r.Value) || got.Stamp != 42 || got.Station != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestORSetAddRemove(t *testing.T) {
	s := NewORSet(1)
	s.Add("x")
	s.Add("y")
	if !s.Contains("x") || !s.Contains("y") {
		t.Fatal("add")
	}
	s.Remove("x")
	if s.Contains("x") {
		t.Fatal("remove")
	}
	// Remove of absent element is a no-op.
	s.Remove("z")
	got := s.Elems()
	if len(got) != 1 || got[0] != "y" {
		t.Fatalf("Elems = %v", got)
	}
}

func TestORSetAddWins(t *testing.T) {
	// Replica A removes "x" while replica B concurrently re-adds it:
	// after merge, the add wins (B's tag was not observed by A).
	a := NewORSet(1)
	a.Add("x")
	b := NewORSet(2)
	b.Merge(a) // b sees a's add
	a.Remove("x")
	b.Add("x") // concurrent re-add with a fresh tag
	a.Merge(b)
	b.Merge(a)
	if !a.Contains("x") || !b.Contains("x") {
		t.Fatal("add-wins violated")
	}
}

func TestORSetRemoveWinsOverObservedAdd(t *testing.T) {
	a := NewORSet(1)
	a.Add("x")
	b := NewORSet(2)
	b.Merge(a)
	b.Remove("x") // removes the observed tag
	a.Merge(b)
	if a.Contains("x") {
		t.Fatal("observed remove did not propagate")
	}
}

func TestORSetMergeConverges(t *testing.T) {
	a, b := NewORSet(1), NewORSet(2)
	a.Add("p")
	a.Add("q")
	b.Add("q")
	b.Add("r")
	a.Remove("p")
	a.Merge(b)
	b.Merge(a)
	ae, be := a.Elems(), b.Elems()
	if len(ae) != len(be) {
		t.Fatalf("diverged: %v vs %v", ae, be)
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("diverged: %v vs %v", ae, be)
		}
	}
}

func TestORSetMarshalRoundTrip(t *testing.T) {
	s := NewORSet(3)
	s.Add("alpha")
	s.Add("beta")
	s.Remove("alpha")
	got, err := UnmarshalORSet(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Contains("alpha") || !got.Contains("beta") {
		t.Fatalf("round trip: %v", got.Elems())
	}
	// Tombstones survive: re-merging the original does not resurrect.
	got.Merge(s)
	if got.Contains("alpha") {
		t.Fatal("tombstone lost in marshal")
	}
	if _, err := UnmarshalORSet([]byte{1, 2}); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestPropertyGCounterMergeIsMax(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a, b := NewGCounter(), NewGCounter()
		for i, v := range av {
			a.Inc(1, uint64(v))
			_ = i
		}
		for _, v := range bv {
			b.Inc(2, uint64(v))
		}
		av1, bv1 := a.Value(), b.Value()
		a.Merge(b)
		// Merge never loses counts.
		return a.Value() >= av1 && a.Value() >= bv1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyORSetMergeCommutes(t *testing.T) {
	f := func(adds1, adds2 []byte) bool {
		a, b := NewORSet(1), NewORSet(2)
		for _, e := range adds1 {
			a.Add(string(rune('a' + e%16)))
		}
		for _, e := range adds2 {
			b.Add(string(rune('a' + e%16)))
		}
		ab := NewORSet(3)
		ab.Merge(a)
		ab.Merge(b)
		ba := NewORSet(4)
		ba.Merge(b)
		ba.Merge(a)
		x, y := ab.Elems(), ba.Elems()
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
