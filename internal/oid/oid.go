// Package oid implements 128-bit object identifiers for the global
// address space.
//
// Following the paper (§3.1), the ID space is large enough that new IDs
// can be allocated without a centralized arbiter: a fresh ID is drawn
// from secure randomness and the chance of collision is vanishingly
// small. For deterministic simulation the package also provides a
// seeded generator.
package oid

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
)

// Size is the encoded size of an ID in bytes.
const Size = 16

// ID is a 128-bit object identifier. The zero ID is invalid and never
// allocated; it is used as a sentinel ("no object").
type ID struct {
	Hi uint64
	Lo uint64
}

// Nil is the zero ID.
var Nil ID

// ErrBadID reports a malformed textual or binary ID.
var ErrBadID = errors.New("oid: malformed object ID")

// IsNil reports whether id is the zero ID.
func (id ID) IsNil() bool { return id.Hi == 0 && id.Lo == 0 }

// Bytes returns the big-endian 16-byte encoding of id.
func (id ID) Bytes() [Size]byte {
	var b [Size]byte
	binary.BigEndian.PutUint64(b[0:8], id.Hi)
	binary.BigEndian.PutUint64(b[8:16], id.Lo)
	return b
}

// PutBytes writes the big-endian encoding of id into b, which must be
// at least Size bytes long.
func (id ID) PutBytes(b []byte) {
	_ = b[Size-1]
	binary.BigEndian.PutUint64(b[0:8], id.Hi)
	binary.BigEndian.PutUint64(b[8:16], id.Lo)
}

// FromBytes decodes an ID from the first Size bytes of b.
func FromBytes(b []byte) (ID, error) {
	if len(b) < Size {
		return Nil, fmt.Errorf("%w: need %d bytes, have %d", ErrBadID, Size, len(b))
	}
	return ID{
		Hi: binary.BigEndian.Uint64(b[0:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}, nil
}

// String formats id as 32 lowercase hex digits with a colon between the
// two 64-bit halves, e.g. "00000000deadbeef:0123456789abcdef".
func (id ID) String() string {
	var b [Size]byte
	id.PutBytes(b[:])
	dst := make([]byte, 33)
	hex.Encode(dst[0:16], b[0:8])
	dst[16] = ':'
	hex.Encode(dst[17:33], b[8:16])
	return string(dst)
}

// Short returns an abbreviated form of the ID for logs: the low 8 hex
// digits.
func (id ID) Short() string {
	return fmt.Sprintf("%08x", uint32(id.Lo))
}

// Parse decodes the textual form produced by String. It also accepts
// the 32-hex-digit form without the colon.
func Parse(s string) (ID, error) {
	switch len(s) {
	case 33:
		if s[16] != ':' {
			return Nil, fmt.Errorf("%w: missing separator in %q", ErrBadID, s)
		}
		s = s[:16] + s[17:]
	case 32:
	default:
		return Nil, fmt.Errorf("%w: wrong length %d", ErrBadID, len(s))
	}
	var raw [Size]byte
	if _, err := hex.Decode(raw[:], []byte(s)); err != nil {
		return Nil, fmt.Errorf("%w: %v", ErrBadID, err)
	}
	return FromBytes(raw[:])
}

// Compare returns -1, 0, or +1 ordering IDs lexicographically by their
// big-endian encoding.
func (id ID) Compare(other ID) int {
	switch {
	case id.Hi < other.Hi:
		return -1
	case id.Hi > other.Hi:
		return 1
	case id.Lo < other.Lo:
		return -1
	case id.Lo > other.Lo:
		return 1
	}
	return 0
}

// Less reports whether id orders before other.
func (id ID) Less(other ID) bool { return id.Compare(other) < 0 }

// Hash64 folds the ID to 64 bits for use in hash-based structures that
// cannot afford the full width (e.g. the 64-bit switch-table key mode
// measured in §3.2).
func (id ID) Hash64() uint64 {
	// Mix the halves so that IDs differing only in Hi still spread.
	x := id.Hi ^ (id.Lo * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Generator allocates fresh IDs. The zero value is not usable; construct
// with NewGenerator (secure randomness) or NewSeededGenerator
// (deterministic, for simulation).
type Generator struct {
	mu   sync.Mutex
	rnd  *mrand.Rand // nil => crypto/rand
	used map[ID]struct{}
}

// NewGenerator returns a Generator backed by crypto/rand, matching the
// paper's "secure random numbers" allocation policy.
func NewGenerator() *Generator {
	return &Generator{used: make(map[ID]struct{})}
}

// NewSeededGenerator returns a deterministic Generator for simulations
// and tests.
func NewSeededGenerator(seed int64) *Generator {
	return &Generator{
		rnd:  mrand.New(mrand.NewSource(seed)),
		used: make(map[ID]struct{}),
	}
}

// random draws raw random words (callers hold g.mu).
func (g *Generator) random() ID {
	if g.rnd != nil {
		return ID{Hi: g.rnd.Uint64(), Lo: g.rnd.Uint64()}
	}
	var b [Size]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable.
		panic("oid: crypto/rand failed: " + err.Error())
	}
	id, _ := FromBytes(b[:])
	return id
}

// NewInPrefix allocates a fresh ID whose high bits match p — the
// allocation policy behind hierarchical identifier overlays (§3.2),
// where a node's objects share its prefix so one switch rule covers
// them all. It panics if the prefix's ID space is effectively
// exhausted (a /128 prefix holds exactly one ID).
func (g *Generator) NewInPrefix(p Prefix) ID {
	g.mu.Lock()
	defer g.mu.Unlock()
	for attempt := 0; ; attempt++ {
		id := g.random()
		switch {
		case p.Bits <= 0:
			// Whole space: nothing to force.
		case p.Bits <= 64:
			mask := ^uint64(0) << uint(64-p.Bits)
			id.Hi = (p.ID.Hi & mask) | (id.Hi &^ mask)
		default:
			mask := ^uint64(0) << uint(128-p.Bits)
			id.Hi = p.ID.Hi
			id.Lo = (p.ID.Lo & mask) | (id.Lo &^ mask)
		}
		if !id.IsNil() {
			if _, dup := g.used[id]; !dup {
				g.used[id] = struct{}{}
				return id
			}
		}
		if attempt > 1<<16 {
			panic("oid: prefix ID space exhausted: " + p.String())
		}
	}
}

// New allocates a fresh non-nil ID, never repeating an ID from this
// generator.
func (g *Generator) New() ID {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		id := g.random()
		if id.IsNil() {
			continue
		}
		if _, dup := g.used[id]; dup {
			continue
		}
		g.used[id] = struct{}{}
		return id
	}
}

// Prefix is a hierarchical ID prefix: the high Bits bits of an ID. It
// supports the overlay routing schemes sketched in §3.2 ("hierarchical
// identifier overlay schemes") where switches route on a prefix of the
// object ID rather than exact entries.
type Prefix struct {
	ID   ID
	Bits int // 0..128
}

// MakePrefix masks id down to its high bits and returns the prefix.
func MakePrefix(id ID, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 128 {
		bits = 128
	}
	p := Prefix{Bits: bits}
	switch {
	case bits == 0:
		// ID stays Nil: matches everything.
	case bits <= 64:
		p.ID.Hi = id.Hi &^ (^uint64(0) >> uint(bits))
	default:
		p.ID.Hi = id.Hi
		p.ID.Lo = id.Lo &^ (^uint64(0) >> uint(bits-64))
	}
	return p
}

// Matches reports whether id falls under the prefix.
func (p Prefix) Matches(id ID) bool {
	switch {
	case p.Bits <= 0:
		return true
	case p.Bits <= 64:
		mask := ^uint64(0) << uint(64-p.Bits)
		return id.Hi&mask == p.ID.Hi&mask
	default:
		if id.Hi != p.ID.Hi {
			return false
		}
		mask := ^uint64(0) << uint(128-p.Bits)
		return id.Lo&mask == p.ID.Lo&mask
	}
}

// String formats the prefix as "<id>/<bits>".
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.ID, p.Bits)
}

// Contains reports whether p covers every ID that q covers (p is a
// shorter-or-equal prefix of q).
func (p Prefix) Contains(q Prefix) bool {
	return p.Bits <= q.Bits && p.Matches(q.ID)
}
