package oid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNilID(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	if (ID{Hi: 1}).IsNil() {
		t.Fatal("non-zero ID reported nil")
	}
	if (ID{Lo: 1}).IsNil() {
		t.Fatal("non-zero ID reported nil")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	id := ID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	b := id.Bytes()
	got, err := FromBytes(b[:])
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if got != id {
		t.Fatalf("round trip: got %v want %v", got, id)
	}
}

func TestFromBytesShort(t *testing.T) {
	if _, err := FromBytes(make([]byte, 15)); err == nil {
		t.Fatal("FromBytes accepted 15 bytes")
	}
}

func TestStringParse(t *testing.T) {
	id := ID{Hi: 0xdeadbeef, Lo: 0x0123456789abcdef}
	s := id.String()
	if !strings.Contains(s, ":") {
		t.Fatalf("String() missing separator: %q", s)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if got != id {
		t.Fatalf("Parse(String()) = %v, want %v", got, id)
	}
	// No-colon form.
	got2, err := Parse(strings.ReplaceAll(s, ":", ""))
	if err != nil {
		t.Fatalf("Parse no-colon: %v", err)
	}
	if got2 != id {
		t.Fatalf("no-colon parse mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "xyz", strings.Repeat("0", 31), strings.Repeat("0", 34),
		strings.Repeat("0", 16) + "_" + strings.Repeat("0", 16),
		strings.Repeat("g", 32),
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{ID{}, ID{}, 0},
		{ID{Hi: 1}, ID{Hi: 2}, -1},
		{ID{Hi: 2}, ID{Hi: 1}, 1},
		{ID{Hi: 1, Lo: 5}, ID{Hi: 1, Lo: 9}, -1},
		{ID{Hi: 1, Lo: 9}, ID{Hi: 1, Lo: 5}, 1},
		{ID{Hi: 7, Lo: 7}, ID{Hi: 7, Lo: 7}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("Less(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewSeededGenerator(42)
	seen := make(map[ID]struct{})
	for i := 0; i < 10000; i++ {
		id := g.New()
		if id.IsNil() {
			t.Fatal("generator produced Nil")
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate ID %v", id)
		}
		seen[id] = struct{}{}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewSeededGenerator(7), NewSeededGenerator(7)
	for i := 0; i < 100; i++ {
		if x, y := a.New(), b.New(); x != y {
			t.Fatalf("seeded generators diverged at %d: %v vs %v", i, x, y)
		}
	}
}

func TestNewInPrefix(t *testing.T) {
	g := NewSeededGenerator(9)
	p := MakePrefix(ID{Hi: 0xABCD_0000_0000_0000}, 16)
	seen := map[ID]bool{}
	for i := 0; i < 500; i++ {
		id := g.NewInPrefix(p)
		if !p.Matches(id) {
			t.Fatalf("ID %v outside prefix %v", id, p)
		}
		if seen[id] {
			t.Fatalf("duplicate %v", id)
		}
		seen[id] = true
	}
	// Long prefixes (>64 bits) too.
	p2 := MakePrefix(ID{Hi: 7, Lo: 0xFF00_0000_0000_0000}, 72)
	for i := 0; i < 100; i++ {
		if id := g.NewInPrefix(p2); !p2.Matches(id) {
			t.Fatalf("ID %v outside long prefix", id)
		}
	}
	// Zero-bit prefix behaves like New.
	if id := g.NewInPrefix(MakePrefix(Nil, 0)); id.IsNil() {
		t.Fatal("nil ID from /0 prefix")
	}
}

func TestPropertyNewInPrefixMatches(t *testing.T) {
	g := NewSeededGenerator(10)
	f := func(hi, lo uint64, bits uint8) bool {
		p := MakePrefix(ID{Hi: hi, Lo: lo}, int(bits)%129)
		return p.Matches(g.NewInPrefix(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSecureGenerator(t *testing.T) {
	g := NewGenerator()
	a, b := g.New(), g.New()
	if a == b {
		t.Fatal("secure generator repeated an ID")
	}
	if a.IsNil() || b.IsNil() {
		t.Fatal("secure generator produced Nil")
	}
}

func TestPrefixBasic(t *testing.T) {
	id := ID{Hi: 0xAABBCCDD_00000000, Lo: 0x11223344_55667788}
	p := MakePrefix(id, 32)
	if !p.Matches(id) {
		t.Fatal("prefix does not match its own ID")
	}
	other := ID{Hi: 0xAABBCCDD_FFFFFFFF, Lo: 0}
	if !p.Matches(other) {
		t.Fatal("prefix /32 should match ID sharing high 32 bits")
	}
	diff := ID{Hi: 0xAABBCCDE_00000000}
	if p.Matches(diff) {
		t.Fatal("prefix matched ID with different high bits")
	}
}

func TestPrefixLongerThan64(t *testing.T) {
	id := ID{Hi: 0x1, Lo: 0xFF00000000000000}
	p := MakePrefix(id, 72)
	if !p.Matches(ID{Hi: 0x1, Lo: 0xFF12345678ABCDEF}) {
		t.Fatal("prefix /72 should match IDs sharing Hi and high 8 bits of Lo")
	}
	if p.Matches(ID{Hi: 0x1, Lo: 0xFE00000000000000}) {
		t.Fatal("prefix /72 matched wrong Lo bits")
	}
	if p.Matches(ID{Hi: 0x2, Lo: 0xFF00000000000000}) {
		t.Fatal("prefix /72 matched wrong Hi")
	}
}

func TestPrefixExtremes(t *testing.T) {
	id := ID{Hi: 5, Lo: 9}
	if !MakePrefix(id, 0).Matches(ID{Hi: 123, Lo: 456}) {
		t.Fatal("/0 prefix should match everything")
	}
	p := MakePrefix(id, 128)
	if !p.Matches(id) {
		t.Fatal("/128 prefix should match exactly its ID")
	}
	if p.Matches(ID{Hi: 5, Lo: 8}) {
		t.Fatal("/128 prefix matched different ID")
	}
	// Clamping.
	if MakePrefix(id, -5).Bits != 0 || MakePrefix(id, 500).Bits != 128 {
		t.Fatal("MakePrefix did not clamp bits")
	}
}

func TestPrefixContains(t *testing.T) {
	id := ID{Hi: 0xABCD000000000000}
	p16 := MakePrefix(id, 16)
	p32 := MakePrefix(id, 32)
	if !p16.Contains(p32) {
		t.Fatal("/16 should contain /32 of same ID")
	}
	if p32.Contains(p16) {
		t.Fatal("/32 should not contain /16")
	}
	other := MakePrefix(ID{Hi: 0x1234000000000000}, 32)
	if p16.Contains(other) {
		t.Fatal("/16 contained unrelated /32")
	}
}

func TestPropertyStringParseRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		id := ID{Hi: hi, Lo: lo}
		got, err := Parse(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBytesRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		id := ID{Hi: hi, Lo: lo}
		b := id.Bytes()
		got, err := FromBytes(b[:])
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a, b := ID{Hi: a1, Lo: a2}, ID{Hi: b1, Lo: b2}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPrefixMatchesSelf(t *testing.T) {
	f := func(hi, lo uint64, bits uint8) bool {
		id := ID{Hi: hi, Lo: lo}
		return MakePrefix(id, int(bits)%129).Matches(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHash64Deterministic(t *testing.T) {
	f := func(hi, lo uint64) bool {
		id := ID{Hi: hi, Lo: lo}
		return id.Hash64() == id.Hash64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Spreads(t *testing.T) {
	// IDs differing in one bit should (almost always) hash differently.
	g := NewSeededGenerator(1)
	collisions := 0
	for i := 0; i < 1000; i++ {
		id := g.New()
		flipped := ID{Hi: id.Hi ^ 1, Lo: id.Lo}
		if id.Hash64() == flipped.Hash64() {
			collisions++
		}
	}
	if collisions > 1 {
		t.Fatalf("Hash64 collided %d/1000 times on single-bit flips", collisions)
	}
}

func TestShort(t *testing.T) {
	id := ID{Hi: 0, Lo: 0xDEADBEEF}
	if got := id.Short(); got != "deadbeef" {
		t.Fatalf("Short() = %q", got)
	}
}

func BenchmarkGeneratorSeeded(b *testing.B) {
	g := NewSeededGenerator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.New()
	}
}

func BenchmarkIDString(b *testing.B) {
	id := ID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = id.String()
	}
}
