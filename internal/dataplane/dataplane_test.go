package dataplane

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

func TestBufRefCounting(t *testing.T) {
	b := GetBuf(100)
	if b.Len() != 100 {
		t.Fatalf("len = %d, want 100", b.Len())
	}
	if b.Refs() != 1 {
		t.Fatalf("fresh buf refs = %d, want 1", b.Refs())
	}
	b.Retain()
	if b.Refs() != 2 {
		t.Fatalf("after Retain refs = %d, want 2", b.Refs())
	}
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("after Release refs = %d, want 1", b.Refs())
	}
	b.Release()
}

func TestBufOverReleasePanics(t *testing.T) {
	// An unpooled buffer so the over-released buf cannot poison a pool.
	b := &Buf{b: make([]byte, 8)}
	b.refs.Store(1)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	b.Release()
}

func TestBufPoolReuse(t *testing.T) {
	b := GetBuf(64)
	b.Bytes()[0] = 0xAA
	first := b
	b.Release()
	// sync.Pool gives no reuse guarantee, but single-goroutine
	// get-after-put normally returns the same object; tolerate either,
	// only require a correctly sized, fully owned buffer.
	c := GetBuf(64)
	defer c.Release()
	if c.Len() != 64 || c.Refs() != 1 {
		t.Fatalf("reused buf len = %d refs = %d", c.Len(), c.Refs())
	}
	if c == first && cap(c.Bytes()) < 64 {
		t.Fatal("reused buffer lost its capacity")
	}
}

func TestBufOversizeUnpooled(t *testing.T) {
	n := wire.TracedHeaderSize + wire.MaxPayload + 1
	b := GetBuf(n)
	if b.Len() != n {
		t.Fatalf("len = %d, want %d", b.Len(), n)
	}
	if b.pool != nil {
		t.Fatal("oversize buffer should not be pooled")
	}
	b.Release()
}

func TestEncodeFrameMatchesWireEncode(t *testing.T) {
	h := wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2, Seq: 7}
	payload := []byte("the payload")
	want, err := wire.Encode(&h, payload)
	if err != nil {
		t.Fatal(err)
	}
	h2 := wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2, Seq: 7}
	b, err := EncodeFrame(&h2, payload)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("EncodeFrame bytes differ from wire.Encode:\n got %x\nwant %x", b.Bytes(), want)
	}
	var dec wire.Header
	if err := dec.DecodeFrom(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if dec.Type != wire.MsgMem || dec.Seq != 7 || !bytes.Equal(wire.Payload(b.Bytes()), payload) {
		t.Fatalf("round trip mismatch: %+v", dec)
	}
}

func TestEncodeFrameTooLarge(t *testing.T) {
	h := wire.Header{Type: wire.MsgMem}
	if _, err := EncodeFrame(&h, make([]byte, wire.MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestMuxDispatchByType(t *testing.T) {
	m := NewMux()
	var memCalls, rpcCalls int
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { memCalls++; return true })
	m.Handle(wire.MsgRPC, func(h *wire.Header, p []byte) bool { rpcCalls++; return true })

	if !m.Dispatch(&wire.Header{Type: wire.MsgMem}, nil) {
		t.Fatal("mem frame not consumed")
	}
	if !m.Dispatch(&wire.Header{Type: wire.MsgRPC}, nil) {
		t.Fatal("rpc frame not consumed")
	}
	if memCalls != 1 || rpcCalls != 1 {
		t.Fatalf("calls = %d, %d", memCalls, rpcCalls)
	}
	st := m.Stats()
	if st.Dispatched != 2 || st.Consumed != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMuxHandlerChain(t *testing.T) {
	// Two handlers for one type: dispatch stops at the first consumer
	// (the MsgRPC server/client pattern).
	m := NewMux()
	var order []string
	m.Handle(wire.MsgRPC,
		func(h *wire.Header, p []byte) bool { order = append(order, "server"); return h.Seq == 1 },
		func(h *wire.Header, p []byte) bool { order = append(order, "client"); return true },
	)
	m.Dispatch(&wire.Header{Type: wire.MsgRPC, Seq: 1}, nil)
	m.Dispatch(&wire.Header{Type: wire.MsgRPC, Seq: 2}, nil)
	want := []string{"server", "server", "client"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMuxDefaultHandler(t *testing.T) {
	m := NewMux()
	var got wire.MsgType
	m.SetDefault(func(h *wire.Header, p []byte) bool { got = h.Type; return true })
	if !m.Dispatch(&wire.Header{Type: wire.MsgHello}, nil) {
		t.Fatal("default handler not consulted")
	}
	if got != wire.MsgHello {
		t.Fatalf("got type %v", got)
	}
	m.SetDefault(nil)
	if m.Dispatch(&wire.Header{Type: wire.MsgHello}, nil) {
		t.Fatal("consumed after default removed")
	}
}

func TestMuxDropAccounting(t *testing.T) {
	m := NewMux()
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { return false })

	// Declined by its handler.
	m.Dispatch(&wire.Header{Type: wire.MsgMem}, nil)
	// No handler at all.
	m.Dispatch(&wire.Header{Type: wire.MsgRPC}, nil)
	// Not a defined type.
	m.Dispatch(&wire.Header{Type: wire.MsgType(200)}, nil)

	st := m.Stats()
	if st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", st.Dropped)
	}
	if st.DroppedByType[wire.MsgMem] != 1 || st.DroppedByType[wire.MsgRPC] != 1 {
		t.Fatalf("per-type drops = %v", st.DroppedByType)
	}
	if st.DroppedUnknown != 1 {
		t.Fatalf("DroppedUnknown = %d, want 1", st.DroppedUnknown)
	}
	m.ResetStats()
	if st := m.Stats(); st.Dispatched != 0 || st.Dropped != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestMuxMalformedAndTruncatedFramesNeverPanic(t *testing.T) {
	// Frames that fail header validation never reach a mux in the real
	// stack (transport counts them as ParseDrops); this exercises the
	// mux against every decode outcome anyway — garbage that happens to
	// decode must be dispatched or counted, never panic.
	m := NewMux()
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { return true })

	good, err := wire.Encode(&wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2}, []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	badSum := append([]byte(nil), good...)
	badSum[60] ^= 0xFF // corrupt Ack field; checksum no longer matches
	unknownType, err := wire.Encode(&wire.Header{Type: wire.MsgType(77), Src: 1, Dst: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		fr      []byte
		decodes bool
	}{
		{"empty", nil, false},
		{"truncated header", good[:10], false},
		{"bad magic", badMagic, false},
		{"bad checksum", badSum, false},
		{"garbage", bytes.Repeat([]byte{0x5A}, 64), false},
		{"valid", good, true},
		{"unknown type", unknownType, true},
	}
	var wantDrops uint64
	for _, tc := range cases {
		var h wire.Header
		err := h.DecodeFrom(tc.fr)
		if (err == nil) != tc.decodes {
			t.Fatalf("%s: decode err = %v, want decodes=%v", tc.name, err, tc.decodes)
		}
		if err != nil {
			continue
		}
		consumed := m.Dispatch(&h, wire.Payload(tc.fr))
		if !consumed {
			wantDrops++
		}
	}
	st := m.Stats()
	if st.DroppedUnknown != 1 || st.Dropped != wantDrops {
		t.Fatalf("stats = %+v, want %d drops incl. 1 unknown", st, wantDrops)
	}
}

func TestWithTelemetryMiddleware(t *testing.T) {
	m := NewMux()
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { return true })
	var frames, bytesC telemetry.Counter
	m.Use(WithTelemetry(&frames, &bytesC))

	m.Dispatch(&wire.Header{Type: wire.MsgMem}, make([]byte, 10))
	m.Dispatch(&wire.Header{Type: wire.MsgMem}, make([]byte, 5))
	if frames.Value() != 2 || bytesC.Value() != 15 {
		t.Fatalf("frames = %d, bytes = %d", frames.Value(), bytesC.Value())
	}
}

func TestWithTraceMiddleware(t *testing.T) {
	m := NewMux()
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { return true })
	var traces []Trace
	m.Use(WithTrace(func(tr Trace) { traces = append(traces, tr) }))

	m.Dispatch(&wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2}, make([]byte, 4))
	m.Dispatch(&wire.Header{Type: wire.MsgRPC, Src: 3, Dst: 4}, nil)
	if len(traces) != 2 {
		t.Fatalf("traces = %v", traces)
	}
	if traces[0].Type != wire.MsgMem || !traces[0].Consumed || traces[0].Bytes != 4 {
		t.Fatalf("trace[0] = %+v", traces[0])
	}
	if traces[1].Type != wire.MsgRPC || traces[1].Consumed {
		t.Fatalf("trace[1] = %+v", traces[1])
	}
}

func TestWithObserverMiddleware(t *testing.T) {
	m := NewMux()
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { return true })
	var seen int
	m.Use(WithObserver(func(h *wire.Header, n int, ok bool) {
		seen++
		if h.Type != wire.MsgMem || n != 3 || !ok {
			t.Fatalf("observer got type=%v n=%d ok=%v", h.Type, n, ok)
		}
	}))
	m.Dispatch(&wire.Header{Type: wire.MsgMem}, make([]byte, 3))
	if seen != 1 {
		t.Fatalf("observer called %d times", seen)
	}
}

func TestWithFaultMiddleware(t *testing.T) {
	m := NewMux()
	var delivered int
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { delivered++; return true })
	m.Use(m.WithFault(func(h *wire.Header) bool { return h.Seq%2 == 0 }))

	for seq := uint64(0); seq < 4; seq++ {
		m.Dispatch(&wire.Header{Type: wire.MsgMem, Seq: seq}, nil)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
	st := m.Stats()
	if st.FaultDrops != 2 {
		t.Fatalf("FaultDrops = %d, want 2", st.FaultDrops)
	}
	if st.Dropped != 0 {
		t.Fatalf("fault drops leaked into Dropped: %+v", st)
	}
}

func TestMiddlewareOrder(t *testing.T) {
	m := NewMux()
	m.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { return true })
	var order []string
	mk := func(name string) Middleware {
		return func(next Handler) Handler {
			return func(h *wire.Header, p []byte) bool {
				order = append(order, name)
				return next(h, p)
			}
		}
	}
	m.Use(mk("outer"))
	m.Use(mk("inner"))
	m.Dispatch(&wire.Header{Type: wire.MsgMem}, nil)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}
