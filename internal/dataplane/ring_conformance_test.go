package dataplane_test

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/backend/conformance"
	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/realnet"
)

// Ring links are a backend.Link implementation in their own right, so
// they must pass the same contract suite the fabric backends do — over
// both inner backends, and including the batch contracts (a ring drain
// is inherently batched: N pushes, one doorbell). Same-group traffic
// here never touches the inner link, so these runs exercise the ring's
// own FIFO, refcount, and MTU behaviour; the cross-group fallback path
// is the inner backend's suite, which already runs elsewhere.

// ringSimFixture wraps two netsim hosts in one co-residence group; the
// one-tick drain delay models the same-host handoff.
func ringSimFixture(t *testing.T) *conformance.Fixture {
	sim := netsim.NewSim(1)
	net := netsim.NewNetwork(sim)
	a, err := netsim.NewHost(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewHost(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(a, 0, b, 0, netsim.LinkConfig{
		Latency:    2 * netsim.Microsecond,
		BitsPerSec: 10_000_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	g := dataplane.NewRingGroup(dataplane.RingConfig{Delay: netsim.Microsecond})
	ra := g.Join(1, a)
	rb := g.Join(2, b)
	return &conformance.Fixture{
		A: ra, B: rb,
		StA: 1, StB: 2,
		Settle: func(d backend.Duration) { sim.RunFor(d) },
	}
}

// ringRealFixture wraps two realnet UDP links in one group: ring
// pushes and drains run under the cluster's upcall mutex with genuine
// reader-goroutine concurrency on the fallback path, so -race watches
// the single-writer claim.
func ringRealFixture(t *testing.T) *conformance.Fixture {
	rn := realnet.NewCluster()
	a, err := rn.NewLink("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rn.NewLink("b", 2)
	if err != nil {
		rn.Close()
		t.Fatal(err)
	}
	rn.Start()
	g := dataplane.NewRingGroup(dataplane.RingConfig{})
	ra := g.Join(1, a)
	rb := g.Join(2, b)
	return &conformance.Fixture{
		A: ra, B: rb,
		StA: 1, StB: 2,
		Settle: func(d backend.Duration) { rn.Sleep(d) },
		Close:  func() { rn.Close() },
	}
}

func TestRingConformance_Netsim(t *testing.T) {
	conformance.Run(t, ringSimFixture)
	conformance.RunBatched(t, ringSimFixture)
}

func TestRingConformance_Realnet(t *testing.T) {
	conformance.Run(t, ringRealFixture)
	conformance.RunBatched(t, ringRealFixture)
}
