// Package dataplane is the unified frame path shared by every layer
// that produces or consumes GASP frames: a reference-counted frame
// buffer pool (Buf) so encode → transport send → fabric delivery →
// parse → handler dispatch reuse one allocation instead of copying at
// every hop, and a per-node Mux that dispatches decoded frames to
// handlers registered by message type, wrapped in composable
// middleware (telemetry counters, trace events, fault-injection
// hooks) with explicit drop accounting for unclaimed frames.
//
// # Buffer ownership rules
//
// A Buf is born with one reference, owned by the caller of GetBuf (or
// EncodeFrame). Ownership passes with the frame:
//
//   - netsim.Network.SendBuf consumes one reference per call: the
//     network releases it when the frame is dropped, or after the
//     receiving device's Recv/RecvBuf returns. A sender that wants to
//     keep the frame (e.g. for retransmission) must Retain before
//     sending and Release when done.
//   - A device forwarding a received frame out additional ports (a
//     switch flooding) Retains once per scheduled transmission; each
//     SendBuf consumes one.
//   - Frame receivers and mux handlers borrow: header and payload
//     views are valid only until the dispatch call returns. A handler
//     that stores payload bytes past that point must copy them.
//
// Plain []byte frames (tests, switch-generated replies) keep working:
// a nil buffer means the garbage collector owns the frame and no
// recycling happens.
package dataplane

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// bufClasses are the pooled capacity classes. Frames larger than the
// biggest class (a jumbo payload plus header) are allocated directly
// and never recycled.
var bufClasses = [...]int{
	256,
	4096,
	wire.TracedHeaderSize + wire.MaxPayload,
}

var pools = func() [len(bufClasses)]*sync.Pool {
	var ps [len(bufClasses)]*sync.Pool
	for i, size := range bufClasses {
		size := size
		ps[i] = &sync.Pool{New: func() any {
			return &Buf{b: make([]byte, 0, size), pool: ps[i]}
		}}
	}
	return ps
}()

// liveBufs counts buffers with at least one outstanding reference.
// The invariant checker compares it across quiescent points: a drained
// simulation must return every frame buffer it took.
var liveBufs atomic.Int64

// LiveBufs reports the number of buffers currently held live (acquired
// by GetBuf and not yet fully released).
func LiveBufs() int64 { return liveBufs.Load() }

// Buf is a reference-counted frame buffer. See the package comment
// for the ownership rules.
type Buf struct {
	b    []byte
	refs atomic.Int32
	pool *sync.Pool // nil when the buffer is not recycled
}

// GetBuf returns a buffer of length n with one reference, drawn from
// the pool when a capacity class fits.
func GetBuf(n int) *Buf {
	liveBufs.Add(1)
	for i, size := range bufClasses {
		if n <= size {
			b := pools[i].Get().(*Buf)
			b.b = b.b[:n]
			b.refs.Store(1)
			return b
		}
	}
	b := &Buf{b: make([]byte, n)}
	b.refs.Store(1)
	return b
}

// Bytes returns the buffer's contents. The slice is valid only while
// the caller holds a reference.
func (b *Buf) Bytes() []byte { return b.b }

// Len returns the buffer length.
func (b *Buf) Len() int { return len(b.b) }

// Retain adds a reference.
func (b *Buf) Retain() { b.refs.Add(1) }

// Release drops a reference; the last release returns the buffer to
// its pool. Releasing more times than retained is a bug and panics.
func (b *Buf) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		liveBufs.Add(-1)
		if b.pool != nil {
			b.b = b.b[:0]
			b.pool.Put(b)
		}
	case n < 0:
		panic(fmt.Sprintf("dataplane: Buf over-released (refs %d)", n))
	}
}

// Refs reports the current reference count (for tests).
func (b *Buf) Refs() int32 { return b.refs.Load() }

// EncodeFrame encodes a complete frame (header + payload) into a
// pooled buffer, mirroring wire.Encode without the per-message
// allocation. The caller owns the returned buffer's single reference.
func EncodeFrame(h *wire.Header, payload []byte) (*Buf, error) {
	if len(payload) > wire.MaxPayload {
		return nil, fmt.Errorf("%w: %d", wire.ErrTooLarge, len(payload))
	}
	h.PayloadLen = uint32(len(payload))
	hdrLen := h.WireLen()
	b := GetBuf(hdrLen + len(payload))
	if err := h.MarshalInto(b.b); err != nil {
		b.Release()
		return nil, err
	}
	copy(b.b[hdrLen:], payload)
	return b, nil
}
