package dataplane_test

// End-to-end hot-path allocation benchmarks: encode → transport send →
// switch forwarding → delivery → parse → mux dispatch. These ran
// unchanged against the pre-dataplane tree to establish the baseline
// the allocation-regression CI step guards.

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

type benchNet struct {
	sim *netsim.Sim
	a   *transport.Endpoint
	b   *transport.Endpoint
}

func newBenchNet(tb testing.TB) *benchNet {
	sim := netsim.NewSim(1)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw", 4, p4sim.SwitchConfig{LearnStations: true})
	if err != nil {
		tb.Fatal(err)
	}
	ha, err := netsim.NewHost(net, "a")
	if err != nil {
		tb.Fatal(err)
	}
	hb, err := netsim.NewHost(net, "b")
	if err != nil {
		tb.Fatal(err)
	}
	link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond, BitsPerSec: 10_000_000_000}
	if err := net.Connect(ha, 0, sw, 0, link); err != nil {
		tb.Fatal(err)
	}
	if err := net.Connect(hb, 0, sw, 1, link); err != nil {
		tb.Fatal(err)
	}
	return &benchNet{
		sim: sim,
		a:   transport.NewEndpoint(ha, 1, transport.Config{}),
		b:   transport.NewEndpoint(hb, 2, transport.Config{}),
	}
}

func BenchmarkDataplane_SendDeliver(b *testing.B) {
	n := newBenchNet(b)
	delivered := 0
	n.b.SetHandler(func(h *wire.Header, p []byte) { delivered++ })
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, payload); err != nil {
			b.Fatal(err)
		}
		n.sim.Run()
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

func BenchmarkDataplane_ReliableRoundTrip(b *testing.B) {
	n := newBenchNet(b)
	n.b.SetHandler(func(h *wire.Header, p []byte) {
		n.b.Respond(h, wire.Header{Type: wire.MsgMem}, p)
	})
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := false
		_, err := n.a.Request(wire.Header{Type: wire.MsgMem, Dst: 2}, payload, 0,
			func(resp *wire.Header, p []byte, err error) {
				if err != nil {
					b.Fatal(err)
				}
				got = true
			})
		if err != nil {
			b.Fatal(err)
		}
		n.sim.Run()
		if !got {
			b.Fatal("no response")
		}
	}
}

func BenchmarkDataplane_LargePayload(b *testing.B) {
	n := newBenchNet(b)
	delivered := 0
	n.b.SetHandler(func(h *wire.Header, p []byte) { delivered++ })
	payload := make([]byte, 32*1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, payload); err != nil {
			b.Fatal(err)
		}
		n.sim.Run()
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
