package dataplane

import (
	"repro/internal/backend"
	"repro/internal/wire"
)

// This file is the same-host fast path: co-located nodes exchange
// frames through SPSC rings of refcounted Bufs instead of the full
// network stack — the shared-memory-queue idea from "Telepathic
// Datacenters", expressed over the exact Buf ownership rules the rest
// of the dataplane already obeys.
//
// Concurrency model: rings have no locks or atomics. Both backends
// already serialize everything that touches them — netsim because the
// whole simulation is one goroutine, realnet because every upcall,
// timer, and Exec body runs under the cluster's upcall mutex — so an
// SPSC ring here is plain single-threaded code. The conformance suite
// runs the ring under -race to keep that claim honest.

// RingDefaultSlots is the ring capacity when RingConfig.Slots is 0.
const RingDefaultSlots = 1024

// Ring is a bounded FIFO queue of in-flight frames between one
// producer and one consumer. A pushed frame's buffer reference is
// owned by the ring until the consumer releases it after delivery;
// a push that finds the ring full fails and the producer must count
// and release the frame (same contract as a dropped link frame).
type Ring struct {
	slots []ringSlot
	head  int // next pop
	tail  int // next push
	n     int
}

type ringSlot struct {
	fr  backend.Frame
	buf backend.FrameBuffer
}

// NewRing creates a ring with the given capacity (RingDefaultSlots
// when slots <= 0).
func NewRing(slots int) *Ring {
	if slots <= 0 {
		slots = RingDefaultSlots
	}
	return &Ring{slots: make([]ringSlot, slots)}
}

// Push enqueues a frame, taking ownership of one buf reference.
// It reports false (without taking ownership) when the ring is full.
func (r *Ring) Push(fr backend.Frame, buf backend.FrameBuffer) bool {
	if r.n == len(r.slots) {
		return false
	}
	r.slots[r.tail] = ringSlot{fr: fr, buf: buf}
	r.tail++
	if r.tail == len(r.slots) {
		r.tail = 0
	}
	r.n++
	return true
}

// Pop dequeues the oldest frame. The caller assumes the ring's buffer
// reference and must Release it after the frame is consumed.
func (r *Ring) Pop() (backend.Frame, backend.FrameBuffer, bool) {
	if r.n == 0 {
		return nil, nil, false
	}
	s := r.slots[r.head]
	r.slots[r.head] = ringSlot{}
	r.head++
	if r.head == len(r.slots) {
		r.head = 0
	}
	r.n--
	return s.fr, s.buf, true
}

// Len reports the number of queued frames.
func (r *Ring) Len() int { return r.n }

// RingStats counts one RingLink's same-host traffic.
type RingStats struct {
	// RingSent counts frames that took the ring instead of the fabric.
	RingSent uint64
	// RingDelivered counts frames handed to this link's upcall from
	// its inbound rings.
	RingDelivered uint64
	// RingDroppedFull counts frames lost to a full ring.
	RingDroppedFull uint64
}

// RingConfig shapes a RingGroup.
type RingConfig struct {
	// Slots is each directed ring's capacity (RingDefaultSlots if 0).
	Slots int
	// Delay is the modeled doorbell latency between a push and the
	// consumer's drain (0 = next scheduling instant). Under netsim
	// this is the simulated cost of the same-host handoff; under
	// realnet it should stay 0.
	Delay backend.Duration
}

// RingGroup is a set of co-located stations whose mutual traffic
// bypasses the network through directed SPSC rings. Build one group
// per host ("co-residence domain"), then wrap each member's Link with
// Join before binding the transport endpoint to it.
type RingGroup struct {
	cfg     RingConfig
	members map[wire.StationID]*RingLink
}

// NewRingGroup creates an empty co-residence group.
func NewRingGroup(cfg RingConfig) *RingGroup {
	return &RingGroup{cfg: cfg, members: make(map[wire.StationID]*RingLink)}
}

// Join wraps inner as a ring-accelerated link for station st and adds
// it to the group. Frames addressed to another member travel through
// a directed ring; everything else — broadcasts, OID-routed frames,
// remote stations — uses inner unchanged.
func (g *RingGroup) Join(st wire.StationID, inner backend.Link) *RingLink {
	l := &RingLink{inner: inner, st: st, group: g}
	l.drainFn = l.drain
	g.members[st] = l
	return l
}

// RingLink is one member's view of a RingGroup: a backend.Link that
// short-circuits same-group traffic. It implements backend.BatchLink —
// a drain hands every queued frame to the batch upcall in one call,
// the ring counterpart of doorbell-coalesced delivery.
type RingLink struct {
	inner backend.Link
	st    wire.StationID
	group *RingGroup

	// tx holds the directed ring to each peer this link has sent to
	// (lazily created; SPSC because only this link pushes to it).
	tx map[wire.StationID]*Ring
	// rx holds inbound rings in the order their producers first
	// appeared — drains walk them in this stable order.
	rx []*Ring

	onFrame    func(fr backend.Frame)
	onBatch    func(frs []backend.Frame)
	drainArmed bool
	drainFn    func()
	frs        []backend.Frame // drain scratch
	bufs       []backend.FrameBuffer
	stats      RingStats
}

// Stats returns a copy of the link's ring counters.
func (l *RingLink) Stats() RingStats { return l.stats }

// Inner returns the wrapped link.
func (l *RingLink) Inner() backend.Link { return l.inner }

// SendBuf implements backend.Link: same-group unicast frames are
// pushed onto the peer's inbound ring (full ring = counted drop,
// exactly a lossy link); everything else goes out the inner link.
func (l *RingLink) SendBuf(fr backend.Frame, buf backend.FrameBuffer) {
	if dst, ok := wire.PeekDst(fr); ok && dst != wire.StationBroadcast && dst != wire.StationAny && dst != l.st {
		if peer, ok := l.group.members[dst]; ok {
			r := l.tx[dst]
			if r == nil {
				r = NewRing(l.group.cfg.Slots)
				if l.tx == nil {
					l.tx = make(map[wire.StationID]*Ring)
				}
				l.tx[dst] = r
				peer.rx = append(peer.rx, r)
			}
			if !r.Push(fr, buf) {
				l.stats.RingDroppedFull++
				if buf != nil {
					buf.Release()
				}
				return
			}
			l.stats.RingSent++
			peer.armDrain()
			return
		}
	}
	l.inner.SendBuf(fr, buf)
}

// armDrain schedules one drain on the consumer's clock if none is
// pending — the doorbell: N pushes, one wakeup.
func (l *RingLink) armDrain() {
	if l.drainArmed {
		return
	}
	l.drainArmed = true
	l.inner.Clock().Schedule(l.group.cfg.Delay, l.drainFn)
}

// drain empties every inbound ring, delivering frames through the
// batch upcall when installed (one call for the whole batch) and
// per-frame otherwise. Ring buffer references release after the
// upcall returns — the same borrow rules as fabric delivery.
func (l *RingLink) drain() {
	l.drainArmed = false
	for _, r := range l.rx {
		for {
			fr, buf, ok := r.Pop()
			if !ok {
				break
			}
			l.frs = append(l.frs, fr)
			l.bufs = append(l.bufs, buf)
		}
	}
	if len(l.frs) == 0 {
		return
	}
	l.stats.RingDelivered += uint64(len(l.frs))
	if l.onBatch != nil {
		l.onBatch(l.frs)
	} else if l.onFrame != nil {
		for _, fr := range l.frs {
			l.onFrame(fr)
		}
	}
	for i, buf := range l.bufs {
		if buf != nil {
			buf.Release()
		}
		l.bufs[i] = nil
		l.frs[i] = nil
	}
	l.frs = l.frs[:0]
	l.bufs = l.bufs[:0]
}

// SetOnFrame implements backend.Link: the upcall serves both ring
// deliveries and inner-link arrivals.
func (l *RingLink) SetOnFrame(fn func(fr backend.Frame)) {
	l.onFrame = fn
	l.inner.SetOnFrame(fn)
}

// SetOnFrameBatch implements backend.BatchLink for ring drains, and
// passes the handler through when the inner link batches too.
func (l *RingLink) SetOnFrameBatch(fn func(frs []backend.Frame)) {
	l.onBatch = fn
	if bl, ok := l.inner.(backend.BatchLink); ok {
		bl.SetOnFrameBatch(fn)
	}
}

// Clock implements backend.Link.
func (l *RingLink) Clock() backend.Clock { return l.inner.Clock() }

// Exec implements backend.Link.
func (l *RingLink) Exec(fn func()) { l.inner.Exec(fn) }

// MTU implements backend.Link. Ring frames never fragment differently
// from fabric frames: the inner link's MTU governs both paths, so a
// transfer's fragment sizing is independent of co-residence.
func (l *RingLink) MTU() int { return l.inner.MTU() }
