package dataplane

import (
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Handler consumes one decoded frame. It returns true when the frame
// was consumed; false lets the next handler registered for the type
// (or the default handler) try. Header and payload are borrowed: a
// handler that keeps payload bytes past its return must copy them.
type Handler func(h *wire.Header, payload []byte) bool

// Middleware wraps a dispatch chain. Middleware installed with Use
// sees every frame before type-based routing, so it can count, trace,
// or drop frames uniformly for all handlers.
type Middleware func(next Handler) Handler

// Stats is a snapshot of a mux's dispatch accounting. Unclaimed
// frames — a type nobody registered for, or one every handler
// declined — are counted as drops instead of vanishing silently.
type Stats struct {
	// Dispatched counts frames entering the mux.
	Dispatched uint64
	// Consumed counts frames some handler accepted.
	Consumed uint64
	// Dropped counts unclaimed frames (Dispatched - Consumed minus
	// middleware FaultDrops).
	Dropped uint64
	// DroppedByType breaks drops down by message type; types outside
	// the defined range are lumped into DroppedUnknown.
	DroppedByType [wire.NumMsgTypes]uint64
	// DroppedUnknown counts drops of frames whose type byte is not a
	// defined message type.
	DroppedUnknown uint64
	// FaultDrops counts frames discarded by WithFault middleware.
	FaultDrops uint64
}

// Drops returns total unclaimed-frame drops (excluding injected
// fault drops).
func (s Stats) Drops() uint64 { return s.Dropped }

// Mux routes decoded frames to handlers registered by message type.
// Registration order is dispatch order within a type; handlers for
// the same type form a chain that stops at the first consumer. The
// zero number of handlers plus no default means the frame is dropped
// and accounted. Mux is not safe for concurrent use; like the rest of
// the simulator it runs on the single event-loop goroutine.
type Mux struct {
	handlers [wire.NumMsgTypes][]Handler
	fallback Handler
	mw       []Middleware
	entry    Handler
	stats    Stats
}

// NewMux creates an empty mux.
func NewMux() *Mux {
	m := &Mux{}
	m.rebuild()
	return m
}

// Handle registers handlers for message type t, after any already
// registered for t.
func (m *Mux) Handle(t wire.MsgType, hs ...Handler) {
	m.handlers[t] = append(m.handlers[t], hs...)
}

// SetDefault installs a catch-all handler consulted when no typed
// handler consumes a frame (nil removes it). Frames the default
// handler declines are counted as drops.
func (m *Mux) SetDefault(h Handler) { m.fallback = h }

// Use appends middleware around the whole dispatch chain. The first
// middleware installed is the outermost.
func (m *Mux) Use(mw ...Middleware) {
	m.mw = append(m.mw, mw...)
	m.rebuild()
}

// rebuild composes the middleware chain around the core dispatcher.
func (m *Mux) rebuild() {
	h := m.route
	for i := len(m.mw) - 1; i >= 0; i-- {
		h = m.mw[i](h)
	}
	m.entry = h
}

// Dispatch routes one decoded frame, reporting whether any handler
// consumed it. Unconsumed frames increment the drop counters.
func (m *Mux) Dispatch(h *wire.Header, payload []byte) bool {
	m.stats.Dispatched++
	return m.entry(h, payload)
}

// BatchItem is one decoded frame of a delivery batch: the parsed
// header by value (so batch slices are reusable scratch with no
// aliasing into per-frame state) and the borrowed payload view.
type BatchItem struct {
	H       wire.Header
	Payload []byte
}

// DispatchBatch routes every frame of a delivery batch in order
// through the same middleware chain as Dispatch — the receive-side
// half of doorbell coalescing: one upcall, N frames, identical
// routing and accounting. Headers and payloads are borrowed for the
// duration of the call.
func (m *Mux) DispatchBatch(items []BatchItem) {
	for i := range items {
		m.stats.Dispatched++
		m.entry(&items[i].H, items[i].Payload)
	}
}

// route is the core dispatcher: typed handlers, then the default,
// then drop accounting.
func (m *Mux) route(h *wire.Header, payload []byte) bool {
	if int(h.Type) < len(m.handlers) {
		for _, fn := range m.handlers[h.Type] {
			if fn(h, payload) {
				m.stats.Consumed++
				return true
			}
		}
	}
	if m.fallback != nil && m.fallback(h, payload) {
		m.stats.Consumed++
		return true
	}
	m.stats.Dropped++
	if h.Type.Valid() {
		m.stats.DroppedByType[h.Type]++
	} else {
		m.stats.DroppedUnknown++
	}
	return false
}

// Stats returns a copy of the dispatch accounting.
func (m *Mux) Stats() Stats { return m.stats }

// ResetStats zeroes the dispatch accounting.
func (m *Mux) ResetStats() { m.stats = Stats{} }

// --- middleware ---

// Trace describes one mux dispatch, for per-hop trace pipelines.
type Trace struct {
	Type     wire.MsgType
	Src, Dst wire.StationID
	Bytes    int
	Consumed bool
}

// WithTrace emits a Trace event for every dispatched frame.
func WithTrace(fn func(Trace)) Middleware {
	return func(next Handler) Handler {
		return func(h *wire.Header, payload []byte) bool {
			ok := next(h, payload)
			fn(Trace{Type: h.Type, Src: h.Src, Dst: h.Dst, Bytes: len(payload), Consumed: ok})
			return ok
		}
	}
}

// dispatchNames pre-concatenates the per-type span names so the
// traced dispatch path does not build a string per frame.
var dispatchNames = func() [wire.NumMsgTypes]string {
	var names [wire.NumMsgTypes]string
	for t := range names {
		names[t] = "dispatch:" + wire.MsgType(t).String()
	}
	return names
}()

// dispatchName returns the span name for a dispatch of type t.
func dispatchName(t wire.MsgType) string {
	if int(t) < len(dispatchNames) {
		return dispatchNames[t]
	}
	return "dispatch:?"
}

// WithSpans records a handler-dispatch span around every traced frame
// (headers carrying wire.FlagTraced), parented to the span the sender
// stamped into the header — the receiver-side leaf of a cross-hop
// trace. Untraced frames pass through untouched.
func WithSpans(rec *trace.Recorder) Middleware {
	return func(next Handler) Handler {
		return func(h *wire.Header, payload []byte) bool {
			if h.Flags&wire.FlagTraced == 0 {
				return next(h, payload)
			}
			sp := rec.StartSpan(trace.Ctx{Trace: h.TraceID, Span: h.SpanID},
				trace.KindDispatch, dispatchName(h.Type))
			ok := next(h, payload)
			if !ok {
				sp.SetAttr("consumed", "false")
			}
			sp.End()
			return ok
		}
	}
}

// WithTelemetry counts dispatched frames and payload bytes into the
// given telemetry counters (either may be nil).
func WithTelemetry(frames, bytes *telemetry.Counter) Middleware {
	return func(next Handler) Handler {
		return func(h *wire.Header, payload []byte) bool {
			if frames != nil {
				frames.Inc()
			}
			if bytes != nil {
				bytes.Add(uint64(len(payload)))
			}
			return next(h, payload)
		}
	}
}

// WithObserver invokes fn after every dispatch with the frame header
// and outcome — the hook RTT recorders and custom telemetry compose
// on.
func WithObserver(fn func(h *wire.Header, payloadBytes int, consumed bool)) Middleware {
	return func(next Handler) Handler {
		return func(h *wire.Header, payload []byte) bool {
			ok := next(h, payload)
			fn(h, len(payload), ok)
			return ok
		}
	}
}

// WithFault discards frames for which drop returns true before any
// handler sees them — the dataplane's fault-injection hook. Discards
// are counted in Stats.FaultDrops and report the frame as consumed
// (it was taken off the wire, just not delivered).
func (m *Mux) WithFault(drop func(h *wire.Header) bool) Middleware {
	return func(next Handler) Handler {
		return func(h *wire.Header, payload []byte) bool {
			if drop(h) {
				m.stats.FaultDrops++
				return true
			}
			return next(h, payload)
		}
	}
}
