package dataplane

import (
	"testing"

	"repro/internal/wire"
)

func ringFrame(t *testing.T, dst wire.StationID, seq uint64) (*Buf, []byte) {
	t.Helper()
	h := wire.Header{Type: wire.MsgMem, Src: 1, Dst: dst, Seq: seq}
	buf, err := EncodeFrame(&h, nil)
	if err != nil {
		t.Fatal(err)
	}
	return buf, buf.Bytes()
}

// TestRingPushPopFIFO pins the bare ring: pushes come back in order,
// Len tracks occupancy, and the consumer owns the popped reference.
func TestRingPushPopFIFO(t *testing.T) {
	base := LiveBufs()
	r := NewRing(4)
	var bufs []*Buf
	for i := uint64(0); i < 4; i++ {
		buf, fr := ringFrame(t, 2, i)
		bufs = append(bufs, buf)
		if !r.Push(fr, buf) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := uint64(0); i < 4; i++ {
		fr, buf, ok := r.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		var h wire.Header
		if err := h.DecodeFrom(fr); err != nil || h.Seq != i {
			t.Fatalf("pop %d: seq %d err %v", i, h.Seq, err)
		}
		if buf != bufs[i] {
			t.Fatalf("pop %d returned a different buffer", i)
		}
		buf.Release()
	}
	if _, _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
	if live := LiveBufs(); live != base {
		t.Fatalf("LiveBufs = %d after drain, baseline %d", live, base)
	}
}

// TestRingFullPushReleasesNothing pins the full-ring contract: a
// failed Push does NOT take ownership — the producer must count the
// drop and release, exactly like a lossy link. RingLink.SendBuf is
// that producer; this test walks both halves of the contract and
// asserts buffer balance at the end.
func TestRingFullPushReleasesNothing(t *testing.T) {
	base := LiveBufs()
	r := NewRing(2)
	b1, f1 := ringFrame(t, 2, 1)
	b2, f2 := ringFrame(t, 2, 2)
	b3, f3 := ringFrame(t, 2, 3)
	if !r.Push(f1, b1) || !r.Push(f2, b2) {
		t.Fatal("push below capacity failed")
	}
	if r.Push(f3, b3) {
		t.Fatal("push succeeded on a full ring")
	}
	if b3.Refs() != 1 {
		t.Fatalf("failed push changed refcount to %d", b3.Refs())
	}
	b3.Release() // the producer's drop path
	for {
		_, buf, ok := r.Pop()
		if !ok {
			break
		}
		buf.Release()
	}
	if live := LiveBufs(); live != base {
		t.Fatalf("LiveBufs = %d after full-ring drop cycle, baseline %d", live, base)
	}
}
