package dataplane

import "testing"

func TestLiveBufsBalance(t *testing.T) {
	base := LiveBufs()
	b1 := GetBuf(100)
	b2 := GetBuf(1 << 20) // over the largest class: unpooled path
	if got := LiveBufs(); got != base+2 {
		t.Fatalf("LiveBufs = %d, want %d", got, base+2)
	}
	b1.Retain()
	b1.Release()
	if got := LiveBufs(); got != base+2 {
		t.Fatalf("LiveBufs after retain/release = %d, want %d", got, base+2)
	}
	b1.Release()
	b2.Release()
	if got := LiveBufs(); got != base {
		t.Fatalf("LiveBufs after full release = %d, want %d", got, base)
	}
}
