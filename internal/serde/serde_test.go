package serde

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.PutUint64(math.MaxUint64)
	e.PutUint32(0xDEADBEEF)
	e.PutUvarint(300)
	e.PutFloat64(-3.25)
	e.PutFloat32(1.5)
	d := NewDecoder(e.Bytes())
	if d.Uint64() != math.MaxUint64 {
		t.Fatal("uint64")
	}
	if d.Uint32() != 0xDEADBEEF {
		t.Fatal("uint32")
	}
	if d.Uvarint() != 300 {
		t.Fatal("uvarint")
	}
	if d.Float64() != -3.25 {
		t.Fatal("float64")
	}
	if d.Float32() != 1.5 {
		t.Fatal("float32")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestBytesStringRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutBytes([]byte{1, 2, 3})
	e.PutString("hello")
	e.PutBytes(nil)
	d := NewDecoder(e.Bytes())
	if !bytes.Equal(d.Bytes(), []byte{1, 2, 3}) {
		t.Fatal("bytes")
	}
	if d.String() != "hello" {
		t.Fatal("string")
	}
	if len(d.Bytes()) != 0 || d.Err() != nil {
		t.Fatal("empty bytes")
	}
}

func TestFloat32sRoundTrip(t *testing.T) {
	vs := []float32{0, -1.25, 3.5, float32(math.Pi)}
	e := NewEncoder(0)
	e.PutFloat32s(vs)
	d := NewDecoder(e.Bytes())
	got := d.Float32s()
	if d.Err() != nil || len(got) != len(vs) {
		t.Fatalf("err=%v len=%d", d.Err(), len(got))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("float32s[%d] = %v", i, got[i])
		}
	}
}

func TestTruncatedInputs(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint64(7)
	e.PutBytes([]byte("abcdef"))
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uint64()
		d.Bytes()
		if cut < len(full) && d.Err() == nil {
			t.Fatalf("no error at cut %d", cut)
		}
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("err = %v", d.Err())
		}
	}
}

func TestBadLengthPrefix(t *testing.T) {
	e := NewEncoder(0)
	e.PutUvarint(1 << 40) // huge claimed length
	d := NewDecoder(e.Bytes())
	if d.Bytes() != nil || d.Err() == nil {
		t.Fatal("accepted absurd length")
	}
	d2 := NewDecoder(e.Bytes())
	if d2.Float32s() != nil || d2.Err() == nil {
		t.Fatal("accepted absurd float32s length")
	}
}

func TestErrorSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.Uint64() // fails
	if d.Err() == nil {
		t.Fatal("no error")
	}
	first := d.Err()
	d.Uint32()
	d.Uvarint()
	if d.Err() != first {
		t.Fatal("error not sticky")
	}
	if d.Uint64() != 0 || d.Float64() != 0 {
		t.Fatal("post-error reads not zero")
	}
}

func TestReset(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint64(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset")
	}
}

func TestPropertyMixedRoundTrip(t *testing.T) {
	f := func(a uint64, b uint32, s string, fs []float32, raw []byte) bool {
		e := NewEncoder(0)
		e.PutUvarint(a)
		e.PutUint32(b)
		e.PutString(s)
		e.PutFloat32s(fs)
		e.PutBytes(raw)
		d := NewDecoder(e.Bytes())
		if d.Uvarint() != a || d.Uint32() != b || d.String() != s {
			return false
		}
		got := d.Float32s()
		if len(got) != len(fs) {
			return false
		}
		for i := range fs {
			if got[i] != fs[i] && !(math.IsNaN(float64(got[i])) && math.IsNaN(float64(fs[i]))) {
				return false
			}
		}
		return bytes.Equal(d.Bytes(), raw) == (len(raw) > 0) || len(raw) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeFloat32s(b *testing.B) {
	vs := make([]float32, 1024)
	e := NewEncoder(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutFloat32s(vs)
	}
}

func BenchmarkDecodeFloat32s(b *testing.B) {
	vs := make([]float32, 1024)
	e := NewEncoder(8192)
	e.PutFloat32s(vs)
	raw := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(raw)
		if d.Float32s() == nil {
			b.Fatal("nil")
		}
	}
}
