// Package serde is the baseline serialization layer that traditional
// RPC systems depend on — the cost the paper's §2 motivates against
// ("as much as 70% of the processing time ... is spent deserializing
// and loading the sparse personalized models").
//
// It provides a compact binary encoder/decoder used by the RPC
// baseline and the model workload. Decoding is deliberately honest
// about the costs the paper attributes to it: every variable-size
// field allocates, and reconstructing pointer-rich structures walks
// and rebuilds the heap (pointer fixup), in contrast to the
// object-space byte-copy path.
package serde

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt reports malformed input.
var ErrCorrupt = errors.New("serde: corrupt input")

// Encoder appends primitive values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder creates an encoder with an optional size hint.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded size.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint64 appends a fixed 8-byte value.
func (e *Encoder) PutUint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutUint32 appends a fixed 4-byte value.
func (e *Encoder) PutUint32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// PutUvarint appends a varint-encoded value.
func (e *Encoder) PutUvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	e.buf = append(e.buf, b[:n]...)
}

// PutFloat64 appends an IEEE-754 double.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutFloat32 appends an IEEE-754 single.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) { e.PutBytes([]byte(s)) }

// PutFloat32s appends a length-prefixed []float32.
func (e *Encoder) PutFloat32s(vs []float32) {
	e.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		e.PutFloat32(v)
	}
}

// Decoder consumes values from a buffer.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// Uint64 reads a fixed 8-byte value.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// Uint32 reads a fixed 4-byte value.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.fail("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

// Uvarint reads a varint-encoded value.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Float32 reads an IEEE-754 single.
func (d *Decoder) Float32() float32 { return math.Float32frombits(d.Uint32()) }

// Bytes reads a length-prefixed byte slice. It allocates — that is the
// point: deserialization rebuilds the heap.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("bytes length")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Float32s reads a length-prefixed []float32.
func (d *Decoder) Float32s() []float32 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()/4) {
		d.fail("float32s length")
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.Float32()
	}
	return out
}
