package serde

import "testing"

// FuzzDecoder drives every decoder method over arbitrary input; the
// decoder must never panic and must stay consistent after errors.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(0)
	e.PutUvarint(7)
	e.PutString("seed")
	e.PutFloat32s([]float32{1, 2})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Uvarint()
		_ = d.String()
		_ = d.Float32s()
		_ = d.Uint64()
		_ = d.Uint32()
		_ = d.Bytes()
		if d.Err() != nil {
			// Errors must be sticky: further reads return zero values.
			if d.Uint64() != 0 || d.String() != "" {
				t.Fatal("reads after error returned data")
			}
		}
		if d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
