// Raft invariants for the replicated control plane
// (SchemeControllerHA). ScanRaft reads only side-effect-free raft
// accessors (TermsLed, CommitIndex, LastApplied, EntryInfo), so the
// checker observes the consensus group without perturbing elections or
// replication.
package check

import (
	"fmt"

	"repro/internal/oid"
	"repro/internal/wire"
)

// Raft invariant names.
const (
	// InvRaftOneLeader: at most one replica ever wins any given term
	// (Raft election safety, checked via the union of per-node
	// TermsLed histories — which survive crashes).
	InvRaftOneLeader = "raft-one-leader"
	// InvRaftCommittedLost: an entry the checker ever observed as
	// committed later disappeared or changed (term or command digest)
	// at a replica that covers its index.
	InvRaftCommittedLost = "raft-committed-lost"
	// InvRaftPrefix: two replicas disagree on an entry both have
	// applied (state-machine divergence).
	InvRaftPrefix = "raft-prefix-agreement"
)

// raftEntryRec identifies one committed log entry.
type raftEntryRec struct {
	term   uint64
	digest uint64
}

// ScanRaft evaluates the consensus invariants over the cluster's
// control-plane replicas. It is a no-op for unreplicated schemes and
// is folded into CheckNow; scenarios may also call it mid-run (e.g.
// right after an election settles).
func (k *Checker) ScanRaft() {
	if !k.cfg.Enabled {
		return
	}
	nodes := k.c.RaftNodes()
	if len(nodes) == 0 {
		return
	}
	now := k.c.Sim.Now()

	// Election safety: the union of every replica's led-term history
	// must assign each term at most one leader. TermsLed persists
	// across Crash/Restart, so even a deposed-and-wiped leader still
	// testifies about the terms it won.
	termLeader := make(map[uint64]wire.StationID)
	for _, n := range nodes {
		for _, t := range n.TermsLed() {
			if prev, ok := termLeader[t]; ok && prev != n.ID() {
				k.report(now, InvRaftOneLeader, oid.ID{},
					fmt.Sprintf("term %d was won by both station %d and station %d", t, prev, n.ID()))
				continue
			}
			termLeader[t] = n.ID()
		}
	}

	// Committed-never-lost: fold every running replica's committed
	// prefix into the checker's durable record; any later scan that
	// finds a recorded index missing or different has caught a lost
	// or rewritten committed entry.
	for _, n := range nodes {
		if !n.Running() {
			continue
		}
		for idx := uint64(1); idx <= n.CommitIndex(); idx++ {
			term, digest, ok := n.EntryInfo(idx)
			if !ok {
				k.report(now, InvRaftCommittedLost, oid.ID{},
					fmt.Sprintf("station %d's commit index covers entry %d but its log does not", n.ID(), idx))
				continue
			}
			rec, seen := k.raftCommitted[idx]
			if !seen {
				k.raftCommitted[idx] = raftEntryRec{term, digest}
				continue
			}
			if rec.term != term || rec.digest != digest {
				k.report(now, InvRaftCommittedLost, oid.ID{},
					fmt.Sprintf("committed entry %d changed at station %d: term %d digest %#x, previously committed as term %d digest %#x",
						idx, n.ID(), term, digest, rec.term, rec.digest))
			}
		}
	}

	// Applied-prefix agreement: any two replicas must agree, entry by
	// entry, on the prefix both have fed to their state machines.
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			if !a.Running() || !b.Running() {
				continue
			}
			lim := a.LastApplied()
			if bl := b.LastApplied(); bl < lim {
				lim = bl
			}
			for idx := uint64(1); idx <= lim; idx++ {
				ta, da, oka := a.EntryInfo(idx)
				tb, db, okb := b.EntryInfo(idx)
				if oka && okb && ta == tb && da == db {
					continue
				}
				k.report(now, InvRaftPrefix, oid.ID{},
					fmt.Sprintf("stations %d and %d both applied entry %d but disagree on it (term %d/%d, digest %#x/%#x)",
						a.ID(), b.ID(), idx, ta, tb, da, db))
				break // report the first divergence per pair
			}
		}
	}
}
