package check

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ActionKind is one targeted frame perturbation.
type ActionKind uint8

// Explorer action kinds.
const (
	// ActDrop loses the frame's first transmission; retransmissions
	// still get through (a single loss event).
	ActDrop ActionKind = iota
	// ActDropAll loses every transmission of the frame — the frame is
	// unrecoverable at the transport and only a fresh request (new
	// sequence number) can replace it.
	ActDropAll
	// ActDup delivers a second copy back-to-back with the first,
	// probing receive-path idempotence and buffer accounting.
	ActDup
	// ActDelay postpones delivery by Action.Delay; a one-tick delay
	// swaps same-timestamp delivery order, larger delays reorder
	// across protocol steps.
	ActDelay
)

func (k ActionKind) String() string {
	switch k {
	case ActDrop:
		return "drop"
	case ActDropAll:
		return "dropall"
	case ActDup:
		return "dup"
	case ActDelay:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Action perturbs one logical frame. Frames are indexed by order of
// first origin-host transmission of memory-protocol frames during the
// measured phase — index 0 is the first MsgMem frame a host sends
// after the scenario's setup quiesced. Retransmissions share their
// original frame's index.
type Action struct {
	Frame int
	Kind  ActionKind
	Delay netsim.Duration // ActDelay only
}

func (a Action) String() string {
	if a.Kind == ActDelay {
		return fmt.Sprintf("%s:%d:%d", a.Kind, a.Frame, int64(a.Delay))
	}
	return fmt.Sprintf("%s:%d", a.Kind, a.Frame)
}

// Schedule is an ordered set of frame perturbations; its textual form
// ("dropall:7,delay:3:1000") round-trips through ParseSchedule so a
// violating schedule can be replayed from the command line.
type Schedule []Action

func (s Schedule) String() string {
	if len(s) == 0 {
		return "none"
	}
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the form produced by Schedule.String:
// comma-separated kind:frame or delay:frame:nanoseconds entries
// ("none" and "" parse to an empty schedule).
func ParseSchedule(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	var out Schedule
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("check: bad schedule entry %q", part)
		}
		frame, err := strconv.Atoi(fields[1])
		if err != nil || frame < 0 {
			return nil, fmt.Errorf("check: bad frame index in %q", part)
		}
		a := Action{Frame: frame}
		switch fields[0] {
		case "drop":
			a.Kind = ActDrop
		case "dropall":
			a.Kind = ActDropAll
		case "dup":
			a.Kind = ActDup
		case "delay":
			a.Kind = ActDelay
			if len(fields) != 3 {
				return nil, fmt.Errorf("check: delay needs a duration in %q", part)
			}
			ns, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || ns <= 0 {
				return nil, fmt.Errorf("check: bad delay in %q", part)
			}
			a.Delay = netsim.Duration(ns)
		default:
			return nil, fmt.Errorf("check: unknown action %q", fields[0])
		}
		out = append(out, a)
	}
	return out, nil
}

// frameKey identifies a logical frame across retransmissions: the
// transport reuses (source station, sequence) for every retransmit.
type frameKey struct {
	src wire.StationID
	seq uint64
}

// injector applies a Schedule through the netsim frame-control hook.
// It indexes logical frames on their origin hop only (host → leaf),
// so a frame crossing three fabric links gets exactly one index, and
// dedups retransmissions by (src, seq).
type injector struct {
	actions map[int]Action
	index   map[frameKey]int
	applied map[int]bool
	kill    map[frameKey]bool
	next    int
}

func newInjector(sched Schedule) *injector {
	in := &injector{
		actions: make(map[int]Action, len(sched)),
		index:   make(map[frameKey]int),
		applied: make(map[int]bool),
		kill:    make(map[frameKey]bool),
	}
	for _, a := range sched {
		in.actions[a.Frame] = a
	}
	return in
}

// originHost reports whether the sending device is a host (fabric
// switches are named "core"/"leaf<N>"; everything else — "node<N>",
// "controller", test hosts — originates frames).
func originHost(from string) bool {
	return from != "core" && !strings.HasPrefix(from, "leaf")
}

func (in *injector) hook(from, _ string, fr netsim.Frame) netsim.FrameControl {
	if !originHost(from) {
		return netsim.FrameControl{}
	}
	var h wire.Header
	if h.DecodeFrom(fr) != nil {
		return netsim.FrameControl{}
	}
	// Memory-protocol frames are the classic target; consensus frames
	// (votes, appends) join the index so the raft scenario's explorer
	// runs can lose an election or sever a replication step, and the
	// in-network invalidation/ack frames join it so the INC scenario
	// can silence a multicast or an ack leg (only INC-enabled
	// scenarios emit them, so legacy frame indices are unchanged).
	// Other types pass untouched.
	switch h.Type {
	case wire.MsgMem, wire.MsgRaft, wire.MsgIncInv, wire.MsgIncAck:
	default:
		return netsim.FrameControl{}
	}
	key := frameKey{h.Src, h.Seq}
	idx, seen := in.index[key]
	if !seen {
		idx = in.next
		in.next++
		in.index[key] = idx
	}
	if in.kill[key] {
		return netsim.FrameControl{Drop: true}
	}
	act, ok := in.actions[idx]
	if !ok {
		return netsim.FrameControl{}
	}
	switch act.Kind {
	case ActDropAll:
		in.kill[key] = true
		return netsim.FrameControl{Drop: true}
	case ActDrop:
		if in.applied[idx] {
			return netsim.FrameControl{}
		}
		in.applied[idx] = true
		return netsim.FrameControl{Drop: true}
	case ActDup:
		if in.applied[idx] {
			return netsim.FrameControl{}
		}
		in.applied[idx] = true
		return netsim.FrameControl{Dup: true}
	case ActDelay:
		if in.applied[idx] {
			return netsim.FrameControl{}
		}
		in.applied[idx] = true
		return netsim.FrameControl{Delay: act.Delay}
	}
	return netsim.FrameControl{}
}

// ExploreConfig bounds a schedule exploration.
type ExploreConfig struct {
	// Seed is passed to every scenario build, so a violating schedule
	// replays bit-identically.
	Seed int64
	// MaxRuns bounds total scenario executions (default 200).
	MaxRuns int
	// MaxFrames bounds how many logical frames are perturbed
	// (default 12: the first MaxFrames measured-phase frames).
	MaxFrames int
	// Delays are the ActDelay magnitudes probed per frame (default
	// one tick — a same-timestamp order swap — and 200µs, enough to
	// reorder across a retransmit timeout).
	Delays []netsim.Duration
}

func (c *ExploreConfig) fill() {
	if c.MaxRuns == 0 {
		c.MaxRuns = 200
	}
	if c.MaxFrames == 0 {
		c.MaxFrames = 12
	}
	if c.Delays == nil {
		c.Delays = []netsim.Duration{netsim.Nanosecond, 200 * netsim.Microsecond}
	}
}

// Report is the outcome of an exploration (or a single Replay).
type Report struct {
	Scenario string
	Seed     int64
	// Runs is how many scenario executions the search consumed.
	Runs int
	// Frames is the number of logical frames the baseline run indexed.
	Frames int
	// Schedule is the minimal violating schedule (nil when clean).
	Schedule Schedule
	// Violations are the invariant breaches the schedule produces.
	Violations []Violation
	// TraceTree is the causal span tree of the violating replay
	// (empty when clean or tracing reproduces no violation).
	TraceTree string
}

// Clean reports whether no schedule produced a violation.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	if r.Clean() {
		fmt.Fprintf(&b, "scenario %s seed %d: clean (%d runs, %d frames probed)\n",
			r.Scenario, r.Seed, r.Runs, r.Frames)
		return b.String()
	}
	fmt.Fprintf(&b, "scenario %s seed %d: VIOLATION after %d runs\n", r.Scenario, r.Seed, r.Runs)
	fmt.Fprintf(&b, "  schedule: %s\n", r.Schedule)
	fmt.Fprintf(&b, "  replay:   gaspbench check -scenario %s -seed %d -schedule %q\n",
		r.Scenario, r.Seed, r.Schedule.String())
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if r.TraceTree != "" {
		b.WriteString("  trace of the violating operation:\n")
		for _, line := range strings.Split(strings.TrimRight(r.TraceTree, "\n"), "\n") {
			b.WriteString("    ")
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// runOnce builds the scenario fresh, installs sched, drives it, and
// returns the checker's verdict. Drive errors (a workload that could
// not complete under an adversarial schedule) are tolerated: only
// safety violations count.
func runOnce(sc Scenario, seed int64, sched Schedule, traced bool) (*Report, []*trace.Span, error) {
	run, err := sc.Build(seed, traced)
	if err != nil {
		return nil, nil, fmt.Errorf("check: building scenario %s: %w", sc.Name, err)
	}
	in := newInjector(sched)
	run.Cluster.Net.SetFrameControlHook(in.hook)
	_ = run.Drive()
	rep := &Report{
		Scenario:   sc.Name,
		Seed:       seed,
		Frames:     in.next,
		Schedule:   sched,
		Violations: run.Checker.Violations(),
	}
	var spans []*trace.Span
	if traced && run.Cluster.Tracer != nil {
		spans = run.Cluster.Tracer.Spans()
	}
	return rep, spans, nil
}

// Replay executes one scenario under one explicit schedule — the
// command-line path for reproducing a Report.
func Replay(sc Scenario, seed int64, sched Schedule) (*Report, error) {
	rep, _, err := runOnce(sc, seed, sched, false)
	if err != nil {
		return nil, err
	}
	rep.Runs = 1
	if !rep.Clean() {
		attachTrace(sc, rep)
	}
	return rep, nil
}

// Explore searches the bounded schedule space for an invariant
// violation: baseline first, then every single-action perturbation of
// the first MaxFrames logical frames, then drop-all pairs (the
// minimal shape that exercises loss of a fragment plus loss of its
// recovery). On a hit the schedule is greedily shrunk and replayed
// traced; the Report carries everything needed to reproduce the bug.
func Explore(sc Scenario, cfg ExploreConfig) (*Report, error) {
	cfg.fill()
	runs := 0
	exec := func(sched Schedule) (*Report, error) {
		runs++
		rep, _, err := runOnce(sc, cfg.Seed, sched, false)
		return rep, err
	}
	base, err := exec(nil)
	if err != nil {
		return nil, err
	}
	frames := base.Frames
	finish := func(rep *Report) *Report {
		rep.Runs = runs
		rep.Frames = frames
		attachTrace(sc, rep)
		return rep
	}
	if !base.Clean() {
		return finish(base), nil
	}

	probe := min(frames, cfg.MaxFrames)
	var candidates []Schedule
	for f := 0; f < probe; f++ {
		candidates = append(candidates,
			Schedule{{Frame: f, Kind: ActDropAll}},
			Schedule{{Frame: f, Kind: ActDrop}},
			Schedule{{Frame: f, Kind: ActDup}})
		for _, d := range cfg.Delays {
			candidates = append(candidates, Schedule{{Frame: f, Kind: ActDelay, Delay: d}})
		}
	}
	for i := 0; i < probe; i++ {
		for j := i + 1; j < probe; j++ {
			candidates = append(candidates, Schedule{
				{Frame: i, Kind: ActDropAll},
				{Frame: j, Kind: ActDropAll},
			})
		}
	}
	for _, cand := range candidates {
		if runs >= cfg.MaxRuns {
			break
		}
		rep, err := exec(cand)
		if err != nil {
			return nil, err
		}
		if rep.Clean() {
			continue
		}
		shrunk, srep, err := shrinkSchedule(cand, rep, exec, cfg.MaxRuns, &runs)
		if err != nil {
			return nil, err
		}
		srep.Schedule = shrunk
		return finish(srep), nil
	}
	clean := &Report{Scenario: sc.Name, Seed: cfg.Seed, Runs: runs, Frames: frames}
	return clean, nil
}

// shrinkSchedule greedily minimizes a violating schedule: first by
// removing actions, then by weakening drop-all to single drops. Each
// candidate must still violate to be accepted.
func shrinkSchedule(sched Schedule, rep *Report, exec func(Schedule) (*Report, error), maxRuns int, runs *int) (Schedule, *Report, error) {
	improved := true
	for improved && *runs < maxRuns {
		improved = false
		for i := range sched {
			cand := make(Schedule, 0, len(sched)-1)
			cand = append(cand, sched[:i]...)
			cand = append(cand, sched[i+1:]...)
			r, err := exec(cand)
			if err != nil {
				return nil, nil, err
			}
			if !r.Clean() {
				sched, rep, improved = cand, r, true
				break
			}
			if *runs >= maxRuns {
				return sched, rep, nil
			}
		}
		if improved {
			continue
		}
		for i, a := range sched {
			if a.Kind != ActDropAll {
				continue
			}
			cand := append(Schedule(nil), sched...)
			cand[i].Kind = ActDrop
			r, err := exec(cand)
			if err != nil {
				return nil, nil, err
			}
			if !r.Clean() {
				sched, rep, improved = cand, r, true
				break
			}
			if *runs >= maxRuns {
				return sched, rep, nil
			}
		}
	}
	return sched, rep, nil
}

// attachTrace replays rep's schedule with full span sampling and
// renders the causal tree of the trace active at the first violation.
// Tracing widens frames (the header grows), which can shift timings;
// if the traced replay no longer violates, the untraced verdict is
// kept and no tree is attached.
func attachTrace(sc Scenario, rep *Report) {
	trep, spans, err := runOnce(sc, rep.Seed, rep.Schedule, true)
	if err != nil || trep.Clean() || len(spans) == 0 {
		return
	}
	at := trep.Violations[0].At
	var pick uint64
	var pickStart netsim.Time
	for _, id := range trace.TraceIDs(spans) {
		root := trace.Root(spans, id)
		if root == nil {
			continue
		}
		if root.Start <= at && (pick == 0 || root.Start >= pickStart) {
			pick, pickStart = id, root.Start
		}
	}
	if pick == 0 {
		return
	}
	var b strings.Builder
	trace.WriteTree(&b, spans, pick)
	rep.TraceTree = b.String()
}
