package check

import (
	"strings"
	"testing"

	"repro/internal/memproto"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"drop:0",
		"dropall:7",
		"dup:3",
		"delay:5:200000",
		"dropall:1,dropall:3",
		"drop:2,dup:4,delay:9:1",
	}
	for _, in := range cases {
		s, err := ParseSchedule(in)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", in, err)
		}
		if got := s.String(); got != in {
			t.Fatalf("round trip %q -> %q", in, got)
		}
	}
	for _, bad := range []string{"nope:1", "drop:x", "delay:1", "delay:1:-5", "drop"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// memFrame builds an encoded MsgMem frame from src with the given seq.
func memFrame(t *testing.T, src wire.StationID, seq uint64) netsim.Frame {
	t.Helper()
	h := wire.Header{Type: wire.MsgMem, Src: src, Dst: 2, Seq: seq}
	fr, err := wire.Encode(&h, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestInjectorIndexesLogicalFrames(t *testing.T) {
	in := newInjector(Schedule{
		{Frame: 0, Kind: ActDropAll},
		{Frame: 1, Kind: ActDrop},
	})
	f0, f1 := memFrame(t, 5, 1), memFrame(t, 5, 2)

	// Switch hops never index or perturb.
	if ctl := in.hook("leaf0", "core", f0); ctl != (netsim.FrameControl{}) || in.next != 0 {
		t.Fatalf("switch hop perturbed: %+v next=%d", ctl, in.next)
	}
	// Origin hop of frame 0: drop-all.
	if ctl := in.hook("node0", "leaf0", f0); !ctl.Drop {
		t.Fatalf("frame 0 not dropped: %+v", ctl)
	}
	// Retransmit (same src/seq) shares the index and stays killed.
	if ctl := in.hook("node0", "leaf0", f0); !ctl.Drop || in.next != 1 {
		t.Fatalf("retransmit of killed frame: %+v next=%d", ctl, in.next)
	}
	// Frame 1: single drop hits the first transmission only.
	if ctl := in.hook("node0", "leaf0", f1); !ctl.Drop {
		t.Fatalf("frame 1 first send not dropped: %+v", ctl)
	}
	if ctl := in.hook("node0", "leaf0", f1); ctl.Drop {
		t.Fatal("frame 1 retransmit dropped by single-drop action")
	}
	// Non-MsgMem frames pass untouched and take no index.
	ack := wire.Header{Type: wire.MsgAck, Src: 5, Dst: 2, Seq: 9}
	fr, err := wire.Encode(&ack, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctl := in.hook("node0", "leaf0", fr); ctl != (netsim.FrameControl{}) || in.next != 2 {
		t.Fatalf("ack frame indexed or perturbed: %+v next=%d", ctl, in.next)
	}
}

// TestExploreFindsLegacyReassemblyBugs is the PR's regression test:
// with the reassembler's legacy accounting restored (duplicate bytes
// count toward completion, version skew unchecked), the schedule
// explorer must find an invariant violation in the fig2 scenario,
// emit a replayable seed + shrunk schedule, and — crucially — the
// identical schedule must run clean once the fixes are back in.
func TestExploreFindsLegacyReassemblyBugs(t *testing.T) {
	prev := memproto.SetLegacyAccounting(true)
	defer memproto.SetLegacyAccounting(prev)

	sc := Fig2Scenario()
	rep, err := Explore(sc, ExploreConfig{Seed: 7})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if rep.Clean() {
		t.Fatalf("explorer missed the legacy reassembly bugs (%d runs, %d frames)", rep.Runs, rep.Frames)
	}
	if len(rep.Schedule) == 0 || len(rep.Schedule) > 2 {
		t.Fatalf("schedule not shrunk to a minimal core: %s", rep.Schedule)
	}
	if !hasInvariant(rep.Violations, InvCopyDivergence) {
		t.Fatalf("expected a copy-divergence violation, got %v", rep.Violations)
	}
	out := rep.String()
	for _, want := range []string{"VIOLATION", "replay:", "-seed 7", sc.Name} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// The shrunk schedule replays deterministically from seed alone.
	again, err := Replay(sc, rep.Seed, rep.Schedule)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if again.Clean() {
		t.Fatalf("shrunk schedule %s did not replay the violation", rep.Schedule)
	}

	// With the fixes applied, the same adversarial schedule is harmless.
	memproto.SetLegacyAccounting(false)
	fixed, err := Replay(sc, rep.Seed, rep.Schedule)
	if err != nil {
		t.Fatalf("Replay (fixed): %v", err)
	}
	if !fixed.Clean() {
		t.Fatalf("fixed reassembler still violates under %s: %v", rep.Schedule, fixed.Violations)
	}
}

func hasInvariant(vs []Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// TestExploreCleanWithFixes bounds a clean exploration of each
// scenario: the current protocol must survive the explorer's
// single-action probes without a safety violation.
func TestExploreCleanWithFixes(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration is a few hundred simulated runs")
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Explore(sc, ExploreConfig{Seed: 7, MaxRuns: 80})
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			if !rep.Clean() {
				t.Fatalf("fixed protocol violated under %s:\n%s", rep.Schedule, rep)
			}
			if rep.Frames == 0 {
				t.Fatal("no frames indexed — injector matched nothing")
			}
		})
	}
}
