package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// buildCluster makes a small checked cluster for invariant unit tests.
func buildCluster(t *testing.T, check bool) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{
		Seed:   7,
		Scheme: core.SchemeE2E,
		Check:  core.CheckConfig{Enabled: check},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func hasViolation(k *Checker, invariant string) bool {
	for _, v := range k.Violations() {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

func TestCheckerDisabledIsInert(t *testing.T) {
	c := buildCluster(t, false)
	k := New(c)
	if k.Enabled() {
		t.Fatal("checker reports enabled with Check.Enabled false")
	}
	k.CheckNow()
	if !k.Ok() || k.Counters().Scans != 0 {
		t.Fatalf("disabled checker did work: %+v", k.Counters())
	}
}

func TestCheckerCleanWorkload(t *testing.T) {
	c := buildCluster(t, true)
	home, reader := c.Node(1), c.Node(0)
	o, err := home.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	k := New(c)
	done := false
	reader.Deref(object.Global{Obj: o.ID()}, func(_ *object.Object, err error) {
		if err != nil {
			t.Errorf("deref: %v", err)
		}
		done = true
	})
	c.Run()
	k.CheckNow()
	if !done {
		t.Fatal("deref never completed")
	}
	if !k.Ok() {
		t.Fatalf("clean workload flagged: %v", k.Violations())
	}
	if k.Counters().Scans < 2 || k.Counters().OpsObserved == 0 {
		t.Fatalf("checker did not observe the run: %+v", k.Counters())
	}
}

func TestCheckerCopyDivergence(t *testing.T) {
	c := buildCluster(t, true)
	home, other := c.Node(1), c.Node(0)
	o, err := home.CreateObject(2048)
	if err != nil {
		t.Fatal(err)
	}
	fill(o, 0x42)
	c.Run()
	k := New(c)
	// Plant a corrupted cached copy labeled with the home's published
	// version — the torn-transfer shape the reassembler bugs produce.
	bad, err := object.New(o.ID(), 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	fill(bad, 0x43)
	if err := other.Store.Put(bad, 1, false); err != nil {
		t.Fatal(err)
	}
	home.Coherence.AddSharer(o.ID(), other.Station)
	k.CheckNow()
	if !hasViolation(k, InvCopyDivergence) {
		t.Fatalf("corrupted copy not flagged: %v", k.Violations())
	}
}

func TestCheckerSingleHomeAndCoverage(t *testing.T) {
	c := buildCluster(t, true)
	home, other := c.Node(1), c.Node(2)
	o, err := home.CreateObject(2048)
	if err != nil {
		t.Fatal(err)
	}
	fill(o, 1)
	c.Run()
	k := New(c)

	// A cached copy the home's directory does not cover.
	ghost, _ := object.New(o.ID(), 2048, 0)
	fill(ghost, 1)
	if err := other.Store.Put(ghost, 1, false); err != nil {
		t.Fatal(err)
	}
	k.CheckNow()
	if !hasViolation(k, InvDirectoryCoverage) {
		t.Fatalf("uncovered copy not flagged: %v", k.Violations())
	}

	// A second node claiming the authoritative copy.
	dup, _ := object.New(o.ID(), 2048, 0)
	fill(dup, 1)
	if err := c.Node(0).Store.Put(dup, 1, true); err != nil {
		t.Fatal(err)
	}
	k.CheckNow()
	if !hasViolation(k, InvSingleHome) {
		t.Fatalf("double home not flagged: %v", k.Violations())
	}
}

func TestCheckerVersionMonotonic(t *testing.T) {
	c := buildCluster(t, true)
	home := c.Node(1)
	o, err := home.CreateObject(2048)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	k := New(c)
	if _, err := home.Store.BumpVersion(o.ID()); err != nil {
		t.Fatal(err)
	}
	k.CheckNow()
	if !k.Ok() {
		t.Fatalf("version bump flagged: %v", k.Violations())
	}
	if err := home.Store.SetVersion(o.ID(), 1); err != nil {
		t.Fatal(err)
	}
	k.CheckNow()
	if !hasViolation(k, InvVersionMonotonic) {
		t.Fatalf("version regression not flagged: %v", k.Violations())
	}

	// Epoch forgives a legitimate history rewind (crash + promotion).
	k2 := New(c)
	if _, err := home.Store.BumpVersion(o.ID()); err != nil {
		t.Fatal(err)
	}
	k2.CheckNow()
	k2.Epoch()
	if err := home.Store.SetVersion(o.ID(), 1); err != nil {
		t.Fatal(err)
	}
	k2.CheckNow()
	if hasViolation(k2, InvVersionMonotonic) {
		t.Fatalf("post-Epoch rewind flagged: %v", k2.Violations())
	}
}

func TestCheckerHomeRewrite(t *testing.T) {
	c := buildCluster(t, true)
	home := c.Node(1)
	o, err := home.CreateObject(2048)
	if err != nil {
		t.Fatal(err)
	}
	fill(o, 9)
	c.Run()
	k := New(c)
	// Mutating home content without a version bump republishes
	// different bytes under the same version.
	o.WriteAt(0, []byte("silent rewrite"))
	k.CheckNow()
	if !hasViolation(k, InvHomeRewrite) {
		t.Fatalf("silent rewrite not flagged: %v", k.Violations())
	}
}

func TestCheckerBufBalance(t *testing.T) {
	c := buildCluster(t, true)
	c.Run()
	k := New(c)
	leak := dataplane.GetBuf(128)
	k.CheckNow()
	leak.Release()
	if !hasViolation(k, InvBufBalance) {
		t.Fatalf("leaked buffer not flagged: %v", k.Violations())
	}
}

func TestCheckerTelemetryAndDedup(t *testing.T) {
	c := buildCluster(t, true)
	home := c.Node(1)
	o, err := home.CreateObject(2048)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	k := New(c)
	if err := home.Store.SetVersion(o.ID(), 0); err != nil {
		t.Fatal(err)
	}
	k.CheckNow()
	k.CheckNow() // same breach again: deduplicated
	if n := len(k.Violations()); n != 1 {
		t.Fatalf("want 1 deduplicated violation, got %d: %v", n, k.Violations())
	}
	reg := telemetry.NewRegistry()
	k.AddTelemetry(reg)
	snap := reg.Snapshot()
	if snap.Value("check.violations") != 1 {
		t.Fatalf("telemetry snapshot missing violations counter: %v", snap.Names())
	}
	if !strings.Contains(k.Violations()[0].String(), InvVersionMonotonic) {
		t.Fatalf("violation string lacks invariant name: %s", k.Violations()[0])
	}
}

// TestCheckerZeroPerturbation runs the same seeded workload with the
// checker on and off: frame counts, virtual end time, and final
// object bytes must be bit-identical — the checker only observes.
func TestCheckerZeroPerturbation(t *testing.T) {
	type outcome struct {
		now      netsim.Time
		frames   uint64
		checksum uint64
	}
	run := func(check bool) outcome {
		c := buildCluster(t, check)
		home, reader := c.Node(1), c.Node(0)
		o, err := home.CreateObject(160_000)
		if err != nil {
			t.Fatal(err)
		}
		fill(o, 0x77)
		c.Run()
		k := New(c)
		var got *object.Object
		reader.Deref(object.Global{Obj: o.ID()}, func(oo *object.Object, err error) {
			if err != nil {
				t.Errorf("deref: %v", err)
			}
			got = oo
		})
		c.Run()
		k.CheckNow()
		if check && !k.Ok() {
			t.Fatalf("clean run flagged: %v", k.Violations())
		}
		if got == nil {
			t.Fatal("acquire never completed")
		}
		return outcome{c.Sim.Now(), c.Stats().Network.FramesSent, got.Checksum()}
	}
	on, off := run(true), run(false)
	if on != off {
		t.Fatalf("checker perturbed the run: with=%+v without=%+v", on, off)
	}
}

func TestScenariosCleanWithFixes(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			run, err := sc.Build(11, false)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := run.Drive(); err != nil {
				t.Fatalf("drive: %v", err)
			}
			if !run.Checker.Ok() {
				t.Fatalf("unperturbed %s run flagged: %v", sc.Name, run.Checker.Violations())
			}
			if run.Checker.Counters().Scans == 0 {
				t.Fatal("checker never scanned")
			}
		})
	}
}
