package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/trace"
)

// Run is a built scenario instance ready to drive: the cluster is
// constructed and its setup traffic (object creation, replication,
// warm-up) has already quiesced, so every frame the explorer's
// injector sees belongs to the measured phase. Drive runs that phase
// to completion and finishes with a quiescent CheckNow scan.
type Run struct {
	Cluster *core.Cluster
	Checker *Checker
	Drive   func() error
}

// Scenario names one reproducible workload the checker can watch and
// the explorer can perturb. Build constructs a fresh instance at the
// given seed; traced turns on full span sampling (SampleEvery 1) for
// violation replays.
type Scenario struct {
	Name        string
	Description string
	Build       func(seed int64, traced bool) (*Run, error)
}

// Scenarios returns the built-in scenario set, in the order the
// checker experiment (E10) sweeps them.
func Scenarios() []Scenario {
	return []Scenario{Fig2Scenario(), FaultsScenario(), LoadScenario(), EvictScenario(), RaftScenario(), IncAggDeadSharerScenario(), BatchScenario()}
}

// ScenarioByName finds a built-in scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

func newCluster(seed int64, traced bool, mutate func(*core.Config)) (*core.Cluster, error) {
	cfg := core.Config{
		Seed:             seed,
		Scheme:           core.SchemeE2E,
		DiscoveryTimeout: 300 * netsim.Microsecond,
		Check:            core.CheckConfig{Enabled: true},
	}
	if traced {
		cfg.Trace = trace.Config{SampleEvery: 1}
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.NewCluster(cfg)
}

// fill writes a deterministic byte pattern over the object's heap
// (header and FOT untouched) so content digests are sensitive to any
// torn or misplaced fragment.
func fill(o *object.Object, salt byte) {
	base := o.HeapBase()
	b := make([]byte, o.Size()-int(base))
	for i := range b {
		b[i] = byte(i*7) ^ salt
	}
	o.WriteAt(base, b)
}

// Fig2Scenario is the fragment-reassembly stress: a reader interleaves
// small coherent reads with the shared acquisition of a 160KB object —
// three MaxFragData fragments per grant — while the home publishes a
// new version mid-transfer. Duplicate or version-skewed fragments
// (the two reassembler bugs this PR fixes) corrupt the cached copy in
// ways only the content-digest invariant sees.
func Fig2Scenario() Scenario {
	const (
		bigSize     = 160_000
		smallSize   = 2048
		smallReads  = 3
		maxAttempts = 6
		retryGap    = 300 * netsim.Microsecond
		writeAt     = 2500 * netsim.Microsecond // mid-transfer, before the 5ms request-timeout retry
		finalReadAt = 12 * netsim.Millisecond
	)
	return Scenario{
		Name:        "fig2",
		Description: "small reads + fragmented 160KB acquire with a concurrent home write",
		Build: func(seed int64, traced bool) (*Run, error) {
			c, err := newCluster(seed, traced, nil)
			if err != nil {
				return nil, err
			}
			home, reader := c.Node(1), c.Node(0)
			smalls := make([]oid.ID, smallReads)
			for i := range smalls {
				o, err := home.CreateObject(smallSize)
				if err != nil {
					return nil, err
				}
				fill(o, byte(i))
				smalls[i] = o.ID()
			}
			big, err := home.CreateObject(bigSize)
			if err != nil {
				return nil, err
			}
			fill(big, 0xA5)
			c.Run() // drain announcements: setup quiesces here
			k := New(c)
			drive := func() error {
				var driveErr error
				// Small coherent reads first: they populate the
				// explorer's frame index with request/response pairs
				// and warm the reader's resolver.
				step := 0
				var small func()
				small = func() {
					if step >= smallReads {
						acquireBig(c, reader, big.ID(), maxAttempts, retryGap)
						return
					}
					i := step
					step++
					reader.ReadRef(object.Global{Obj: smalls[i], Off: 1600}, 32, func(_ []byte, err error) {
						if err != nil {
							driveErr = fmt.Errorf("small read %d: %w", i, err)
						}
						small()
					})
				}
				small()
				// The home rewrites the big object's tail mid-transfer
				// and bumps the version — the seed for version-skew.
				c.Sim.Schedule(writeAt, func() {
					patch := make([]byte, 40_000)
					for i := range patch {
						patch[i] = byte(i*13) ^ 0x5A
					}
					home.Coherence.WriteAtCB(big.ID(), 100_000, patch, func(error) {})
				})
				// A late small read confirms the fabric still serves
				// after the transfer settles.
				c.Sim.Schedule(finalReadAt, func() {
					reader.ReadRef(object.Global{Obj: smalls[0], Off: 0}, 16, func([]byte, error) {})
				})
				c.Run()
				k.CheckNow()
				return driveErr
			}
			return &Run{Cluster: c, Checker: k, Drive: drive}, nil
		},
	}
}

// acquireBig acquires obj with bounded application-level retries; a
// failure after maxAttempts is tolerated (under adversarial drop-all
// schedules liveness is not guaranteed — only safety is).
func acquireBig(c *core.Cluster, reader *core.Node, obj oid.ID, maxAttempts int, retryGap netsim.Duration) {
	var attempt func(k int)
	attempt = func(k int) {
		reader.Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) {
			if err != nil && k+1 < maxAttempts {
				c.Sim.Schedule(retryGap<<k, func() { attempt(k + 1) })
			}
		})
	}
	attempt(0)
}

// FaultsScenario is the recovery path under the checker: a replicated
// object's home crashes mid-workload and a replica is promoted, while
// a reader retries through the outage. The checker's Epoch is
// scheduled at the crash so the rebuilt home's version history is not
// misread as a monotonicity violation.
func FaultsScenario() Scenario {
	const (
		objSize  = 4096
		crashAt  = 3 * netsim.Millisecond
		accesses = 24
	)
	return Scenario{
		Name:        "faults",
		Description: "home crash + replica promotion under a retrying reader",
		Build: func(seed int64, traced bool) (*Run, error) {
			c, err := newCluster(seed, traced, nil)
			if err != nil {
				return nil, err
			}
			home, replica, reader := c.Node(1), c.Node(2), c.Node(0)
			o, err := home.CreateObject(objSize)
			if err != nil {
				return nil, err
			}
			fill(o, 0x3C)
			repOK := false
			c.ReplicateObject(o.ID(), replica, func(err error) { repOK = err == nil })
			c.Run()
			if !repOK {
				return nil, fmt.Errorf("check: replicating object failed")
			}
			warm := false
			reader.ReadRef(object.Global{Obj: o.ID(), Off: 8}, 16, func(_ []byte, err error) { warm = err == nil })
			c.Run()
			if !warm {
				return nil, fmt.Errorf("check: warm read failed")
			}
			k := New(c)
			drive := func() error {
				inj := fault.NewInjector(c, fault.Config{})
				inj.Arm(fault.NewSchedule().CrashNode(crashAt, 1))
				// The crash discards the authoritative copy and the
				// promotion rebuilds it; both legitimately rewind the
				// object's observable history.
				c.Sim.Schedule(crashAt, func() { k.Epoch() })
				const (
					interAccess = 150 * netsim.Microsecond
					maxAttempts = 8
					retryDelay  = 250 * netsim.Microsecond
				)
				var issue func(i int)
				issue = func(i int) {
					if i >= accesses {
						return
					}
					var attempt func(kk int)
					attempt = func(kk int) {
						reader.ReadRef(object.Global{Obj: o.ID(), Off: 8}, 16, func(_ []byte, err error) {
							if err != nil && kk+1 < maxAttempts {
								c.Sim.Schedule(retryDelay<<kk, func() { attempt(kk + 1) })
								return
							}
							c.Sim.Schedule(interAccess, func() { issue(i + 1) })
						})
					}
					attempt(0)
				}
				issue(0)
				c.Run()
				k.CheckNow()
				return nil
			}
			return &Run{Cluster: c, Checker: k, Drive: drive}, nil
		},
	}
}

// EvictScenario runs the sharded-home scheme under a filter-table
// budget far too small for its shard rules: with LRU eviction and punt
// fallback, acquires whose shard rule has been displaced must detour
// through the shard manager mid-operation. The coherence invariants
// (single-home, directory-coverage, single-exclusive) must survive the
// punt path exactly as they do the resident fast path — a punt is a
// re-route, never a re-home.
func EvictScenario() Scenario {
	const (
		objSize     = 4096
		objsPerNode = 3
		accesses    = 12
		// filterBudget leaves room for ~9 ternary rules; the 4-node,
		// 64-shard map needs several times that even after sibling-
		// prefix aggregation, so rules cycle through the tables and
		// every run takes at least one punt.
		filterBudget = 1024
	)
	return Scenario{
		Name:        "evict",
		Description: "sharded homes under a 1KiB filter budget: evicted shard rules punt mid-acquire",
		Build: func(seed int64, traced bool) (*Run, error) {
			c, err := newCluster(seed, traced, func(cfg *core.Config) {
				cfg.Scheme = core.SchemeSharded
				cfg.NumNodes = 4
				cfg.FilterTableMemory = filterBudget
				cfg.TableEviction = p4sim.EvictLRU
				cfg.ObjectMiss = p4sim.MissPunt
			})
			if err != nil {
				return nil, err
			}
			var objs []oid.ID
			for ni, n := range c.Nodes {
				for j := 0; j < objsPerNode; j++ {
					id, ok := c.NewIDHomedAt(n.Station)
					if !ok {
						return nil, fmt.Errorf("check: station %d owns no shards", n.Station)
					}
					o, err := object.New(id, objSize, 0)
					if err != nil {
						return nil, err
					}
					fill(o, byte(0x21*ni+j))
					if err := n.AdoptObjectLite(o); err != nil {
						return nil, err
					}
					objs = append(objs, o.ID())
				}
			}
			c.Run() // drain announcements: setup quiesces here
			k := New(c)
			drive := func() error {
				const (
					interAccess = 120 * netsim.Microsecond
					maxAttempts = 6
					retryDelay  = 250 * netsim.Microsecond
				)
				var driveErr error
				for w := 0; w < 2; w++ {
					node := c.Node(w)
					var issue func(i int)
					issue = func(i int) {
						if i >= accesses {
							return
						}
						// Stride past the reader's own homes so every
						// access crosses the fabric and needs its shard
						// rule resident (or a punt).
						obj := objs[(w*objsPerNode+objsPerNode+i)%len(objs)]
						finish := func() { c.Sim.Schedule(interAccess, func() { issue(i + 1) }) }
						var attempt func(kk int)
						attempt = func(kk int) {
							retry := func(err error) bool {
								if err != nil && kk+1 < maxAttempts {
									c.Sim.Schedule(retryDelay<<kk, func() { attempt(kk + 1) })
									return true
								}
								return false
							}
							switch i % 3 {
							case 0:
								node.Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) {
									if !retry(err) {
										finish()
									}
								})
							case 1:
								node.Coherence.WriteAtCB(obj, uint64(1800+16*w), []byte("evict-scenario-w"), func(err error) {
									if !retry(err) {
										finish()
									}
								})
							default:
								node.ReadRef(object.Global{Obj: obj, Off: 8}, 16, func(_ []byte, err error) {
									if !retry(err) {
										finish()
									}
								})
							}
						}
						attempt(0)
					}
					issue(0)
				}
				c.Run()
				k.CheckNow()
				// Nominal runs must actually exercise the punt path;
				// under adversarial schedules the explorer tolerates
				// this error (only safety violations count).
				if driveErr == nil && c.ShardPunts() == 0 {
					driveErr = fmt.Errorf("check: no shard-manager punt under a %d-byte filter budget", filterBudget)
				}
				return driveErr
			}
			return &Run{Cluster: c, Checker: k, Drive: drive}, nil
		},
	}
}

// RaftScenario drives the replicated control plane through its
// canonical fault: the consensus leader is killed early — so the
// explorer's frame window covers the election — while hosts keep
// announcing fresh objects and re-locating stale ones, and the deposed
// replica later restarts and replays its log. The raft invariants
// (one leader per term, committed-never-lost, applied-prefix
// agreement) are scanned at quiescence alongside the coherence set.
func RaftScenario() Scenario {
	const (
		objSize   = 2048
		setupObjs = 3
		crashAt   = 100 * netsim.Microsecond
		restartAt = 2500 * netsim.Microsecond
		accesses  = 10
		interOp   = 200 * netsim.Microsecond
		catchUp   = 8 * netsim.Millisecond
	)
	return Scenario{
		Name:        "raft",
		Description: "replicated control plane: leader kill + replica restart under announces and locates",
		Build: func(seed int64, traced bool) (*Run, error) {
			c, err := newCluster(seed, traced, func(cfg *core.Config) {
				cfg.Scheme = core.SchemeControllerHA
				cfg.ControllerReplicas = 3
			})
			if err != nil {
				return nil, err
			}
			if _, ok := c.AwaitControlLeader(50 * netsim.Millisecond); !ok {
				return nil, fmt.Errorf("check: no control-plane leader elected")
			}
			home, reader := c.Node(1), c.Node(0)
			setup := make([]oid.ID, setupObjs)
			for i := range setup {
				o, err := home.CreateObject(objSize)
				if err != nil {
					return nil, err
				}
				fill(o, byte(0x51*(i+1)))
				setup[i] = o.ID()
			}
			c.Run() // announcements commit through the leader; setup quiesces
			k := New(c)
			drive := func() error {
				inj := fault.NewInjector(c, fault.Config{})
				inj.Arm(fault.NewSchedule().
					CrashLeader(crashAt).
					RestartController(restartAt, -1))
				var acked []oid.ID
				for i := 0; i < accesses; i++ {
					i := i
					c.Sim.Schedule(netsim.Duration(i)*interOp, func() {
						if i%2 == 0 {
							// Announce a fresh object: a proposal that must
							// commit through whatever leader exists (or
							// emerges) — the client follows redirects.
							o, err := object.New(c.NewID(), objSize, 0)
							if err != nil || home.Store.Put(o, 1, true) != nil {
								return
							}
							fill(o, byte(0x91+i))
							home.Discovery().AnnounceCB(o.ID(), func(err error) {
								if err == nil {
									acked = append(acked, o.ID())
								}
							})
							return
						}
						// Re-locate a setup object through the control
						// plane (the stale mark forces a MsgLocate).
						obj := setup[i%setupObjs]
						reader.Resolver.Invalidate(obj)
						reader.ReadRef(object.Global{Obj: obj, Off: 8}, 16, func([]byte, error) {})
					})
				}
				c.Run()
				// Foreground work has drained; daemon heartbeats now walk
				// the restarted replica's log back to the leader's.
				c.Sim.RunFor(catchUp)
				var finalErr error
				reader.Resolver.Invalidate(setup[0])
				reader.ReadRef(object.Global{Obj: setup[0], Off: 8}, 16, func(_ []byte, err error) { finalErr = err })
				c.Run()
				k.CheckNow()
				if finalErr != nil {
					return fmt.Errorf("check: post-heal locate failed: %w", finalErr)
				}
				// Every acknowledged announce committed; none may be lost.
				lead := c.LeaderController()
				if lead == nil {
					return fmt.Errorf("check: no control-plane leader after heal")
				}
				for _, obj := range acked {
					if owner, ok := lead.Lookup(obj); !ok || owner != home.Station {
						return fmt.Errorf("check: acknowledged announce of %s lost after failover", obj.Short())
					}
				}
				return nil
			}
			return &Run{Cluster: c, Checker: k, Drive: drive}, nil
		},
	}
}

// LoadScenario is a small E9-style mixed workload: several readers
// acquire, read, and write a shared working set concurrently — the
// directory-coverage and single-exclusive invariants get their
// exercise here.
func LoadScenario() Scenario {
	const (
		objects  = 4
		objSize  = 2048
		accesses = 30
	)
	return Scenario{
		Name:        "load",
		Description: "mixed read/write working set across three nodes",
		Build: func(seed int64, traced bool) (*Run, error) {
			c, err := newCluster(seed, traced, nil)
			if err != nil {
				return nil, err
			}
			home := c.Node(2)
			objs := make([]oid.ID, objects)
			for i := range objs {
				o, err := home.CreateObject(objSize)
				if err != nil {
					return nil, err
				}
				fill(o, byte(0x11*i))
				objs[i] = o.ID()
			}
			c.Run()
			k := New(c)
			drive := func() error {
				const (
					interAccess = 100 * netsim.Microsecond
					maxAttempts = 6
					retryDelay  = 200 * netsim.Microsecond
				)
				for w := 0; w < 2; w++ {
					node := c.Node(w)
					var issue func(i int)
					issue = func(i int) {
						if i >= accesses {
							return
						}
						obj := objs[(i+w)%objects]
						finish := func() { c.Sim.Schedule(interAccess, func() { issue(i + 1) }) }
						var attempt func(kk int)
						attempt = func(kk int) {
							retry := func(err error) bool {
								if err != nil && kk+1 < maxAttempts {
									c.Sim.Schedule(retryDelay<<kk, func() { attempt(kk + 1) })
									return true
								}
								return false
							}
							switch i % 3 {
							case 0:
								node.ReadRef(object.Global{Obj: obj, Off: 4}, 16, func(_ []byte, err error) {
									if !retry(err) {
										finish()
									}
								})
							case 1:
								node.Coherence.WriteAtCB(obj, uint64(1600+16*w), []byte("load-scenario-w"), func(err error) {
									if !retry(err) {
										finish()
									}
								})
							default:
								node.Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) {
									if !retry(err) {
										finish()
									}
								})
							}
						}
						attempt(0)
					}
					issue(0)
				}
				c.Run()
				k.CheckNow()
				return nil
			}
			return &Run{Cluster: c, Checker: k, Drive: drive}, nil
		},
	}
}

// BatchScenario runs the load workload with batched frame delivery and
// a modeled host receive cost, so concurrent requests land inside
// multi-frame doorbell batches. The explorer's perturbations then hit
// frames that travel *inside* a batch: a dropped frame must leave its
// batchmates intact, a duplicate must not double-deliver its
// neighbours, and a delayed frame must migrate to a later doorbell
// without reordering its own link (arrival order within a batch is
// send order). The coherence invariants — content digests, directory
// coverage, single-exclusive — are the judge; the nominal run also
// asserts coalescing actually engaged (some batch carried >1 frame).
func BatchScenario() Scenario {
	const (
		objects  = 4
		objSize  = 2048
		accesses = 30
		rxCost   = 5 * netsim.Microsecond
	)
	return Scenario{
		Name:        "batch",
		Description: "mixed working set under batched delivery: perturbations inside doorbell batches",
		Build: func(seed int64, traced bool) (*Run, error) {
			c, err := newCluster(seed, traced, func(cfg *core.Config) {
				cfg.BatchDelivery = true
				cfg.HostRxCost = rxCost
			})
			if err != nil {
				return nil, err
			}
			home := c.Node(2)
			objs := make([]oid.ID, objects)
			for i := range objs {
				o, err := home.CreateObject(objSize)
				if err != nil {
					return nil, err
				}
				fill(o, byte(0x2B*i))
				objs[i] = o.ID()
			}
			c.Run()
			k := New(c)
			drive := func() error {
				const (
					interAccess = 40 * netsim.Microsecond
					maxAttempts = 6
					retryDelay  = 200 * netsim.Microsecond
				)
				// Two clients hammer the same home with a tight access
				// gap (below rxCost) so arrivals queue behind the
				// home's receive context and doorbell batches grow.
				for w := 0; w < 2; w++ {
					node := c.Node(w)
					var issue func(i int)
					issue = func(i int) {
						if i >= accesses {
							return
						}
						obj := objs[(i+w)%objects]
						finish := func() { c.Sim.Schedule(interAccess, func() { issue(i + 1) }) }
						var attempt func(kk int)
						attempt = func(kk int) {
							retry := func(err error) bool {
								if err != nil && kk+1 < maxAttempts {
									c.Sim.Schedule(retryDelay<<kk, func() { attempt(kk + 1) })
									return true
								}
								return false
							}
							switch i % 3 {
							case 0:
								node.ReadRef(object.Global{Obj: obj, Off: 4}, 16, func(_ []byte, err error) {
									if !retry(err) {
										finish()
									}
								})
							case 1:
								node.Coherence.WriteAtCB(obj, uint64(1600+16*w), []byte("batch-scenario-w"), func(err error) {
									if !retry(err) {
										finish()
									}
								})
							default:
								node.Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) {
									if !retry(err) {
										finish()
									}
								})
							}
						}
						attempt(0)
					}
					issue(0)
				}
				c.Run()
				k.CheckNow()
				// Nominal runs must actually form multi-frame batches —
				// otherwise the explorer is perturbing the per-frame
				// path under a different name. Under adversarial
				// schedules this error is tolerated (only safety
				// violations count).
				if fired, frames := c.Net.BatchStats(); frames <= fired {
					return fmt.Errorf("check: no coalescing under batched delivery (%d doorbells, %d frames)", fired, frames)
				}
				return nil
			}
			return &Run{Cluster: c, Checker: k, Drive: drive}, nil
		},
	}
}

// IncAggDeadSharerScenario is the ack-aggregation adversary: a sharer
// dies holding a shared copy, then the home multicasts an invalidation
// over the full (now stale) sharer set. The aggregating switch must
// flush only the acks it really received — if it ever fabricated the
// dead sharer's ack, the home would drop the directory entry for a
// copy it never confirmed dead, and a revived holder could serve
// stale bytes. The baseline run asserts the honest path end to end:
// switch flush by timeout, home-side fallback for the silent member,
// live members still coalesced.
func IncAggDeadSharerScenario() Scenario {
	const (
		objSize = 2048
		sharers = 4
	)
	return Scenario{
		Name:        "inc-agg-dead-sharer",
		Description: "sharer crash during multicast invalidation with in-switch ack aggregation",
		Build: func(seed int64, traced bool) (*Run, error) {
			c, err := newCluster(seed, traced, func(cfg *core.Config) {
				cfg.Scheme = core.SchemeController
				cfg.NumNodes = sharers + 1
				cfg.IncMcast = true
				cfg.IncAckAgg = true
			})
			if err != nil {
				return nil, err
			}
			home := c.Node(0)
			o, err := home.CreateObject(objSize)
			if err != nil {
				return nil, err
			}
			fill(o, 0x6B)
			obj := o.ID()
			c.Run()
			warm := 0
			for s := 1; s <= sharers; s++ {
				c.Node(s).Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) {
					if err == nil {
						warm++
					}
				})
			}
			c.Run() // setup quiesces: every sharer holds a copy
			if warm != sharers {
				return nil, fmt.Errorf("check: %d/%d sharers acquired", warm, sharers)
			}
			k := New(c)
			drive := func() error {
				// The last sharer dies silently; the home's directory
				// still names it, so both multicast rounds cover it.
				c.CrashNode(sharers)
				var writeErr error
				home.Coherence.WriteAtCB(obj, o.HeapBase(), []byte("inc-dead-sharer"), func(err error) {
					writeErr = err
				})
				c.Run()
				// Round two: the survivors re-acquire (indexable memory
				// traffic for the explorer) and the home invalidates the
				// same stale sharer set again, reusing the group.
				for s := 1; s < sharers; s++ {
					c.Node(s).Coherence.AcquireSharedCB(obj, func(*object.Object, error) {})
				}
				c.Run()
				home.Coherence.WriteAtCB(obj, o.HeapBase(), []byte("inc-round-two!"), func(error) {})
				c.Run()
				k.CheckNow()
				if writeErr != nil {
					return fmt.Errorf("check: invalidating write: %w", writeErr)
				}
				// Baseline-only expectations (the explorer ignores Drive
				// errors and judges perturbed runs by the invariants).
				inc := home.Coherence.IncCounters()
				if inc.McastInvSent != 2 {
					return fmt.Errorf("check: %d multicast invalidations, want 2", inc.McastInvSent)
				}
				if inc.McastTimeouts < 2 || inc.FallbackInvalidates < 2 {
					return fmt.Errorf("check: dead sharer's ack fabricated (timeouts=%d fallbacks=%d)",
						inc.McastTimeouts, inc.FallbackInvalidates)
				}
				var flushed, coalesced uint64
				for _, eng := range c.IncEngines {
					flushed += eng.Counters().AggTimeouts
					coalesced += eng.Counters().AcksCoalesced
				}
				if flushed < 2 {
					return fmt.Errorf("check: aggregation flushed %d rounds by timeout, want 2", flushed)
				}
				if coalesced < 2*(sharers-1) {
					return fmt.Errorf("check: only %d live acks coalesced, want %d", coalesced, 2*(sharers-1))
				}
				return nil
			}
			return &Run{Cluster: c, Checker: k, Drive: drive}, nil
		},
	}
}
