// Package check is the protocol invariant checker: a passive observer
// that watches a core.Cluster for violations of the global-address-
// space safety properties the paper's design depends on, and an
// explorer (explore.go) that perturbs frame schedules to flush out the
// protocol bugs that only fire under duplication, loss, and reorder.
//
// The checker evaluates two classes of invariant:
//
//   - per-op invariants, evaluated from the coherence op-observer hook
//     after every completed coherence operation: version monotonicity
//     at the home, no home content rewrite under an already-published
//     version, no cached copy labeled ahead of its home, byte-exact
//     agreement between a cached copy and some home-published version
//     of the object, and no fetch outstanding past CheckConfig.
//     FetchBound;
//   - quiescent invariants, evaluated by CheckNow once the simulator
//     has drained: at most one home per object, at most one exclusive
//     holder, directory coverage (every cached copy appears in the
//     home's sharer set — the directory may over-approximate, never
//     under-approximate), no in-flight fetches, and dataplane buffer
//     refcount balance against the checker's construction-time
//     baseline.
//
// Everything the checker reads goes through side-effect-free
// accessors (store.PeekEntry, coherence.SharerSet/GrantedPerm/
// PendingFetches, dataplane.LiveBufs), so an enabled checker observes
// the run without perturbing LRU order, timers, or the seeded event
// schedule. With CheckConfig.Enabled false, New installs nothing at
// all and same-seed runs are bit-identical to an uncheckered build.
package check

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/memproto"
	"repro/internal/netsim"
	"repro/internal/oid"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Invariant names, as they appear in Violation.Invariant.
const (
	InvSingleHome        = "single-home"
	InvSingleExclusive   = "single-exclusive"
	InvDirectoryCoverage = "directory-coverage"
	InvVersionMonotonic  = "version-monotonic"
	InvHomeRewrite       = "home-rewrite"
	InvCopyVersionAhead  = "copy-version-ahead"
	InvCopyDivergence    = "copy-divergence"
	InvFetchStuck        = "fetch-stuck"
	InvFetchDrain        = "fetch-drain"
	InvBufBalance        = "buf-balance"
)

// Violation is one invariant breach, deduplicated per (invariant,
// object) pair for the life of the checker.
type Violation struct {
	At        netsim.Time
	Invariant string
	Object    oid.ID
	Detail    string
}

func (v Violation) String() string {
	obj := "-"
	if !v.Object.IsNil() {
		obj = v.Object.Short()
	}
	return fmt.Sprintf("[%v] %s obj=%s: %s", v.At, v.Invariant, obj, v.Detail)
}

type vioKey struct {
	invariant string
	object    oid.ID
}

// Counters is the checker's telemetry block, registered under "check".
type Counters struct {
	Scans       uint64
	OpsObserved uint64
	Violations  uint64
}

// Checker observes one cluster. Create with New; it is not safe for
// concurrent use (the simulator is single-threaded, so this never
// comes up in practice).
type Checker struct {
	c       *core.Cluster
	cfg     core.CheckConfig
	bufBase int64

	// maxVersion is the highest version ever observed at any home for
	// each object; homes must never regress below it.
	maxVersion map[oid.ID]uint64
	// digests records, per object, the FNV-64a content digest the home
	// published under each version. A cached copy must match SOME
	// published digest — matching only its own labeled version would
	// false-positive on releasers that legitimately retain a demoted
	// copy while the home is already a version ahead.
	digests map[oid.ID]map[uint64]uint64

	// raftCommitted is the checker's own durable record of every
	// committed control-plane log entry it has ever observed — the
	// ground truth for the committed-never-lost invariant.
	raftCommitted map[uint64]raftEntryRec

	seen       map[vioKey]bool
	violations []Violation
	counters   Counters
}

// New builds a checker for c using c.CheckConfig(). When checking is
// disabled it returns an inert checker and touches nothing. When
// enabled it chains a per-op scan onto every node's coherence
// op-observer, snapshots the live-buffer baseline, and records the
// initial home digests.
func New(c *core.Cluster) *Checker {
	k := &Checker{
		c:             c,
		cfg:           c.CheckConfig(),
		maxVersion:    make(map[oid.ID]uint64),
		digests:       make(map[oid.ID]map[uint64]uint64),
		raftCommitted: make(map[uint64]raftEntryRec),
		seen:          make(map[vioKey]bool),
	}
	if !k.cfg.Enabled {
		return k
	}
	k.bufBase = dataplane.LiveBufs()
	for _, n := range c.Nodes {
		n.Coherence.AddOpObserver(func(string, error) {
			k.counters.OpsObserved++
			k.scan(false)
		})
	}
	k.scan(false) // record initial home versions and digests
	return k
}

// Enabled reports whether this checker is actually observing the
// cluster.
func (k *Checker) Enabled() bool { return k.cfg.Enabled }

// CheckNow runs a full quiescent scan. Call it when the simulator has
// drained (or at a known-stable point); it additionally evaluates the
// invariants that only hold at quiescence.
func (k *Checker) CheckNow() {
	if !k.cfg.Enabled {
		return
	}
	k.scan(true)
	k.ScanRaft()
}

// Epoch resets the version-history state (max versions and content
// digests) while keeping recorded violations. Scenarios call it when
// a fault legitimately rewinds history — e.g. a home crash followed by
// replica promotion republishes the object at a rebuilt version.
func (k *Checker) Epoch() {
	k.maxVersion = make(map[oid.ID]uint64)
	k.digests = make(map[oid.ID]map[uint64]uint64)
}

// Violations returns the recorded violations in detection order.
func (k *Checker) Violations() []Violation { return k.violations }

// Ok reports whether no invariant has been violated.
func (k *Checker) Ok() bool { return len(k.violations) == 0 }

// Counters returns the telemetry counters.
func (k *Checker) Counters() Counters { return k.counters }

// AddTelemetry snapshots the checker's counters into reg under
// "check". Call it after the run of interest — the registry copies
// values at registration time.
func (k *Checker) AddTelemetry(reg *telemetry.Registry) {
	reg.Add("check", &k.counters)
}

func (k *Checker) report(at netsim.Time, invariant string, obj oid.ID, detail string) {
	key := vioKey{invariant, obj}
	if k.seen[key] {
		return
	}
	k.seen[key] = true
	k.counters.Violations++
	if len(k.violations) >= k.cfg.MaxViolations {
		return
	}
	k.violations = append(k.violations, Violation{At: at, Invariant: invariant, Object: obj, Detail: detail})
}

func digestOf(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

type homeState struct {
	node    *core.Node
	version uint64
}

// scan walks every live node's store and coherence state. quiescent
// adds the drain-dependent invariants.
func (k *Checker) scan(quiescent bool) {
	k.counters.Scans++
	now := k.c.Sim.Now()

	// Pass 1: homes. Record versions and digests, check monotonicity
	// and rewrite.
	homes := make(map[oid.ID][]homeState)
	for _, n := range k.c.Nodes {
		if n.Down() {
			continue
		}
		for _, id := range n.Store.HomeList() {
			e, err := n.Store.PeekEntry(id)
			if err != nil {
				continue
			}
			homes[id] = append(homes[id], homeState{n, e.Version})
			if prev, ok := k.maxVersion[id]; ok && e.Version < prev {
				k.report(now, InvVersionMonotonic, id,
					fmt.Sprintf("home station %d at version %d after version %d was published", n.Station, e.Version, prev))
			} else if !ok || e.Version > prev {
				k.maxVersion[id] = e.Version
			}
			if !k.cfg.SkipContent {
				d := digestOf(e.Obj.Bytes())
				vd := k.digests[id]
				if vd == nil {
					vd = make(map[uint64]uint64)
					k.digests[id] = vd
				}
				if prev, ok := vd[e.Version]; ok && prev != d {
					k.report(now, InvHomeRewrite, id,
						fmt.Sprintf("home station %d rewrote content under already-published version %d", n.Station, e.Version))
				}
				vd[e.Version] = d
			}
		}
	}

	// Pass 2: cached copies.
	exclusive := make(map[oid.ID][]*core.Node)
	for _, n := range k.c.Nodes {
		if n.Down() {
			continue
		}
		for _, id := range n.Store.List() {
			e, err := n.Store.PeekEntry(id)
			if err != nil || e.Home {
				continue
			}
			perm := n.Coherence.GrantedPerm(id)
			if perm == memproto.PermExclusive {
				exclusive[id] = append(exclusive[id], n)
			}
			hs := homes[id]
			if len(hs) != 1 {
				continue // single-home breach reported at quiescence
			}
			home := hs[0]
			if e.Version > home.version {
				k.report(now, InvCopyVersionAhead, id,
					fmt.Sprintf("station %d caches version %d but home station %d is at %d",
						n.Station, e.Version, home.node.Station, home.version))
			}
			if quiescent && !stationIn(home.node.Coherence.SharerSet(id), n.Station) {
				k.report(now, InvDirectoryCoverage, id,
					fmt.Sprintf("station %d holds a copy absent from home station %d's sharer set — a stale copy the home can no longer invalidate",
						n.Station, home.node.Station))
			}
			// Content check: a non-exclusive copy whose labeled version
			// the home has published must match some published digest.
			// Exclusive holders are mid-write and legitimately diverge.
			if !k.cfg.SkipContent && perm != memproto.PermExclusive {
				vd := k.digests[id]
				if vd == nil {
					continue
				}
				if _, known := vd[e.Version]; !known {
					continue
				}
				d := digestOf(e.Obj.Bytes())
				match := false
				for _, hd := range vd {
					if hd == d {
						match = true
						break
					}
				}
				if !match {
					k.report(now, InvCopyDivergence, id,
						fmt.Sprintf("station %d's copy labeled version %d matches no version the home ever published — corrupt or torn transfer",
							n.Station, e.Version))
				}
			}
		}
	}

	// Fetch liveness.
	for _, n := range k.c.Nodes {
		if n.Down() {
			continue
		}
		for _, pf := range n.Coherence.PendingFetches() {
			if quiescent {
				k.report(now, InvFetchDrain, pf.Obj,
					fmt.Sprintf("station %d still has a fetch in flight at quiescence (started %v)", n.Station, pf.Since))
			} else if now.Sub(pf.Since) > k.cfg.FetchBound {
				k.report(now, InvFetchStuck, pf.Obj,
					fmt.Sprintf("station %d fetch outstanding for %v (bound %v)", n.Station, now.Sub(pf.Since), k.cfg.FetchBound))
			}
		}
	}

	if quiescent {
		ids := make([]oid.ID, 0, len(homes))
		for id := range homes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		for _, id := range ids {
			if hs := homes[id]; len(hs) > 1 {
				k.report(now, InvSingleHome, id,
					fmt.Sprintf("%d live nodes claim the authoritative copy", len(hs)))
			}
		}
		ids = ids[:0]
		for id := range exclusive {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		for _, id := range ids {
			if ns := exclusive[id]; len(ns) > 1 {
				k.report(now, InvSingleExclusive, id,
					fmt.Sprintf("%d nodes hold exclusive permission simultaneously", len(ns)))
			}
		}
		if live := dataplane.LiveBufs(); live != k.bufBase {
			k.report(now, InvBufBalance, oid.ID{},
				fmt.Sprintf("%d frame buffers live at quiescence, baseline %d — a frame path leaked or double-released", live, k.bufBase))
		}
	}
}

func stationIn(set []wire.StationID, st wire.StationID) bool {
	for _, s := range set {
		if s == st {
			return true
		}
	}
	return false
}
