package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/oid"
)

// ScaleRow quantifies the state-vs-traffic tradeoff between the two
// discovery schemes as the deployment grows (§4: "The E2E scheme is
// potentially more scalable [in switch state], but has worst-case
// latency of 2 RTTs ... while the controller scheme has uniform
// latency of 1 RTT ... however, memory constraints may impose limits
// at the switch").
type ScaleRow struct {
	Scheme string
	Nodes  int
	// ObjectRules counts object-table entries across all switches
	// (controller state grows with objects; E2E installs none).
	ObjectRules int
	// FabricFramesPerAccess is total frame deliveries per access —
	// E2E broadcasts touch every host, so this grows with N.
	FabricFramesPerAccess float64
	// MeanUS is the access latency.
	MeanUS float64
}

// ScaleConfig parameterizes the sweep.
type ScaleConfig struct {
	Seed        int64
	NodeCounts  []int
	ObjectsEach int // cold objects created per responder
	Accesses    int
}

func (c *ScaleConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 47
	}
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{3, 9, 27}
	}
	if c.ObjectsEach == 0 {
		c.ObjectsEach = 4
	}
	if c.Accesses == 0 {
		c.Accesses = 200
	}
}

// ScaleTradeoff sweeps cluster size under a cold-object workload
// (every access is a first touch, the worst case for E2E): broadcast
// traffic grows with the host count under E2E, while the controller
// scheme stays unicast at the cost of per-object switch state.
func ScaleTradeoff(cfg ScaleConfig) ([]ScaleRow, error) {
	cfg.fill()
	var rows []ScaleRow
	for _, n := range cfg.NodeCounts {
		for _, scheme := range []core.Scheme{core.SchemeE2E, core.SchemeController} {
			row, err := scalePoint(cfg, scheme, n)
			if err != nil {
				return nil, fmt.Errorf("%v/%d nodes: %w", scheme, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func scalePoint(cfg ScaleConfig, scheme core.Scheme, nodes int) (ScaleRow, error) {
	leaves := 3
	if nodes > 9 {
		leaves = 9
	}
	c, err := core.NewCluster(core.Config{
		Seed:      cfg.Seed + int64(nodes)*100 + int64(scheme),
		Scheme:    scheme,
		NumNodes:  nodes,
		NumLeaves: leaves,
	})
	if err != nil {
		return ScaleRow{}, err
	}
	driver := c.Node(0)
	responders := c.Nodes[1:]

	// Cold population: enough objects that every measured access is a
	// first touch at the driver.
	var objs []oid.ID
	for i := 0; i < cfg.Accesses; i++ {
		o, err := responders[i%len(responders)].CreateObject(2048)
		if err != nil {
			return ScaleRow{}, err
		}
		objs = append(objs, o.ID())
	}
	c.Run() // announcements / rule installs
	c.ResetStats()

	var total float64
	count := 0
	err = runToCompletion(c, cfg.Accesses, func(i int, next func()) {
		start := c.Sim.Now()
		driver.ReadRef(object.Global{Obj: objs[i]}, 64, func(_ []byte, err error) {
			if err != nil {
				return
			}
			total += us(c.Sim.Now().Sub(start))
			count++
			next()
		})
	})
	if err != nil {
		return ScaleRow{}, err
	}

	rules := 0
	for _, sw := range c.Switches {
		rules += sw.ObjectTable().Len()
	}
	st := c.Stats()
	return ScaleRow{
		Scheme:                scheme.String(),
		Nodes:                 nodes,
		ObjectRules:           rules,
		FabricFramesPerAccess: float64(st.Network.FramesDelivered) / float64(cfg.Accesses),
		MeanUS:                total / float64(count),
	}, nil
}
