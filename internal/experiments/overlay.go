package experiments

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// OverlayRow compares object-routing rule schemes under a tiny table
// budget — §3.2: "To scale to larger deployments, we will explore
// hierarchical identifier overlay schemes."
type OverlayRow struct {
	Mode          string
	Objects       int
	RulesPerSw    float64 // object-table entries actually installed
	InstallFailed int
	Successes     int
	Failures      int
	MeanUS        float64
}

// prefixBits is the overlay allocation granularity: each node owns a
// /16 of the ID space (its station number in the high bits).
const prefixBits = 16

// nodePrefix returns station st's overlay prefix.
func nodePrefix(st wire.StationID) oid.Prefix {
	return oid.MakePrefix(oid.ID{Hi: uint64(st) << 48}, prefixBits)
}

// staticResolver always routes on the object ID (rules are static).
type staticResolver struct{}

func (staticResolver) Resolve(_ oid.ID, cb func(discovery.Result, error)) {
	cb(discovery.Result{RouteOnObject: true, CacheHit: true}, nil)
}
func (r staticResolver) ResolveCtx(obj oid.ID, _ trace.Ctx, cb func(discovery.Result, error)) {
	r.Resolve(obj, cb)
}
func (staticResolver) Invalidate(oid.ID) {}
func (staticResolver) Announce(oid.ID)   {}
func (staticResolver) Withdraw(oid.ID)   {}
func (staticResolver) Reset()            {}

// AblationOverlay gives every switch an object table that only holds
// ~8 entries, then routes numObjects objects per owner two ways:
//
//   - exact: one rule per object (the §4 prototype's scheme) — rules
//     beyond capacity fail to install and those objects' frames drop;
//   - overlay: objects are allocated inside their owner's /16 prefix
//     and each switch carries one LPM rule per owner — constant rule
//     count regardless of object count.
func AblationOverlay(seed int64, numObjects int) ([]OverlayRow, error) {
	if numObjects == 0 {
		numObjects = 24
	}
	rows := make([]OverlayRow, 0, 2)
	for _, mode := range []string{"exact", "overlay"} {
		row, err := overlayRun(seed, mode, numObjects)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func overlayRun(seed int64, mode string, numObjects int) (OverlayRow, error) {
	sim := netsim.NewSim(seed)
	net := netsim.NewNetwork(sim)
	link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond, BitsPerSec: 10_000_000_000}
	gen := oid.NewSeededGenerator(seed + 1)

	swCfg := p4sim.SwitchConfig{
		ObjectLPM: mode == "overlay",
		// ~8 exact 128-bit entries (see AblationHybrid); the LPM
		// table's wider (value+mask) entries fit ~4 — enough for the
		// three per-node prefixes.
		ObjectTableMemory: 300,
	}
	coreSw, err := p4sim.NewSwitch(net, "core", 3, swCfg)
	if err != nil {
		return OverlayRow{}, err
	}
	switches := []*p4sim.Switch{coreSw}

	type onode struct {
		ep  *transport.Endpoint
		st  *store.Store
		coh *coherence.Node
	}
	var nodes []*onode
	var leaves []*p4sim.Switch
	for i := 0; i < 3; i++ {
		leaf, err := p4sim.NewSwitch(net, fmt.Sprintf("leaf%d", i), 2, swCfg)
		if err != nil {
			return OverlayRow{}, err
		}
		if err := net.Connect(coreSw, i, leaf, 0, link); err != nil {
			return OverlayRow{}, err
		}
		leaves = append(leaves, leaf)
		switches = append(switches, leaf)
		h, err := netsim.NewHost(net, fmt.Sprintf("h%d", i))
		if err != nil {
			return OverlayRow{}, err
		}
		if err := net.Connect(h, 0, leaf, 1, link); err != nil {
			return OverlayRow{}, err
		}
		ep := transport.NewEndpoint(h, wire.StationID(i+1),
			transport.Config{RequestTimeout: 500 * netsim.Microsecond})
		st := store.New(0)
		coh := coherence.NewNode(ep, st, staticResolver{})
		nd := &onode{ep: ep, st: st, coh: coh}
		ep.SetHandler(func(hd *wire.Header, p []byte) { nd.coh.HandleFrame(hd, p) })
		nodes = append(nodes, nd)
	}

	// Station routes so replies unicast (out of band, as a controller
	// would program them).
	for st := 1; st <= 3; st++ {
		hostLeaf := leaves[st-1]
		if err := coreSw.InstallStationRoute(wire.StationID(st), st-1); err != nil {
			return OverlayRow{}, err
		}
		for i, leaf := range leaves {
			port := 0 // uplink
			if i == st-1 {
				port = 1 // local host
			}
			if err := leaf.InstallStationRoute(wire.StationID(st), port); err != nil {
				return OverlayRow{}, err
			}
		}
		_ = hostLeaf
	}

	// Objects live on nodes 2 and 3 (stations 2, 3); node 1 reads.
	installFailed := 0
	var objs []oid.ID
	for i := 0; i < numObjects; i++ {
		ownerIdx := 1 + i%2
		ownerSt := wire.StationID(ownerIdx + 1)
		var id oid.ID
		if mode == "overlay" {
			id = gen.NewInPrefix(nodePrefix(ownerSt))
		} else {
			id = gen.New()
		}
		o, err := object.New(id, 2048, 4)
		if err != nil {
			return OverlayRow{}, err
		}
		if _, err := o.AllocString("payload"); err != nil {
			return OverlayRow{}, err
		}
		if err := nodes[ownerIdx].st.Put(o, 1, true); err != nil {
			return OverlayRow{}, err
		}
		objs = append(objs, id)

		if mode == "exact" {
			// One rule per object on every switch, toward the owner.
			for si, sw := range switches {
				var port int
				if si == 0 { // core
					port = ownerIdx
				} else if si-1 == ownerIdx {
					port = 1
				} else {
					port = 0
				}
				if err := sw.InstallObjectRoute(wire.ValueOfID(id), port); err != nil {
					installFailed++
				}
			}
		}
	}
	if mode == "overlay" {
		// One rule per owner prefix on every switch.
		for _, ownerIdx := range []int{1, 2} {
			ownerSt := wire.StationID(ownerIdx + 1)
			p := nodePrefix(ownerSt)
			v := wire.ValueOfID(p.ID)
			for si, sw := range switches {
				var port int
				if si == 0 {
					port = ownerIdx
				} else if si-1 == ownerIdx {
					port = 1
				} else {
					port = 0
				}
				if err := sw.InstallObjectPrefix(v, prefixBits, port); err != nil {
					installFailed++
				}
			}
		}
	}

	// Node 1 reads every object once.
	succ, fail := 0, 0
	var total netsim.Duration
	reader := nodes[0]
	done := false
	var access func(i int)
	access = func(i int) {
		if i >= len(objs) {
			done = true
			return
		}
		start := sim.Now()
		reader.coh.ReadAtCB(objs[i], object.HeaderSize+4*object.FOTEntrySize+8, 7,
			func(_ []byte, err error) {
				if err == nil {
					succ++
					total += sim.Now().Sub(start)
				} else {
					fail++
				}
				access(i + 1)
			})
	}
	access(0)
	sim.Run()
	if !done {
		return OverlayRow{}, fmt.Errorf("access loop stalled")
	}

	var rules int
	for _, sw := range switches {
		rules += sw.ObjectTable().Len()
	}
	mean := 0.0
	if succ > 0 {
		mean = us(total) / float64(succ)
	}
	return OverlayRow{
		Mode:          mode,
		Objects:       numObjects,
		RulesPerSw:    float64(rules) / float64(len(switches)),
		InstallFailed: installFailed,
		Successes:     succ,
		Failures:      fail,
		MeanUS:        mean,
	}, nil
}
