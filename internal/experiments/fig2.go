package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/telemetry"
)

// Fig2Config parameterizes the Figure 2 reproduction.
type Fig2Config struct {
	// Seed drives the deterministic run.
	Seed int64
	// AccessesPerPoint is the number of measured object accesses at
	// each sweep point (paper-scale default 2000).
	AccessesPerPoint int
	// OldPoolSize is the pre-created, pre-resolved object population.
	OldPoolSize int
	// ObjectSize is each object's size in bytes.
	ObjectSize int
	// Points are the percentages of accesses to new objects.
	Points []int
	// ReadBytes is the per-access read size.
	ReadBytes int
	// Backend selects the cluster backend. Under BackendRealnet only
	// the E2E scheme runs (the controller scheme programs simulated
	// switches) and the Controller columns are zero.
	Backend core.BackendKind
}

func (c *Fig2Config) fill() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.AccessesPerPoint == 0 {
		c.AccessesPerPoint = 2000
	}
	if c.OldPoolSize == 0 {
		c.OldPoolSize = 64
	}
	if c.ObjectSize == 0 {
		c.ObjectSize = 4096
	}
	if len(c.Points) == 0 {
		c.Points = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	}
	if c.ReadBytes == 0 {
		c.ReadBytes = 64
	}
}

// Fig2Row is one sweep point of Figure 2: access RTT under both
// discovery schemes plus broadcast load (the figure's right axis).
type Fig2Row struct {
	PctNew int

	ControllerMeanUS float64
	ControllerP99US  float64
	E2EMeanUS        float64
	E2EP99US         float64

	// BroadcastsPer100 counts E2E discovery broadcasts per 100
	// accesses (the controller scheme sends none).
	BroadcastsPer100 float64
}

// Figure2 sweeps the fraction of accesses that target newly created
// objects and measures access RTT under the E2E and Controller
// discovery schemes (§4, Figure 2).
//
// The driver (node 0) reads ReadBytes from objects homed on the
// responder nodes. "Old" objects are pre-created and pre-resolved;
// "new" objects are created on a responder immediately before the
// access, so under E2E the first access pays a broadcast discovery
// (2 RTT total) while under the controller scheme the announcement
// pre-installs switch rules off the access path (uniform 1 RTT).
func Figure2(cfg Fig2Config) ([]Fig2Row, error) {
	cfg.fill()
	rows := make([]Fig2Row, 0, len(cfg.Points))
	if cfg.Backend == core.BackendRealnet {
		for _, pct := range cfg.Points {
			hist, bcasts, err := fig2PointRealnet(cfg, pct)
			if err != nil {
				return nil, fmt.Errorf("realnet e2e point %d: %w", pct, err)
			}
			e := hist.Summarize()
			rows = append(rows, Fig2Row{
				PctNew:           pct,
				E2EMeanUS:        e.Mean,
				E2EP99US:         e.P99,
				BroadcastsPer100: float64(bcasts) * 100 / float64(cfg.AccessesPerPoint),
			})
		}
		return rows, nil
	}
	for _, pct := range cfg.Points {
		e2eHist, bcasts, err := fig2Point(cfg, core.SchemeE2E, pct)
		if err != nil {
			return nil, fmt.Errorf("e2e point %d: %w", pct, err)
		}
		ctrlHist, _, err := fig2Point(cfg, core.SchemeController, pct)
		if err != nil {
			return nil, fmt.Errorf("controller point %d: %w", pct, err)
		}
		e := e2eHist.Summarize()
		c := ctrlHist.Summarize()
		rows = append(rows, Fig2Row{
			PctNew:           pct,
			ControllerMeanUS: c.Mean,
			ControllerP99US:  c.P99,
			E2EMeanUS:        e.Mean,
			E2EP99US:         e.P99,
			BroadcastsPer100: float64(bcasts) * 100 / float64(cfg.AccessesPerPoint),
		})
	}
	return rows, nil
}

// fig2Point runs one (scheme, pctNew) cell and returns the access-time
// histogram and the driver's broadcast count.
func fig2Point(cfg Fig2Config, scheme core.Scheme, pctNew int) (*telemetry.Histogram, uint64, error) {
	c, err := core.NewCluster(core.Config{
		Seed:   cfg.Seed + int64(pctNew)*1000 + int64(scheme),
		Scheme: scheme,
	})
	if err != nil {
		return nil, 0, err
	}
	driver := c.Node(0)
	responders := c.Nodes[1:]

	// Old population, homed round-robin on responders.
	oldObjs := make([]oid.ID, cfg.OldPoolSize)
	for i := range oldObjs {
		o, err := responders[i%len(responders)].CreateObject(cfg.ObjectSize)
		if err != nil {
			return nil, 0, err
		}
		oldObjs[i] = o.ID()
	}
	c.Run() // announcements

	// Warm the driver's destination cache for the old population.
	if err := runToCompletion(c, len(oldObjs), func(i int, next func()) {
		driver.ReadRef(object.Global{Obj: oldObjs[i]}, cfg.ReadBytes, func(_ []byte, err error) {
			if err == nil {
				next()
			}
		})
	}); err != nil {
		return nil, 0, err
	}

	hist := telemetry.NewHistogram()
	rng := c.Sim.Rand()
	broadcastBase := driverBroadcasts(driver)

	err = runToCompletion(c, cfg.AccessesPerPoint, func(i int, next func()) {
		target := oldObjs[rng.Intn(len(oldObjs))]
		isNew := rng.Intn(100) < pctNew
		begin := func() {
			start := c.Sim.Now()
			driver.ReadRef(object.Global{Obj: target}, cfg.ReadBytes, func(_ []byte, err error) {
				if err != nil {
					return // stall -> surfaced by runToCompletion
				}
				hist.Observe(us(c.Sim.Now().Sub(start)))
				next()
			})
		}
		if !isNew {
			begin()
			return
		}
		// Create a fresh object on a responder; its announcement
		// (controller rule install, or nothing under E2E) completes
		// off the access path, as at creation time.
		resp := responders[rng.Intn(len(responders))]
		o, err := resp.CreateObject(cfg.ObjectSize)
		if err != nil {
			return
		}
		target = o.ID()
		// Let the announcement settle before the access is issued.
		c.Sim.Schedule(50*netsim.Microsecond, begin)
	})
	if err != nil {
		return nil, 0, err
	}
	return hist, driverBroadcasts(driver) - broadcastBase, nil
}

// driverBroadcasts reads the driver endpoint's broadcast counter.
func driverBroadcasts(n *core.Node) uint64 {
	return n.EP.Counters().Broadcasts
}

// fig2PointRealnet runs one E2E sweep point over real UDP sockets:
// the same access pattern as fig2Point, paced sequentially on the
// wall clock through the backend-neutral futures path. Its own
// deterministic rng replaces the simulator's (the access *schedule*
// is reproducible; the measured times are wall-clock).
func fig2PointRealnet(cfg Fig2Config, pctNew int) (*telemetry.Histogram, uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	c, err := core.NewCluster(core.Config{
		Backend: core.BackendRealnet,
		Seed:    cfg.Seed + int64(pctNew)*1000 + int64(core.SchemeE2E),
		Scheme:  core.SchemeE2E,
	})
	if err != nil {
		return nil, 0, err
	}
	defer c.Close()
	driver := c.Node(0)
	responders := c.Nodes[1:]

	// Old population, homed round-robin on responders, then warmed so
	// the driver's destination cache resolves them without discovery.
	oldObjs := make([]oid.ID, cfg.OldPoolSize)
	c.Exec(func() {
		for i := range oldObjs {
			o, cerr := responders[i%len(responders)].CreateObject(cfg.ObjectSize)
			if cerr != nil {
				err = cerr
				return
			}
			oldObjs[i] = o.ID()
		}
	})
	if err != nil {
		return nil, 0, err
	}
	for _, id := range oldObjs {
		var f *core.Future[[]byte]
		c.Exec(func() { f = driver.ReadRefFuture(object.Global{Obj: id}, cfg.ReadBytes) })
		if _, err := core.Await(ctx, c, f); err != nil {
			return nil, 0, fmt.Errorf("warm %v: %w", id, err)
		}
	}

	hist := telemetry.NewHistogram()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(pctNew)))
	broadcastBase := driverBroadcasts(driver)

	for i := 0; i < cfg.AccessesPerPoint; i++ {
		target := oldObjs[rng.Intn(len(oldObjs))]
		if rng.Intn(100) < pctNew {
			c.Exec(func() {
				resp := responders[rng.Intn(len(responders))]
				o, cerr := resp.CreateObject(cfg.ObjectSize)
				if cerr != nil {
					err = cerr
					return
				}
				target = o.ID()
			})
			if err != nil {
				return nil, 0, err
			}
		}
		var f *core.Future[[]byte]
		var start netsim.Time
		c.Exec(func() {
			start = c.Clock.Now()
			f = driver.ReadRefFuture(object.Global{Obj: target}, cfg.ReadBytes)
		})
		if _, err := core.Await(ctx, c, f); err != nil {
			return nil, 0, fmt.Errorf("access %d: %w", i, err)
		}
		hist.Observe(us(c.Clock.Now().Sub(start)))
	}
	return hist, driverBroadcasts(driver) - broadcastBase, nil
}
