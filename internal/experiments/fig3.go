package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/telemetry"
)

// Fig3Config parameterizes the Figure 3 reproduction.
type Fig3Config struct {
	Seed             int64
	AccessesPerPoint int
	PoolSize         int
	ObjectSize       int
	Points           []int
	ReadBytes        int
}

func (c *Fig3Config) fill() {
	if c.Seed == 0 {
		c.Seed = 43
	}
	if c.AccessesPerPoint == 0 {
		c.AccessesPerPoint = 2000
	}
	if c.PoolSize == 0 {
		c.PoolSize = 64
	}
	if c.ObjectSize == 0 {
		c.ObjectSize = 4096
	}
	if len(c.Points) == 0 {
		c.Points = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	}
	if c.ReadBytes == 0 {
		c.ReadBytes = 64
	}
}

// Fig3Row is one sweep point of Figure 3: E2E access time as the
// destination cache grows stale due to object movement.
type Fig3Row struct {
	PctMoved int

	MeanUS   float64
	P50US    float64
	P90US    float64
	P99US    float64
	StddevUS float64

	// StaleRetriesPerAccess counts NACK→rediscover→retry cycles.
	StaleRetriesPerAccess float64
	// BroadcastsPer100 counts rediscovery broadcasts.
	BroadcastsPer100 float64
}

// Figure3 sweeps the fraction of accesses that target objects that
// moved since the driver's destination cache learned them (§4,
// Figure 3, E2E scheme only). A stale access reaches the old home,
// gets a NACK, rebroadcasts discovery, and retries — rising from 1
// round trip toward the multi-RTT stale path, with variability
// peaking mid-sweep and collapsing once staleness saturates.
func Figure3(cfg Fig3Config) ([]Fig3Row, error) {
	cfg.fill()
	rows := make([]Fig3Row, 0, len(cfg.Points))
	for _, pct := range cfg.Points {
		row, err := fig3Point(cfg, pct)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", pct, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig3Point(cfg Fig3Config, pctMoved int) (Fig3Row, error) {
	c, err := core.NewCluster(core.Config{
		Seed:   cfg.Seed + int64(pctMoved)*1000,
		Scheme: core.SchemeE2E,
	})
	if err != nil {
		return Fig3Row{}, err
	}
	driver := c.Node(0)
	respA, respB := c.Node(1), c.Node(2)

	pool := make([]oid.ID, cfg.PoolSize)
	for i := range pool {
		owner := respA
		if i%2 == 1 {
			owner = respB
		}
		o, err := owner.CreateObject(cfg.ObjectSize)
		if err != nil {
			return Fig3Row{}, err
		}
		pool[i] = o.ID()
	}
	c.Run()

	// Warm the destination cache.
	if err := runToCompletion(c, len(pool), func(i int, next func()) {
		driver.ReadRef(object.Global{Obj: pool[i]}, cfg.ReadBytes, func(_ []byte, err error) {
			if err == nil {
				next()
			}
		})
	}); err != nil {
		return Fig3Row{}, err
	}

	hist := telemetry.NewHistogram()
	rng := c.Sim.Rand()
	staleBase := driver.Coherence.Counters().StaleRetries
	bcastBase := driverBroadcasts(driver)

	err = runToCompletion(c, cfg.AccessesPerPoint, func(i int, next func()) {
		obj := pool[rng.Intn(len(pool))]
		if rng.Intn(100) < pctMoved {
			// Move the object to whichever responder does not hold
			// it; the driver's cached destination goes stale.
			from, to := respA, respB
			if !from.Store.Contains(obj) {
				from, to = respB, respA
			}
			if err := c.MoveObject(obj, from, to); err != nil {
				return
			}
		}
		start := c.Sim.Now()
		driver.ReadRef(object.Global{Obj: obj}, cfg.ReadBytes, func(_ []byte, err error) {
			if err != nil {
				return
			}
			hist.Observe(us(c.Sim.Now().Sub(start)))
			next()
		})
	})
	if err != nil {
		return Fig3Row{}, err
	}

	s := hist.Summarize()
	return Fig3Row{
		PctMoved: pctMoved,
		MeanUS:   s.Mean,
		P50US:    s.P50,
		P90US:    s.P90,
		P99US:    s.P99,
		StddevUS: s.Stddev,
		StaleRetriesPerAccess: float64(driver.Coherence.Counters().StaleRetries-staleBase) /
			float64(cfg.AccessesPerPoint),
		BroadcastsPer100: float64(driverBroadcasts(driver)-bcastBase) * 100 /
			float64(cfg.AccessesPerPoint),
	}, nil
}
