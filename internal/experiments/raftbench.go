package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/telemetry"
)

// RaftConfig tunes E13, the replicated-control-plane benchmark: how
// long elections take, what consensus costs an announce, and what a
// leader-kill sweep does to control-plane availability, per replica
// count. Everything runs on virtual time; same-seed reports are
// byte-identical (GeneratedAt aside).
type RaftConfig struct {
	// Seed drives all randomness (election jitter, ID allocation).
	Seed int64
	// Smoke is the CI scale: replica counts {1, 3}, fewer ops/kills.
	Smoke bool
	// Replicas are the control-plane sizes swept (default {1, 3, 5};
	// 1 is the degenerate unreplicated controller — the baseline).
	Replicas []int
	// Ops is the closed-loop operation count per phase (default 40).
	Ops int
	// Kills is how many leader-kill rounds the availability sweep
	// runs (default 3).
	Kills int
}

func (c *RaftConfig) fill() {
	if c.Replicas == nil {
		if c.Smoke {
			c.Replicas = []int{1, 3}
		} else {
			c.Replicas = []int{1, 3, 5}
		}
	}
	if c.Ops == 0 {
		c.Ops = 40
		if c.Smoke {
			c.Ops = 24
		}
	}
	if c.Kills == 0 {
		c.Kills = 3
		if c.Smoke {
			c.Kills = 2
		}
	}
}

// RaftRow is one replica count's measurements.
type RaftRow struct {
	Replicas int `json:"replicas"`
	// ElectionUS is virtual time from cluster start to the first
	// leader (0 for the degenerate single controller).
	ElectionUS float64 `json:"election_us"`
	// CommitMeanUS/CommitP99US are announce acknowledgment latencies
	// under a stable leader: client request + raft commit + modeled
	// rule install.
	CommitMeanUS float64 `json:"commit_mean_us"`
	CommitP99US  float64 `json:"commit_p99_us"`
	// ReElectionMeanUS averages kill-to-new-leader time over the
	// sweep's successful re-elections (0 when none completed — the
	// one-replica control plane only returns when its process does).
	ReElectionMeanUS float64 `json:"reelection_mean_us"`
	// SweepOps/SweepFailed: closed-loop operations riding through the
	// kill sweep and how many exhausted their retry budget.
	SweepOps    int `json:"sweep_ops"`
	SweepFailed int `json:"sweep_failed"`
	// AvailabilityPct is the sweep's success rate.
	AvailabilityPct float64 `json:"availability_pct"`
	// Redirects counts not-leader replies and rotations clients
	// followed across the whole run.
	Redirects uint64 `json:"redirects"`
	// Elections/LeaderChanges aggregate the raft counters (0 for the
	// degenerate controller).
	Elections     uint64 `json:"elections"`
	LeaderChanges uint64 `json:"leader_changes"`
	// Committed is the leader's final commit index.
	Committed uint64 `json:"committed"`
	// Lost counts acknowledged announces absent from the post-heal
	// leader's state — committed-entry loss, the number that must be
	// zero for every replicated row. (The one-replica baseline loses
	// its whole map on a crash; that is the point of the comparison.)
	Lost int `json:"lost"`
}

// RaftReport is the E13 artifact (BENCH_raft.json).
type RaftReport struct {
	SchemaVersion int       `json:"schema_version"`
	GeneratedAt   string    `json:"generated_at,omitempty"`
	Seed          int64     `json:"seed"`
	Smoke         bool      `json:"smoke"`
	Rows          []RaftRow `json:"rows"`
}

// JSON renders the report with stable key order.
func (r *RaftReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RaftBench runs E13: per replica count, elect, commit under a stable
// leader, then kill the leader repeatedly under closed-loop load.
func RaftBench(cfg RaftConfig) (*RaftReport, error) {
	cfg.fill()
	rep := &RaftReport{SchemaVersion: 1, Seed: cfg.Seed, Smoke: cfg.Smoke}
	for _, k := range cfg.Replicas {
		row, err := raftRun(cfg, k)
		if err != nil {
			return nil, fmt.Errorf("%d replicas: %w", k, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

const (
	raftObjSize = 2048
	// raftKillAt is when each sweep round's leader dies, relative to
	// the round's first operation.
	raftKillAt = 150 * netsim.Microsecond
	// raftHealAt is when the killed replica returns.
	raftHealAt = 2 * netsim.Millisecond
	// raftCatchUp bounds the post-round daemon-heartbeat drain that
	// walks the revived replica's log forward.
	raftCatchUp = 8 * netsim.Millisecond
)

func raftRun(cfg RaftConfig, replicas int) (RaftRow, error) {
	c, err := core.NewCluster(core.Config{
		Seed:               cfg.Seed,
		Scheme:             core.SchemeControllerHA,
		ControllerReplicas: replicas,
	})
	if err != nil {
		return RaftRow{}, err
	}
	row := RaftRow{Replicas: replicas}

	// Phase 0: initial election.
	if _, ok := c.AwaitControlLeader(100 * netsim.Millisecond); !ok {
		return RaftRow{}, fmt.Errorf("no leader within 100ms")
	}
	row.ElectionUS = us(c.Sim.Now().Sub(netsim.Time(0)))

	// Phase 1: commit latency under a stable leader — closed-loop
	// acknowledged announces from one host.
	home := c.Node(1)
	commit := telemetry.NewHistogram()
	var acked []oid.ID
	announce := func(next func(err error)) {
		o, err := object.New(c.NewID(), raftObjSize, 0)
		if err != nil {
			next(err)
			return
		}
		if err := home.Store.Put(o, 1, true); err != nil {
			next(err)
			return
		}
		id := o.ID()
		home.Discovery().AnnounceCB(id, func(err error) {
			if err == nil {
				acked = append(acked, id)
			}
			next(err)
		})
	}
	err = runToCompletion(c, cfg.Ops, func(i int, next func()) {
		start := c.Sim.Now()
		announce(func(err error) {
			if err == nil {
				commit.Observe(us(c.Sim.Now().Sub(start)))
			}
			next()
		})
	})
	if err != nil {
		return RaftRow{}, err
	}
	s := commit.Summarize()
	row.CommitMeanUS, row.CommitP99US = s.Mean, s.P99

	// Phase 2: the availability sweep. Each round kills the sitting
	// leader a moment after its closed-loop load starts, revives it
	// later, and lets daemon heartbeats catch the revived log up
	// before the next round.
	reader := c.Node(0)
	reelect := telemetry.NewHistogram()
	const (
		interOp     = 100 * netsim.Microsecond
		maxAttempts = 8
		retryDelay  = 250 * netsim.Microsecond
		pollEvery   = 50 * netsim.Microsecond
		maxPolls    = 200
	)
	for round := 0; round < cfg.Kills; round++ {
		c.Sim.Schedule(raftKillAt, func() {
			idx := c.ControlLeaderIndex()
			if idx < 0 {
				return
			}
			c.CrashController(idx)
			killed := c.Sim.Now()
			polls := 0
			var poll func()
			poll = func() {
				if c.LeaderController() != nil {
					reelect.Observe(us(c.Sim.Now().Sub(killed)))
					return
				}
				if polls++; polls < maxPolls {
					c.Sim.Schedule(pollEvery, poll)
				}
			}
			poll()
			c.Sim.Schedule(raftHealAt, func() { c.RestartController(idx) })
		})
		err = runToCompletion(c, cfg.Ops, func(i int, next func()) {
			row.SweepOps++
			finish := func(err error) {
				if err != nil {
					row.SweepFailed++
				}
				c.Sim.Schedule(interOp, next)
			}
			if i%2 == 0 {
				announce(finish)
				return
			}
			// Re-locate an announced object through the control plane:
			// the stale mark forces a MsgLocate, which follows leader
			// redirects.
			obj := acked[(round+i)%len(acked)]
			var attempt func(k int)
			attempt = func(k int) {
				reader.Resolver.Invalidate(obj)
				reader.ReadRef(object.Global{Obj: obj, Off: 8}, 16, func(_ []byte, err error) {
					if err != nil && k+1 < maxAttempts {
						c.Sim.Schedule(retryDelay<<k, func() { attempt(k + 1) })
						return
					}
					finish(err)
				})
			}
			attempt(0)
		})
		if err != nil {
			return RaftRow{}, err
		}
		c.Sim.RunFor(raftCatchUp)
	}
	if row.SweepOps > 0 {
		row.AvailabilityPct = 100 * float64(row.SweepOps-row.SweepFailed) / float64(row.SweepOps)
	}
	row.ReElectionMeanUS = reelect.Summarize().Mean

	// Post-heal verification: every acknowledged announce must still
	// be in the leading replica's applied state.
	lead, ok := c.AwaitControlLeader(50 * netsim.Millisecond)
	if !ok {
		return RaftRow{}, fmt.Errorf("no leader after the kill sweep")
	}
	for _, obj := range acked {
		if owner, found := lead.Lookup(obj); !found || owner != home.Station {
			row.Lost++
		}
	}
	for _, n := range c.Nodes {
		if cc := n.Discovery(); cc != nil {
			row.Redirects += cc.Redirects()
		}
	}
	for _, rn := range c.RaftNodes() {
		ctr := rn.Counters()
		row.Elections += ctr.ElectionsStarted
		row.LeaderChanges += ctr.BecameLeader
		if rn.CommitIndex() > row.Committed {
			row.Committed = rn.CommitIndex()
		}
	}
	return row, nil
}
