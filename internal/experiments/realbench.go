package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/future"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E11 (realbench): the backend-seam payoff measured. The identical
// coherence/discovery/dataplane stack runs twice — once on the
// deterministic simulator, once over real localhost UDP sockets on
// wall-clock time — doing the same work: E1's warm/cold read RTTs and
// a short E9-style Poisson load sweep. The sim-vs-real deltas bound
// how much of the stack's measured cost is protocol (identical on
// both sides) versus kernel socket path, syscalls, and scheduling
// jitter (real side only).
//
// Methodology caveats: realnet numbers are loopback (no wire, no NIC,
// MTU 65507), the harness serializes all upcalls on one mutex, and
// Await wakeups add goroutine-scheduling latency to every sample —
// treat real-side absolute values as an upper bound on protocol cost
// over loopback, not a datacenter prediction.

// RealbenchConfig configures E11.
type RealbenchConfig struct {
	// Seed drives population layout and the sweep generators.
	Seed int64
	// Accesses is the per-class (warm/cold) RTT sample count
	// (default 400).
	Accesses int
	// WarmPool / ObjectSize / ReadBytes shape the population
	// (defaults 64 / 4096 / 64).
	WarmPool   int
	ObjectSize int
	ReadBytes  int
	// SweepRates is the offered-load ladder for the short E9 sweep in
	// ops/sec (default 2000, 8000; nil-able via Smoke).
	SweepRates []float64
	// Measure is each sweep point's window (default 200ms).
	Measure netsim.Duration
	// Smoke shrinks everything for CI (fewer samples, one rate).
	Smoke bool
	// CPUProfile, when non-empty, writes a pprof CPU profile of the
	// realnet measurement (the hot path: sockets, mux, coherence) to
	// this file.
	CPUProfile string
}

func (c *RealbenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Accesses == 0 {
		c.Accesses = 400
	}
	if c.WarmPool == 0 {
		c.WarmPool = 64
	}
	if c.ObjectSize == 0 {
		c.ObjectSize = 4096
	}
	if c.ReadBytes == 0 {
		c.ReadBytes = 64
	}
	if c.SweepRates == nil {
		c.SweepRates = []float64{2000, 8000}
	}
	if c.Measure == 0 {
		c.Measure = 200 * netsim.Millisecond
	}
	if c.Smoke {
		c.Accesses = 40
		c.SweepRates = []float64{2000}
		c.Measure = 60 * netsim.Millisecond
	}
}

// RealbenchRow is one RTT class measured on both backends (µs).
type RealbenchRow struct {
	Label      string
	SimMeanUS  float64
	SimP99US   float64
	RealMeanUS float64
	RealP99US  float64
}

// DeltaMeanUS is the real-minus-sim mean RTT: the kernel path's toll.
func (r RealbenchRow) DeltaMeanUS() float64 {
	return r.RealMeanUS - r.SimMeanUS
}

// RealbenchSweepRow is one offered-load point on both backends.
type RealbenchSweepRow struct {
	RatePerSec  float64
	SimGoodput  float64
	RealGoodput float64
	SimP99US    float64
	RealP99US   float64
}

// RealbenchResult aggregates E11.
type RealbenchResult struct {
	Rows  []RealbenchRow
	Sweep []RealbenchSweepRow
}

// benchSide is one backend's measurements.
type benchSide struct {
	warm, cold *telemetry.Histogram
	sweep      []RealbenchSweepRow // real/sim slots filled by caller
}

// Realbench runs E11: the same measurement program on both backends.
func Realbench(cfg RealbenchConfig) (*RealbenchResult, error) {
	cfg.fill()
	sim, err := realbenchSide(core.BackendSim, cfg)
	if err != nil {
		return nil, fmt.Errorf("realbench sim side: %w", err)
	}
	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
		defer pprof.StopCPUProfile()
	}
	real, err := realbenchSide(core.BackendRealnet, cfg)
	if err != nil {
		return nil, fmt.Errorf("realbench realnet side: %w", err)
	}
	res := &RealbenchResult{
		Rows: []RealbenchRow{
			{Label: "warm-read", SimMeanUS: sim.warm.Mean(), SimP99US: sim.warm.Quantile(0.99),
				RealMeanUS: real.warm.Mean(), RealP99US: real.warm.Quantile(0.99)},
			{Label: "cold-read", SimMeanUS: sim.cold.Mean(), SimP99US: sim.cold.Quantile(0.99),
				RealMeanUS: real.cold.Mean(), RealP99US: real.cold.Quantile(0.99)},
		},
	}
	for i, rate := range cfg.SweepRates {
		res.Sweep = append(res.Sweep, RealbenchSweepRow{
			RatePerSec:  rate,
			SimGoodput:  sim.sweep[i].SimGoodput,
			SimP99US:    sim.sweep[i].SimP99US,
			RealGoodput: real.sweep[i].RealGoodput,
			RealP99US:   real.sweep[i].RealP99US,
		})
	}
	return res, nil
}

// realbenchSide runs the whole measurement program on one backend
// through the backend-neutral API only: futures, Await, Exec, the
// cluster clock. The two sides differ in a single Config field.
func realbenchSide(bk core.BackendKind, cfg RealbenchConfig) (*benchSide, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cl, err := core.NewCluster(core.Config{
		Backend: bk,
		Seed:    cfg.Seed,
		Scheme:  core.SchemeE2E,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	tgt, err := workload.NewClusterTarget(cl, workload.ClusterConfig{
		WarmPool:   cfg.WarmPool,
		ColdPool:   cfg.Accesses,
		ObjectSize: cfg.ObjectSize,
		IOSize:     cfg.ReadBytes,
	})
	if err != nil {
		return nil, err
	}
	if err := tgt.WarmCtx(ctx); err != nil {
		return nil, err
	}

	side := &benchSide{warm: telemetry.NewHistogram(), cold: telemetry.NewHistogram()}

	// E1: sequential closed-loop RTTs, one outstanding op, measured on
	// the cluster clock (virtual or wall).
	measure := func(op workload.Op, hist *telemetry.Histogram) error {
		var f *future.Future[struct{}]
		var start netsim.Time
		cl.Exec(func() {
			var complete func(struct{}, error)
			f, complete = future.New[struct{}]()
			start = cl.Clock.Now()
			tgt.Issue(op, func(err error) { complete(struct{}{}, err) })
		})
		if _, err := core.Await(ctx, cl, f); err != nil {
			return err
		}
		hist.Observe(cl.Clock.Now().Sub(start).Microseconds())
		return nil
	}
	for i := 0; i < cfg.Accesses; i++ {
		if err := measure(workload.Op{Kind: workload.OpRead, Key: i}, side.warm); err != nil {
			return nil, fmt.Errorf("warm read %d: %w", i, err)
		}
	}
	for i := 0; i < cfg.Accesses; i++ {
		if err := measure(workload.Op{Kind: workload.OpRead, Cold: true, Key: i}, side.cold); err != nil {
			return nil, fmt.Errorf("cold read %d: %w", i, err)
		}
	}

	// Short E9 sweep: Poisson arrivals at each rate, reads only.
	const warmup = 20 * netsim.Millisecond
	for i, rate := range cfg.SweepRates {
		run := workload.New(cl.Clock, tgt, workload.Config{
			Seed:           cfg.Seed + int64(i+1)*101,
			Arrival:        workload.ArrivalConfig{Kind: workload.ArrivalPoisson, RatePerSec: rate},
			Mix:            workload.Mix{ReadPct: 100},
			Warmup:         warmup,
			Measure:        cfg.Measure,
			MaxOutstanding: 64,
		})
		cl.Exec(run.Start)
		if bk == core.BackendSim {
			cl.Run()
		} else {
			// Sleep out the window plus a drain margin; in-flight ops
			// complete underneath.
			cl.RunFor(warmup + cfg.Measure + 100*netsim.Millisecond)
		}
		var res workload.Result
		cl.Exec(func() { res = run.Result() })
		side.sweep = append(side.sweep, RealbenchSweepRow{
			RatePerSec:  rate,
			SimGoodput:  res.GoodputPerSec(),
			RealGoodput: res.GoodputPerSec(),
			SimP99US:    res.Latency.P99,
			RealP99US:   res.Latency.P99,
		})
	}
	return side, nil
}
