package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/trace"
)

// TraceReport is one scheme's traced cold access: the full span tree,
// the critical-path breakdown, and the externally measured RTT to
// cross-check the root span against.
type TraceReport struct {
	Scheme     string
	MeasuredUS float64 // RTT bracketed around the access callback
	RootUS     float64 // root span duration (must equal MeasuredUS)
	Spans      int     // spans in the trace
	Tree       string  // rendered span tree
	Breakdown  string  // rendered critical-path table
}

// TraceBreakdown reproduces Figure 2's cold-access comparison with
// tracing sampled at 1: one uncached read per discovery scheme, every
// hop — transport send, switch lookups, link traversals, dispatch —
// annotated causally. The root span's duration equals the externally
// measured RTT by construction (both bracket the same virtual-clock
// instants); the integration tests pin that invariant.
func TraceBreakdown(seed int64) ([]TraceReport, error) {
	var out []TraceReport
	for _, scheme := range []core.Scheme{core.SchemeE2E, core.SchemeController} {
		rep, err := traceColdAccess(seed, scheme)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// traceColdAccess runs one fully traced cold read under scheme.
func traceColdAccess(seed int64, scheme core.Scheme) (TraceReport, error) {
	c, err := core.NewCluster(core.Config{
		Seed:   seed + int64(scheme),
		Scheme: scheme,
		Trace:  trace.Config{SampleEvery: 1},
	})
	if err != nil {
		return TraceReport{}, err
	}
	driver := c.Node(0)
	o, err := c.Node(1).CreateObject(4096)
	if err != nil {
		return TraceReport{}, err
	}
	c.Run() // announcement (controller rule install) settles off-path

	// The access is cold: under E2E the driver's destination cache is
	// empty so the read pays broadcast discovery; under the controller
	// scheme the pre-installed object route carries it in one RTT.
	c.Tracer.Reset()
	start := c.Sim.Now()
	var rtt netsim.Duration
	accErr := fmt.Errorf("trace access never completed")
	driver.ReadRef(object.Global{Obj: o.ID()}, 64, func(_ []byte, err error) {
		accErr = err
		rtt = c.Sim.Now().Sub(start)
	})
	c.Run()
	if accErr != nil {
		return TraceReport{}, accErr
	}

	spans := c.Tracer.Spans()
	ids := trace.TraceIDs(spans)
	if len(ids) == 0 {
		return TraceReport{}, fmt.Errorf("no trace recorded")
	}
	root := trace.Root(spans, ids[0])
	if root == nil {
		return TraceReport{}, fmt.Errorf("trace %d has no root span", ids[0])
	}

	var tree, bd bytes.Buffer
	trace.WriteTree(&tree, spans, root.Trace)
	trace.WriteBreakdown(&bd, spans, root)
	return TraceReport{
		Scheme:     scheme.String(),
		MeasuredUS: us(rtt),
		RootUS:     root.Duration().Microseconds(),
		Spans:      len(trace.ByTrace(spans, root.Trace)),
		Tree:       tree.String(),
		Breakdown:  bd.String(),
	}, nil
}
