package experiments

import (
	"encoding/binary"
	"fmt"

	"repro/internal/netseq"
	"repro/internal/netsim"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// SeqRow compares sequencer implementations (§5: offloading
// synchronization and arbitration to the programmable network).
type SeqRow struct {
	Mode        string
	Ops         int
	MeanUS      float64
	P99US       float64
	UniqueDense bool
}

// offloadFabric is the shared star topology: a core switch (which can
// host registers) with three leaf switches and one host per leaf.
type offloadFabric struct {
	sim    *netsim.Sim
	core   *p4sim.Switch
	leaves []*p4sim.Switch
	eps    []*transport.Endpoint
}

func buildOffloadFabric(seed int64) (*offloadFabric, error) {
	sim := netsim.NewSim(seed)
	net := netsim.NewNetwork(sim)
	link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond, BitsPerSec: 10_000_000_000}
	coreSw, err := p4sim.NewSwitch(net, "core", 3, p4sim.SwitchConfig{Station: 900})
	if err != nil {
		return nil, err
	}
	f := &offloadFabric{sim: sim, core: coreSw}
	for i := 0; i < 3; i++ {
		leaf, err := p4sim.NewSwitch(net, fmt.Sprintf("leaf%d", i), 2,
			p4sim.SwitchConfig{LearnStations: true})
		if err != nil {
			return nil, err
		}
		if err := net.Connect(coreSw, i, leaf, 0, link); err != nil {
			return nil, err
		}
		f.leaves = append(f.leaves, leaf)
		h, err := netsim.NewHost(net, fmt.Sprintf("h%d", i))
		if err != nil {
			return nil, err
		}
		if err := net.Connect(h, 0, leaf, 1, link); err != nil {
			return nil, err
		}
		f.eps = append(f.eps, transport.NewEndpoint(h, wire.StationID(i+1), transport.Config{}))
	}
	return f, nil
}

// AblationNetSeq issues opsPerClient sequencer tickets from each of
// two clients, against (a) an RPC counter service on the third host
// and (b) a register service in the core switch. Tickets must come
// out unique and dense either way; the in-switch service answers in
// half the hops with no server on the path.
func AblationNetSeq(seed int64, opsPerClient int) ([]SeqRow, error) {
	if opsPerClient == 0 {
		opsPerClient = 50
	}
	rows := make([]SeqRow, 0, 2)
	for _, mode := range []string{"host-rpc", "in-switch"} {
		f, err := buildOffloadFabric(seed)
		if err != nil {
			return nil, err
		}
		hist := telemetry.NewHistogram()
		tickets := map[uint64]int{}
		issued := 0

		var next func(client int) // issues one ticket for a client, chained
		record := func(v uint64, start netsim.Time) {
			tickets[v]++
			issued++
			hist.Observe(us(f.sim.Now().Sub(start)))
		}

		switch mode {
		case "host-rpc":
			// The third host runs a counter service.
			var counter uint64
			srv := rpc.NewServer(f.eps[2])
			srv.Register("seq.next", func([]byte) ([]byte, error) {
				out := make([]byte, 8)
				binary.BigEndian.PutUint64(out, counter)
				counter++
				return out, nil
			})
			f.eps[2].SetHandler(func(h *wire.Header, p []byte) { srv.HandleFrame(h, p) })
			clients := []*rpc.Client{rpc.NewClient(f.eps[0]), rpc.NewClient(f.eps[1])}
			f.eps[0].SetHandler(func(h *wire.Header, p []byte) { clients[0].HandleFrame(h, p) })
			f.eps[1].SetHandler(func(h *wire.Header, p []byte) { clients[1].HandleFrame(h, p) })
			done := [2]int{}
			next = func(ci int) {
				if done[ci] >= opsPerClient {
					return
				}
				done[ci]++
				start := f.sim.Now()
				clients[ci].Call(3, "seq.next", nil, func(res []byte, err error) {
					if err != nil {
						return
					}
					record(binary.BigEndian.Uint64(res), start)
					next(ci)
				})
			}
		case "in-switch":
			serviceID := oid.NewSeededGenerator(seed + 7).New()
			toward := map[*p4sim.Switch]int{}
			for _, leaf := range f.leaves {
				toward[leaf] = 0
			}
			if _, err := netseq.Install(serviceID, f.core, 1, toward); err != nil {
				return nil, err
			}
			clients := []*netseq.Client{
				netseq.NewClient(f.eps[0], serviceID),
				netseq.NewClient(f.eps[1], serviceID),
			}
			done := [2]int{}
			next = func(ci int) {
				if done[ci] >= opsPerClient {
					return
				}
				done[ci]++
				start := f.sim.Now()
				clients[ci].FetchAdd(0, 1, func(old uint64, err error) {
					if err != nil {
						return
					}
					record(old, start)
					next(ci)
				})
			}
		}

		next(0)
		next(1)
		f.sim.Run()

		want := 2 * opsPerClient
		dense := issued == want
		for v, n := range tickets {
			if n != 1 || v >= uint64(want) {
				dense = false
			}
		}
		s := hist.Summarize()
		rows = append(rows, SeqRow{
			Mode:        mode,
			Ops:         issued,
			MeanUS:      s.Mean,
			P99US:       s.P99,
			UniqueDense: dense,
		})
	}
	return rows, nil
}
