//go:build race

package experiments

// raceEnabled lets tests skip testing.AllocsPerRun budget assertions
// under the race detector, whose instrumentation allocates on paths
// that are alloc-free in a normal build.
const raceEnabled = true
