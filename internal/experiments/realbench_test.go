package experiments

import "testing"

// TestRealbenchSmoke runs E11 end to end in smoke mode: both backends,
// warm+cold RTT classes, one sweep point. Realnet wall-clock numbers
// are noisy, so assertions are structural (samples exist, goodput is
// positive) with only very generous sanity bounds.
func TestRealbenchSmoke(t *testing.T) {
	res, err := Realbench(RealbenchConfig{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SimMeanUS <= 0 || r.RealMeanUS <= 0 {
			t.Errorf("%s: non-positive mean RTT: sim %.1f real %.1f",
				r.Label, r.SimMeanUS, r.RealMeanUS)
		}
		if r.SimP99US < r.SimMeanUS*0.5 || r.RealP99US < r.RealMeanUS*0.5 {
			t.Errorf("%s: p99 below half the mean: %+v", r.Label, r)
		}
	}
	if len(res.Sweep) != 1 {
		t.Fatalf("sweep rows = %d, want 1", len(res.Sweep))
	}
	sw := res.Sweep[0]
	if sw.SimGoodput <= 0 || sw.RealGoodput <= 0 {
		t.Errorf("non-positive goodput: %+v", sw)
	}
}
