package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E14: in-network computation wins, measured per feature as an on/off
// pair over the same seeded workload. Each pair isolates one gate:
//
//   - cache: a Zipf read stream (the E9 key model) against small home
//     objects, with and without the in-switch object cache — the win
//     is a nonzero switch hit rate and a lower read RTT;
//   - mcast: repeated invalidation rounds over a multi-member sharer
//     set, with and without multicast — the win is the home emitting
//     one invalidate frame per round instead of one per sharer;
//   - agg: the same rounds with ack aggregation added — the win is
//     the home receiving one coalesced ack per round instead of one
//     per sharer.

// IncSweepConfig tunes E14.
type IncSweepConfig struct {
	Seed int64
	// Smoke shrinks the workload to CI scale.
	Smoke bool
}

// IncCacheRow is one half of the cache on/off pair.
type IncCacheRow struct {
	Enabled bool    `json:"enabled"`
	Reads   int     `json:"reads"`
	MeanUS  float64 `json:"mean_us"`
	P50US   float64 `json:"p50_us"`
	P99US   float64 `json:"p99_us"`
	// CacheHits counts reads served by switches; HitRate is per
	// measured read.
	CacheHits uint64  `json:"cache_hits"`
	HitRate   float64 `json:"hit_rate"`
}

// IncMcastRow is one half of the multicast on/off pair.
type IncMcastRow struct {
	Enabled bool `json:"enabled"`
	Sharers int  `json:"sharers"`
	Rounds  int  `json:"rounds"`
	// HomeInvFrames counts invalidate frames the home emitted
	// (coherence InvalidatesSent: per-sharer unicasts, or one
	// multicast per round).
	HomeInvFrames uint64 `json:"home_inv_frames"`
	// FramesSaved is the home's accounting of unicasts a multicast
	// replaced; Replicated counts switch-emitted copies.
	FramesSaved uint64 `json:"frames_saved"`
	Replicated  uint64 `json:"replicated"`
	// Fallbacks counts per-sharer retries after ack timeouts (should
	// stay 0 in a fault-free sweep).
	Fallbacks uint64 `json:"fallbacks"`
}

// IncAggRow is one half of the ack-aggregation on/off pair (both
// halves run with multicast on; only aggregation toggles).
type IncAggRow struct {
	Enabled bool `json:"enabled"`
	Sharers int  `json:"sharers"`
	Rounds  int  `json:"rounds"`
	// AcksAtHome counts ack frames the home absorbed.
	AcksAtHome uint64 `json:"acks_at_home"`
	// AcksCoalesced/AggAcksSent/AggTimeouts are switch-side.
	AcksCoalesced uint64 `json:"acks_coalesced"`
	AggAcksSent   uint64 `json:"agg_acks_sent"`
	AggTimeouts   uint64 `json:"agg_timeouts"`
}

// IncReport is E14's output (BENCH_inc.json).
type IncReport struct {
	SchemaVersion int            `json:"schema_version"`
	GeneratedAt   string         `json:"generated_at,omitempty"`
	Seed          int64          `json:"seed"`
	Smoke         bool           `json:"smoke"`
	Cache         [2]IncCacheRow `json:"cache"` // [off, on]
	Mcast         [2]IncMcastRow `json:"mcast"` // [off, on]
	Agg           [2]IncAggRow   `json:"agg"`   // [off, on]
}

// JSON renders the report with stable key order.
func (r *IncReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// IncSweep runs experiment E14.
func IncSweep(cfg IncSweepConfig) (*IncReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 52
	}
	rep := &IncReport{SchemaVersion: 1, Seed: cfg.Seed, Smoke: cfg.Smoke}
	for i, on := range []bool{false, true} {
		row, err := incCachePoint(cfg, on)
		if err != nil {
			return nil, fmt.Errorf("inc cache on=%v: %w", on, err)
		}
		rep.Cache[i] = row
	}
	for i, on := range []bool{false, true} {
		row, err := incMcastPoint(cfg, on)
		if err != nil {
			return nil, fmt.Errorf("inc mcast on=%v: %w", on, err)
		}
		rep.Mcast[i] = row
	}
	for i, on := range []bool{false, true} {
		row, err := incAggPoint(cfg, on)
		if err != nil {
			return nil, fmt.Errorf("inc agg on=%v: %w", on, err)
		}
		rep.Agg[i] = row
	}
	return rep, nil
}

// incCachePoint drives a Zipf read stream (plus a thin write stream
// that exercises invalidation) from two readers against one home's
// small objects under SchemeE2E, where read requests carry the home's
// station and the first-hop cache can answer them.
func incCachePoint(cfg IncSweepConfig, on bool) (IncCacheRow, error) {
	pool, reads := 48, 4000
	if cfg.Smoke {
		pool, reads = 16, 600
	}
	// The cache holds read responses, not whole objects: reads cover a
	// cache-line-sized slice of each object's heap area (writes there
	// must not clobber the header/FOT).
	const objSize = 2048
	const readBytes = 256
	const heapOff = object.HeaderSize + object.FOTEntrySize*object.DefaultFOTCap

	cc := core.Config{Seed: cfg.Seed, Scheme: core.SchemeE2E, IncCache: on}
	c, err := core.NewCluster(cc)
	if err != nil {
		return IncCacheRow{}, err
	}
	home := c.Node(0)
	readers := []*core.Node{c.Node(1), c.Node(2)}

	ids := make([]oid.ID, pool)
	for i := range ids {
		o, err := home.CreateObject(objSize)
		if err != nil {
			return IncCacheRow{}, err
		}
		ids[i] = o.ID()
	}
	c.Run()

	keys := workload.NewKeys(workload.KeyConfig{
		Dist: workload.KeyZipf, Population: pool,
	}, cfg.Seed+7)
	rng := c.Sim.Rand()
	hist := telemetry.NewHistogram()
	payload := make([]byte, 32)

	err = runToCompletion(c, reads, func(i int, next func()) {
		obj := ids[keys.Pick(c.Sim.Now())]
		if rng.Intn(100) < 4 {
			// A remote write: its OpWriteReq traverses the caching
			// switch and must evict the line before the next read.
			readers[0].WriteRef(object.Global{Obj: obj, Off: heapOff}, payload, func(error) { next() })
			return
		}
		reader := readers[i%len(readers)]
		start := c.Sim.Now()
		reader.ReadRef(object.Global{Obj: obj, Off: heapOff}, readBytes, func(_ []byte, err error) {
			if err != nil {
				return
			}
			hist.Observe(us(c.Sim.Now().Sub(start)))
			next()
		})
	})
	if err != nil {
		return IncCacheRow{}, err
	}

	var hits uint64
	for _, eng := range c.IncEngines {
		hits += eng.Counters().CacheHits
	}
	s := hist.Summarize()
	return IncCacheRow{
		Enabled: on, Reads: reads,
		MeanUS: s.Mean, P50US: s.P50, P99US: s.P99,
		CacheHits: hits, HitRate: float64(hits) / float64(hist.Count()),
	}, nil
}

// incRoundSettle spaces invalidation rounds so each round's acks (and
// any switch aggregation) finish before the next acquire wave.
const incRoundSettle = 200 * netsim.Microsecond

// incShareRounds drives the invalidation-round workload both message
// pairs share: every round each sharer acquires a shared copy, then
// the home writes, invalidating the whole set.
func incShareRounds(cfg IncSweepConfig, cc core.Config) (*core.Cluster, int, int, error) {
	sharers, rounds := 5, 60
	if cfg.Smoke {
		sharers, rounds = 4, 15
	}
	cc.Seed = cfg.Seed
	cc.Scheme = core.SchemeController
	cc.NumNodes = sharers + 1
	c, err := core.NewCluster(cc)
	if err != nil {
		return nil, 0, 0, err
	}
	home := c.Node(0)
	o, err := home.CreateObject(2048)
	if err != nil {
		return nil, 0, 0, err
	}
	obj := o.ID()
	c.Run()

	payload := make([]byte, 32)
	err = runToCompletion(c, rounds, func(i int, next func()) {
		left := sharers
		for s := 1; s <= sharers; s++ {
			c.Node(s).Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) {
				if err != nil {
					return
				}
				left--
				if left == 0 {
					home.Coherence.WriteAtCB(obj, object.HeaderSize+object.FOTEntrySize*object.DefaultFOTCap,
						payload, func(err error) {
							if err != nil {
								return
							}
							// Give the invalidation round (acks, timers) a
							// settling window before the next acquire wave.
							c.Sim.Schedule(incRoundSettle, next)
						})
				}
			})
		}
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return c, sharers, rounds, nil
}

func incMcastPoint(cfg IncSweepConfig, on bool) (IncMcastRow, error) {
	c, sharers, rounds, err := incShareRounds(cfg, core.Config{IncMcast: on})
	if err != nil {
		return IncMcastRow{}, err
	}
	home := c.Node(0)
	row := IncMcastRow{
		Enabled: on, Sharers: sharers, Rounds: rounds,
		HomeInvFrames: home.Coherence.Counters().InvalidatesSent,
		FramesSaved:   home.Coherence.IncCounters().McastFramesSaved,
		Fallbacks:     home.Coherence.IncCounters().FallbackInvalidates,
	}
	for _, eng := range c.IncEngines {
		row.Replicated += eng.Counters().McastReplicated
	}
	return row, nil
}

func incAggPoint(cfg IncSweepConfig, on bool) (IncAggRow, error) {
	c, sharers, rounds, err := incShareRounds(cfg, core.Config{IncMcast: true, IncAckAgg: on})
	if err != nil {
		return IncAggRow{}, err
	}
	home := c.Node(0)
	row := IncAggRow{
		Enabled: on, Sharers: sharers, Rounds: rounds,
		AcksAtHome: home.Coherence.IncCounters().McastAcksRecv,
	}
	for _, eng := range c.IncEngines {
		ec := eng.Counters()
		row.AcksCoalesced += ec.AcksCoalesced
		row.AggAcksSent += ec.AggAcksSent
		row.AggTimeouts += ec.AggTimeouts
	}
	return row, nil
}
