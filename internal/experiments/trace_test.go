package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/trace"
	"repro/internal/transport"
)

// TestTraceRootEqualsMeasuredRTT pins the tentpole invariant: for both
// discovery schemes, the root span of a traced cold access lasts
// exactly as long as the RTT measured by bracketing the callback on
// the virtual clock.
func TestTraceRootEqualsMeasuredRTT(t *testing.T) {
	reps, err := TraceBreakdown(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("reports = %d, want one per scheme", len(reps))
	}
	for _, r := range reps {
		if r.RootUS != r.MeasuredUS {
			t.Errorf("%s: root span %.2fµs != measured RTT %.2fµs",
				r.Scheme, r.RootUS, r.MeasuredUS)
		}
		if r.Spans < 5 {
			t.Errorf("%s: only %d spans — hops not instrumented", r.Scheme, r.Spans)
		}
		for _, want := range []string{"link:", "sw:", "send:", "dispatch:"} {
			if !strings.Contains(r.Tree, want) {
				t.Errorf("%s: tree missing %q spans:\n%s", r.Scheme, want, r.Tree)
			}
		}
		if !strings.Contains(r.Breakdown, "link") || !strings.Contains(r.Breakdown, "total") {
			t.Errorf("%s: breakdown incomplete:\n%s", r.Scheme, r.Breakdown)
		}
	}
	// A cold E2E access pays broadcast discovery before the data RTT,
	// so its trace must cover strictly more hops than the controller's
	// pre-installed route.
	if reps[0].Spans <= reps[1].Spans {
		t.Errorf("E2E trace (%d spans) should exceed controller (%d)",
			reps[0].Spans, reps[1].Spans)
	}
	if !strings.Contains(reps[0].Tree, "resolve:e2e") {
		t.Errorf("E2E trace missing discovery resolution:\n%s", reps[0].Tree)
	}
}

// lossyTracedCluster builds an E2E cluster with heavy frame loss and
// the given trace config — the fault-schedule fixture for the
// retransmission-span and zero-perturbation tests.
func lossyTracedCluster(t *testing.T, seed int64, tc trace.Config) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{
		Seed:             seed,
		Scheme:           core.SchemeE2E,
		DropRate:         0.25,
		DiscoveryRetries: 40,
		DiscoveryTimeout: 500 * netsim.Microsecond,
		Trace:            tc,
		Transport: transport.Config{
			RetryBudget:          100 * netsim.Millisecond,
			MaxRetransmitTimeout: 2 * netsim.Millisecond,
			RequestTimeout:       200 * netsim.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTracedRetransmitSpans runs a traced reliable transfer under 25%
// frame loss and asserts the span tree records the retransmissions as
// rtx marks while the root still equals the measured completion time.
func TestTracedRetransmitSpans(t *testing.T) {
	c := lossyTracedCluster(t, 3, trace.Config{SampleEvery: 1})
	owner, reader := c.Node(1), c.Node(0)
	o, err := owner.CreateObject(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	c.ResetStats()
	c.Tracer.Reset()

	start := c.Sim.Now()
	var rtt netsim.Duration
	var accErr error = errNever
	reader.Deref(object.Global{Obj: o.ID()}, func(_ *object.Object, err error) {
		accErr = err
		rtt = c.Sim.Now().Sub(start)
	})
	c.Run()
	if accErr != nil {
		t.Fatal(accErr)
	}

	spans := c.Tracer.Spans()
	ids := trace.TraceIDs(spans)
	if len(ids) == 0 {
		t.Fatal("no trace recorded")
	}
	root := trace.Root(spans, ids[0])
	if root == nil {
		t.Fatal("trace has no root span")
	}
	if got := root.Duration(); got != rtt {
		t.Errorf("root span %v != measured completion %v", got, rtt)
	}

	var rtxSpans, rtxWire uint64
	for _, s := range spans {
		if s.Kind == trace.KindRetrans {
			rtxSpans++
			if s.Duration() != 0 {
				t.Errorf("rtx mark %q has nonzero duration %v", s.Name, s.Duration())
			}
		}
	}
	for _, n := range c.Nodes {
		rtxWire += n.EP.Counters().Retransmits
	}
	if rtxWire == 0 {
		t.Fatal("fixture produced no retransmits; raise loss or size")
	}
	if rtxSpans == 0 {
		t.Errorf("transport retransmitted %d times but recorded no rtx spans", rtxWire)
	}
	// Every access was sampled, so every data-path retransmit must
	// surface in the trace.
	if rtxSpans != rtxWire {
		t.Errorf("rtx spans = %d, transport counters = %d", rtxSpans, rtxWire)
	}
}

var errNever = &neverErr{}

type neverErr struct{}

func (*neverErr) Error() string { return "access never completed" }

// lossyRTTs runs the same ten-access workload on a lossyTracedCluster
// and returns every access's completion time plus the total
// retransmit count — the full observable fingerprint of the run.
func lossyRTTs(t *testing.T, tc trace.Config) ([]netsim.Duration, uint64) {
	t.Helper()
	c := lossyTracedCluster(t, 7, tc)
	owner, reader := c.Node(1), c.Node(0)
	var oids []object.Global
	for i := 0; i < 10; i++ {
		o, err := owner.CreateObject(16 << 10)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, object.Global{Obj: o.ID()})
	}
	c.Run()

	var rtts []netsim.Duration
	for _, g := range oids {
		start := c.Sim.Now()
		var accErr error = errNever
		reader.Deref(g, func(_ *object.Object, err error) {
			accErr = err
			rtts = append(rtts, c.Sim.Now().Sub(start))
		})
		c.Run()
		if accErr != nil {
			t.Fatal(accErr)
		}
	}
	var rtx uint64
	for _, n := range c.Nodes {
		rtx += n.EP.Counters().Retransmits
	}
	return rtts, rtx
}

// TestTracingZeroPerturbation is the determinism contract: the
// recorder never schedules events and never consumes simulation
// randomness, so with sampling disabled a seeded lossy workload
// replays bit-identically, and with the recorder enabled every
// *unsampled* operation still leaves no fingerprint. Sampled
// operations are deliberately excluded: their frames carry the
// 24-byte trace extension on the wire, so their serialization time —
// like any real in-band tracing system's — is honestly longer.
func TestTracingZeroPerturbation(t *testing.T) {
	off, offRtx := lossyRTTs(t, trace.Config{})
	replay, replayRtx := lossyRTTs(t, trace.Config{})
	// SampleEvery of 1<<20 samples only the first access; the other
	// nine run with the recorder live but the operation unsampled.
	sparse, sparseRtx := lossyRTTs(t, trace.Config{SampleEvery: 1 << 20})

	if offRtx == 0 {
		t.Fatal("workload produced no retransmits; perturbation test is vacuous")
	}
	if replayRtx != offRtx || sparseRtx != offRtx {
		t.Errorf("retransmit counts diverged: off=%d replay=%d sparse=%d",
			offRtx, replayRtx, sparseRtx)
	}
	for i := range off {
		if replay[i] != off[i] {
			t.Errorf("access %d: replay %v != original %v", i, replay[i], off[i])
		}
		if i > 0 && sparse[i] != off[i] {
			t.Errorf("access %d: unsampled-but-enabled %v != untraced %v",
				i, sparse[i], off[i])
		}
	}
}

// TestTelemetrySnapshotStableNames exercises the unified stats
// surface: one registry snapshot spanning every layer, under the
// documented metric names.
func TestTelemetrySnapshotStableNames(t *testing.T) {
	c, err := core.NewCluster(core.Config{Seed: 11, Scheme: core.SchemeE2E,
		Trace: trace.Config{SampleEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	owner, reader := c.Node(1), c.Node(0)
	o, err := owner.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	done := false
	reader.Deref(object.Global{Obj: o.ID()}, func(_ *object.Object, err error) {
		if err != nil {
			t.Errorf("deref: %v", err)
		}
		done = true
	})
	c.Run()
	if !done {
		t.Fatal("access never completed")
	}

	snap := c.Telemetry()
	for _, name := range []string{
		"net.frames_delivered",
		"switch.frames_in",
		"transport.frames_sent",
		"mux.dispatched",
		"coherence.remote_acquires",
		"discovery.broadcasts",
		"trace.spans",
	} {
		v, ok := snap.Get(name)
		if !ok {
			t.Errorf("metric %q missing from snapshot; have:\n%s", name, snap.String())
			continue
		}
		if v == 0 {
			t.Errorf("metric %q is zero after a remote access", name)
		}
	}
	if snap.Len() == 0 || len(snap.Names()) != snap.Len() {
		t.Fatalf("inconsistent snapshot: %d names", snap.Len())
	}
	// Rendering is sorted and line-per-metric: stable enough to diff.
	lines := strings.Count(strings.TrimRight(snap.String(), "\n"), "\n") + 1
	if lines != snap.Len() {
		t.Errorf("String() rendered %d lines for %d metrics", lines, snap.Len())
	}
}
