package experiments

import "testing"

// TestHotpathSmoke runs the E15 smoke configuration and asserts the
// two properties the experiment exists to pin:
//
//   - every budgeted layer stays within its allocs/op gate (dataplane
//     at 0, end-to-end coherence ops at <=2);
//   - batching the per-host delivery wakeups moves the saturation
//     knee strictly right at the same simulated link speed.
func TestHotpathSmoke(t *testing.T) {
	rep, err := Hotpath(HotpathConfig{Seed: 42, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, row := range rep.Allocs {
		// The race detector's instrumentation allocates on paths that
		// are alloc-free in a normal build, so the budgets only bind
		// without -race; the knee assertions below always hold.
		if !row.Pass && !raceEnabled {
			t.Errorf("%s: %.2f allocs/op over budget %.0f",
				row.Layer, row.AllocsPerOp, row.Budget)
		}
		t.Logf("%-38s %6.2f allocs/op", row.Layer, row.AllocsPerOp)
	}

	if !rep.KneeMovedRight {
		t.Errorf("batched knee idx=%d did not move right of per-frame idx=%d",
			rep.Batched.Knee.Index, rep.Unbatched.Knee.Index)
	}
	t.Logf("knee: per-frame idx=%d (%.0f ops/s, %s) -> batched idx=%d (%.0f ops/s, %s)",
		rep.Unbatched.Knee.Index, rep.Unbatched.Knee.OfferedPerSec, rep.Unbatched.Knee.Reason,
		rep.Batched.Knee.Index, rep.Batched.Knee.OfferedPerSec, rep.Batched.Knee.Reason)

	// The batched run must not trade latency for throughput below the
	// knee: at the lowest offered rate both configurations are
	// unsaturated, and batching may only help.
	if len(rep.Unbatched.Points) > 0 && len(rep.Batched.Points) > 0 {
		u0, b0 := rep.Unbatched.Points[0], rep.Batched.Points[0]
		if b0.P99US > u0.P99US {
			t.Errorf("batched p99 %.1fus worse than per-frame %.1fus at the lowest rate",
				b0.P99US, u0.P99US)
		}
	}
}
