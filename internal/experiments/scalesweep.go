package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/workload"
)

// E12 — the million-object scale sweep. The paper's prototype routes
// on object identity for a handful of objects; §3.2's capacity
// analysis is exactly the question of what happens when the object
// table no longer fits in switch SRAM. E12 answers it with the sharded
// scheme: homes are a pure function of the ID (placement.Sharder), the
// fabric carries one aggregated ternary rule per shard-egress pair
// instead of one exact entry per object, and the per-home coherence
// directory is the only per-object state — measured here in bytes per
// tracked object alongside lookup cost, switch hit/miss/punt rates,
// and the throughput knee as the object count grows.

// ScaleSweepConfig tunes E12.
type ScaleSweepConfig struct {
	Seed int64
	// Smoke shrinks the grid to CI scale (10^4 objects, small fabrics).
	Smoke bool
	// WallNanos reads a monotonic wall clock in nanoseconds. The
	// sharder lookup cost (SharderLookupNS) is E12's one real-CPU
	// measurement; the reader is injected so this package stays off
	// the runtime wall clock (checkseam gate 2). Nil skips the
	// measurement and reports 0.
	WallNanos func() int64
}

// ScaleSweepRow is one (mode, nodes, objects) point.
type ScaleSweepRow struct {
	// Mode is the filter-table regime: "resident" (default SRAM budget,
	// every aggregated rule stays installed), "evict-punt" or
	// "evict-flood" (budget squeezed to a handful of rules, LRU
	// eviction, misses punted to the shard manager or flooded).
	Mode    string `json:"mode"`
	Nodes   int    `json:"nodes"`
	Objects int    `json:"objects"`
	Shards  int    `json:"shards"`

	// Fabric state: aggregated shard rules actually installed, the
	// largest per-switch rule count, and the SRAM-model capacity each
	// filter table would hold — occupancy must track shards, not
	// objects.
	FilterRulesTotal   int `json:"filter_rules_total"`
	FilterRulesMax     int `json:"filter_rules_max_per_switch"`
	FilterCapacityEach int `json:"filter_capacity_per_switch"`

	// Directory footprint across all homes after the access phase.
	DirectoryEntries     uint64  `json:"directory_entries"`
	DirectoryBytes       uint64  `json:"directory_bytes"`
	DirectoryBytesPerObj float64 `json:"directory_bytes_per_tracked_object"`

	// SharderLookupNS is wall-clock ns per HomeOf over the whole
	// population (the one non-deterministic field; everything else is
	// virtual-time exact). 0 when no WallNanos reader was injected.
	SharderLookupNS float64 `json:"sharder_lookup_ns_per_op"`

	Accesses int `json:"accesses"`
	Failed   int `json:"failed"`

	FilterHits   uint64 `json:"switch_filter_hits"`
	ObjectMisses uint64 `json:"switch_object_misses"`
	MissPunts    uint64 `json:"switch_miss_punts"`
	MissFloods   uint64 `json:"switch_miss_floods"`
	Evictions    uint64 `json:"switch_filter_evictions"`
	PuntsServed  uint64 `json:"shard_mgr_punts_served"`
	// HitRate is filter hits over object-routed lookups (hits+misses).
	HitRate float64 `json:"switch_hit_rate"`

	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	MeanUS              float64 `json:"mean_access_us"`
}

// ScaleKnee marks, per (mode, nodes) series, the largest object count
// whose throughput still holds kneeFraction of the series' best.
type ScaleKnee struct {
	Mode        string  `json:"mode"`
	Nodes       int     `json:"nodes"`
	KneeObjects int     `json:"knee_objects"`
	Throughput  float64 `json:"throughput_ops_per_sec"`
	Reason      string  `json:"reason"`
}

// ScaleReport is the E12 artifact (BENCH_scale.json). GeneratedAt is
// stamped by the caller after the run; SharderLookupNS aside, the body
// is deterministic from the seed.
type ScaleReport struct {
	SchemaVersion int             `json:"schema_version"`
	GeneratedAt   string          `json:"generated_at,omitempty"`
	Seed          int64           `json:"seed"`
	ZipfS         float64         `json:"zipf_s"`
	Rows          []ScaleSweepRow `json:"rows"`
	Knees         []ScaleKnee     `json:"knees"`
}

// JSON renders the report with stable key order.
func (r *ScaleReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// kneeFraction of a series' best throughput defines "still healthy".
const kneeFraction = 0.7

// E12 object shape: minimal FOT so the population is mostly payload;
// reads land past the header+FOT.
const (
	scaleObjSize = 64
	scaleFOTCap  = 1
	scaleIOOff   = object.HeaderSize + object.FOTEntrySize*scaleFOTCap
)

// pressureFilterBudget squeezes the filter table to a handful of
// ternary rules so eviction and the miss fallback are exercised.
const pressureFilterBudget = 1024

type scaleGrid struct {
	objectCounts []int
	nodeCounts   []int
	shards       int
	accesses     int
	zipfS        float64
}

func scaleGridFor(smoke bool) scaleGrid {
	if smoke {
		return scaleGrid{
			objectCounts: []int{1_000, 10_000},
			nodeCounts:   []int{4, 8},
			shards:       64,
			accesses:     400,
			zipfS:        1.1,
		}
	}
	return scaleGrid{
		objectCounts: []int{10_000, 100_000, 1_000_000},
		nodeCounts:   []int{8, 32, 104},
		shards:       256,
		accesses:     4_000,
		zipfS:        1.1,
	}
}

// ScaleSweep runs E12. The resident regime covers the full
// objects × nodes grid; the two eviction regimes sweep object counts
// at the smallest fabric, where the flood-vs-punt cost difference is
// easiest to read.
func ScaleSweep(cfg ScaleSweepConfig) (*ScaleReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	g := scaleGridFor(cfg.Smoke)
	rep := &ScaleReport{SchemaVersion: 1, Seed: cfg.Seed, ZipfS: g.zipfS}

	for _, nodes := range g.nodeCounts {
		for _, objs := range g.objectCounts {
			row, err := scaleSweepPoint(cfg.Seed, g, "resident", nodes, objs, cfg.WallNanos)
			if err != nil {
				return nil, fmt.Errorf("resident/%dn/%dobj: %w", nodes, objs, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	for _, mode := range []string{"evict-punt", "evict-flood"} {
		for _, objs := range g.objectCounts {
			row, err := scaleSweepPoint(cfg.Seed, g, mode, g.nodeCounts[0], objs, cfg.WallNanos)
			if err != nil {
				return nil, fmt.Errorf("%s/%dn/%dobj: %w", mode, g.nodeCounts[0], objs, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Knees = scaleKnees(rep.Rows)
	return rep, nil
}

func scaleSweepPoint(seed int64, g scaleGrid, mode string, nodes, objects int, wall func() int64) (ScaleSweepRow, error) {
	cfg := core.Config{
		Seed:          seed + int64(nodes)*1_000 + int64(objects),
		Scheme:        core.SchemeSharded,
		NumNodes:      nodes,
		NumLeaves:     scaleLeaves(nodes),
		Shards:        g.shards,
		TableEviction: p4sim.EvictLRU,
	}
	switch mode {
	case "evict-punt":
		cfg.FilterTableMemory = pressureFilterBudget
		cfg.ObjectMiss = p4sim.MissPunt
	case "evict-flood":
		cfg.FilterTableMemory = pressureFilterBudget
		cfg.ObjectMiss = p4sim.MissFlood
	default:
		cfg.ObjectMiss = p4sim.MissPunt // residents never miss; fallback is moot
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return ScaleSweepRow{}, err
	}

	// Population: objects adopted at their sharded homes, round-robin
	// over the stations rendezvous gave shards to. No metadata, no
	// announcements, no per-object switch rules — per-object state is
	// the store entry plus (after access) a directory slot.
	var homes []*core.Node
	for _, n := range c.Nodes {
		if _, ok := c.NewIDHomedAt(n.Station); ok {
			homes = append(homes, n)
		}
	}
	if len(homes) == 0 {
		return ScaleSweepRow{}, fmt.Errorf("no station owns a shard")
	}
	ids := make([]oid.ID, objects)
	for i := range ids {
		home := homes[i%len(homes)]
		id, _ := c.NewIDHomedAt(home.Station)
		o, err := object.New(id, scaleObjSize, scaleFOTCap)
		if err != nil {
			return ScaleSweepRow{}, err
		}
		if err := home.AdoptObjectLite(o); err != nil {
			return ScaleSweepRow{}, err
		}
		ids[i] = id
	}

	// Sharder lookup cost over the full population, wall clock via the
	// injected reader (nil under pure-sim callers: reported as 0).
	var lookupNS float64
	if wall != nil {
		start := wall()
		var sink uint64
		for _, id := range ids {
			sink ^= uint64(c.Sharder.HomeOf(id))
		}
		lookupNS = float64(wall()-start) / float64(len(ids))
		_ = sink
	}

	// Access phase: the driver works Zipf-popular keys in a closed
	// loop — three bus-style reads (no caching, no directory state)
	// for every shared acquire (caches at the driver and registers a
	// sharer slot in the home's directory, the per-object state E12
	// meters). Key 0 is the hottest; key→ID is the identity into the
	// population slice.
	keys := workload.NewKeys(workload.KeyConfig{
		Dist: workload.KeyZipf, Population: objects, ZipfS: g.zipfS,
	}, cfg.Seed+1)
	driver := c.Node(0)
	c.ResetStats()
	simStart := c.Sim.Now()
	var totalUS float64
	completed, failed := 0, 0
	err = runToCompletion(c, g.accesses, func(i int, next func()) {
		obj := ids[keys.Pick(c.Sim.Now())]
		opStart := c.Sim.Now()
		done := func(err error) {
			if err != nil {
				failed++
			} else {
				totalUS += us(c.Sim.Now().Sub(opStart))
				completed++
			}
			next()
		}
		if i%4 == 0 {
			driver.Coherence.AcquireShared(obj).Then(
				func(_ *object.Object, err error) { done(err) })
		} else {
			driver.Coherence.ReadAt(obj, scaleIOOff, 8).Then(
				func(_ []byte, err error) { done(err) })
		}
	})
	if err != nil {
		return ScaleSweepRow{}, err
	}
	elapsed := c.Sim.Now().Sub(simStart)

	row := ScaleSweepRow{
		Mode:            mode,
		Nodes:           nodes,
		Objects:         objects,
		Shards:          c.Sharder.Shards(),
		SharderLookupNS: lookupNS,
		Accesses:        g.accesses,
		Failed:          failed,
		PuntsServed:     c.ShardPunts(),
	}
	for _, sw := range c.Switches {
		ft := sw.FilterTable()
		row.FilterRulesTotal += ft.Len()
		if ft.Len() > row.FilterRulesMax {
			row.FilterRulesMax = ft.Len()
		}
		row.FilterCapacityEach = ft.Capacity()
		row.Evictions += ft.Evictions()
		cs := sw.Counters()
		row.FilterHits += cs.FilterHits
		row.ObjectMisses += cs.ObjectMisses
		row.MissPunts += cs.MissPunts
		row.MissFloods += cs.MissFloods
	}
	for _, n := range c.Nodes {
		d := n.Coherence.Directory()
		row.DirectoryEntries += uint64(d.Len())
		row.DirectoryBytes += uint64(d.Bytes())
	}
	if row.DirectoryEntries > 0 {
		row.DirectoryBytesPerObj = float64(row.DirectoryBytes) / float64(row.DirectoryEntries)
	}
	if lookups := row.FilterHits + row.ObjectMisses; lookups > 0 {
		row.HitRate = float64(row.FilterHits) / float64(lookups)
	}
	if completed > 0 {
		row.MeanUS = totalUS / float64(completed)
	}
	if secs := float64(elapsed) / float64(netsim.Second); secs > 0 {
		row.ThroughputOpsPerSec = float64(completed) / secs
	}
	return row, nil
}

// scaleLeaves sizes the fabric so each leaf carries at most 8 hosts.
func scaleLeaves(nodes int) int {
	leaves := (nodes + 7) / 8
	if leaves < 2 {
		leaves = 2
	}
	return leaves
}

// scaleKnees finds, for each (mode, nodes) series with at least two
// object counts, the largest object count still within kneeFraction of
// the series' best throughput.
func scaleKnees(rows []ScaleSweepRow) []ScaleKnee {
	type key struct {
		mode  string
		nodes int
	}
	series := map[key][]ScaleSweepRow{}
	var order []key
	for _, r := range rows {
		k := key{r.Mode, r.Nodes}
		if _, seen := series[k]; !seen {
			order = append(order, k)
		}
		series[k] = append(series[k], r)
	}
	var knees []ScaleKnee
	for _, k := range order {
		rs := series[k]
		if len(rs) < 2 {
			continue
		}
		best := 0.0
		for _, r := range rs {
			if r.ThroughputOpsPerSec > best {
				best = r.ThroughputOpsPerSec
			}
		}
		knee := ScaleKnee{Mode: k.mode, Nodes: k.nodes, KneeObjects: -1,
			Reason: fmt.Sprintf("no point held %.0f%% of best %.0f ops/s", kneeFraction*100, best)}
		for _, r := range rs { // rows are in ascending object order
			if r.ThroughputOpsPerSec >= kneeFraction*best {
				knee.KneeObjects = r.Objects
				knee.Throughput = r.ThroughputOpsPerSec
				knee.Reason = fmt.Sprintf("largest population within %.0f%% of best %.0f ops/s",
					kneeFraction*100, best)
			}
		}
		knees = append(knees, knee)
	}
	return knees
}
