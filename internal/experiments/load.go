package experiments

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// LoadConfig tunes E9, the load sweep.
type LoadConfig struct {
	Seed int64
	// Smoke shrinks the grid to CI scale: fewer rates, shorter
	// windows, slower links so the knee still appears.
	Smoke bool
}

// LoadSweep is experiment E9: ramp Poisson offered load against E2E
// and Controller discovery and locate each scheme's saturation knee.
// Links are deliberately slow (100 Mb/s full, 50 Mb/s smoke) so the
// driver's access link saturates at rates the virtual clock sweeps in
// milliseconds; past the knee, request timeouts trigger coherence
// retries and goodput collapses while intended-start latency
// accounting blows up the tail — exactly the signature the knee
// detector keys on.
func LoadSweep(cfg LoadConfig) (*workload.Report, error) {
	sw := workload.SweepConfig{
		Seed:           cfg.Seed,
		Schemes:        []core.Scheme{core.SchemeE2E, core.SchemeController},
		Arrival:        workload.ArrivalConfig{Kind: workload.ArrivalPoisson},
		Mix:            workload.Mix{ColdFrac: 0.02},
		Keys:           workload.KeyConfig{Dist: workload.KeyZipf, Population: 128},
		NumNodes:       3,
		MaxOutstanding: 512,
	}
	if cfg.Smoke {
		sw.Rates = []float64{4_000, 8_000, 16_000, 32_000}
		sw.LinkBitsPerSec = 50_000_000
		sw.Warmup = 5 * netsim.Millisecond
		sw.Measure = 15 * netsim.Millisecond
		sw.Keys.Population = 48
		sw.Target = workload.ClusterConfig{WarmPool: 24, ColdPool: 64}
	} else {
		sw.Rates = []float64{2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000}
		sw.LinkBitsPerSec = 100_000_000
		sw.Warmup = 10 * netsim.Millisecond
		sw.Measure = 50 * netsim.Millisecond
		sw.Target = workload.ClusterConfig{WarmPool: 64, ColdPool: 256}
	}
	return workload.Sweep(sw)
}
