package experiments

import "testing"

// TestIncSweepWins runs the E14 smoke sweep and asserts each
// in-network computation shows its measured win over the same seeded
// workload with the feature off:
//
//   - cache: switches serve a nonzero share of reads and the mean
//     read RTT drops;
//   - mcast: the home emits fewer invalidate frames per round than
//     the per-sharer unicast fan-out, with no ack-timeout fallbacks;
//   - agg: the home receives fewer ack frames than one-per-sharer,
//     with switches actually coalescing and never fabricating.
func TestIncSweepWins(t *testing.T) {
	rep, err := IncSweep(IncSweepConfig{Seed: 52, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}

	coff, con := rep.Cache[0], rep.Cache[1]
	if coff.CacheHits != 0 {
		t.Errorf("cache off: counted %d hits with no engine", coff.CacheHits)
	}
	if con.CacheHits == 0 {
		t.Errorf("cache on: no reads served from the switch")
	}
	if con.MeanUS >= coff.MeanUS {
		t.Errorf("cache on: mean RTT %.3fus did not beat off %.3fus", con.MeanUS, coff.MeanUS)
	}
	t.Logf("cache: mean %.3f -> %.3f us, hit rate %.2f", coff.MeanUS, con.MeanUS, con.HitRate)

	moff, mon := rep.Mcast[0], rep.Mcast[1]
	if mon.HomeInvFrames >= moff.HomeInvFrames {
		t.Errorf("mcast on: home emitted %d invalidate frames, off %d — no win",
			mon.HomeInvFrames, moff.HomeInvFrames)
	}
	if mon.FramesSaved == 0 || mon.Replicated == 0 {
		t.Errorf("mcast on: saved=%d replicated=%d — multicast never engaged",
			mon.FramesSaved, mon.Replicated)
	}
	if mon.Fallbacks != 0 {
		t.Errorf("mcast on: %d ack-timeout fallbacks in a fault-free sweep", mon.Fallbacks)
	}
	t.Logf("mcast: home inv frames %d -> %d (saved %d)",
		moff.HomeInvFrames, mon.HomeInvFrames, mon.FramesSaved)

	aoff, aon := rep.Agg[0], rep.Agg[1]
	if aon.AcksAtHome >= aoff.AcksAtHome {
		t.Errorf("agg on: home received %d acks, off %d — no win", aon.AcksAtHome, aoff.AcksAtHome)
	}
	if aon.AcksCoalesced == 0 || aon.AggAcksSent == 0 {
		t.Errorf("agg on: coalesced=%d sent=%d — aggregation never engaged",
			aon.AcksCoalesced, aon.AggAcksSent)
	}
	if aon.AggTimeouts != 0 {
		t.Errorf("agg on: %d switch flush timeouts in a fault-free sweep", aon.AggTimeouts)
	}
	t.Logf("agg: acks at home %d -> %d (coalesced %d)",
		aoff.AcksAtHome, aon.AcksAtHome, aon.AcksCoalesced)
}
