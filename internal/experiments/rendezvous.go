package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/serde"
	"repro/internal/wire"
)

// RendezvousConfig parameterizes the Figure 1 strategy comparison.
type RendezvousConfig struct {
	Seed int64
	// Buckets and Dim size the sparse model (§2's global model shard).
	Buckets int
	Dim     int
	// ActivationLen is the number of features per inference.
	ActivationLen int
	// ComputeWork is the abstract inference work for the cost model.
	ComputeWork float64
}

func (c *RendezvousConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 44
	}
	if c.Buckets == 0 {
		c.Buckets = 2000
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.ActivationLen == 0 {
		c.ActivationLen = 32
	}
	if c.ComputeWork == 0 {
		c.ComputeWork = 0.01
	}
}

// RendezvousRow is one strategy's outcome.
type RendezvousRow struct {
	Strategy     string
	Description  string
	CompletionUS float64
	KBMoved      float64
	Frames       uint64
	Executor     wire.StationID
	ResultOK     bool
}

// Rendezvous reproduces Figure 1: the same inference task (§2's
// Alice/Bob/Carol scenario) under
//
//	(1) manual copy        — Alice RPC-fetches the serialized model
//	    from Bob, then RPCs it to Carol with the activation;
//	(2) manual copy, optimized — Alice RPCs Carol, which pulls the
//	    serialized model from Bob itself;
//	(3) automatic copy     — Alice invokes a code reference over the
//	    model object; the system places the computation and the
//	    object moves as a byte copy on demand;
//	(4) Dave's local case (§5) — the invoker already holds a cached
//	    copy; the system runs the inference locally, which "could not
//	    be realized via any RPC mechanism".
func Rendezvous(cfg RendezvousConfig) ([]RendezvousRow, error) {
	cfg.fill()
	m := model.NewRandom(cfg.Seed, cfg.Buckets, cfg.Dim)
	activation := m.Features()[:cfg.ActivationLen]
	want := m.Infer(activation)

	rows := make([]RendezvousRow, 0, 4)
	for _, s := range []string{"manual-copy", "manual-copy-optimized", "automatic-copy", "dave-local"} {
		row, err := rendezvousStrategy(cfg, s, m, activation, want)
		if err != nil {
			return nil, fmt.Errorf("strategy %s: %w", s, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// encodeActivation serializes an activation (by value — it is small,
// the part of the workload RPC is fine at).
func encodeActivation(features []uint64) []byte {
	e := serde.NewEncoder(8 * (len(features) + 1))
	e.PutUvarint(uint64(len(features)))
	for _, f := range features {
		e.PutUvarint(f)
	}
	return e.Bytes()
}

func decodeActivation(raw []byte) ([]uint64, error) {
	d := serde.NewDecoder(raw)
	n := int(d.Uvarint())
	if d.Err() != nil || n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("bad activation")
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uvarint()
	}
	return out, d.Err()
}

func encodeScore(v float64) []byte {
	e := serde.NewEncoder(8)
	e.PutFloat64(v)
	return e.Bytes()
}

func decodeScore(raw []byte) float64 {
	return serde.NewDecoder(raw).Float64()
}

// execDelay models inference compute time at a node.
func execDelay(n *core.Node, work float64) netsim.Duration {
	rate := n.ComputeRate * (1 - n.Load)
	if rate <= 0 {
		rate = 1e-6
	}
	return netsim.Duration(work / rate * float64(netsim.Second))
}

func rendezvousStrategy(cfg RendezvousConfig, strategy string, m *model.SparseModel,
	activation []uint64, want float64) (RendezvousRow, error) {

	numNodes := 3
	if strategy == "dave-local" {
		numNodes = 4
	}
	c, err := core.NewCluster(core.Config{
		Seed:     cfg.Seed,
		Scheme:   core.SchemeE2E,
		NumNodes: numNodes,
	})
	if err != nil {
		return RendezvousRow{}, err
	}
	alice, bob, carol := c.Node(0), c.Node(1), c.Node(2)
	alice.SetLoadProfile(1, 0)
	bob.SetLoadProfile(10, 0.95)
	carol.SetLoadProfile(10, 0)

	// The model lives on Bob in both representations: the heap form
	// serves the RPC baseline, the object form serves invocation.
	modelObj, err := model.BuildObject(c.NewID(), m)
	if err != nil {
		return RendezvousRow{}, err
	}
	if err := bob.AdoptObject(modelObj); err != nil {
		return RendezvousRow{}, err
	}
	marshaled := m.Marshal()

	// Baseline RPC service surface (the "many RPC calls to implement
	// all the ways a programmer might wish to view data", §3.1).
	for _, nd := range c.Nodes {
		nd := nd
		// model.fetch: Bob serializes and returns the model.
		nd.RPCServer.RegisterAsync("model.fetch", func(_ []byte, reply func([]byte, error)) {
			c.Sim.Schedule(cpuDelay(len(marshaled), SerializeBytesPerSec), func() {
				reply(marshaled, nil)
			})
		})
		// model.run: deserialize the shipped model, then infer.
		nd.RPCServer.RegisterAsync("model.run", func(args []byte, reply func([]byte, error)) {
			d := serde.NewDecoder(args)
			raw := d.Bytes()
			act, aerr := decodeActivation(d.Bytes())
			if d.Err() != nil || aerr != nil {
				reply(nil, fmt.Errorf("bad model.run args"))
				return
			}
			c.Sim.Schedule(cpuDelay(len(raw), DeserializeBytesPerSec), func() {
				mm, err := model.Unmarshal(raw)
				if err != nil {
					reply(nil, err)
					return
				}
				c.Sim.Schedule(execDelay(nd, cfg.ComputeWork), func() {
					reply(encodeScore(mm.Infer(act)), nil)
				})
			})
		})
		// model.runpull: pull the model from the named station first
		// (strategy 2's "additional RPC on Carol", Figure 1).
		nd.RPCServer.RegisterAsync("model.runpull", func(args []byte, reply func([]byte, error)) {
			d := serde.NewDecoder(args)
			src := wire.StationID(d.Uint64())
			actRaw := d.Bytes()
			if d.Err() != nil {
				reply(nil, fmt.Errorf("bad model.runpull args"))
				return
			}
			nd.RPCClient.Call(src, "model.fetch", nil, func(raw []byte, err error) {
				if err != nil {
					reply(nil, err)
					return
				}
				e := serde.NewEncoder(len(raw) + len(actRaw) + 16)
				e.PutBytes(raw)
				e.PutBytes(actRaw)
				// Reuse model.run's body locally.
				d2 := serde.NewDecoder(e.Bytes())
				raw2 := d2.Bytes()
				act, aerr := decodeActivation(d2.Bytes())
				if aerr != nil {
					reply(nil, aerr)
					return
				}
				c.Sim.Schedule(cpuDelay(len(raw2), DeserializeBytesPerSec), func() {
					mm, merr := model.Unmarshal(raw2)
					if merr != nil {
						reply(nil, merr)
						return
					}
					c.Sim.Schedule(execDelay(nd, cfg.ComputeWork), func() {
						reply(encodeScore(mm.Infer(act)), nil)
					})
				})
			})
		})
		// Data-centric code object target: infer over a model object
		// reference, loading by byte copy.
		nd.Registry.Register("model.infer", func(ctx *ExecCtxAlias) {
			ctx.Deref(ctx.Args[0], func(o *object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				act, aerr := decodeActivation(ctx.Param)
				if aerr != nil {
					ctx.Fail(aerr)
					return
				}
				c.Sim.Schedule(cpuDelay(o.Size(), ByteCopyBytesPerSec), func() {
					v, verr := model.LoadView(o)
					if verr != nil {
						ctx.Fail(verr)
						return
					}
					c.Sim.Schedule(execDelay(nd, cfg.ComputeWork), func() {
						ctx.Return(encodeScore(v.Infer(act)))
					})
				})
			})
		})
	}
	c.Run()
	c.ResetStats()

	actBlob := encodeActivation(activation)
	start := c.Sim.Now()
	end := start
	var got float64
	var gotErr error
	var executor wire.StationID
	done := false
	finish := func(raw []byte, err error) {
		got, gotErr = decodeScore(raw), err
		if err != nil {
			got = math.NaN()
		}
		// Capture completion inside the callback: after Run() the
		// clock has advanced past stopped timeout timers.
		end = c.Sim.Now()
		done = true
	}

	switch strategy {
	case "manual-copy":
		// (1) Alice copies the data locally, forwards it to Carol,
		// then invokes — two full model transfers plus Alice's logic.
		executor = carol.Station
		alice.RPCClient.Call(bob.Station, "model.fetch", nil, func(raw []byte, err error) {
			if err != nil {
				finish(nil, err)
				return
			}
			e := serde.NewEncoder(len(raw) + len(actBlob) + 16)
			e.PutBytes(raw)
			e.PutBytes(actBlob)
			alice.RPCClient.Call(carol.Station, "model.run", e.Bytes(), finish)
		})
	case "manual-copy-optimized":
		// (2) Alice asks Carol to pull from Bob itself.
		executor = carol.Station
		e := serde.NewEncoder(len(actBlob) + 16)
		e.PutUint64(uint64(bob.Station))
		e.PutBytes(actBlob)
		alice.RPCClient.Call(carol.Station, "model.runpull", e.Bytes(), finish)
	case "automatic-copy":
		// (3) Alice names the computation and the data; the system
		// chooses the executor and moves bytes on demand.
		code, cerr := alice.CreateCodeObject("model.infer", modelObj.ID())
		if cerr != nil {
			return RendezvousRow{}, cerr
		}
		alice.Invoke(object.Global{Obj: code.ID()}, []object.Global{{Obj: modelObj.ID()}},
			func(r core.InvokeResult, err error) {
				executor = r.Executor
				finish(r.Result, err)
			},
			core.WithParam(actBlob),
			core.WithComputeWork(cfg.ComputeWork), core.WithResultSize(16))
	case "dave-local":
		// (4) Dave is a capable edge device already holding a cached
		// copy; the same Invoke now runs locally with no movement.
		dave := c.Node(3)
		// Dave is "equipped with the resources to do the work
		// locally" (§5).
		dave.SetLoadProfile(12, 0)
		warm := false
		dave.Deref(object.Global{Obj: modelObj.ID()}, func(_ *object.Object, err error) {
			warm = err == nil
		})
		c.Run()
		if !warm {
			return RendezvousRow{}, fmt.Errorf("failed to warm Dave's cache")
		}
		c.ResetStats()
		start = c.Sim.Now()
		code, cerr := dave.CreateCodeObject("model.infer", modelObj.ID())
		if cerr != nil {
			return RendezvousRow{}, cerr
		}
		dave.Invoke(object.Global{Obj: code.ID()}, []object.Global{{Obj: modelObj.ID()}},
			func(r core.InvokeResult, err error) {
				executor = r.Executor
				finish(r.Result, err)
			},
			core.WithParam(actBlob),
			core.WithComputeWork(cfg.ComputeWork), core.WithResultSize(16))
	default:
		return RendezvousRow{}, fmt.Errorf("unknown strategy %q", strategy)
	}
	c.Run()
	if !done {
		return RendezvousRow{}, fmt.Errorf("strategy did not complete")
	}
	if gotErr != nil {
		return RendezvousRow{}, gotErr
	}

	st := c.Stats()
	descriptions := map[string]string{
		"manual-copy":           "Fig 1(1): Alice fetches, forwards, invokes",
		"manual-copy-optimized": "Fig 1(2): Carol pulls from Bob on Alice's behalf",
		"automatic-copy":        "Fig 1(3): system placement + byte-copy movement",
		"dave-local":            "§5: capable invoker with cached copy runs locally",
	}
	return RendezvousRow{
		Strategy:     strategy,
		Description:  descriptions[strategy],
		CompletionUS: us(end.Sub(start)),
		KBMoved:      float64(st.Network.BytesDelivered) / 1024,
		Frames:       st.Network.FramesDelivered,
		Executor:     executor,
		ResultOK:     math.Abs(got-want) < 1e-6,
	}, nil
}

// ExecCtxAlias keeps the registration sites readable.
type ExecCtxAlias = core.ExecCtx
