package experiments

import (
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

// CapacityRow reports exact-match table density for one key width —
// §3.2: "With 64-bit ID fields, we could store ∼1.8M exact entries
// and with 128-bit IDs, we could fit ∼850K."
type CapacityRow struct {
	KeyBits    int
	EntryBytes int
	MemoryMiB  float64
	// ModelCapacity is the SRAM model's entry budget.
	ModelCapacity int
	// AchievedEntries is the count actually inserted before
	// ErrTableFull on a scaled-down table (validating that the model
	// is enforced, not just reported).
	AchievedEntries int
	// ScaledMemoryMiB is the memory used for the insert-to-full run.
	ScaledMemoryMiB float64
}

// Capacity reproduces the switch-table density comparison. The full
// 30 MiB budget is reported from the SRAM model; insert-to-full runs
// on a 1 MiB table so the check completes quickly while exercising the
// same arithmetic.
func Capacity() []CapacityRow {
	const scaled = 1 << 20
	gen := oid.NewSeededGenerator(7)
	rows := make([]CapacityRow, 0, 2)
	for _, keyBits := range []int{64, 128} {
		field := wire.FieldSeq
		if keyBits == 128 {
			field = wire.FieldObject
		}
		full, err := p4sim.NewTable("full", []p4sim.Key{{Field: field, Kind: p4sim.MatchExact}},
			p4sim.TableConfig{})
		if err != nil {
			panic(err)
		}
		small, err := p4sim.NewTable("small", []p4sim.Key{{Field: field, Kind: p4sim.MatchExact}},
			p4sim.TableConfig{MemoryBytes: scaled})
		if err != nil {
			panic(err)
		}
		achieved := 0
		for {
			var match []p4sim.KeyValue
			if keyBits == 128 {
				match = []p4sim.KeyValue{{Value: wire.ValueOfID(gen.New())}}
			} else {
				match = []p4sim.KeyValue{{Value: wire.ValueOf(uint64(achieved + 1))}}
			}
			if err := small.Insert(p4sim.Entry{
				Match:  match,
				Action: p4sim.Action{Type: p4sim.ActForward, Port: achieved % 16},
			}); err != nil {
				break
			}
			achieved++
		}
		rows = append(rows, CapacityRow{
			KeyBits:         keyBits,
			EntryBytes:      full.EntryCost(),
			MemoryMiB:       float64(p4sim.DefaultTableMemory) / (1 << 20),
			ModelCapacity:   full.Capacity(),
			AchievedEntries: achieved,
			ScaledMemoryMiB: float64(scaled) / (1 << 20),
		})
	}
	return rows
}
