package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestSimBitIdentity pins the exact same-seed Figure 2 output to six
// decimal places. The backend seam (Clock/Link interfaces, the MTU
// hook, the futures rewrite) must be invisible to the simulator: any
// refactor that shifts an event ordering, a random draw, or a
// fragment size shows up here as a changed digit. Update these
// goldens only for a deliberate, explained behavior change.
func TestSimBitIdentity(t *testing.T) {
	rows, err := Figure2(Fig2Config{
		Seed:             42,
		AccessesPerPoint: 200,
		Points:           []int{0, 30, 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%d %.6f %.6f %.6f %.6f %.6f\n",
			r.PctNew, r.ControllerMeanUS, r.ControllerP99US,
			r.E2EMeanUS, r.E2EP99US, r.BroadcastsPer100)
	}
	const golden = "0 46.993745 46.943000 46.993745 46.943000 0.000000\n" +
		"30 46.978700 46.943000 59.046820 93.000000 26.000000\n" +
		"60 46.962635 46.943000 74.112590 93.000000 58.500000\n"
	if b.String() != golden {
		t.Fatalf("same-seed fig2 output drifted from the pinned seed baseline:\ngot:\n%swant:\n%s",
			b.String(), golden)
	}
}
