package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/telemetry"
)

// FaultClass names one scripted fault scenario.
type FaultClass string

// Fault classes swept by FaultRecovery.
const (
	// FaultCrash fail-stops the home node; replicas must be promoted.
	FaultCrash FaultClass = "crash"
	// FaultFlap takes the home's link down for 2ms, then back.
	FaultFlap FaultClass = "flap"
	// FaultWipe clears every switch's match-action tables.
	FaultWipe FaultClass = "wipe"
	// FaultCtrlKill fail-stops the control plane's consensus leader
	// and revives it later — the HA scheme's canonical fault. Opt-in
	// (not in the default class sweep: it needs SchemeControllerHA,
	// and each access re-locates through the control plane so the
	// fault is actually on the access path).
	FaultCtrlKill FaultClass = "ctrlkill"
)

// FaultsConfig tunes the fault-recovery experiment.
type FaultsConfig struct {
	// Seed drives all randomness (bit-identical replays).
	Seed int64
	// Objects is the replicated working-set size (default 8).
	Objects int
	// Accesses is the closed-loop read count (default 240).
	Accesses int
	// Schemes limits the sweep (default all three).
	Schemes []core.Scheme
	// Classes limits the fault classes (default all three).
	Classes []FaultClass
}

func (c *FaultsConfig) fill() {
	if c.Objects == 0 {
		c.Objects = 8
	}
	if c.Accesses == 0 {
		c.Accesses = 240
	}
	if c.Schemes == nil {
		c.Schemes = []core.Scheme{core.SchemeE2E, core.SchemeController, core.SchemeHybrid}
	}
	if c.Classes == nil {
		c.Classes = []FaultClass{FaultCrash, FaultFlap, FaultWipe}
	}
}

// FaultsRow is one (scheme, fault class) measurement.
type FaultsRow struct {
	Scheme   string
	Fault    string
	Accesses int
	// Failures counts accesses that never succeeded (want 0: every
	// in-flight access eventually completes).
	Failures int
	// Latency is the per-access completion-time histogram (µs).
	Latency telemetry.Summary
	// Retransmits is the per-access retransmit-count histogram.
	Retransmits telemetry.Summary
	// RecoveryUS is virtual time from the fault firing to completion
	// of the first access issued at-or-after it.
	RecoveryUS float64
	// DegradedAccesses is how many accesses needed at least one
	// application-level retry.
	DegradedAccesses int
	// FramesPerAccess is fabric message amplification over the run.
	FramesPerAccess float64
	// Promotions/Lost summarize the injector's recovery actions.
	Promotions int
	Lost       int
}

// faultAt is when the scripted fault fires, relative to arming; the
// access loop starts at the same moment, so roughly the first fifth of
// the accesses land pre-fault (the baseline) and the rest ride through
// the fault and recovery.
const faultAt = 3 * netsim.Millisecond

// flapLen is the link outage length for FaultFlap — longer than a
// request timeout (so the fault is visible at the transport) but
// shorter than the workload, so retransmits plus one app retry always
// bridge it.
const flapLen = 2 * netsim.Millisecond

// ctrlHealLen is how long the killed consensus leader stays down in
// FaultCtrlKill — comfortably past an election, so the sweep measures
// a genuine failover (a follower promotes and serves) rather than the
// old leader's return.
const ctrlHealLen = 3 * netsim.Millisecond

// FaultRecovery is E8, the fault-injection experiment: §5 claims the
// data-centric model can "mask failures" — replicated objects keep
// their identity across a home's death, the network re-learns routes,
// and retransmit backoff bridges link outages. It scripts one fault
// per class (node crash, link flap, switch table wipe) against each
// discovery scheme while a closed-loop reader hammers replicated
// objects, and measures what the application saw: access-latency and
// per-access-retransmit histograms, the recovery time from fault
// injection to the first clean post-fault access, and message
// amplification (fabric frames per access). It returns one row per
// (scheme, fault class).
func FaultRecovery(cfg FaultsConfig) ([]FaultsRow, error) {
	cfg.fill()
	var rows []FaultsRow
	for _, scheme := range cfg.Schemes {
		for _, class := range cfg.Classes {
			row, err := faultRun(cfg, scheme, class)
			if err != nil {
				return nil, fmt.Errorf("%v/%v: %w", scheme, class, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// totalRetransmits sums transport retransmissions across all nodes.
func totalRetransmits(c *core.Cluster) uint64 {
	var n uint64
	for _, node := range c.Nodes {
		n += node.EP.Counters().Retransmits
	}
	return n
}

func faultRun(cfg FaultsConfig, scheme core.Scheme, class FaultClass) (FaultsRow, error) {
	c, err := core.NewCluster(core.Config{
		Seed:             cfg.Seed,
		Scheme:           scheme,
		DiscoveryTimeout: 300 * netsim.Microsecond,
	})
	if err != nil {
		return FaultsRow{}, err
	}
	if scheme == core.SchemeControllerHA {
		// Announcements need a consensus leader; elect before setup.
		if _, ok := c.AwaitControlLeader(100 * netsim.Millisecond); !ok {
			return FaultsRow{}, fmt.Errorf("no control-plane leader elected")
		}
	}
	home, replica, reader := c.Node(1), c.Node(2), c.Node(0)

	// Working set: objects homed at node 1, each with a surviving
	// replica at node 2 so crashes are maskable.
	objs := make([]oid.ID, cfg.Objects)
	var off uint64
	for i := range objs {
		o, err := home.CreateObject(4096)
		if err != nil {
			return FaultsRow{}, err
		}
		slot, _ := o.AllocString("fault-payload")
		if i == 0 {
			off = slot
		}
		objs[i] = o.ID()
		repOK := false
		c.ReplicateObject(o.ID(), replica, func(err error) { repOK = err == nil })
		c.Run()
		if !repOK {
			return FaultsRow{}, fmt.Errorf("replicating object %d failed", i)
		}
	}
	// Warm the reader's resolver so faults hit live cached state.
	for _, id := range objs {
		warm := false
		reader.ReadRef(object.Global{Obj: id, Off: off + 8}, 13, func(_ []byte, err error) {
			warm = err == nil
		})
		c.Run()
		if !warm {
			return FaultsRow{}, fmt.Errorf("warm read failed")
		}
	}
	c.ResetStats()

	inj := fault.NewInjector(c, fault.Config{})
	sched := fault.NewSchedule()
	switch class {
	case FaultCrash:
		sched.CrashNode(faultAt, 1)
	case FaultFlap:
		sched.FlapLink(faultAt, 1, flapLen)
	case FaultWipe:
		sched.WipeTables(faultAt, -1)
	case FaultCtrlKill:
		sched.CrashLeader(faultAt).RestartController(faultAt+ctrlHealLen, -1)
	default:
		return FaultsRow{}, fmt.Errorf("unknown fault class %q", class)
	}
	armedAt := c.Sim.Now()
	faultTime := armedAt.Add(faultAt)
	inj.Arm(sched)

	var (
		lat       = telemetry.NewHistogram()
		rtx       = telemetry.NewHistogram()
		failures  = 0
		degraded  = 0
		recovered = false
		recovery  float64
	)
	// Closed loop with pacing: a new read every interAccess, each
	// retried at the application until it succeeds (bounded). The
	// retry backoff doubles, so even the crash class — which must wait
	// out a request timeout plus the promotion delay — converges.
	const (
		interAccess = 75 * netsim.Microsecond
		maxAttempts = 10
		retryDelay  = 250 * netsim.Microsecond
	)
	err = runToCompletion(c, cfg.Accesses, func(i int, next func()) {
		obj := objs[i%len(objs)]
		start := c.Sim.Now()
		preRtx := totalRetransmits(c)
		var attempt func(k int)
		attempt = func(k int) {
			if class == FaultCtrlKill {
				// Put the control plane on the access path: a stale mark
				// forces each attempt to re-locate through the leader.
				reader.Resolver.Invalidate(obj)
			}
			reader.ReadRef(object.Global{Obj: obj, Off: off + 8}, 13, func(_ []byte, err error) {
				if err != nil {
					if k+1 < maxAttempts {
						c.Sim.Schedule(retryDelay<<k, func() { attempt(k + 1) })
						return
					}
					failures++
					c.Sim.Schedule(interAccess, next)
					return
				}
				if k > 0 {
					degraded++
				}
				end := c.Sim.Now()
				lat.Observe(us(end.Sub(start)))
				rtx.Observe(float64(totalRetransmits(c) - preRtx))
				if !recovered && start >= faultTime {
					recovered = true
					recovery = us(end.Sub(faultTime))
				}
				c.Sim.Schedule(interAccess, next)
			})
		}
		attempt(0)
	})
	if err != nil {
		return FaultsRow{}, err
	}

	stats := c.Stats()
	row := FaultsRow{
		Scheme:           scheme.String(),
		Fault:            string(class),
		Accesses:         cfg.Accesses,
		Failures:         failures,
		Latency:          lat.Summarize(),
		Retransmits:      rtx.Summarize(),
		RecoveryUS:       recovery,
		DegradedAccesses: degraded,
		FramesPerAccess:  float64(stats.Network.FramesSent) / float64(cfg.Accesses),
		Promotions:       inj.Promotions(),
		Lost:             len(inj.Lost()),
	}
	return row, nil
}
