package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crdt"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/prefetch"
	"repro/internal/transport"
)

// transportConfigShortTimeout keeps route-on-object timeouts small so
// table-saturation retries settle quickly.
func transportConfigShortTimeout() transport.Config {
	return transport.Config{RequestTimeout: 500 * netsim.Microsecond}
}

// hybridAlias lets the ablation inspect the hybrid resolver's state.
type hybridAlias = discovery.Hybrid

// --- A1: reachability prefetch during remote traversal (§3.1) ---

// PrefetchRow compares a remote data-structure traversal with and
// without FOT-driven prefetching.
type PrefetchRow struct {
	Prefetch       bool
	ChainLen       int
	TotalUS        float64
	RemoteAcquires uint64
	LocalHits      uint64
}

// PrefetchConfig parameterizes the traversal.
type PrefetchConfig struct {
	Seed int64
	// ChainLen is the linked-structure depth.
	ChainLen int
	// ObjectSize is per-node object size.
	ObjectSize int
	// ThinkTime is per-hop application processing (gives the
	// prefetcher a window to run ahead).
	ThinkTime netsim.Duration
}

func (c *PrefetchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 46
	}
	if c.ChainLen == 0 {
		c.ChainLen = 32
	}
	if c.ObjectSize == 0 {
		c.ObjectSize = 8192
	}
	if c.ThinkTime == 0 {
		// An 8 KiB object takes ~120µs of store-and-forward across
		// the four-hop fabric; think time above that lets the
		// prefetcher run fully ahead of the traversal.
		c.ThinkTime = 250 * netsim.Microsecond
	}
}

// AblationPrefetch traverses a chain of objects living on a remote
// node, following one cross-object reference per hop, with the
// prefetcher off and on.
func AblationPrefetch(cfg PrefetchConfig) ([]PrefetchRow, error) {
	cfg.fill()
	rows := make([]PrefetchRow, 0, 2)
	for _, enable := range []bool{false, true} {
		row, err := prefetchRun(cfg, enable)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// refSlot is where each chain object stores its next pointer.
func buildChain(owner *core.Node, n, size int) (head object.Global, slot uint64, err error) {
	objs := make([]*object.Object, n)
	for i := range objs {
		o, cerr := owner.CreateObject(size)
		if cerr != nil {
			return object.Global{}, 0, cerr
		}
		objs[i] = o
	}
	for i, o := range objs {
		s, aerr := o.Alloc(8, 8)
		if aerr != nil {
			return object.Global{}, 0, aerr
		}
		if i == 0 {
			slot = s
		}
		if i+1 < n {
			if rerr := o.StoreRef(s, objs[i+1].ID(), 0, object.FlagRead); rerr != nil {
				return object.Global{}, 0, rerr
			}
		} else {
			if rerr := o.PutPtr(s, 0); rerr != nil {
				return object.Global{}, 0, rerr
			}
		}
	}
	return object.Global{Obj: objs[0].ID()}, slot, nil
}

func prefetchRun(cfg PrefetchConfig, enable bool) (PrefetchRow, error) {
	c, err := core.NewCluster(core.Config{
		Seed:           cfg.Seed,
		Scheme:         core.SchemeE2E,
		EnablePrefetch: enable,
		Prefetch:       prefetch.Config{MaxDepth: 2, MaxObjects: 8, BudgetBytes: 1 << 20},
	})
	if err != nil {
		return PrefetchRow{}, err
	}
	driver, owner := c.Node(0), c.Node(1)
	head, slot, err := buildChain(owner, cfg.ChainLen, cfg.ObjectSize)
	if err != nil {
		return PrefetchRow{}, err
	}
	c.Run()
	c.ResetStats()
	driver.Coherence.ResetCounters()

	start := c.Sim.Now()
	visited := 0
	failed := error(nil)
	var walk func(g object.Global)
	walk = func(g object.Global) {
		driver.Deref(g, func(o *object.Object, err error) {
			if err != nil {
				failed = err
				return
			}
			visited++
			next, lerr := o.LoadRef(slot)
			if lerr != nil {
				failed = lerr
				return
			}
			if next.IsNil() {
				return
			}
			// Application think time before following the reference.
			c.Sim.Schedule(cfg.ThinkTime, func() { walk(next) })
		})
	}
	walk(head)
	c.Run()
	if failed != nil {
		return PrefetchRow{}, failed
	}
	if visited != cfg.ChainLen {
		return PrefetchRow{}, fmt.Errorf("visited %d of %d", visited, cfg.ChainLen)
	}
	cc := driver.Coherence.Counters()
	return PrefetchRow{
		Prefetch:       enable,
		ChainLen:       cfg.ChainLen,
		TotalUS:        us(c.Sim.Now().Sub(start)),
		RemoteAcquires: cc.RemoteAcquires,
		LocalHits:      cc.LocalHits,
	}, nil
}

// --- A2: reliable transport under loss (§3.2) ---

// LossRow reports one loss-rate point.
type LossRow struct {
	LossPct      float64
	CompletionUS float64
	Retransmits  uint64
	Delivered    bool
}

// AblationLoss transfers one object under increasing frame loss,
// exercising the lightweight ack/retry transport.
func AblationLoss(seed int64, objectSize int, lossPcts []float64) ([]LossRow, error) {
	if objectSize == 0 {
		objectSize = 256 << 10
	}
	if len(lossPcts) == 0 {
		lossPcts = []float64{0, 1, 5, 10, 20, 25}
	}
	rows := make([]LossRow, 0, len(lossPcts))
	for _, pct := range lossPcts {
		c, err := core.NewCluster(core.Config{
			Seed:             seed + int64(pct*10),
			Scheme:           core.SchemeE2E,
			DropRate:         pct / 100,
			DiscoveryRetries: 40,
			DiscoveryTimeout: 500 * netsim.Microsecond,
			Transport: transport.Config{
				RetryBudget:          100 * netsim.Millisecond,
				MaxRetransmitTimeout: 2 * netsim.Millisecond,
				RequestTimeout:       200 * netsim.Millisecond,
			},
		})
		if err != nil {
			return nil, err
		}
		owner, reader := c.Node(1), c.Node(0)
		o, err := owner.CreateObject(objectSize)
		if err != nil {
			return nil, err
		}
		c.Run()
		c.ResetStats()
		start := c.Sim.Now()
		end := start
		delivered := false
		reader.Deref(object.Global{Obj: o.ID()}, func(_ *object.Object, err error) {
			delivered = err == nil
			end = c.Sim.Now()
		})
		c.Run()
		var retrans uint64
		for _, n := range c.Nodes {
			retrans += n.EP.Counters().Retransmits
		}
		rows = append(rows, LossRow{
			LossPct:      pct,
			CompletionUS: us(end.Sub(start)),
			Retransmits:  retrans,
			Delivered:    delivered,
		})
	}
	return rows, nil
}

// --- A3: discovery under switch-table saturation (§3.2/§4) ---

// HybridRow reports one scheme's behaviour with saturated tables.
type HybridRow struct {
	Scheme        string
	Objects       int
	TableCapacity int
	Successes     int
	Failures      int
	MeanUS        float64
	Fallbacks     int
}

// AblationHybrid creates more objects than the switch object tables
// can hold and accesses each once. Pure controller routing fails for
// the overflow objects (their frames drop in the fabric); the hybrid
// scheme detects the failed installs and falls back to E2E discovery.
func AblationHybrid(seed int64, numObjects int) ([]HybridRow, error) {
	if numObjects == 0 {
		numObjects = 24
	}
	rows := make([]HybridRow, 0, 2)
	for _, scheme := range []core.Scheme{core.SchemeController, core.SchemeHybrid} {
		c, err := core.NewCluster(core.Config{
			Seed:   seed + int64(scheme),
			Scheme: scheme,
			// Budget for ~8 object entries per switch (128-bit keys,
			// 32 B/entry, fill 0.87 → 8 entries at 300 B).
			ObjectTableMemory: 300,
			Transport:         transportConfigShortTimeout(),
		})
		if err != nil {
			return nil, err
		}
		driver := c.Node(0)
		owner := c.Node(1)
		cap0 := c.Switches[0].ObjectTable().Capacity()

		objs := make([]oid.ID, numObjects)
		for i := range objs {
			o, err := owner.CreateObject(2048)
			if err != nil {
				return nil, err
			}
			objs[i] = o.ID()
		}
		c.Run() // announcements + installs

		succ, fail := 0, 0
		var total netsim.Duration
		err = runToCompletion(c, numObjects, func(i int, next func()) {
			start := c.Sim.Now()
			driver.ReadRef(object.Global{Obj: objs[i]}, 64, func(_ []byte, err error) {
				if err == nil {
					succ++
					total += c.Sim.Now().Sub(start)
				} else {
					fail++
				}
				next()
			})
		})
		if err != nil {
			return nil, err
		}
		mean := 0.0
		if succ > 0 {
			mean = us(total) / float64(succ)
		}
		fallbacks := 0
		if scheme == core.SchemeHybrid {
			if hy, ok := driver.Resolver.(*hybridAlias); ok {
				fallbacks = hy.FallbackCount()
			}
		}
		rows = append(rows, HybridRow{
			Scheme:        scheme.String(),
			Objects:       numObjects,
			TableCapacity: cap0,
			Successes:     succ,
			Failures:      fail,
			MeanUS:        mean,
			Fallbacks:     fallbacks,
		})
	}
	return rows, nil
}

// --- A4: CRDT auto-merge during movement (§5) ---

// CRDTRow compares naive overwrite against CRDT merge when two
// replicas of a counter object diverge.
type CRDTRow struct {
	Mode     string
	Expected uint64
	Final    uint64
	Lost     uint64
}

// AblationCRDT has two nodes increment replicas of one counter object
// concurrently, then reconciles: naive mode ships bytes (last writer
// wins, losing increments); merge mode merges CRDT states during the
// movement, converging with no loss.
func AblationCRDT(seed int64, incsPerNode int) ([]CRDTRow, error) {
	if incsPerNode == 0 {
		incsPerNode = 100
	}
	expected := uint64(2 * incsPerNode)
	rows := make([]CRDTRow, 0, 2)
	for _, mode := range []string{"naive-overwrite", "crdt-merge"} {
		a := crdt.NewGCounter()
		b := crdt.NewGCounter()
		for i := 0; i < incsPerNode; i++ {
			a.Inc(1, 1)
			b.Inc(2, 1)
		}
		var final uint64
		switch mode {
		case "naive-overwrite":
			// Replica B's bytes replace A's state wholesale (what a
			// byte-copy movement without merge semantics does).
			moved, err := crdt.UnmarshalGCounter(b.Marshal())
			if err != nil {
				return nil, err
			}
			final = moved.Value()
		case "crdt-merge":
			moved, err := crdt.UnmarshalGCounter(b.Marshal())
			if err != nil {
				return nil, err
			}
			a.Merge(moved)
			final = a.Value()
		}
		lost := uint64(0)
		if final < expected {
			lost = expected - final
		}
		rows = append(rows, CRDTRow{Mode: mode, Expected: expected, Final: final, Lost: lost})
	}
	return rows, nil
}
