// Package experiments regenerates every table and figure in the
// paper's evaluation (§4 Figures 2 and 3, the §3.2 switch-capacity
// numbers, the Figure 1 rendezvous strategies, and the §2/§3.1
// serialization claims), plus the ablations listed in DESIGN.md. Each
// experiment returns typed rows; cmd/gaspbench prints them and
// bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
)

// CPU cost model for the serialization-sensitive paths, applied as
// virtual-time delays so network and compute costs compose on one
// clock. Rates are derived from the measured Go benchmarks in
// internal/model (order-of-magnitude: deserialization with allocation
// and pointer fixup runs ~4× slower than flat byte copies; see
// EXPERIMENTS.md).
const (
	// SerializeBytesPerSec is the heap→wire marshal rate.
	SerializeBytesPerSec = 2_000_000_000
	// DeserializeBytesPerSec is the wire→heap rate (allocation +
	// pointer fixup dominate, §2's 70% claim).
	DeserializeBytesPerSec = 500_000_000
	// ByteCopyBytesPerSec is the object-space load rate (memcpy).
	ByteCopyBytesPerSec = 10_000_000_000
)

// cpuDelay converts a byte count and rate into virtual time.
func cpuDelay(bytes int, rate int64) netsim.Duration {
	if bytes <= 0 {
		return 0
	}
	return netsim.Duration(int64(bytes) * int64(netsim.Second) / rate)
}

// us converts virtual duration to microseconds.
func us(d netsim.Duration) float64 { return d.Microseconds() }

// runToCompletion drives a closed-loop workload: step(i, next) must
// call next() when access i completes; the loop finishes after n
// steps. It returns an error if the simulator stalls before the loop
// completes.
func runToCompletion(c *core.Cluster, n int, step func(i int, next func())) error {
	done := false
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			done = true
			return
		}
		step(i, func() { issue(i + 1) })
	}
	issue(0)
	c.Run()
	if !done {
		return fmt.Errorf("experiments: workload stalled before completing %d steps", n)
	}
	return nil
}
