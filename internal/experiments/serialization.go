package experiments

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/oid"
)

// SerializationRow compares the two load paths for one model size:
// the §2 claim ("as much as 70% of the processing time ... is spent
// deserializing and loading") against the §3.1 claim ("a byte-level
// copy, alleviating 100% of the loading overhead").
type SerializationRow struct {
	Buckets      int
	Dim          int
	SerializedKB float64
	ObjectKB     float64

	// DeserializeUS is the wall-clock heap rebuild (alloc + fixup).
	DeserializeUS float64
	// ByteCopyUS is the wall-clock in-place adoption of the received
	// bytes: header validation + view open. (The transfer itself is
	// common to both paths and excluded from both.)
	ByteCopyUS float64
	// InferUS is the per-request inference compute (identical work).
	InferUS float64

	// LoadFraction* = load / (load + inference): the share of request
	// time spent loading, per path.
	LoadFractionBaseline float64
	LoadFractionOurs     float64
	// Speedup is DeserializeUS / ByteCopyUS.
	Speedup float64
}

// SerializationConfig parameterizes the sweep.
type SerializationConfig struct {
	Seed          int64
	Sizes         []ModelShape
	ActivationLen int
	// Repeats averages wall-clock timings.
	Repeats int
}

// ModelShape is one sweep point.
type ModelShape struct {
	Buckets int
	Dim     int
}

func (c *SerializationConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 45
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []ModelShape{
			{500, 16}, {2000, 32}, {8000, 32}, {16000, 64},
		}
	}
	if c.ActivationLen == 0 {
		c.ActivationLen = 64
	}
	if c.Repeats == 0 {
		c.Repeats = 10
	}
}

// Serialization measures both load paths in wall-clock time. Unlike
// the latency figures (which run on virtual time), this experiment is
// about real CPU work, so it times real executions.
func Serialization(cfg SerializationConfig) ([]SerializationRow, error) {
	cfg.fill()
	gen := oid.NewSeededGenerator(cfg.Seed)
	rows := make([]SerializationRow, 0, len(cfg.Sizes))
	for _, shape := range cfg.Sizes {
		m := model.NewRandom(cfg.Seed, shape.Buckets, shape.Dim)
		raw := m.Marshal()
		obj, err := model.BuildObject(gen.New(), m)
		if err != nil {
			return nil, err
		}
		objBytes := obj.CloneBytes()
		act := m.Features()
		if len(act) > cfg.ActivationLen {
			act = act[:cfg.ActivationLen]
		}

		var wantScore float64
		deser := timeIt(cfg.Repeats, func() {
			mm, err := model.Unmarshal(raw)
			if err != nil {
				panic(err)
			}
			wantScore = mm.Infer(nil) // keep mm alive; zero work
		})
		_ = wantScore

		// Both paths pay the wire transfer (the raw bytes arriving);
		// what differs is the work after receipt. The baseline
		// rebuilds the heap; the object path adopts the received
		// buffer in place — header validation plus opening the view,
		// with no allocation walk or pointer fixup (§3.1: movement
		// "with merely a byte-level copy ... leaving only data
		// transfer costs, which are fundamental").
		bytecopy := timeIt(cfg.Repeats, func() {
			o, err := object.FromBytes(obj.ID(), objBytes)
			if err != nil {
				panic(err)
			}
			if _, err := model.LoadView(o); err != nil {
				panic(err)
			}
		})

		view, err := model.LoadView(obj)
		if err != nil {
			return nil, err
		}
		infer := timeIt(cfg.Repeats, func() {
			_ = view.Infer(act)
		})

		row := SerializationRow{
			Buckets:       shape.Buckets,
			Dim:           shape.Dim,
			SerializedKB:  float64(len(raw)) / 1024,
			ObjectKB:      float64(len(objBytes)) / 1024,
			DeserializeUS: deser,
			ByteCopyUS:    bytecopy,
			InferUS:       infer,
		}
		row.LoadFractionBaseline = deser / (deser + infer)
		row.LoadFractionOurs = bytecopy / (bytecopy + infer)
		if bytecopy > 0 {
			row.Speedup = deser / bytecopy
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timeIt returns the mean wall-clock microseconds of fn over repeats,
// with nanosecond resolution (in-place loads are sub-microsecond).
func timeIt(repeats int, fn func()) float64 {
	fn() // warm up
	start := time.Now()
	for i := 0; i < repeats; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / 1000 / float64(repeats)
}

// String renders a row compactly.
func (r SerializationRow) String() string {
	return fmt.Sprintf("%dx%d: deser=%.0fµs copy=%.0fµs infer=%.0fµs loadfrac=%.0f%%→%.0f%% speedup=%.0fx",
		r.Buckets, r.Dim, r.DeserializeUS, r.ByteCopyUS, r.InferUS,
		100*r.LoadFractionBaseline, 100*r.LoadFractionOurs, r.Speedup)
}
