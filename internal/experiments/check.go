package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/memproto"
)

// CheckConfig tunes E10, the protocol invariant-checker sweep: each
// scenario is explored under bounded delivery perturbation (targeted
// drop, duplicate, reorder) and every run is watched by the invariant
// checker. A clean sweep is the experiment's pass criterion.
type CheckConfig struct {
	// Seed drives every scenario build (violations replay from it).
	Seed int64
	// Scenarios limits the sweep by name (default: all built-ins).
	Scenarios []string
	// MaxRuns bounds scenario executions per exploration (default:
	// the explorer's own 200; Smoke lowers it).
	MaxRuns int
	// Smoke is the CI configuration: fig2 + faults + evict + raft +
	// inc-agg-dead-sharer + batch, reduced run budget. The build
	// fails if this sweep is not clean.
	Smoke bool
	// Buggy restores the legacy fragment-reassembly accounting
	// (duplicate-byte completion, silent version mixing) for the
	// sweep — the checker's self-test, and the source of the sample
	// violation report in EXPERIMENTS.md.
	Buggy bool
}

func (c *CheckConfig) fill() {
	if c.Smoke {
		if c.Scenarios == nil {
			c.Scenarios = []string{"fig2", "faults", "evict", "raft", "inc-agg-dead-sharer", "batch"}
		}
		if c.MaxRuns == 0 {
			c.MaxRuns = 60
		}
	}
	if c.Scenarios == nil {
		for _, sc := range check.Scenarios() {
			c.Scenarios = append(c.Scenarios, sc.Name)
		}
	}
}

// CheckRow is one scenario's exploration outcome.
type CheckRow struct {
	Scenario string
	// Runs is how many perturbed executions the search consumed.
	Runs int
	// Frames is how many logical frames the baseline indexed.
	Frames int
	// Clean is the verdict; when false Schedule and Report name the
	// minimal counterexample.
	Clean      bool
	Schedule   string
	Violations int
	// Report is the explorer's full report (replay command, violation
	// list, causal trace of the violating operation).
	Report *check.Report
}

// InvariantCheck runs E10: explore each configured scenario and
// report the verdicts. Violations are data, not errors — the caller
// decides whether a dirty row fails the build.
func InvariantCheck(cfg CheckConfig) ([]CheckRow, error) {
	cfg.fill()
	if cfg.Buggy {
		prev := memproto.SetLegacyAccounting(true)
		defer memproto.SetLegacyAccounting(prev)
	}
	rows := make([]CheckRow, 0, len(cfg.Scenarios))
	for _, name := range cfg.Scenarios {
		sc, ok := check.ScenarioByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown check scenario %q", name)
		}
		rep, err := check.Explore(sc, check.ExploreConfig{Seed: cfg.Seed, MaxRuns: cfg.MaxRuns})
		if err != nil {
			return nil, fmt.Errorf("experiments: exploring %s: %w", name, err)
		}
		rows = append(rows, CheckRow{
			Scenario:   sc.Name,
			Runs:       rep.Runs,
			Frames:     rep.Frames,
			Clean:      rep.Clean(),
			Schedule:   rep.Schedule.String(),
			Violations: len(rep.Violations),
			Report:     rep,
		})
	}
	return rows, nil
}

// CheckReplay re-executes one recorded counterexample: the scenario at
// the seed under the exact schedule a prior exploration printed.
func CheckReplay(scenario string, seed int64, schedule string) (*check.Report, error) {
	sc, ok := check.ScenarioByName(scenario)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown check scenario %q", scenario)
	}
	sched, err := check.ParseSchedule(schedule)
	if err != nil {
		return nil, err
	}
	return check.Replay(sc, seed, sched)
}
