package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestRaftBenchSmoke runs E13 at CI scale: the degenerate single
// controller plus a 3-replica group. The replicated row must survive
// every leader kill with zero acknowledged announces lost; the
// baseline row documents why replication exists (its crash wipes the
// map) and is not asserted on.
func TestRaftBenchSmoke(t *testing.T) {
	rep, err := RaftBench(RaftConfig{Seed: 42, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		t.Logf("replicas=%d election=%.1fµs commit=%.1f/%.1fµs reelect=%.1fµs avail=%.1f%% redirects=%d elections=%d committed=%d lost=%d",
			r.Replicas, r.ElectionUS, r.CommitMeanUS, r.CommitP99US,
			r.ReElectionMeanUS, r.AvailabilityPct, r.Redirects, r.Elections, r.Committed, r.Lost)
	}
	base, ha := rep.Rows[0], rep.Rows[1]
	if base.Replicas != 1 || ha.Replicas != 3 {
		t.Fatalf("unexpected replica counts %d/%d", base.Replicas, ha.Replicas)
	}
	if base.ElectionUS != 0 || base.Elections != 0 {
		t.Errorf("degenerate controller should not elect (election=%.1f, elections=%d)", base.ElectionUS, base.Elections)
	}
	if ha.ElectionUS <= 0 {
		t.Errorf("replicated control plane reported no election time")
	}
	if ha.Lost != 0 {
		t.Errorf("replicated row lost %d acknowledged announces", ha.Lost)
	}
	if ha.SweepFailed > 0 {
		t.Errorf("replicated sweep failed %d/%d ops", ha.SweepFailed, ha.SweepOps)
	}
	if ha.LeaderChanges < uint64(1+2) { // initial election + one per kill round
		t.Errorf("expected at least 3 leader changes, got %d", ha.LeaderChanges)
	}
}

// TestFaultRecoveryCtrlKill is the E8 acceptance case for the HA
// control plane: the consensus leader dies mid-workload while every
// access re-locates through the control plane; a follower promotes
// and no access may fail.
func TestFaultRecoveryCtrlKill(t *testing.T) {
	rows, err := FaultRecovery(FaultsConfig{
		Seed:     42,
		Accesses: 120,
		Schemes:  []core.Scheme{core.SchemeControllerHA},
		Classes:  []FaultClass{FaultCtrlKill},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("scheme=%s fault=%s failed=%d degraded=%d recovery=%.1fµs mean=%.1fµs",
		r.Scheme, r.Fault, r.Failures, r.DegradedAccesses, r.RecoveryUS, r.Latency.Mean)
	if r.Failures != 0 {
		t.Errorf("%d accesses failed across the leader kill", r.Failures)
	}
	if r.RecoveryUS <= 0 {
		t.Errorf("no recovery time recorded")
	}
}
