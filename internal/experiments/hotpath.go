package experiments

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/wire"
	"repro/internal/workload"
)

// E15 (hotpath): the zero-alloc batched hot path, measured. Two
// halves:
//
//  1. Allocation pins — testing.AllocsPerRun per layer, from a raw
//     frame encode up to a full remote coherence op over the sharded
//     scheme. The end-to-end read and write rows carry a hard budget
//     of ≤2 allocs/op (the response/data copy is the only mandatory
//     allocation; everything else comes from free lists).
//  2. Knee sweep — the E9 saturation sweep run twice at the SAME
//     simulated link speed with a nonzero per-wakeup host receive
//     cost, once with per-frame delivery and once with batched
//     (doorbell-coalesced) delivery. Batching amortizes the wakeup
//     cost across every frame that lands while a doorbell is pending,
//     so the saturation knee moves right.

// HotpathConfig tunes E15.
type HotpathConfig struct {
	// Seed drives the cluster layout and the sweep generators.
	Seed int64
	// Smoke shrinks the sweep for CI (shorter windows, fewer runs).
	Smoke bool
	// AllocRuns is the per-row AllocsPerRun sample count
	// (default 200; smoke 50).
	AllocRuns int
	// WallNanos reads a monotonic wall clock in nanoseconds for the
	// ns/op columns (injected so this package stays off the runtime
	// clock; nil reports 0).
	WallNanos func() int64
}

func (c *HotpathConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.AllocRuns == 0 {
		if c.Smoke {
			c.AllocRuns = 50
		} else {
			c.AllocRuns = 200
		}
	}
}

// HotpathAllocRow is one layer's allocation measurement. Budget < 0
// means the row is informational (no gate).
type HotpathAllocRow struct {
	Layer       string  `json:"layer"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// NsPerOp is wall-clock time per op (simulator throughput, not
	// virtual latency); 0 when no WallNanos reader was injected.
	NsPerOp float64 `json:"wall_ns_per_op"`
	Budget  float64 `json:"budget_allocs_per_op"`
	Pass    bool    `json:"pass"`
}

// HotpathReport is the E15 artifact (BENCH_hotpath.json). GeneratedAt
// is stamped by the caller after the run; the sweep halves are
// virtual-time deterministic, the alloc/ns columns are host-machine
// measurements.
type HotpathReport struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedAt   string `json:"generated_at,omitempty"`
	Seed          int64  `json:"seed"`
	Smoke         bool   `json:"smoke"`

	Allocs []HotpathAllocRow `json:"allocs"`

	// Knee sweep: identical ladder, link speed, and receive cost on
	// both sides; only the delivery mode differs.
	LinkBitsPerSec int64                `json:"link_bits_per_sec"`
	HostRxCostUS   float64              `json:"host_rx_cost_us"`
	Unbatched      workload.SchemeSweep `json:"unbatched"`
	Batched        workload.SchemeSweep `json:"batched"`
	// KneeMovedRight: the batched knee sits strictly right of the
	// unbatched knee on the shared rate ladder.
	KneeMovedRight bool `json:"knee_moved_right"`
}

// JSON renders the report with stable field order.
func (r *HotpathReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// hotHarness drives single remote coherence ops over a sharded
// cluster with every callback pre-bound, so the measured loop's only
// allocations are the stack under test.
type hotHarness struct {
	cl     *core.Cluster
	reader *core.Node
	obj    oid.ID
	off    uint64
	wdata  []byte

	done bool
	err  error
	got  []byte

	onRead  func([]byte, error)
	onWrite func(error)
	onAcq   func(*object.Object, error)
	onRel   func(error)
}

// hotObjSize keeps acquire transfers one-fragment small.
const hotObjSize = 1024

func newHotHarness(seed int64) (*hotHarness, error) {
	cl, err := core.NewCluster(core.Config{
		Seed:     seed,
		NumNodes: 3,
		Scheme:   core.SchemeSharded,
	})
	if err != nil {
		return nil, err
	}
	h := &hotHarness{
		cl:     cl,
		reader: cl.Node(0),
		off:    object.HeaderSize + object.FOTEntrySize*4,
		wdata:  make([]byte, 64),
	}
	for i := range h.wdata {
		h.wdata[i] = byte(i)
	}
	// One object sharded-homed on a non-reader node: every op in the
	// measured loop is a genuine remote round trip.
	for _, n := range cl.Nodes[1:] {
		if id, ok := cl.NewIDHomedAt(n.Station); ok {
			o, err := object.New(id, hotObjSize, 4)
			if err != nil {
				return nil, err
			}
			if err := n.AdoptObjectLite(o); err != nil {
				return nil, err
			}
			h.obj = id
			break
		}
	}
	if h.obj == (oid.ID{}) {
		return nil, fmt.Errorf("hotpath: no non-reader station owns a shard")
	}
	h.onRead = func(b []byte, err error) { h.got, h.err, h.done = b, err, true }
	h.onWrite = func(err error) { h.err, h.done = err, true }
	h.onAcq = func(_ *object.Object, err error) { h.err, h.done = err, true }
	h.onRel = func(err error) { h.err, h.done = err, true }
	cl.Run()
	return h, nil
}

// step runs the simulator until the pending op completes.
func (h *hotHarness) step(what string) {
	h.cl.Run()
	if !h.done {
		h.err = fmt.Errorf("hotpath: %s did not complete", what)
	}
	h.done = false
}

func (h *hotHarness) readOnce() {
	h.reader.Coherence.ReadAtCB(h.obj, h.off, 64, h.onRead)
	h.step("read")
}

func (h *hotHarness) writeOnce() {
	h.reader.Coherence.WriteAtCB(h.obj, h.off, h.wdata, h.onWrite)
	h.step("write")
}

func (h *hotHarness) acqRelOnce() {
	h.reader.Coherence.AcquireSharedCB(h.obj, h.onAcq)
	h.step("acquire")
	h.reader.Coherence.ReleaseCB(h.obj, h.onRel)
	h.step("release")
}

// measureRow samples one layer: allocs via AllocsPerRun (which pins
// the goroutine and averages over runs) and wall ns/op over the same
// number of iterations.
func measureRow(layer string, runs int, budget float64,
	wall func() int64, fn func()) HotpathAllocRow {
	for i := 0; i < 32; i++ {
		fn() // warm free lists, map buckets, event-heap capacity
	}
	row := HotpathAllocRow{
		Layer:       layer,
		AllocsPerOp: testing.AllocsPerRun(runs, fn),
		Budget:      budget,
	}
	if wall != nil {
		start := wall()
		for i := 0; i < runs; i++ {
			fn()
		}
		row.NsPerOp = float64(wall()-start) / float64(runs)
	}
	row.Pass = budget < 0 || row.AllocsPerOp <= budget
	return row
}

// hotpathAllocs builds the per-layer allocation table.
func hotpathAllocs(cfg HotpathConfig) ([]HotpathAllocRow, error) {
	var rows []HotpathAllocRow

	// Layer 1: frame encode into a pooled buffer and back to the pool.
	hdr := wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2}
	payload := make([]byte, 64)
	rows = append(rows, measureRow("dataplane: encode+release", cfg.AllocRuns, 0,
		cfg.WallNanos, func() {
			buf, err := dataplane.EncodeFrame(&hdr, payload)
			if err != nil {
				panic(err)
			}
			buf.Release()
		}))

	// Layer 2: mux dispatch of a decoded frame, tracing unsampled.
	mux := dataplane.NewMux()
	sink := 0
	mux.Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { sink++; return true })
	fr, err := wire.Encode(&hdr, payload)
	if err != nil {
		return nil, err
	}
	var rxh wire.Header
	rows = append(rows, measureRow("dataplane: decode+dispatch", cfg.AllocRuns, 0,
		cfg.WallNanos, func() {
			if err := rxh.DecodeFrom(fr); err != nil {
				panic(err)
			}
			mux.Dispatch(&rxh, wire.Payload(fr))
		}))

	// Layers 3-5: full remote coherence ops over the sharded scheme —
	// transport, discovery, memproto, and the simulator all on the
	// path. Read and write are the gated rows: ≤2 allocs/op
	// (the data copy handed to the caller, plus amortized map-bucket
	// noise). Acquire+release moves whole objects and is reported
	// without a gate.
	h, err := newHotHarness(cfg.Seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		measureRow("coherence: remote read (sharded)", cfg.AllocRuns, 2,
			cfg.WallNanos, h.readOnce),
		measureRow("coherence: remote write (sharded)", cfg.AllocRuns, 2,
			cfg.WallNanos, h.writeOnce),
		measureRow("coherence: acquire+release (sharded)", cfg.AllocRuns, -1,
			cfg.WallNanos, h.acqRelOnce),
	)
	if h.err != nil {
		return nil, h.err
	}
	return rows, nil
}

// Sweep geometry: a fast link (so serialization is not the binding
// constraint) with a deliberately expensive per-wakeup receive cost.
// Unbatched, the driver's receive context caps out at
// 1/hotpathRxCost wakeups per second; batched, arrivals landing
// behind a pending doorbell ride along free and the cap disappears.
const (
	hotpathLinkBPS = 1_000_000_000
	hotpathRxCost  = 20 * netsim.Microsecond
)

// hotpathSweep runs the E9-style ladder in one delivery mode.
func hotpathSweep(cfg HotpathConfig, batched bool) (workload.SchemeSweep, error) {
	sw := workload.SweepConfig{
		Seed:           cfg.Seed,
		Schemes:        []core.Scheme{core.SchemeE2E},
		Arrival:        workload.ArrivalConfig{Kind: workload.ArrivalPoisson},
		Mix:            workload.Mix{ColdFrac: 0.02},
		Keys:           workload.KeyConfig{Dist: workload.KeyZipf, Population: 48},
		NumNodes:       3,
		MaxOutstanding: 512,
		LinkBitsPerSec: hotpathLinkBPS,
		HostRxCost:     hotpathRxCost,
		BatchDelivery:  batched,
		Target:         workload.ClusterConfig{WarmPool: 24, ColdPool: 128},
	}
	if cfg.Smoke {
		sw.Rates = []float64{8_000, 16_000, 32_000, 64_000}
		sw.Warmup = 5 * netsim.Millisecond
		sw.Measure = 15 * netsim.Millisecond
	} else {
		sw.Rates = []float64{8_000, 16_000, 32_000, 64_000, 96_000, 128_000}
		sw.Warmup = 5 * netsim.Millisecond
		sw.Measure = 30 * netsim.Millisecond
		sw.Target.ColdPool = 256
	}
	rep, err := workload.Sweep(sw)
	if err != nil {
		return workload.SchemeSweep{}, err
	}
	return rep.Schemes[0], nil
}

// Hotpath runs E15: the allocation table, then the batched-vs-
// unbatched knee sweep at identical link speed.
func Hotpath(cfg HotpathConfig) (*HotpathReport, error) {
	cfg.fill()
	rep := &HotpathReport{
		SchemaVersion:  1,
		Seed:           cfg.Seed,
		Smoke:          cfg.Smoke,
		LinkBitsPerSec: hotpathLinkBPS,
		HostRxCostUS:   hotpathRxCost.Microseconds(),
	}
	var err error
	if rep.Allocs, err = hotpathAllocs(cfg); err != nil {
		return nil, err
	}
	if rep.Unbatched, err = hotpathSweep(cfg, false); err != nil {
		return nil, err
	}
	if rep.Batched, err = hotpathSweep(cfg, true); err != nil {
		return nil, err
	}
	rep.KneeMovedRight = rep.Batched.Knee.Index > rep.Unbatched.Knee.Index
	return rep, nil
}
