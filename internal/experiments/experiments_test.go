package experiments

import (
	"testing"
)

// These tests validate the *shapes* the paper reports, on scaled-down
// workloads. The full-scale sweeps run from cmd/gaspbench and the
// root-level benchmarks.

func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2(Fig2Config{
		AccessesPerPoint: 300,
		OldPoolSize:      32,
		Points:           []int{0, 50, 90},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	r0, r50, r90 := rows[0], rows[1], rows[2]

	// Controller: uniform 1 RTT across the sweep ("switch processing
	// overhead is minimal, even as new objects proliferate").
	spread := r90.ControllerMeanUS - r0.ControllerMeanUS
	if spread < 0 {
		spread = -spread
	}
	if spread > 0.25*r0.ControllerMeanUS {
		t.Errorf("controller not flat: %v vs %v", r0.ControllerMeanUS, r90.ControllerMeanUS)
	}

	// E2E: rises toward 2 RTT as new objects proliferate.
	if !(r90.E2EMeanUS > r50.E2EMeanUS && r50.E2EMeanUS > r0.E2EMeanUS) {
		t.Errorf("E2E not rising: %v, %v, %v", r0.E2EMeanUS, r50.E2EMeanUS, r90.E2EMeanUS)
	}
	if r90.E2EMeanUS < 1.5*r0.E2EMeanUS {
		t.Errorf("E2E at 90%% new should approach 2x baseline: %v vs %v",
			r90.E2EMeanUS, r0.E2EMeanUS)
	}

	// At 0% new, both schemes sit at ~1 RTT.
	ratio := r0.E2EMeanUS / r0.ControllerMeanUS
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("baseline RTTs differ: e2e=%v ctrl=%v", r0.E2EMeanUS, r0.ControllerMeanUS)
	}

	// Broadcast load tracks novelty (right axis).
	if r0.BroadcastsPer100 != 0 {
		t.Errorf("broadcasts at 0%% new: %v", r0.BroadcastsPer100)
	}
	if r90.BroadcastsPer100 < 60 || r90.BroadcastsPer100 > 120 {
		t.Errorf("broadcasts at 90%% new: %v, want ~90", r90.BroadcastsPer100)
	}
	if r50.BroadcastsPer100 <= r0.BroadcastsPer100 ||
		r90.BroadcastsPer100 <= r50.BroadcastsPer100 {
		t.Error("broadcast count not rising with novelty")
	}
}

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(Fig3Config{
		AccessesPerPoint: 300,
		PoolSize:         32,
		Points:           []int{0, 50, 90},
	})
	if err != nil {
		t.Fatal(err)
	}
	r0, r50, r90 := rows[0], rows[1], rows[2]

	// Access time rises with staleness.
	if !(r90.MeanUS > r50.MeanUS && r50.MeanUS > r0.MeanUS) {
		t.Errorf("mean not rising: %v, %v, %v", r0.MeanUS, r50.MeanUS, r90.MeanUS)
	}
	// Variability peaks mid-sweep and drops once staleness saturates
	// ("the variability drops again since nearly all accesses require
	// 2 round trips").
	if !(r50.StddevUS > r0.StddevUS) {
		t.Errorf("stddev should rise from 0%%: %v vs %v", r0.StddevUS, r50.StddevUS)
	}
	if !(r50.StddevUS > r90.StddevUS) {
		t.Errorf("stddev should drop at saturation: mid=%v end=%v", r50.StddevUS, r90.StddevUS)
	}
	// Stale retries track the moved fraction.
	if r0.StaleRetriesPerAccess != 0 {
		t.Errorf("stale retries at 0%%: %v", r0.StaleRetriesPerAccess)
	}
	if r90.StaleRetriesPerAccess < 0.6 {
		t.Errorf("stale retries at 90%%: %v", r90.StaleRetriesPerAccess)
	}
}

func TestCapacityNumbers(t *testing.T) {
	rows := Capacity()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r64, r128 := rows[0], rows[1]
	if r64.KeyBits != 64 || r128.KeyBits != 128 {
		t.Fatal("row order")
	}
	if r64.ModelCapacity < 1_700_000 || r64.ModelCapacity > 1_900_000 {
		t.Errorf("64-bit capacity = %d, paper ~1.8M", r64.ModelCapacity)
	}
	if r128.ModelCapacity < 800_000 || r128.ModelCapacity > 900_000 {
		t.Errorf("128-bit capacity = %d, paper ~850K", r128.ModelCapacity)
	}
	// The enforced (insert-to-full) count matches the model on the
	// scaled table.
	for _, r := range rows {
		scaledWant := r.ModelCapacity / (1 << 20 / 1) // proportional check below instead
		_ = scaledWant
		if r.AchievedEntries == 0 {
			t.Errorf("%d-bit: no entries inserted", r.KeyBits)
		}
	}
	if r64.AchievedEntries <= r128.AchievedEntries {
		t.Error("64-bit keys should pack more entries than 128-bit")
	}
	ratio := float64(r64.AchievedEntries) / float64(r128.AchievedEntries)
	if ratio < 1.8 || ratio > 2.4 {
		t.Errorf("density ratio = %.2f, paper ~2.1", ratio)
	}
}

func TestRendezvousShape(t *testing.T) {
	rows, err := Rendezvous(RendezvousConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]RendezvousRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
		if !r.ResultOK {
			t.Errorf("%s: wrong inference result", r.Strategy)
		}
	}
	man, opt, auto, dave := byName["manual-copy"], byName["manual-copy-optimized"],
		byName["automatic-copy"], byName["dave-local"]

	// Completion ordering: (1) > (2) > (3) > Dave-local.
	if !(man.CompletionUS > opt.CompletionUS) {
		t.Errorf("manual (%v) should be slower than optimized (%v)",
			man.CompletionUS, opt.CompletionUS)
	}
	if !(opt.CompletionUS > auto.CompletionUS) {
		t.Errorf("optimized (%v) should be slower than automatic (%v)",
			opt.CompletionUS, auto.CompletionUS)
	}
	if !(auto.CompletionUS > dave.CompletionUS) {
		t.Errorf("automatic (%v) should be slower than Dave-local (%v)",
			auto.CompletionUS, dave.CompletionUS)
	}
	// Bytes: strategy 1 moves the model twice.
	if man.KBMoved < 1.6*opt.KBMoved {
		t.Errorf("manual moved %vKB, optimized %vKB — want ~2x", man.KBMoved, opt.KBMoved)
	}
	// The system placed the computation at idle Carol (station 3).
	if auto.Executor != 3 {
		t.Errorf("automatic executor = %v, want Carol", auto.Executor)
	}
	// Dave ran locally (station 4) with (almost) nothing moved.
	if dave.Executor != 4 {
		t.Errorf("dave executor = %v", dave.Executor)
	}
	if dave.KBMoved > opt.KBMoved/4 {
		t.Errorf("dave moved %vKB — should be near zero", dave.KBMoved)
	}
}

func TestSerializationClaims(t *testing.T) {
	rows, err := Serialization(SerializationConfig{
		Sizes:   []ModelShape{{2000, 32}},
		Repeats: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Speedup < 2 {
		t.Errorf("byte-copy speedup = %.1fx, want >2x", r.Speedup)
	}
	if r.LoadFractionBaseline <= r.LoadFractionOurs {
		t.Errorf("load fractions: baseline %.2f vs ours %.2f",
			r.LoadFractionBaseline, r.LoadFractionOurs)
	}
	if r.LoadFractionBaseline < 0.3 {
		t.Errorf("baseline load fraction %.2f — deserialization should dominate",
			r.LoadFractionBaseline)
	}
}

func TestAblationPrefetchHelps(t *testing.T) {
	rows, err := AblationPrefetch(PrefetchConfig{ChainLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	off, on := rows[0], rows[1]
	if off.Prefetch || !on.Prefetch {
		t.Fatal("row order")
	}
	if on.TotalUS >= off.TotalUS {
		t.Errorf("prefetch did not help: on=%v off=%v", on.TotalUS, off.TotalUS)
	}
	if on.LocalHits <= off.LocalHits {
		t.Errorf("prefetch local hits: on=%d off=%d", on.LocalHits, off.LocalHits)
	}
}

func TestAblationLossShape(t *testing.T) {
	rows, err := AblationLoss(3, 128<<10, []float64{0, 10, 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Delivered {
			t.Errorf("loss %.0f%%: transfer failed", r.LossPct)
		}
	}
	if rows[0].Retransmits != 0 {
		t.Errorf("retransmits on clean link: %d", rows[0].Retransmits)
	}
	if rows[2].Retransmits <= rows[1].Retransmits {
		t.Errorf("retransmits not rising: %d, %d", rows[1].Retransmits, rows[2].Retransmits)
	}
	if rows[2].CompletionUS <= rows[0].CompletionUS {
		t.Errorf("completion not rising with loss: %v vs %v",
			rows[0].CompletionUS, rows[2].CompletionUS)
	}
}

func TestAblationHybridGracefulDegradation(t *testing.T) {
	rows, err := AblationHybrid(5, 24)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, hy := rows[0], rows[1]
	if ctrl.TableCapacity >= ctrl.Objects {
		t.Fatalf("table not saturated: cap %d >= %d objects", ctrl.TableCapacity, ctrl.Objects)
	}
	if ctrl.Failures == 0 {
		t.Error("pure controller should fail overflow objects")
	}
	if hy.Failures != 0 {
		t.Errorf("hybrid failed %d accesses", hy.Failures)
	}
	if hy.Successes != hy.Objects {
		t.Errorf("hybrid successes = %d", hy.Successes)
	}
}

func TestAblationNetSeqOffload(t *testing.T) {
	rows, err := AblationNetSeq(5, 30)
	if err != nil {
		t.Fatal(err)
	}
	host, sw := rows[0], rows[1]
	if !host.UniqueDense || !sw.UniqueDense {
		t.Fatalf("tickets not unique+dense: host=%v switch=%v", host.UniqueDense, sw.UniqueDense)
	}
	if host.Ops != 60 || sw.Ops != 60 {
		t.Fatalf("ops: host=%d switch=%d", host.Ops, sw.Ops)
	}
	// The in-switch service halves the path (2 hops vs 4 each way).
	if sw.MeanUS >= 0.7*host.MeanUS {
		t.Errorf("in-switch %vµs not clearly faster than host %vµs", sw.MeanUS, host.MeanUS)
	}
}

func TestAblationOverlayScales(t *testing.T) {
	rows, err := AblationOverlay(5, 24)
	if err != nil {
		t.Fatal(err)
	}
	exact, overlay := rows[0], rows[1]
	if exact.Failures == 0 {
		t.Error("exact rules should fail beyond table capacity")
	}
	if overlay.Failures != 0 || overlay.Successes != overlay.Objects {
		t.Errorf("overlay failed accesses: %+v", overlay)
	}
	if overlay.RulesPerSw >= exact.RulesPerSw {
		t.Errorf("overlay rules/sw %v should be below exact %v",
			overlay.RulesPerSw, exact.RulesPerSw)
	}
	if overlay.InstallFailed != 0 {
		t.Errorf("overlay install failures: %d", overlay.InstallFailed)
	}
	// Same fast path: prefix routing costs no extra RTT.
	if overlay.MeanUS > 1.2*exact.MeanUS {
		t.Errorf("overlay mean %v vs exact %v", overlay.MeanUS, exact.MeanUS)
	}
}

func TestScaleTradeoffShape(t *testing.T) {
	rows, err := ScaleTradeoff(ScaleConfig{
		NodeCounts: []int{3, 27},
		Accesses:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	e2eSmall, ctrlSmall, e2eBig, ctrlBig := rows[0], rows[1], rows[2], rows[3]
	// E2E installs no object rules; controller state grows with the
	// switch count (objects × switches).
	if e2eSmall.ObjectRules != 0 || e2eBig.ObjectRules != 0 {
		t.Error("E2E should install no object rules")
	}
	if ctrlBig.ObjectRules <= ctrlSmall.ObjectRules {
		t.Errorf("controller rules should grow with fabric: %d vs %d",
			ctrlSmall.ObjectRules, ctrlBig.ObjectRules)
	}
	// E2E broadcast traffic grows with the host count; controller
	// traffic stays flat.
	if e2eBig.FabricFramesPerAccess <= 1.5*e2eSmall.FabricFramesPerAccess {
		t.Errorf("E2E frames/access should grow with N: %.1f vs %.1f",
			e2eSmall.FabricFramesPerAccess, e2eBig.FabricFramesPerAccess)
	}
	if ctrlBig.FabricFramesPerAccess > 1.5*ctrlSmall.FabricFramesPerAccess {
		t.Errorf("controller frames/access should stay flat: %.1f vs %.1f",
			ctrlSmall.FabricFramesPerAccess, ctrlBig.FabricFramesPerAccess)
	}
	// Cold-object latency: E2E ~2 RTT vs controller ~1 RTT.
	if e2eSmall.MeanUS < 1.5*ctrlSmall.MeanUS {
		t.Errorf("cold E2E should be ~2x controller: %.1f vs %.1f",
			e2eSmall.MeanUS, ctrlSmall.MeanUS)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Rerunning any virtual-time experiment with the same seed must
	// reproduce identical rows — EXPERIMENTS.md's reproducibility
	// claim.
	cfg := Fig2Config{AccessesPerPoint: 100, OldPoolSize: 16, Points: []int{0, 50}}
	a, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Figure2 row %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	r1, err := Rendezvous(RendezvousConfig{Buckets: 500, Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Rendezvous(RendezvousConfig{Buckets: 500, Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("Rendezvous row %d diverged", i)
		}
	}
}

func TestAblationCRDTConvergence(t *testing.T) {
	rows, err := AblationCRDT(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	naive, merge := rows[0], rows[1]
	if naive.Lost == 0 {
		t.Error("naive overwrite should lose increments")
	}
	if merge.Lost != 0 {
		t.Errorf("CRDT merge lost %d increments", merge.Lost)
	}
	if merge.Final != merge.Expected {
		t.Errorf("merge final = %d, want %d", merge.Final, merge.Expected)
	}
}

func TestFaultRecoveryMasksEveryFaultClass(t *testing.T) {
	rows, err := FaultRecovery(FaultsConfig{Seed: 5, Accesses: 90})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 3 schemes x 3 classes", len(rows))
	}
	for _, r := range rows {
		if r.Failures != 0 {
			t.Errorf("%s/%s: %d accesses never completed", r.Scheme, r.Fault, r.Failures)
		}
		if r.RecoveryUS <= 0 {
			t.Errorf("%s/%s: no post-fault access succeeded", r.Scheme, r.Fault)
		}
		if r.Fault == string(FaultCrash) {
			if r.Promotions == 0 {
				t.Errorf("%s/crash: no replica promotions", r.Scheme)
			}
			if r.Lost != 0 {
				t.Errorf("%s/crash: %d objects lost despite replication", r.Scheme, r.Lost)
			}
		}
	}
	// A crash must cost more to recover from than the no-op baseline
	// access time, and the run must replay bit-identically.
	again, err := FaultRecovery(FaultsConfig{Seed: 5, Accesses: 90})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d not deterministic:\n%+v\n%+v", i, rows[i], again[i])
		}
	}
}

func TestLoadSweepShape(t *testing.T) {
	rep, err := LoadSweep(LoadConfig{Seed: 42, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schemes) != 2 {
		t.Fatalf("schemes = %d, want e2e and controller", len(rep.Schemes))
	}
	for _, ss := range rep.Schemes {
		if len(ss.Points) != len(rep.Rates) {
			t.Fatalf("%s: %d points, want %d", ss.Scheme, len(ss.Points), len(rep.Rates))
		}
		// The smoke ladder is tuned so the knee lands mid-ladder: at
		// least one clean point below it and a collapsed one above.
		if ss.Knee.Index < 0 || ss.Knee.Index >= len(ss.Points)-1 {
			t.Errorf("%s: knee index %d (%s), want mid-ladder",
				ss.Scheme, ss.Knee.Index, ss.Knee.Reason)
		}
		for j, p := range ss.Points[:ss.Knee.Index+1] {
			if p.Failed > 0 {
				t.Errorf("%s point %d: %d failures below the knee", ss.Scheme, j, p.Failed)
			}
		}
		last := ss.Points[len(ss.Points)-1]
		if last.Failed <= last.Completed {
			t.Errorf("%s: top rate not collapsed (completed %d, failed %d)",
				ss.Scheme, last.Completed, last.Failed)
		}
		if last.P99US < 5*ss.Points[0].P99US {
			t.Errorf("%s: top-rate p99 %.0fus did not blow up vs base %.0fus",
				ss.Scheme, last.P99US, ss.Points[0].P99US)
		}
	}
}

func TestInvariantCheckSmoke(t *testing.T) {
	// The CI configuration must be clean, and the buggy self-test must
	// not be: E10's pass criterion in both directions.
	rows, err := InvariantCheck(CheckConfig{Seed: 7, Smoke: true, MaxRuns: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("smoke sweep covers fig2+faults+evict+raft+inc-agg-dead-sharer+batch, got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Clean {
			t.Fatalf("smoke scenario %s violated invariants under %s:\n%s",
				r.Scenario, r.Schedule, r.Report)
		}
	}
	buggy, err := InvariantCheck(CheckConfig{
		Seed: 7, Scenarios: []string{"fig2"}, MaxRuns: 60, Buggy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if buggy[0].Clean {
		t.Fatal("buggy self-test found no violation")
	}
	rep, err := CheckReplay(buggy[0].Scenario, 7, buggy[0].Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fixed protocol still violates under replayed %s", buggy[0].Schedule)
	}
}
