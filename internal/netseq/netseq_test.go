package netseq

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

var gen = oid.NewSeededGenerator(71)

// rig: core switch hosting the service, three leaves, one host each.
type rig struct {
	sim     *netsim.Sim
	svc     *Service
	clients []*Client
	core    *p4sim.Switch
}

func newRig(t *testing.T, numRegs int) *rig {
	t.Helper()
	sim := netsim.NewSim(71)
	net := netsim.NewNetwork(sim)
	link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond, BitsPerSec: 10_000_000_000}

	coreSw, err := p4sim.NewSwitch(net, "core", 3, p4sim.SwitchConfig{Station: 900})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{sim: sim, core: coreSw}
	toward := map[*p4sim.Switch]int{}
	serviceID := gen.New()
	for i := 0; i < 3; i++ {
		leaf, err := p4sim.NewSwitch(net, "leaf"+string(rune('0'+i)), 2,
			p4sim.SwitchConfig{LearnStations: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(coreSw, i, leaf, 0, link); err != nil {
			t.Fatal(err)
		}
		toward[leaf] = 0 // uplink toward the core
		h, err := netsim.NewHost(net, "h"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(h, 0, leaf, 1, link); err != nil {
			t.Fatal(err)
		}
		ep := transport.NewEndpoint(h, wire.StationID(i+1), transport.Config{})
		r.clients = append(r.clients, NewClient(ep, serviceID))
	}
	svc, err := Install(serviceID, coreSw, numRegs, toward)
	if err != nil {
		t.Fatal(err)
	}
	r.svc = svc
	return r
}

func TestFetchAddSequencer(t *testing.T) {
	r := newRig(t, 4)
	var got []uint64
	for i := 0; i < 5; i++ {
		r.clients[0].FetchAdd(0, 1, func(old uint64, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, old)
		})
		r.sim.Run()
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("tickets = %v", got)
		}
	}
	if r.core.Counters().RegisterOps != 5 {
		t.Fatalf("RegisterOps = %d", r.core.Counters().RegisterOps)
	}
}

func TestTicketsUniqueAcrossClients(t *testing.T) {
	r := newRig(t, 1)
	seen := map[uint64]int{}
	total := 0
	for round := 0; round < 10; round++ {
		for c := range r.clients {
			r.clients[c].FetchAdd(0, 1, func(old uint64, err error) {
				if err != nil {
					t.Fatal(err)
				}
				seen[old]++
				total++
			})
		}
	}
	r.sim.Run()
	if total != 30 {
		t.Fatalf("completed %d/30", total)
	}
	for ticket, count := range seen {
		if count != 1 {
			t.Fatalf("ticket %d issued %d times", ticket, count)
		}
		if ticket >= 30 {
			t.Fatalf("ticket %d out of range", ticket)
		}
	}
}

func TestCompareSwapLock(t *testing.T) {
	r := newRig(t, 2)
	// Client 0 takes the lock; client 1's attempt fails; after
	// release client 1 succeeds.
	step := 0
	r.clients[0].CompareSwap(1, 0, 100, func(ok bool, cur uint64, err error) {
		if err != nil || !ok {
			t.Fatalf("acquire: ok=%v cur=%d err=%v", ok, cur, err)
		}
		step = 1
		r.clients[1].CompareSwap(1, 0, 200, func(ok bool, cur uint64, err error) {
			if err != nil {
				t.Fatal(err)
			}
			if ok || cur != 100 {
				t.Fatalf("contended acquire should fail: ok=%v cur=%d", ok, cur)
			}
			step = 2
			// Release.
			r.clients[0].CompareSwap(1, 100, 0, func(ok bool, _ uint64, err error) {
				if err != nil || !ok {
					t.Fatalf("release: ok=%v err=%v", ok, err)
				}
				step = 3
				r.clients[1].CompareSwap(1, 0, 200, func(ok bool, _ uint64, err error) {
					if err != nil || !ok {
						t.Fatalf("reacquire: ok=%v err=%v", ok, err)
					}
					step = 4
				})
			})
		})
	})
	r.sim.Run()
	if step != 4 {
		t.Fatalf("lock protocol stopped at step %d", step)
	}
	regs := r.svc.Host.Registers()
	if regs[1] != 200 {
		t.Fatalf("final register = %d", regs[1])
	}
}

func TestReadAndErrors(t *testing.T) {
	r := newRig(t, 1)
	r.clients[0].FetchAdd(0, 7, func(uint64, error) {})
	r.sim.Run()
	r.clients[0].Read(0, func(v uint64, err error) {
		if err != nil || v != 7 {
			t.Fatalf("Read = %d, %v", v, err)
		}
	})
	r.sim.Run()
	// Out-of-range index.
	var gotErr error
	r.clients[0].FetchAdd(99, 1, func(_ uint64, err error) { gotErr = err })
	r.sim.Run()
	if gotErr == nil {
		t.Fatal("bad index accepted")
	}
}

func TestSwitchHopLatencyAdvantage(t *testing.T) {
	// The in-switch service answers from the core: 2 hops each way
	// instead of the 4 a host-based service needs.
	r := newRig(t, 1)
	start := r.sim.Now()
	var end netsim.Time
	r.clients[0].FetchAdd(0, 1, func(uint64, error) { end = r.sim.Now() })
	r.sim.Run()
	rtt := end.Sub(start)
	// host→leaf→core and back: 4 link crossings ≈ 4×(5µs+~1µs) plus
	// pipeline delays; a host-based service would need 8.
	if rtt > 30*netsim.Microsecond {
		t.Fatalf("in-switch RTT = %v, expected ~25µs (2 hops each way)", rtt)
	}
}

func TestCompareSwapBadIndex(t *testing.T) {
	r := newRig(t, 1)
	var gotErr error
	r.clients[0].CompareSwap(9, 0, 1, func(_ bool, _ uint64, err error) { gotErr = err })
	r.sim.Run()
	if gotErr == nil {
		t.Fatal("bad CAS index accepted")
	}
	var rerr error
	r.clients[0].Read(9, func(_ uint64, err error) { rerr = err })
	r.sim.Run()
	if rerr == nil {
		t.Fatal("bad Read index accepted")
	}
}

func TestInstallFailsOnFullObjectTable(t *testing.T) {
	sim := netsim.NewSim(2)
	net := netsim.NewNetwork(sim)
	// Capacity-0 object table (32B entries don't fit in 16B budget).
	host, err := p4sim.NewSwitch(net, "h", 2, p4sim.SwitchConfig{
		Station: 900, ObjectTableMemory: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Install(gen.New(), host, 1, nil); err == nil {
		t.Fatal("Install accepted full table")
	}
}

func TestInstallRequiresStation(t *testing.T) {
	sim := netsim.NewSim(2)
	net := netsim.NewNetwork(sim)
	host, err := p4sim.NewSwitch(net, "h", 2, p4sim.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Install(gen.New(), host, 1, nil); err == nil {
		t.Fatal("Install accepted station-less switch")
	}
}

func TestEnableRegistersRequiresStation(t *testing.T) {
	sim := netsim.NewSim(1)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "s", 2, p4sim.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.EnableRegisters(4); err == nil {
		t.Fatal("EnableRegisters without Station accepted")
	}
}
