// Package netseq offers in-network synchronization services — the §5
// plan to "experiment with offloading some synchronization and
// arbitration concerns to the programmable network (which now
// functions somewhat as a memory bus)", following NetChain [18] and
// the optimistic-concurrency offload of [16].
//
// A service is a register array hosted on a switch, addressed by an
// object ID like everything else in the global space: frames carrying
// the service's ID route toward the hosting switch, which executes the
// atomic operation in its pipeline and replies — fewer hops and no
// server software on the critical path, compared with the equivalent
// host-based service.
package netseq

import (
	"errors"
	"fmt"

	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrRemote reports a non-OK register status.
var ErrRemote = errors.New("netseq: register operation failed")

// Service describes one installed register service.
type Service struct {
	ID   oid.ID
	Host *p4sim.Switch
}

// Install provisions a register service on host and programs the
// fabric so frames for id reach it: every switch in toward gets an
// object route on the given port (its port facing host), and host
// itself gets the ActRegisters entry.
func Install(id oid.ID, host *p4sim.Switch, numRegs int, toward map[*p4sim.Switch]int) (*Service, error) {
	if err := host.EnableRegisters(numRegs); err != nil {
		return nil, err
	}
	if err := host.ObjectTable().Insert(p4sim.Entry{
		Match:  []p4sim.KeyValue{{Value: wire.ValueOfID(id)}},
		Action: p4sim.Action{Type: p4sim.ActRegisters},
	}); err != nil {
		return nil, err
	}
	for sw, port := range toward {
		if sw == host {
			continue
		}
		if err := sw.InstallObjectRoute(wire.ValueOfID(id), port); err != nil {
			return nil, err
		}
	}
	return &Service{ID: id, Host: host}, nil
}

// Client issues atomic operations against a service.
type Client struct {
	ep      *transport.Endpoint
	service oid.ID
}

// NewClient binds a client to a service ID over an endpoint.
func NewClient(ep *transport.Endpoint, service oid.ID) *Client {
	return &Client{ep: ep, service: service}
}

// do sends one register operation and decodes the reply.
func (c *Client) do(op p4sim.RegOp, index uint32, a, b uint64,
	cb func(status byte, value uint64, err error)) {

	payload := p4sim.EncodeRegisterReq(op, index, a, b)
	h := wire.Header{
		Type:   wire.MsgCtrl,
		Flags:  wire.FlagRouteOnObject,
		Dst:    wire.StationAny,
		Object: c.service,
	}
	c.ep.Request(h, payload, 0, func(resp *wire.Header, p []byte, err error) {
		if err != nil {
			cb(0, 0, err)
			return
		}
		status, value, derr := p4sim.DecodeRegisterResp(p)
		cb(status, value, derr)
	})
}

// FetchAdd atomically adds delta to register index, returning the
// prior value — a line-rate sequencer.
func (c *Client) FetchAdd(index uint32, delta uint64, cb func(old uint64, err error)) {
	c.do(p4sim.RegFetchAdd, index, delta, 0, func(status byte, v uint64, err error) {
		if err == nil && status != p4sim.RegOK {
			err = fmt.Errorf("%w: status %d", ErrRemote, status)
		}
		cb(v, err)
	})
}

// Read returns register index's value.
func (c *Client) Read(index uint32, cb func(value uint64, err error)) {
	c.do(p4sim.RegRead, index, 0, 0, func(status byte, v uint64, err error) {
		if err == nil && status != p4sim.RegOK {
			err = fmt.Errorf("%w: status %d", ErrRemote, status)
		}
		cb(v, err)
	})
}

// CompareSwap installs next if register index currently holds expect;
// ok reports success and cur the value observed — in-network locks and
// arbitration.
func (c *Client) CompareSwap(index uint32, expect, next uint64,
	cb func(ok bool, cur uint64, err error)) {

	c.do(p4sim.RegCompareSwap, index, expect, next, func(status byte, v uint64, err error) {
		if err != nil {
			cb(false, 0, err)
			return
		}
		switch status {
		case p4sim.RegOK:
			cb(true, v, nil)
		case p4sim.RegCASFailed:
			cb(false, v, nil)
		default:
			cb(false, v, fmt.Errorf("%w: status %d", ErrRemote, status))
		}
	})
}
