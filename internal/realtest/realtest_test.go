package realtest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/future"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestLoopbackE1 is E1 (one-sided access RTT) over real sockets: warm
// reads against pre-discovered objects and cold reads that pay e2e
// discovery, measured on the wall clock. Loopback latency is noisy
// under CI schedulers, so the tolerances are deliberately generous —
// the point is that the identical stack completes real round trips
// in sane time, not a performance pin.
func TestLoopbackE1(t *testing.T) {
	c := NewCluster(t, WithNodes(3), WithSeed(11))

	const accesses = 30
	warm := telemetry.NewHistogram()
	cold := telemetry.NewHistogram()

	var warmObjs, coldObjs []object.Global
	for i := 0; i < accesses; i++ {
		warmObjs = append(warmObjs, c.CreateObject(1+i%2, 4096))
		coldObjs = append(coldObjs, c.CreateObject(1+i%2, 4096))
	}
	// Warm the warm set: one read each discovers and caches the home.
	for _, g := range warmObjs {
		c.ReadAt(0, g, object.HeaderSize, 16)
	}

	measure := func(g object.Global, hist *telemetry.Histogram) {
		var f *future.Future[[]byte]
		var start netsim.Time
		c.Exec(func() {
			start = c.Clock.Now()
			f = c.Node(0).Coherence.ReadAt(g.Obj, object.HeaderSize, 16)
		})
		Await(c, f)
		hist.Observe(c.Clock.Now().Sub(start).Microseconds())
	}
	for _, g := range warmObjs {
		measure(g, warm)
	}
	for _, g := range coldObjs {
		measure(g, cold)
	}

	// Generous tolerances: loopback RTTs are microseconds; 100ms mean
	// means something is retransmitting or wedged.
	if m := warm.Mean(); m <= 0 || m > 100_000 {
		t.Errorf("warm mean RTT %.1fµs outside (0, 100ms]", m)
	}
	if m := cold.Mean(); m <= 0 || m > 100_000 {
		t.Errorf("cold mean RTT %.1fµs outside (0, 100ms]", m)
	}
	t.Logf("loopback E1: warm mean %.1fµs p99 %.1fµs; cold mean %.1fµs p99 %.1fµs",
		warm.Mean(), warm.Quantile(0.99), cold.Mean(), cold.Quantile(0.99))

	if st := c.Stats(); st.Network.FramesDelivered == 0 {
		t.Fatalf("no frames crossed the sockets: %+v", st.Network)
	}
}

// TestLoopbackE9Sweep runs a short open-loop Poisson sweep point over
// real sockets through the same workload runner the simulator uses,
// checking only that real completions happen at a sane clip.
func TestLoopbackE9Sweep(t *testing.T) {
	c := NewCluster(t, WithNodes(4), WithSeed(12))

	tgt, err := workload.NewClusterTarget(c.Cluster, workload.ClusterConfig{
		WarmPool:   32,
		ObjectSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := c.ctx()
	defer cancel()
	if err := tgt.WarmCtx(ctx); err != nil {
		t.Fatal(err)
	}

	const (
		warmup = 20 * netsim.Millisecond
		window = 80 * netsim.Millisecond
		rate   = 2000.0
	)
	run := workload.New(c.Clock, tgt, workload.Config{
		Seed:           12,
		Arrival:        workload.ArrivalConfig{Kind: workload.ArrivalPoisson, RatePerSec: rate},
		Mix:            workload.Mix{ReadPct: 90, WritePct: 10},
		Warmup:         warmup,
		Measure:        window,
		MaxOutstanding: 64,
	})
	c.Exec(run.Start)
	c.RunFor(warmup + window + 100*netsim.Millisecond)

	var res workload.Result
	c.Exec(func() { res = run.Result() })
	if res.Counters.OpsCompleted == 0 {
		t.Fatalf("no ops completed over real sockets: %+v", res.Counters)
	}
	// Generous floor: a tenth of offered load still proves the runner
	// and stack move real traffic; CI boxes can be slow.
	if gp := res.GoodputPerSec(); gp < rate/10 {
		t.Errorf("goodput %.0f/s below a tenth of offered %.0f/s: %+v",
			gp, rate, res.Counters)
	}
	t.Logf("loopback E9 point: rate %.0f/s goodput %.0f/s p99 %.1fµs errors %d",
		rate, res.GoodputPerSec(), res.Latency.P99, res.Counters.OpsFailed)
}

// TestHarnessRefusesSimBackend pins that the harness forces realnet
// even when WithConfig tries to switch it back.
func TestHarnessRefusesSimBackend(t *testing.T) {
	c := NewCluster(t, WithConfig(func(cfg *core.Config) {
		cfg.Backend = core.BackendSim
	}))
	if c.Sim != nil {
		t.Fatal("harness built a sim cluster")
	}
}
