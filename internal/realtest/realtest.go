// Package realtest is a localhost test harness for the realnet
// backend, in the style of database clustertest helpers: a test asks
// for a cluster, gets real UDP sockets wired into the identical
// coherence/discovery stack, and the harness owns lifecycle (cleanup
// via t.Cleanup), deadlines, and fatal-on-error plumbing so tests
// read as straight-line scenarios.
//
//	c := realtest.NewCluster(t, realtest.WithNodes(4))
//	g := c.CreateObject(1, 4096)
//	c.WriteAt(0, g, object.HeaderSize, []byte("hi"))
//	got := c.ReadAt(2, g, object.HeaderSize, 2)
package realtest

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/future"
	"repro/internal/object"
)

// DefaultTimeout bounds every await the harness performs. Loopback
// RTTs are tens of microseconds; anything near this bound is a hang,
// not a slow network.
const DefaultTimeout = 15 * time.Second

// Option tweaks the cluster config before construction.
type Option func(*core.Config)

// WithNodes sets the node count (harness default 3).
func WithNodes(n int) Option { return func(c *core.Config) { c.NumNodes = n } }

// WithSeed sets the seed (object IDs, placement; default 1).
func WithSeed(s int64) Option { return func(c *core.Config) { c.Seed = s } }

// WithConfig applies arbitrary edits for options the harness doesn't
// name; the Backend field is forced back to realnet afterwards.
func WithConfig(fn func(*core.Config)) Option { return fn }

// Cluster wraps a realnet-backed core.Cluster with the owning test.
type Cluster struct {
	*core.Cluster
	tb testing.TB
}

// NewCluster builds a realnet cluster on loopback sockets and
// registers its teardown with t.Cleanup.
func NewCluster(tb testing.TB, opts ...Option) *Cluster {
	tb.Helper()
	cfg := core.Config{Backend: core.BackendRealnet, Seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.Backend = core.BackendRealnet
	cl, err := core.NewCluster(cfg)
	if err != nil {
		tb.Fatalf("realtest: cluster: %v", err)
	}
	tb.Cleanup(func() { cl.Close() })
	return &Cluster{Cluster: cl, tb: tb}
}

// ctx returns the harness deadline context.
func (c *Cluster) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), DefaultTimeout)
}

// Await resolves f under the harness deadline, failing the test on
// error. Package-level because Go methods cannot be generic.
func Await[T any](c *Cluster, f *future.Future[T]) T {
	c.tb.Helper()
	ctx, cancel := c.ctx()
	defer cancel()
	v, err := core.Await(ctx, c.Cluster, f)
	if err != nil {
		c.tb.Fatalf("realtest: await: %v", err)
	}
	return v
}

// CreateObject creates an object homed on the given node and returns
// its global reference.
func (c *Cluster) CreateObject(node, size int) object.Global {
	c.tb.Helper()
	var g object.Global
	c.Exec(func() {
		o, err := c.Node(node).CreateObject(size)
		if err != nil {
			c.tb.Fatalf("realtest: create on node %d: %v", node, err)
		}
		g = object.Global{Obj: o.ID()}
	})
	return g
}

// WriteAt writes data into g from the given node over the sockets and
// waits for the ack.
func (c *Cluster) WriteAt(node int, g object.Global, off uint64, data []byte) {
	c.tb.Helper()
	var f *future.Future[struct{}]
	c.Exec(func() { f = c.Node(node).Coherence.WriteAt(g.Obj, off, data) })
	Await(c, f)
}

// ReadAt reads length bytes of g from the given node over the sockets.
func (c *Cluster) ReadAt(node int, g object.Global, off uint64, length int) []byte {
	c.tb.Helper()
	var f *future.Future[[]byte]
	c.Exec(func() { f = c.Node(node).Coherence.ReadAt(g.Obj, off, length) })
	return Await(c, f)
}

// Acquire takes a shared copy of g on the given node.
func (c *Cluster) Acquire(node int, g object.Global) *object.Object {
	c.tb.Helper()
	var f *future.Future[*object.Object]
	c.Exec(func() { f = c.Node(node).Coherence.AcquireShared(g.Obj) })
	return Await(c, f)
}
