package memproto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := &Msg{
		Op: OpReadResp, Status: StatusOK, Perm: PermShared,
		Length: 128, Offset: 0x1000, Version: 7,
		FragOffset: 64, TotalLen: 256, Data: []byte("payload bytes"),
	}
	enc := m.Marshal(nil)
	if len(enc) != m.EncodedSize() {
		t.Fatalf("EncodedSize = %d, len = %d", m.EncodedSize(), len(enc))
	}
	var got Msg
	if err := got.Unmarshal(enc); err != nil {
		t.Fatal(err)
	}
	if got.Op != m.Op || got.Status != m.Status || got.Perm != m.Perm ||
		got.Length != m.Length || got.Offset != m.Offset || got.Version != m.Version ||
		got.FragOffset != m.FragOffset || got.TotalLen != m.TotalLen ||
		!bytes.Equal(got.Data, m.Data) {
		t.Fatalf("round trip: %+v != %+v", got, *m)
	}
}

func TestMarshalAppends(t *testing.T) {
	m := &Msg{Op: OpReadReq, Length: 8}
	prefix := []byte("prefix")
	enc := m.Marshal(prefix)
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("Marshal clobbered prefix")
	}
	var got Msg
	if err := got.Unmarshal(enc[len(prefix):]); err != nil {
		t.Fatal(err)
	}
	if got.Op != OpReadReq || got.Length != 8 {
		t.Fatalf("got %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var m Msg
	if err := m.Unmarshal(make([]byte, 10)); !errors.Is(err, ErrShort) {
		t.Fatalf("short: %v", err)
	}
	// Invalid op.
	enc := (&Msg{Op: OpReadReq}).Marshal(nil)
	enc[0] = 0
	if err := m.Unmarshal(enc); err == nil {
		t.Fatal("accepted invalid op")
	}
	enc[0] = byte(opCount)
	if err := m.Unmarshal(enc); err == nil {
		t.Fatal("accepted out-of-range op")
	}
	// Data length beyond buffer.
	enc2 := (&Msg{Op: OpReadResp, Data: []byte("abc")}).Marshal(nil)
	enc2[43] = 200
	if err := m.Unmarshal(enc2); !errors.Is(err, ErrShort) {
		t.Fatalf("bad data length: %v", err)
	}
}

func TestEmptyDataNil(t *testing.T) {
	enc := (&Msg{Op: OpWriteResp}).Marshal(nil)
	var got Msg
	if err := got.Unmarshal(enc); err != nil {
		t.Fatal(err)
	}
	if got.Data != nil {
		t.Fatal("empty data not nil")
	}
}

func TestOpNames(t *testing.T) {
	if OpAcquire.String() != "acquire" || OpInvalidateAck.String() != "invalidate-ack" {
		t.Fatal("op names")
	}
	if Op(99).String() != "op(99)" {
		t.Fatal("out-of-range op name")
	}
	if OpInvalid.Valid() || Op(99).Valid() || !OpGrant.Valid() {
		t.Fatal("Valid()")
	}
}

func TestRequestResponsePairs(t *testing.T) {
	pairs := map[Op]Op{
		OpReadReq:    OpReadResp,
		OpWriteReq:   OpWriteResp,
		OpObjectReq:  OpObjectPush,
		OpAcquire:    OpGrant,
		OpProbe:      OpProbeAck,
		OpRelease:    OpReleaseAck,
		OpInvalidate: OpInvalidateAck,
	}
	for req, resp := range pairs {
		if !req.IsRequest() {
			t.Errorf("%s not a request", req)
		}
		if req.ResponseOp() != resp {
			t.Errorf("ResponseOp(%s) = %s, want %s", req, req.ResponseOp(), resp)
		}
		if resp.IsRequest() {
			t.Errorf("%s is a request", resp)
		}
		if resp.ResponseOp() != OpInvalid {
			t.Errorf("ResponseOp(%s) = %s", resp, resp.ResponseOp())
		}
	}
}

func TestStatus(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Fatal("StatusOK.Err() != nil")
	}
	if StatusNotFound.Err() == nil || StatusDenied.Err() == nil {
		t.Fatal("non-OK status without error")
	}
	if StatusConflict.String() != "conflict" || Status(99).String() != "status(99)" {
		t.Fatal("status names")
	}
	if PermShared.String() != "shared" || Perm(9).String() != "perm(9)" {
		t.Fatal("perm names")
	}
}

func TestFragmentReassemble(t *testing.T) {
	raw := make([]byte, 200_000)
	for i := range raw {
		raw[i] = byte(i * 31)
	}
	frags := Fragment(raw, 5, 0)
	if len(frags) < 3 {
		t.Fatalf("expected multiple fragments, got %d", len(frags))
	}
	var r Reassembler
	done := false
	for i, f := range frags {
		var err error
		done, err = r.Add(&f)
		if err != nil {
			t.Fatal(err)
		}
		if done && i != len(frags)-1 {
			t.Fatal("done before last fragment")
		}
	}
	if !done {
		t.Fatal("not done after all fragments")
	}
	if !bytes.Equal(r.Bytes(), raw) {
		t.Fatal("reassembly mismatch")
	}
	if r.Version() != 5 {
		t.Fatalf("version = %d", r.Version())
	}
}

func TestFragmentOutOfOrder(t *testing.T) {
	raw := make([]byte, 10_000)
	for i := range raw {
		raw[i] = byte(i)
	}
	frags := Fragment(raw, 1, 1024)
	var r Reassembler
	// Deliver in reverse.
	done := false
	for i := len(frags) - 1; i >= 0; i-- {
		var err error
		done, err = r.Add(&frags[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	if !done || !bytes.Equal(r.Bytes(), raw) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestFragmentEmpty(t *testing.T) {
	frags := Fragment(nil, 2, 0)
	if len(frags) != 1 {
		t.Fatalf("empty fragment count = %d", len(frags))
	}
	var r Reassembler
	done, err := r.Add(&frags[0])
	if err != nil || !done {
		t.Fatalf("empty reassembly: done=%v err=%v", done, err)
	}
	if len(r.Bytes()) != 0 {
		t.Fatal("empty object bytes")
	}
}

func TestReassemblerErrors(t *testing.T) {
	var r Reassembler
	if _, err := r.Add(&Msg{Op: OpReadReq}); err == nil {
		t.Fatal("accepted non-push")
	}
	r2 := Reassembler{}
	r2.Add(&Msg{Op: OpObjectPush, TotalLen: 100, Data: make([]byte, 50)})
	if _, err := r2.Add(&Msg{Op: OpObjectPush, TotalLen: 200}); err == nil {
		t.Fatal("accepted total mismatch")
	}
	if _, err := r2.Add(&Msg{Op: OpObjectPush, TotalLen: 100, FragOffset: 90, Data: make([]byte, 20)}); err == nil {
		t.Fatal("accepted overflow fragment")
	}
}

func TestReassemblerDuplicateFragments(t *testing.T) {
	raw := make([]byte, 3000)
	for i := range raw {
		raw[i] = byte(i * 7)
	}
	frags := Fragment(raw, 4, 1024) // 1024 + 1024 + 952
	if len(frags) != 3 {
		t.Fatalf("fragment count = %d", len(frags))
	}
	var r Reassembler
	// Three copies of fragment 0 sum past TotalLen but cover 1024 bytes:
	// the transfer must not complete.
	for i := 0; i < 3; i++ {
		done, err := r.Add(&frags[0])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("duplicate bytes completed a transfer with holes")
		}
	}
	if done, err := r.Add(&frags[1]); err != nil || done {
		t.Fatalf("after frag 1: done=%v err=%v", done, err)
	}
	done, err := r.Add(&frags[2])
	if err != nil || !done {
		t.Fatalf("after frag 2: done=%v err=%v", done, err)
	}
	if !bytes.Equal(r.Bytes(), raw) {
		t.Fatal("reassembly mismatch")
	}
}

func TestReassemblerOverlappingFragments(t *testing.T) {
	raw := make([]byte, 1000)
	for i := range raw {
		raw[i] = byte(i * 3)
	}
	mk := func(off, end int) *Msg {
		return &Msg{Op: OpObjectPush, TotalLen: 1000, FragOffset: uint64(off), Data: raw[off:end]}
	}
	var r Reassembler
	// [0,600) + [100,500) overlap entirely inside: 900 bytes summed but
	// only 600 covered.
	if done, _ := r.Add(mk(0, 600)); done {
		t.Fatal("done early")
	}
	if done, _ := r.Add(mk(100, 500)); done {
		t.Fatal("interior overlap completed transfer with a hole")
	}
	// [400,1000) overlaps the front span and closes the hole.
	done, err := r.Add(mk(400, 1000))
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if !bytes.Equal(r.Bytes(), raw) {
		t.Fatal("reassembly mismatch")
	}
}

func TestReassemblerVersionSkew(t *testing.T) {
	raw := make([]byte, 2048)
	frags := Fragment(raw, 1, 1024)
	var r Reassembler
	if _, err := r.Add(&frags[0]); err != nil {
		t.Fatal(err)
	}
	skewed := frags[1]
	skewed.Version = 2
	if _, err := r.Add(&skewed); err == nil {
		t.Fatal("accepted fragment from a different object version")
	}
	// The matching-version fragment still completes the transfer.
	if done, err := r.Add(&frags[1]); err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
}

// TestLegacyAccountingReproducesBugs pins the pre-fix behavior the
// invariant checker is built to catch: under legacy accounting,
// duplicates complete hole-y transfers and version skew passes silently.
func TestLegacyAccountingReproducesBugs(t *testing.T) {
	prev := SetLegacyAccounting(true)
	defer SetLegacyAccounting(prev)
	raw := make([]byte, 3000)
	frags := Fragment(raw, 1, 1024)
	var r Reassembler
	var done bool
	for i := 0; i < 3; i++ {
		var err error
		done, err = r.Add(&frags[0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if !done {
		t.Fatal("legacy accounting should complete on duplicate bytes")
	}
	var r2 Reassembler
	r2.Add(&frags[0])
	skewed := frags[1]
	skewed.Version = 9
	if _, err := r2.Add(&skewed); err != nil {
		t.Fatal("legacy accounting should accept version skew")
	}
}

func TestPropertyFragmentReassemble(t *testing.T) {
	f := func(data []byte, maxData uint16) bool {
		frags := Fragment(data, 3, int(maxData))
		var r Reassembler
		done := false
		for i := range frags {
			var err error
			done, err = r.Add(&frags[i])
			if err != nil {
				return false
			}
		}
		return done && bytes.Equal(r.Bytes(), data) == (len(data) > 0) ||
			(len(data) == 0 && done)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMsgRoundTrip(t *testing.T) {
	f := func(op uint8, status, perm uint8, length uint32, off, ver, fo, tl uint64, data []byte) bool {
		o := Op(op%uint8(opCount-1)) + 1
		m := &Msg{
			Op: o, Status: Status(status), Perm: Perm(perm),
			Length: length, Offset: off, Version: ver,
			FragOffset: fo, TotalLen: tl, Data: data,
		}
		var got Msg
		if err := got.Unmarshal(m.Marshal(nil)); err != nil {
			return false
		}
		return got.Op == m.Op && got.Offset == m.Offset &&
			got.TotalLen == m.TotalLen && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := &Msg{Op: OpReadResp, Data: make([]byte, CacheLine)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Marshal(buf[:0])
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	enc := (&Msg{Op: OpReadResp, Data: make([]byte, CacheLine)}).Marshal(nil)
	var m Msg
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}
