// Package memproto defines the memory-protocol message vocabulary of
// §3.2: the network exposing a bus-like interface whose operations are
// loads and stores against objects in the global address space, plus
// the additional message types cache coherence requires (acquire,
// probe, release, invalidate) in the style of TileLink [1].
//
// Messages ride inside GASP frames of type wire.MsgMem; the object they
// target travels in the GASP header (it is the routing key), so this
// layer carries only the operation, byte range, version, and payload.
package memproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CacheLine is the smallest transfer unit, matching the "payload size
// is usually a cache line" observation in §3.2.
const CacheLine = 64

// Op is a memory-protocol operation.
type Op uint8

// Operations. Requests flow toward an object's holder; responses flow
// back to the requester.
const (
	OpInvalid Op = iota
	// OpReadReq asks for [Offset, Offset+Length) of the object.
	OpReadReq
	// OpReadResp returns the requested bytes.
	OpReadResp
	// OpWriteReq writes Data at Offset.
	OpWriteReq
	// OpWriteResp acknowledges a write.
	OpWriteResp
	// OpObjectReq asks for the whole object (byte-copy movement).
	OpObjectReq
	// OpObjectPush carries (a fragment of) an object's raw bytes.
	OpObjectPush
	// OpAcquire requests a cached copy at Perm (coherence).
	OpAcquire
	// OpGrant responds to OpAcquire with data and granted permission.
	OpGrant
	// OpProbe asks a copy holder to downgrade/invalidate.
	OpProbe
	// OpProbeAck acknowledges a probe (with dirty data if demoting
	// from exclusive).
	OpProbeAck
	// OpRelease returns a dirty copy to the home.
	OpRelease
	// OpReleaseAck acknowledges a release.
	OpReleaseAck
	// OpInvalidate tells sharers to drop their copies.
	OpInvalidate
	// OpInvalidateAck acknowledges an invalidation.
	OpInvalidateAck

	opCount
)

var opNames = [...]string{
	"invalid", "read-req", "read-resp", "write-req", "write-resp",
	"object-req", "object-push", "acquire", "grant", "probe",
	"probe-ack", "release", "release-ack", "invalidate", "invalidate-ack",
}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o > OpInvalid && o < opCount }

// IsRequest reports whether o initiates an exchange.
func (o Op) IsRequest() bool {
	switch o {
	case OpReadReq, OpWriteReq, OpObjectReq, OpAcquire, OpProbe, OpRelease, OpInvalidate:
		return true
	}
	return false
}

// ResponseOp returns the operation that answers o, or OpInvalid.
func (o Op) ResponseOp() Op {
	switch o {
	case OpReadReq:
		return OpReadResp
	case OpWriteReq:
		return OpWriteResp
	case OpObjectReq:
		return OpObjectPush
	case OpAcquire:
		return OpGrant
	case OpProbe:
		return OpProbeAck
	case OpRelease:
		return OpReleaseAck
	case OpInvalidate:
		return OpInvalidateAck
	}
	return OpInvalid
}

// Status reports the outcome of a request.
type Status uint8

// Statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusDenied
	StatusConflict
	StatusRange
)

var statusNames = [...]string{"ok", "not-found", "denied", "conflict", "range"}

// String names the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Err converts a non-OK status into an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return fmt.Errorf("memproto: remote status %s", s)
}

// Perm is a coherence permission level.
type Perm uint8

// Permissions, ordered so higher grants more.
const (
	PermNone Perm = iota
	PermShared
	PermExclusive
)

var permNames = [...]string{"none", "shared", "exclusive"}

// String names the permission.
func (p Perm) String() string {
	if int(p) < len(permNames) {
		return permNames[p]
	}
	return fmt.Sprintf("perm(%d)", uint8(p))
}

// headerSize is the fixed message prefix before Data.
//
//	0  op(1) status(1) perm(1) reserved(1)
//	4  length(4)       requested byte count
//	8  offset(8)       byte offset in the object
//	16 version(8)      object version for coherence fencing
//	24 fragOffset(8)   offset of Data within a multi-frame transfer
//	32 totalLen(8)     total bytes of the whole transfer
//	40 dataLen(4)
//	44 data...
const headerSize = 44

// ErrShort reports a truncated message buffer.
var ErrShort = errors.New("memproto: message truncated")

// Msg is one memory-protocol message.
type Msg struct {
	Op      Op
	Status  Status
	Perm    Perm
	Length  uint32
	Offset  uint64
	Version uint64
	// FragOffset and TotalLen describe multi-frame object transfers:
	// Data covers [FragOffset, FragOffset+len(Data)) of TotalLen bytes.
	FragOffset uint64
	TotalLen   uint64
	Data       []byte
}

// EncodedSize returns the marshaled size of m.
func (m *Msg) EncodedSize() int { return headerSize + len(m.Data) }

// Marshal appends the encoded message to dst and returns the result.
func (m *Msg) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, headerSize)...)
	b := dst[off:]
	b[0] = byte(m.Op)
	b[1] = byte(m.Status)
	b[2] = byte(m.Perm)
	b[3] = 0
	binary.BigEndian.PutUint32(b[4:8], m.Length)
	binary.BigEndian.PutUint64(b[8:16], m.Offset)
	binary.BigEndian.PutUint64(b[16:24], m.Version)
	binary.BigEndian.PutUint64(b[24:32], m.FragOffset)
	binary.BigEndian.PutUint64(b[32:40], m.TotalLen)
	binary.BigEndian.PutUint32(b[40:44], uint32(len(m.Data)))
	return append(dst, m.Data...)
}

// Unmarshal parses a message from b. Data is a zero-copy view into b.
func (m *Msg) Unmarshal(b []byte) error {
	if len(b) < headerSize {
		return fmt.Errorf("%w: %d bytes", ErrShort, len(b))
	}
	m.Op = Op(b[0])
	if !m.Op.Valid() {
		return fmt.Errorf("memproto: invalid op %d", b[0])
	}
	m.Status = Status(b[1])
	m.Perm = Perm(b[2])
	m.Length = binary.BigEndian.Uint32(b[4:8])
	m.Offset = binary.BigEndian.Uint64(b[8:16])
	m.Version = binary.BigEndian.Uint64(b[16:24])
	m.FragOffset = binary.BigEndian.Uint64(b[24:32])
	m.TotalLen = binary.BigEndian.Uint64(b[32:40])
	dataLen := binary.BigEndian.Uint32(b[40:44])
	if int(dataLen) > len(b)-headerSize {
		return fmt.Errorf("%w: data length %d in %d-byte buffer", ErrShort, dataLen, len(b))
	}
	if dataLen == 0 {
		m.Data = nil
	} else {
		m.Data = b[headerSize : headerSize+int(dataLen)]
	}
	return nil
}

// FragDataFor returns the largest fragment Data length whose encoded
// message fits in frameMax bytes (the room a link leaves for the
// memproto payload after the GASP header). Results are clamped to
// [1, MaxFragData].
func FragDataFor(frameMax int) int {
	n := frameMax - headerSize
	if n > MaxFragData {
		return MaxFragData
	}
	if n < 1 {
		return 1
	}
	return n
}

// MaxFragData is the largest Data slice that fits a single GASP frame
// alongside this header.
const MaxFragData = 64*1024 - headerSize

// Fragment splits an object-sized transfer into OpObjectPush messages
// no larger than maxData bytes of payload each (maxData <= MaxFragData;
// 0 selects MaxFragData). Each fragment carries the object version.
func Fragment(raw []byte, version uint64, maxData int) []Msg {
	if maxData <= 0 || maxData > MaxFragData {
		maxData = MaxFragData
	}
	total := uint64(len(raw))
	if total == 0 {
		return []Msg{{Op: OpObjectPush, Version: version, TotalLen: 0}}
	}
	var out []Msg
	for off := 0; off < len(raw); off += maxData {
		end := off + maxData
		if end > len(raw) {
			end = len(raw)
		}
		out = append(out, Msg{
			Op:         OpObjectPush,
			Version:    version,
			FragOffset: uint64(off),
			TotalLen:   total,
			Data:       raw[off:end],
		})
	}
	return out
}

// legacyAccounting reverts Reassembler.Add to the pre-fix behavior:
// duplicate fragment bytes count toward completion and version skew is
// silently accepted. It exists solely so the invariant checker can
// demonstrate it catches the bugs the fixed accounting removed; see
// SetLegacyAccounting.
var legacyAccounting bool

// SetLegacyAccounting toggles the buggy pre-fix reassembly accounting
// (duplicate-byte completion, silent version mixing) and returns the
// previous setting. Only the checker's self-test should ever enable it.
func SetLegacyAccounting(v bool) bool {
	prev := legacyAccounting
	legacyAccounting = v
	return prev
}

// frRange is a covered byte span [start, end) of a transfer.
type frRange struct{ start, end uint64 }

// Reassembler collects OpObjectPush fragments into a whole object.
// Completion is judged by covered byte ranges, so duplicated or
// overlapping fragments cannot complete a transfer that still has
// holes, and fragments carrying a different object version than the
// transfer's first fragment are rejected.
type Reassembler struct {
	buf      []byte
	received uint64
	ranges   []frRange // sorted, non-overlapping covered spans
	total    uint64
	started  bool
	version  uint64
}

// cover marks [start, end) as received, merging it into the sorted
// non-overlapping range list, and returns the count of newly covered
// bytes (0 for a pure duplicate).
func (r *Reassembler) cover(start, end uint64) uint64 {
	if start >= end {
		return 0
	}
	// Ranges strictly before the new span stay; [i, j) overlap or abut.
	i := 0
	for i < len(r.ranges) && r.ranges[i].end < start {
		i++
	}
	merged := frRange{start, end}
	var overlap uint64
	j := i
	for ; j < len(r.ranges) && r.ranges[j].start <= end; j++ {
		rg := r.ranges[j]
		if lo, hi := max(start, rg.start), min(end, rg.end); hi > lo {
			overlap += hi - lo
		}
		merged.start = min(merged.start, rg.start)
		merged.end = max(merged.end, rg.end)
	}
	// Inner append allocates, so the splice never clobbers r.ranges[j:].
	r.ranges = append(r.ranges[:i], append([]frRange{merged}, r.ranges[j:]...)...)
	return (end - start) - overlap
}

// Add ingests a fragment. It returns true when the transfer is
// complete; call Bytes for the result.
func (r *Reassembler) Add(m *Msg) (bool, error) {
	if m.Op != OpObjectPush {
		return false, fmt.Errorf("memproto: reassembling non-push op %s", m.Op)
	}
	if !r.started {
		r.total = m.TotalLen
		r.buf = make([]byte, m.TotalLen)
		r.version = m.Version
		r.started = true
	}
	if m.TotalLen != r.total {
		return false, fmt.Errorf("memproto: fragment total %d != transfer total %d", m.TotalLen, r.total)
	}
	if !legacyAccounting && m.Version != r.version {
		return false, fmt.Errorf("memproto: fragment version %d != transfer version %d", m.Version, r.version)
	}
	if m.FragOffset+uint64(len(m.Data)) > r.total {
		return false, fmt.Errorf("memproto: fragment [%d,+%d) beyond total %d", m.FragOffset, len(m.Data), r.total)
	}
	copy(r.buf[m.FragOffset:], m.Data)
	if legacyAccounting {
		r.received += uint64(len(m.Data))
	} else {
		r.received += r.cover(m.FragOffset, m.FragOffset+uint64(len(m.Data)))
	}
	return r.received >= r.total, nil
}

// Bytes returns the reassembled object bytes.
func (r *Reassembler) Bytes() []byte { return r.buf }

// Version returns the version carried by the transfer.
func (r *Reassembler) Version() uint64 { return r.version }

// Started reports whether any fragment has been ingested.
func (r *Reassembler) Started() bool { return r.started }
