package memproto

import (
	"bytes"
	"testing"
)

// FuzzMsgUnmarshal ensures Unmarshal never panics and accepted
// messages round-trip.
func FuzzMsgUnmarshal(f *testing.F) {
	f.Add((&Msg{Op: OpReadReq, Offset: 64, Length: 64}).Marshal(nil))
	f.Add((&Msg{Op: OpObjectPush, TotalLen: 100, Data: []byte("abc")}).Marshal(nil))
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))
	f.Add(make([]byte, headerSize-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Msg
		if err := m.Unmarshal(data); err != nil {
			return
		}
		re := m.Marshal(nil)
		var m2 Msg
		if err := m2.Unmarshal(re); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if m2.Op != m.Op || m2.Offset != m.Offset || m2.TotalLen != m.TotalLen ||
			!bytes.Equal(m2.Data, m.Data) {
			t.Fatal("round trip changed message")
		}
	})
}

// FuzzReassembler ensures arbitrary fragment sequences never panic or
// write out of bounds.
func FuzzReassembler(f *testing.F) {
	f.Add(uint64(100), uint64(0), []byte("0123456789"))
	f.Add(uint64(10), uint64(5), []byte("abcdef"))
	f.Add(uint64(0), uint64(0), []byte{})

	f.Fuzz(func(t *testing.T, total, fragOff uint64, data []byte) {
		if total > 1<<20 {
			total %= 1 << 20
		}
		var r Reassembler
		m := &Msg{Op: OpObjectPush, TotalLen: total, FragOffset: fragOff, Data: data}
		done, err := r.Add(m)
		if err != nil {
			return
		}
		if done && uint64(len(r.Bytes())) != total {
			t.Fatalf("done with %d/%d bytes", len(r.Bytes()), total)
		}
	})
}
