package memproto

import (
	"bytes"
	"testing"
)

// FuzzMsgUnmarshal ensures Unmarshal never panics and accepted
// messages round-trip.
func FuzzMsgUnmarshal(f *testing.F) {
	f.Add((&Msg{Op: OpReadReq, Offset: 64, Length: 64}).Marshal(nil))
	f.Add((&Msg{Op: OpObjectPush, TotalLen: 100, Data: []byte("abc")}).Marshal(nil))
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))
	f.Add(make([]byte, headerSize-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Msg
		if err := m.Unmarshal(data); err != nil {
			return
		}
		re := m.Marshal(nil)
		var m2 Msg
		if err := m2.Unmarshal(re); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if m2.Op != m.Op || m2.Offset != m.Offset || m2.TotalLen != m.TotalLen ||
			!bytes.Equal(m2.Data, m.Data) {
			t.Fatal("round trip changed message")
		}
	})
}

// FuzzReassembler ensures arbitrary fragment sequences never panic or
// write out of bounds.
func FuzzReassembler(f *testing.F) {
	f.Add(uint64(100), uint64(0), []byte("0123456789"))
	f.Add(uint64(10), uint64(5), []byte("abcdef"))
	f.Add(uint64(0), uint64(0), []byte{})

	f.Fuzz(func(t *testing.T, total, fragOff uint64, data []byte) {
		if total > 1<<20 {
			total %= 1 << 20
		}
		var r Reassembler
		m := &Msg{Op: OpObjectPush, TotalLen: total, FragOffset: fragOff, Data: data}
		done, err := r.Add(m)
		if err != nil {
			return
		}
		if done && uint64(len(r.Bytes())) != total {
			t.Fatalf("done with %d/%d bytes", len(r.Bytes()), total)
		}
	})
}

// FuzzReassemblerSequence drives multi-fragment transfers through
// adversarial delivery — shuffled order with per-fragment duplication —
// and checks completion fires exactly when every distinct fragment has
// landed, never early on duplicate bytes.
func FuzzReassemblerSequence(f *testing.F) {
	f.Add(uint16(5000), uint16(512), uint64(1), uint64(0))
	f.Add(uint16(3000), uint16(1024), uint64(7), uint64(5))
	f.Add(uint16(100), uint16(0), uint64(42), ^uint64(0))

	f.Fuzz(func(t *testing.T, size, maxData uint16, perm, dupMask uint64) {
		raw := make([]byte, int(size))
		for i := range raw {
			raw[i] = byte(i*13 + 7)
		}
		frags := Fragment(raw, 9, int(maxData))
		order := make([]int, len(frags))
		for i := range order {
			order[i] = i
		}
		state := perm
		for i := len(order) - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		var r Reassembler
		seen := make(map[int]bool, len(frags))
		for _, idx := range order {
			copies := 1
			if dupMask&(1<<(uint(idx)%64)) != 0 {
				copies = 2
			}
			for k := 0; k < copies; k++ {
				done, err := r.Add(&frags[idx])
				if err != nil {
					t.Fatalf("Add(frag %d): %v", idx, err)
				}
				seen[idx] = true
				if done != (len(seen) == len(frags)) {
					t.Fatalf("done=%v with %d/%d distinct fragments", done, len(seen), len(frags))
				}
			}
		}
		if !bytes.Equal(r.Bytes(), raw) {
			t.Fatal("reassembly mismatch")
		}
	})
}
