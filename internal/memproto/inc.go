package memproto

import "encoding/binary"

// In-network computation payloads. MsgIncInv and MsgIncAck frames
// carry these fixed-size payloads instead of a full memproto message:
// switches parse them in the pipeline, so they are deliberately flat.
//
//	MsgIncInv: opID(8) | group(8) | claimed(1)
//	MsgIncAck: opID(8) | group(8) | bitmap(8)
//
// opID names the home's invalidation round (acks quote it back),
// group names the controller-installed sharer group (0 = pure cache
// purge, consumed by the first switch), and the claimed byte marks
// that an upstream switch already owns ack aggregation for this round
// so no second switch aggregates. The ack bitmap is 0 when the ack
// comes from the sharer named by the frame's Src, and a member-index
// bitmap when a switch coalesced several sharers' acks.
const (
	IncInvSize = 17
	IncAckSize = 24
	// IncInvClaimedOff is the claimed byte's offset within a MsgIncInv
	// payload — switches flip it in flight (the header checksum does
	// not cover the payload).
	IncInvClaimedOff = 16
	// IncCacheClaimOff is the reserved header byte of a memproto
	// message (see Marshal), repurposed in flight as the in-switch
	// cache claim: the first switch that caches a read response sets
	// it so no second switch caches the same bytes — the
	// single-caching-switch invariant that keeps every mutation on the
	// cached object's path through its caching switch.
	IncCacheClaimOff = 3
)

// EncodeIncInv builds a multicast-invalidation payload.
func EncodeIncInv(opID, group uint64, claimed bool) []byte {
	p := make([]byte, IncInvSize)
	binary.BigEndian.PutUint64(p[0:8], opID)
	binary.BigEndian.PutUint64(p[8:16], group)
	if claimed {
		p[IncInvClaimedOff] = 1
	}
	return p
}

// DecodeIncInv parses a multicast-invalidation payload.
func DecodeIncInv(p []byte) (opID, group uint64, claimed, ok bool) {
	if len(p) < IncInvSize {
		return 0, 0, false, false
	}
	return binary.BigEndian.Uint64(p[0:8]), binary.BigEndian.Uint64(p[8:16]),
		p[IncInvClaimedOff] != 0, true
}

// EncodeIncAck builds an invalidation-ack payload.
func EncodeIncAck(opID, group, bitmap uint64) []byte {
	p := make([]byte, IncAckSize)
	binary.BigEndian.PutUint64(p[0:8], opID)
	binary.BigEndian.PutUint64(p[8:16], group)
	binary.BigEndian.PutUint64(p[16:24], bitmap)
	return p
}

// DecodeIncAck parses an invalidation-ack payload.
func DecodeIncAck(p []byte) (opID, group, bitmap uint64, ok bool) {
	if len(p) < IncAckSize {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint64(p[0:8]), binary.BigEndian.Uint64(p[8:16]),
		binary.BigEndian.Uint64(p[16:24]), true
}
