package netsim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSim(1)
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run processed %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	s := NewSim(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim(1)
	var fired []Time
	s.Schedule(10, func() {
		fired = append(fired, s.Now())
		s.Schedule(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := NewSim(1)
	ran := false
	s.Schedule(-100, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%d", ran, s.Now())
	}
}

func TestScheduleAtPast(t *testing.T) {
	s := NewSim(1)
	s.Schedule(100, func() {
		s.ScheduleAt(5, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %d", s.Now())
			}
		})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	var fired []Time
	for _, d := range []Duration{10, 20, 30, 40} {
		d := d
		s.Schedule(d, func() { fired = append(fired, s.Now()) })
	}
	n := s.RunUntil(25)
	if n != 2 {
		t.Fatalf("RunUntil processed %d", n)
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %d after RunUntil(25)", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunFor(t *testing.T) {
	s := NewSim(1)
	count := 0
	s.Schedule(10, func() { count++ })
	s.Schedule(100, func() { count++ })
	s.RunFor(50)
	if count != 1 || s.Now() != 50 {
		t.Fatalf("RunFor: count=%d now=%d", count, s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSim(1)
	fired := false
	tm := s.AfterFunc(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerFires(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.AfterFunc(10, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := NewSim(42)
		var out []Time
		var rec func(depth int)
		rec = func(depth int) {
			out = append(out, s.Now())
			if depth < 5 {
				d := Duration(s.Rand().Intn(100))
				s.Schedule(d, func() { rec(depth + 1) })
				s.Schedule(d/2, func() { rec(depth + 1) })
			}
		}
		s.Schedule(0, func() { rec(0) })
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPropertyEventsNeverRunEarly(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSim(7)
		ok := true
		for _, d := range delays {
			want := s.Now().Add(Duration(d))
			s.Schedule(Duration(d), func() {
				if s.Now() != want {
					ok = false
				}
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationHelpers(t *testing.T) {
	if (2 * Microsecond).Microseconds() != 2.0 {
		t.Fatal("Microseconds conversion wrong")
	}
	t0 := Time(0).Add(5 * Millisecond)
	if t0.Sub(Time(0)) != 5*Millisecond {
		t.Fatal("Sub wrong")
	}
	if (1500 * Nanosecond).String() != "1.50µs" {
		t.Fatalf("String = %q", (1500 * Nanosecond).String())
	}
}
