// Package netsim is a deterministic discrete-event network simulator.
//
// It stands in for the paper's Mininet emulation (§4): hosts and
// switches are devices joined by links with propagation latency,
// transmission bandwidth, queueing, and optional loss. All timing runs
// on a virtual clock, so experiments are exactly reproducible from a
// seed and the figures' round-trip arithmetic is exact rather than
// subject to emulation noise.
package netsim

import (
	"math/rand"

	"repro/internal/backend"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
// It is an alias for the backend seam's Time so values flow across
// the interface without conversion.
type Time = backend.Time

// Duration is a span of virtual time in nanoseconds (alias of the
// backend seam's Duration).
type Duration = backend.Duration

// Convenient duration units, re-exported from the backend seam.
const (
	Nanosecond  = backend.Nanosecond
	Microsecond = backend.Microsecond
	Millisecond = backend.Millisecond
	Second      = backend.Second
)

// event is one queued occurrence. Events are stored by value in the
// heap so the steady-state event flow allocates nothing; the two
// hot-path event kinds of the frame pipeline (delivery to a device,
// delayed transmission out of a device) are represented inline instead
// of as closures.
type event struct {
	at  Time
	seq uint64
	fn  func() // nil for inline frame events

	// daemon marks background housekeeping (e.g. consensus heartbeat
	// and election timers) that perpetually re-arms itself: Run treats
	// a queue holding only daemon events as drained, so foreground
	// workloads still run to completion. Daemon events fire normally
	// whenever foreground work keeps the clock advancing.
	daemon bool

	// Inline frame event (when net is non-nil): evDeliver hands fr to
	// dev, evSend transmits fr out of dev's port, evDeliverBatch fires
	// a coalesced per-(device, tick) delivery batch.
	kind     uint8
	net      *Network
	dev      Device
	port     int
	fromName string // tracing (evDeliver)
	fr       Frame
	buf      FrameBuffer

	// Inline timer event (evTimer): fires tmr if it is still armed and
	// this event carries its current generation (Reset bumps gen, so
	// superseded firings become no-ops).
	tmr *Timer
	gen uint32

	// Inline batch event (evDeliverBatch).
	batch *deliveryBatch
}

// Inline frame-event kinds.
const (
	evFn uint8 = iota
	evDeliver
	evSend
	evTimer
	evDeliverBatch
)

// eventHeap is a binary min-heap of events ordered by (at, seq). The
// order is total (seq never repeats), so the pop sequence — and with
// it every simulation — is independent of the heap's internal layout.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (s *Sim) push(e event) {
	if !e.daemon {
		s.foreground++
	}
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.events = h
}

func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	if !top.daemon {
		s.foreground--
	}
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/frame references for the GC
	h = h[:n]
	s.events = h
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && h.less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// Sim is the event loop. It is single-threaded: device handlers run
// synchronously inside Run, which is what makes runs deterministic.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	// foreground counts queued non-daemon events — Run's stop
	// condition, so perpetual daemon timers cannot wedge a drain.
	foreground int

	processed uint64
}

// NewSim creates a simulator with a seeded random source.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's random source (deterministic per seed).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after d elapses (d < 0 is treated as 0).
func (s *Sim) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute time t (clamped to now).
func (s *Sim) ScheduleAt(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// scheduleFrame queues an inline frame event (closure-free hot path).
func (s *Sim) scheduleFrame(t Time, e event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at, e.seq = t, s.seq
	s.push(e)
}

// Timer is a cancellable scheduled callback. The callback and its
// pending firing are carried inline in the event queue (no closures),
// so arming a timer costs one allocation — the Timer itself — and
// re-arming via Reset costs none.
type Timer struct {
	stopped bool
	daemon  bool
	gen     uint32 // current arming generation; stale firings no-op
	fn      func()
	s       *Sim
}

// Stop cancels the timer; the callback will not run. It reports whether
// the call prevented a future firing.
func (t *Timer) Stop() bool {
	was := t.stopped
	t.stopped = true
	return !was
}

// Reset re-arms the timer to fire its callback after d, whether or
// not it already fired or was stopped, and reports whether a pending
// firing was superseded. It implements backend.ResettableTimer: the
// queued firing for the previous arming stays in the event heap but
// carries a stale generation, so it becomes a no-op. Reset consumes
// one sequence number, exactly like arming a fresh timer at the same
// instant — a Reset-based re-arm is bit-identical to Stop+AfterFunc.
func (t *Timer) Reset(d Duration) bool {
	pending := !t.stopped
	t.stopped = false
	t.gen++
	if d < 0 {
		d = 0
	}
	t.s.seq++
	t.s.push(event{at: t.s.now.Add(d), seq: t.s.seq, daemon: t.daemon,
		kind: evTimer, tmr: t, gen: t.gen})
	return pending
}

// arm allocates a timer and queues its inline firing event.
func (s *Sim) arm(d Duration, fn func(), daemon bool) *Timer {
	t := &Timer{daemon: daemon, fn: fn, s: s}
	if d < 0 {
		d = 0
	}
	s.seq++
	s.push(event{at: s.now.Add(d), seq: s.seq, daemon: daemon,
		kind: evTimer, tmr: t})
	return t
}

// AfterFunc schedules fn after d and returns a Timer that can cancel
// it. The concrete type is *netsim.Timer; the backend.Timer return
// type is what lets *Sim satisfy backend.Clock.
func (s *Sim) AfterFunc(d Duration, fn func()) backend.Timer {
	return s.arm(d, fn, false)
}

// AfterFuncDaemon is AfterFunc for background housekeeping that
// re-arms itself forever (consensus heartbeats, election timeouts).
// Daemon timers fire normally while foreground work keeps the
// simulation advancing, but Run does not wait for them: a queue
// holding only daemon events counts as drained. This implements
// backend.DaemonClock.
func (s *Sim) AfterFuncDaemon(d Duration, fn func()) backend.Timer {
	return s.arm(d, fn, true)
}

// Run processes events until no foreground event remains (daemon
// housekeeping timers do not count — see AfterFuncDaemon), returning
// the number processed.
func (s *Sim) Run() uint64 {
	start := s.processed
	for s.foreground > 0 {
		s.step()
	}
	return s.processed - start
}

// RunUntil processes events with timestamps <= t, then advances the
// clock to t. It returns the number of events processed.
func (s *Sim) RunUntil(t Time) uint64 {
	start := s.processed
	for s.events.Len() > 0 && s.events[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
	return s.processed - start
}

// RunFor is RunUntil(Now()+d).
func (s *Sim) RunFor(d Duration) uint64 { return s.RunUntil(s.now.Add(d)) }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }

// Step processes the single earliest pending event, reporting whether
// one existed. It is the primitive core.Await pumps while blocking on
// a future under the sim backend: progress one event at a time until
// the future resolves, without draining unrelated work.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	s.step()
	return true
}

func (s *Sim) step() {
	e := s.pop()
	if e.at > s.now {
		s.now = e.at
	}
	s.processed++
	switch e.kind {
	case evDeliver:
		e.net.deliver(e.fromName, e.dev, e.port, e.fr, e.buf)
	case evSend:
		e.net.SendBuf(e.dev, e.port, e.fr, e.buf)
	case evTimer:
		if t := e.tmr; !t.stopped && t.gen == e.gen {
			t.stopped = true
			t.fn()
		}
	case evDeliverBatch:
		e.net.deliverBatch(e.batch)
	default:
		e.fn()
	}
}
