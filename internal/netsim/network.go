package netsim

import (
	"errors"
	"fmt"

	"repro/internal/backend"
)

// Frame is a raw layer-2 frame (alias of the backend seam's Frame).
// Frames cross links as bytes — devices must parse them — so
// serialization costs are honest.
//
// Frames pass through the network zero-copy: once handed to Send the
// bytes are shared by every in-flight hop and must not be mutated.
// Receivers borrow the frame for the duration of Recv; anything kept
// longer must be copied (or retained, for pooled frames — see
// FrameBuffer).
type Frame = backend.Frame

// Device is anything attachable to the network: a host NIC or a switch
// (alias of backend.Device). Recv is called synchronously from the
// event loop when a frame arrives on one of the device's ports.
type Device = backend.Device

// FrameBuffer is implemented by recyclable frame buffers (see
// internal/dataplane; alias of backend.FrameBuffer). SendBuf consumes
// one reference per call: the network releases it when the frame is
// dropped, or after the final delivery upcall returns, so a buffer
// returns to its pool only after its last in-flight hop.
type FrameBuffer = backend.FrameBuffer

// BufReceiver is a Device that participates in buffer ownership:
// when a frame carries a FrameBuffer, RecvBuf is called instead of
// Recv so the device can Retain the buffer before scheduling onward
// transmissions of the same frame. The buffer is borrowed; the
// network releases its own reference after RecvBuf returns.
type BufReceiver interface {
	RecvBuf(port int, fr Frame, buf FrameBuffer)
}

// LinkConfig describes one link's characteristics.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency Duration
	// BitsPerSec is the transmission rate; 0 means infinite (no
	// serialization delay).
	BitsPerSec int64
	// DropRate is the probability in [0,1) that a frame is lost.
	DropRate float64
}

// DefaultLink approximates an in-rack 10GbE hop.
var DefaultLink = LinkConfig{Latency: 5 * Microsecond, BitsPerSec: 10_000_000_000}

type endpoint struct {
	dev  Device
	port int
}

type link struct {
	cfg LinkConfig
	a   endpoint
	b   endpoint
	// busy tracks per-direction transmitter availability for
	// serialization-delay queueing; index 0 = a→b, 1 = b→a.
	busy [2]Time
	// down silently drops all frames (failure injection).
	down bool
}

// Stats aggregates network-wide frame counters (alias of
// backend.NetStats so both backends report one shape).
type Stats = backend.NetStats

// TraceFunc observes every frame delivery attempt.
type TraceFunc func(ev TraceEvent)

// FrameSpanHook observes one link traversal with its full timing
// decomposition: the frame was handed to the link at sent, waited
// queued for the transmitter, serialized for tx, and arrives at
// arrival (meaningless when dropped). Installed by the tracing layer;
// the hook must not mutate fr, schedule events, or draw randomness.
type FrameSpanHook func(from, to string, fr Frame, sent Time,
	arrival Time, queued, tx Duration, dropped bool)

// FrameControl directs targeted perturbation of one frame in flight.
// The zero value leaves the frame untouched.
type FrameControl struct {
	// Drop discards the frame as if lost on the link.
	Drop bool
	// Dup delivers a second copy of the frame DupDelay after the first
	// arrival (0 = back-to-back). The duplicate counts as a sent frame.
	Dup      bool
	DupDelay Duration
	// Delay postpones delivery without occupying the transmitter —
	// in-network queueing beyond the link's own serialization.
	Delay Duration
}

// FrameControlHook inspects every frame that reaches a live link —
// after routing and the link's own loss draw, so installing a hook
// that returns the zero FrameControl keeps runs bit-identical — and
// returns targeted perturbations (drop/duplicate/delay). The schedule
// explorer uses this to probe delivery orders the random seed alone
// would never produce. The hook must not mutate fr or draw randomness.
type FrameControlHook func(from, to string, fr Frame) FrameControl

// TraceEvent describes one frame hop for debugging and tests.
type TraceEvent struct {
	At      Time
	From    string
	To      string
	Port    int
	Bytes   int
	Dropped bool
}

// Network wires devices together and moves frames between them on the
// simulator's clock.
type Network struct {
	sim      *Sim
	devices  map[Device]*devState
	stats    Stats
	trace    TraceFunc
	spanHook FrameSpanHook
	ctlHook  FrameControlHook

	// batching coalesces all frames arriving at one host in the same
	// virtual tick into a single doorbell event (off by default; when
	// off, same-seed runs are bit-identical to the per-frame schedule).
	batching bool
	// hostRxCost models the per-wakeup receive-processing cost at a
	// host NIC (interrupt + driver + socket wakeup). 0 (the default)
	// adds nothing. With batching on, a whole batch pays it once —
	// that difference is what doorbell coalescing buys.
	hostRxCost Duration
	// batchFree recycles delivery-batch accumulators.
	batchFree []*deliveryBatch
	// batchesFired / batchedFrames count doorbell firings and the
	// frames they carried — batchedFrames > batchesFired means
	// coalescing actually happened (multi-frame batches formed).
	batchesFired  uint64
	batchedFrames uint64
}

type devState struct {
	name  string
	ports []*link // nil where unconnected
	host  *Host   // non-nil when the device is a Host (batch/rx-cost target)
	// rxFree is when the host's receive context is next available
	// (hostRxCost reservation model).
	rxFree Time
	// pending is the host's most recently armed delivery batch, nil
	// once its doorbell fires. Frames arriving no later than its fire
	// time ride along instead of arming a new doorbell.
	pending *deliveryBatch
}

// deliveryBatch accumulates the frames arriving at one host up to its
// doorbell's fire time; a single evDeliverBatch event delivers them
// all. This is the NIC ring model: the first frame raises the
// doorbell, later frames just land in the ring until the driver runs.
type deliveryBatch struct {
	ds     *devState
	fireAt Time // when the doorbell event runs
	items  []batchItem
	frs    []Frame // scratch views handed to the batched upcall
}

type batchItem struct {
	fromName string
	port     int
	fr       Frame
	buf      FrameBuffer
}

// Errors returned by topology construction.
var (
	ErrUnknownDevice = errors.New("netsim: device not registered")
	ErrBadPort       = errors.New("netsim: port out of range or already connected")
)

// NewNetwork creates a network on the given simulator.
func NewNetwork(sim *Sim) *Network {
	return &Network{sim: sim, devices: make(map[Device]*devState)}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *Sim { return n.sim }

// SetTrace installs a frame trace hook (nil to disable).
func (n *Network) SetTrace(fn TraceFunc) { n.trace = fn }

// SetFrameSpanHook installs a per-link-traversal timing hook (nil to
// disable). Unlike SetTrace it fires at send time with the computed
// queueing/serialization split, so span intervals are exact.
func (n *Network) SetFrameSpanHook(fn FrameSpanHook) { n.spanHook = fn }

// SetFrameControlHook installs a per-frame perturbation hook (nil to
// disable). It composes with SetTrace and SetFrameSpanHook.
func (n *Network) SetFrameControlHook(fn FrameControlHook) { n.ctlHook = fn }

// SetBatchDelivery enables (or disables) per-tick batched delivery to
// hosts: every frame arriving at one host in the same virtual tick is
// delivered by a single doorbell event, in arrival order, through the
// host's batched upcall when one is installed. Off by default; when
// off, the event schedule is bit-identical to the per-frame path.
func (n *Network) SetBatchDelivery(on bool) { n.batching = on }

// SetHostRxCost sets the modeled per-wakeup receive cost at hosts
// (default 0 = free). Each host-bound delivery occupies the host's
// receive context for d, queueing behind earlier wakeups; with batch
// delivery on, a whole same-tick batch pays d once.
func (n *Network) SetHostRxCost(d Duration) {
	if d < 0 {
		d = 0
	}
	n.hostRxCost = d
}

// Stats returns a copy of the frame counters.
func (n *Network) Stats() Stats { return n.stats }

// BatchStats reports how many delivery doorbells fired and how many
// frames they carried in total. Equal counts mean every batch was a
// singleton; frames > fired proves coalescing engaged.
func (n *Network) BatchStats() (fired, frames uint64) {
	return n.batchesFired, n.batchedFrames
}

// ResetStats zeroes the frame counters.
func (n *Network) ResetStats() { n.stats = Stats{} }

// AddDevice registers dev with numPorts ports.
func (n *Network) AddDevice(dev Device, numPorts int) error {
	if _, dup := n.devices[dev]; dup {
		return fmt.Errorf("netsim: device %q already added", dev.DevName())
	}
	if numPorts <= 0 {
		return fmt.Errorf("netsim: device %q needs at least one port", dev.DevName())
	}
	st := &devState{name: dev.DevName(), ports: make([]*link, numPorts)}
	if h, ok := dev.(*Host); ok {
		st.host = h
	}
	n.devices[dev] = st
	return nil
}

// Connect joins (devA, portA) to (devB, portB) with a full-duplex link.
func (n *Network) Connect(devA Device, portA int, devB Device, portB int, cfg LinkConfig) error {
	sa, ok := n.devices[devA]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, devA.DevName())
	}
	sb, ok := n.devices[devB]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, devB.DevName())
	}
	if portA < 0 || portA >= len(sa.ports) || sa.ports[portA] != nil {
		return fmt.Errorf("%w: %s port %d", ErrBadPort, sa.name, portA)
	}
	if portB < 0 || portB >= len(sb.ports) || sb.ports[portB] != nil {
		return fmt.Errorf("%w: %s port %d", ErrBadPort, sb.name, portB)
	}
	l := &link{cfg: cfg, a: endpoint{devA, portA}, b: endpoint{devB, portB}}
	sa.ports[portA] = l
	sb.ports[portB] = l
	return nil
}

// SetLinkDown fails (or restores) the link at (dev, port). While down,
// every frame in either direction is silently dropped — the partial
// failure §5 names as the foremost challenge. It reports whether a
// link was found.
func (n *Network) SetLinkDown(dev Device, port int, down bool) bool {
	s, ok := n.devices[dev]
	if !ok || port < 0 || port >= len(s.ports) || s.ports[port] == nil {
		return false
	}
	s.ports[port].down = down
	return true
}

// LinkDown reports whether the link at (dev, port) is failed.
func (n *Network) LinkDown(dev Device, port int) bool {
	s, ok := n.devices[dev]
	return ok && port >= 0 && port < len(s.ports) && s.ports[port] != nil && s.ports[port].down
}

// SetLinkLoss overrides the drop rate of the link at (dev, port) in
// both directions — a degraded (flapping, mis-negotiated, or
// congested) link rather than a dead one. It reports whether a link
// was found.
func (n *Network) SetLinkLoss(dev Device, port int, rate float64) bool {
	s, ok := n.devices[dev]
	if !ok || port < 0 || port >= len(s.ports) || s.ports[port] == nil {
		return false
	}
	s.ports[port].cfg.DropRate = rate
	return true
}

// LinkLoss returns the current drop rate of the link at (dev, port),
// or 0 if no link is present.
func (n *Network) LinkLoss(dev Device, port int) float64 {
	s, ok := n.devices[dev]
	if !ok || port < 0 || port >= len(s.ports) || s.ports[port] == nil {
		return 0
	}
	return s.ports[port].cfg.DropRate
}

// Peer returns the device and port on the far side of (dev, port)'s
// link, if connected. Control planes use this to compute routes.
func (n *Network) Peer(dev Device, port int) (Device, int, bool) {
	s, ok := n.devices[dev]
	if !ok || port < 0 || port >= len(s.ports) || s.ports[port] == nil {
		return nil, 0, false
	}
	l := s.ports[port]
	if l.a.dev == dev && l.a.port == port {
		return l.b.dev, l.b.port, true
	}
	return l.a.dev, l.a.port, true
}

// Connected reports whether the device's port has a link.
func (n *Network) Connected(dev Device, port int) bool {
	s, ok := n.devices[dev]
	return ok && port >= 0 && port < len(s.ports) && s.ports[port] != nil
}

// NumPorts returns the number of ports dev was registered with.
func (n *Network) NumPorts(dev Device) int {
	s, ok := n.devices[dev]
	if !ok {
		return 0
	}
	return len(s.ports)
}

// Send transmits fr out of dev's port without copying: the caller
// relinquishes the frame, which must not be mutated afterwards.
// Sending on an unconnected port silently discards the frame (like a
// cable pulled out), counted as a drop.
func (n *Network) Send(dev Device, port int, fr Frame) {
	n.SendBuf(dev, port, fr, nil)
}

// SendBuf is Send for pooled frames: buf (may be nil) is the frame's
// reference-counted buffer, of which one reference is consumed — the
// network releases it when the frame is dropped or after delivery.
func (n *Network) SendBuf(dev Device, port int, fr Frame, buf FrameBuffer) {
	n.stats.FramesSent++
	s, ok := n.devices[dev]
	if !ok || port < 0 || port >= len(s.ports) || s.ports[port] == nil {
		n.stats.FramesDropped++
		if buf != nil {
			buf.Release()
		}
		return
	}
	l := s.ports[port]
	if l.down {
		n.stats.FramesDropped++
		if buf != nil {
			buf.Release()
		}
		return
	}
	var dir int
	var dst endpoint
	if l.a.dev == dev && l.a.port == port {
		dir, dst = 0, l.b
	} else {
		dir, dst = 1, l.a
	}
	dstS := n.devices[dst.dev]

	// Serialization (transmission) delay with per-direction queueing.
	now := n.sim.Now()
	start := now
	if l.busy[dir] > start {
		start = l.busy[dir]
	}
	var txDelay Duration
	if l.cfg.BitsPerSec > 0 {
		txDelay = Duration(int64(len(fr)) * 8 * int64(Second) / l.cfg.BitsPerSec)
	}
	l.busy[dir] = start.Add(txDelay)
	arrival := l.busy[dir].Add(l.cfg.Latency)

	// Loss. The random draw happens before the control hook is
	// consulted so targeted perturbations never shift the seeded
	// stream consumed by later frames.
	lost := l.cfg.DropRate > 0 && n.sim.Rand().Float64() < l.cfg.DropRate
	var ctl FrameControl
	if n.ctlHook != nil {
		ctl = n.ctlHook(s.name, dstS.name, fr)
	}
	if ctl.Drop {
		lost = true
	}
	if ctl.Delay > 0 {
		arrival = arrival.Add(ctl.Delay)
	}
	if lost {
		n.stats.FramesDropped++
		if n.trace != nil {
			n.trace(TraceEvent{At: now, From: s.name, To: dstS.name,
				Port: dst.port, Bytes: len(fr), Dropped: true})
		}
		if n.spanHook != nil {
			n.spanHook(s.name, dstS.name, fr, now, arrival,
				start.Sub(now), txDelay, true)
		}
		if buf != nil {
			buf.Release()
		}
		return
	}
	if n.spanHook != nil {
		n.spanHook(s.name, dstS.name, fr, now, arrival,
			start.Sub(now), txDelay, false)
	}

	n.scheduleDelivery(arrival, s.name, dstS, dst, fr, buf)
	if ctl.Dup {
		n.stats.FramesSent++
		if buf != nil {
			buf.Retain()
		}
		dupAt := arrival
		if ctl.DupDelay > 0 {
			dupAt = dupAt.Add(ctl.DupDelay)
		}
		n.scheduleDelivery(dupAt, s.name, dstS, dst, fr, buf)
	}
}

// scheduleDelivery queues the arrival of one frame at (dstS, dst),
// applying the host receive-cost model and, when enabled, per-tick
// batch coalescing. With batching off and hostRxCost 0 this is
// exactly one evDeliver event at the raw arrival time — the
// bit-identical legacy schedule.
func (n *Network) scheduleDelivery(at Time, fromName string, dstS *devState,
	dst endpoint, fr Frame, buf FrameBuffer) {
	if dstS.host == nil || (!n.batching && n.hostRxCost == 0) {
		// Switches (and hosts with everything off) take the per-frame
		// path at the raw arrival time.
		n.sim.scheduleFrame(at, event{
			kind: evDeliver, net: n, dev: dst.dev, port: dst.port,
			fromName: fromName, fr: fr, buf: buf,
		})
		return
	}
	if !n.batching {
		// Per-frame wakeups: every frame occupies the host's receive
		// context for hostRxCost, queueing behind earlier wakeups.
		n.sim.scheduleFrame(n.reserveRx(dstS, at), event{
			kind: evDeliver, net: n, dev: dst.dev, port: dst.port,
			fromName: fromName, fr: fr, buf: buf,
		})
		return
	}
	// Batched: the first frame arms a doorbell at its (receive-cost
	// adjusted) delivery time; every frame arriving no later than that
	// fire time joins the same batch and pays nothing extra. Under
	// load the receive context falls behind arrivals, batches grow,
	// and the per-wakeup cost amortizes — exactly the doorbell-
	// coalescing effect E15 measures. Append order is send order (the
	// simulator's seq order) and per-link arrivals are monotone, so
	// per-link FIFO is preserved within and across batches (new
	// doorbells never fire before ones already armed: rxFree reserves
	// make fire times monotone per host).
	if b := dstS.pending; b != nil && at <= b.fireAt {
		b.items = append(b.items, batchItem{fromName, dst.port, fr, buf})
		return
	}
	b := n.getBatch()
	b.ds = dstS
	b.fireAt = n.reserveRx(dstS, at)
	b.items = append(b.items, batchItem{fromName, dst.port, fr, buf})
	dstS.pending = b
	n.sim.scheduleFrame(b.fireAt, event{
		kind: evDeliverBatch, net: n, batch: b,
	})
}

// reserveRx charges one wakeup against the host's receive context and
// returns when the delivery runs (identity when hostRxCost is 0).
func (n *Network) reserveRx(dstS *devState, at Time) Time {
	if n.hostRxCost == 0 {
		return at
	}
	start := at
	if dstS.rxFree > start {
		start = dstS.rxFree
	}
	at = start.Add(n.hostRxCost)
	dstS.rxFree = at
	return at
}

// getBatch draws a recycled batch accumulator (or a fresh one).
func (n *Network) getBatch() *deliveryBatch {
	if k := len(n.batchFree); k > 0 {
		b := n.batchFree[k-1]
		n.batchFree = n.batchFree[:k-1]
		return b
	}
	return &deliveryBatch{}
}

// deliverBatch fires one doorbell: the batch detaches from the host
// first (so sends processed after the doorbell arm a fresh one), then
// every accumulated frame is delivered in arrival order — through the
// host's batched upcall when installed, per-frame otherwise. Buffers
// release after the upcall returns, mirroring the per-frame path's
// borrow rules.
func (n *Network) deliverBatch(b *deliveryBatch) {
	ds := b.ds
	if ds.pending == b {
		ds.pending = nil
	}
	n.batchesFired++
	n.batchedFrames += uint64(len(b.items))
	h := ds.host
	if h != nil && h.OnFrameBatch != nil {
		for _, it := range b.items {
			n.stats.FramesDelivered++
			n.stats.BytesDelivered += uint64(len(it.fr))
			if n.trace != nil {
				n.trace(TraceEvent{At: n.sim.Now(), From: it.fromName,
					To: ds.name, Port: it.port, Bytes: len(it.fr)})
			}
			b.frs = append(b.frs, it.fr)
		}
		h.OnFrameBatch(b.frs)
		for _, it := range b.items {
			if it.buf != nil {
				it.buf.Release()
			}
		}
	} else {
		for _, it := range b.items {
			n.deliver(it.fromName, ds.host, it.port, it.fr, it.buf)
		}
	}
	b.ds = nil
	for i := range b.items {
		b.items[i] = batchItem{}
	}
	b.items = b.items[:0]
	for i := range b.frs {
		b.frs[i] = nil
	}
	b.frs = b.frs[:0]
	n.batchFree = append(n.batchFree, b)
}

// SendBufAfter is SendBuf delayed by d — the closure-free path for
// store-and-forward devices that emit after a pipeline delay.
func (n *Network) SendBufAfter(dev Device, port int, fr Frame, buf FrameBuffer, d Duration) {
	if d < 0 {
		d = 0
	}
	n.sim.scheduleFrame(n.sim.Now().Add(d), event{
		kind: evSend, net: n, dev: dev, port: port, fr: fr, buf: buf,
	})
}

// deliver hands an arrived frame to its destination device (the
// evDeliver event body).
func (n *Network) deliver(from string, dev Device, port int, fr Frame, buf FrameBuffer) {
	n.stats.FramesDelivered++
	n.stats.BytesDelivered += uint64(len(fr))
	if n.trace != nil {
		n.trace(TraceEvent{At: n.sim.Now(), From: from,
			To: n.devices[dev].name, Port: port, Bytes: len(fr)})
	}
	if br, ok := dev.(BufReceiver); ok && buf != nil {
		br.RecvBuf(port, fr, buf)
	} else {
		dev.Recv(port, fr)
	}
	if buf != nil {
		buf.Release()
	}
}

// Host is a single-port end station. Incoming frames are handed to
// OnFrame; outgoing frames go through Send. When batched delivery is
// enabled on the network and OnFrameBatch is installed, all frames
// arriving in one virtual tick are handed to OnFrameBatch in one call
// instead (in arrival order).
type Host struct {
	name         string
	net          *Network
	OnFrame      func(fr Frame)
	OnFrameBatch func(frs []Frame)
}

// NewHost creates a host and registers it with one port.
func NewHost(n *Network, name string) (*Host, error) {
	h := &Host{name: name, net: n}
	if err := n.AddDevice(h, 1); err != nil {
		return nil, err
	}
	return h, nil
}

// DevName implements Device.
func (h *Host) DevName() string { return h.name }

// Recv implements Device by dispatching to OnFrame.
func (h *Host) Recv(port int, fr Frame) {
	if h.OnFrame != nil {
		h.OnFrame(fr)
	}
}

// Send transmits a frame out the host's NIC.
func (h *Host) Send(fr Frame) { h.net.Send(h, 0, fr) }

// SendBuf transmits a pooled frame out the host's NIC, consuming one
// reference of buf.
func (h *Host) SendBuf(fr Frame, buf FrameBuffer) { h.net.SendBuf(h, 0, fr, buf) }

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// SetOnFrame implements backend.Link by installing the receive upcall.
func (h *Host) SetOnFrame(fn func(fr Frame)) { h.OnFrame = fn }

// SetOnFrameBatch implements backend.BatchLink by installing the
// batched receive upcall. It only takes effect when the network's
// batched delivery is enabled; otherwise frames keep arriving one
// OnFrame upcall at a time.
func (h *Host) SetOnFrameBatch(fn func(frs []Frame)) { h.OnFrameBatch = fn }

// Clock implements backend.Link: a sim host's timers run on the
// simulator's virtual clock.
func (h *Host) Clock() backend.Clock { return h.net.sim }

// Exec implements backend.Link. The simulation is single-threaded and
// Exec is only legal from outside the event context, so fn runs
// inline.
func (h *Host) Exec(fn func()) { fn() }

// MTU implements backend.Link: simulated links carry frames of any
// size in one piece. Returning 0 (no limit) keeps fragment sizing —
// and with it every seeded run — bit-identical to the pre-seam code.
func (h *Host) MTU() int { return 0 }
