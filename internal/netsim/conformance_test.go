package netsim_test

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/backend/conformance"
	"repro/internal/netsim"
)

// simFixture builds the standard two-host direct-link fixture;
// batched turns on doorbell-coalesced delivery with a host receive
// cost wide enough that back-to-back sends land in one batch.
func simFixture(t *testing.T, batched bool) *conformance.Fixture {
	sim := netsim.NewSim(1)
	net := netsim.NewNetwork(sim)
	if batched {
		net.SetBatchDelivery(true)
		net.SetHostRxCost(10 * netsim.Microsecond)
	}
	a, err := netsim.NewHost(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewHost(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(a, 0, b, 0, netsim.LinkConfig{
		Latency:    2 * netsim.Microsecond,
		BitsPerSec: 10_000_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	return &conformance.Fixture{
		A: a, B: b,
		StA: 1, StB: 2,
		Settle: func(d backend.Duration) { sim.RunFor(d) },
	}
}

// TestBackendConformance runs the shared backend contract suite
// against the simulator: two hosts on a direct link with the default
// sim-scale latency.
func TestBackendConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Fixture {
		return simFixture(t, false)
	})
}

// TestBackendConformanceBatched reruns the full contract suite with
// doorbell-coalesced delivery enabled — the per-frame upcall must
// keep working when no batch handler is installed — and then the
// batch contracts (FIFO within and across batches, refcount balance
// through the batch upcall, coalescing actually engaging).
func TestBackendConformanceBatched(t *testing.T) {
	mk := func(t *testing.T) *conformance.Fixture { return simFixture(t, true) }
	conformance.Run(t, mk)
	conformance.RunBatched(t, mk)
}
