package netsim_test

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/backend/conformance"
	"repro/internal/netsim"
)

// TestBackendConformance runs the shared backend contract suite
// against the simulator: two hosts on a direct link with the default
// sim-scale latency.
func TestBackendConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Fixture {
		sim := netsim.NewSim(1)
		net := netsim.NewNetwork(sim)
		a, err := netsim.NewHost(net, "a")
		if err != nil {
			t.Fatal(err)
		}
		b, err := netsim.NewHost(net, "b")
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(a, 0, b, 0, netsim.LinkConfig{
			Latency:    2 * netsim.Microsecond,
			BitsPerSec: 10_000_000_000,
		}); err != nil {
			t.Fatal(err)
		}
		return &conformance.Fixture{
			A: a, B: b,
			StA: 1, StB: 2,
			Settle: func(d backend.Duration) { sim.RunFor(d) },
		}
	})
}
