package netsim

import (
	"testing"
)

func twoHosts(t *testing.T, cfg LinkConfig) (*Sim, *Network, *Host, *Host) {
	t.Helper()
	sim := NewSim(1)
	net := NewNetwork(sim)
	a, err := NewHost(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHost(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(a, 0, b, 0, cfg); err != nil {
		t.Fatal(err)
	}
	return sim, net, a, b
}

func TestFrameDelivery(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{Latency: 10 * Microsecond})
	var got Frame
	var at Time
	b.OnFrame = func(fr Frame) { got = fr; at = sim.Now() }
	a.Send(Frame("hello"))
	sim.Run()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if at != Time(10*Microsecond) {
		t.Fatalf("arrival at %d, want %d", at, 10*Microsecond)
	}
	st := net.Stats()
	if st.FramesDelivered != 1 || st.BytesDelivered != 5 || st.FramesSent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFrameZeroCopyOnSend(t *testing.T) {
	// The network forwards frame bytes without copying: the caller
	// relinquishes the frame at Send, so the receiver sees the same
	// backing array (this is what makes pooled buffers worthwhile).
	sim, _, a, b := twoHosts(t, LinkConfig{})
	var got Frame
	b.OnFrame = func(fr Frame) { got = fr }
	buf := Frame("original")
	a.Send(buf)
	sim.Run()
	if string(got) != "original" {
		t.Fatalf("got %q", got)
	}
	if &got[0] != &buf[0] {
		t.Fatal("frame was copied; Send is documented zero-copy")
	}
}

type refBuf struct {
	refs     int
	released int
}

func (r *refBuf) Retain()  { r.refs++ }
func (r *refBuf) Release() { r.refs--; r.released++ }

func TestSendBufReleasesAfterDelivery(t *testing.T) {
	sim, _, a, b := twoHosts(t, LinkConfig{})
	delivered := false
	b.OnFrame = func(Frame) { delivered = true }
	rb := &refBuf{refs: 1}
	a.SendBuf(Frame("x"), rb)
	sim.Run()
	if !delivered {
		t.Fatal("frame not delivered")
	}
	if rb.refs != 0 || rb.released != 1 {
		t.Fatalf("refs = %d, released = %d; want 0, 1", rb.refs, rb.released)
	}
}

func TestSendBufReleasesOnDrop(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{})
	b.OnFrame = func(Frame) { t.Fatal("delivered over a down link") }
	net.SetLinkDown(a, 0, true)
	rb := &refBuf{refs: 1}
	a.SendBuf(Frame("x"), rb)
	sim.Run()
	if rb.refs != 0 || rb.released != 1 {
		t.Fatalf("refs = %d, released = %d; want 0, 1", rb.refs, rb.released)
	}
}

func TestTransmissionDelay(t *testing.T) {
	// 1000 bytes at 1 Gb/s = 8 µs of serialization + 2 µs latency.
	sim, _, a, b := twoHosts(t, LinkConfig{Latency: 2 * Microsecond, BitsPerSec: 1_000_000_000})
	var at Time
	b.OnFrame = func(Frame) { at = sim.Now() }
	a.Send(make(Frame, 1000))
	sim.Run()
	if at != Time(10*Microsecond) {
		t.Fatalf("arrival at %v, want 10µs", Duration(at))
	}
}

func TestQueueingSerializesFrames(t *testing.T) {
	// Two back-to-back 1000-byte frames: second waits for the first
	// transmitter slot. Arrivals at 10µs and 18µs.
	sim, _, a, b := twoHosts(t, LinkConfig{Latency: 2 * Microsecond, BitsPerSec: 1_000_000_000})
	var arrivals []Time
	b.OnFrame = func(Frame) { arrivals = append(arrivals, sim.Now()) }
	a.Send(make(Frame, 1000))
	a.Send(make(Frame, 1000))
	sim.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != Time(10*Microsecond) || arrivals[1] != Time(18*Microsecond) {
		t.Fatalf("arrivals = %v, want [10µs 18µs]", arrivals)
	}
}

func TestFullDuplexIndependentDirections(t *testing.T) {
	// Frames in opposite directions must not queue behind each other.
	sim, _, a, b := twoHosts(t, LinkConfig{Latency: 2 * Microsecond, BitsPerSec: 1_000_000_000})
	var atA, atB Time
	a.OnFrame = func(Frame) { atA = sim.Now() }
	b.OnFrame = func(Frame) { atB = sim.Now() }
	a.Send(make(Frame, 1000))
	b.Send(make(Frame, 1000))
	sim.Run()
	if atA != atB || atA != Time(10*Microsecond) {
		t.Fatalf("duplex arrivals: a=%v b=%v", Duration(atA), Duration(atB))
	}
}

func TestBidirectional(t *testing.T) {
	sim, _, a, b := twoHosts(t, LinkConfig{Latency: 5 * Microsecond})
	var rtt Time
	b.OnFrame = func(fr Frame) { b.Send(Frame("pong")) }
	a.OnFrame = func(fr Frame) { rtt = sim.Now() }
	a.Send(Frame("ping"))
	sim.Run()
	if rtt != Time(10*Microsecond) {
		t.Fatalf("rtt = %v", Duration(rtt))
	}
}

func TestDrop(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{DropRate: 1.0})
	delivered := false
	b.OnFrame = func(Frame) { delivered = true }
	a.Send(Frame("x"))
	sim.Run()
	if delivered {
		t.Fatal("frame delivered despite 100% drop")
	}
	if net.Stats().FramesDropped != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestPartialLossRate(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{DropRate: 0.5})
	delivered := 0
	b.OnFrame = func(Frame) { delivered++ }
	const n = 2000
	for i := 0; i < n; i++ {
		a.Send(Frame("x"))
	}
	sim.Run()
	if delivered < n/3 || delivered > 2*n/3 {
		t.Fatalf("delivered %d/%d at 50%% loss", delivered, n)
	}
	st := net.Stats()
	if st.FramesDelivered+st.FramesDropped != n {
		t.Fatalf("delivered+dropped = %d", st.FramesDelivered+st.FramesDropped)
	}
}

func TestUnconnectedPortDiscards(t *testing.T) {
	sim := NewSim(1)
	net := NewNetwork(sim)
	a, _ := NewHost(net, "a")
	a.Send(Frame("into the void"))
	sim.Run()
	if net.Stats().FramesDropped != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestConnectErrors(t *testing.T) {
	sim := NewSim(1)
	net := NewNetwork(sim)
	a, _ := NewHost(net, "a")
	b, _ := NewHost(net, "b")
	outsider := &Host{name: "x"}
	if err := net.Connect(outsider, 0, b, 0, LinkConfig{}); err == nil {
		t.Fatal("Connect accepted unregistered device")
	}
	if err := net.Connect(a, 5, b, 0, LinkConfig{}); err == nil {
		t.Fatal("Connect accepted bad port")
	}
	if err := net.Connect(a, 0, b, 0, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(a, 0, b, 0, LinkConfig{}); err == nil {
		t.Fatal("Connect accepted already-connected port")
	}
	if err := net.AddDevice(a, 1); err == nil {
		t.Fatal("AddDevice accepted duplicate")
	}
	if err := net.AddDevice(outsider, 0); err == nil {
		t.Fatal("AddDevice accepted zero ports")
	}
}

func TestConnectedAndNumPorts(t *testing.T) {
	_, net, a, b := twoHosts(t, LinkConfig{})
	if !net.Connected(a, 0) || !net.Connected(b, 0) {
		t.Fatal("Connected = false for wired port")
	}
	if net.Connected(a, 1) {
		t.Fatal("Connected = true for bad port")
	}
	if net.NumPorts(a) != 1 {
		t.Fatalf("NumPorts = %d", net.NumPorts(a))
	}
	if net.NumPorts(&Host{name: "z"}) != 0 {
		t.Fatal("NumPorts for unknown device != 0")
	}
}

func TestLinkFailureInjection(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{Latency: Microsecond})
	delivered := 0
	b.OnFrame = func(Frame) { delivered++ }
	if !net.SetLinkDown(a, 0, true) {
		t.Fatal("SetLinkDown returned false")
	}
	if !net.LinkDown(a, 0) || !net.LinkDown(b, 0) {
		t.Fatal("LinkDown state not visible from both ends")
	}
	a.Send(Frame("lost"))
	b.Send(Frame("also lost"))
	sim.Run()
	if delivered != 0 {
		t.Fatal("frames crossed a failed link")
	}
	if net.Stats().FramesDropped != 2 {
		t.Fatalf("drops = %d", net.Stats().FramesDropped)
	}
	// Restore and verify traffic flows again.
	net.SetLinkDown(a, 0, false)
	a.Send(Frame("back"))
	sim.Run()
	if delivered != 1 {
		t.Fatal("restored link did not deliver")
	}
	// Unknown ports report false.
	if net.SetLinkDown(a, 9, true) || net.LinkDown(a, 9) {
		t.Fatal("bogus port accepted")
	}
}

func TestTraceHook(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{Latency: Microsecond})
	var evs []TraceEvent
	net.SetTrace(func(ev TraceEvent) { evs = append(evs, ev) })
	b.OnFrame = func(Frame) {}
	a.Send(Frame("abc"))
	sim.Run()
	if len(evs) != 1 {
		t.Fatalf("trace events = %d", len(evs))
	}
	ev := evs[0]
	if ev.From != "a" || ev.To != "b" || ev.Bytes != 3 || ev.Dropped {
		t.Fatalf("trace = %+v", ev)
	}
}

func TestResetStats(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{})
	b.OnFrame = func(Frame) {}
	a.Send(Frame("x"))
	sim.Run()
	net.ResetStats()
	if net.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", net.Stats())
	}
}

// relayDevice forwards every frame from port 0 to port 1 and vice
// versa, to exercise multi-port devices.
type relayDevice struct {
	name string
	net  *Network
}

func (r *relayDevice) DevName() string { return r.name }
func (r *relayDevice) Recv(port int, fr Frame) {
	r.net.Send(r, 1-port, fr)
}

func TestMultiHop(t *testing.T) {
	sim := NewSim(1)
	net := NewNetwork(sim)
	a, _ := NewHost(net, "a")
	b, _ := NewHost(net, "b")
	relay := &relayDevice{name: "r", net: net}
	net.AddDevice(relay, 2)
	cfg := LinkConfig{Latency: 3 * Microsecond}
	if err := net.Connect(a, 0, relay, 0, cfg); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(relay, 1, b, 0, cfg); err != nil {
		t.Fatal(err)
	}
	var at Time
	b.OnFrame = func(Frame) { at = sim.Now() }
	a.Send(Frame("via relay"))
	sim.Run()
	if at != Time(6*Microsecond) {
		t.Fatalf("two-hop arrival at %v", Duration(at))
	}
}

func BenchmarkFrameDelivery(b *testing.B) {
	sim := NewSim(1)
	net := NewNetwork(sim)
	h1, _ := NewHost(net, "a")
	h2, _ := NewHost(net, "b")
	net.Connect(h1, 0, h2, 0, DefaultLink)
	h2.OnFrame = func(Frame) {}
	fr := make(Frame, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h1.Send(fr)
		sim.Run()
	}
}

func TestFrameControlDrop(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{})
	delivered := 0
	b.OnFrame = func(Frame) { delivered++ }
	count := 0
	net.SetFrameControlHook(func(from, to string, fr Frame) FrameControl {
		count++
		return FrameControl{Drop: count == 2} // drop only the second frame
	})
	rb := &refBuf{refs: 1}
	a.Send(Frame("one"))
	a.SendBuf(Frame("two"), rb)
	a.Send(Frame("three"))
	sim.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if net.Stats().FramesDropped != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
	if rb.refs != 0 || rb.released != 1 {
		t.Fatalf("dropped frame's buffer: refs=%d released=%d", rb.refs, rb.released)
	}
}

func TestFrameControlDup(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{Latency: 10 * Microsecond})
	var arrivals []Time
	b.OnFrame = func(Frame) { arrivals = append(arrivals, sim.Now()) }
	net.SetFrameControlHook(func(from, to string, fr Frame) FrameControl {
		return FrameControl{Dup: true, DupDelay: 3 * Microsecond}
	})
	rb := &refBuf{refs: 1}
	a.SendBuf(Frame("x"), rb)
	sim.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v, want 2 deliveries", arrivals)
	}
	if arrivals[0] != Time(10*Microsecond) || arrivals[1] != Time(13*Microsecond) {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// One Retain for the duplicate, both deliveries release.
	if rb.refs != 0 {
		t.Fatalf("buffer refs = %d after dup delivery", rb.refs)
	}
	st := net.Stats()
	if st.FramesSent != 2 || st.FramesDelivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFrameControlDelayReorders(t *testing.T) {
	sim, net, a, b := twoHosts(t, LinkConfig{Latency: 10 * Microsecond})
	var order []string
	b.OnFrame = func(fr Frame) { order = append(order, string(fr)) }
	net.SetFrameControlHook(func(from, to string, fr Frame) FrameControl {
		if string(fr) == "first" {
			return FrameControl{Delay: 5 * Microsecond}
		}
		return FrameControl{}
	})
	a.Send(Frame("first"))
	a.Send(Frame("second"))
	sim.Run()
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("order = %v, want [second first]", order)
	}
}

func TestFrameControlZeroValueNoPerturbation(t *testing.T) {
	// An installed hook returning the zero FrameControl must leave the
	// run bit-identical — including the seeded loss stream.
	run := func(hook bool) []Time {
		sim, net, a, b := twoHosts(t, LinkConfig{Latency: 3 * Microsecond, DropRate: 0.3})
		if hook {
			net.SetFrameControlHook(func(string, string, Frame) FrameControl {
				return FrameControl{}
			})
		}
		var arrivals []Time
		b.OnFrame = func(Frame) { arrivals = append(arrivals, sim.Now()) }
		for i := 0; i < 50; i++ {
			a.Send(make(Frame, 100))
		}
		sim.Run()
		return arrivals
	}
	base, hooked := run(false), run(true)
	if len(base) != len(hooked) {
		t.Fatalf("delivery count changed: %d vs %d", len(base), len(hooked))
	}
	for i := range base {
		if base[i] != hooked[i] {
			t.Fatalf("arrival %d changed: %v vs %v", i, base[i], hooked[i])
		}
	}
}
