package netsim_test

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// TestBatchedDeliveryBufBalance is the Buf-leak regression for the
// doorbell path: pooled frames stream through batched delivery while
// the frame-control hook drops, duplicates, and delays a slice of them
// — every early-return in the batch machinery (drop before delivery,
// dup's extra reference, a delayed frame joining a later doorbell)
// must keep the refcount ledger balanced at quiescence.
func TestBatchedDeliveryBufBalance(t *testing.T) {
	base := dataplane.LiveBufs()
	sim := netsim.NewSim(3)
	net := netsim.NewNetwork(sim)
	net.SetBatchDelivery(true)
	net.SetHostRxCost(5 * netsim.Microsecond)
	a, err := netsim.NewHost(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewHost(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(a, 0, b, 0, netsim.LinkConfig{
		Latency:    2 * netsim.Microsecond,
		BitsPerSec: 1_000_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	b.SetOnFrameBatch(func(frs []netsim.Frame) { delivered += len(frs) })

	sent := 0
	net.SetFrameControlHook(func(_, _ string, fr netsim.Frame) netsim.FrameControl {
		sent++
		switch {
		case sent%5 == 0:
			return netsim.FrameControl{Drop: true}
		case sent%7 == 0:
			return netsim.FrameControl{Dup: true}
		case sent%3 == 0:
			return netsim.FrameControl{Delay: 50 * netsim.Microsecond}
		}
		return netsim.FrameControl{}
	})

	const n = 100
	for i := uint64(0); i < n; i++ {
		h := wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2, Seq: i}
		buf, err := dataplane.EncodeFrame(&h, []byte("batched-leak-probe"))
		if err != nil {
			t.Fatal(err)
		}
		a.SendBuf(buf.Bytes(), buf)
	}
	sim.Run()

	if delivered == 0 {
		t.Fatal("no frames delivered through the batch upcall")
	}
	if fired, frames := net.BatchStats(); frames <= fired {
		t.Fatalf("no coalescing: %d doorbells carried %d frames", fired, frames)
	}
	if live := dataplane.LiveBufs(); live != base {
		t.Fatalf("LiveBufs = %d at quiescence, baseline %d — the batch path leaked or double-released", live, base)
	}
}
