package transport

import (
	"errors"
	"testing"

	"repro/internal/backend"
	"repro/internal/gasperr"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// pair wires two endpoints over one link.
func pair(t *testing.T, link netsim.LinkConfig, cfg Config) (*netsim.Sim, *Endpoint, *Endpoint) {
	t.Helper()
	sim := netsim.NewSim(11)
	net := netsim.NewNetwork(sim)
	ha, err := netsim.NewHost(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := netsim.NewHost(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(ha, 0, hb, 0, link); err != nil {
		t.Fatal(err)
	}
	return sim, NewEndpoint(ha, 1, cfg), NewEndpoint(hb, 2, cfg)
}

func TestUnreliableDelivery(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{Latency: 5 * netsim.Microsecond}, Config{})
	var got []byte
	b.SetHandler(func(h *wire.Header, payload []byte) {
		got = append([]byte(nil), payload...)
	})
	seq, err := a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte("data"))
	if err != nil || seq == 0 {
		t.Fatalf("Send: seq=%d err=%v", seq, err)
	}
	sim.Run()
	if string(got) != "data" {
		t.Fatalf("got %q", got)
	}
	if b.Counters().Delivered != 1 {
		t.Fatalf("Delivered = %d", b.Counters().Delivered)
	}
}

func TestWrongDestinationIgnored(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{}, Config{})
	called := false
	b.SetHandler(func(*wire.Header, []byte) { called = true })
	a.Send(wire.Header{Type: wire.MsgMem, Dst: 42}, nil)
	sim.Run()
	if called {
		t.Fatal("frame for another station delivered")
	}
}

func TestBroadcastDelivered(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{}, Config{})
	called := false
	b.SetHandler(func(*wire.Header, []byte) { called = true })
	a.Send(wire.Header{Type: wire.MsgDiscover, Dst: wire.StationBroadcast}, nil)
	sim.Run()
	if !called {
		t.Fatal("broadcast not delivered")
	}
	if a.Counters().Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d", a.Counters().Broadcasts)
	}
}

func TestReliableAck(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{Latency: 5 * netsim.Microsecond}, Config{})
	b.SetHandler(func(*wire.Header, []byte) {})
	var ackErr error
	acked := false
	a.SendReliable(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte("x"), func(err error) {
		acked, ackErr = true, err
	})
	sim.Run()
	if !acked || ackErr != nil {
		t.Fatalf("acked=%v err=%v", acked, ackErr)
	}
	if a.PendingFrames() != 0 {
		t.Fatalf("PendingFrames = %d", a.PendingFrames())
	}
	if a.Counters().Retransmits != 0 {
		t.Fatalf("Retransmits = %d on clean link", a.Counters().Retransmits)
	}
	if b.Counters().AcksSent != 1 || a.Counters().AcksReceived != 1 {
		t.Fatalf("acks: sent=%d received=%d", b.Counters().AcksSent, a.Counters().AcksReceived)
	}
}

func TestReliableBroadcastRejected(t *testing.T) {
	_, a, _ := pair(t, netsim.LinkConfig{}, Config{})
	if _, err := a.SendReliable(wire.Header{Dst: wire.StationBroadcast}, nil, nil); err == nil {
		t.Fatal("reliable broadcast accepted")
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	// 60% loss: retries should still get the frame through eventually.
	sim, a, b := pair(t, netsim.LinkConfig{Latency: 5 * netsim.Microsecond, DropRate: 0.6},
		Config{
			RetransmitTimeout:    50 * netsim.Microsecond,
			Backoff:              1.5,
			MaxRetransmitTimeout: 200 * netsim.Microsecond,
			RetryBudget:          10 * netsim.Millisecond,
		})
	delivered := 0
	b.SetHandler(func(*wire.Header, []byte) { delivered++ })
	var ackErr error
	a.SendReliable(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte("x"), func(err error) { ackErr = err })
	sim.Run()
	if ackErr != nil {
		t.Fatalf("ack error: %v", ackErr)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d times (dedup should collapse retries)", delivered)
	}
	if a.Counters().Retransmits == 0 {
		t.Fatal("no retransmits under 60% loss")
	}
}

func TestRetriesExhausted(t *testing.T) {
	sim, a, _ := pair(t, netsim.LinkConfig{DropRate: 1.0},
		Config{RetransmitTimeout: 10 * netsim.Microsecond, RetryBudget: 100 * netsim.Microsecond})
	var got error
	a.SendReliable(wire.Header{Type: wire.MsgMem, Dst: 2}, nil, func(err error) { got = err })
	sim.Run()
	if !errors.Is(got, ErrRetriesOut) {
		t.Fatalf("err = %v", got)
	}
	if a.PendingFrames() != 0 {
		t.Fatal("pending frame leaked")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Drop the ack path only cannot be configured per direction, so
	// simulate duplicates by hand: send the same encoded frame twice.
	sim, _, b := pair(t, netsim.LinkConfig{}, Config{})
	sim2 := sim // same network
	_ = sim2
	delivered := 0
	b.SetHandler(func(*wire.Header, []byte) { delivered++ })
	h := wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2, Seq: 77, Flags: wire.FlagReliable}
	fr, _ := wire.Encode(&h, nil)
	// Inject via b's host directly (bypassing endpoint a).
	b.onFrame(fr)
	b.onFrame(fr)
	sim.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if b.Counters().Duplicates != 1 {
		t.Fatalf("Duplicates = %d", b.Counters().Duplicates)
	}
	// Duplicate still acked so the sender can stop retrying.
	if b.Counters().AcksSent != 2 {
		t.Fatalf("AcksSent = %d, want 2", b.Counters().AcksSent)
	}
}

func TestRequestResponse(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{Latency: 5 * netsim.Microsecond}, Config{})
	b.SetHandler(func(h *wire.Header, payload []byte) {
		b.Respond(h, wire.Header{Type: wire.MsgMem}, append([]byte("re:"), payload...))
	})
	var got []byte
	var gotErr error
	start := sim.Now()
	var rttEnd netsim.Time
	a.Request(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte("q"), 0,
		func(resp *wire.Header, payload []byte, err error) {
			got, gotErr = append([]byte(nil), payload...), err
			rttEnd = sim.Now()
		})
	sim.Run()
	if gotErr != nil || string(got) != "re:q" {
		t.Fatalf("resp = %q, %v", got, gotErr)
	}
	if rtt := rttEnd.Sub(start); rtt != 10*netsim.Microsecond {
		t.Fatalf("rtt = %v", rtt)
	}
	if a.PendingRequests() != 0 {
		t.Fatal("request leaked")
	}
}

func TestRequestTimeout(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{}, Config{RequestTimeout: 100 * netsim.Microsecond})
	b.SetHandler(func(*wire.Header, []byte) { /* never respond */ })
	var got error
	a.Request(wire.Header{Type: wire.MsgMem, Dst: 2}, nil, 0,
		func(_ *wire.Header, _ []byte, err error) { got = err })
	sim.Run()
	if !errors.Is(got, ErrTimeout) {
		t.Fatalf("err = %v", got)
	}
	if a.Counters().RequestTimeout != 1 {
		t.Fatalf("RequestTimeout = %d", a.Counters().RequestTimeout)
	}
}

func TestBroadcastRequestFirstResponseWins(t *testing.T) {
	// Three stations on a hub host (star via direct links is enough:
	// use b as the only responder; broadcast request still matches).
	sim, a, b := pair(t, netsim.LinkConfig{Latency: 2 * netsim.Microsecond}, Config{})
	b.SetHandler(func(h *wire.Header, payload []byte) {
		b.Respond(h, wire.Header{Type: wire.MsgDiscoverReply}, []byte("here"))
	})
	responses := 0
	a.Request(wire.Header{Type: wire.MsgDiscover, Dst: wire.StationBroadcast}, nil, 0,
		func(resp *wire.Header, payload []byte, err error) {
			if err == nil {
				responses++
			}
		})
	sim.Run()
	if responses != 1 {
		t.Fatalf("responses = %d", responses)
	}
}

func TestLateResponseDropped(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{Latency: 300 * netsim.Microsecond},
		Config{RequestTimeout: 100 * netsim.Microsecond, RetransmitTimeout: netsim.Second})
	b.SetHandler(func(h *wire.Header, payload []byte) {
		b.Respond(h, wire.Header{Type: wire.MsgMem}, nil)
	})
	calls := 0
	var firstErr error
	a.Request(wire.Header{Type: wire.MsgMem, Dst: 2}, nil, 0,
		func(_ *wire.Header, _ []byte, err error) {
			calls++
			firstErr = err
		})
	sim.Run()
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
	if !errors.Is(firstErr, ErrTimeout) {
		t.Fatalf("err = %v", firstErr)
	}
}

func TestSequenceNumbersUnique(t *testing.T) {
	_, a, _ := pair(t, netsim.LinkConfig{}, Config{})
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seq, err := a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[seq] {
			t.Fatalf("seq %d repeated", seq)
		}
		seen[seq] = true
	}
}

func TestCountersReset(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{}, Config{})
	b.SetHandler(func(*wire.Header, []byte) {})
	a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, nil)
	sim.Run()
	if a.Counters().FramesSent != 1 {
		t.Fatalf("FramesSent = %d", a.Counters().FramesSent)
	}
	a.ResetCounters()
	if a.Counters() != (Counters{}) {
		t.Fatal("ResetCounters")
	}
	if a.Station() != 1 || a.Clock() != backend.Clock(sim) {
		t.Fatal("accessors")
	}
}

func TestManyReliableFramesUnderLoss(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{Latency: 3 * netsim.Microsecond, DropRate: 0.3},
		Config{
			RetransmitTimeout:    40 * netsim.Microsecond,
			Backoff:              1.5,
			MaxRetransmitTimeout: 300 * netsim.Microsecond,
			RetryBudget:          20 * netsim.Millisecond,
		})
	delivered := 0
	b.SetHandler(func(*wire.Header, []byte) { delivered++ })
	failures := 0
	const n = 200
	for i := 0; i < n; i++ {
		a.SendReliable(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte{byte(i)}, func(err error) {
			if err != nil {
				failures++
			}
		})
	}
	sim.Run()
	if failures != 0 {
		t.Fatalf("%d reliable sends failed", failures)
	}
	if delivered != n {
		t.Fatalf("delivered %d/%d (duplicates must be suppressed)", delivered, n)
	}
}

func TestEndpointSurvivesGarbageFrames(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{}, Config{})
	delivered := 0
	b.SetHandler(func(*wire.Header, []byte) { delivered++ })
	rng := newTestRand()
	// Inject garbage straight into b's receive path.
	for i := 0; i < 500; i++ {
		n := rng.Intn(200)
		fr := make([]byte, n)
		rng.Read(fr)
		b.onFrame(fr)
	}
	// Valid traffic still flows.
	a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte("ok"))
	sim.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after garbage", delivered)
	}
}

func TestAckForUnknownSeqIgnored(t *testing.T) {
	sim, _, b := pair(t, netsim.LinkConfig{}, Config{})
	// Acks for sequence numbers b never sent must be ignored.
	for seq := uint64(1); seq < 50; seq++ {
		h := wire.Header{Type: wire.MsgAck, Src: 1, Dst: 2, Ack: seq}
		fr, _ := wire.Encode(&h, nil)
		b.onFrame(fr)
	}
	sim.Run()
	if b.Counters().AcksReceived != 49 {
		t.Fatalf("AcksReceived = %d", b.Counters().AcksReceived)
	}
	if b.PendingFrames() != 0 {
		t.Fatal("phantom pending state")
	}
}

func TestResponseWithoutRequestDropped(t *testing.T) {
	sim, _, b := pair(t, netsim.LinkConfig{}, Config{})
	handled := 0
	b.SetHandler(func(*wire.Header, []byte) { handled++ })
	h := wire.Header{
		Type: wire.MsgMem, Flags: wire.FlagResponse,
		Src: 1, Dst: 2, Seq: 5, Ack: 999,
	}
	fr, _ := wire.Encode(&h, []byte("orphan"))
	b.onFrame(fr)
	sim.Run()
	if handled != 0 {
		t.Fatal("orphan response reached the handler")
	}
}

func newTestRand() *mathRand { return &mathRand{state: 0x9E3779B97F4A7C15} }

// mathRand is a tiny deterministic source so the test avoids pulling
// in math/rand just for fuzz bytes.
type mathRand struct{ state uint64 }

func (r *mathRand) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}
func (r *mathRand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
func (r *mathRand) Read(p []byte) {
	for i := range p {
		p[i] = byte(r.next())
	}
}

func BenchmarkRequestResponse(b *testing.B) {
	sim := netsim.NewSim(1)
	net := netsim.NewNetwork(sim)
	ha, _ := netsim.NewHost(net, "a")
	hb, _ := netsim.NewHost(net, "b")
	net.Connect(ha, 0, hb, 0, netsim.DefaultLink)
	ea := NewEndpoint(ha, 1, Config{})
	eb := NewEndpoint(hb, 2, Config{})
	eb.SetHandler(func(h *wire.Header, payload []byte) {
		eb.Respond(h, wire.Header{Type: wire.MsgMem}, payload)
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ea.Request(wire.Header{Type: wire.MsgMem, Dst: 2}, nil, 0,
			func(*wire.Header, []byte, error) {})
		sim.Run()
	}
}

func TestBackoffBridgesLossBursts(t *testing.T) {
	// A reliable frame sent into a dead link survives any outage
	// shorter than the retry budget, and exponential backoff keeps the
	// probe count logarithmic in the outage length. Outages longer
	// than the budget fail with ErrRetriesOut.
	cfg := Config{
		RetransmitTimeout:    100 * netsim.Microsecond,
		Backoff:              2.0,
		MaxRetransmitTimeout: 2 * netsim.Millisecond,
		RetryBudget:          5 * netsim.Millisecond,
	}
	cases := []struct {
		name           string
		burst          netsim.Duration // outage length from t=0
		wantOK         bool
		maxRetransmits uint64
	}{
		{"no-burst", 0, true, 0},
		{"short-burst", 500 * netsim.Microsecond, true, 4},
		// 100+200+400+800 = 1.5ms of probes bridge a 1.4ms outage; a
		// fixed 100µs interval would have burned 14 probes, backoff
		// needs 4.
		{"medium-burst", 1400 * netsim.Microsecond, true, 5},
		{"burst-exceeds-budget", 8 * netsim.Millisecond, false, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := netsim.NewSim(11)
			net := netsim.NewNetwork(sim)
			ha, _ := netsim.NewHost(net, "a")
			hb, _ := netsim.NewHost(net, "b")
			link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond}
			if err := net.Connect(ha, 0, hb, 0, link); err != nil {
				t.Fatal(err)
			}
			a, b := NewEndpoint(ha, 1, cfg), NewEndpoint(hb, 2, cfg)
			delivered := false
			b.SetHandler(func(*wire.Header, []byte) { delivered = true })

			if tc.burst > 0 {
				net.SetLinkDown(ha, 0, true)
				sim.Schedule(tc.burst, func() { net.SetLinkDown(ha, 0, false) })
			}
			var sendErr error
			acked := false
			a.SendReliable(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte("burst"), func(err error) {
				acked, sendErr = true, err
			})
			sim.Run()

			if !acked {
				t.Fatal("completion callback never ran")
			}
			if tc.wantOK {
				if sendErr != nil || !delivered {
					t.Fatalf("delivered=%v err=%v", delivered, sendErr)
				}
			} else {
				if !errors.Is(sendErr, ErrRetriesOut) {
					t.Fatalf("err = %v, want ErrRetriesOut", sendErr)
				}
				if !errors.Is(sendErr, gasperr.ErrUnreachable) {
					t.Fatalf("err = %v, want gasperr.ErrUnreachable class", sendErr)
				}
			}
			if got := a.Counters().Retransmits; got > tc.maxRetransmits {
				t.Fatalf("retransmits = %d, want <= %d (backoff not growing?)", got, tc.maxRetransmits)
			}
		})
	}
}

func TestBackoffUnderRandomLossBursts(t *testing.T) {
	// Seeded random loss at 85% for the first 2ms of a transfer: every
	// seed must converge once the loss clears, and identical seeds must
	// replay identically.
	run := func(seed int64) (uint64, netsim.Time) {
		sim := netsim.NewSim(seed)
		net := netsim.NewNetwork(sim)
		ha, _ := netsim.NewHost(net, "a")
		hb, _ := netsim.NewHost(net, "b")
		link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond, DropRate: 0.85}
		if err := net.Connect(ha, 0, hb, 0, link); err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			RetransmitTimeout:    100 * netsim.Microsecond,
			Backoff:              1.5,
			MaxRetransmitTimeout: netsim.Millisecond,
			RetryBudget:          20 * netsim.Millisecond,
		}
		a, b := NewEndpoint(ha, 1, cfg), NewEndpoint(hb, 2, cfg)
		b.SetHandler(func(*wire.Header, []byte) {})
		sim.Schedule(2*netsim.Millisecond, func() { net.SetLinkLoss(ha, 0, 0) })

		okCount := 0
		for i := 0; i < 8; i++ {
			a.SendReliable(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte{byte(i)}, func(err error) {
				if err == nil {
					okCount++
				}
			})
		}
		sim.Run()
		if okCount != 8 {
			t.Fatalf("seed %d: %d/8 frames survived the loss burst", seed, okCount)
		}
		return a.Counters().Retransmits, sim.Now()
	}
	for _, seed := range []int64{1, 2, 3, 4} {
		r1, t1 := run(seed)
		r2, t2 := run(seed)
		if r1 != r2 || t1 != t2 {
			t.Fatalf("seed %d not deterministic: (%d,%v) vs (%d,%v)", seed, r1, t1, r2, t2)
		}
	}
}

func TestMalformedFramesCountedAsParseDrops(t *testing.T) {
	_, _, b := pair(t, netsim.LinkConfig{}, Config{})
	b.SetHandler(func(*wire.Header, []byte) { t.Fatal("malformed frame dispatched") })

	good, err := wire.Encode(&wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	badSum := append([]byte(nil), good...)
	badSum[50] ^= 0xFF
	cases := [][]byte{
		nil,
		good[:wire.HeaderSize-1],
		badMagic,
		badSum,
		make([]byte, wire.HeaderSize), // all zero: bad magic
	}
	for _, fr := range cases {
		b.onFrame(fr)
	}
	if got := b.Counters().ParseDrops; got != uint64(len(cases)) {
		t.Fatalf("ParseDrops = %d, want %d", got, len(cases))
	}
}

func TestUnclaimedFramesCountedByMux(t *testing.T) {
	// No handler registered at all: valid frames of any type land in
	// the mux's drop accounting instead of vanishing.
	sim, a, b := pair(t, netsim.LinkConfig{}, Config{})
	if _, err := a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, nil); err != nil {
		t.Fatal(err)
	}
	// A type byte outside the defined range still decodes (the header
	// is otherwise valid) and must be accounted separately.
	if _, err := a.Send(wire.Header{Type: wire.MsgType(99), Dst: 2}, nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	st := b.Mux().Stats()
	if st.Dropped != 2 {
		t.Fatalf("mux Dropped = %d, want 2: %+v", st.Dropped, st)
	}
	if st.DroppedByType[wire.MsgMem] != 1 || st.DroppedUnknown != 1 {
		t.Fatalf("drop breakdown wrong: %+v", st)
	}
}

func TestTypedMuxHandlerPreemptsDefault(t *testing.T) {
	sim, a, b := pair(t, netsim.LinkConfig{}, Config{})
	var typed, fallback int
	b.Mux().Handle(wire.MsgMem, func(h *wire.Header, p []byte) bool { typed++; return true })
	b.SetHandler(func(*wire.Header, []byte) { fallback++ })
	a.Send(wire.Header{Type: wire.MsgMem, Dst: 2}, nil)
	a.Send(wire.Header{Type: wire.MsgRPC, Dst: 2}, nil)
	sim.Run()
	if typed != 1 || fallback != 1 {
		t.Fatalf("typed = %d, fallback = %d", typed, fallback)
	}
}

func TestReliableBufferLifecycle(t *testing.T) {
	// Reliable frames retain their pooled buffer until acked; loss plus
	// retransmission must not over- or under-release (over-release
	// panics in dataplane.Buf, so completing cleanly is the assertion).
	sim, a, b := pair(t, netsim.LinkConfig{DropRate: 0.3}, Config{})
	b.SetHandler(func(*wire.Header, []byte) {})
	acked, failed := 0, 0
	for i := 0; i < 200; i++ {
		a.SendReliable(wire.Header{Type: wire.MsgMem, Dst: 2}, []byte("payload"), func(err error) {
			if err == nil {
				acked++
			} else {
				failed++
			}
		})
	}
	sim.Run()
	if acked+failed != 200 {
		t.Fatalf("settled %d of 200 (acked %d, failed %d)", acked+failed, acked, failed)
	}
	if acked == 0 {
		t.Fatal("nothing acked under 30% loss")
	}
	if a.PendingFrames() != 0 {
		t.Fatalf("pending = %d after all settled", a.PendingFrames())
	}
}
