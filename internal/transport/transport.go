// Package transport implements the "new, light-weight form of reliable
// transmission" argued for in §3.2: per-frame acknowledgment and
// retransmission with none of TCP's connection setup, stream ordering,
// or congestion control (no slow start), layered directly over GASP
// frames.
//
// Two facilities are provided:
//
//   - frame-level reliability: frames sent with reliability enabled are
//     retransmitted on a timer until acknowledged or retried out;
//   - request/response matching: a request's sequence number routes the
//     response back to a callback, with an overall timeout.
//
// Everything runs on the backend seam's clock — virtual under the
// simulator, wall time under realnet — with no direct dependency on
// either implementation.
package transport

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/dataplane"
	"repro/internal/gasperr"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Errors surfaced to callers. Both wrap the gasperr taxonomy so
// callers can classify with errors.Is(err, gasperr.ErrTimeout) /
// gasperr.ErrUnreachable without importing this package.
var (
	ErrTimeout    = fmt.Errorf("transport: timed out: %w", gasperr.ErrTimeout)
	ErrRetriesOut = fmt.Errorf("transport: retransmission budget exhausted: %w", gasperr.ErrUnreachable)
)

// Config tunes an endpoint.
type Config struct {
	// RetransmitTimeout is the initial per-frame ack deadline (default
	// 200µs, a handful of fabric RTTs). Each unacknowledged
	// retransmission multiplies the deadline by Backoff, up to
	// MaxRetransmitTimeout. Large frames extend every deadline by
	// PerByteTimeout each.
	RetransmitTimeout backend.Duration
	// PerByteTimeout scales the ack deadline with frame size so jumbo
	// frames are not retransmitted while still serializing (default
	// 10ns/byte ≈ a conservative 0.8 Gb/s path).
	PerByteTimeout backend.Duration
	// Backoff is the multiplier applied to the retransmit interval
	// after every unacknowledged attempt (default 2.0; use 1 for a
	// constant interval).
	Backoff float64
	// MaxRetransmitTimeout caps the backed-off interval so a long
	// outage doesn't push probes arbitrarily far apart (default 16×
	// the initial interval).
	MaxRetransmitTimeout backend.Duration
	// RetryBudget bounds the total time a reliable frame may spend
	// unacknowledged, replacing the old fixed retry count. Once the
	// budget elapses the frame fails with ErrRetriesOut (default 5ms,
	// which fits five attempts of the default backoff schedule).
	RetryBudget backend.Duration
	// RequestTimeout is the default request/response deadline
	// (default 5ms).
	RequestTimeout backend.Duration
}

func (c *Config) fill() {
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 200 * backend.Microsecond
	}
	if c.PerByteTimeout == 0 {
		c.PerByteTimeout = 10 * backend.Nanosecond
	}
	if c.Backoff < 1 {
		c.Backoff = 2.0
	}
	if c.MaxRetransmitTimeout == 0 {
		c.MaxRetransmitTimeout = 16 * c.RetransmitTimeout
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 5 * backend.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * backend.Millisecond
	}
}

// Counters aggregates endpoint statistics.
type Counters struct {
	FramesSent     uint64
	Broadcasts     uint64
	Retransmits    uint64
	AcksSent       uint64
	AcksReceived   uint64
	Delivered      uint64
	Duplicates     uint64
	SendFailures   uint64
	RequestsSent   uint64
	ResponsesSent  uint64
	RequestTimeout uint64
	// ParseDrops counts received frames that failed header validation
	// (truncated, bad magic/version/checksum) — malformed traffic is
	// accounted, never dispatched.
	ParseDrops uint64
}

// Handler receives application frames (anything that is not a pure ack
// or a matched response).
type Handler func(h *wire.Header, payload []byte)

// pendingFrame is pooled per endpoint: the struct, its pre-bound
// retransmit callback, and its timer all survive from one reliable
// send to the next, so the steady-state reliable path allocates
// nothing here.
type pendingFrame struct {
	e        *Endpoint
	seq      uint64
	frame    backend.Frame
	buf      *dataplane.Buf // reference held until acked or retried out
	retries  int
	interval backend.Duration // current backed-off retransmit interval
	deadline backend.Time     // first-send time + RetryBudget
	timer    backend.Timer
	fireFn   func() // pre-bound retransmit callback (== p.fire)
	done     func(error)
	span     *trace.Span // send span, open until acked or retried out
}

// pendingReq is pooled like pendingFrame.
type pendingReq struct {
	e      *Endpoint
	seq    uint64
	timer  backend.Timer
	fireFn func() // pre-bound timeout callback (== r.fire)
	cb     func(*wire.Header, []byte, error)
}

type dedupKey struct {
	src wire.StationID
	seq uint64
}

const dedupCapacity = 8192

// Endpoint is a station's transport instance bound to a backend link.
type Endpoint struct {
	clock   backend.Clock
	link    backend.Link
	station wire.StationID
	cfg     Config

	nextSeq  uint64
	mux      *dataplane.Mux
	pending  map[uint64]*pendingFrame
	requests map[uint64]*pendingReq
	// inflightBytes tracks unacked reliable bytes so retransmit
	// deadlines account for self-induced queueing behind large frames.
	inflightBytes int

	seen     map[dedupKey]struct{}
	seenRing []dedupKey
	seenNext int

	// Free lists for pooled per-operation state. Entries keep their
	// timer and pre-bound callbacks across reuses.
	frameFree []*pendingFrame
	reqFree   []*pendingReq

	// rxHdr is the receive path's scratch header: one decode target
	// for every arriving frame, so parsing never heap-allocates.
	// Handlers borrow it for the duration of the dispatch.
	rxHdr wire.Header
	// batchItems is the batched receive path's scratch.
	batchItems []dataplane.BatchItem

	tracer   *trace.Recorder
	counters Counters
}

// NewEndpoint binds a transport endpoint to a backend link, claiming
// its receive upcall.
func NewEndpoint(link backend.Link, station wire.StationID, cfg Config) *Endpoint {
	cfg.fill()
	e := &Endpoint{
		clock:    link.Clock(),
		link:     link,
		station:  station,
		cfg:      cfg,
		mux:      dataplane.NewMux(),
		pending:  make(map[uint64]*pendingFrame),
		requests: make(map[uint64]*pendingReq),
		seen:     make(map[dedupKey]struct{}, dedupCapacity),
		seenRing: make([]dedupKey, dedupCapacity),
	}
	link.SetOnFrame(e.onFrame)
	if bl, ok := link.(backend.BatchLink); ok {
		// Batch-capable links (netsim hosts with batched delivery on,
		// same-host rings) deliver coalesced arrivals in one upcall.
		bl.SetOnFrameBatch(e.onFrameBatch)
	}
	return e
}

// getPendingFrame draws a pooled pendingFrame (fresh on first use;
// the pre-bound fire callback and timer persist across reuses).
func (e *Endpoint) getPendingFrame() *pendingFrame {
	if k := len(e.frameFree); k > 0 {
		p := e.frameFree[k-1]
		e.frameFree = e.frameFree[:k-1]
		return p
	}
	p := &pendingFrame{e: e}
	p.fireFn = p.fire
	return p
}

// putPendingFrame clears per-send state and returns p to the pool.
// The timer stays with p: a later reuse re-arms it in place.
func (e *Endpoint) putPendingFrame(p *pendingFrame) {
	p.frame = nil
	p.buf = nil
	p.retries = 0
	p.interval = 0
	p.deadline = 0
	p.done = nil
	p.span = nil
	e.frameFree = append(e.frameFree, p)
}

func (e *Endpoint) getPendingReq() *pendingReq {
	if k := len(e.reqFree); k > 0 {
		r := e.reqFree[k-1]
		e.reqFree = e.reqFree[:k-1]
		return r
	}
	r := &pendingReq{e: e}
	r.fireFn = r.fire
	return r
}

func (e *Endpoint) putPendingReq(r *pendingReq) {
	r.cb = nil
	e.reqFree = append(e.reqFree, r)
}

// Station returns the endpoint's station ID.
func (e *Endpoint) Station() wire.StationID { return e.station }

// Clock returns the clock the endpoint runs on.
func (e *Endpoint) Clock() backend.Clock { return e.clock }

// Link returns the backend link the endpoint is bound to.
func (e *Endpoint) Link() backend.Link { return e.link }

// MTU returns the largest frame the endpoint's link carries in one
// piece (0 = no limit). Layers that fragment large transfers size
// their fragments to it.
func (e *Endpoint) MTU() int { return e.link.MTU() }

// Counters returns a copy of the endpoint statistics.
func (e *Endpoint) Counters() Counters { return e.counters }

// ResetCounters zeroes the statistics.
func (e *Endpoint) ResetCounters() { e.counters = Counters{} }

// Mux returns the endpoint's frame mux. Application frames (anything
// that is not a pure ack or a matched response) are dispatched through
// it; register per-type handlers, middleware, and fault hooks here.
func (e *Endpoint) Mux() *dataplane.Mux { return e.mux }

// SetHandler installs a catch-all application upcall: a compatibility
// wrapper over Mux().SetDefault that consumes every frame no typed
// handler claimed. Pass nil to remove it.
func (e *Endpoint) SetHandler(fn Handler) {
	if fn == nil {
		e.mux.SetDefault(nil)
		return
	}
	e.mux.SetDefault(func(h *wire.Header, payload []byte) bool {
		fn(h, payload)
		return true
	})
}

// SetTracer attaches a span recorder: traced frames (headers stamped
// via trace.Ctx.Inject) get a send span per transmission attempt
// lineage, retransmit markers, and a receiver-side dispatch span via
// mux middleware. A nil recorder leaves the endpoint untraced.
func (e *Endpoint) SetTracer(r *trace.Recorder) {
	e.tracer = r
	if r != nil {
		e.mux.Use(dataplane.WithSpans(r))
	}
}

// traceSend opens a send span for a traced header and re-stamps the
// header so downstream hops (switches, links, the receiver) parent to
// this span: the frame carries span lineage hop by hop.
func (e *Endpoint) traceSend(h *wire.Header) *trace.Span {
	if e.tracer == nil || h.Flags&wire.FlagTraced == 0 {
		return nil
	}
	sp := e.tracer.StartSpan(trace.Ctx{Trace: h.TraceID, Span: h.SpanID},
		trace.KindSend, sendName(h.Type))
	if sp != nil {
		h.ParentID = h.SpanID
		h.SpanID = sp.ID
	}
	return sp
}

// sendNames pre-concatenates per-type send-span names so traced sends
// do not build a string per frame.
var sendNames = func() [wire.NumMsgTypes]string {
	var names [wire.NumMsgTypes]string
	for t := range names {
		names[t] = "send:" + wire.MsgType(t).String()
	}
	return names
}()

func sendName(t wire.MsgType) string {
	if int(t) < len(sendNames) {
		return sendNames[t]
	}
	return "send:?"
}

// allocSeq returns a fresh sequence number.
func (e *Endpoint) allocSeq() uint64 {
	e.nextSeq++
	return e.nextSeq
}

// Send transmits a frame unreliably (fire and forget). The header's
// Src and Seq are filled in; h.Dst, h.Type, h.Object, h.Flags are the
// caller's. It returns the assigned sequence number.
func (e *Endpoint) Send(h wire.Header, payload []byte) (uint64, error) {
	h.Src = e.station
	h.Seq = e.allocSeq()
	sp := e.traceSend(&h)
	buf, err := dataplane.EncodeFrame(&h, payload)
	if err != nil {
		e.counters.SendFailures++
		sp.End()
		return 0, err
	}
	if h.Dst == wire.StationBroadcast {
		e.counters.Broadcasts++
	}
	e.counters.FramesSent++
	e.link.SendBuf(buf.Bytes(), buf)
	// Fire and forget: the send span marks the handoff instant.
	sp.End()
	return h.Seq, nil
}

// SendReliable transmits with acknowledgment and retransmission. done
// (may be nil) is called with nil once acked, or ErrRetriesOut.
func (e *Endpoint) SendReliable(h wire.Header, payload []byte, done func(error)) (uint64, error) {
	if h.Dst == wire.StationBroadcast {
		return 0, fmt.Errorf("transport: reliable broadcast unsupported")
	}
	h.Src = e.station
	h.Seq = e.allocSeq()
	h.Flags |= wire.FlagReliable
	sp := e.traceSend(&h)
	buf, err := dataplane.EncodeFrame(&h, payload)
	if err != nil {
		e.counters.SendFailures++
		sp.End()
		return 0, err
	}
	p := e.getPendingFrame()
	p.seq = h.Seq
	p.frame = buf.Bytes()
	p.buf = buf
	p.interval = e.cfg.RetransmitTimeout
	p.deadline = e.clock.Now().Add(e.cfg.RetryBudget)
	p.done = done
	p.span = sp
	e.pending[h.Seq] = p
	e.inflightBytes += len(p.frame)
	e.counters.FramesSent++
	// The pending entry keeps the caller's reference for retransmission;
	// each SendBuf consumes one of its own.
	buf.Retain()
	e.link.SendBuf(p.frame, buf)
	e.armRetransmit(p)
	return h.Seq, nil
}

func (e *Endpoint) armRetransmit(p *pendingFrame) {
	// The wait covers this frame's own serialization plus the unacked
	// bytes already queued ahead of it.
	wait := p.interval +
		backend.Duration(len(p.frame)+e.inflightBytes)*e.cfg.PerByteTimeout
	p.timer = backend.ResetTimer(e.clock, p.timer, wait, p.fireFn)
}

// fire is the pooled retransmit callback: retries out, or retransmits
// and re-arms with backoff.
func (p *pendingFrame) fire() {
	e := p.e
	if e.pending[p.seq] != p {
		return // completed (and possibly reused) since arming
	}
	if e.clock.Now() >= p.deadline {
		delete(e.pending, p.seq)
		e.inflightBytes -= len(p.frame)
		done, retries := p.done, p.retries
		p.span.SetAttr("error", "retries-out")
		p.span.End()
		p.buf.Release()
		e.putPendingFrame(p)
		if done != nil {
			done(fmt.Errorf("%w after %d retransmits over %v",
				ErrRetriesOut, retries, e.cfg.RetryBudget))
		}
		return
	}
	p.retries++
	e.counters.Retransmits++
	e.counters.FramesSent++
	if e.tracer != nil && p.span != nil {
		e.tracer.Mark(p.span.Ctx(), trace.KindRetrans,
			fmt.Sprintf("rtx#%d", p.retries))
	}
	p.buf.Retain()
	e.link.SendBuf(p.frame, p.buf)
	// Exponential backoff: widen the probe interval up to the cap.
	p.interval = backend.Duration(float64(p.interval) * e.cfg.Backoff)
	if p.interval > e.cfg.MaxRetransmitTimeout {
		p.interval = e.cfg.MaxRetransmitTimeout
	}
	e.armRetransmit(p)
}

// Request sends a (reliable) request and routes the matching response
// (FlagResponse with Ack == request seq) to cb. timeout 0 selects the
// configured default. cb receives ErrTimeout if no response arrives.
func (e *Endpoint) Request(h wire.Header, payload []byte, timeout backend.Duration,
	cb func(resp *wire.Header, payload []byte, err error)) (uint64, error) {

	if timeout == 0 {
		timeout = e.cfg.RequestTimeout
	}
	var seq uint64
	var err error
	if h.Dst == wire.StationBroadcast {
		seq, err = e.Send(h, payload)
	} else {
		seq, err = e.SendReliable(h, payload, nil)
	}
	if err != nil {
		return 0, err
	}
	e.counters.RequestsSent++
	req := e.getPendingReq()
	req.seq = seq
	req.cb = cb
	req.timer = backend.ResetTimer(e.clock, req.timer, timeout, req.fireFn)
	e.requests[seq] = req
	return seq, nil
}

// fire is the pooled request-timeout callback.
func (r *pendingReq) fire() {
	e := r.e
	if e.requests[r.seq] != r {
		return // answered (and possibly reused) since arming
	}
	delete(e.requests, r.seq)
	e.counters.RequestTimeout++
	cb, seq := r.cb, r.seq
	e.putPendingReq(r)
	cb(nil, nil, fmt.Errorf("%w: request seq %d", ErrTimeout, seq))
}

// Respond answers a request: Dst is the requester, Ack echoes the
// request's sequence number, FlagResponse is set.
func (e *Endpoint) Respond(req *wire.Header, h wire.Header, payload []byte) error {
	h.Dst = req.Src
	h.Ack = req.Seq
	h.Flags |= wire.FlagResponse
	// Replies inherit the request's trace context so the response leg
	// chains causally under the request's send span.
	if req.Flags&wire.FlagTraced != 0 {
		trace.Ctx{Trace: req.TraceID, Span: req.SpanID}.Inject(&h)
	}
	e.counters.ResponsesSent++
	if req.Flags&wire.FlagReliable != 0 {
		_, err := e.SendReliable(h, payload, nil)
		return err
	}
	_, err := e.Send(h, payload)
	return err
}

// onFrame is the per-frame receive path.
func (e *Endpoint) onFrame(fr backend.Frame) {
	if payload, ok := e.recvFiltered(fr); ok {
		e.counters.Delivered++
		e.mux.Dispatch(&e.rxHdr, payload)
	}
}

// onFrameBatch is the coalesced receive path: the whole batch runs
// the per-frame transport machinery (acks, dedup, response matching)
// in arrival order, then every surviving application frame is routed
// in one DispatchBatch — one upcall, N frames.
func (e *Endpoint) onFrameBatch(frs []backend.Frame) {
	items := e.batchItems[:0]
	for _, fr := range frs {
		if payload, ok := e.recvFiltered(fr); ok {
			e.counters.Delivered++
			items = append(items, dataplane.BatchItem{H: e.rxHdr, Payload: payload})
		}
	}
	e.batchItems = items
	e.mux.DispatchBatch(items)
	for i := range items {
		items[i] = dataplane.BatchItem{} // drop payload views for the GC
	}
	e.batchItems = items[:0]
}

// recvFiltered parses fr into the endpoint's scratch header (e.rxHdr)
// and runs the transport-level receive machinery: address filtering,
// ack completion, ack generation, duplicate suppression, and
// request/response matching. It reports whether the frame remains to
// be dispatched to the application mux; when true, the decoded header
// is in e.rxHdr (borrowed until the next frame is processed).
func (e *Endpoint) recvFiltered(fr backend.Frame) ([]byte, bool) {
	h := &e.rxHdr
	if err := h.DecodeFrom(fr); err != nil {
		e.counters.ParseDrops++
		return nil, false
	}
	// Frames flooded through the fabric may reach stations they are
	// not addressed to. Frames addressed to StationAny were routed on
	// their object ID — the fabric chose us, so accept.
	if h.Dst != e.station && h.Dst != wire.StationBroadcast && h.Dst != wire.StationAny {
		return nil, false
	}

	if h.Type == wire.MsgAck {
		e.counters.AcksReceived++
		if p, ok := e.pending[h.Ack]; ok {
			delete(e.pending, h.Ack)
			e.inflightBytes -= len(p.frame)
			if p.timer != nil {
				p.timer.Stop()
			}
			if p.span != nil && p.retries > 0 {
				p.span.SetAttr("retries", fmt.Sprintf("%d", p.retries))
			}
			// A reliable send span spans first transmission to ack.
			p.span.End()
			done := p.done
			p.buf.Release()
			e.putPendingFrame(p)
			if done != nil {
				done(nil)
			}
		}
		return nil, false
	}

	// Ack reliable frames (even duplicates — the ack may have been
	// lost).
	if h.Flags&wire.FlagReliable != 0 {
		ack := wire.Header{Type: wire.MsgAck, Src: e.station, Dst: h.Src, Ack: h.Seq}
		if buf, err := dataplane.EncodeFrame(&ack, nil); err == nil {
			e.counters.AcksSent++
			e.link.SendBuf(buf.Bytes(), buf)
		}
	}

	// Duplicate suppression.
	k := dedupKey{src: h.Src, seq: h.Seq}
	if _, dup := e.seen[k]; dup {
		e.counters.Duplicates++
		return nil, false
	}
	old := e.seenRing[e.seenNext]
	if old != (dedupKey{}) {
		delete(e.seen, old)
	}
	e.seenRing[e.seenNext] = k
	e.seenNext = (e.seenNext + 1) % dedupCapacity
	e.seen[k] = struct{}{}

	payload := wire.Payload(fr)

	// Response matching.
	if h.Flags&wire.FlagResponse != 0 {
		if req, ok := e.requests[h.Ack]; ok {
			delete(e.requests, h.Ack)
			if req.timer != nil {
				req.timer.Stop()
			}
			e.counters.Delivered++
			cb := req.cb
			e.putPendingReq(req)
			cb(h, payload, nil)
			return nil, false
		}
		// Late or duplicate response: drop.
		return nil, false
	}

	return payload, true
}

// Reset abandons all in-flight transport state, modeling a process
// crash: pending reliable frames and outstanding requests are dropped
// without invoking their callbacks (the process that registered them
// is gone), timers are stopped, and the dedup window is cleared. The
// sequence counter is preserved so a restarted endpoint does not reuse
// sequence numbers its peers may still remember.
func (e *Endpoint) Reset() {
	for seq, p := range e.pending {
		if p.timer != nil {
			p.timer.Stop()
		}
		p.span.SetAttr("error", "reset")
		p.span.End()
		p.buf.Release()
		delete(e.pending, seq)
		e.putPendingFrame(p)
	}
	for seq, r := range e.requests {
		if r.timer != nil {
			r.timer.Stop()
		}
		delete(e.requests, seq)
		e.putPendingReq(r)
	}
	e.inflightBytes = 0
	e.seen = make(map[dedupKey]struct{}, dedupCapacity)
	e.seenRing = make([]dedupKey, dedupCapacity)
	e.seenNext = 0
}

// PendingFrames reports in-flight reliable frames (for tests).
func (e *Endpoint) PendingFrames() int { return len(e.pending) }

// PendingRequests reports outstanding requests (for tests).
func (e *Endpoint) PendingRequests() int { return len(e.requests) }
