// Package transport implements the "new, light-weight form of reliable
// transmission" argued for in §3.2: per-frame acknowledgment and
// retransmission with none of TCP's connection setup, stream ordering,
// or congestion control (no slow start), layered directly over GASP
// frames.
//
// Two facilities are provided:
//
//   - frame-level reliability: frames sent with reliability enabled are
//     retransmitted on a timer until acknowledged or retried out;
//   - request/response matching: a request's sequence number routes the
//     response back to a callback, with an overall timeout.
//
// Everything runs on the simulator's virtual clock.
package transport

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Errors surfaced to callers.
var (
	ErrTimeout    = errors.New("transport: timed out")
	ErrRetriesOut = errors.New("transport: retransmission limit reached")
)

// Config tunes an endpoint.
type Config struct {
	// RetransmitTimeout is the per-frame ack deadline (default 200µs,
	// a handful of fabric RTTs). Large frames extend it by
	// PerByteTimeout each.
	RetransmitTimeout netsim.Duration
	// PerByteTimeout scales the ack deadline with frame size so jumbo
	// frames are not retransmitted while still serializing (default
	// 10ns/byte ≈ a conservative 0.8 Gb/s path).
	PerByteTimeout netsim.Duration
	// MaxRetries bounds retransmissions per frame (default 4).
	MaxRetries int
	// RequestTimeout is the default request/response deadline
	// (default 5ms).
	RequestTimeout netsim.Duration
}

func (c *Config) fill() {
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 200 * netsim.Microsecond
	}
	if c.PerByteTimeout == 0 {
		c.PerByteTimeout = 10 * netsim.Nanosecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * netsim.Millisecond
	}
}

// Counters aggregates endpoint statistics.
type Counters struct {
	FramesSent     uint64
	Broadcasts     uint64
	Retransmits    uint64
	AcksSent       uint64
	AcksReceived   uint64
	Delivered      uint64
	Duplicates     uint64
	SendFailures   uint64
	RequestsSent   uint64
	ResponsesSent  uint64
	RequestTimeout uint64
}

// Handler receives application frames (anything that is not a pure ack
// or a matched response).
type Handler func(h *wire.Header, payload []byte)

type pendingFrame struct {
	frame   netsim.Frame
	retries int
	timer   *netsim.Timer
	done    func(error)
}

type pendingReq struct {
	timer *netsim.Timer
	cb    func(*wire.Header, []byte, error)
}

type dedupKey struct {
	src wire.StationID
	seq uint64
}

const dedupCapacity = 8192

// Endpoint is a station's transport instance bound to a netsim host.
type Endpoint struct {
	sim     *netsim.Sim
	host    *netsim.Host
	station wire.StationID
	cfg     Config

	nextSeq  uint64
	handler  Handler
	pending  map[uint64]*pendingFrame
	requests map[uint64]*pendingReq
	// inflightBytes tracks unacked reliable bytes so retransmit
	// deadlines account for self-induced queueing behind large frames.
	inflightBytes int

	seen     map[dedupKey]struct{}
	seenRing []dedupKey
	seenNext int

	counters Counters
}

// NewEndpoint binds a transport endpoint to host, claiming its OnFrame
// callback.
func NewEndpoint(host *netsim.Host, station wire.StationID, cfg Config) *Endpoint {
	cfg.fill()
	e := &Endpoint{
		sim:      host.Network().Sim(),
		host:     host,
		station:  station,
		cfg:      cfg,
		pending:  make(map[uint64]*pendingFrame),
		requests: make(map[uint64]*pendingReq),
		seen:     make(map[dedupKey]struct{}, dedupCapacity),
		seenRing: make([]dedupKey, dedupCapacity),
	}
	host.OnFrame = e.onFrame
	return e
}

// Station returns the endpoint's station ID.
func (e *Endpoint) Station() wire.StationID { return e.station }

// Sim returns the clock the endpoint runs on.
func (e *Endpoint) Sim() *netsim.Sim { return e.sim }

// Counters returns a copy of the endpoint statistics.
func (e *Endpoint) Counters() Counters { return e.counters }

// ResetCounters zeroes the statistics.
func (e *Endpoint) ResetCounters() { e.counters = Counters{} }

// SetHandler installs the application upcall.
func (e *Endpoint) SetHandler(fn Handler) { e.handler = fn }

// allocSeq returns a fresh sequence number.
func (e *Endpoint) allocSeq() uint64 {
	e.nextSeq++
	return e.nextSeq
}

// Send transmits a frame unreliably (fire and forget). The header's
// Src and Seq are filled in; h.Dst, h.Type, h.Object, h.Flags are the
// caller's. It returns the assigned sequence number.
func (e *Endpoint) Send(h wire.Header, payload []byte) (uint64, error) {
	h.Src = e.station
	h.Seq = e.allocSeq()
	fr, err := wire.Encode(&h, payload)
	if err != nil {
		e.counters.SendFailures++
		return 0, err
	}
	if h.Dst == wire.StationBroadcast {
		e.counters.Broadcasts++
	}
	e.counters.FramesSent++
	e.host.Send(fr)
	return h.Seq, nil
}

// SendReliable transmits with acknowledgment and retransmission. done
// (may be nil) is called with nil once acked, or ErrRetriesOut.
func (e *Endpoint) SendReliable(h wire.Header, payload []byte, done func(error)) (uint64, error) {
	if h.Dst == wire.StationBroadcast {
		return 0, fmt.Errorf("transport: reliable broadcast unsupported")
	}
	h.Src = e.station
	h.Seq = e.allocSeq()
	h.Flags |= wire.FlagReliable
	fr, err := wire.Encode(&h, payload)
	if err != nil {
		e.counters.SendFailures++
		return 0, err
	}
	p := &pendingFrame{frame: fr, done: done}
	e.pending[h.Seq] = p
	e.inflightBytes += len(fr)
	e.counters.FramesSent++
	e.host.Send(fr)
	e.armRetransmit(h.Seq, p)
	return h.Seq, nil
}

func (e *Endpoint) armRetransmit(seq uint64, p *pendingFrame) {
	// The deadline covers this frame's own serialization plus the
	// unacked bytes already queued ahead of it.
	deadline := e.cfg.RetransmitTimeout +
		netsim.Duration(len(p.frame)+e.inflightBytes)*e.cfg.PerByteTimeout
	p.timer = e.sim.AfterFunc(deadline, func() {
		if _, live := e.pending[seq]; !live {
			return
		}
		if p.retries >= e.cfg.MaxRetries {
			delete(e.pending, seq)
			e.inflightBytes -= len(p.frame)
			if p.done != nil {
				p.done(fmt.Errorf("%w after %d retries", ErrRetriesOut, p.retries))
			}
			return
		}
		p.retries++
		e.counters.Retransmits++
		e.counters.FramesSent++
		e.host.Send(p.frame)
		e.armRetransmit(seq, p)
	})
}

// Request sends a (reliable) request and routes the matching response
// (FlagResponse with Ack == request seq) to cb. timeout 0 selects the
// configured default. cb receives ErrTimeout if no response arrives.
func (e *Endpoint) Request(h wire.Header, payload []byte, timeout netsim.Duration,
	cb func(resp *wire.Header, payload []byte, err error)) (uint64, error) {

	if timeout == 0 {
		timeout = e.cfg.RequestTimeout
	}
	var seq uint64
	var err error
	if h.Dst == wire.StationBroadcast {
		seq, err = e.Send(h, payload)
	} else {
		seq, err = e.SendReliable(h, payload, nil)
	}
	if err != nil {
		return 0, err
	}
	e.counters.RequestsSent++
	req := &pendingReq{cb: cb}
	req.timer = e.sim.AfterFunc(timeout, func() {
		if _, live := e.requests[seq]; !live {
			return
		}
		delete(e.requests, seq)
		e.counters.RequestTimeout++
		cb(nil, nil, fmt.Errorf("%w: request seq %d", ErrTimeout, seq))
	})
	e.requests[seq] = req
	return seq, nil
}

// Respond answers a request: Dst is the requester, Ack echoes the
// request's sequence number, FlagResponse is set.
func (e *Endpoint) Respond(req *wire.Header, h wire.Header, payload []byte) error {
	h.Dst = req.Src
	h.Ack = req.Seq
	h.Flags |= wire.FlagResponse
	e.counters.ResponsesSent++
	if req.Flags&wire.FlagReliable != 0 {
		_, err := e.SendReliable(h, payload, nil)
		return err
	}
	_, err := e.Send(h, payload)
	return err
}

// onFrame is the receive path.
func (e *Endpoint) onFrame(fr netsim.Frame) {
	var h wire.Header
	if err := h.DecodeFrom(fr); err != nil {
		return
	}
	// Frames flooded through the fabric may reach stations they are
	// not addressed to. Frames addressed to StationAny were routed on
	// their object ID — the fabric chose us, so accept.
	if h.Dst != e.station && h.Dst != wire.StationBroadcast && h.Dst != wire.StationAny {
		return
	}

	if h.Type == wire.MsgAck {
		e.counters.AcksReceived++
		if p, ok := e.pending[h.Ack]; ok {
			delete(e.pending, h.Ack)
			e.inflightBytes -= len(p.frame)
			if p.timer != nil {
				p.timer.Stop()
			}
			if p.done != nil {
				p.done(nil)
			}
		}
		return
	}

	// Ack reliable frames (even duplicates — the ack may have been
	// lost).
	if h.Flags&wire.FlagReliable != 0 {
		ack := wire.Header{Type: wire.MsgAck, Src: e.station, Dst: h.Src, Ack: h.Seq}
		if fr, err := wire.Encode(&ack, nil); err == nil {
			e.counters.AcksSent++
			e.host.Send(fr)
		}
	}

	// Duplicate suppression.
	k := dedupKey{src: h.Src, seq: h.Seq}
	if _, dup := e.seen[k]; dup {
		e.counters.Duplicates++
		return
	}
	old := e.seenRing[e.seenNext]
	if old != (dedupKey{}) {
		delete(e.seen, old)
	}
	e.seenRing[e.seenNext] = k
	e.seenNext = (e.seenNext + 1) % dedupCapacity
	e.seen[k] = struct{}{}

	payload := wire.Payload(fr)

	// Response matching.
	if h.Flags&wire.FlagResponse != 0 {
		if req, ok := e.requests[h.Ack]; ok {
			delete(e.requests, h.Ack)
			if req.timer != nil {
				req.timer.Stop()
			}
			e.counters.Delivered++
			req.cb(&h, payload, nil)
			return
		}
		// Late or duplicate response: drop.
		return
	}

	e.counters.Delivered++
	if e.handler != nil {
		e.handler(&h, payload)
	}
}

// PendingFrames reports in-flight reliable frames (for tests).
func (e *Endpoint) PendingFrames() int { return len(e.pending) }

// PendingRequests reports outstanding requests (for tests).
func (e *Endpoint) PendingRequests() int { return len(e.requests) }
