package prefetch

import (
	"fmt"
	"testing"

	"repro/internal/object"
	"repro/internal/oid"
)

var gen = oid.NewSeededGenerator(29)

// fakeFetcher resolves objects from a map, synchronously.
type fakeFetcher struct {
	objects map[oid.ID]*object.Object
	local   map[oid.ID]bool
	fetched []oid.ID
}

func newFake() *fakeFetcher {
	return &fakeFetcher{
		objects: make(map[oid.ID]*object.Object),
		local:   make(map[oid.ID]bool),
	}
}

func (f *fakeFetcher) AcquireSharedCB(id oid.ID, cb func(*object.Object, error)) {
	f.fetched = append(f.fetched, id)
	o, ok := f.objects[id]
	if !ok {
		cb(nil, fmt.Errorf("no such object"))
		return
	}
	f.local[id] = true
	cb(o, nil)
}

func (f *fakeFetcher) has(id oid.ID) bool { return f.local[id] }

// mkObj creates an object referencing the given targets.
func mkObj(t *testing.T, size int, refs ...oid.ID) *object.Object {
	t.Helper()
	o, err := object.New(gen.New(), size, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if _, err := o.AddFOT(r, object.FlagRead); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestPrefetchDirectReferences(t *testing.T) {
	f := newFake()
	childA := mkObj(t, 4096)
	childB := mkObj(t, 4096)
	f.objects[childA.ID()] = childA
	f.objects[childB.ID()] = childB
	root := mkObj(t, 4096, childA.ID(), childB.ID())

	p := New(f, f.has, Config{})
	p.OnFetch(root)
	if len(f.fetched) != 2 {
		t.Fatalf("fetched %d objects", len(f.fetched))
	}
	c := p.Counters()
	if c.Triggers != 1 || c.Issued != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPrefetchSkipsLocal(t *testing.T) {
	f := newFake()
	child := mkObj(t, 4096)
	f.objects[child.ID()] = child
	f.local[child.ID()] = true
	root := mkObj(t, 4096, child.ID())

	p := New(f, f.has, Config{})
	p.OnFetch(root)
	if len(f.fetched) != 0 {
		t.Fatal("prefetched an already-local object")
	}
	if p.Counters().AlreadyLocal != 1 {
		t.Fatalf("counters = %+v", p.Counters())
	}
}

func TestDepthLimit(t *testing.T) {
	f := newFake()
	grandchild := mkObj(t, 4096)
	child := mkObj(t, 4096, grandchild.ID())
	f.objects[grandchild.ID()] = grandchild
	f.objects[child.ID()] = child
	root := mkObj(t, 4096, child.ID())

	// Depth 1: only the child.
	p := New(f, f.has, Config{MaxDepth: 1})
	p.OnFetch(root)
	if len(f.fetched) != 1 {
		t.Fatalf("depth 1 fetched %d", len(f.fetched))
	}

	// Depth 2: child then grandchild.
	f2 := newFake()
	f2.objects[grandchild.ID()] = grandchild
	f2.objects[child.ID()] = child
	p2 := New(f2, f2.has, Config{MaxDepth: 2})
	p2.OnFetch(root)
	if len(f2.fetched) != 2 {
		t.Fatalf("depth 2 fetched %d", len(f2.fetched))
	}
}

func TestObjectCountBudget(t *testing.T) {
	f := newFake()
	var refs []oid.ID
	for i := 0; i < 10; i++ {
		c := mkObj(t, 1024)
		f.objects[c.ID()] = c
		refs = append(refs, c.ID())
	}
	root := mkObj(t, 4096, refs...)
	p := New(f, f.has, Config{MaxObjects: 3})
	p.OnFetch(root)
	if len(f.fetched) != 3 {
		t.Fatalf("fetched %d, want 3", len(f.fetched))
	}
	if p.Counters().BudgetStops == 0 {
		t.Fatal("no budget stop recorded")
	}
}

func TestByteBudget(t *testing.T) {
	f := newFake()
	// Chain: root → c1 → c2; each child is 4096 bytes, budget 4096 so
	// the second-level walk is cut off after c1 consumes it.
	c2 := mkObj(t, 4096)
	c1 := mkObj(t, 4096, c2.ID())
	f.objects[c1.ID()] = c1
	f.objects[c2.ID()] = c2
	root := mkObj(t, 4096, c1.ID())
	p := New(f, f.has, Config{MaxDepth: 3, BudgetBytes: 4096})
	p.OnFetch(root)
	if len(f.fetched) != 1 {
		t.Fatalf("fetched %d, want 1 (budget exhausted)", len(f.fetched))
	}
}

func TestFetchFailureCounted(t *testing.T) {
	f := newFake()
	missing := gen.New()
	root := mkObj(t, 4096, missing)
	p := New(f, f.has, Config{})
	p.OnFetch(root)
	if p.Counters().FetchFailures != 1 {
		t.Fatalf("counters = %+v", p.Counters())
	}
}

func TestInflightDedup(t *testing.T) {
	// An async fetcher that never completes: second trigger must not
	// re-issue.
	pending := map[oid.ID]func(*object.Object, error){}
	issue := 0
	af := &asyncFetcher{issue: &issue, pending: pending}
	child := mkObj(t, 1024)
	root := mkObj(t, 4096, child.ID())
	p := New(af, func(oid.ID) bool { return false }, Config{})
	p.OnFetch(root)
	p.OnFetch(root)
	if issue != 1 {
		t.Fatalf("issued %d fetches for same in-flight object", issue)
	}
}

type asyncFetcher struct {
	issue   *int
	pending map[oid.ID]func(*object.Object, error)
}

func (a *asyncFetcher) AcquireSharedCB(id oid.ID, cb func(*object.Object, error)) {
	*a.issue++
	a.pending[id] = cb
}

func TestResetCounters(t *testing.T) {
	f := newFake()
	p := New(f, f.has, Config{})
	p.OnFetch(mkObj(t, 4096))
	p.ResetCounters()
	if p.Counters() != (Counters{}) {
		t.Fatal("ResetCounters")
	}
}
