// Package prefetch implements reachability-driven prefetching (§3.1):
// the Foreign Object Table gives the system a translucent view of each
// object's outgoing references — "a reachability graph for each
// object. This graph can be used by the system to perform prefetching
// based on data identity and actual reachability instead of some proxy
// for identity (e.g., adjacency)".
//
// When an object is fetched, the prefetcher walks its FOT edges and
// asynchronously acquires referenced objects up to a depth and byte
// budget, so subsequent dereferences hit the local store.
package prefetch

import (
	"repro/internal/object"
	"repro/internal/oid"
)

// Fetcher acquires objects (satisfied by coherence.Node).
type Fetcher interface {
	AcquireSharedCB(obj oid.ID, cb func(*object.Object, error))
}

// Config tunes the prefetcher.
type Config struct {
	// MaxDepth bounds the reachability walk (default 1: direct
	// references only).
	MaxDepth int
	// BudgetBytes bounds the total size prefetched per trigger
	// (default 1 MiB).
	BudgetBytes int
	// MaxObjects bounds the object count per trigger (default 64).
	MaxObjects int
}

func (c *Config) fill() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 1
	}
	if c.BudgetBytes == 0 {
		c.BudgetBytes = 1 << 20
	}
	if c.MaxObjects == 0 {
		c.MaxObjects = 64
	}
}

// Counters aggregates prefetcher statistics.
type Counters struct {
	Triggers      uint64
	Issued        uint64
	AlreadyLocal  uint64
	BudgetStops   uint64
	DepthStops    uint64
	FetchFailures uint64
}

// Prefetcher walks reachability graphs and warms the local store.
type Prefetcher struct {
	fetcher Fetcher
	has     func(oid.ID) bool
	cfg     Config

	counters Counters
	// inflight suppresses duplicate prefetches of the same object.
	inflight map[oid.ID]bool
}

// New creates a prefetcher. has reports local presence (typically
// store.Contains).
func New(f Fetcher, has func(oid.ID) bool, cfg Config) *Prefetcher {
	cfg.fill()
	return &Prefetcher{fetcher: f, has: has, cfg: cfg, inflight: make(map[oid.ID]bool)}
}

// Counters returns a copy of the statistics.
func (p *Prefetcher) Counters() Counters { return p.counters }

// ResetCounters zeroes the statistics.
func (p *Prefetcher) ResetCounters() { p.counters = Counters{} }

// walkState tracks one trigger's budget.
type walkState struct {
	budget  int
	objects int
}

// OnFetch triggers prefetching from a newly acquired object's
// reachability graph.
func (p *Prefetcher) OnFetch(o *object.Object) {
	p.counters.Triggers++
	st := &walkState{budget: p.cfg.BudgetBytes, objects: p.cfg.MaxObjects}
	p.walk(o, 1, st)
}

func (p *Prefetcher) walk(o *object.Object, depth int, st *walkState) {
	if depth > p.cfg.MaxDepth {
		p.counters.DepthStops++
		return
	}
	for _, id := range o.Reachable() {
		if p.has != nil && p.has(id) {
			p.counters.AlreadyLocal++
			continue
		}
		if p.inflight[id] {
			continue
		}
		if st.objects <= 0 || st.budget <= 0 {
			p.counters.BudgetStops++
			return
		}
		st.objects--
		p.inflight[id] = true
		p.counters.Issued++
		id := id
		depth := depth
		p.fetcher.AcquireSharedCB(id, func(fetched *object.Object, err error) {
			delete(p.inflight, id)
			if err != nil {
				p.counters.FetchFailures++
				return
			}
			st.budget -= fetched.Size()
			if st.budget > 0 && depth < p.cfg.MaxDepth {
				p.walk(fetched, depth+1, st)
			}
		})
	}
}
