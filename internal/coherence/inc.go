package coherence

import (
	"sort"

	"repro/internal/backend"
	"repro/internal/memproto"
	"repro/internal/oid"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Home-side support for in-network computation (internal/inc): the
// home invalidates a whole sharer set with one multicast frame the
// switches replicate, absorbs (possibly switch-aggregated) acks, and
// falls back to the classic per-sharer reliable invalidate for any
// member whose ack never arrives — a dead sharer is detected, never
// papered over. With the in-switch cache on, local home mutations
// additionally emit a purge frame so the first-hop cache evicts even
// when no invalidate would traverse it.

// GroupInstaller installs a multicast group on the fabric — the
// control-plane round trip (implemented by discovery.ControllerClient
// through the replicated ControlPlane).
type GroupInstaller interface {
	InstallGroup(id uint64, members []wire.StationID, cb func(error))
}

// IncConfig enables the home-side INC paths. The zero value disables
// everything (bit-identical to a build without INC).
type IncConfig struct {
	// Mcast sends one group invalidate instead of per-sharer requests
	// (needs Installer; sharer sets of ≤1 use the classic path).
	Mcast bool
	// Purge emits a cache-purge frame on local home mutations so the
	// first-hop switch cache evicts (set when the in-switch cache is
	// on).
	Purge bool
	// AckTimeout bounds how long the home waits for (aggregated) acks
	// before falling back per sharer (0 = DefaultIncAckTimeout).
	AckTimeout backend.Duration
	// MaxGroup caps multicast group size (0 = 64, the ack bitmap
	// width); larger sharer sets use the classic path.
	MaxGroup int
	// Installer performs group installation; nil disables Mcast.
	Installer GroupInstaller
}

// DefaultIncAckTimeout is the home's ack-collection window — past the
// switch aggregation timeout plus a fabric round trip.
const DefaultIncAckTimeout = 2 * backend.Millisecond

// IncCounters aggregates the home-side INC statistics (kept apart
// from Counters so INC-off telemetry snapshots are unchanged).
type IncCounters struct {
	McastInvSent        uint64 // multicast invalidate frames emitted
	McastFramesSaved    uint64 // per-sharer frames a multicast replaced
	McastAcksRecv       uint64 // acks (aggregated or direct) absorbed
	McastTimeouts       uint64 // rounds that hit the ack timeout
	FallbackInvalidates uint64 // per-sharer retries after a timeout
	PurgesSent          uint64 // cache purge frames emitted
	GroupsInstalled     uint64 // multicast groups installed
}

// incPending is one in-flight multicast invalidation round.
type incPending struct {
	obj     oid.ID
	members []wire.StationID // sorted; bitmap order
	epochs  []uint64
	acked   []bool
	left    int
	timer   backend.Timer
}

// incGroup is one installed (or installing) multicast group.
type incGroup struct {
	id         uint64
	ready      bool
	installing bool
	waiters    []func(uint64, bool)
}

// SetIncConfig enables the home-side INC paths. Call before traffic;
// a zero config turns them back off.
func (n *Node) SetIncConfig(cfg IncConfig) {
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = DefaultIncAckTimeout
	}
	if cfg.MaxGroup == 0 || cfg.MaxGroup > 64 {
		cfg.MaxGroup = 64
	}
	n.incCfg = cfg
	if n.incGroups == nil {
		n.incGroups = make(map[string]*incGroup)
		n.incOps = make(map[uint64]*incPending)
	}
}

// IncCounters returns a copy of the home-side INC statistics.
func (n *Node) IncCounters() IncCounters { return n.incCounters }

// HandleIncFrame consumes MsgIncInv (sharer side) and MsgIncAck
// (home side) frames; register it on the endpoint mux for both types.
func (n *Node) HandleIncFrame(h *wire.Header, payload []byte) bool {
	switch h.Type {
	case wire.MsgIncInv:
		n.serveIncInv(h, payload)
		return true
	case wire.MsgIncAck:
		n.absorbIncAck(h, payload)
		return true
	}
	return false
}

// serveIncInv applies a replicated multicast invalidate at a sharer:
// identical semantics to OpInvalidate, answered with an unreliable
// MsgIncAck the fabric may coalesce.
func (n *Node) serveIncInv(h *wire.Header, payload []byte) {
	opID, group, _, ok := memproto.DecodeIncInv(payload)
	if !ok || group == 0 {
		return // purge frames are for switches; hosts ignore them
	}
	n.counters.InvalidatesRecv++
	n.store.Invalidate(h.Object)
	delete(n.granted, h.Object)
	if f, live := n.fetches[h.Object]; live && f.re.Started() {
		// Same rule as OpInvalidate: a partial grant the invalidate
		// outran is stale; drop it and re-acquire.
		f.re = memproto.Reassembler{}
		f.perm = memproto.PermNone
		if f.watchdog != nil {
			f.watchdog.Stop()
		}
		f.tc = trace.Ctx{}
		f.attempt = 1
		f.begin()
	}
	n.ep.Send(wire.Header{Type: wire.MsgIncAck, Dst: h.Src, Object: h.Object},
		memproto.EncodeIncAck(opID, group, 0))
}

// absorbIncAck marks members of a pending round acked — one member
// (the frame's Src) for a direct ack, several for a switch-aggregated
// bitmap — and removes them from the directory.
func (n *Node) absorbIncAck(h *wire.Header, payload []byte) {
	opID, _, bitmap, ok := memproto.DecodeIncAck(payload)
	if !ok {
		return
	}
	p, live := n.incOps[opID]
	if !live {
		return // late ack past the timeout; the fallback path owns it
	}
	n.incCounters.McastAcksRecv++
	mark := func(i int) {
		if p.acked[i] {
			return
		}
		p.acked[i] = true
		p.left--
		n.directory.Remove(p.obj, p.members[i], p.epochs[i])
	}
	if bitmap == 0 {
		for i, m := range p.members {
			if m == h.Src {
				mark(i)
				break
			}
		}
	} else {
		for i := range p.members {
			if bitmap&(uint64(1)<<uint(i)) != 0 {
				mark(i)
			}
		}
	}
	if p.left == 0 {
		if p.timer != nil {
			p.timer.Stop()
		}
		delete(n.incOps, opID)
	}
}

// mcastInvalidate runs one multicast invalidation round: ensure the
// sharer group is installed, emit one MsgIncInv, and arm the ack
// timeout. Installation failure degrades to the classic path.
func (n *Node) mcastInvalidate(obj oid.ID, members []wire.StationID, epochs []uint64) {
	n.ensureGroup(members, func(gid uint64, ok bool) {
		if !ok {
			if n.incCfg.Purge {
				n.sendPurge(obj)
			}
			for i, st := range members {
				n.classicInvalidate(obj, st, epochs[i])
			}
			return
		}
		n.incNextOp++
		op := n.incNextOp
		n.counters.InvalidatesSent++
		n.incCounters.McastInvSent++
		n.incCounters.McastFramesSaved += uint64(len(members) - 1)
		p := &incPending{
			obj: obj, members: members, epochs: epochs,
			acked: make([]bool, len(members)), left: len(members),
		}
		n.incOps[op] = p
		p.timer = n.clock.AfterFunc(n.incCfg.AckTimeout, func() { n.incTimeout(op) })
		n.ep.Send(wire.Header{Type: wire.MsgIncInv, Dst: wire.StationAny, Object: obj},
			memproto.EncodeIncInv(op, gid, false))
	})
}

// incTimeout is the loss-detection path: any member whose ack (direct
// or aggregated) never arrived gets the classic reliable per-sharer
// invalidate. An aggregation switch never fabricates a missing ack,
// so a crashed sharer always lands here.
func (n *Node) incTimeout(op uint64) {
	p, live := n.incOps[op]
	if !live {
		return
	}
	delete(n.incOps, op)
	n.incCounters.McastTimeouts++
	for i, st := range p.members {
		if p.acked[i] {
			continue
		}
		n.incCounters.FallbackInvalidates++
		n.classicInvalidate(p.obj, st, p.epochs[i])
	}
}

// ensureGroup resolves the sorted member set to an installed group
// id, installing through the control plane on first use. Concurrent
// callers for the same set coalesce onto one installation.
func (n *Node) ensureGroup(members []wire.StationID, cb func(uint64, bool)) {
	key := groupKey(members)
	g, ok := n.incGroups[key]
	if ok && g.ready {
		cb(g.id, true)
		return
	}
	if ok && g.installing {
		g.waiters = append(g.waiters, cb)
		return
	}
	if !ok {
		n.incNextGroup++
		// Station-scoped id space: homes allocate independently.
		g = &incGroup{id: uint64(n.ep.Station())<<20 | n.incNextGroup}
		n.incGroups[key] = g
	}
	g.installing = true
	g.waiters = append(g.waiters, cb)
	n.incCfg.Installer.InstallGroup(g.id, members, func(err error) {
		g.installing = false
		ws := g.waiters
		g.waiters = nil
		if err != nil {
			delete(n.incGroups, key) // retry on the next round
			for _, w := range ws {
				w(0, false)
			}
			return
		}
		g.ready = true
		n.incCounters.GroupsInstalled++
		for _, w := range ws {
			w(g.id, true)
		}
	})
}

// groupKey canonicalizes a sorted member set.
func groupKey(members []wire.StationID) string {
	b := make([]byte, 0, len(members)*8)
	for _, m := range members {
		v := uint64(m)
		b = append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

// sendPurge tells the home's first-hop switch cache to drop obj — the
// path a local home mutation takes, since it puts no invalidate on
// the wire the cache would see.
func (n *Node) sendPurge(obj oid.ID) {
	n.incCounters.PurgesSent++
	n.ep.Send(wire.Header{Type: wire.MsgIncInv, Dst: wire.StationAny, Object: obj},
		memproto.EncodeIncInv(0, 0, true))
}

// sortMembers orders (station, epoch) pairs by station — the
// canonical group order both the home's bitmap and the switches'
// installed membership use.
func sortMembers(members []wire.StationID, epochs []uint64) {
	idx := make([]int, len(members))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return members[idx[a]] < members[idx[b]] })
	ms := make([]wire.StationID, len(members))
	es := make([]uint64, len(epochs))
	for i, j := range idx {
		ms[i] = members[j]
		es[i] = epochs[j]
	}
	copy(members, ms)
	copy(epochs, es)
}
