package coherence

import (
	"slices"

	"repro/internal/oid"
	"repro/internal/wire"
)

// sharerSlot records one copy holder and the epoch of its most recent
// registration.
type sharerSlot struct {
	st    wire.StationID
	epoch uint64
}

// dirEntry is one home object's sharer set: a small slice instead of
// the map pair it used to be, so a million idle entries cost slice
// headers rather than hash tables. Slots keep registration order,
// which also makes invalidation fan-out order deterministic.
type dirEntry struct {
	slots []sharerSlot
}

// Approximate per-entry cost of the directory representation, used
// for the bytes/object accounting E12 reports. An entry costs its
// map key (16-byte oid.ID), the 8-byte entry pointer, amortized
// map-bucket overhead, and the entry's slice header; each sharer
// costs one 16-byte slot.
const (
	dirEntryOverheadBytes = 16 + 8 + 16 + 24
	dirSlotBytes          = 16
)

// Directory is the compact sharer directory a home node keeps: for
// each home object, which stations hold copies and at which
// registration epoch. Entries are pooled — an entry whose sharer set
// empties is recycled, so resident bytes track live sharing, not the
// historical object population.
//
// Epochs come from one directory-wide monotonic counter, so a
// recycled entry can never hand out an epoch that aliases one
// captured before recycling. Invalidation removes a sharer only when
// its ack arrives and only if the sharer has not re-registered since
// the invalidate went out (Remove's epoch guard): a re-acquire can
// overtake the ack, and an unconditional deferred delete would wipe
// the fresh registration.
type Directory struct {
	entries map[oid.ID]*dirEntry
	free    []*dirEntry
	clock   uint64 // epoch source; bumped on every Add
	slots   int    // live sharer slots across all entries
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[oid.ID]*dirEntry)}
}

// Add registers st as a sharer of obj, creating (or reusing a pooled)
// entry as needed, and bumps st's registration epoch so pending
// deferred removals from earlier invalidation rounds become stale.
func (d *Directory) Add(obj oid.ID, st wire.StationID) {
	e, ok := d.entries[obj]
	if !ok {
		if n := len(d.free); n > 0 {
			e = d.free[n-1]
			d.free = d.free[:n-1]
		} else {
			e = &dirEntry{}
		}
		d.entries[obj] = e
	}
	d.clock++
	for i := range e.slots {
		if e.slots[i].st == st {
			e.slots[i].epoch = d.clock
			return
		}
	}
	e.slots = append(e.slots, sharerSlot{st: st, epoch: d.clock})
	d.slots++
}

// Epoch returns st's current registration epoch on obj. ok is false
// when st is not a recorded sharer.
func (d *Directory) Epoch(obj oid.ID, st wire.StationID) (epoch uint64, ok bool) {
	e, ok := d.entries[obj]
	if !ok {
		return 0, false
	}
	for i := range e.slots {
		if e.slots[i].st == st {
			return e.slots[i].epoch, true
		}
	}
	return 0, false
}

// Remove drops st from obj's sharer set iff its registration epoch
// still equals epoch — the ack-time guard described on Directory. It
// reports whether a slot was removed. An entry whose last sharer
// leaves is recycled into the pool.
func (d *Directory) Remove(obj oid.ID, st wire.StationID, epoch uint64) bool {
	e, ok := d.entries[obj]
	if !ok {
		return false
	}
	for i := range e.slots {
		if e.slots[i].st == st {
			if e.slots[i].epoch != epoch {
				return false
			}
			e.slots = slices.Delete(e.slots, i, i+1)
			d.slots--
			if len(e.slots) == 0 {
				delete(d.entries, obj)
				d.free = append(d.free, e)
			}
			return true
		}
	}
	return false
}

// Sharers reports the number of recorded copy holders of obj.
func (d *Directory) Sharers(obj oid.ID) int {
	if e, ok := d.entries[obj]; ok {
		return len(e.slots)
	}
	return 0
}

// ForEach calls fn for every recorded sharer of obj, in registration
// order, with the epoch current at call time. fn must not mutate the
// directory.
func (d *Directory) ForEach(obj oid.ID, fn func(st wire.StationID, epoch uint64)) {
	e, ok := d.entries[obj]
	if !ok {
		return
	}
	for i := range e.slots {
		fn(e.slots[i].st, e.slots[i].epoch)
	}
}

// SharerSet returns obj's recorded copy holders, sorted.
func (d *Directory) SharerSet(obj oid.ID) []wire.StationID {
	e, ok := d.entries[obj]
	if !ok {
		return nil
	}
	out := make([]wire.StationID, len(e.slots))
	for i := range e.slots {
		out[i] = e.slots[i].st
	}
	slices.Sort(out)
	return out
}

// Len returns the number of live entries (objects with ≥1 sharer).
func (d *Directory) Len() int { return len(d.entries) }

// Bytes returns the approximate resident size of the directory using
// the per-entry accounting above (pooled free entries included at
// slot-capacity cost, since their backing arrays stay allocated).
func (d *Directory) Bytes() int {
	b := len(d.entries)*dirEntryOverheadBytes + d.slots*dirSlotBytes
	for _, e := range d.free {
		b += cap(e.slots) * dirSlotBytes
	}
	return b
}

// Reset drops all entries and the pool.
func (d *Directory) Reset() {
	d.entries = make(map[oid.ID]*dirEntry)
	d.free = nil
	d.slots = 0
	// clock deliberately survives Reset: epochs captured before a
	// crash must never alias epochs handed out after it.
}
