package coherence

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
)

var gen = oid.NewSeededGenerator(41)

type tnode struct {
	host *netsim.Host
	ep   *transport.Endpoint
	st   *store.Store
	e2e  *discovery.E2E
	coh  *Node
}

type cluster struct {
	sim   *netsim.Sim
	nodes []*tnode
}

// newCluster builds a star fabric with E2E discovery on every node.
func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	sim := netsim.NewSim(13)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw", n, p4sim.SwitchConfig{LearnStations: true})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{sim: sim}
	for i := 0; i < n; i++ {
		h, err := netsim.NewHost(net, "h"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(h, 0, sw, i, netsim.LinkConfig{Latency: 5 * netsim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		ep := transport.NewEndpoint(h, wire.StationID(i+1), transport.Config{})
		st := store.New(0)
		e2e := discovery.NewE2E(ep, st.Contains)
		e2e.SetTimeout(500 * netsim.Microsecond)
		coh := NewNode(ep, st, e2e)
		nd := &tnode{host: h, ep: ep, st: st, e2e: e2e, coh: coh}
		ep.SetHandler(func(h *wire.Header, p []byte) {
			if nd.e2e.HandleFrame(h, p) {
				return
			}
			nd.coh.HandleFrame(h, p)
		})
		c.nodes = append(c.nodes, nd)
	}
	return c
}

// makeObject creates an object homed at node idx with a marker string.
func (c *cluster) makeObject(t *testing.T, idx int, size int, marker string) (*object.Object, uint64) {
	t.Helper()
	o, err := object.New(gen.New(), size, 8)
	if err != nil {
		t.Fatal(err)
	}
	off, err := o.AllocString(marker)
	if err != nil {
		t.Fatal(err)
	}
	nd := c.nodes[idx]
	if err := nd.st.Put(o, 1, true); err != nil {
		t.Fatal(err)
	}
	nd.e2e.Announce(o.ID())
	return o, off
}

// move migrates an object's home between nodes (the Figure 3 workload).
func (c *cluster) move(t *testing.T, obj oid.ID, from, to int) {
	t.Helper()
	f, tn := c.nodes[from], c.nodes[to]
	e, err := f.st.GetEntry(obj)
	if err != nil {
		t.Fatal(err)
	}
	raw := e.Obj.CloneBytes()
	v := e.Version
	if err := f.st.Delete(obj); err != nil {
		t.Fatal(err)
	}
	f.e2e.Withdraw(obj)
	o, err := object.FromBytes(obj, raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.st.Put(o, v, true); err != nil {
		t.Fatal(err)
	}
	tn.e2e.Announce(obj)
}

func TestAcquireLocalHit(t *testing.T) {
	c := newCluster(t, 2)
	o, _ := c.makeObject(t, 0, 4096, "local")
	var got *object.Object
	c.nodes[0].coh.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.sim.Run()
	if got == nil || got.ID() != o.ID() {
		t.Fatal("local acquire failed")
	}
	if c.nodes[0].coh.Counters().LocalHits != 1 {
		t.Fatalf("counters = %+v", c.nodes[0].coh.Counters())
	}
}

func TestAcquireRemoteCaches(t *testing.T) {
	c := newCluster(t, 3)
	o, off := c.makeObject(t, 1, 4096, "remote payload")
	reader := c.nodes[0]
	var got *object.Object
	reader.coh.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.sim.Run()
	if got == nil {
		t.Fatal("no object")
	}
	s, err := got.LoadString(off)
	if err != nil || s != "remote payload" {
		t.Fatalf("payload = %q, %v", s, err)
	}
	if !reader.st.Contains(o.ID()) {
		t.Fatal("acquired copy not cached")
	}
	// Directory at home records the sharer.
	if c.nodes[1].coh.Sharers(o.ID()) != 1 {
		t.Fatalf("Sharers = %d", c.nodes[1].coh.Sharers(o.ID()))
	}
	// Second acquire is local.
	reader.coh.ResetCounters()
	reader.coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {})
	c.sim.Run()
	if reader.coh.Counters().LocalHits != 1 {
		t.Fatal("second acquire went remote")
	}
}

func TestAcquireLargeObjectFragments(t *testing.T) {
	c := newCluster(t, 2)
	// 300 KB object: several 64 KB fragments.
	o, off := c.makeObject(t, 1, 300_000, "big object marker")
	var got *object.Object
	var gotErr error
	c.nodes[0].coh.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) {
		got, gotErr = obj, err
	})
	c.sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Size() != 300_000 {
		t.Fatalf("size = %d", got.Size())
	}
	s, err := got.LoadString(off)
	if err != nil || s != "big object marker" {
		t.Fatalf("marker = %q, %v", s, err)
	}
	if got.Checksum() != o.Checksum() {
		t.Fatal("checksum mismatch after fragmented transfer")
	}
}

func TestAcquireCoalescing(t *testing.T) {
	c := newCluster(t, 2)
	o, _ := c.makeObject(t, 1, 4096, "x")
	reader := c.nodes[0]
	done := 0
	for i := 0; i < 5; i++ {
		reader.coh.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) {
			if err != nil {
				t.Fatal(err)
			}
			done++
		})
	}
	c.sim.Run()
	if done != 5 {
		t.Fatalf("callbacks = %d", done)
	}
	if reader.coh.Counters().RemoteAcquires != 1 {
		t.Fatalf("RemoteAcquires = %d, want 1 (coalesced)", reader.coh.Counters().RemoteAcquires)
	}
}

func TestReadAtRemote(t *testing.T) {
	c := newCluster(t, 2)
	o, off := c.makeObject(t, 1, 4096, "read me")
	var got []byte
	c.nodes[0].coh.ReadAtCB(o.ID(), off+8, 7, func(b []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = append([]byte(nil), b...)
	})
	c.sim.Run()
	if string(got) != "read me" {
		t.Fatalf("got %q", got)
	}
	// Bus-style read must not cache the object.
	if c.nodes[0].st.Contains(o.ID()) {
		t.Fatal("ReadAt cached the object")
	}
}

func TestReadAtOutOfRange(t *testing.T) {
	c := newCluster(t, 2)
	o, _ := c.makeObject(t, 1, 4096, "x")
	var gotErr error
	c.nodes[0].coh.ReadAtCB(o.ID(), 1<<20, 8, func(b []byte, err error) { gotErr = err })
	c.sim.Run()
	if gotErr == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

func TestWriteAtRemoteInvalidatesSharers(t *testing.T) {
	c := newCluster(t, 3)
	o, off := c.makeObject(t, 0, 4096, "original")
	// Node 2 caches a copy.
	c.nodes[2].coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {})
	c.sim.Run()
	if !c.nodes[2].st.Contains(o.ID()) {
		t.Fatal("setup: no cached copy")
	}
	// Node 1 writes remotely to home (node 0).
	var werr error
	c.nodes[1].coh.WriteAtCB(o.ID(), off+8, []byte("CLOBBER!"), func(err error) { werr = err })
	c.sim.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	// Home applied and bumped version.
	home, _ := c.nodes[0].st.GetEntry(o.ID())
	s, _ := home.Obj.LoadString(off)
	if s != "CLOBBER!" {
		t.Fatalf("home content = %q", s)
	}
	if home.Version != 2 {
		t.Fatalf("home version = %d", home.Version)
	}
	// Sharer's copy invalidated.
	if c.nodes[2].st.Contains(o.ID()) {
		t.Fatal("stale sharer copy survived write")
	}
	if c.nodes[2].coh.Counters().InvalidatesRecv != 1 {
		t.Fatalf("InvalidatesRecv = %d", c.nodes[2].coh.Counters().InvalidatesRecv)
	}
}

func TestWriteAtLocalHome(t *testing.T) {
	c := newCluster(t, 2)
	o, off := c.makeObject(t, 0, 4096, "original")
	var werr error
	c.nodes[0].coh.WriteAtCB(o.ID(), off+8, []byte("NEWDATA!"), func(err error) { werr = err })
	c.sim.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	e, _ := c.nodes[0].st.GetEntry(o.ID())
	if e.Version != 2 {
		t.Fatalf("version = %d", e.Version)
	}
}

func TestStaleLocationRetry(t *testing.T) {
	// The Figure 3 mechanism: a cached destination goes stale after
	// movement; the access NACKs, rediscovers, and succeeds.
	c := newCluster(t, 3)
	o, off := c.makeObject(t, 1, 4096, "moving target")
	reader := c.nodes[0]
	// Warm reader's destination cache.
	var warm []byte
	reader.coh.ReadAtCB(o.ID(), off+8, 6, func(b []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		warm = b
	})
	c.sim.Run()
	if string(warm) != "moving" {
		t.Fatalf("warm read = %q", warm)
	}
	// Move the object 1 → 2; reader's cache still points at 1.
	c.move(t, o.ID(), 1, 2)
	var got []byte
	var gotErr error
	reader.coh.ReadAtCB(o.ID(), off+8, 6, func(b []byte, err error) {
		got, gotErr = append([]byte(nil), b...), err
	})
	c.sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if string(got) != "moving" {
		t.Fatalf("post-move read = %q", got)
	}
	if reader.coh.Counters().StaleRetries == 0 {
		t.Fatal("no stale retry recorded")
	}
	if c.nodes[1].coh.Counters().NotFoundServed == 0 {
		t.Fatal("old home never NACKed")
	}
}

func TestAcquireNonexistentFails(t *testing.T) {
	c := newCluster(t, 2)
	var gotErr error
	c.nodes[0].coh.AcquireSharedCB(gen.New(), func(_ *object.Object, err error) { gotErr = err })
	c.sim.Run()
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestExclusiveAcquireInvalidatesOthers(t *testing.T) {
	c := newCluster(t, 3)
	o, _ := c.makeObject(t, 0, 4096, "x")
	// Node 1 holds a shared copy.
	c.nodes[1].coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {})
	c.sim.Run()
	// Node 2 acquires exclusively via the wire path.
	home := c.nodes[0]
	_ = home
	var done bool
	n2 := c.nodes[2]
	n2.coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {}) // shared first to have it resolve
	c.sim.Run()
	// Directly exercise exclusive semantics at the home: a write
	// invalidates both sharers.
	var werr error
	n2.coh.WriteAtCB(o.ID(), object.HeaderSize+64*24, []byte("12345678"), func(err error) { werr = err })
	c.sim.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	done = !c.nodes[1].st.Contains(o.ID()) && !n2.st.Contains(o.ID())
	if !done {
		t.Fatal("write did not invalidate sharers")
	}
	_ = done
}

func TestAcquireExclusiveInvalidatesSharers(t *testing.T) {
	c := newCluster(t, 3)
	o, off := c.makeObject(t, 0, 4096, "shared state")
	// Node 1 holds a shared copy.
	c.nodes[1].coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {})
	c.sim.Run()
	if !c.nodes[1].st.Contains(o.ID()) {
		t.Fatal("setup: no shared copy")
	}
	// Node 2 acquires exclusively: node 1's copy must go.
	var excl *object.Object
	c.nodes[2].coh.AcquireExclusiveCB(o.ID(), func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		excl = obj
	})
	c.sim.Run()
	if excl == nil {
		t.Fatal("exclusive acquire incomplete")
	}
	if c.nodes[1].st.Contains(o.ID()) {
		t.Fatal("sharer survived exclusive acquire")
	}
	// Mutate and release: the home converges.
	if err := excl.WriteAt(off+8, []byte("EXCLUSIVE WR")); err != nil {
		t.Fatal(err)
	}
	var rerr error
	c.nodes[2].coh.ReleaseCB(o.ID(), func(err error) { rerr = err })
	c.sim.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	home, _ := c.nodes[0].st.GetEntry(o.ID())
	got, _ := home.Obj.ReadAt(off+8, 12)
	if string(got) != "EXCLUSIVE WR" {
		t.Fatalf("home = %q", got)
	}
	if home.Version != 2 {
		t.Fatalf("home version = %d", home.Version)
	}
}

func TestAcquireExclusiveAtHome(t *testing.T) {
	c := newCluster(t, 2)
	o, _ := c.makeObject(t, 0, 4096, "x")
	// Remote sharer first.
	c.nodes[1].coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {})
	c.sim.Run()
	var got *object.Object
	c.nodes[0].coh.AcquireExclusiveCB(o.ID(), func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.sim.Run()
	if got == nil || got.ID() != o.ID() {
		t.Fatal("home exclusive acquire failed")
	}
	if c.nodes[1].st.Contains(o.ID()) {
		t.Fatal("remote sharer survived home exclusive acquire")
	}
}

func TestReleasePushesDirtyCopyHome(t *testing.T) {
	c := newCluster(t, 2)
	o, off := c.makeObject(t, 1, 4096, "original")
	reader := c.nodes[0]
	var cached *object.Object
	reader.coh.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		cached = obj
	})
	c.sim.Run()
	// Mutate the cached copy and release it.
	if err := cached.WriteAt(off+8, []byte("MUTATED!")); err != nil {
		t.Fatal(err)
	}
	var rerr error
	reader.coh.ReleaseCB(o.ID(), func(err error) { rerr = err })
	c.sim.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	homeEntry, err := c.nodes[1].st.GetEntry(o.ID())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := homeEntry.Obj.LoadString(off)
	if s != "MUTATED!" {
		t.Fatalf("home content = %q", s)
	}
	if homeEntry.Version != 2 {
		t.Fatalf("home version = %d", homeEntry.Version)
	}
}

func TestReleaseOfHomeObjectIsNoop(t *testing.T) {
	c := newCluster(t, 2)
	o, _ := c.makeObject(t, 0, 4096, "x")
	var rerr error
	c.nodes[0].coh.ReleaseCB(o.ID(), func(err error) { rerr = err })
	c.sim.Run()
	if rerr != nil {
		t.Fatalf("home release: %v", rerr)
	}
}

func TestReleaseLargeObject(t *testing.T) {
	c := newCluster(t, 2)
	o, off := c.makeObject(t, 1, 200_000, "large original")
	reader := c.nodes[0]
	var cached *object.Object
	reader.coh.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) { cached = obj })
	c.sim.Run()
	if cached == nil {
		t.Fatal("acquire failed")
	}
	cached.WriteAt(off+8, []byte("LARGE MUTATED"))
	var rerr error
	reader.coh.ReleaseCB(o.ID(), func(err error) { rerr = err })
	c.sim.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	homeEntry, _ := c.nodes[1].st.GetEntry(o.ID())
	got, _ := homeEntry.Obj.ReadAt(off+8, 13)
	if !bytes.Equal(got, []byte("LARGE MUTATED")) {
		t.Fatalf("home content = %q", got)
	}
}

func TestStoreAccessor(t *testing.T) {
	c := newCluster(t, 1)
	if c.nodes[0].coh.Store() != c.nodes[0].st {
		t.Fatal("Store accessor")
	}
}

// TestDuplicatedPushUnderLossNeverHoley is the reassembly regression
// for the duplicate-byte completion bug: under 25% frame loss with
// every frame duplicated in flight, cross-attempt duplicate fragments
// plus losses must never let an acquire complete with a hole — every
// successful acquire yields a byte-exact copy of the home object.
func TestDuplicatedPushUnderLossNeverHoley(t *testing.T) {
	c := newCluster(t, 2)
	// 200 KB object: several 64 KB fragments per grant.
	o, _ := c.makeObject(t, 1, 200_000, "dup-loss payload")
	net := c.nodes[0].host.Network()
	net.SetFrameControlHook(func(from, to string, fr netsim.Frame) netsim.FrameControl {
		return netsim.FrameControl{Dup: true}
	})
	for _, nd := range c.nodes {
		net.SetLinkLoss(nd.host, 0, 0.25)
	}
	reader := c.nodes[0].coh
	successes := 0
	for round := 0; round < 20; round++ {
		var got *object.Object
		var gotErr error
		var attempt func(left int)
		attempt = func(left int) {
			reader.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) {
				if err != nil && left > 1 {
					c.sim.Schedule(250*netsim.Microsecond, func() { attempt(left - 1) })
					return
				}
				got, gotErr = obj, err
			})
		}
		attempt(8)
		c.sim.Run()
		if gotErr != nil {
			continue // all attempts lost; nothing may be cached hole-y either
		}
		successes++
		if got.Checksum() != o.Checksum() {
			t.Fatalf("round %d: acquired copy diverges from home (hole-y object)", round)
		}
		// Drop the cached copy so the next round refetches over the
		// lossy, duplicating fabric.
		if err := c.nodes[0].st.Invalidate(o.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if successes == 0 {
		t.Fatal("no acquire ever succeeded; loss model too aggressive for the retry budget")
	}
}
