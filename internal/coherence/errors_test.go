package coherence

import (
	"testing"

	"repro/internal/memproto"
	"repro/internal/object"
	"repro/internal/wire"
)

func TestInvalidateSharersDirect(t *testing.T) {
	c := newCluster(t, 3)
	o, _ := c.makeObject(t, 0, 4096, "x")
	// Two sharers.
	c.nodes[1].coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {})
	c.nodes[2].coh.AcquireSharedCB(o.ID(), func(*object.Object, error) {})
	c.sim.Run()
	if c.nodes[0].coh.Sharers(o.ID()) != 2 {
		t.Fatalf("sharers = %d", c.nodes[0].coh.Sharers(o.ID()))
	}
	c.nodes[0].coh.InvalidateSharers(o.ID())
	c.sim.Run()
	if c.nodes[1].st.Contains(o.ID()) || c.nodes[2].st.Contains(o.ID()) {
		t.Fatal("sharers survived explicit invalidation")
	}
	// Idempotent on unknown objects.
	c.nodes[0].coh.InvalidateSharers(gen.New())
	c.sim.Run()
}

func TestSharersUnknownObject(t *testing.T) {
	c := newCluster(t, 1)
	if c.nodes[0].coh.Sharers(gen.New()) != 0 {
		t.Fatal("phantom sharers")
	}
}

func TestWriteAtOutOfRange(t *testing.T) {
	c := newCluster(t, 2)
	o, _ := c.makeObject(t, 1, 4096, "x")
	var gotErr error
	c.nodes[0].coh.WriteAtCB(o.ID(), 1<<20, []byte("zz"), func(err error) { gotErr = err })
	c.sim.Run()
	if gotErr == nil {
		t.Fatal("out-of-range remote write accepted")
	}
	// Local home out-of-range write too.
	var gotErr2 error
	c.nodes[1].coh.WriteAtCB(o.ID(), 1<<20, []byte("zz"), func(err error) { gotErr2 = err })
	c.sim.Run()
	if gotErr2 == nil {
		t.Fatal("out-of-range local write accepted")
	}
}

func TestWriteAtNonexistent(t *testing.T) {
	c := newCluster(t, 2)
	var gotErr error
	c.nodes[0].coh.WriteAtCB(gen.New(), 0, []byte("zz"), func(err error) { gotErr = err })
	c.sim.Run()
	if gotErr == nil {
		t.Fatal("write to nonexistent object accepted")
	}
}

func TestReadAtNonexistent(t *testing.T) {
	c := newCluster(t, 2)
	var gotErr error
	c.nodes[0].coh.ReadAtCB(gen.New(), 0, 8, func(_ []byte, err error) { gotErr = err })
	c.sim.Run()
	if gotErr == nil {
		t.Fatal("read of nonexistent object accepted")
	}
}

func TestReleaseNotHeld(t *testing.T) {
	c := newCluster(t, 2)
	var gotErr error
	c.nodes[0].coh.ReleaseCB(gen.New(), func(err error) { gotErr = err })
	c.sim.Run()
	if gotErr == nil {
		t.Fatal("release of unheld object accepted")
	}
}

func TestHandleFrameIgnoresOtherTypes(t *testing.T) {
	c := newCluster(t, 1)
	n := c.nodes[0].coh
	if n.HandleFrame(&wire.Header{Type: wire.MsgRPC}, nil) {
		t.Fatal("consumed a non-mem frame")
	}
	// Malformed memproto payload is consumed (and dropped) silently.
	if !n.HandleFrame(&wire.Header{Type: wire.MsgMem}, []byte{1, 2}) {
		t.Fatal("malformed mem frame not consumed")
	}
}

func TestServeReleaseToNonHome(t *testing.T) {
	// A release arriving at a node that is not the object's home gets
	// a not-found status back.
	c := newCluster(t, 2)
	o, _ := c.makeObject(t, 1, 4096, "elsewhere")
	// Node 0 acquires a copy, then node 1's home moves away
	// (simulated by deleting at node 1 post-acquire).
	var cached *object.Object
	c.nodes[0].coh.AcquireSharedCB(o.ID(), func(obj *object.Object, err error) { cached = obj })
	c.sim.Run()
	if cached == nil {
		t.Fatal("setup acquire failed")
	}
	c.nodes[1].st.Delete(o.ID())
	c.nodes[1].e2e.Withdraw(o.ID())
	// Note: node 0's resolver cache still points at node 1, so the
	// release lands there and must be NACKed.
	var rerr error
	c.nodes[0].coh.ReleaseCB(o.ID(), func(err error) { rerr = err })
	c.sim.Run()
	if rerr == nil {
		t.Fatal("release to non-home accepted")
	}
}

func TestGrantFragmentWithoutFetchIgnored(t *testing.T) {
	c := newCluster(t, 1)
	// An unsolicited push for an object we never requested must be
	// ignored without state corruption.
	m := memproto.Msg{Op: memproto.OpObjectPush, TotalLen: 10, Data: make([]byte, 10)}
	c.nodes[0].coh.HandleFrame(&wire.Header{Type: wire.MsgMem, Object: gen.New()},
		m.Marshal(nil))
	c.sim.Run()
	if c.nodes[0].st.Len() != 0 {
		t.Fatal("phantom object appeared")
	}
}
