package coherence

import (
	"testing"

	"repro/internal/oid"
	"repro/internal/wire"
)

func TestDirectoryAddRemoveEpochGuard(t *testing.T) {
	d := NewDirectory()
	obj := oid.ID{Hi: 1, Lo: 2}
	d.Add(obj, 5)
	e1, ok := d.Epoch(obj, 5)
	if !ok {
		t.Fatal("sharer 5 not recorded")
	}
	// Re-registration bumps the epoch: a deferred removal captured at
	// e1 must now be a no-op.
	d.Add(obj, 5)
	if d.Remove(obj, 5, e1) {
		t.Fatal("Remove succeeded with a stale epoch")
	}
	if d.Sharers(obj) != 1 {
		t.Fatalf("Sharers = %d, want 1", d.Sharers(obj))
	}
	e2, _ := d.Epoch(obj, 5)
	if e2 == e1 {
		t.Fatal("re-registration did not bump the epoch")
	}
	if !d.Remove(obj, 5, e2) {
		t.Fatal("Remove failed with the current epoch")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after last sharer left, want 0 (entry recycled)", d.Len())
	}
}

func TestDirectoryEpochsNeverAliasAcrossRecycle(t *testing.T) {
	d := NewDirectory()
	obj := oid.ID{Hi: 9}
	// Two invalidation rounds capture the same epoch; the first ack
	// removes the sharer (entry recycled), the sharer re-registers,
	// and the second, late ack must NOT remove the fresh registration.
	d.Add(obj, 7)
	captured, _ := d.Epoch(obj, 7)
	if !d.Remove(obj, 7, captured) {
		t.Fatal("first ack should remove")
	}
	d.Add(obj, 7) // re-acquire overtakes the second ack
	if d.Remove(obj, 7, captured) {
		t.Fatal("late ack from before recycling removed a fresh registration")
	}
	if d.Sharers(obj) != 1 {
		t.Fatalf("Sharers = %d, want 1", d.Sharers(obj))
	}
}

func TestDirectoryPoolingAndBytes(t *testing.T) {
	d := NewDirectory()
	var ids []oid.ID
	for i := 0; i < 100; i++ {
		id := oid.ID{Hi: uint64(i + 1)}
		ids = append(ids, id)
		d.Add(id, wire.StationID(1+i%3))
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	if got, min := d.Bytes(), 100*dirEntryOverheadBytes+100*dirSlotBytes; got < min {
		t.Fatalf("Bytes = %d, want >= %d", got, min)
	}
	for _, id := range ids {
		st := d.SharerSet(id)[0]
		ep, _ := d.Epoch(id, st)
		d.Remove(id, st, ep)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", d.Len())
	}
	if len(d.free) != 100 {
		t.Fatalf("free pool = %d, want 100", len(d.free))
	}
	before := len(d.free)
	d.Add(ids[0], 1)
	if len(d.free) != before-1 {
		t.Fatal("Add did not reuse a pooled entry")
	}
}

func TestDirectoryForEachOrderAndSharerSet(t *testing.T) {
	d := NewDirectory()
	obj := oid.ID{Lo: 3}
	d.Add(obj, 9)
	d.Add(obj, 4)
	d.Add(obj, 6)
	var order []wire.StationID
	d.ForEach(obj, func(st wire.StationID, _ uint64) { order = append(order, st) })
	if len(order) != 3 || order[0] != 9 || order[1] != 4 || order[2] != 6 {
		t.Fatalf("ForEach order = %v, want registration order [9 4 6]", order)
	}
	set := d.SharerSet(obj)
	if len(set) != 3 || set[0] != 4 || set[1] != 6 || set[2] != 9 {
		t.Fatalf("SharerSet = %v, want sorted [4 6 9]", set)
	}
}
