// Package coherence implements object-granularity cache coherence over
// the memory protocol: each object's home node keeps a directory of
// copy holders; readers acquire shared copies, writers invalidate
// sharers, and every access carries a version so stale data is fenced.
//
// This is the "additional message types" layer of §3.2 (acquire,
// probe/invalidate, release — TileLink-style) and the infrastructure
// that absorbs the caching/invalidation logic applications otherwise
// reimplement (§3, §5).
//
// It also implements the stale-location retry the E2E discovery scheme
// needs (Figure 3): an access that reaches a node which no longer
// holds the object gets StatusNotFound, invalidates the requester's
// destination cache, re-resolves (broadcast), and retries.
package coherence

import (
	"fmt"
	"sort"

	"repro/internal/backend"
	"repro/internal/discovery"
	"repro/internal/future"
	"repro/internal/gasperr"
	"repro/internal/memproto"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Errors surfaced by coherence operations. Both wrap the gasperr
// taxonomy: retries exhausting means the holder was unreachable.
var (
	ErrNotFound   = fmt.Errorf("coherence: object not found anywhere: %w", gasperr.ErrNotFound)
	ErrMaxRetries = fmt.Errorf("coherence: access retries exhausted: %w", gasperr.ErrUnreachable)
)

// maxAccessAttempts bounds stale-location retries: initial attempt,
// one rediscovery, one final retry.
const maxAccessAttempts = 3

// Counters aggregates coherence statistics.
type Counters struct {
	LocalHits       uint64
	RemoteAcquires  uint64
	RemoteReads     uint64
	RemoteWrites    uint64
	GrantsServed    uint64
	ReadsServed     uint64
	WritesServed    uint64
	InvalidatesSent uint64
	InvalidatesRecv uint64
	StaleRetries    uint64
	NotFoundServed  uint64
	DeniedServed    uint64
	NotHomeServed   uint64
	Releases        uint64
}

// fetchState is the pooled per-fetch state of an acquire: reassembly,
// coalesced waiter callbacks, and the resolve→request→stale-retry
// machinery with its callbacks pre-bound at allocation so a recycled
// fetch re-arms without allocating closures. Instances cycle through
// Node.fetchFree; at most one bound callback (resolver or request) is
// outstanding at a time, and a fetch is only recycled from inside that
// callback or when none is outstanding, so a pooled struct is never
// mutated under an in-flight continuation.
type fetchState struct {
	n        *Node
	obj      oid.ID
	re       memproto.Reassembler
	cbs      []func(*object.Object, error)
	want     memproto.Perm // permission the caller asked for
	perm     memproto.Perm // highest permission the grant carried
	started  backend.Time  // when the fetch was initiated
	watchdog backend.Timer
	attempt  int
	tc       trace.Ctx
	rm       memproto.Msg // response decode scratch

	resolveFn func(discovery.Result, error)
	respFn    func(*wire.Header, []byte, error)
	stallFn   func()
}

// getFetch pops a recycled fetchState (or allocates one, binding its
// method-value callbacks exactly once — binding on every op would
// itself allocate).
func (n *Node) getFetch() *fetchState {
	if k := len(n.fetchFree) - 1; k >= 0 {
		f := n.fetchFree[k]
		n.fetchFree[k] = nil
		n.fetchFree = n.fetchFree[:k]
		return f
	}
	f := &fetchState{n: n}
	f.resolveFn = f.resolve
	f.respFn = f.rawResp
	f.stallFn = f.stall
	return f
}

// putFetch clears per-fetch state and returns f to the free list. The
// bound callbacks and the (stopped) watchdog timer are kept — they are
// the expensive parts reuse exists for.
func (n *Node) putFetch(f *fetchState) {
	for i := range f.cbs {
		f.cbs[i] = nil
	}
	f.cbs = f.cbs[:0]
	f.obj = oid.ID{}
	f.re = memproto.Reassembler{}
	f.want, f.perm = memproto.PermNone, memproto.PermNone
	f.attempt = 0
	f.tc = trace.Ctx{}
	f.rm = memproto.Msg{}
	n.fetchFree = append(n.fetchFree, f)
}

// fetchStallTimeout bounds the gap between fragments of a partially
// received grant. Every other fetch phase is bounded by request
// timeouts, but once the grant response has landed the remaining
// stream has no requester-side timer — and the home's fragment
// retransmissions give up after the transport retry budget, so a
// mid-stream fragment lost for good would otherwise hang the fetch
// (and every coalesced caller) forever. No progress for this long
// fails the fetch with a retryable error instead.
const fetchStallTimeout = 10 * backend.Millisecond

// newFetch registers an in-flight fetch. The stall watchdog is armed
// lazily, on the first partial reassembly progress (armStall), so
// single-fragment fetches never schedule one.
func (n *Node) newFetch(obj oid.ID, want memproto.Perm, cb func(*object.Object, error)) *fetchState {
	f := n.getFetch()
	f.obj = obj
	f.want = want
	f.started = n.clock.Now()
	f.cbs = append(f.cbs, cb)
	n.fetches[obj] = f
	return f
}

// armStall (re)arms the reassembly stall watchdog after progress.
// Reset consumes one event sequence number, exactly like the fresh
// AfterFunc it replaces, so timer reuse is bit-identical to the old
// arm-per-progress schedule.
func (n *Node) armStall(fs *fetchState) {
	fs.watchdog = backend.ResetTimer(n.clock, fs.watchdog, fetchStallTimeout, fs.stallFn)
}

// stall is the pre-bound watchdog callback.
func (f *fetchState) stall() {
	n := f.n
	if n.fetches[f.obj] != f { // completed, or a successor fetch
		return
	}
	n.finishFetch(f.obj, nil, fmt.Errorf("%w: object transfer stalled", ErrMaxRetries))
}

// begin starts (or restarts, on stale-location retry) the fetch's
// resolve→acquire chain for the current attempt.
func (f *fetchState) begin() {
	f.n.resolver.ResolveCtx(f.obj, f.tc, f.resolveFn)
}

// resolve is the pre-bound resolver continuation: address the holder
// and issue the acquire request.
func (f *fetchState) resolve(r discovery.Result, err error) {
	n := f.n
	if n.fetches[f.obj] != f {
		return // fetch completed or superseded while resolving
	}
	if err != nil {
		n.finishFetch(f.obj, nil, fmt.Errorf("%w: %v", ErrNotFound, err))
		return
	}
	h := wire.Header{Type: wire.MsgMem, Object: f.obj}
	f.tc.Inject(&h)
	if r.RouteOnObject {
		h.Flags |= wire.FlagRouteOnObject
		h.Dst = wire.StationID(0)
	} else {
		h.Dst = r.Station
	}
	m := memproto.Msg{Op: memproto.OpAcquire, Perm: f.want}
	n.ep.Request(h, n.marshal(&m), 0, f.respFn)
}

// rawResp is the pre-bound acquire-response continuation: grant,
// authoritative denial, or stale-location retry.
func (f *fetchState) rawResp(_ *wire.Header, payload []byte, err error) {
	n := f.n
	if n.fetches[f.obj] != f {
		return
	}
	rm := &f.rm
	if err == nil {
		if uerr := rm.Unmarshal(payload); uerr != nil {
			err = uerr
		}
	}
	if err == nil && rm.Status == memproto.StatusOK {
		n.grantFragment(f.obj, rm)
		return
	}
	// Access denial is authoritative — rediscovery will not change the
	// answer.
	if err == nil && rm.Status == memproto.StatusDenied {
		n.finishFetch(f.obj, nil, rm.Status.Err())
		return
	}
	// Stale location or transient failure: invalidate and retry
	// through rediscovery.
	if f.attempt >= maxAccessAttempts {
		if err == nil {
			err = rm.Status.Err()
		}
		n.finishFetch(f.obj, nil, fmt.Errorf("%w: %v", ErrMaxRetries, err))
		return
	}
	n.counters.StaleRetries++
	n.resolver.Invalidate(f.obj)
	f.attempt++
	f.begin()
}

// Node is one host's coherence engine.
type Node struct {
	ep       *transport.Endpoint
	store    *store.Store
	resolver discovery.Resolver
	clock    backend.Clock

	directory *Directory
	fetches   map[oid.ID]*fetchState
	releases  map[releaseKey]*memproto.Reassembler
	granted   map[oid.ID]memproto.Perm

	tracer   *trace.Recorder
	observer OpObserver
	counters Counters

	// Hot-path recycling: tx is the marshal scratch every send encodes
	// into (safe because every transmit path copies the payload into a
	// pooled frame buffer before returning), and the free lists hold
	// recycled per-operation state with pre-bound callbacks.
	tx         []byte
	accessFree []*accessOp
	fetchFree  []*fetchState

	// In-network computation (inc.go): home-side multicast
	// invalidation rounds and the installed-group cache. All nil/zero
	// until SetIncConfig enables the paths.
	incCfg       IncConfig
	incCounters  IncCounters
	incGroups    map[string]*incGroup
	incNextGroup uint64
	incOps       map[uint64]*incPending
	incNextOp    uint64
}

// OpObserver receives the name and outcome of every public operation
// ("acquire_shared", "acquire_exclusive", "read", "write", "release")
// exactly when its caller learns the result — the per-op completion
// hook the workload engine tallies goodput from. Local hits fire it
// too: an operation is an operation wherever it completes.
type OpObserver func(op string, err error)

type releaseKey struct {
	src wire.StationID
	obj oid.ID
}

// maxFragData sizes grant fragments to the endpoint's link MTU so
// whole-object transfers fit real datagrams. 0 (no link limit — the
// simulator) selects memproto.MaxFragData, which keeps seeded sim
// runs bit-identical to the pre-seam fragmenter.
func (n *Node) maxFragData() int {
	mtu := n.ep.MTU()
	if mtu <= 0 {
		return 0
	}
	return memproto.FragDataFor(mtu - wire.TracedHeaderSize)
}

// NewNode creates a coherence engine over an endpoint, a local store,
// and a resolver.
func NewNode(ep *transport.Endpoint, st *store.Store, res discovery.Resolver) *Node {
	return &Node{
		ep:        ep,
		store:     st,
		resolver:  res,
		clock:     ep.Clock(),
		directory: NewDirectory(),
		fetches:   make(map[oid.ID]*fetchState),
		releases:  make(map[releaseKey]*memproto.Reassembler),
		granted:   make(map[oid.ID]memproto.Perm),
	}
}

// SetTracer attaches a span recorder: each public operation becomes a
// sampled trace root whose context rides the wire to every hop.
func (n *Node) SetTracer(r *trace.Recorder) { n.tracer = r }

// SetOpObserver installs the per-op completion hook (nil to disable),
// replacing any observer already present.
func (n *Node) SetOpObserver(fn OpObserver) { n.observer = fn }

// AddOpObserver chains fn after any installed observer, so independent
// listeners (workload counters, the invariant checker) compose instead
// of clobbering each other.
func (n *Node) AddOpObserver(fn OpObserver) {
	if fn == nil {
		return
	}
	if prev := n.observer; prev != nil {
		n.observer = func(op string, err error) {
			prev(op, err)
			fn(op, err)
		}
		return
	}
	n.observer = fn
}

// Counters returns a copy of the statistics.
func (n *Node) Counters() Counters { return n.counters }

// ResetCounters zeroes the statistics.
func (n *Node) ResetCounters() { n.counters = Counters{} }

// Store returns the node's object store.
func (n *Node) Store() *store.Store { return n.store }

// Directory exposes the node's sharer directory (read-mostly: the
// checker and telemetry inspect it; mutation stays inside this
// package's protocol handlers).
func (n *Node) Directory() *Directory { return n.directory }

// Sharers reports the directory's copy holders for a home object.
func (n *Node) Sharers(obj oid.ID) int {
	return n.directory.Sharers(obj)
}

// AddSharer records st as a copy holder of a home object — used to
// rebuild the directory when this node is promoted to home after the
// previous home crashed and its directory died with it.
func (n *Node) AddSharer(obj oid.ID, st wire.StationID) {
	if st == n.ep.Station() {
		return
	}
	n.directory.Add(obj, st)
}

// SharerSet returns the directory's recorded copy holders of a home
// object, sorted for deterministic iteration. The directory may
// over-approximate (an evicted copy lingers until the next
// invalidation round); it must never under-approximate a live copy.
func (n *Node) SharerSet(obj oid.ID) []wire.StationID {
	return n.directory.SharerSet(obj)
}

// GrantedPerm reports the coherence permission this node holds on its
// cached copy of obj: PermNone when no copy is present (never granted,
// invalidated, or silently evicted). Home copies report PermNone —
// authority is not a grant.
func (n *Node) GrantedPerm(obj oid.ID) memproto.Perm {
	p, ok := n.granted[obj]
	if !ok || !n.store.Contains(obj) {
		return memproto.PermNone
	}
	return p
}

// PendingFetch describes one in-flight object fetch.
type PendingFetch struct {
	Obj   oid.ID
	Since backend.Time
}

// PendingFetches lists in-flight fetches sorted by object ID — the
// checker's input for the no-fetch-outstanding-past-bound invariant.
func (n *Node) PendingFetches() []PendingFetch {
	if len(n.fetches) == 0 {
		return nil
	}
	out := make([]PendingFetch, 0, len(n.fetches))
	for id, f := range n.fetches {
		out = append(out, PendingFetch{Obj: id, Since: f.started})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj.Less(out[j].Obj) })
	return out
}

// Reset abandons all coherence state — directory, in-flight fetches
// and release reassembly — modeling a process crash. Pending fetch
// callbacks are dropped without being invoked (their continuations
// died with the process).
func (n *Node) Reset() {
	n.directory.Reset()
	n.fetches = make(map[oid.ID]*fetchState)
	n.releases = make(map[releaseKey]*memproto.Reassembler)
	n.granted = make(map[oid.ID]memproto.Perm)
	if n.incOps != nil {
		for _, p := range n.incOps {
			if p.timer != nil {
				p.timer.Stop()
			}
		}
		n.incOps = make(map[uint64]*incPending)
		n.incGroups = make(map[string]*incGroup)
	}
}

// marshal encodes m into the node's transmit scratch buffer. Every
// transmit path copies the payload into a pooled frame buffer before
// returning (dataplane.EncodeFrame), so the scratch is free again as
// soon as the send call returns — one growable buffer serves every
// message this node ever sends.
func (n *Node) marshal(m *memproto.Msg) []byte {
	b := m.Marshal(n.tx[:0])
	n.tx = b
	return b
}

// send transmits a memory-protocol message unreliably.
func (n *Node) send(dst wire.StationID, obj oid.ID, m *memproto.Msg) {
	n.ep.Send(wire.Header{Type: wire.MsgMem, Dst: dst, Object: obj}, n.marshal(m))
}

// sendReliable transmits a memory-protocol message with ack/retry.
func (n *Node) sendReliable(dst wire.StationID, obj oid.ID, tc trace.Ctx, m *memproto.Msg) {
	h := wire.Header{Type: wire.MsgMem, Dst: dst, Object: obj}
	tc.Inject(&h)
	n.ep.SendReliable(h, n.marshal(m), nil)
}

// request performs a reliable memory-protocol request and decodes the
// response. The decode closure allocates; pooled operations (accessOp,
// fetchState) use their pre-bound raw continuations instead.
func (n *Node) request(h wire.Header, m *memproto.Msg, cb func(*wire.Header, *memproto.Msg, error)) {
	n.ep.Request(h, n.marshal(m), 0, func(resp *wire.Header, payload []byte, err error) {
		if err != nil {
			cb(nil, nil, err)
			return
		}
		var rm memproto.Msg
		if err := rm.Unmarshal(payload); err != nil {
			cb(nil, nil, err)
			return
		}
		cb(resp, &rm, nil)
	})
}

// respond answers a memory-protocol request.
func (n *Node) respond(req *wire.Header, m *memproto.Msg) {
	n.ep.Respond(req, wire.Header{Type: wire.MsgMem, Object: req.Object}, n.marshal(m))
}

// --- access paths (requester side) ---

// opDone wraps an operation callback so the operation's root span ends
// (recording any error) and the op observer fires exactly when the
// caller learns the outcome — the root span's duration equals the
// externally observable latency. With no tracer and no observer it
// returns cb unchanged: the hot path costs nothing when nobody listens.
func opDone[T any](n *Node, name string, sp *trace.Span, cb func(T, error)) func(T, error) {
	if sp == nil && n.observer == nil {
		return cb
	}
	return func(v T, err error) {
		if sp != nil {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}
		if n.observer != nil {
			n.observer(name, err)
		}
		cb(v, err)
	}
}

// opFinish ends a local-hit operation: span close plus observer fire,
// with no wrapper closure, so the cached fast path stays
// allocation-free even with an observer installed.
func (n *Node) opFinish(name string, sp *trace.Span, err error) {
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if n.observer != nil {
		n.observer(name, err)
	}
}

// opDoneErr is opDone for error-only callbacks.
func opDoneErr(n *Node, name string, sp *trace.Span, cb func(error)) func(error) {
	if sp == nil && n.observer == nil {
		return cb
	}
	return func(err error) {
		if sp != nil {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}
		if n.observer != nil {
			n.observer(name, err)
		}
		cb(err)
	}
}

// AcquireShared obtains a (possibly cached) copy of obj, fetching and
// caching it from its holder if needed. The returned future resolves
// as the simulation runs.
func (n *Node) AcquireShared(obj oid.ID) *future.Future[*object.Object] {
	f, complete := future.New[*object.Object]()
	n.AcquireSharedCB(obj, complete)
	return f
}

// AcquireSharedCB is the callback form of AcquireShared, for callers
// that chain continuations directly.
func (n *Node) AcquireSharedCB(obj oid.ID, cb func(*object.Object, error)) {
	sp := n.tracer.StartRoot("op:acquire-shared")
	cb = opDone(n, "acquire_shared", sp, cb)
	if o, ok := n.store.Lookup(obj); ok {
		n.counters.LocalHits++
		sp.SetAttr("local", "hit")
		cb(o, nil)
		return
	}
	if f, pending := n.fetches[obj]; pending {
		sp.SetAttr("coalesced", "true")
		f.cbs = append(f.cbs, cb)
		return
	}
	f := n.newFetch(obj, memproto.PermShared, cb)
	n.counters.RemoteAcquires++
	f.tc = sp.Ctx()
	f.attempt = 1
	f.begin()
}

// grantFragment ingests a grant (first fragment arrives as the request
// response; the rest arrive as unsolicited OpObjectPush frames).
func (n *Node) grantFragment(obj oid.ID, m *memproto.Msg) {
	f, ok := n.fetches[obj]
	if !ok {
		return
	}
	push := *m
	push.Op = memproto.OpObjectPush
	if m.Perm > f.perm {
		f.perm = m.Perm // the grant response names the permission
	}
	done, err := f.re.Add(&push)
	if err != nil {
		n.finishFetch(obj, nil, err)
		return
	}
	if !done {
		n.armStall(f)
		return
	}
	o, err := object.FromBytes(obj, f.re.Bytes())
	if err != nil {
		n.finishFetch(obj, nil, err)
		return
	}
	if err := n.store.Put(o, f.re.Version(), false); err != nil {
		n.finishFetch(obj, nil, err)
		return
	}
	if f.perm == memproto.PermNone {
		f.perm = memproto.PermShared
	}
	n.granted[obj] = f.perm
	n.finishFetch(obj, o, nil)
}

func (n *Node) finishFetch(obj oid.ID, o *object.Object, err error) {
	f, ok := n.fetches[obj]
	if !ok {
		return
	}
	delete(n.fetches, obj)
	if f.watchdog != nil {
		f.watchdog.Stop()
	}
	// f is out of the map, so no callback can reach it; it is recycled
	// after the waiters run (a waiter that starts a new fetch gets a
	// different pooled struct).
	for i := range f.cbs {
		f.cbs[i](o, err)
	}
	n.putFetch(f)
}

// AcquireExclusive obtains a copy with exclusive permission: the home
// invalidates every other cached copy before granting, so the caller
// may mutate its copy and push it back with Release. If this node is
// the home, sharers are invalidated and the authoritative copy is
// returned directly.
func (n *Node) AcquireExclusive(obj oid.ID) *future.Future[*object.Object] {
	f, complete := future.New[*object.Object]()
	n.AcquireExclusiveCB(obj, complete)
	return f
}

// AcquireExclusiveCB is the callback form of AcquireExclusive.
func (n *Node) AcquireExclusiveCB(obj oid.ID, cb func(*object.Object, error)) {
	sp := n.tracer.StartRoot("op:acquire-excl")
	cb = opDone(n, "acquire_exclusive", sp, cb)
	if e, ok := n.store.LookupEntry(obj); ok && e.Home {
		n.counters.LocalHits++
		sp.SetAttr("local", "home")
		n.invalidateSharers(obj, 0)
		cb(e.Obj, nil)
		return
	}
	// A shared copy is not enough — refetch with exclusive
	// permission so the home demotes other sharers.
	n.store.Invalidate(obj)
	delete(n.granted, obj)
	if f, pending := n.fetches[obj]; pending {
		// A shared fetch is in flight; piggyback (the grant permission
		// races, but single-threaded simulation keeps this ordered —
		// callers needing strict exclusivity serialize their acquires).
		sp.SetAttr("coalesced", "true")
		f.cbs = append(f.cbs, cb)
		return
	}
	f := n.newFetch(obj, memproto.PermExclusive, cb)
	n.counters.RemoteAcquires++
	f.tc = sp.Ctx()
	f.attempt = 1
	f.begin()
}

// ReadAt reads [off, off+length) of obj from wherever it lives,
// without caching the object (a bus-style load, §3.2).
func (n *Node) ReadAt(obj oid.ID, off uint64, length int) *future.Future[[]byte] {
	f, complete := future.New[[]byte]()
	n.ReadAtCB(obj, off, length, complete)
	return f
}

// ReadAtCB is the callback form of ReadAt.
func (n *Node) ReadAtCB(obj oid.ID, off uint64, length int, cb func([]byte, error)) {
	sp := n.tracer.StartRoot("op:read")
	if o, ok := n.store.Lookup(obj); ok {
		n.counters.LocalHits++
		sp.SetAttr("local", "hit")
		b, err := o.ReadAt(off, length)
		n.opFinish("read", sp, err)
		cb(b, err)
		return
	}
	n.counters.RemoteReads++
	op := n.getAccessOp()
	op.obj = obj
	op.name = "read"
	op.sp = sp
	op.tc = sp.Ctx()
	op.attempt = 1
	op.m = memproto.Msg{Op: memproto.OpReadReq, Offset: off, Length: uint32(length)}
	op.readCB = cb
	op.begin()
}

// WriteAt writes data at off in obj at its home; the home invalidates
// cached copies and bumps the version.
func (n *Node) WriteAt(obj oid.ID, off uint64, data []byte) *future.Future[struct{}] {
	f, complete := future.New[struct{}]()
	n.WriteAtCB(obj, off, data, func(err error) { complete(struct{}{}, err) })
	return f
}

// WriteAtCB is the callback form of WriteAt.
func (n *Node) WriteAtCB(obj oid.ID, off uint64, data []byte, cb func(error)) {
	sp := n.tracer.StartRoot("op:write")
	if e, ok := n.store.LookupEntry(obj); ok && e.Home {
		n.counters.LocalHits++
		sp.SetAttr("local", "home")
		if err := e.Obj.WriteAt(off, data); err != nil {
			n.opFinish("write", sp, err)
			cb(err)
			return
		}
		n.store.BumpVersion(obj)
		n.invalidateSharers(obj, 0)
		n.opFinish("write", sp, nil)
		cb(nil)
		return
	}
	n.counters.RemoteWrites++
	op := n.getAccessOp()
	op.obj = obj
	op.name = "write"
	op.sp = sp
	op.tc = sp.Ctx()
	op.attempt = 1
	op.m = memproto.Msg{Op: memproto.OpWriteReq, Offset: off, Data: data}
	op.writeCB = cb
	op.begin()
}

// accessOp is the pooled requester-side state of one bus-style read or
// write: the resolve→request→stale-retry loop with every callback
// pre-bound at allocation, so a warm remote access allocates nothing
// beyond the response copy the caller keeps. Exactly one of readCB and
// writeCB is set; like fetchState, at most one bound continuation is
// outstanding at a time and the op is only recycled from inside it.
type accessOp struct {
	n       *Node
	obj     oid.ID
	name    string // "read" or "write" (span + observer label)
	attempt int
	tc      trace.Ctx
	sp      *trace.Span
	m       memproto.Msg // request (Data borrows the caller's bytes)
	rm      memproto.Msg // response decode scratch
	readCB  func([]byte, error)
	writeCB func(error)

	resolveFn func(discovery.Result, error)
	respFn    func(*wire.Header, []byte, error)
}

// getAccessOp pops a recycled accessOp (or allocates one, binding its
// method-value callbacks exactly once).
func (n *Node) getAccessOp() *accessOp {
	if k := len(n.accessFree) - 1; k >= 0 {
		op := n.accessFree[k]
		n.accessFree[k] = nil
		n.accessFree = n.accessFree[:k]
		return op
	}
	op := &accessOp{n: n}
	op.resolveFn = op.resolve
	op.respFn = op.rawResp
	return op
}

// putAccessOp clears per-op state and returns op to the free list.
func (n *Node) putAccessOp(op *accessOp) {
	op.obj = oid.ID{}
	op.name = ""
	op.attempt = 0
	op.tc = trace.Ctx{}
	op.sp = nil
	op.m = memproto.Msg{}
	op.rm = memproto.Msg{}
	op.readCB = nil
	op.writeCB = nil
	n.accessFree = append(n.accessFree, op)
}

// begin starts (or restarts, on stale-location retry) the op's
// resolve→request chain for the current attempt.
func (op *accessOp) begin() {
	op.n.resolver.ResolveCtx(op.obj, op.tc, op.resolveFn)
}

// resolve is the pre-bound resolver continuation: address the holder
// and issue the access request.
func (op *accessOp) resolve(r discovery.Result, err error) {
	n := op.n
	if err != nil {
		op.finish(nil, fmt.Errorf("%w: %v", ErrNotFound, err))
		return
	}
	h := wire.Header{Type: wire.MsgMem, Object: op.obj}
	op.tc.Inject(&h)
	if r.RouteOnObject {
		h.Flags |= wire.FlagRouteOnObject
	} else {
		h.Dst = r.Station
	}
	n.ep.Request(h, n.marshal(&op.m), 0, op.respFn)
}

// rawResp is the pre-bound response continuation: success,
// authoritative denial, or stale-location retry.
func (op *accessOp) rawResp(_ *wire.Header, payload []byte, err error) {
	n := op.n
	rm := &op.rm
	if err == nil {
		if uerr := rm.Unmarshal(payload); uerr != nil {
			err = uerr
		}
	}
	switch {
	case err == nil && rm.Status == memproto.StatusOK:
		if op.readCB != nil {
			// rm.Data is a view into the frame buffer, which is
			// recycled after dispatch; the caller keeps the bytes, so
			// copy — the one allocation a warm remote read pays.
			data := make([]byte, len(rm.Data))
			copy(data, rm.Data)
			op.finish(data, nil)
			return
		}
		// Write applied at the home: our own cached copy (if any) is
		// now stale.
		n.store.Invalidate(op.obj)
		delete(n.granted, op.obj)
		op.finish(nil, nil)
	case err == nil && rm.Status == memproto.StatusDenied:
		op.finish(nil, rm.Status.Err())
	case op.attempt >= maxAccessAttempts:
		if err == nil {
			err = rm.Status.Err()
		}
		op.finish(nil, fmt.Errorf("%w: %v", ErrMaxRetries, err))
	default:
		n.counters.StaleRetries++
		n.resolver.Invalidate(op.obj)
		op.attempt++
		op.begin()
	}
}

// finish ends the op's span, fires the observer, recycles the op, and
// then invokes the caller's callback — recycle-before-callback so a
// continuation that immediately issues another operation reuses this
// op's storage.
func (op *accessOp) finish(b []byte, err error) {
	n, sp, name := op.n, op.sp, op.name
	readCB, writeCB := op.readCB, op.writeCB
	n.putAccessOp(op)
	n.opFinish(name, sp, err)
	if readCB != nil {
		readCB(b, err)
	} else {
		writeCB(err)
	}
}

// Release pushes a locally modified cached copy back to the object's
// home (OpRelease), which applies it and bumps the version.
func (n *Node) Release(obj oid.ID) *future.Future[struct{}] {
	f, complete := future.New[struct{}]()
	n.ReleaseCB(obj, func(err error) { complete(struct{}{}, err) })
	return f
}

// ReleaseCB is the callback form of Release.
func (n *Node) ReleaseCB(obj oid.ID, cb func(error)) {
	sp := n.tracer.StartRoot("op:release")
	cb = opDoneErr(n, "release", sp, cb)
	e, err := n.store.GetEntry(obj)
	if err != nil {
		cb(err)
		return
	}
	if e.Home {
		sp.SetAttr("local", "home")
		cb(nil) // already authoritative
		return
	}
	n.counters.Releases++
	raw := e.Obj.CloneBytes()
	frags := memproto.Fragment(raw, e.Version, n.maxFragData())
	tc := sp.Ctx()
	n.resolver.ResolveCtx(obj, tc, func(r discovery.Result, err error) {
		if err != nil {
			cb(fmt.Errorf("%w: %v", ErrNotFound, err))
			return
		}
		h := wire.Header{Type: wire.MsgMem, Object: obj}
		tc.Inject(&h)
		if r.RouteOnObject {
			h.Flags |= wire.FlagRouteOnObject
		} else {
			h.Dst = r.Station
		}
		// All fragments but the last are unsolicited pushes; the last
		// is a request so we learn the outcome.
		for i := 0; i < len(frags)-1; i++ {
			fm := frags[i]
			fm.Op = memproto.OpRelease
			if r.RouteOnObject {
				n.ep.Send(h, n.marshal(&fm))
			} else {
				n.ep.SendReliable(h, n.marshal(&fm), nil)
			}
		}
		last := frags[len(frags)-1]
		last.Op = memproto.OpRelease
		n.request(h, &last, func(_ *wire.Header, rm *memproto.Msg, err error) {
			if err != nil {
				cb(err)
				return
			}
			if rm.Status == memproto.StatusOK && n.granted[obj] == memproto.PermExclusive {
				// The pushed bytes are now the home's newest version;
				// our retained copy is clean again, so the exclusive
				// grant demotes to shared.
				n.granted[obj] = memproto.PermShared
			}
			cb(rm.Status.Err())
		})
	})
}

// InvalidateSharers drops every remote cached copy of a home object —
// for callers that mutate home objects directly (e.g. code invoked at
// the object's home) rather than through WriteAt.
func (n *Node) InvalidateSharers(obj oid.ID) {
	n.invalidateSharers(obj, 0)
}

// invalidateSharers sends OpInvalidate to every directory sharer
// except skip. A sharer leaves the set only when its InvalidateAck
// arrives: removing it on send would let a lost invalidate (past the
// transport's retry budget) leave a stale copy the directory no
// longer covers. Keeping unacked sharers means the directory may
// over-approximate but never under-approximates — the next write
// re-invalidates whoever is left.
func (n *Node) invalidateSharers(obj oid.ID, skip wire.StationID) {
	var members []wire.StationID
	var epochs []uint64
	n.directory.ForEach(obj, func(st wire.StationID, epoch uint64) {
		if st == skip {
			return
		}
		members = append(members, st)
		epochs = append(epochs, epoch)
	})
	// In-network multicast: one group invalidate replaces the
	// per-sharer fan-out when there is a fan-out to replace.
	if n.incCfg.Mcast && n.incCfg.Installer != nil &&
		len(members) > 1 && len(members) <= n.incCfg.MaxGroup {
		sortMembers(members, epochs)
		n.mcastInvalidate(obj, members, epochs)
		return
	}
	if n.incCfg.Purge {
		// No invalidate may traverse the caching switch (zero or one
		// sharer, or an oversized set handled classically below) — the
		// explicit purge keeps the in-switch cache coherent anyway.
		n.sendPurge(obj)
	}
	for i, st := range members {
		n.classicInvalidate(obj, st, epochs[i])
	}
}

// classicInvalidate is the original per-sharer reliable invalidate;
// also the fallback for multicast members whose ack never arrived.
func (n *Node) classicInvalidate(obj oid.ID, st wire.StationID, epoch uint64) {
	n.counters.InvalidatesSent++
	n.request(wire.Header{Type: wire.MsgMem, Dst: st, Object: obj},
		&memproto.Msg{Op: memproto.OpInvalidate},
		func(_ *wire.Header, _ *memproto.Msg, err error) {
			if err == nil {
				n.directory.Remove(obj, st, epoch)
			}
		})
}

// --- responder side ---

// HandleFrame consumes MsgMem frames; it returns true when consumed.
func (n *Node) HandleFrame(h *wire.Header, payload []byte) bool {
	if h.Type != wire.MsgMem {
		return false
	}
	var m memproto.Msg
	if err := m.Unmarshal(payload); err != nil {
		return true
	}
	switch m.Op {
	case memproto.OpReadReq:
		n.serveRead(h, &m)
	case memproto.OpWriteReq:
		n.serveWrite(h, &m)
	case memproto.OpAcquire:
		n.serveAcquire(h, &m)
	case memproto.OpObjectPush:
		n.grantFragment(h.Object, &m)
	case memproto.OpRelease:
		n.serveRelease(h, &m)
	case memproto.OpInvalidate:
		n.counters.InvalidatesRecv++
		n.store.Invalidate(h.Object)
		delete(n.granted, h.Object)
		if f, ok := n.fetches[h.Object]; ok && f.re.Started() {
			// The invalidate outran straggler fragments of an
			// in-flight grant (only possible when a lost fragment's
			// retransmission is still pending — fresh frames can't
			// overtake on FIFO links). Whatever has been reassembled
			// is stale as of this invalidate: completing it would
			// install a copy the home no longer tracks. Drop the
			// partial transfer and re-acquire; a late old-version
			// fragment landing in the fresh reassembler is caught by
			// its version check and retried by the caller.
			f.re = memproto.Reassembler{}
			f.perm = memproto.PermNone
			if f.watchdog != nil {
				f.watchdog.Stop()
			}
			f.tc = trace.Ctx{}
			f.attempt = 1
			f.begin()
		}
		n.respond(h, &memproto.Msg{Op: memproto.OpInvalidateAck, Status: memproto.StatusOK})
	}
	return true
}

// silentMiss reports whether a miss should be dropped without a NACK:
// frames routed on object identity (StationAny) may flood to stations
// that do not hold the object; only the holder should speak. Frames
// explicitly addressed to us get a NACK — that is how stale
// destination caches are detected (Figure 3).
func (n *Node) silentMiss(h *wire.Header) bool {
	return h.Dst == wire.StationAny
}

func (n *Node) serveRead(h *wire.Header, m *memproto.Msg) {
	e, ok := n.store.LookupEntry(h.Object)
	if !ok {
		if n.silentMiss(h) {
			return
		}
		n.counters.NotFoundServed++
		n.respond(h, &memproto.Msg{Op: memproto.OpReadResp, Status: memproto.StatusNotFound})
		return
	}
	if !e.CanRead(uint64(h.Src)) {
		n.counters.DeniedServed++
		n.respond(h, &memproto.Msg{Op: memproto.OpReadResp, Status: memproto.StatusDenied})
		return
	}
	b, err := e.Obj.ReadAt(m.Offset, int(m.Length))
	if err != nil {
		n.respond(h, &memproto.Msg{Op: memproto.OpReadResp, Status: memproto.StatusRange})
		return
	}
	n.counters.ReadsServed++
	n.respond(h, &memproto.Msg{
		Op: memproto.OpReadResp, Status: memproto.StatusOK,
		Offset: m.Offset, Version: e.Version, Data: b,
	})
}

func (n *Node) serveWrite(h *wire.Header, m *memproto.Msg) {
	e, ok := n.store.LookupEntry(h.Object)
	if !ok || !e.Home {
		if n.silentMiss(h) {
			return
		}
		n.counters.NotFoundServed++
		n.respond(h, &memproto.Msg{Op: memproto.OpWriteResp, Status: memproto.StatusNotFound})
		return
	}
	if err := e.Obj.WriteAt(m.Offset, m.Data); err != nil {
		n.respond(h, &memproto.Msg{Op: memproto.OpWriteResp, Status: memproto.StatusRange})
		return
	}
	v, _ := n.store.BumpVersion(h.Object)
	n.counters.WritesServed++
	n.invalidateSharers(h.Object, h.Src)
	n.respond(h, &memproto.Msg{Op: memproto.OpWriteResp, Status: memproto.StatusOK, Version: v})
}

func (n *Node) serveAcquire(h *wire.Header, m *memproto.Msg) {
	e, ok := n.store.LookupEntry(h.Object)
	if !ok {
		if n.silentMiss(h) {
			return
		}
		n.counters.NotFoundServed++
		n.respond(h, &memproto.Msg{Op: memproto.OpGrant, Status: memproto.StatusNotFound})
		return
	}
	if !e.CanRead(uint64(h.Src)) {
		n.counters.DeniedServed++
		n.respond(h, &memproto.Msg{Op: memproto.OpGrant, Status: memproto.StatusDenied})
		return
	}
	// Only the home grants copies: a grant creates retained state the
	// home's directory must cover, and a cached holder has no way to
	// register the new sharer there — a copy it granted could never be
	// invalidated. One-shot reads may be served from any copy; grants
	// may not. NACK so the requester rediscovers (discovery prefers
	// the authoritative holder while it is alive).
	if !e.Home {
		if n.silentMiss(h) {
			return
		}
		n.counters.NotHomeServed++
		n.respond(h, &memproto.Msg{Op: memproto.OpGrant, Status: memproto.StatusConflict})
		return
	}
	if m.Perm == memproto.PermExclusive {
		n.invalidateSharers(h.Object, h.Src)
	}
	n.directory.Add(h.Object, h.Src)
	n.counters.GrantsServed++
	raw := e.Obj.CloneBytes()
	frags := memproto.Fragment(raw, e.Version, n.maxFragData())
	// First fragment answers the request; the rest stream after it.
	first := frags[0]
	first.Op = memproto.OpGrant
	first.Status = memproto.StatusOK
	first.Perm = m.Perm
	n.respond(h, &first)
	for i := range frags[1:] {
		f := frags[1+i]
		n.sendReliable(h.Src, h.Object, trace.FromHeader(h), &f)
	}
}

func (n *Node) serveRelease(h *wire.Header, m *memproto.Msg) {
	key := releaseKey{src: h.Src, obj: h.Object}
	re, ok := n.releases[key]
	if !ok {
		re = &memproto.Reassembler{}
		n.releases[key] = re
	}
	done, err := re.Add(&memproto.Msg{
		Op: memproto.OpObjectPush, Version: m.Version,
		FragOffset: m.FragOffset, TotalLen: m.TotalLen, Data: m.Data,
	})
	if err != nil {
		delete(n.releases, key)
		if h.Flags&wire.FlagReliable != 0 {
			n.respond(h, &memproto.Msg{Op: memproto.OpReleaseAck, Status: memproto.StatusConflict})
		}
		return
	}
	if !done {
		return
	}
	delete(n.releases, key)
	e, ok := n.store.LookupEntry(h.Object)
	if !ok || !e.Home {
		n.counters.NotFoundServed++
		n.respond(h, &memproto.Msg{Op: memproto.OpReleaseAck, Status: memproto.StatusNotFound})
		return
	}
	o, oerr := object.FromBytes(h.Object, re.Bytes())
	if oerr != nil {
		n.respond(h, &memproto.Msg{Op: memproto.OpReleaseAck, Status: memproto.StatusConflict})
		return
	}
	n.store.Put(o, e.Version+1, true)
	n.invalidateSharers(h.Object, h.Src)
	n.respond(h, &memproto.Msg{Op: memproto.OpReleaseAck, Status: memproto.StatusOK, Version: e.Version + 1})
}
