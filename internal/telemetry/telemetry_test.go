package telemetry

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Stddev() != 0 || h.Quantile(0.5) != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram nonzero stats")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if got := h.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("Stddev = %v", got)
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Quantile(0.5) != 3 {
		t.Fatalf("P50 = %v", h.Quantile(0.5))
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 5 {
		t.Fatal("extreme quantiles")
	}
}

func TestObserveAfterQuantile(t *testing.T) {
	// Observing after a quantile query must re-sort.
	h := NewHistogram()
	h.Observe(10)
	_ = h.Quantile(0.5)
	h.Observe(1)
	if h.Quantile(0) != 1 {
		t.Fatal("re-sort after observe failed")
	}
}

func TestSummarize(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summarize()
	if s.Count != 100 || s.P50 != 50 || s.P90 != 90 || s.P99 != 99 || s.Max != 100 || s.Min != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset")
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		last := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			v := h.Quantile(q)
			if h.Count() > 0 && v < last {
				return false
			}
			if h.Count() > 0 {
				last = v
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			h.Observe(v)
			n++
		}
		if n == 0 {
			return true
		}
		m := h.Mean()
		return m >= h.Min()-1e-6 && m <= h.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j))
				if j%100 == 0 {
					_ = h.Quantile(0.5)
					_ = h.Mean()
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}
