package telemetry

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Stddev() != 0 || h.Quantile(0.5) != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram nonzero stats")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if got := h.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("Stddev = %v", got)
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Quantile(0.5) != 3 {
		t.Fatalf("P50 = %v", h.Quantile(0.5))
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 5 {
		t.Fatal("extreme quantiles")
	}
}

func TestObserveAfterQuantile(t *testing.T) {
	// Observing after a quantile query must be reflected immediately.
	h := NewHistogram()
	h.Observe(10)
	_ = h.Quantile(0.5)
	h.Observe(1)
	if h.Quantile(0) != 1 {
		t.Fatal("observe after quantile not reflected")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
		all.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
		all.Observe(float64(i))
	}
	b.Observe(-3)
	all.Observe(-3)
	b.Observe(0)
	all.Observe(0)
	a.Merge(b)
	a.Merge(nil) // no-op
	a.Merge(a)   // no-op
	sa, sall := a.Summarize(), all.Summarize()
	if sa != sall {
		t.Fatalf("merged summary %+v != direct %+v", sa, sall)
	}
	ba, ball := a.Buckets(), all.Buckets()
	if len(ba) != len(ball) {
		t.Fatalf("bucket count %d != %d", len(ba), len(ball))
	}
	for i := range ba {
		if ba[i] != ball[i] {
			t.Fatalf("bucket %d: %+v != %+v", i, ba[i], ball[i])
		}
	}
}

func TestHistogramRelativeErrorBound(t *testing.T) {
	// Quantiles of bucketed ranks must sit within RelErrorBound below
	// the exact nearest-rank sample.
	rng := func() func() float64 { // deterministic LCG, no math/rand dep
		s := uint64(12345)
		return func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / float64(1<<53)
		}
	}()
	h := NewHistogram()
	var samples []float64
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng()*14 - 2) // ~0.13µs .. ~162k µs, log-spread
		samples = append(samples, v)
		h.Observe(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := sorted[int(math.Ceil(q*float64(len(sorted))))-1]
		got := h.Quantile(q)
		if got > exact {
			t.Fatalf("q=%v: reported %v above exact %v", q, got, exact)
		}
		if exact > got*(1+RelErrorBound)*(1+1e-12) {
			t.Fatalf("q=%v: reported %v more than %.3f%% below exact %v",
				q, got, 100*RelErrorBound, exact)
		}
	}
}

func TestSummaryP999(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 999; i++ {
		h.Observe(10)
	}
	h.Observe(100000)
	s := h.Summarize()
	if s.P99 != 10 {
		t.Fatalf("P99 = %v, want 10", s.P99)
	}
	if s.P999 < 10*(1-RelErrorBound) || s.P999 > 10 {
		t.Fatalf("P999 = %v", s.P999)
	}
	// The outlier is the top 0.1%: Quantile just above 0.999 sees it.
	if got := h.Quantile(0.9995); got < 100000*(1-RelErrorBound) {
		t.Fatalf("Quantile(0.9995) = %v, want ~100000", got)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram()
	h.Observe(1) // allocate the positive bucket array
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42.5) }); n > 0 {
		t.Fatalf("Observe allocates %v/op after warmup, want 0", n)
	}
}

func TestSummarize(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summarize()
	if s.Count != 100 || s.P50 != 50 || s.P90 != 90 || s.P99 != 99 || s.Max != 100 || s.Min != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset")
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		last := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			v := h.Quantile(q)
			if h.Count() > 0 && v < last {
				return false
			}
			if h.Count() > 0 {
				last = v
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram()
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			h.Observe(v)
			n++
		}
		if n == 0 {
			return true
		}
		m := h.Mean()
		return m >= h.Min()-1e-6 && m <= h.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j))
				if j%100 == 0 {
					_ = h.Quantile(0.5)
					_ = h.Mean()
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}
