package telemetry

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Registry flattens the scattered per-layer counter structs
// (coherence.Counters, transport.Counters, p4sim.Counters, mux stats,
// ...) into one namespace of stable snake_case metric names. Adding
// two values under the same name sums them, so per-node counters
// registered under a shared prefix aggregate naturally.
type Registry struct {
	vals map[string]uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{vals: make(map[string]uint64)}
}

// Set adds v to the metric called name (creating it at v).
func (r *Registry) Set(name string, v uint64) {
	r.vals[name] += v
}

// Add registers every exported uint64 field of a counter struct (or
// pointer to one) under prefix, as "prefix.snake_case_field". Nested
// structs recurse with their field name joining the prefix; array and
// non-integer fields are skipped (per-type breakdowns stay on their
// native accessors).
func (r *Registry) Add(prefix string, v any) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return
	}
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		fv := rv.Field(i)
		switch fv.Kind() {
		case reflect.Uint64, reflect.Uint32, reflect.Uint16, reflect.Uint8, reflect.Uint:
			r.Set(prefix+"."+snake(f.Name), fv.Uint())
		case reflect.Struct:
			r.Add(prefix+"."+snake(f.Name), fv.Interface())
		}
	}
}

// Snapshot freezes the registry into a sorted, immutable view.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{vals: make(map[string]uint64, len(r.vals))}
	for k, v := range r.vals {
		s.vals[k] = v
		s.names = append(s.names, k)
	}
	sort.Strings(s.names)
	return s
}

// Snapshot is a point-in-time view of every registered metric.
type Snapshot struct {
	names []string
	vals  map[string]uint64
}

// Names lists all metric names in sorted order.
func (s Snapshot) Names() []string { return s.names }

// Get returns a metric's value (0, false if absent).
func (s Snapshot) Get(name string) (uint64, bool) {
	v, ok := s.vals[name]
	return v, ok
}

// Value returns a metric's value, 0 if absent.
func (s Snapshot) Value(name string) uint64 { return s.vals[name] }

// Len reports the metric count.
func (s Snapshot) Len() int { return len(s.names) }

// MarshalJSON renders the snapshot as one JSON object whose keys
// appear in sorted order — the byte-stable encoding machine-readable
// artifacts (BENCH_load.json) rely on to diff cleanly across runs.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range s.names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(n))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(s.vals[n], 10))
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// String renders "name value" lines in sorted order.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, n := range s.names {
		fmt.Fprintf(&b, "%s %d\n", n, s.vals[n])
	}
	return b.String()
}

// snake converts a Go field name (CamelCase) to snake_case.
func snake(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 && name[i-1] >= 'a' && name[i-1] <= 'z' {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}
