package telemetry

import "testing"

type innerCounters struct {
	CacheHits uint64
	cacheMiss uint64 // unexported: must be skipped
}

type fakeCounters struct {
	FramesSent  uint64
	ParseDrops  uint32
	RTT         uint64
	PerType     [4]uint64 // arrays are skipped
	Name        string    // non-integer: skipped
	Sub         innerCounters
	SignedValue int64 // signed: skipped
}

func TestRegistryFlattensAndSums(t *testing.T) {
	r := NewRegistry()
	r.Add("transport", fakeCounters{FramesSent: 3, ParseDrops: 1, RTT: 9,
		Sub: innerCounters{CacheHits: 5}})
	r.Add("transport", &fakeCounters{FramesSent: 4}) // pointer, same prefix: sums
	r.Add("transport", (*fakeCounters)(nil))         // nil pointer: no-op
	r.Add("transport", 42)                           // non-struct: no-op
	r.Set("custom.metric", 7)
	r.Set("custom.metric", 3)

	s := r.Snapshot()
	want := map[string]uint64{
		"transport.frames_sent":    7,
		"transport.parse_drops":    1,
		"transport.rtt":            9,
		"transport.sub.cache_hits": 5,
		"custom.metric":            10,
	}
	for name, v := range want {
		got, ok := s.Get(name)
		if !ok {
			t.Errorf("metric %q missing; snapshot:\n%s", name, s.String())
			continue
		}
		if got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if s.Len() != len(want) {
		t.Errorf("snapshot has %d metrics, want %d:\n%s", s.Len(), len(want), s.String())
	}
	for _, absent := range []string{"transport.per_type", "transport.name",
		"transport.signed_value", "transport.sub.cache_miss"} {
		if _, ok := s.Get(absent); ok {
			t.Errorf("metric %q should have been skipped", absent)
		}
	}
	// Names are sorted; Value tolerates absent metrics.
	names := s.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if s.Value("nope") != 0 {
		t.Error("absent metric should read as 0")
	}
}

// TestSnapshotJSONDeterministic pins the snapshot's JSON encoding:
// keys sorted, no whitespace — the exact bytes BENCH artifacts embed,
// so two same-seed runs diff cleanly.
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Set("zeta.last", 1)
		r.Set("alpha.first", 2)
		r.Set("mid.value", 30)
		return r.Snapshot()
	}
	want := `{"alpha.first":2,"mid.value":30,"zeta.last":1}`
	for i := 0; i < 3; i++ {
		got, err := build().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("run %d: MarshalJSON = %s, want %s", i, got, want)
		}
	}
}
