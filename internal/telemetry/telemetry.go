// Package telemetry provides the counters and latency recorders the
// experiment harness uses to regenerate the paper's figures: mean,
// percentiles, and standard deviation (Figure 3 reports variability as
// well as central tendency), plus the merge-able log-bucketed
// histograms the workload engine's load sweeps aggregate at scale.
package telemetry

import (
	"fmt"
	"math"
	"sync"
)

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.v = 0
	c.mu.Unlock()
}

// Histogram bucket geometry: log-linear (HDR-style). Each power-of-two
// octave [2^(e-1), 2^e) is split into histSub equal-width sub-buckets,
// so bucket width ≤ value/histSub everywhere. Quantiles report a
// bucket's lower bound, which under-reports the true sample by a
// relative error < 1/histSub — the bound RelErrorBound documents.
// Octaves below histMinExp clamp into the first bucket and octaves at
// or above histMaxExp clamp into the last, which in microseconds spans
// ~0.5ns to ~6.4 virtual days: clamping never triggers for latencies.
const (
	histSubBits = 6
	histSub     = 1 << histSubBits
	histMinExp  = -20
	histMaxExp  = 40
	histBuckets = (histMaxExp - histMinExp) * histSub
)

// RelErrorBound is the documented worst-case relative error of
// Quantile on bucketed (non-extreme) ranks: a reported quantile q
// satisfies q <= true sample < q*(1+RelErrorBound). Quantile(0) and
// Quantile(1) — and therefore Min and Max — are exact, as are Mean
// and Stddev (tracked as exact running sums, not from buckets).
const RelErrorBound = 1.0 / histSub

// Histogram records float64 samples (typically microseconds) into
// log-bucketed counts with bounded relative error, alongside exact
// running aggregates. Unlike the previous sample-vector histogram its
// memory is O(1) in the sample count, and two histograms can be
// Merged — what the load sweeps need to aggregate per-point latency
// at millions of operations.
type Histogram struct {
	mu    sync.Mutex
	count uint64
	sum   float64
	sumsq float64
	min   float64
	max   float64
	zero  uint64 // samples equal to 0 (and NaN, which compares false)
	pos   []uint64
	neg   []uint64 // bucketed by magnitude
}

// NewHistogram creates an empty histogram. (Bucket arrays allocate
// lazily on first observation of each sign.)
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIdx maps v > 0 to its bucket, clamping out-of-range octaves.
func bucketIdx(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp < histMinExp {
		return 0
	}
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(frac*(2*histSub)) - histSub
	return (exp-histMinExp)*histSub + sub
}

// bucketLo is the smallest value mapping into bucket idx.
func bucketLo(idx int) float64 {
	exp := histMinExp + idx/histSub
	sub := idx % histSub
	return math.Ldexp(0.5+float64(sub)/(2*histSub), exp)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.observeLocked(v, 1)
	h.mu.Unlock()
}

func (h *Histogram) observeLocked(v float64, n uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	fn := float64(n)
	h.sum += v * fn
	h.sumsq += v * v * fn
	switch {
	case v > 0:
		if h.pos == nil {
			h.pos = make([]uint64, histBuckets)
		}
		h.pos[bucketIdx(v)] += n
	case v < 0:
		if h.neg == nil {
			h.neg = make([]uint64, histBuckets)
		}
		h.neg[bucketIdx(-v)] += n
	default:
		h.zero += n
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Reset discards all samples (bucket arrays are kept and cleared).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.count, h.sum, h.sumsq, h.min, h.max, h.zero = 0, 0, 0, 0, 0, 0
	clear(h.pos)
	clear(h.neg)
	h.mu.Unlock()
}

// Merge folds other's samples into h: counts add bucket-wise and the
// exact aggregates (count, sum, sum of squares, min, max) combine, so
// merging N shards is equivalent to observing every sample into one
// histogram. Merging h into itself is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	// Snapshot other under its own lock, then fold under ours — no
	// nested locking, so concurrent cross-merges cannot deadlock.
	other.mu.Lock()
	o := Histogram{
		count: other.count, sum: other.sum, sumsq: other.sumsq,
		min: other.min, max: other.max, zero: other.zero,
	}
	if other.pos != nil {
		o.pos = append([]uint64(nil), other.pos...)
	}
	if other.neg != nil {
		o.neg = append([]uint64(nil), other.neg...)
	}
	other.mu.Unlock()
	if o.count == 0 {
		return
	}

	h.mu.Lock()
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	h.sumsq += o.sumsq
	h.zero += o.zero
	if o.pos != nil {
		if h.pos == nil {
			h.pos = make([]uint64, histBuckets)
		}
		for i, c := range o.pos {
			h.pos[i] += c
		}
	}
	if o.neg != nil {
		if h.neg == nil {
			h.neg = make([]uint64, histBuckets)
		}
		for i, c := range o.neg {
			h.neg[i] += c
		}
	}
	h.mu.Unlock()
}

// Mean returns the exact sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Stddev returns the exact population standard deviation (0 if empty).
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	n := float64(h.count)
	mean := h.sum / n
	variance := h.sumsq/n - mean*mean
	if variance < 0 { // floating-point cancellation
		variance = 0
	}
	return math.Sqrt(variance)
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank over
// the buckets; 0 if empty. Quantile(0) and Quantile(1) are the exact
// min and max; interior quantiles report the rank's bucket lower
// bound, under the true sample by at most RelErrorBound relative.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	clamp := func(v float64) float64 {
		if v < h.min {
			return h.min
		}
		if v > h.max {
			return h.max
		}
		return v
	}
	var cum uint64
	if h.neg != nil {
		// Most negative (largest magnitude) first.
		for i := histBuckets - 1; i >= 0; i-- {
			if c := h.neg[i]; c != 0 {
				cum += c
				if cum >= rank {
					return clamp(-bucketLo(i))
				}
			}
		}
	}
	if h.zero != 0 {
		cum += h.zero
		if cum >= rank {
			return clamp(0)
		}
	}
	if h.pos != nil {
		for i := 0; i < histBuckets; i++ {
			if c := h.pos[i]; c != 0 {
				cum += c
				if cum >= rank {
					return clamp(bucketLo(i))
				}
			}
		}
	}
	return h.max
}

// Min returns the smallest sample, exactly (0 if empty).
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, exactly (0 if empty).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Bucket is one non-empty histogram bucket: Low is the bucket's
// representative value (its lower bound; the sign-mirrored upper bound
// for negative buckets) and Count the samples in it.
type Bucket struct {
	Low   float64
	Count uint64
}

// Buckets returns every non-empty bucket in ascending value order —
// the exact state two same-seed runs must agree on bit-for-bit, and
// the export the determinism tests compare.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Bucket
	if h.neg != nil {
		for i := histBuckets - 1; i >= 0; i-- {
			if c := h.neg[i]; c != 0 {
				out = append(out, Bucket{Low: -bucketLo(i), Count: c})
			}
		}
	}
	if h.zero != 0 {
		out = append(out, Bucket{Low: 0, Count: h.zero})
	}
	if h.pos != nil {
		for i := 0; i < histBuckets; i++ {
			if c := h.pos[i]; c != 0 {
				out = append(out, Bucket{Low: bucketLo(i), Count: c})
			}
		}
	}
	return out
}

// Summary is a snapshot of a histogram's statistics.
type Summary struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	P999   float64
	Max    float64
}

// Summarize computes a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Stddev: h.Stddev(),
		Min:    h.Min(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
		Max:    h.Max(),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%.1f",
		s.Count, s.Mean, s.Stddev, s.Min, s.P50, s.P90, s.P99, s.P999, s.Max)
}
