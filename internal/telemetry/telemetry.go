// Package telemetry provides the counters and latency recorders the
// experiment harness uses to regenerate the paper's figures: mean,
// percentiles, and standard deviation (Figure 3 reports variability as
// well as central tendency).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.v = 0
	c.mu.Unlock()
}

// Histogram records float64 samples (typically microseconds) and
// reports distribution statistics.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Stddev returns the population standard deviation (0 if empty).
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank; 0 if
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Summary is a snapshot of a histogram's statistics.
type Summary struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Stddev: h.Stddev(),
		Min:    h.Min(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		Max:    h.Max(),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f",
		s.Count, s.Mean, s.Stddev, s.Min, s.P50, s.P90, s.P99, s.Max)
}
