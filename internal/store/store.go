// Package store implements the per-host object store: the local pool of
// global-address-space objects a host currently holds.
//
// Objects are versioned (the coherence layer bumps the version on every
// write acquisition) and may be pinned (home objects are pinned so the
// authoritative copy is never evicted). Cached foreign objects are
// evicted in LRU order when the store exceeds its byte budget — this is
// the "caching ... moved out of the application and back into the
// infrastructure" of §3.
package store

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/object"
	"repro/internal/oid"
)

// Errors returned by store operations.
var (
	ErrNotFound = errors.New("store: object not found")
	ErrExists   = errors.New("store: object already present")
	ErrTooLarge = errors.New("store: object larger than store budget")
)

// Entry is an object held by the store together with its local
// metadata.
type Entry struct {
	Obj     *object.Object
	Version uint64 // coherence version of this copy
	Home    bool   // this host is the object's home (authoritative copy)
	Pinned  bool   // never evict
	// Readers, when non-nil, restricts which stations may read the
	// object (nil = world-readable). References remain passable by
	// anyone — §1: "the invoker may wish to refer to data that they
	// lack privileges to read".
	Readers map[uint64]bool

	lruElem *list.Element
}

// CanRead reports whether station may read this entry.
func (e *Entry) CanRead(station uint64) bool {
	return e.Readers == nil || e.Readers[station]
}

// Store is a thread-safe per-host object pool with an optional byte
// budget. A budget of 0 means unlimited.
type Store struct {
	mu      sync.Mutex
	budget  int
	used    int
	objects map[oid.ID]*Entry
	lru     *list.List // front = most recently used; holds oid.ID

	// Evictions counts objects dropped to stay within budget.
	evictions uint64
}

// New creates a store with the given byte budget (0 = unlimited).
func New(budget int) *Store {
	return &Store{
		budget:  budget,
		objects: make(map[oid.ID]*Entry),
		lru:     list.New(),
	}
}

// Put inserts an object. Home objects are pinned automatically. If an
// object with the same ID exists it is replaced (its version retained
// if newVersion is lower, to keep the freshest copy).
func (s *Store) Put(o *object.Object, version uint64, home bool) error {
	if o == nil {
		return fmt.Errorf("store: nil object")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	size := o.Size()
	if s.budget > 0 && size > s.budget {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, s.budget)
	}
	if old, ok := s.objects[o.ID()]; ok {
		s.used -= old.Obj.Size()
		if old.lruElem != nil {
			s.lru.Remove(old.lruElem)
		}
		if old.Version > version {
			version = old.Version
		}
		home = home || old.Home
		delete(s.objects, o.ID())
	}
	e := &Entry{Obj: o, Version: version, Home: home, Pinned: home}
	if !e.Pinned {
		e.lruElem = s.lru.PushFront(o.ID())
	}
	s.objects[o.ID()] = e
	s.used += size
	s.evictLocked()
	return nil
}

// evictLocked drops least-recently-used unpinned entries until the
// budget is satisfied.
func (s *Store) evictLocked() {
	if s.budget <= 0 {
		return
	}
	for s.used > s.budget {
		back := s.lru.Back()
		if back == nil {
			return // only pinned objects remain
		}
		id := back.Value.(oid.ID)
		e := s.objects[id]
		s.lru.Remove(back)
		delete(s.objects, id)
		s.used -= e.Obj.Size()
		s.evictions++
	}
}

// Get returns the object and marks it recently used.
func (s *Store) Get(id oid.ID) (*object.Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if e.lruElem != nil {
		s.lru.MoveToFront(e.lruElem)
	}
	return e.Obj, nil
}

// GetEntry returns the full entry (object + metadata) and marks it
// recently used.
func (s *Store) GetEntry(id oid.ID) (*Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if e.lruElem != nil {
		s.lru.MoveToFront(e.lruElem)
	}
	return e, nil
}

// Lookup is Get without the error: a miss returns (nil, false) and
// allocates nothing, so callers probing for a cached copy on every
// operation (the coherence hot path) pay no error-construction cost.
func (s *Store) Lookup(id oid.ID) (*object.Object, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	if e.lruElem != nil {
		s.lru.MoveToFront(e.lruElem)
	}
	return e.Obj, true
}

// LookupEntry is GetEntry without the error — the allocation-free miss
// probe for entry metadata (home flag, version).
func (s *Store) LookupEntry(id oid.ID) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	if e.lruElem != nil {
		s.lru.MoveToFront(e.lruElem)
	}
	return e, true
}

// PeekEntry returns the full entry without touching LRU order — for
// observers (the invariant checker) that must not perturb eviction
// behavior.
func (s *Store) PeekEntry(id oid.ID) (*Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	return e, nil
}

// Contains reports presence without touching LRU order.
func (s *Store) Contains(id oid.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[id]
	return ok
}

// IsHome reports whether this store holds the authoritative copy,
// without touching LRU order.
func (s *Store) IsHome(id oid.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	return ok && e.Home
}

// Version returns the stored copy's version, or 0 with ErrNotFound.
func (s *Store) Version(id oid.ID) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	return e.Version, nil
}

// SetVersion updates the stored copy's version.
func (s *Store) SetVersion(id oid.ID, v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	e.Version = v
	return nil
}

// BumpVersion increments and returns the stored copy's version.
func (s *Store) BumpVersion(id oid.ID) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	e.Version++
	return e.Version, nil
}

// SetReaders restricts id's readers to the given stations (nil
// restores world-readability). Only meaningful on home copies — the
// home enforces the ACL when serving reads and grants.
func (s *Store) SetReaders(id oid.ID, stations []uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if stations == nil {
		e.Readers = nil
		return nil
	}
	e.Readers = make(map[uint64]bool, len(stations))
	for _, st := range stations {
		e.Readers[st] = true
	}
	return nil
}

// Pin prevents eviction of id.
func (s *Store) Pin(id oid.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if !e.Pinned {
		e.Pinned = true
		if e.lruElem != nil {
			s.lru.Remove(e.lruElem)
			e.lruElem = nil
		}
	}
	return nil
}

// Unpin makes id evictable again (no-op for home objects).
func (s *Store) Unpin(id oid.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if e.Home {
		return nil // authoritative copies stay pinned
	}
	if e.Pinned {
		e.Pinned = false
		e.lruElem = s.lru.PushFront(id)
		s.evictLocked()
	}
	return nil
}

// Delete removes id from the store.
func (s *Store) Delete(id oid.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if e.lruElem != nil {
		s.lru.Remove(e.lruElem)
	}
	delete(s.objects, id)
	s.used -= e.Obj.Size()
	return nil
}

// Invalidate drops a cached (non-home) copy; it refuses to drop the
// authoritative copy.
func (s *Store) Invalidate(id oid.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil // already gone: invalidation is idempotent
	}
	if e.Home {
		return fmt.Errorf("store: refusing to invalidate home copy of %s", id.Short())
	}
	if e.lruElem != nil {
		s.lru.Remove(e.lruElem)
	}
	delete(s.objects, id)
	s.used -= e.Obj.Size()
	return nil
}

// Clear drops every entry — home copies included — modeling a crash
// that loses the host's (volatile) object pool. Eviction statistics
// are preserved; crashes are not evictions.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[oid.ID]*Entry)
	s.lru = list.New()
	s.used = 0
}

// List returns all held IDs in sorted order.
func (s *Store) List() []oid.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]oid.ID, 0, len(s.objects))
	for id := range s.objects {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// HomeList returns the IDs of objects this host is home for.
func (s *Store) HomeList() []oid.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []oid.ID
	for id, e := range s.objects {
		if e.Home {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Len returns the number of held objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// BytesUsed returns the total size of held objects.
func (s *Store) BytesUsed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Evictions returns the number of budget evictions so far.
func (s *Store) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}
