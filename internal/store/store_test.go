package store

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/object"
	"repro/internal/oid"
)

var gen = oid.NewSeededGenerator(123)

func mkObj(t testing.TB, size int) *object.Object {
	t.Helper()
	o, err := object.New(gen.New(), size, 4)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPutGet(t *testing.T) {
	s := New(0)
	o := mkObj(t, 4096)
	if err := s.Put(o, 1, true); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(o.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != o.ID() {
		t.Fatalf("Get returned wrong object")
	}
	if !s.Contains(o.ID()) {
		t.Fatal("Contains = false")
	}
	if s.Len() != 1 || s.BytesUsed() != 4096 {
		t.Fatalf("Len=%d BytesUsed=%d", s.Len(), s.BytesUsed())
	}
}

func TestGetMissing(t *testing.T) {
	s := New(0)
	if _, err := s.Get(gen.New()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if _, err := s.Version(gen.New()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Version missing: %v", err)
	}
	if err := s.Delete(gen.New()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing: %v", err)
	}
	if err := s.Put(nil, 0, false); err == nil {
		t.Fatal("Put(nil) succeeded")
	}
}

func TestVersioning(t *testing.T) {
	s := New(0)
	o := mkObj(t, 1024)
	s.Put(o, 5, true)
	v, err := s.Version(o.ID())
	if err != nil || v != 5 {
		t.Fatalf("Version = %d, %v", v, err)
	}
	nv, err := s.BumpVersion(o.ID())
	if err != nil || nv != 6 {
		t.Fatalf("BumpVersion = %d, %v", nv, err)
	}
	if err := s.SetVersion(o.ID(), 10); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Version(o.ID()); v != 10 {
		t.Fatalf("after SetVersion: %d", v)
	}
}

func TestReplaceKeepsFreshestVersion(t *testing.T) {
	s := New(0)
	o := mkObj(t, 1024)
	s.Put(o, 9, false)
	// Re-put an older copy: version must not regress.
	clone, _ := object.FromBytes(o.ID(), o.CloneBytes())
	s.Put(clone, 3, false)
	if v, _ := s.Version(o.ID()); v != 9 {
		t.Fatalf("version regressed to %d", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after replace", s.Len())
	}
}

func TestReplaceKeepsHome(t *testing.T) {
	s := New(0)
	o := mkObj(t, 1024)
	s.Put(o, 1, true)
	clone, _ := object.FromBytes(o.ID(), o.CloneBytes())
	s.Put(clone, 2, false)
	e, err := s.GetEntry(o.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !e.Home || !e.Pinned {
		t.Fatal("home flag lost on replace")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(3 * 1024)
	a, b, c := mkObj(t, 1024), mkObj(t, 1024), mkObj(t, 1024)
	s.Put(a, 1, false)
	s.Put(b, 1, false)
	s.Put(c, 1, false)
	// Touch a so b is the LRU victim.
	s.Get(a.ID())
	d := mkObj(t, 1024)
	s.Put(d, 1, false)
	if s.Contains(b.ID()) {
		t.Fatal("LRU victim b not evicted")
	}
	if !s.Contains(a.ID()) || !s.Contains(c.ID()) || !s.Contains(d.ID()) {
		t.Fatal("wrong object evicted")
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d", s.Evictions())
	}
}

func TestPinnedNotEvicted(t *testing.T) {
	s := New(2 * 1024)
	home := mkObj(t, 1024)
	s.Put(home, 1, true) // home => pinned
	cached := mkObj(t, 1024)
	s.Put(cached, 1, false)
	extra := mkObj(t, 1024)
	s.Put(extra, 1, false)
	if !s.Contains(home.ID()) {
		t.Fatal("pinned home object evicted")
	}
	if s.Contains(cached.ID()) {
		t.Fatal("unpinned object survived over budget")
	}
}

func TestPinUnpin(t *testing.T) {
	s := New(0)
	o := mkObj(t, 512)
	s.Put(o, 1, false)
	if err := s.Pin(o.ID()); err != nil {
		t.Fatal(err)
	}
	e, _ := s.GetEntry(o.ID())
	if !e.Pinned {
		t.Fatal("Pin had no effect")
	}
	if err := s.Unpin(o.ID()); err != nil {
		t.Fatal(err)
	}
	e, _ = s.GetEntry(o.ID())
	if e.Pinned {
		t.Fatal("Unpin had no effect")
	}
	// Unpin of a home object is a no-op.
	h := mkObj(t, 512)
	s.Put(h, 1, true)
	s.Unpin(h.ID())
	e, _ = s.GetEntry(h.ID())
	if !e.Pinned {
		t.Fatal("home object unpinned")
	}
	if err := s.Pin(gen.New()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Pin missing: %v", err)
	}
}

func TestOnlyPinnedOverBudget(t *testing.T) {
	// If only pinned objects remain, the store may exceed budget but
	// must not livelock or evict them.
	s := New(1024)
	a := mkObj(t, 1024)
	b := mkObj(t, 1024)
	s.Put(a, 1, true)
	if err := s.Put(b, 1, true); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(a.ID()) || !s.Contains(b.ID()) {
		t.Fatal("pinned object missing")
	}
}

func TestTooLarge(t *testing.T) {
	s := New(512)
	o := mkObj(t, 1024)
	if err := s.Put(o, 1, false); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put oversized: %v", err)
	}
}

func TestInvalidate(t *testing.T) {
	s := New(0)
	home := mkObj(t, 512)
	cached := mkObj(t, 512)
	s.Put(home, 1, true)
	s.Put(cached, 1, false)
	if err := s.Invalidate(cached.ID()); err != nil {
		t.Fatal(err)
	}
	if s.Contains(cached.ID()) {
		t.Fatal("invalidated copy still present")
	}
	if err := s.Invalidate(home.ID()); err == nil {
		t.Fatal("Invalidate dropped the home copy")
	}
	// Idempotent on missing.
	if err := s.Invalidate(gen.New()); err != nil {
		t.Fatalf("Invalidate missing: %v", err)
	}
}

func TestDeleteAccounting(t *testing.T) {
	s := New(0)
	o := mkObj(t, 2048)
	s.Put(o, 1, false)
	if err := s.Delete(o.ID()); err != nil {
		t.Fatal(err)
	}
	if s.BytesUsed() != 0 || s.Len() != 0 {
		t.Fatalf("after delete: used=%d len=%d", s.BytesUsed(), s.Len())
	}
}

func TestListSorted(t *testing.T) {
	s := New(0)
	for i := 0; i < 20; i++ {
		s.Put(mkObj(t, 256), 1, i%2 == 0)
	}
	ids := s.List()
	if len(ids) != 20 {
		t.Fatalf("List len = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if !ids[i-1].Less(ids[i]) {
			t.Fatal("List not sorted")
		}
	}
	homes := s.HomeList()
	if len(homes) != 10 {
		t.Fatalf("HomeList len = %d", len(homes))
	}
}

func TestReadersACL(t *testing.T) {
	s := New(0)
	o := mkObj(t, 1024)
	s.Put(o, 1, true)
	e, _ := s.GetEntry(o.ID())
	if !e.CanRead(42) {
		t.Fatal("default should be world-readable")
	}
	if err := s.SetReaders(o.ID(), []uint64{7, 9}); err != nil {
		t.Fatal(err)
	}
	e, _ = s.GetEntry(o.ID())
	if !e.CanRead(7) || !e.CanRead(9) || e.CanRead(42) {
		t.Fatal("ACL not enforced")
	}
	if err := s.SetReaders(o.ID(), nil); err != nil {
		t.Fatal(err)
	}
	e, _ = s.GetEntry(o.ID())
	if !e.CanRead(42) {
		t.Fatal("nil did not restore world-readability")
	}
	if err := s.SetReaders(gen.New(), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetReaders missing: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(64 * 1024)
	var wg sync.WaitGroup
	ids := make([]oid.ID, 16)
	for i := range ids {
		o := mkObj(t, 1024)
		ids[i] = o.ID()
		s.Put(o, 1, false)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(g+i)%len(ids)]
				s.Get(id)
				s.Contains(id)
				s.Version(id)
				if i%50 == 0 {
					o := mkObj(t, 512)
					s.Put(o, 1, false)
					s.Delete(o.ID())
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkStoreGet(b *testing.B) {
	s := New(0)
	o := mkObj(b, 4096)
	s.Put(o, 1, false)
	id := o.ID()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(id); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeekEntryDoesNotPerturbLRU(t *testing.T) {
	// With GetEntry, touching a would promote it and c's arrival would
	// evict b. PeekEntry must leave a as the LRU victim.
	s := New(8192)
	a, b, c := mkObj(t, 4096), mkObj(t, 4096), mkObj(t, 4096)
	s.Put(a, 1, false)
	s.Put(b, 1, false)
	e, err := s.PeekEntry(a.ID())
	if err != nil || e.Obj.ID() != a.ID() || e.Version != 1 {
		t.Fatalf("PeekEntry: %+v, %v", e, err)
	}
	s.Put(c, 1, false)
	if s.Contains(a.ID()) {
		t.Fatal("PeekEntry promoted a in LRU order")
	}
	if !s.Contains(b.ID()) {
		t.Fatal("b evicted; LRU order perturbed")
	}
	if _, err := s.PeekEntry(a.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("PeekEntry missing: %v", err)
	}
}
