package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/object"
	"repro/internal/oid"
)

// Snapshot support: because objects are invariant byte regions
// (pointers encode FOT index + offset, never host addresses), a store
// persists as a plain concatenation of object images and loads back
// with zero fixup — the "orthogonal persistence" Twizzler gets from
// the same property the paper exploits for movement (§3.1).
//
// Container format (little-endian):
//
//	magic   u32 "TWZS"
//	version u32 (1)
//	count   u64
//	repeated count times:
//	  id      16 bytes
//	  version u64
//	  flags   u8 (bit 0: home)
//	  size    u64
//	  bytes   [size]
const (
	snapMagic   = 0x535A5754
	snapVersion = 1
)

// ErrBadSnapshot reports a malformed snapshot stream.
var ErrBadSnapshot = errors.New("store: malformed snapshot")

// SaveTo writes every held object to w. Pinned/home/version metadata
// is preserved; LRU order is not (it is an access-time artifact).
func (s *Store) SaveTo(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(s.objects)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for id, e := range s.objects {
		var rec [33]byte
		id.PutBytes(rec[0:16])
		binary.LittleEndian.PutUint64(rec[16:24], e.Version)
		if e.Home {
			rec[24] = 1
		}
		binary.LittleEndian.PutUint64(rec[25:33], uint64(e.Obj.Size()))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(e.Obj.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFrom reads a snapshot written by SaveTo into the store
// (replacing same-ID entries, byte-copy load — no pointer fixup).
// It returns the number of objects loaded.
func (s *Store) LoadFrom(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count > 1<<32 {
		return 0, fmt.Errorf("%w: absurd object count %d", ErrBadSnapshot, count)
	}
	loaded := 0
	for i := uint64(0); i < count; i++ {
		var rec [33]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return loaded, fmt.Errorf("%w: record %d: %v", ErrBadSnapshot, i, err)
		}
		id, err := oid.FromBytes(rec[0:16])
		if err != nil {
			return loaded, err
		}
		version := binary.LittleEndian.Uint64(rec[16:24])
		home := rec[24]&1 != 0
		size := binary.LittleEndian.Uint64(rec[25:33])
		if size > 1<<40 {
			return loaded, fmt.Errorf("%w: absurd object size %d", ErrBadSnapshot, size)
		}
		raw := make([]byte, size)
		if _, err := io.ReadFull(br, raw); err != nil {
			return loaded, fmt.Errorf("%w: object %s bytes: %v", ErrBadSnapshot, id.Short(), err)
		}
		o, err := object.FromBytes(id, raw)
		if err != nil {
			return loaded, fmt.Errorf("%w: object %s: %v", ErrBadSnapshot, id.Short(), err)
		}
		if err := s.Put(o, version, home); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}
