package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/object"
	"repro/internal/oid"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(0)
	type info struct {
		checksum uint64
		version  uint64
		home     bool
	}
	want := map[oid.ID]info{}
	for i := 0; i < 20; i++ {
		o := mkObj(t, 1024+(i%3)*512)
		// Give each object distinct content, including references.
		off, _ := o.AllocString("persistent payload")
		_ = off
		if i%2 == 0 {
			slot, _ := o.Alloc(8, 8)
			o.StoreRef(slot, gen.New(), 0x40, object.FlagRead)
		}
		home := i%3 == 0
		if err := s.Put(o, uint64(i+1), home); err != nil {
			t.Fatal(err)
		}
		want[o.ID()] = info{checksum: o.Checksum(), version: uint64(i + 1), home: home}
	}

	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(0)
	n, err := restored.LoadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 || restored.Len() != 20 {
		t.Fatalf("loaded %d, Len %d", n, restored.Len())
	}
	for id, w := range want {
		e, err := restored.GetEntry(id)
		if err != nil {
			t.Fatalf("missing %s: %v", id.Short(), err)
		}
		if e.Obj.Checksum() != w.checksum {
			t.Fatalf("%s: checksum changed across persistence", id.Short())
		}
		if e.Version != w.version || e.Home != w.home {
			t.Fatalf("%s: metadata = v%d home=%v, want v%d home=%v",
				id.Short(), e.Version, e.Home, w.version, w.home)
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := New(0)
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(0)
	n, err := restored.LoadFrom(&buf)
	if err != nil || n != 0 {
		t.Fatalf("empty round trip: n=%d err=%v", n, err)
	}
}

func TestSnapshotCorruption(t *testing.T) {
	s := New(0)
	s.Put(mkObj(t, 1024), 1, true)
	var buf bytes.Buffer
	s.SaveTo(&buf)
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{9, 9, 9, 9}, good[4:]...),
		"truncated":   good[:len(good)-5],
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{9, 0, 0, 0}, good[8:]...)...),
	}
	for name, data := range cases {
		restored := New(0)
		if _, err := restored.LoadFrom(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
	// Corrupt an object body: object validation must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-10] ^= 0xFF
	restored := New(0)
	if _, err := restored.LoadFrom(bytes.NewReader(bad)); err == nil {
		// Depending on which byte flipped this may pass object
		// validation (payload bytes are opaque); flip a header byte
		// instead.
		bad2 := append([]byte(nil), good...)
		bad2[16+33] ^= 0xFF // first object's magic
		restored2 := New(0)
		if _, err := restored2.LoadFrom(bytes.NewReader(bad2)); err == nil {
			t.Error("corrupted object header accepted")
		}
	}
}

func TestSnapshotReplacesExisting(t *testing.T) {
	s := New(0)
	o := mkObj(t, 1024)
	s.Put(o, 5, true)
	var buf bytes.Buffer
	s.SaveTo(&buf)

	// The same store loads its own snapshot: versions must not
	// regress (Put keeps the freshest).
	s.SetVersion(o.ID(), 9)
	if _, err := s.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Version(o.ID()); v != 9 {
		t.Fatalf("version regressed to %d", v)
	}
}
