// Package namespace implements a hierarchical name service built
// entirely out of global-address-space objects — the kind of service
// the paper's model makes almost free to decouple: directories are
// ordinary objects whose entries hold first-class references, lookups
// are reads through references from anywhere, and mutations are code
// invocations that the system rendezvouses with the directory object
// (usually at its home, so the write is local).
//
// Directory object layout (after the standard object header/FOT):
//
//	dirHeader (first allocation):
//	  +0 magic  "NSDR"
//	  +8 headPtr — Ptr to the newest entry record (0 = empty)
//
// Entry records form an intrusive list, newest first; a later record
// for the same name shadows earlier ones (update and tombstone
// semantics without in-place rewrites):
//
//	+0  nextPtr  Ptr to the previous record (0 = end)
//	+8  target   Ptr (FOT-encoded reference; 0 = tombstone)
//	+16 kind     u8 (KindValue | KindDir)
//	+17 nameLen  u8
//	+18 name     bytes
package namespace

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/serde"
)

// Entry kinds.
const (
	// KindValue names an arbitrary object reference.
	KindValue = 1
	// KindDir names a child directory object.
	KindDir = 2
)

const (
	dirMagic = 0x5244534E // "NSDR"
	// DirFOTCap sizes directory FOTs: one slot per distinct target
	// object referenced by live or shadowed bindings.
	DirFOTCap = 512
	// DefaultDirSize is the size of directory objects; at ~32 bytes
	// per record plus FOT slots a directory holds a few hundred
	// bindings.
	DefaultDirSize = 32 << 10
	// MaxNameLen bounds one path component.
	MaxNameLen = 255
)

// Errors.
var (
	ErrNotFound = errors.New("namespace: name not found")
	ErrNotDir   = errors.New("namespace: path component is not a directory")
	ErrBadName  = errors.New("namespace: invalid name")
	ErrNotNS    = errors.New("namespace: object is not a directory")
)

// bindSymbol is the code-object symbol for directory mutations.
const bindSymbol = "gasp.ns.bind"

// Entry is one listed binding.
type Entry struct {
	Name   string
	Target object.Global
	Kind   byte
}

// Namespace is a handle bound to one node and a root directory.
type Namespace struct {
	node *core.Node
	root object.Global
	code object.Global
}

// InitDirObject formats o as an empty directory.
func InitDirObject(o *object.Object) error {
	h, err := o.Alloc(16, 8)
	if err != nil {
		return err
	}
	if err := o.PutUint64(h, dirMagic); err != nil {
		return err
	}
	return o.PutUint64(h+8, 0)
}

// dirHead returns the offset of the directory header, validating magic.
func dirHead(o *object.Object) (uint64, error) {
	h := o.HeapBase()
	magic, err := o.Uint64(h)
	if err != nil || magic != dirMagic {
		return 0, ErrNotNS
	}
	return h, nil
}

// newDirObject creates and formats a directory object homed on node.
func newDirObject(node *core.Node) (*object.Object, error) {
	o, err := object.New(node.Cluster().NewID(), DefaultDirSize, DirFOTCap)
	if err != nil {
		return nil, err
	}
	if err := InitDirObject(o); err != nil {
		return nil, err
	}
	if err := node.AdoptObject(o); err != nil {
		return nil, err
	}
	return o, nil
}

// Create builds a new namespace rooted at a fresh directory object
// homed on node, and registers the mutation code cluster-wide.
func Create(node *core.Node) (*Namespace, error) {
	root, err := newDirObject(node)
	if err != nil {
		return nil, err
	}
	node.Cluster().RegisterAll(bindSymbol, bindFunc)
	code, err := node.CreateCodeObject(bindSymbol, root.ID())
	if err != nil {
		return nil, err
	}
	return &Namespace{
		node: node,
		root: object.Global{Obj: root.ID()},
		code: object.Global{Obj: code.ID()},
	}, nil
}

// Attach opens an existing namespace (created elsewhere) from another
// node. The bind code object reference travels with the root.
func Attach(node *core.Node, ns *Namespace) *Namespace {
	node.Cluster().RegisterAll(bindSymbol, bindFunc)
	return &Namespace{node: node, root: ns.root, code: ns.code}
}

// Root returns the root directory reference.
func (ns *Namespace) Root() object.Global { return ns.root }

// splitPath validates and splits "a/b/c".
func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, fmt.Errorf("%w: empty path", ErrBadName)
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || len(p) > MaxNameLen {
			return nil, fmt.Errorf("%w: component %q", ErrBadName, p)
		}
	}
	return parts, nil
}

// lookupIn scans a directory object for name; found=false with nil
// error means a clean miss (or tombstone).
func lookupIn(dir *object.Object, name string) (Entry, bool, error) {
	h, err := dirHead(dir)
	if err != nil {
		return Entry{}, false, err
	}
	headPtr, err := dir.GetPtr(h + 8)
	if err != nil {
		return Entry{}, false, err
	}
	off := headPtr.Offset()
	for !headPtr.IsNull() {
		rec, e, err := readRecord(dir, off)
		if err != nil {
			return Entry{}, false, err
		}
		if e.Name == name {
			if e.Target.IsNil() {
				return Entry{}, false, nil // tombstone
			}
			return e, true, nil
		}
		headPtr = rec
		off = rec.Offset()
	}
	return Entry{}, false, nil
}

// readRecord decodes the record at off, returning the next pointer.
func readRecord(dir *object.Object, off uint64) (object.Ptr, Entry, error) {
	next, err := dir.GetPtr(off)
	if err != nil {
		return 0, Entry{}, err
	}
	target, err := dir.LoadRef(off + 8)
	if err != nil {
		return 0, Entry{}, err
	}
	meta, err := dir.ReadAt(off+16, 2)
	if err != nil {
		return 0, Entry{}, err
	}
	kind, nameLen := meta[0], int(meta[1])
	name, err := dir.ReadAt(off+18, nameLen)
	if err != nil {
		return 0, Entry{}, err
	}
	return next, Entry{Name: string(name), Target: target, Kind: kind}, nil
}

// appendRecord writes a new head record into dir (which must be local
// and writable — callers reach it via invocation at its home).
func appendRecord(dir *object.Object, name string, target object.Global, kind byte) error {
	h, err := dirHead(dir)
	if err != nil {
		return err
	}
	need := 18 + len(name)
	off, err := dir.Alloc(need, 8)
	if err != nil {
		return err
	}
	oldHead, err := dir.GetPtr(h + 8)
	if err != nil {
		return err
	}
	if err := dir.PutPtr(off, oldHead); err != nil {
		return err
	}
	if target.IsNil() {
		if err := dir.PutPtr(off+8, 0); err != nil {
			return err
		}
	} else {
		if err := dir.StoreRef(off+8, target.Obj, target.Off, object.FlagRead); err != nil {
			return err
		}
	}
	if err := dir.WriteAt(off+16, []byte{kind, byte(len(name))}); err != nil {
		return err
	}
	if err := dir.WriteAt(off+18, []byte(name)); err != nil {
		return err
	}
	np, err := object.MakePtr(0, off)
	if err != nil {
		return err
	}
	return dir.PutPtr(h+8, np)
}

// List returns the live entries of the directory at path ("/" or ""
// lists the root), resolving through references from this node.
func (ns *Namespace) List(path string, cb func([]Entry, error)) {
	ns.walk(path, func(dirRef object.Global, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		ns.node.Deref(dirRef, func(dir *object.Object, err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			entries, err := collect(dir)
			cb(entries, err)
		})
	})
}

// collect returns live entries, newest-binding-wins, sorted by scan
// order (newest first), with tombstoned names removed.
func collect(dir *object.Object) ([]Entry, error) {
	h, err := dirHead(dir)
	if err != nil {
		return nil, err
	}
	headPtr, err := dir.GetPtr(h + 8)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []Entry
	off := headPtr.Offset()
	for !headPtr.IsNull() {
		next, e, err := readRecord(dir, off)
		if err != nil {
			return nil, err
		}
		if !seen[e.Name] {
			seen[e.Name] = true
			if !e.Target.IsNil() {
				out = append(out, e)
			}
		}
		headPtr = next
		off = next.Offset()
	}
	return out, nil
}

// walk resolves the directory that contains path's final component —
// for "" or "/" it yields the root itself.
func (ns *Namespace) walk(path string, cb func(object.Global, error)) {
	trimmed := strings.Trim(path, "/")
	if trimmed == "" {
		cb(ns.root, nil)
		return
	}
	parts, err := splitPath(path)
	if err != nil {
		cb(object.Global{}, err)
		return
	}
	ns.descend(ns.root, parts, cb)
}

// descend walks all components as directories.
func (ns *Namespace) descend(cur object.Global, parts []string, cb func(object.Global, error)) {
	if len(parts) == 0 {
		cb(cur, nil)
		return
	}
	ns.node.Deref(cur, func(dir *object.Object, err error) {
		if err != nil {
			cb(object.Global{}, err)
			return
		}
		e, found, err := lookupIn(dir, parts[0])
		if err != nil {
			cb(object.Global{}, err)
			return
		}
		if !found {
			cb(object.Global{}, fmt.Errorf("%w: %q", ErrNotFound, parts[0]))
			return
		}
		if e.Kind != KindDir {
			cb(object.Global{}, fmt.Errorf("%w: %q", ErrNotDir, parts[0]))
			return
		}
		ns.descend(e.Target, parts[1:], cb)
	})
}

// Resolve looks up a full path to a reference.
func (ns *Namespace) Resolve(path string, cb func(object.Global, byte, error)) {
	parts, err := splitPath(path)
	if err != nil {
		cb(object.Global{}, 0, err)
		return
	}
	dirPath := strings.Join(parts[:len(parts)-1], "/")
	leaf := parts[len(parts)-1]
	ns.walk(dirPath, func(dirRef object.Global, err error) {
		if err != nil {
			cb(object.Global{}, 0, err)
			return
		}
		ns.node.Deref(dirRef, func(dir *object.Object, err error) {
			if err != nil {
				cb(object.Global{}, 0, err)
				return
			}
			e, found, err := lookupIn(dir, leaf)
			if err != nil {
				cb(object.Global{}, 0, err)
				return
			}
			if !found {
				cb(object.Global{}, 0, fmt.Errorf("%w: %q", ErrNotFound, path))
				return
			}
			cb(e.Target, e.Kind, nil)
		})
	})
}

// bind request encoding for the invocation parameter.
func encodeBind(name string, target object.Global, kind byte, mkdir bool) []byte {
	e := serde.NewEncoder(64 + len(name))
	e.PutString(name)
	e.PutUint64(target.Obj.Hi)
	e.PutUint64(target.Obj.Lo)
	e.PutUint64(target.Off)
	mk := byte(0)
	if mkdir {
		mk = 1
	}
	e.PutUvarint(uint64(kind))
	e.PutUvarint(uint64(mk))
	return e.Bytes()
}

// bindFunc is the mutation code object body: it runs where the system
// places it (the directory's home wins the cost model since the
// directory is there), appends the record, and returns the bound
// target — for mkdir it creates the child directory first.
func bindFunc(ctx *core.ExecCtx) {
	d := serde.NewDecoder(ctx.Param)
	name := d.String()
	target := object.Global{}
	target.Obj.Hi = d.Uint64()
	target.Obj.Lo = d.Uint64()
	target.Off = d.Uint64()
	kind := byte(d.Uvarint())
	mkdir := d.Uvarint() == 1
	if d.Err() != nil {
		ctx.Fail(d.Err())
		return
	}
	ctx.Deref(ctx.Args[0], func(dir *object.Object, err error) {
		if err != nil {
			ctx.Fail(err)
			return
		}
		// Mutations must happen on the authoritative copy: require
		// that the executing node is the directory's home. (The
		// placement engine sends us here because the data is here.)
		entry, err := ctx.Node().Store.GetEntry(dir.ID())
		if err != nil || !entry.Home {
			ctx.Fail(fmt.Errorf("namespace: bind executed away from directory home"))
			return
		}
		if mkdir {
			child, err := newDirObject(ctx.Node())
			if err != nil {
				ctx.Fail(err)
				return
			}
			target = object.Global{Obj: child.ID()}
			kind = KindDir
		}
		if err := appendRecord(dir, name, target, kind); err != nil {
			ctx.Fail(err)
			return
		}
		ctx.Node().Store.BumpVersion(dir.ID())
		// Remote nodes may hold cached copies of the directory from
		// earlier lookups; drop them so the new binding is visible.
		ctx.Node().Coherence.InvalidateSharers(dir.ID())
		out := serde.NewEncoder(24)
		out.PutUint64(target.Obj.Hi)
		out.PutUint64(target.Obj.Lo)
		out.PutUint64(target.Off)
		ctx.Return(out.Bytes())
	})
}

// mutate runs the bind code against the directory containing the leaf.
func (ns *Namespace) mutate(path string, target object.Global, kind byte, mkdir bool,
	cb func(object.Global, error)) {

	parts, err := splitPath(path)
	if err != nil {
		cb(object.Global{}, err)
		return
	}
	dirPath := strings.Join(parts[:len(parts)-1], "/")
	leaf := parts[len(parts)-1]
	ns.walk(dirPath, func(dirRef object.Global, err error) {
		if err != nil {
			cb(object.Global{}, err)
			return
		}
		ns.node.Invoke(ns.code, []object.Global{dirRef},
			func(res core.InvokeResult, err error) {
				if err != nil {
					cb(object.Global{}, err)
					return
				}
				d := serde.NewDecoder(res.Result)
				out := object.Global{}
				out.Obj.Hi = d.Uint64()
				out.Obj.Lo = d.Uint64()
				out.Off = d.Uint64()
				cb(out, d.Err())
			},
			core.WithParam(encodeBind(leaf, target, kind, mkdir)),
			core.WithComputeWork(0.00001), core.WithResultSize(32))
	})
}

// Bind names target at path (the parent directories must exist).
func (ns *Namespace) Bind(path string, target object.Global, cb func(error)) {
	if target.IsNil() {
		cb(fmt.Errorf("%w: nil target", ErrBadName))
		return
	}
	ns.mutate(path, target, KindValue, false, func(_ object.Global, err error) { cb(err) })
}

// Mkdir creates (and names) a child directory, returning its reference.
func (ns *Namespace) Mkdir(path string, cb func(object.Global, error)) {
	ns.mutate(path, object.Global{}, KindDir, true, cb)
}

// Unbind removes the binding at path (idempotent tombstone).
func (ns *Namespace) Unbind(path string, cb func(error)) {
	ns.mutate(path, object.Global{}, KindValue, false, func(_ object.Global, err error) { cb(err) })
}
