package namespace

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/object"
)

func newCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{Seed: 21, Scheme: core.SchemeE2E})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mkTarget creates a small value object on node.
func mkTarget(t *testing.T, n *core.Node, marker string) object.Global {
	t.Helper()
	o, err := n.CreateObject(2048)
	if err != nil {
		t.Fatal(err)
	}
	off, err := o.AllocString(marker)
	if err != nil {
		t.Fatal(err)
	}
	return object.Global{Obj: o.ID(), Off: off}
}

func TestBindResolveLocal(t *testing.T) {
	c := newCluster(t)
	ns, err := Create(c.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	target := mkTarget(t, c.Node(0), "v1")
	var bindErr error
	ns.Bind("alpha", target, func(err error) { bindErr = err })
	c.Run()
	if bindErr != nil {
		t.Fatal(bindErr)
	}
	var got object.Global
	var kind byte
	ns.Resolve("alpha", func(g object.Global, k byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got, kind = g, k
	})
	c.Run()
	if got != target || kind != KindValue {
		t.Fatalf("Resolve = %v kind %d", got, kind)
	}
}

func TestResolveFromRemoteNode(t *testing.T) {
	c := newCluster(t)
	ns0, err := Create(c.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	target := mkTarget(t, c.Node(1), "remote target")
	done := false
	ns0.Bind("svc", target, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	c.Run()
	if !done {
		t.Fatal("bind incomplete")
	}
	// Node 2 attaches and resolves through the network.
	ns2 := Attach(c.Node(2), ns0)
	var got object.Global
	ns2.Resolve("svc", func(g object.Global, _ byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = g
	})
	c.Run()
	if got != target {
		t.Fatalf("remote Resolve = %v", got)
	}
	// Follow the resolved reference to the data itself.
	var payload string
	c.Node(2).Deref(got, func(o *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		payload, _ = o.LoadString(got.Off)
	})
	c.Run()
	if payload != "remote target" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestRemoteBindRunsAtDirectoryHome(t *testing.T) {
	// A bind issued from node 2 must execute at the directory's home
	// (node 0) via placement — and succeed.
	c := newCluster(t)
	ns0, err := Create(c.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	ns2 := Attach(c.Node(2), ns0)
	target := mkTarget(t, c.Node(2), "x")
	var bindErr error
	ok := false
	ns2.Bind("from-remote", target, func(err error) { bindErr, ok = err, true })
	c.Run()
	if !ok || bindErr != nil {
		t.Fatalf("remote bind: ok=%v err=%v", ok, bindErr)
	}
	var got object.Global
	ns0.Resolve("from-remote", func(g object.Global, _ byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = g
	})
	c.Run()
	if got != target {
		t.Fatalf("resolve after remote bind = %v", got)
	}
}

func TestMkdirAndNestedPaths(t *testing.T) {
	c := newCluster(t)
	ns, err := Create(c.Node(0))
	if err != nil {
		t.Fatal(err)
	}
	var dirRef object.Global
	ns.Mkdir("services", func(g object.Global, err error) {
		if err != nil {
			t.Fatal(err)
		}
		dirRef = g
	})
	c.Run()
	if dirRef.IsNil() {
		t.Fatal("mkdir returned nil ref")
	}
	ns.Mkdir("services/ml", func(g object.Global, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	c.Run()
	target := mkTarget(t, c.Node(1), "deep")
	ns.Bind("services/ml/model", target, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	c.Run()
	var got object.Global
	ns.Resolve("services/ml/model", func(g object.Global, k byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if k != KindValue {
			t.Fatalf("kind = %d", k)
		}
		got = g
	})
	c.Run()
	if got != target {
		t.Fatalf("nested resolve = %v", got)
	}
	// Resolving the intermediate as a value yields the dir ref.
	ns.Resolve("services", func(g object.Global, k byte, err error) {
		if err != nil || k != KindDir {
			t.Fatalf("dir resolve: %v kind=%d err=%v", g, k, err)
		}
	})
	c.Run()
}

func TestRebindShadowsAndUnbindTombstones(t *testing.T) {
	c := newCluster(t)
	ns, _ := Create(c.Node(0))
	t1 := mkTarget(t, c.Node(0), "v1")
	t2 := mkTarget(t, c.Node(0), "v2")
	ns.Bind("k", t1, func(err error) {})
	c.Run()
	ns.Bind("k", t2, func(err error) {})
	c.Run()
	var got object.Global
	ns.Resolve("k", func(g object.Global, _ byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = g
	})
	c.Run()
	if got != t2 {
		t.Fatalf("rebind: got %v want %v", got, t2)
	}
	// Unbind tombstones.
	ns.Unbind("k", func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	c.Run()
	var rerr error
	ns.Resolve("k", func(_ object.Global, _ byte, err error) { rerr = err })
	c.Run()
	if !errors.Is(rerr, ErrNotFound) {
		t.Fatalf("after unbind: %v", rerr)
	}
}

func TestList(t *testing.T) {
	c := newCluster(t)
	ns, _ := Create(c.Node(0))
	for _, name := range []string{"a", "b", "c"} {
		ns.Bind(name, mkTarget(t, c.Node(0), name), func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		})
		c.Run()
	}
	ns.Unbind("b", func(error) {})
	c.Run()
	var names []string
	ns.List("/", func(entries []Entry, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			names = append(names, e.Name)
		}
	})
	c.Run()
	if strings.Join(names, ",") != "c,a" && strings.Join(names, ",") != "a,c" {
		t.Fatalf("List = %v (b should be tombstoned)", names)
	}
}

func TestStaleCachedDirectoryInvalidated(t *testing.T) {
	// Node 2 caches the root by resolving, then node 0 binds a new
	// name; node 2 must see it (cached copy invalidated).
	c := newCluster(t)
	ns0, _ := Create(c.Node(0))
	ns0.Bind("first", mkTarget(t, c.Node(0), "1"), func(error) {})
	c.Run()
	ns2 := Attach(c.Node(2), ns0)
	ns2.Resolve("first", func(_ object.Global, _ byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	c.Run()
	if !c.Node(2).Store.Contains(ns0.Root().Obj) {
		t.Fatal("setup: node2 did not cache root")
	}
	// New binding from node 0.
	t2 := mkTarget(t, c.Node(0), "2")
	ns0.Bind("second", t2, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	c.Run()
	var got object.Global
	var rerr error
	ns2.Resolve("second", func(g object.Global, _ byte, err error) { got, rerr = g, err })
	c.Run()
	if rerr != nil {
		t.Fatalf("stale cache not invalidated: %v", rerr)
	}
	if got != t2 {
		t.Fatalf("resolve = %v", got)
	}
}

func TestPathValidation(t *testing.T) {
	c := newCluster(t)
	ns, _ := Create(c.Node(0))
	var err1, err2, err3 error
	ns.Resolve("", func(_ object.Global, _ byte, err error) { err1 = err })
	ns.Resolve("a//b", func(_ object.Global, _ byte, err error) { err2 = err })
	ns.Bind("x", object.Global{}, func(err error) { err3 = err })
	c.Run()
	if !errors.Is(err1, ErrBadName) || !errors.Is(err2, ErrBadName) || !errors.Is(err3, ErrBadName) {
		t.Fatalf("validation: %v %v %v", err1, err2, err3)
	}
	var err4 error
	ns.Resolve("missing/deep", func(_ object.Global, _ byte, err error) { err4 = err })
	c.Run()
	if !errors.Is(err4, ErrNotFound) {
		t.Fatalf("missing dir: %v", err4)
	}
	// Using a value as a directory.
	ns.Bind("val", mkTarget(t, c.Node(0), "v"), func(error) {})
	c.Run()
	var err5 error
	ns.Resolve("val/sub", func(_ object.Global, _ byte, err error) { err5 = err })
	c.Run()
	if !errors.Is(err5, ErrNotDir) {
		t.Fatalf("value-as-dir: %v", err5)
	}
}

func TestNotADirectoryObject(t *testing.T) {
	c := newCluster(t)
	ns, _ := Create(c.Node(0))
	plain, _ := c.Node(0).CreateObject(2048)
	// Manually bind a plain object as a "dir" and try to walk into it.
	ns.Bind("fake", object.Global{Obj: plain.ID()}, func(error) {})
	c.Run()
	var rerr error
	ns.Resolve("fake/x", func(_ object.Global, _ byte, err error) { rerr = err })
	c.Run()
	if rerr == nil {
		t.Fatal("walked into a non-directory object")
	}
}

func TestListErrors(t *testing.T) {
	c := newCluster(t)
	ns, _ := Create(c.Node(0))
	var err1 error
	ns.List("missing-dir/x", func(_ []Entry, err error) { err1 = err })
	c.Run()
	if !errors.Is(err1, ErrNotFound) {
		t.Fatalf("List of missing dir: %v", err1)
	}
	var err2 error
	ns.List("bad//path", func(_ []Entry, err error) { err2 = err })
	c.Run()
	if !errors.Is(err2, ErrBadName) {
		t.Fatalf("List of bad path: %v", err2)
	}
	// Root list of empty namespace.
	var entries []Entry
	listed := false
	ns.List("", func(es []Entry, err error) {
		if err != nil {
			t.Fatal(err)
		}
		entries, listed = es, true
	})
	c.Run()
	if !listed || len(entries) != 0 {
		t.Fatalf("empty root list: %v %v", listed, entries)
	}
}

func TestBindIntoMissingDirectory(t *testing.T) {
	c := newCluster(t)
	ns, _ := Create(c.Node(0))
	var gotErr error
	ns.Bind("nowhere/else/x", mkTarget(t, c.Node(0), "v"), func(err error) { gotErr = err })
	c.Run()
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("bind into missing dir: %v", gotErr)
	}
}

func TestManyBindings(t *testing.T) {
	c := newCluster(t)
	ns, _ := Create(c.Node(0))
	const n = 100
	for i := 0; i < n; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		ns.Bind(name, mkTarget(t, c.Node(i%3), name), func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		})
		c.Run()
	}
	var count int
	ns.List("/", func(entries []Entry, err error) {
		if err != nil {
			t.Fatal(err)
		}
		count = len(entries)
	})
	c.Run()
	if count != n {
		t.Fatalf("List = %d entries, want %d", count, n)
	}
}
