package core

import (
	"errors"
	"fmt"

	"repro/internal/gasperr"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/placement"
	"repro/internal/serde"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Errors surfaced by invocation.
var (
	ErrNoFunction = errors.New("core: symbol not in registry")
	ErrNotCode    = errors.New("core: object is not a code object")
	ErrFinished   = errors.New("core: execution context already completed")
)

// codeMagic marks code objects ("the uniformity between code and
// data", §5: code is just another object in the space).
const codeMagic = 0x45444F43 // "CODE"

// Func is an executable registered under a code object's symbol. It
// runs on whichever node the system places it and must complete the
// context exactly once (Return or Fail).
type Func func(ctx *ExecCtx)

// Registry maps code symbols to executables. Every node carries a
// registry; a code object names a symbol, so moving the code object
// moves the right to invoke it (the dispatch itself is a local map
// lookup — the simulation substitution for shipping machine code).
type Registry struct {
	funcs map[string]Func
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Func)}
}

// Register installs fn under symbol.
func (r *Registry) Register(symbol string, fn Func) {
	r.funcs[symbol] = fn
}

// Lookup finds a symbol's executable.
func (r *Registry) Lookup(symbol string) (Func, bool) {
	fn, ok := r.funcs[symbol]
	return fn, ok
}

// BuildCodeObject lays out a code object: magic, symbol, and FOT
// references to the data objects the code is known to touch (its
// static reachability, which the prefetcher can exploit).
func BuildCodeObject(id oid.ID, symbol string, deps ...oid.ID) (*object.Object, error) {
	size := object.HeaderSize + object.FOTEntrySize*object.DefaultFOTCap +
		16 + 8 + len(symbol) + 64
	o, err := object.New(id, size, 0)
	if err != nil {
		return nil, err
	}
	magicOff, err := o.Alloc(8, 8)
	if err != nil {
		return nil, err
	}
	if err := o.PutUint64(magicOff, codeMagic); err != nil {
		return nil, err
	}
	if _, err := o.AllocString(symbol); err != nil {
		return nil, err
	}
	for _, d := range deps {
		if _, err := o.AddFOT(d, object.FlagRead); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// CodeSymbol extracts the symbol from a code object.
func CodeSymbol(o *object.Object) (string, error) {
	base := o.HeapBase()
	magic, err := o.Uint64(base)
	if err != nil || magic != codeMagic {
		return "", ErrNotCode
	}
	return o.LoadString(base + 8)
}

// CreateCodeObject builds a code object and homes it at this node.
func (n *Node) CreateCodeObject(symbol string, deps ...oid.ID) (*object.Object, error) {
	o, err := BuildCodeObject(n.cluster.NewID(), symbol, deps...)
	if err != nil {
		return nil, err
	}
	if err := n.AdoptObject(o); err != nil {
		return nil, err
	}
	return o, nil
}

// ExecCtx is the environment a Func runs in: the executing node, the
// argument references, and a small by-value parameter blob.
type ExecCtx struct {
	node  *Node
	Args  []object.Global
	Param []byte

	reply    func([]byte, error)
	finished bool
}

// Node returns the executing node.
func (c *ExecCtx) Node() *Node { return c.node }

// Deref fetches an argument object (on-demand data movement).
func (c *ExecCtx) Deref(g object.Global, cb func(*object.Object, error)) {
	c.node.Deref(g, cb)
}

// DerefAll fetches several references.
func (c *ExecCtx) DerefAll(gs []object.Global, cb func([]*object.Object, error)) {
	c.node.DerefAll(gs, cb)
}

// ReadRef reads through a reference without caching the whole object.
func (c *ExecCtx) ReadRef(g object.Global, length int, cb func([]byte, error)) {
	c.node.ReadRef(g, length, cb)
}

// Return completes the invocation with a result.
func (c *ExecCtx) Return(result []byte) {
	if c.finished {
		return
	}
	c.finished = true
	c.reply(result, nil)
}

// Fail completes the invocation with an error.
func (c *ExecCtx) Fail(err error) {
	if c.finished {
		return
	}
	c.finished = true
	c.reply(nil, err)
}

// invokeOpts is the resolved option set for one invocation. It is
// internal: callers compose InvokeOption values instead, so new knobs
// (retry policy, replication, placement hints) never widen the Invoke
// signature.
type invokeOpts struct {
	param         []byte
	computeWork   float64
	resultSize    int64
	forceExecutor wire.StationID
	placementHint wire.StationID
	timeout       netsim.Duration
	replicas      int
	retries       int
	retryBackoff  netsim.Duration
}

// InvokeOption tunes a single invocation.
type InvokeOption func(*invokeOpts)

// resolveOptions folds opts into the defaults.
func resolveOptions(opts []InvokeOption) *invokeOpts {
	o := &invokeOpts{retryBackoff: netsim.Millisecond}
	for _, fn := range opts {
		fn(o)
	}
	return o
}

// WithParam attaches a small by-value parameter (e.g. an activation).
func WithParam(p []byte) InvokeOption {
	return func(o *invokeOpts) { o.param = p }
}

// WithComputeWork feeds the placement cost model's work estimate.
func WithComputeWork(w float64) InvokeOption {
	return func(o *invokeOpts) { o.computeWork = w }
}

// WithResultSize hints the result bytes for the cost model.
func WithResultSize(n int64) InvokeOption {
	return func(o *invokeOpts) { o.resultSize = n }
}

// WithExecutor bypasses placement entirely (0 = system chooses). Used
// by the baseline comparisons where the programmer hard-codes the
// executor, which is precisely what the paper argues against.
func WithExecutor(st wire.StationID) InvokeOption {
	return func(o *invokeOpts) { o.forceExecutor = st }
}

// WithPlacementHint biases — but does not force — placement toward a
// station: the hinted candidate's cost is discounted, so it wins ties
// and near-ties while a clearly better executor still prevails.
func WithPlacementHint(st wire.StationID) InvokeOption {
	return func(o *invokeOpts) { o.placementHint = st }
}

// WithTimeout bounds the overall invocation (0 = scaled default).
func WithTimeout(d netsim.Duration) InvokeOption {
	return func(o *invokeOpts) { o.timeout = d }
}

// WithReplication seeds cached copies of each argument object at up
// to k additional live nodes after the invocation succeeds — the §5
// replication that lets a later home failure be masked by promotion.
func WithReplication(k int) InvokeOption {
	return func(o *invokeOpts) { o.replicas = k }
}

// WithRetries retries a failed invocation up to n more times when the
// failure class is retryable (timeout or unreachable peer), doubling
// backoff from the given initial wait between attempts. Pass backoff
// 0 to keep the 1ms default.
func WithRetries(n int, backoff netsim.Duration) InvokeOption {
	return func(o *invokeOpts) {
		o.retries = n
		if backoff != 0 {
			o.retryBackoff = backoff
		}
	}
}

// InvokeResult reports a completed invocation.
type InvokeResult struct {
	Result   []byte
	Executor wire.StationID
	Decision placement.Decision
	Elapsed  netsim.Duration
}

// ChainStep is one stage of a multi-step computation: its code, the
// data references it touches, and options. The previous stage's result
// bytes arrive as this stage's parameter (prepended before the step's
// own WithParam bytes, if both are set).
type ChainStep struct {
	Code object.Global
	Args []object.Global
	Opts []InvokeOption
}

// InvokeChain runs steps sequentially, placing each independently by
// the cost model — the "co-design between query planning ... and
// network-level scheduling" sketched in §5: each stage gravitates to
// its data, and only the (small) intermediate results travel.
func (n *Node) InvokeChain(steps []ChainStep, cb func([]InvokeResult, error)) {
	results := make([]InvokeResult, 0, len(steps))
	var run func(i int, carry []byte)
	run = func(i int, carry []byte) {
		if i >= len(steps) {
			cb(results, nil)
			return
		}
		step := steps[i]
		o := resolveOptions(step.Opts)
		if carry != nil {
			if len(o.param) > 0 {
				o.param = append(append([]byte(nil), carry...), o.param...)
			} else {
				o.param = carry
			}
		}
		n.invokeResolved(step.Code, step.Args, o, func(res InvokeResult, err error) {
			if err != nil {
				cb(results, fmt.Errorf("core: chain step %d: %w", i, err))
				return
			}
			results = append(results, res)
			run(i+1, res.Result)
		})
	}
	run(0, nil)
}

// invokeMethod is the internal method name remote invocations ride on.
const invokeMethod = "_core.invoke"

// marshalInvoke encodes the invocation request.
func marshalInvoke(code object.Global, args []object.Global, param []byte) []byte {
	e := serde.NewEncoder(64 + 24*len(args) + len(param))
	putGlobal(e, code)
	e.PutUvarint(uint64(len(args)))
	for _, g := range args {
		putGlobal(e, g)
	}
	e.PutBytes(param)
	return e.Bytes()
}

func putGlobal(e *serde.Encoder, g object.Global) {
	e.PutUint64(g.Obj.Hi)
	e.PutUint64(g.Obj.Lo)
	e.PutUint64(g.Off)
}

func getGlobal(d *serde.Decoder) object.Global {
	return object.Global{
		Obj: oid.ID{Hi: d.Uint64(), Lo: d.Uint64()},
		Off: d.Uint64(),
	}
}

func unmarshalInvoke(raw []byte) (code object.Global, args []object.Global, param []byte, err error) {
	d := serde.NewDecoder(raw)
	code = getGlobal(d)
	n := int(d.Uvarint())
	if d.Err() != nil {
		return code, nil, nil, d.Err()
	}
	if n < 0 || n > 1<<20 {
		return code, nil, nil, fmt.Errorf("core: absurd arg count %d", n)
	}
	args = make([]object.Global, n)
	for i := range args {
		args[i] = getGlobal(d)
	}
	param = d.Bytes()
	return code, args, param, d.Err()
}

// registerInvoke installs the remote-invocation entry point.
func (r *Registry) registerInvoke(n *Node) {
	n.RPCServer.RegisterAsync(invokeMethod, func(raw []byte, reply func([]byte, error)) {
		code, args, param, err := unmarshalInvoke(raw)
		if err != nil {
			reply(nil, err)
			return
		}
		n.executeLocal(code, args, param, reply)
	})
}

// executeLocal fetches the code object (code mobility: the code moves
// to the data's chosen rendezvous as bytes like everything else),
// resolves its symbol, and runs it.
func (n *Node) executeLocal(code object.Global, args []object.Global, param []byte,
	reply func([]byte, error)) {

	n.Deref(code, func(codeObj *object.Object, err error) {
		if err != nil {
			reply(nil, fmt.Errorf("core: fetching code object: %w", err))
			return
		}
		symbol, err := CodeSymbol(codeObj)
		if err != nil {
			reply(nil, err)
			return
		}
		fn, ok := n.Registry.Lookup(symbol)
		if !ok {
			reply(nil, fmt.Errorf("%w: %q", ErrNoFunction, symbol))
			return
		}
		fn(&ExecCtx{node: n, Args: args, Param: param, reply: reply})
	})
}

// buildPlacementRequest assembles the cost-model inputs from the
// metadata service's view of the objects involved.
func (n *Node) buildPlacementRequest(code object.Global, args []object.Global,
	opts *invokeOpts) *placement.Request {

	req := &placement.Request{
		Invoker:     n.Station,
		ComputeWork: opts.computeWork,
		ResultSize:  opts.resultSize,
		Hint:        opts.placementHint,
	}
	fill := func(g object.Global) placement.DataItem {
		item := placement.DataItem{Obj: g.Obj}
		if home, size, ok := n.cluster.Locate(g.Obj); ok {
			item.Size = int64(size)
			item.Location = home
		} else {
			item.Location = n.Station
		}
		for _, other := range n.cluster.Nodes {
			if other.Station != item.Location && other.Store.Contains(g.Obj) {
				item.CachedAt = append(item.CachedAt, other.Station)
			}
		}
		return item
	}
	req.Code = fill(code)
	for _, g := range args {
		req.Data = append(req.Data, fill(g))
	}
	return req
}

// Invoke runs a code reference over data references. Unless forced,
// the system chooses the executor via the rendezvous cost model
// (Figure 1 part 3): code moves to the executor as a byte copy, data
// is pulled on demand, and only the (small) result returns. Behavior
// is tuned by functional options (WithParam, WithComputeWork,
// WithTimeout, WithPlacementHint, WithReplication, WithRetries, ...).
func (n *Node) Invoke(code object.Global, args []object.Global,
	cb func(InvokeResult, error), opts ...InvokeOption) {

	n.invokeResolved(code, args, resolveOptions(opts), cb)
}

// invokeResolved is the retry-driving core of Invoke.
func (n *Node) invokeResolved(code object.Global, args []object.Global,
	o *invokeOpts, cb func(InvokeResult, error)) {

	start := n.Clock().Now()
	sp := n.cluster.Tracer.StartRoot("op:invoke")
	var attemptFn func(attempt int)
	attemptFn = func(attempt int) {
		n.invokeOnce(code, args, o, sp.Ctx(), func(res InvokeResult, err error) {
			if err != nil && attempt < o.retries && gasperr.Retryable(err) {
				// Exponential backoff between attempts; stale resolver
				// state was already invalidated by the failing layer.
				wait := o.retryBackoff << attempt
				n.Clock().Schedule(wait, func() { attemptFn(attempt + 1) })
				return
			}
			res.Elapsed = n.Clock().Now().Sub(start)
			if err == nil && o.replicas > 0 {
				n.seedReplicas(args, o.replicas)
			}
			if sp != nil {
				sp.SetAttr("executor", fmt.Sprintf("%d", res.Executor))
				if attempt > 0 {
					sp.SetAttr("attempts", fmt.Sprintf("%d", attempt+1))
				}
				if err != nil {
					sp.SetAttr("error", err.Error())
				}
				sp.End()
			}
			cb(res, err)
		})
	}
	attemptFn(0)
}

// invokeOnce performs a single placement + execution attempt.
func (n *Node) invokeOnce(code object.Global, args []object.Global,
	o *invokeOpts, tc trace.Ctx, cb func(InvokeResult, error)) {

	res := InvokeResult{}
	executor := o.forceExecutor
	if executor == 0 {
		dec, err := n.cluster.Placement.Choose(n.buildPlacementRequest(code, args, o))
		if err != nil {
			cb(res, err)
			return
		}
		res.Decision = dec
		executor = dec.Executor
	}
	res.Executor = executor

	finish := func(result []byte, err error) {
		res.Result = result
		cb(res, err)
	}
	if executor == n.Station {
		n.executeLocal(code, args, o.param, finish)
		return
	}
	blob := marshalInvoke(code, args, o.param)
	timeout := o.timeout
	if timeout == 0 {
		// Remote invocations may pull large objects; allow generous
		// virtual time.
		timeout = 30 * netsim.Second
	}
	n.RPCClient.CallCtx(executor, invokeMethod, blob, timeout, tc, finish)
}

// seedReplicas caches each argument object at up to k additional live
// nodes (lowest stations first), so a later home failure can be
// masked by promotion. Failures are ignored — replication is a hint,
// not a guarantee.
func (n *Node) seedReplicas(args []object.Global, k int) {
	for _, g := range args {
		seeded := 0
		for _, other := range n.cluster.Nodes {
			if seeded >= k {
				break
			}
			if other.Down() || other.Store.Contains(g.Obj) {
				continue
			}
			n.cluster.ReplicateObject(g.Obj, other, func(error) {})
			seeded++
		}
	}
}
