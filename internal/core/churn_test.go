package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
)

// TestRandomChurn drives a random interleaving of creates, reads,
// writes, and migrations across the cluster and checks after every
// operation that the data read back matches the latest write — the
// end-to-end consistency invariant under movement and caching.
func TestRandomChurn(t *testing.T) {
	for _, scheme := range []Scheme{SchemeE2E, SchemeController, SchemeHybrid} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			churn(t, scheme, 400)
		})
	}
}

func churn(t *testing.T, scheme Scheme, ops int) {
	c := newTestCluster(t, Config{Scheme: scheme, Seed: 77})
	rng := rand.New(rand.NewSource(99))

	type tracked struct {
		id    oid.ID
		off   uint64 // payload slot
		value uint64 // last written value
		home  int    // node index
	}
	var objs []*tracked

	mkObject := func() {
		home := rng.Intn(len(c.Nodes))
		o, err := c.Nodes[home].CreateObject(4096)
		if err != nil {
			t.Fatal(err)
		}
		off, _ := o.Alloc(8, 8)
		v := rng.Uint64()
		o.PutUint64(off, v)
		objs = append(objs, &tracked{id: o.ID(), off: off, value: v, home: home})
	}
	for i := 0; i < 6; i++ {
		mkObject()
	}
	c.Run()

	enc := func(v uint64) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		return b
	}
	dec := func(b []byte) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
		return v
	}

	for op := 0; op < ops; op++ {
		tr := objs[rng.Intn(len(objs))]
		node := c.Nodes[rng.Intn(len(c.Nodes))]
		switch rng.Intn(10) {
		case 0: // create another object
			if len(objs) < 24 {
				mkObject()
				c.Run()
			}
		case 1, 2: // migrate to a random node
			dst := rng.Intn(len(c.Nodes))
			if dst == tr.home {
				break
			}
			if err := c.MoveObject(tr.id, c.Nodes[tr.home], c.Nodes[dst]); err != nil {
				t.Fatalf("op %d: move: %v", op, err)
			}
			tr.home = dst
		case 3, 4, 5: // write through a random node
			v := rng.Uint64()
			done := false
			node.WriteRef(object.Global{Obj: tr.id, Off: tr.off}, enc(v), func(err error) {
				if err != nil {
					t.Fatalf("op %d: write: %v", op, err)
				}
				done = true
			})
			c.Run()
			if !done {
				t.Fatalf("op %d: write stalled", op)
			}
			tr.value = v
		default: // read through a random node
			var got uint64
			done := false
			node.ReadRef(object.Global{Obj: tr.id, Off: tr.off}, 8, func(b []byte, err error) {
				if err != nil {
					t.Fatalf("op %d: read %s: %v", op, tr.id.Short(), err)
				}
				got = dec(b)
				done = true
			})
			c.Run()
			if !done {
				t.Fatalf("op %d: read stalled", op)
			}
			if got != tr.value {
				t.Fatalf("op %d: read %d, want %d (object %s at node %d)",
					op, got, tr.value, tr.id.Short(), tr.home)
			}
		}
	}

	// Final sweep: every object readable from every node with the
	// last-written value.
	for _, tr := range objs {
		for ni, node := range c.Nodes {
			var got uint64
			done := false
			node.ReadRef(object.Global{Obj: tr.id, Off: tr.off}, 8, func(b []byte, err error) {
				if err != nil {
					t.Fatalf("final read from node %d: %v", ni, err)
				}
				got = dec(b)
				done = true
			})
			c.Run()
			if !done || got != tr.value {
				t.Fatalf("final: node %d sees %d, want %d", ni, got, tr.value)
			}
		}
	}
}

// TestChurnWithCaching repeats the churn with whole-object caching
// (Deref) in the mix: cached copies must be invalidated by writes.
func TestChurnWithCaching(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E, Seed: 31})
	rng := rand.New(rand.NewSource(13))
	owner := c.Node(1)
	o, _ := owner.CreateObject(4096)
	off, _ := o.Alloc(8, 8)
	var want uint64
	o.PutUint64(off, want)

	enc := func(v uint64) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		return b
	}

	for op := 0; op < 150; op++ {
		node := c.Nodes[rng.Intn(len(c.Nodes))]
		if rng.Intn(2) == 0 {
			// Cache the whole object somewhere, then verify its
			// contents match the latest write.
			done := false
			node.Deref(object.Global{Obj: o.ID()}, func(obj *object.Object, err error) {
				if err != nil {
					t.Fatalf("op %d: deref: %v", op, err)
				}
				got, _ := obj.Uint64(off)
				if got != want {
					t.Fatalf("op %d: cached copy has %d, want %d", op, got, want)
				}
				done = true
			})
			c.Run()
			if !done {
				t.Fatalf("op %d stalled", op)
			}
		} else {
			want = rng.Uint64()
			done := false
			node.WriteRef(object.Global{Obj: o.ID(), Off: off}, enc(want), func(err error) {
				if err != nil {
					t.Fatalf("op %d: write: %v", op, err)
				}
				done = true
			})
			c.Run()
			if !done {
				t.Fatalf("op %d stalled", op)
			}
		}
	}
}

// TestHostileFramesDoNotCrashNodes blasts every node with random
// garbage frames between legitimate operations.
func TestHostileFramesDoNotCrashNodes(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	owner, reader := c.Node(1), c.Node(0)
	o, _ := owner.CreateObject(4096)
	off, _ := o.AllocString("still alive")

	for round := 0; round < 20; round++ {
		// Garbage of random lengths, including valid-magic prefixes.
		for i := 0; i < 10; i++ {
			n := rng.Intn(200)
			fr := make(netsim.Frame, n)
			rng.Read(fr)
			if n >= 2 && rng.Intn(2) == 0 {
				fr[0], fr[1] = 0x6A, 0x50 // wire.Magic
			}
			c.Nodes[rng.Intn(len(c.Nodes))].Host.Send(fr)
		}
		c.Run()
		// A real operation still works.
		var got string
		reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 11, func(b []byte, err error) {
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			got = string(b)
		})
		c.Run()
		if got != "still alive" {
			t.Fatalf("round %d: read %q", round, got)
		}
	}
}

// TestManyObjectsManyNodes scales the population up on a larger
// cluster (9 nodes across the default 3 leaves).
func TestManyObjectsManyNodes(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E, Seed: 8, NumNodes: 9})
	if len(c.Nodes) != 9 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	var refs []object.Global
	for i := 0; i < 90; i++ {
		o, err := c.Nodes[i%9].CreateObject(2048)
		if err != nil {
			t.Fatal(err)
		}
		off, _ := o.AllocString(fmt.Sprintf("obj-%d", i))
		refs = append(refs, object.Global{Obj: o.ID(), Off: off})
	}
	c.Run()
	// Every node reads every 9th object.
	for ni, node := range c.Nodes {
		for i := ni; i < len(refs); i += 9 {
			i := i
			node.ReadRef(object.Global{Obj: refs[i].Obj, Off: refs[i].Off + 8}, 5, func(b []byte, err error) {
				if err != nil {
					t.Fatalf("node %d obj %d: %v", ni, i, err)
				}
			})
		}
	}
	c.Run()
}
