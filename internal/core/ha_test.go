package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
)

// awaitLeaderIdx elects (or finds) the control-plane leader, fatally
// failing the test on timeout.
func awaitLeaderIdx(t *testing.T, c *Cluster) int {
	t.Helper()
	if _, ok := c.AwaitControlLeader(100 * netsim.Millisecond); !ok {
		t.Fatal("no control-plane leader elected")
	}
	return c.ControlLeaderIndex()
}

func TestControllerHATopology(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeControllerHA})
	if got := len(c.Controllers); got != 3 {
		t.Fatalf("controllers = %d (default ControllerReplicas)", got)
	}
	if got := len(c.RaftNodes()); got != 3 {
		t.Fatalf("raft nodes = %d", got)
	}
	if c.Controller != c.Controllers[0] {
		t.Fatal("singular Controller alias should be replica 0")
	}
	for i, ctrl := range c.Controllers {
		if got := len(ctrl.Membership()); got != 3 {
			t.Fatalf("replica %d membership = %d", i, got)
		}
	}
	// The degenerate single-replica configuration must not build a
	// consensus node at all.
	single := newTestCluster(t, Config{Scheme: SchemeControllerHA, ControllerReplicas: 1})
	if got := len(single.RaftNodes()); got != 0 {
		t.Fatalf("1-replica cluster has %d raft nodes (want none)", got)
	}
	if single.Controllers[0].Raft() != nil {
		t.Fatal("degenerate controller carries a raft node")
	}
}

// TestControllerHAFailover is the tentpole's acceptance path: announce
// through the consensus leader, kill it, and verify a follower
// promotes, committed state survives byte-for-byte, and a restarted
// replica replays its log back into agreement.
func TestControllerHAFailover(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeControllerHA})
	leadIdx := awaitLeaderIdx(t, c)

	home, reader := c.Node(1), c.Node(0)
	objs := make([]oid.ID, 4)
	for i := range objs {
		o, err := home.CreateObject(2048)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = o.ID()
	}
	c.Run()
	for _, obj := range objs {
		if !home.Discovery().Announced(obj) {
			t.Fatalf("announce of %s not acked", obj.Short())
		}
	}
	committed := c.RaftNodes()[leadIdx].CommitIndex()
	if committed == 0 {
		t.Fatal("no committed entries after announces")
	}

	// Kill the leader; a follower must promote.
	c.CrashController(leadIdx)
	newIdx := awaitLeaderIdx(t, c)
	if newIdx == leadIdx {
		t.Fatalf("crashed replica %d still leads", newIdx)
	}

	// Zero committed loss: the new leader serves every record.
	lead := c.LeaderController()
	for _, obj := range objs {
		owner, ok := lead.Lookup(obj)
		if !ok || owner != home.Station {
			t.Fatalf("committed announce of %s lost after failover (ok=%v owner=%d)", obj.Short(), ok, owner)
		}
	}

	// A stale-marked read re-locates through the new leader.
	reader.Resolver.Invalidate(objs[0])
	readOK := false
	reader.ReadRef(object.Global{Obj: objs[0], Off: 8}, 16, func(_ []byte, err error) { readOK = err == nil })
	c.Run()
	if !readOK {
		t.Fatal("post-failover locate+read failed")
	}

	// The restarted replica replays its log back into agreement.
	c.RestartController(leadIdx)
	c.RunFor(10 * netsim.Millisecond) // daemon heartbeats walk it forward
	revived := c.RaftNodes()[leadIdx]
	leadNode := c.RaftNodes()[newIdx]
	if revived.LastApplied() < committed {
		t.Fatalf("revived replica applied %d < %d committed before the crash", revived.LastApplied(), committed)
	}
	for idx := uint64(1); idx <= committed; idx++ {
		lt, ld, lok := leadNode.EntryInfo(idx)
		rt, rd, rok := revived.EntryInfo(idx)
		if !lok || !rok || lt != rt || ld != rd {
			t.Fatalf("entry %d diverges after restart: leader(%d,%#x,%v) revived(%d,%#x,%v)",
				idx, lt, ld, lok, rt, rd, rok)
		}
	}
	for _, obj := range objs {
		owner, ok := c.Controllers[leadIdx].Lookup(obj)
		if !ok || owner != home.Station {
			t.Fatalf("revived replica's replayed state misses %s", obj.Short())
		}
	}
}

func TestControllerHATelemetryKeys(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeControllerHA})
	awaitLeaderIdx(t, c)
	owner := c.Node(0)
	if _, err := owner.CreateObject(4096); err != nil {
		t.Fatal(err)
	}
	c.Run()
	snap := c.Telemetry()
	for _, key := range []string{
		"raft.term",
		"raft.commit_index",
		"raft.elections_total",
		"raft.leader_changes_total",
	} {
		if _, ok := snap.Get(key); !ok {
			t.Fatalf("telemetry snapshot missing %q", key)
		}
	}
	if snap.Value("raft.term") < 1 {
		t.Fatalf("raft.term = %d", snap.Value("raft.term"))
	}
	if snap.Value("raft.commit_index") < 1 {
		t.Fatalf("raft.commit_index = %d", snap.Value("raft.commit_index"))
	}
	if snap.Value("raft.leader_changes_total") < 1 {
		t.Fatalf("raft.leader_changes_total = %d", snap.Value("raft.leader_changes_total"))
	}
	// Unreplicated schemes must not grow raft gauges.
	plain := newTestCluster(t, Config{Scheme: SchemeController})
	if _, ok := plain.Telemetry().Get("raft.term"); ok {
		t.Fatal("unreplicated controller exports raft telemetry")
	}
}

// TestIncGroupsReplicatedAcrossFailover pins multicast-group
// replication through the control plane: a group installed before a
// leader kill must survive on the survivors, a fresh sharer set must
// install through the NEW leader, and a revived replica must replay
// the groups from its log.
func TestIncGroupsReplicatedAcrossFailover(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeControllerHA, NumNodes: 6, IncMcast: true})
	leadIdx := awaitLeaderIdx(t, c)

	home := c.Node(0)
	o, err := home.CreateObject(2048)
	if err != nil {
		t.Fatal(err)
	}
	obj := o.ID()
	c.Run()
	heapOff := uint64(object.HeaderSize + object.FOTEntrySize*object.DefaultFOTCap)

	round := func(sharers int) {
		t.Helper()
		for s := 1; s <= sharers; s++ {
			c.Node(s).Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) {
				if err != nil {
					t.Errorf("acquire: %v", err)
				}
			})
		}
		c.Run()
		home.Coherence.WriteAtCB(obj, heapOff, []byte{1, 2, 3}, func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
		})
		c.Run()
		c.RunFor(5 * netsim.Millisecond) // drain ack timers
	}

	round(4) // sharer set {2,3,4,5}: first group, installed via the leader
	inc := home.Coherence.IncCounters()
	if inc.McastInvSent != 1 || inc.FallbackInvalidates != 0 {
		t.Fatalf("round 1 not multicast: %+v", inc)
	}
	for i, ctrl := range c.Controllers {
		if got := ctrl.Groups(); got != 1 {
			t.Fatalf("controller %d holds %d groups, want the install replicated", i, got)
		}
	}

	// Kill the leader mid-life; the group record must not die with it.
	c.CrashController(leadIdx)
	newIdx := awaitLeaderIdx(t, c)
	if newIdx == leadIdx {
		t.Fatalf("crashed replica %d still leads", newIdx)
	}
	if got := c.LeaderController().Groups(); got != 1 {
		t.Fatalf("new leader holds %d groups after failover", got)
	}

	round(3) // sharer set {2,3,4}: a NEW group through the new leader
	inc = home.Coherence.IncCounters()
	if inc.McastInvSent != 2 || inc.FallbackInvalidates != 0 {
		t.Fatalf("round 2 not multicast through the new leader: %+v", inc)
	}
	if got := c.LeaderController().Groups(); got != 2 {
		t.Fatalf("new leader holds %d groups, want 2", got)
	}

	// The revived replica replays both installs from its log.
	c.RestartController(leadIdx)
	c.RunFor(10 * netsim.Millisecond)
	if got := c.Controllers[leadIdx].Groups(); got != 2 {
		t.Fatalf("revived replica replayed %d groups, want 2", got)
	}
}
