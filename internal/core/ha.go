package core

import (
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/raft"
	"repro/internal/wire"
)

// This file is the cluster surface of the replicated control plane
// (SchemeControllerHA): replica crash/restart, leader discovery, and
// the raft handles the fault engine, invariant checker, and E13
// benchmark drive.

// controllerStations lists the control-plane replica stations for the
// configured scheme: ControllerReplicas consecutive stations from
// controllerStation under SchemeControllerHA, the single classic
// station under SchemeController/SchemeHybrid, nil otherwise.
func (c *Cluster) controllerStations() []wire.StationID {
	switch c.cfg.Scheme {
	case SchemeController, SchemeHybrid:
		return []wire.StationID{controllerStation}
	case SchemeControllerHA:
		out := make([]wire.StationID, c.cfg.ControllerReplicas)
		for i := range out {
			out[i] = controllerStation + wire.StationID(i)
		}
		return out
	}
	return nil
}

// RaftNodes returns the consensus node of every replicated controller
// (empty for unreplicated schemes).
func (c *Cluster) RaftNodes() []*raft.Node {
	var out []*raft.Node
	for _, ctrl := range c.Controllers {
		if rn := ctrl.Raft(); rn != nil {
			out = append(out, rn)
		}
	}
	return out
}

// LeaderController returns the control-plane replica that can commit
// proposals right now, or nil while no leader is elected. For the
// unreplicated schemes it is the (always-leading) single controller.
func (c *Cluster) LeaderController() *discovery.Controller {
	for i, ctrl := range c.Controllers {
		if !c.ctrlDown[i] && ctrl.IsLeader() {
			return ctrl
		}
	}
	return nil
}

// ControlLeaderIndex returns the leader replica's index into
// Controllers, or -1 while no leader is elected.
func (c *Cluster) ControlLeaderIndex() int {
	for i, ctrl := range c.Controllers {
		if !c.ctrlDown[i] && ctrl.IsLeader() {
			return i
		}
	}
	return -1
}

// ControllerDown reports whether control-plane replica i is crashed.
func (c *Cluster) ControllerDown(i int) bool { return c.ctrlDown[i] }

// CrashController kills control-plane replica i: its link drops, its
// endpoint forgets in-flight transfers, and the raft node loses all
// volatile state (log and term survive, as if persisted). Crashing an
// already-down replica is a no-op. Sim-only.
func (c *Cluster) CrashController(i int) {
	if c.Net == nil {
		panic("core: CrashController is sim-only")
	}
	if c.ctrlDown[i] {
		return
	}
	c.Net.SetLinkDown(c.controllerNodes[i], 0, true)
	c.controllerEPs[i].Reset()
	c.Controllers[i].Crash()
	c.ctrlDown[i] = true
}

// RestartController revives a crashed control-plane replica: the link
// returns and the raft node rejoins as a follower, replaying its log
// to rebuild the applied object map. Restarting a live replica is a
// no-op. Sim-only.
func (c *Cluster) RestartController(i int) {
	if c.Net == nil {
		panic("core: RestartController is sim-only")
	}
	if !c.ctrlDown[i] {
		return
	}
	c.Net.SetLinkDown(c.controllerNodes[i], 0, false)
	c.Controllers[i].Restart()
	c.ctrlDown[i] = false
}

// AwaitControlLeader steps the simulator until some control-plane
// replica leads, bounded by limit of virtual time. It returns the
// leader and true, or nil and false on timeout. Sim-only.
func (c *Cluster) AwaitControlLeader(limit netsim.Duration) (*discovery.Controller, bool) {
	if c.Sim == nil {
		panic("core: AwaitControlLeader is sim-only")
	}
	deadline := c.Sim.Now().Add(limit)
	for {
		if l := c.LeaderController(); l != nil {
			return l, true
		}
		if c.Sim.Now() >= deadline || !c.Sim.Step() {
			return nil, false
		}
	}
}

// ForgetStation drops every ownership record of a crashed host's
// station from the control plane. Unreplicated, this applies
// synchronously at the single controller; replicated, it must commit
// through the leader, so while an election is in flight the proposal
// is retried on a short timer (bounded — a permanently leaderless
// control plane drops the forget, and stale records surface as locate
// failures instead).
func (c *Cluster) ForgetStation(st wire.StationID) {
	c.forgetStation(st, 8)
}

func (c *Cluster) forgetStation(st wire.StationID, tries int) {
	if len(c.Controllers) == 0 {
		return
	}
	if lead := c.LeaderController(); lead != nil {
		lead.Forget(st)
		return
	}
	if tries <= 0 {
		return
	}
	c.Clock.Schedule(250*netsim.Microsecond, func() {
		c.forgetStation(st, tries-1)
	})
}
