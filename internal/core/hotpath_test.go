package core

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/object"
)

// TestRingGroupCoherence runs remote coherence ops between co-resident
// nodes: their traffic must actually travel the same-host rings (not
// the fabric), produce correct data, and leave the frame-buffer ledger
// balanced at quiescence.
func TestRingGroupCoherence(t *testing.T) {
	base := dataplane.LiveBufs()
	c := newTestCluster(t, Config{
		Scheme:     SchemeE2E,
		RingGroups: [][]int{{0, 1, 2}},
	})
	owner, reader := c.Node(1), c.Node(0)
	o, err := owner.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o.AllocString("ring-coherent")
	c.Run()

	var got []byte
	reader.ReadRef(object.Global{Obj: o.ID(), Off: uint64(off) + 8}, 13, func(b []byte, err error) {
		if err != nil {
			t.Fatalf("ring read: %v", err)
		}
		got = append([]byte(nil), b...)
	})
	var writeErr error
	reader.Coherence.WriteAtCB(o.ID(), o.HeapBase(), []byte("ring-write-back"), func(err error) { writeErr = err })
	c.Run()

	if string(got) != "ring-coherent" {
		t.Fatalf("read %q through the ring", got)
	}
	if writeErr != nil {
		t.Fatalf("ring write: %v", writeErr)
	}
	sent, delivered := uint64(0), uint64(0)
	for _, n := range c.Nodes {
		if n.Ring == nil {
			t.Fatal("node in a ring group has no RingLink")
		}
		st := n.Ring.Stats()
		sent += st.RingSent
		delivered += st.RingDelivered
		if st.RingDroppedFull != 0 {
			t.Fatalf("station %d dropped %d frames to a full ring", n.Station, st.RingDroppedFull)
		}
	}
	if sent == 0 || delivered == 0 {
		t.Fatalf("co-resident traffic bypassed the rings: sent=%d delivered=%d", sent, delivered)
	}
	if live := dataplane.LiveBufs(); live != base {
		t.Fatalf("LiveBufs = %d at quiescence, baseline %d — the ring path leaked", live, base)
	}
}

// TestBatchDeliveryCoherence runs the same remote ops with doorbell
// batching and a host receive cost: results must be identical in
// content, batches must actually coalesce under back-to-back traffic,
// and no frame buffer may leak.
func TestBatchDeliveryCoherence(t *testing.T) {
	base := dataplane.LiveBufs()
	c := newTestCluster(t, Config{
		Scheme:        SchemeE2E,
		BatchDelivery: true,
		HostRxCost:    5 * netsim.Microsecond,
	})
	owner, reader := c.Node(1), c.Node(0)
	o, err := owner.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o.AllocString("batched-coherent")
	c.Run()

	const reads = 8
	done := 0
	for i := 0; i < reads; i++ {
		reader.ReadRef(object.Global{Obj: o.ID(), Off: uint64(off) + 8}, 16, func(b []byte, err error) {
			if err != nil {
				t.Fatalf("batched read: %v", err)
			}
			if string(b) != "batched-coherent" {
				t.Fatalf("batched read returned %q", b)
			}
			done++
		})
	}
	c.Run()
	if done != reads {
		t.Fatalf("completed %d of %d batched reads", done, reads)
	}
	if fired, frames := c.Net.BatchStats(); frames <= fired {
		t.Fatalf("no coalescing: %d doorbells carried %d frames", fired, frames)
	}
	if live := dataplane.LiveBufs(); live != base {
		t.Fatalf("LiveBufs = %d at quiescence, baseline %d — the batch path leaked", live, base)
	}
}

// TestRingGroupsRejectBadConfig pins buildRingGroups validation: an
// out-of-range index and a node in two groups are construction errors,
// not silent misconfigurations.
func TestRingGroupsRejectBadConfig(t *testing.T) {
	if _, err := NewCluster(Config{Seed: 7, Scheme: SchemeE2E, RingGroups: [][]int{{0, 9}}}); err == nil {
		t.Fatal("out-of-range ring index accepted")
	}
	if _, err := NewCluster(Config{Seed: 7, Scheme: SchemeE2E, RingGroups: [][]int{{0, 1}, {1, 2}}}); err == nil {
		t.Fatal("node in two ring groups accepted")
	}
}
