package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/prefetch"
	"repro/internal/serde"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterTopology(t *testing.T) {
	for _, scheme := range []Scheme{SchemeE2E, SchemeController, SchemeHybrid} {
		c := newTestCluster(t, Config{Scheme: scheme})
		if len(c.Nodes) != 3 {
			t.Fatalf("%v: nodes = %d", scheme, len(c.Nodes))
		}
		if len(c.Switches) != 4 {
			t.Fatalf("%v: switches = %d (paper: four interconnected)", scheme, len(c.Switches))
		}
		hasCtrl := c.Controller != nil
		if (scheme != SchemeE2E) != hasCtrl {
			t.Fatalf("%v: controller = %v", scheme, hasCtrl)
		}
		if scheme.String() == "" {
			t.Fatal("scheme name")
		}
	}
}

func TestCreateAndDerefLocal(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	n := c.Node(0)
	o, err := n.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o.AllocString("hello")
	var got *object.Object
	n.Deref(object.Global{Obj: o.ID()}, func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.Run()
	s, _ := got.LoadString(off)
	if s != "hello" {
		t.Fatalf("got %q", s)
	}
	// Metadata service knows it.
	home, size, ok := c.Locate(o.ID())
	if !ok || home != n.Station || size != 4096 {
		t.Fatalf("Locate = %v %d %v", home, size, ok)
	}
}

func TestDerefRemoteE2E(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	owner, reader := c.Node(1), c.Node(0)
	o, err := owner.CreateObject(8192)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o.AllocString("remote data")
	var got *object.Object
	reader.Deref(object.Global{Obj: o.ID()}, func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.Run()
	if got == nil {
		t.Fatal("deref incomplete")
	}
	s, _ := got.LoadString(off)
	if s != "remote data" {
		t.Fatalf("got %q", s)
	}
	if !reader.Store.Contains(o.ID()) {
		t.Fatal("not cached after deref")
	}
}

func TestDerefRemoteController(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeController})
	owner, reader := c.Node(2), c.Node(0)
	o, err := owner.CreateObject(8192)
	if err != nil {
		t.Fatal(err)
	}
	c.Run() // let the announcement install rules
	if c.Controller.RulesInstalled() == 0 {
		t.Fatal("no rules installed after create")
	}
	ok := false
	reader.Deref(object.Global{Obj: o.ID()}, func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ok = true
	})
	c.Run()
	if !ok {
		t.Fatal("controller-routed deref failed")
	}
	// No broadcasts were needed.
	if c.BroadcastsObserved() != 0 {
		t.Fatalf("broadcasts = %d under controller scheme", c.BroadcastsObserved())
	}
}

func TestBroadcastsObservedE2E(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	owner, reader := c.Node(1), c.Node(0)
	o, _ := owner.CreateObject(4096)
	c.ResetStats()
	reader.Deref(object.Global{Obj: o.ID()}, func(*object.Object, error) {})
	c.Run()
	if c.BroadcastsObserved() == 0 {
		t.Fatal("E2E first access should broadcast")
	}
}

func TestInvokeLocalPlacement(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	n := c.Node(0)
	for _, nd := range c.Nodes {
		nd.Registry.Register("double", func(ctx *ExecCtx) {
			d := serde.NewDecoder(ctx.Param)
			v := d.Uint64()
			e := serde.NewEncoder(8)
			e.PutUint64(v * 2)
			ctx.Return(e.Bytes())
		})
	}
	code, err := n.CreateCodeObject("double")
	if err != nil {
		t.Fatal(err)
	}
	enc := serde.NewEncoder(8)
	enc.PutUint64(21)
	var res InvokeResult
	var gotErr error
	n.Invoke(object.Global{Obj: code.ID()}, nil,
		func(r InvokeResult, err error) { res, gotErr = r, err },
		WithParam(enc.Bytes()), WithComputeWork(0.001))
	c.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	d := serde.NewDecoder(res.Result)
	if d.Uint64() != 42 {
		t.Fatalf("result = %v", res.Result)
	}
}

func TestInvokeRemoteForced(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	caller, exec := c.Node(0), c.Node(2)
	for _, nd := range c.Nodes {
		nd := nd
		nd.Registry.Register("whoami", func(ctx *ExecCtx) {
			ctx.Return([]byte(fmt.Sprintf("station-%d", nd.Station)))
		})
	}
	code, _ := caller.CreateCodeObject("whoami")
	var res InvokeResult
	var gotErr error
	caller.Invoke(object.Global{Obj: code.ID()}, nil,
		func(r InvokeResult, err error) { res, gotErr = r, err },
		WithExecutor(exec.Station))
	c.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if string(res.Result) != "station-3" {
		t.Fatalf("result = %q", res.Result)
	}
	if res.Executor != exec.Station {
		t.Fatalf("executor = %v", res.Executor)
	}
	// Code mobility: the code object was pulled to the executor.
	if !exec.Store.Contains(code.ID()) {
		t.Fatal("code object not moved to executor")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestInvokeSystemPlacementPicksIdleDataHolder(t *testing.T) {
	// Alice (node 0) invokes over a big object on Bob (node 1). Bob is
	// idle, so the system runs the code at Bob — data never moves.
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	alice, bob := c.Node(0), c.Node(1)
	alice.SetLoadProfile(1, 0)
	bob.SetLoadProfile(10, 0)
	c.Node(2).SetLoadProfile(10, 0.5)

	big, err := bob.CreateObject(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := big.AllocString("payload@bob")
	for _, nd := range c.Nodes {
		nd := nd
		nd.Registry.Register("peek", func(ctx *ExecCtx) {
			ctx.Deref(ctx.Args[0], func(o *object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				s, _ := o.LoadString(off)
				ctx.Return([]byte(fmt.Sprintf("%d:%s", nd.Station, s)))
			})
		})
	}
	code, _ := alice.CreateCodeObject("peek")
	var res InvokeResult
	var gotErr error
	alice.Invoke(object.Global{Obj: code.ID()}, []object.Global{{Obj: big.ID()}},
		func(r InvokeResult, err error) { res, gotErr = r, err },
		WithComputeWork(0.0001), WithResultSize(64))
	c.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if res.Executor != bob.Station {
		t.Fatalf("executor = %v, want Bob; decision %+v", res.Executor, res.Decision.Candidates)
	}
	if string(res.Result) != "2:payload@bob" {
		t.Fatalf("result = %q", res.Result)
	}
	// Data gravity: the big object stayed home.
	if c.Node(0).Store.Contains(big.ID()) || c.Node(2).Store.Contains(big.ID()) {
		t.Fatal("big object moved unnecessarily")
	}
}

func TestInvokeSystemPlacementAvoidsOverloadedHolder(t *testing.T) {
	// Bob overloaded, Carol idle: with heavy compute the system moves
	// the computation (and pulls the data) to Carol — Figure 1 (3).
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	alice, bob, carol := c.Node(0), c.Node(1), c.Node(2)
	alice.SetLoadProfile(0.5, 0)
	bob.SetLoadProfile(10, 0.99)
	carol.SetLoadProfile(10, 0)

	shard, err := bob.CreateObject(256 << 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range c.Nodes {
		nd := nd
		nd.Registry.Register("infer", func(ctx *ExecCtx) {
			ctx.Deref(ctx.Args[0], func(o *object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				ctx.Return([]byte(fmt.Sprintf("ran@%d", nd.Station)))
			})
		})
	}
	code, _ := alice.CreateCodeObject("infer")
	var res InvokeResult
	var gotErr error
	alice.Invoke(object.Global{Obj: code.ID()}, []object.Global{{Obj: shard.ID()}},
		func(r InvokeResult, err error) { res, gotErr = r, err },
		WithComputeWork(50), WithResultSize(64))
	c.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if res.Executor != carol.Station {
		t.Fatalf("executor = %v, want Carol; candidates %+v", res.Executor, res.Decision.Candidates)
	}
	if string(res.Result) != "ran@3" {
		t.Fatalf("result = %q", res.Result)
	}
	// Data was pulled on demand to Carol.
	if !carol.Store.Contains(shard.ID()) {
		t.Fatal("shard not pulled to Carol")
	}
}

func TestExecCtxSurface(t *testing.T) {
	// Exercise the full ExecCtx API from inside a function: Node,
	// ReadRef, DerefAll, Fail, and double-completion safety.
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	driver, owner := c.Node(0), c.Node(1)
	a, _ := owner.CreateObject(4096)
	offA, _ := a.AllocString("alpha")
	b, _ := owner.CreateObject(4096)
	offB, _ := b.AllocString("beta")

	c.RegisterAll("surface", func(ctx *ExecCtx) {
		if ctx.Node() == nil {
			ctx.Fail(errors.New("no node"))
			return
		}
		ctx.ReadRef(object.Global{Obj: a.ID(), Off: offA + 8}, 5, func(first []byte, err error) {
			if err != nil {
				ctx.Fail(err)
				return
			}
			ctx.DerefAll([]object.Global{{Obj: b.ID()}}, func(objs []*object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				second, _ := objs[0].LoadString(offB)
				ctx.Return([]byte(string(first) + "+" + second))
				ctx.Return([]byte("SECOND")) // must be ignored
				ctx.Fail(errors.New("too late"))
			})
		})
	})
	code, _ := driver.CreateCodeObject("surface")
	var res InvokeResult
	var gotErr error
	calls := 0
	driver.Invoke(object.Global{Obj: code.ID()}, nil,
		func(r InvokeResult, err error) { res, gotErr = r, err; calls++ },
		WithExecutor(c.Node(2).Station))
	c.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
	if string(res.Result) != "alpha+beta" {
		t.Fatalf("result = %q", res.Result)
	}
}

func TestExecCtxFail(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	driver := c.Node(0)
	c.RegisterAll("fails", func(ctx *ExecCtx) {
		ctx.Fail(errors.New("deliberate"))
	})
	code, _ := driver.CreateCodeObject("fails")
	var gotErr error
	driver.Invoke(object.Global{Obj: code.ID()}, nil,
		func(_ InvokeResult, err error) { gotErr = err },
		WithExecutor(c.Node(1).Station))
	c.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "deliberate") {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestClusterAccessorsAndRunFor(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	if c.Node(0).Cluster() != c {
		t.Fatal("Cluster accessor")
	}
	if c.Generator() == nil {
		t.Fatal("Generator accessor")
	}
	fired := false
	c.Sim.Schedule(10*netsim.Microsecond, func() { fired = true })
	c.RunFor(5 * netsim.Microsecond)
	if fired {
		t.Fatal("RunFor overran")
	}
	c.RunFor(10 * netsim.Microsecond)
	if !fired {
		t.Fatal("RunFor did not reach event")
	}
}

func TestInvokeUnknownSymbol(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	n := c.Node(0)
	code, _ := n.CreateCodeObject("nowhere")
	var gotErr error
	n.Invoke(object.Global{Obj: code.ID()}, nil,
		func(_ InvokeResult, err error) { gotErr = err },
		WithExecutor(n.Station))
	c.Run()
	if !errors.Is(gotErr, ErrNoFunction) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestInvokeNotCodeObject(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	n := c.Node(0)
	data, _ := n.CreateObject(4096)
	var gotErr error
	n.Invoke(object.Global{Obj: data.ID()}, nil,
		func(_ InvokeResult, err error) { gotErr = err },
		WithExecutor(n.Station))
	c.Run()
	if !errors.Is(gotErr, ErrNotCode) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestCodeObjectRoundTrip(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	n := c.Node(0)
	dep, _ := n.CreateObject(4096)
	code, err := n.CreateCodeObject("sym.test", dep.ID())
	if err != nil {
		t.Fatal(err)
	}
	sym, err := CodeSymbol(code)
	if err != nil || sym != "sym.test" {
		t.Fatalf("symbol = %q, %v", sym, err)
	}
	// Dependency is reachable (prefetchable).
	reach := code.Reachable()
	if len(reach) != 1 || reach[0] != dep.ID() {
		t.Fatalf("reachable = %v", reach)
	}
}

func TestMoveObjectAndStaleAccess(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	reader, from, to := c.Node(0), c.Node(1), c.Node(2)
	o, _ := from.CreateObject(4096)
	off, _ := o.AllocString("wanderer")
	// Warm reader's cache.
	var warmErr error
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 8, func(_ []byte, err error) { warmErr = err })
	c.Run()
	if warmErr != nil {
		t.Fatal(warmErr)
	}
	if err := c.MoveObject(o.ID(), from, to); err != nil {
		t.Fatal(err)
	}
	if home, _, _ := c.Locate(o.ID()); home != to.Station {
		t.Fatal("metadata not updated")
	}
	var got []byte
	var gotErr error
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 8, func(b []byte, err error) {
		got, gotErr = append([]byte(nil), b...), err
	})
	c.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !bytes.Equal(got, []byte("wanderer")) {
		t.Fatalf("got %q", got)
	}
	if reader.Coherence.Counters().StaleRetries == 0 {
		t.Fatal("stale retry path not exercised")
	}
}

func TestWriteRefCoherent(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	owner, writer := c.Node(0), c.Node(1)
	o, _ := owner.CreateObject(4096)
	off, _ := o.Alloc(8, 8)
	var werr error
	writer.WriteRef(object.Global{Obj: o.ID(), Off: off}, []byte("ABCDEFGH"), func(err error) { werr = err })
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	b, _ := o.ReadAt(off, 8)
	if string(b) != "ABCDEFGH" {
		t.Fatalf("home = %q", b)
	}
}

func TestPrefetchIntegration(t *testing.T) {
	c := newTestCluster(t, Config{
		Scheme:         SchemeE2E,
		EnablePrefetch: true,
		Prefetch:       prefetch.Config{MaxDepth: 1, MaxObjects: 16},
	})
	owner, reader := c.Node(1), c.Node(0)
	childA, _ := owner.CreateObject(4096)
	childB, _ := owner.CreateObject(4096)
	root, _ := owner.CreateObject(8192)
	slot, _ := root.Alloc(16, 8)
	root.StoreRef(slot, childA.ID(), 0, object.FlagRead)
	root.StoreRef(slot+8, childB.ID(), 0, object.FlagRead)

	reader.Deref(object.Global{Obj: root.ID()}, func(*object.Object, error) {})
	c.Run()
	if !reader.Store.Contains(childA.ID()) || !reader.Store.Contains(childB.ID()) {
		t.Fatal("children not prefetched")
	}
	if reader.Prefetch.Counters().Issued != 2 {
		t.Fatalf("prefetch counters = %+v", reader.Prefetch.Counters())
	}
}

func TestDerefAll(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	owner, reader := c.Node(1), c.Node(0)
	var refs []object.Global
	for i := 0; i < 4; i++ {
		o, _ := owner.CreateObject(4096)
		refs = append(refs, object.Global{Obj: o.ID()})
	}
	var got []*object.Object
	reader.DerefAll(refs, func(objs []*object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = objs
	})
	c.Run()
	if len(got) != 4 {
		t.Fatal("DerefAll incomplete")
	}
	for i, o := range got {
		if o == nil || o.ID() != refs[i].Obj {
			t.Fatalf("slot %d wrong", i)
		}
	}
	// Empty case runs synchronously.
	ran := false
	reader.DerefAll(nil, func(objs []*object.Object, err error) { ran = err == nil && len(objs) == 0 })
	if !ran {
		t.Fatal("empty DerefAll")
	}
}

func TestDerefNilRef(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	var gotErr error
	c.Node(0).Deref(object.Global{}, func(_ *object.Object, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("nil ref accepted")
	}
}

func TestHybridSchemeEndToEnd(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeHybrid})
	owner, reader := c.Node(1), c.Node(0)
	o, _ := owner.CreateObject(4096)
	c.Run() // announcements
	okRead := false
	reader.Deref(object.Global{Obj: o.ID()}, func(_ *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		okRead = true
	})
	c.Run()
	if !okRead {
		t.Fatal("hybrid deref failed")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() netsim.Time {
		c := newTestCluster(t, Config{Scheme: SchemeE2E, Seed: 33})
		owner, reader := c.Node(1), c.Node(0)
		o, _ := owner.CreateObject(64 << 10)
		reader.Deref(object.Global{Obj: o.ID()}, func(*object.Object, error) {})
		c.Run()
		return c.Sim.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	owner, reader := c.Node(1), c.Node(0)
	o, _ := owner.CreateObject(4096)
	reader.Deref(object.Global{Obj: o.ID()}, func(*object.Object, error) {})
	c.Run()
	st := c.Stats()
	if st.Network.FramesDelivered == 0 || len(st.Switches) != 4 {
		t.Fatalf("stats = %+v", st)
	}
	c.ResetStats()
	if c.Stats().Network.FramesDelivered != 0 {
		t.Fatal("ResetStats")
	}
}

func TestInvokeChainStagesFollowData(t *testing.T) {
	// A two-stage pipeline: stage 1's data lives on node 1, stage 2's
	// on node 2. Each stage should run where its data is, with only
	// the small intermediate result traveling.
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	driver := c.Node(0)
	driver.SetLoadProfile(0.5, 0)
	c.Node(1).SetLoadProfile(10, 0)
	c.Node(2).SetLoadProfile(10, 0)

	objA, _ := c.Node(1).CreateObject(512 << 10)
	offA, _ := objA.Alloc(8, 8)
	objA.PutUint64(offA, 40)
	objB, _ := c.Node(2).CreateObject(512 << 10)
	offB, _ := objB.Alloc(8, 8)
	objB.PutUint64(offB, 2)

	for _, nd := range c.Nodes {
		nd := nd
		nd.Registry.Register("stage", func(ctx *ExecCtx) {
			ctx.Deref(ctx.Args[0], func(o *object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				v, _ := o.Uint64(object.HeaderSize + object.FOTEntrySize*object.DefaultFOTCap)
				carry := uint64(0)
				if len(ctx.Param) >= 8 {
					carry = serde.NewDecoder(ctx.Param).Uint64()
				}
				e := serde.NewEncoder(16)
				e.PutUint64(carry + v)
				e.PutUint64(uint64(nd.Station)) // breadcrumb
				ctx.Return(e.Bytes())
			})
		})
	}
	code, _ := driver.CreateCodeObject("stage")
	codeRef := object.Global{Obj: code.ID()}
	steps := []ChainStep{
		{Code: codeRef, Args: []object.Global{{Obj: objA.ID()}},
			Opts: []InvokeOption{WithComputeWork(0.001), WithResultSize(16)}},
		{Code: codeRef, Args: []object.Global{{Obj: objB.ID()}},
			Opts: []InvokeOption{WithComputeWork(0.001), WithResultSize(16)}},
	}
	var results []InvokeResult
	var gotErr error
	driver.InvokeChain(steps, func(rs []InvokeResult, err error) { results, gotErr = rs, err })
	c.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Executor != 2 || results[1].Executor != 3 {
		t.Fatalf("executors = %v, %v — stages should follow their data",
			results[0].Executor, results[1].Executor)
	}
	d := serde.NewDecoder(results[1].Result)
	if sum := d.Uint64(); sum != 42 {
		t.Fatalf("chain sum = %d", sum)
	}
	// Neither big object moved.
	if driver.Store.Contains(objA.ID()) || driver.Store.Contains(objB.ID()) {
		t.Fatal("bulk data moved to the driver")
	}
}

func TestInvokeChainStepError(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	driver := c.Node(0)
	code, _ := driver.CreateCodeObject("missing-symbol")
	var gotErr error
	driver.InvokeChain([]ChainStep{
		{Code: object.Global{Obj: code.ID()}, Opts: []InvokeOption{WithExecutor(driver.Station)}},
	}, func(_ []InvokeResult, err error) { gotErr = err })
	c.Run()
	if !errors.Is(gotErr, ErrNoFunction) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestReplicaPromotionMasksFailure(t *testing.T) {
	// §5: masking failures via replication. A replica at node 2 is
	// promoted after node 1 (the home) dies; readers recover.
	c := newTestCluster(t, Config{
		Scheme:           SchemeE2E,
		DiscoveryTimeout: 300 * netsim.Microsecond,
	})
	home, replica, reader := c.Node(1), c.Node(2), c.Node(0)
	o, _ := home.CreateObject(4096)
	off, _ := o.AllocString("replicated")

	okRep := false
	c.ReplicateObject(o.ID(), replica, func(err error) { okRep = err == nil })
	c.Run()
	if !okRep || !replica.Store.Contains(o.ID()) {
		t.Fatal("replication failed")
	}

	// Home dies.
	c.Net.SetLinkDown(home.Host, 0, true)
	// Promote the replica and let readers rediscover.
	if err := c.PromoteReplica(o.ID(), replica); err != nil {
		t.Fatal(err)
	}
	if h, _, _ := c.Locate(o.ID()); h != replica.Station {
		t.Fatal("metadata not updated after promotion")
	}
	reader.Resolver.Invalidate(o.ID()) // drop the stale cached location
	var got []byte
	var gotErr error
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 10, func(b []byte, err error) {
		got, gotErr = append([]byte(nil), b...), err
	})
	c.Run()
	if gotErr != nil {
		t.Fatalf("read after promotion: %v", gotErr)
	}
	if string(got) != "replicated" {
		t.Fatalf("read = %q", got)
	}
	// Promotion is idempotent.
	if err := c.PromoteReplica(o.ID(), replica); err != nil {
		t.Fatal(err)
	}
	// Promoting where no replica exists fails.
	var unrelated oid.ID = c.NewID()
	if err := c.PromoteReplica(unrelated, reader); err == nil {
		t.Fatal("promotion without replica accepted")
	}
}

func TestNodeFailureAndRecovery(t *testing.T) {
	// §5: partial failure is inevitable. A dead owner makes accesses
	// fail cleanly (timeouts, not hangs); restoring the link restores
	// service without any reconfiguration.
	c := newTestCluster(t, Config{
		Scheme:           SchemeE2E,
		DiscoveryTimeout: 300 * netsim.Microsecond,
	})
	owner, reader := c.Node(1), c.Node(0)
	o, _ := owner.CreateObject(4096)
	off, _ := o.AllocString("survivor")

	// Warm: reader can reach it.
	okWarm := false
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 8, func(_ []byte, err error) {
		okWarm = err == nil
	})
	c.Run()
	if !okWarm {
		t.Fatal("warm read failed")
	}

	// Owner's uplink dies.
	if !c.Net.SetLinkDown(owner.Host, 0, true) {
		t.Fatal("SetLinkDown failed")
	}
	var deadErr error
	got := false
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 8, func(_ []byte, err error) {
		deadErr, got = err, true
	})
	c.Run()
	if !got {
		t.Fatal("access to dead node hung")
	}
	if deadErr == nil {
		t.Fatal("access to dead node succeeded")
	}

	// Link restored: the next access rediscovers and succeeds.
	c.Net.SetLinkDown(owner.Host, 0, false)
	var back []byte
	var backErr error
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 8, func(b []byte, err error) {
		back, backErr = append([]byte(nil), b...), err
	})
	c.Run()
	if backErr != nil {
		t.Fatalf("post-recovery read: %v", backErr)
	}
	if string(back) != "survivor" {
		t.Fatalf("post-recovery read = %q", back)
	}
}

func TestLossResilientDeref(t *testing.T) {
	c := newTestCluster(t, Config{
		Scheme:           SchemeE2E,
		Seed:             11,
		DropRate:         0.15,
		DiscoveryRetries: 10,
		DiscoveryTimeout: 500 * netsim.Microsecond,
	})
	owner, reader := c.Node(1), c.Node(0)
	o, _ := owner.CreateObject(32 << 10)
	done, failed := false, error(nil)
	reader.Deref(object.Global{Obj: o.ID()}, func(_ *object.Object, err error) {
		done, failed = true, err
	})
	c.Run()
	if !done {
		t.Fatal("deref never completed under loss")
	}
	if failed != nil {
		t.Fatalf("deref failed under 15%% loss: %v", failed)
	}
}

// TestIncDisabledByDefault pins the OFF-by-default contract: a cluster
// built without any Inc* flag attaches no engines and installs no INC
// program on the switches, so the legacy schemes run the exact seed
// pipeline (TestSimBitIdentity holds the stronger bit-identity pin).
func TestIncDisabledByDefault(t *testing.T) {
	for _, scheme := range []Scheme{SchemeE2E, SchemeController, SchemeHybrid} {
		c := newTestCluster(t, Config{Scheme: scheme})
		if len(c.IncEngines) != 0 {
			t.Fatalf("%v: %d INC engines attached with INC disabled", scheme, len(c.IncEngines))
		}
	}
	c := newTestCluster(t, Config{Scheme: SchemeE2E, IncCache: true})
	if len(c.IncEngines) != len(c.Switches) {
		t.Fatalf("IncCache on: engines = %d, switches = %d", len(c.IncEngines), len(c.Switches))
	}
}
