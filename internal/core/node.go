package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/coherence"
	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/placement"
	"repro/internal/prefetch"
	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Node is one host in the global object space.
type Node struct {
	cluster *Cluster
	Station wire.StationID
	// Link is the node's backend attachment (always set).
	Link backend.Link
	// Host is the simulated NIC — nil under BackendRealnet. Sim-only
	// machinery (fault injection, topology surgery) goes through it.
	Host *netsim.Host
	// Ring is the node's same-host ring attachment — non-nil only when
	// Config.RingGroups co-locates this node with others; exposes ring
	// traffic counters.
	Ring *dataplane.RingLink
	EP   *transport.Endpoint

	Store     *store.Store
	Resolver  discovery.Resolver
	Coherence *coherence.Node
	Prefetch  *prefetch.Prefetcher
	Registry  *Registry

	// Baseline RPC stack on the same station for comparisons.
	RPCServer *rpc.Server
	RPCClient *rpc.Client

	// e2e is the discovery responder (nil under pure controller).
	e2e     *discovery.E2E
	cc      *discovery.ControllerClient
	sharded *discovery.Sharded

	// ComputeRate and Load feed the placement engine.
	ComputeRate float64
	Load        float64

	// down marks a crashed node (see Cluster.CrashNode).
	down bool

	// pendingInvokes tracks remote invocations awaiting completion.
	nextInvoke uint64
}

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// newNode wires a node's endpoint and store; resolver wiring happens
// in initResolver after the controller exists.
func newNode(c *Cluster, link backend.Link, st wire.StationID) (*Node, error) {
	n := &Node{
		cluster:     c,
		Station:     st,
		Link:        link,
		EP:          transport.NewEndpoint(link, st, c.cfg.Transport),
		Store:       store.New(c.storeBudget()),
		Registry:    NewRegistry(),
		ComputeRate: 1,
	}
	n.RPCServer = rpc.NewServer(n.EP)
	n.RPCClient = rpc.NewClient(n.EP)
	return n, nil
}

// initResolver builds the node's resolver per the cluster scheme and
// installs the frame dispatch chain.
func (n *Node) initResolver(cfg Config) {
	switch cfg.Scheme {
	case SchemeE2E:
		e2e := discovery.NewE2E(n.EP, n.Store.Contains)
		e2e.SetAuthority(n.Store.IsHome)
		if cfg.DiscoveryTimeout != 0 {
			e2e.SetTimeout(cfg.DiscoveryTimeout)
		}
		if cfg.DiscoveryRetries != 0 {
			e2e.SetRetries(cfg.DiscoveryRetries)
		}
		n.e2e = e2e
		n.Resolver = e2e
	case SchemeController, SchemeControllerHA:
		n.cc = discovery.NewControllerClient(n.EP,
			discovery.WithControllers(n.cluster.controllerStations()...))
		n.Resolver = n.cc
	case SchemeHybrid:
		e2e := discovery.NewE2E(n.EP, n.Store.Contains)
		e2e.SetAuthority(n.Store.IsHome)
		if cfg.DiscoveryTimeout != 0 {
			e2e.SetTimeout(cfg.DiscoveryTimeout)
		}
		if cfg.DiscoveryRetries != 0 {
			e2e.SetRetries(cfg.DiscoveryRetries)
		}
		n.e2e = e2e
		n.cc = discovery.NewControllerClient(n.EP,
			discovery.WithControllers(n.cluster.controllerStations()...))
		n.Resolver = discovery.NewHybrid(n.cc, e2e)
	case SchemeSharded:
		// Per-node instance: the demoted-to-direct set is local soft
		// state, but the sharder itself is shared and immutable.
		n.sharded = discovery.NewSharded(n.cluster.Sharder)
		n.Resolver = n.sharded
	}
	n.Coherence = coherence.NewNode(n.EP, n.Store, n.Resolver)
	if tr := n.cluster.Tracer; tr != nil {
		n.EP.SetTracer(tr)
		n.Coherence.SetTracer(tr)
		n.RPCClient.SetTracer(tr)
		if n.e2e != nil {
			n.e2e.SetTracer(tr)
		}
		if n.cc != nil {
			n.cc.SetTracer(tr)
		}
	}
	if cfg.EnablePrefetch {
		n.Prefetch = prefetch.New(n.Coherence, n.Store.Contains, cfg.Prefetch)
	}
	n.Registry.registerInvoke(n)
	mux := n.EP.Mux()
	if n.e2e != nil {
		mux.Handle(wire.MsgDiscover, n.e2e.HandleFrame)
	}
	mux.Handle(wire.MsgMem, n.Coherence.HandleFrame)
	mux.Handle(wire.MsgRPC, n.RPCServer.HandleFrame, n.RPCClient.HandleFrame)
	if cfg.IncEnabled() && cfg.Backend != BackendRealnet {
		icfg := coherence.IncConfig{
			Purge:      cfg.IncCache,
			AckTimeout: cfg.IncAckTimeout,
		}
		// Multicast needs a control plane to install groups; without a
		// controller client the flag quietly degrades to the classic
		// per-sharer path. Installer is set only through a non-nil
		// concrete client (a typed-nil interface would pass != nil).
		if cfg.IncMcast && n.cc != nil {
			icfg.Mcast = true
			icfg.Installer = n.cc
		}
		n.Coherence.SetIncConfig(icfg)
		mux.Handle(wire.MsgIncInv, n.Coherence.HandleIncFrame)
		mux.Handle(wire.MsgIncAck, n.Coherence.HandleIncFrame)
	}
	n.cluster.Placement.SetNode(n.placementInfo())
}

// placementInfo snapshots the node for the rendezvous engine.
func (n *Node) placementInfo() placement.NodeInfo {
	return placement.NodeInfo{
		Station:        n.Station,
		ComputeRate:    n.ComputeRate,
		Load:           n.Load,
		LinkBitsPerSec: n.cluster.cfg.LinkBitsPerSec,
	}
}

// SetLoadProfile updates the node's compute rate and load and
// republishes them to the placement engine.
func (n *Node) SetLoadProfile(rate, load float64) {
	n.ComputeRate, n.Load = rate, load
	n.cluster.Placement.SetNode(n.placementInfo())
}

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Discovery returns the node's controller client — nil under schemes
// that resolve without a control plane. Benchmarks and scenarios use
// it for acknowledged announces (AnnounceCB) and redirect counters.
func (n *Node) Discovery() *discovery.ControllerClient { return n.cc }

// Sim returns the virtual clock — nil under BackendRealnet (sim-only
// callers; backend-neutral code uses Clock).
func (n *Node) Sim() *netsim.Sim { return n.cluster.Sim }

// Clock returns the backend clock the node runs on.
func (n *Node) Clock() backend.Clock { return n.EP.Clock() }

// CreateObject allocates a fresh object homed at this node, announces
// it, and registers it with the metadata service.
func (n *Node) CreateObject(size int) (*object.Object, error) {
	o, err := object.New(n.cluster.NewID(), size, 0)
	if err != nil {
		return nil, err
	}
	if err := n.AdoptObject(o); err != nil {
		return nil, err
	}
	return o, nil
}

// AdoptObject homes a pre-built object (e.g. a model object) at this
// node.
func (n *Node) AdoptObject(o *object.Object) error {
	if err := n.Store.Put(o, 1, true); err != nil {
		return err
	}
	n.Resolver.Announce(o.ID())
	n.cluster.registerMeta(o.ID(), o.Size(), n.Station)
	return nil
}

// AdoptObjectLite homes a pre-built object without registering it with
// the cluster metadata service — the million-object population path,
// where per-object harness maps would dominate memory. Lite objects
// cannot be moved or replicated via cluster metadata operations.
func (n *Node) AdoptObjectLite(o *object.Object) error {
	if err := n.Store.Put(o, 1, true); err != nil {
		return err
	}
	n.Resolver.Announce(o.ID())
	return nil
}

// RestrictReaders limits who may read a home object to the given
// stations (nil restores world-readability). References to the object
// remain passable by anyone; only dereferencing is gated — §1's "the
// invoker may wish to refer to data that they lack privileges to
// read".
func (n *Node) RestrictReaders(obj oid.ID, stations ...wire.StationID) error {
	e, err := n.Store.GetEntry(obj)
	if err != nil {
		return err
	}
	if !e.Home {
		return fmt.Errorf("core: ACLs are set at the object's home")
	}
	if stations == nil {
		return n.Store.SetReaders(obj, nil)
	}
	raw := make([]uint64, 0, len(stations)+1)
	raw = append(raw, uint64(n.Station)) // the home always reads
	for _, st := range stations {
		raw = append(raw, uint64(st))
	}
	return n.Store.SetReaders(obj, raw)
}

// Deref resolves a global reference to a locally usable object,
// fetching (and caching) it if remote, and triggering the prefetcher.
func (n *Node) Deref(g object.Global, cb func(*object.Object, error)) {
	if g.IsNil() {
		cb(nil, fmt.Errorf("core: nil reference"))
		return
	}
	wasLocal := n.Store.Contains(g.Obj)
	n.Coherence.AcquireSharedCB(g.Obj, func(o *object.Object, err error) {
		if err == nil && !wasLocal && n.Prefetch != nil {
			n.Prefetch.OnFetch(o)
		}
		cb(o, err)
	})
}

// DerefAll fetches several references, completing when all arrive.
func (n *Node) DerefAll(gs []object.Global, cb func([]*object.Object, error)) {
	out := make([]*object.Object, len(gs))
	remaining := len(gs)
	if remaining == 0 {
		cb(out, nil)
		return
	}
	var failed error
	done := false
	for i, g := range gs {
		i := i
		n.Deref(g, func(o *object.Object, err error) {
			if done {
				return
			}
			if err != nil {
				failed = err
				done = true
				cb(nil, failed)
				return
			}
			out[i] = o
			remaining--
			if remaining == 0 {
				done = true
				cb(out, nil)
			}
		})
	}
}

// ReadRef reads bytes through a global reference without caching the
// whole object (bus-style load).
func (n *Node) ReadRef(g object.Global, length int, cb func([]byte, error)) {
	n.Coherence.ReadAtCB(g.Obj, g.Off, length, cb)
}

// WriteRef writes bytes through a global reference (coherent store).
func (n *Node) WriteRef(g object.Global, data []byte, cb func(error)) {
	n.Coherence.WriteAtCB(g.Obj, g.Off, data, cb)
}
