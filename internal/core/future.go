package core

import (
	"context"

	"repro/internal/future"
	"repro/internal/object"
)

// Await blocks until f resolves, honoring ctx cancellation and
// deadlines, and works on both backends:
//
//   - Under the simulator it pumps the event loop one event at a time
//     until the future resolves, so unrelated queued work is not
//     drained. If the simulation quiesces without resolving f, the
//     operation can never complete and ErrNotReady is returned.
//   - Under realnet it parks on the future; completions arrive from
//     socket-reader upcalls on their own goroutines.
//
// This is the bridge that lets one program — issue, await, use the
// value — run unchanged over virtual and wall time.
func Await[T any](ctx context.Context, c *Cluster, f *Future[T]) (T, error) {
	if c.Sim != nil {
		for !f.Done() {
			if err := ctx.Err(); err != nil {
				var zero T
				return zero, err
			}
			if !c.Sim.Step() {
				break // quiesced unresolved: Result reports ErrNotReady
			}
		}
		return f.Result()
	}
	return f.Await(ctx)
}

// ErrNotReady reports that a future's Result was read before the
// simulation resolved it.
var ErrNotReady = future.ErrNotReady

// Future is a promise-style handle on an asynchronous result: the
// value-returning alternative to the cb(...) continuation forms. The
// simulation is single-threaded on a virtual clock, so a Future never
// blocks — it resolves during Cluster.Run (or any Sim.Run variant),
// and Result is read afterwards:
//
//	f := node.DerefFuture(ref)
//	cluster.Run()
//	obj, err := f.Result()
//
// Then chains work onto resolution without waiting for it, mirroring
// the continuation style when composition is needed.
//
// The implementation lives in internal/future so layers below core
// (coherence, rpc) can return the same promises; core re-exports the
// constructor for its own callers.
type Future[T any] = future.Future[T]

// NewFuture creates an unresolved future and the completion function
// that resolves it. The completion function is idempotent — only the
// first call wins, matching the "exactly once" contract of the
// callback APIs it wraps.
func NewFuture[T any]() (*Future[T], func(T, error)) {
	return future.New[T]()
}

// DerefFuture is the promise-returning form of Deref: it resolves the
// reference to a locally usable object during the next simulation run.
func (n *Node) DerefFuture(g object.Global) *Future[*object.Object] {
	f, complete := NewFuture[*object.Object]()
	n.Deref(g, complete)
	return f
}

// DerefAllFuture is the promise-returning form of DerefAll.
func (n *Node) DerefAllFuture(gs []object.Global) *Future[[]*object.Object] {
	f, complete := NewFuture[[]*object.Object]()
	n.DerefAll(gs, complete)
	return f
}

// ReadRefFuture is the promise-returning form of ReadRef: length bytes
// read through the reference without caching the whole object.
func (n *Node) ReadRefFuture(g object.Global, length int) *Future[[]byte] {
	f, complete := NewFuture[[]byte]()
	n.ReadRef(g, length, complete)
	return f
}

// WriteRefFuture is the promise-returning form of WriteRef; the
// resolved value is meaningless, only the error matters.
func (n *Node) WriteRefFuture(g object.Global, data []byte) *Future[struct{}] {
	f, complete := NewFuture[struct{}]()
	n.WriteRef(g, data, func(err error) { complete(struct{}{}, err) })
	return f
}

// InvokeFuture is the promise-returning form of Invoke.
func (n *Node) InvokeFuture(code object.Global, args []object.Global,
	opts ...InvokeOption) *Future[InvokeResult] {

	f, complete := NewFuture[InvokeResult]()
	n.Invoke(code, args, complete, opts...)
	return f
}
