package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/dataplane"
	"repro/internal/oid"
	"repro/internal/placement"
	"repro/internal/realnet"
	"repro/internal/trace"
	"repro/internal/wire"
)

// newRealnetCluster builds the same node stack as newSimCluster over
// localhost UDP sockets: no switches, no controller, a full mesh of
// per-node sockets routed on the wire destination station. Only the
// E2E discovery scheme works (it is destination-routed; the
// controller schemes program a fabric that does not exist here), and
// sim-only machinery (loss injection, the invariant checker) is
// refused up front rather than left to misbehave.
func newRealnetCluster(cfg Config) (*Cluster, error) {
	if cfg.Scheme != SchemeE2E {
		return nil, fmt.Errorf("core: realnet backend supports only the e2e discovery scheme (got %s): controller schemes program simulated switch tables", cfg.Scheme)
	}
	if cfg.DropRate != 0 {
		return nil, fmt.Errorf("core: realnet backend cannot inject link loss (DropRate=%v); real sockets drop on their own terms", cfg.DropRate)
	}
	if cfg.Check.Enabled {
		return nil, fmt.Errorf("core: the invariant checker is sim-only (it explores deterministic schedules); disable Check under the realnet backend")
	}

	// Wall-clock runs see kernel scheduling jitter the sim's 5µs-scale
	// defaults were never meant for: where the caller left timeouts at
	// their defaults, substitute realnet-scale ones. Explicit settings
	// are honored.
	if cfg.Transport.RetransmitTimeout == 0 {
		cfg.Transport.RetransmitTimeout = 2 * backend.Millisecond
	}
	if cfg.Transport.RetryBudget == 0 {
		cfg.Transport.RetryBudget = 250 * backend.Millisecond
	}
	if cfg.Transport.RequestTimeout == 0 {
		cfg.Transport.RequestTimeout = 50 * backend.Millisecond
	}
	if cfg.DiscoveryTimeout == 0 {
		cfg.DiscoveryTimeout = 50 * backend.Millisecond
	}

	rn := realnet.NewCluster()
	c := &Cluster{
		cfg:       cfg,
		rn:        rn,
		Clock:     rn.Clock(),
		gen:       oid.NewSeededGenerator(cfg.Seed + 1),
		meta:      make(map[oid.ID]*objMeta),
		Placement: placement.NewEngine(),
	}
	// Ring groups work here too: co-located nodes are really one
	// process, so same-group frames skip the kernel's UDP path through
	// the same SPSC rings the simulator models — with zero modeled
	// delay, because the handoff is real. Drains run under the cluster
	// upcall lock (Clock().Schedule), preserving the rings' single-
	// threaded contract.
	rings, err := buildRingGroups(&cfg, 0)
	if err != nil {
		rn.Close()
		return nil, err
	}
	for i := 0; i < cfg.NumNodes; i++ {
		st := wire.StationID(i + 1)
		link, err := rn.NewLink(fmt.Sprintf("node%d", i), st)
		if err != nil {
			rn.Close()
			return nil, err
		}
		var nodeLink backend.Link = link
		var rl *dataplane.RingLink
		if g := rings[i]; g != nil {
			rl = g.Join(st, link)
			nodeLink = rl
		}
		n, err := newNode(c, nodeLink, st)
		if err != nil {
			rn.Close()
			return nil, err
		}
		n.Ring = rl
		c.Nodes = append(c.Nodes, n)
	}
	c.Tracer = trace.NewRecorder(c.Clock, cfg.Trace)
	for _, n := range c.Nodes {
		n.initResolver(cfg)
	}
	rn.Start()
	return c, nil
}
