package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/future"
	"repro/internal/object"
)

// TestRealnetEndToEnd runs the identical coherence/discovery stack
// over real localhost UDP sockets: create an object on one node, read
// and write it from another, awaiting each future on wall time.
func TestRealnetEndToEnd(t *testing.T) {
	c, err := NewCluster(Config{Backend: BackendRealnet, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var g object.Global
	c.Exec(func() {
		o, err := c.Node(1).CreateObject(4096)
		if err != nil {
			t.Fatal(err)
		}
		g = object.Global{Obj: o.ID()}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wf *future.Future[struct{}]
	c.Exec(func() {
		wf = c.Node(0).Coherence.WriteAt(g.Obj, object.HeaderSize, []byte("over real sockets"))
	})
	if _, err := Await(ctx, c, wf); err != nil {
		t.Fatalf("write over UDP: %v", err)
	}

	var rf *future.Future[[]byte]
	c.Exec(func() {
		rf = c.Node(2).Coherence.ReadAt(g.Obj, object.HeaderSize, 17)
	})
	got, err := Await(ctx, c, rf)
	if err != nil {
		t.Fatalf("read over UDP: %v", err)
	}
	if string(got) != "over real sockets" {
		t.Fatalf("read %q", got)
	}

	st := c.Stats()
	if st.Network.FramesSent == 0 || st.Network.FramesDelivered == 0 {
		t.Fatalf("no frames crossed the sockets: %+v", st.Network)
	}
}

// TestRealnetRefusesSimOnlyConfig pins the clear-error contract for
// configurations that only make sense on the simulator.
func TestRealnetRefusesSimOnlyConfig(t *testing.T) {
	cases := []Config{
		{Backend: BackendRealnet, Scheme: SchemeController},
		{Backend: BackendRealnet, Scheme: SchemeHybrid},
		{Backend: BackendRealnet, DropRate: 0.1},
		{Backend: BackendRealnet, Check: CheckConfig{Enabled: true}},
	}
	for i, cfg := range cases {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("case %d: sim-only config accepted under realnet", i)
		}
	}
}
