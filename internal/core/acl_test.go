package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/object"
)

// TestReferenceWithoutReadPrivilege exercises §1's third motivating
// case: Alice passes a reference to data she cannot read; the system
// runs the computation at a node that can, and Alice receives only the
// (derived) result.
func TestReferenceWithoutReadPrivilege(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	alice, bob, carol := c.Node(0), c.Node(1), c.Node(2)

	// Bob's confidential object: only Carol may read it.
	secret, err := bob.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := secret.AllocString("classified: the answer is 42")
	if err := bob.RestrictReaders(secret.ID(), carol.Station); err != nil {
		t.Fatal(err)
	}

	// Alice cannot read it directly…
	var directErr error
	got := false
	alice.ReadRef(object.Global{Obj: secret.ID(), Off: off + 8}, 10, func(_ []byte, err error) {
		directErr, got = err, true
	})
	c.Run()
	if !got || directErr == nil {
		t.Fatalf("direct read by Alice: got=%v err=%v", got, directErr)
	}
	if !strings.Contains(directErr.Error(), "denied") {
		t.Fatalf("err = %v, want denial", directErr)
	}
	// …and cannot cache a copy either.
	var derefErr error
	alice.Deref(object.Global{Obj: secret.ID()}, func(_ *object.Object, err error) { derefErr = err })
	c.Run()
	if derefErr == nil {
		t.Fatal("Alice acquired a restricted object")
	}

	// But she can pass the reference into a computation. The code
	// extracts only a derived answer; it is forced to Carol (the
	// reader) here — a production placement engine would incorporate
	// ACLs into the candidate filter.
	for _, nd := range c.Nodes {
		nd.Registry.Register("extract", func(ctx *ExecCtx) {
			ctx.Deref(ctx.Args[0], func(o *object.Object, err error) {
				if err != nil {
					ctx.Fail(err)
					return
				}
				s, _ := o.LoadString(off)
				var answer int
				fmt.Sscanf(s[strings.LastIndex(s, " ")+1:], "%d", &answer)
				ctx.Return([]byte(fmt.Sprintf("%d", answer)))
			})
		})
	}
	code, _ := alice.CreateCodeObject("extract", secret.ID())
	var res InvokeResult
	var invErr error
	alice.Invoke(object.Global{Obj: code.ID()}, []object.Global{{Obj: secret.ID()}},
		func(r InvokeResult, err error) { res, invErr = r, err },
		WithExecutor(carol.Station))
	c.Run()
	if invErr != nil {
		t.Fatal(invErr)
	}
	if string(res.Result) != "42" {
		t.Fatalf("result = %q", res.Result)
	}
	// The secret itself never reached Alice.
	if alice.Store.Contains(secret.ID()) {
		t.Fatal("restricted object leaked to Alice's store")
	}
	// Carol (permitted) holds a copy from the dereference.
	if !carol.Store.Contains(secret.ID()) {
		t.Fatal("Carol should have dereferenced the object")
	}
	if bob.Coherence.Counters().DeniedServed == 0 {
		t.Fatal("no denials recorded at the home")
	}
}

func TestRestrictReadersValidation(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeE2E})
	owner, other := c.Node(0), c.Node(1)
	o, _ := owner.CreateObject(4096)
	// Only the home may set ACLs.
	if err := other.RestrictReaders(o.ID(), other.Station); err == nil {
		t.Fatal("non-home set an ACL")
	}
	// Unknown object.
	if err := owner.RestrictReaders(c.NewID()); err == nil {
		t.Fatal("ACL on unknown object accepted")
	}
	// Restore world-readability.
	if err := owner.RestrictReaders(o.ID(), other.Station); err != nil {
		t.Fatal(err)
	}
	if err := owner.RestrictReaders(o.ID()); err != nil {
		t.Fatal(err)
	}
	okRead := false
	c.Node(2).ReadRef(object.Global{Obj: o.ID(), Off: object.HeaderSize}, 4,
		func(_ []byte, err error) { okRead = err == nil })
	c.Run()
	if !okRead {
		t.Fatal("world-readability not restored")
	}
}
