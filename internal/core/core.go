package core
