package core

import (
	"testing"

	"repro/internal/object"
	"repro/internal/p4sim"
	"repro/internal/pubsub"
)

// adoptHomed allocates an object whose sharded home is node n and
// adopts it there (lite: no metadata registration).
func adoptHomed(t *testing.T, c *Cluster, n *Node, size int) *object.Object {
	t.Helper()
	id, ok := c.NewIDHomedAt(n.Station)
	if !ok {
		t.Fatalf("station %v owns no shards", n.Station)
	}
	o, err := object.New(id, size, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AdoptObjectLite(o); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestShardedTopology(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeSharded})
	if c.Sharder == nil {
		t.Fatal("no sharder")
	}
	if c.Controller != nil {
		t.Fatal("sharded scheme must not build a controller")
	}
	if got := c.Sharder.Shards(); got != 64 {
		t.Fatalf("default shards = %d, want 64", got)
	}
	// Every switch carries aggregated shard rules in its filter table,
	// and aggregation must beat one-rule-per-shard.
	for _, sw := range c.Switches {
		ft := sw.FilterTable()
		if ft == nil {
			t.Fatalf("%s: no filter table", sw.DevName())
		}
		if ft.Len() == 0 || ft.Len() >= c.Sharder.Shards() {
			t.Fatalf("%s: %d shard rules for %d shards (want aggregated)",
				sw.DevName(), ft.Len(), c.Sharder.Shards())
		}
	}
}

func TestDerefRemoteSharded(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeSharded})
	owner, reader := c.Node(1), c.Node(0)
	o := adoptHomed(t, c, owner, 8192)
	off, _ := o.AllocString("sharded data")

	var got *object.Object
	reader.Deref(object.Global{Obj: o.ID()}, func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.Run()
	if got == nil {
		t.Fatal("deref incomplete")
	}
	if s, _ := got.LoadString(off); s != "sharded data" {
		t.Fatalf("got %q", s)
	}
	// Resolution is local: no discovery broadcasts, no punts.
	if bc := c.BroadcastsObserved(); bc != 0 {
		t.Fatalf("sharded resolve flooded %d times", bc)
	}
	if c.ShardPunts() != 0 {
		t.Fatalf("unexpected punts: %d", c.ShardPunts())
	}
}

func TestShardedWritesInvalidate(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeSharded})
	owner, w := c.Node(2), c.Node(0)
	o := adoptHomed(t, c, owner, 4096)

	var werr error
	w.Coherence.AcquireExclusiveCB(o.ID(), func(_ *object.Object, err error) { werr = err })
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	if owner.Coherence.Sharers(o.ID()) != 1 {
		t.Fatalf("sharers = %d, want 1", owner.Coherence.Sharers(o.ID()))
	}
}

// TestShardedEvictionPuntRecovers squeezes the filter tables so only a
// handful of shard rules stay resident, with LRU eviction and punt
// fallback: an acquire whose shard rule was evicted must still
// complete via the shard manager, which also reinstalls the rule.
func TestShardedEvictionPuntRecovers(t *testing.T) {
	c := newTestCluster(t, Config{
		Scheme:   SchemeSharded,
		NumNodes: 4,
		Shards:   64,
		// Room for only a few ternary rules: each 6-field filter entry
		// costs ~200 bytes of modeled SRAM.
		FilterTableMemory: 1024,
		TableEviction:     p4sim.EvictLRU,
		ObjectMiss:        p4sim.MissPunt,
	})
	owner, reader := c.Node(1), c.Node(0)
	o := adoptHomed(t, c, owner, 4096)

	// Evict the object's shard rule everywhere by installing other
	// shards' rules until the tables cycle.
	shard := c.Sharder.ShardOf(o.ID())
	for _, sw := range c.Switches {
		ft := sw.FilterTable()
		for s := 0; s < c.Sharder.Shards(); s++ {
			if s == shard {
				continue
			}
			installShardRouteForTest(t, c, sw, s)
		}
		if ft.Evictions() == 0 {
			t.Fatalf("%s: no evictions under 1KiB budget", sw.DevName())
		}
	}

	var got *object.Object
	reader.Deref(object.Global{Obj: o.ID()}, func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.Run()
	if got == nil {
		t.Fatal("deref incomplete after eviction")
	}
	if c.ShardPunts() == 0 {
		t.Fatal("expected the shard manager to serve at least one punt")
	}
	var punts uint64
	for _, sw := range c.Switches {
		punts += sw.Counters().MissPunts
	}
	if punts == 0 {
		t.Fatal("no switch recorded a miss-punt")
	}
}

// TestShardedEvictionFloodRecovers is the flood side of the same coin:
// the miss costs fabric bandwidth instead of a CPU-port round trip.
func TestShardedEvictionFloodRecovers(t *testing.T) {
	c := newTestCluster(t, Config{
		Scheme:            SchemeSharded,
		NumNodes:          4,
		Shards:            64,
		FilterTableMemory: 1024,
		TableEviction:     p4sim.EvictLRU,
		ObjectMiss:        p4sim.MissFlood,
	})
	owner, reader := c.Node(1), c.Node(0)
	o := adoptHomed(t, c, owner, 4096)
	shard := c.Sharder.ShardOf(o.ID())
	for _, sw := range c.Switches {
		for s := 0; s < c.Sharder.Shards(); s++ {
			if s != shard {
				installShardRouteForTest(t, c, sw, s)
			}
		}
	}

	var got *object.Object
	reader.Deref(object.Global{Obj: o.ID()}, func(obj *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = obj
	})
	c.Run()
	if got == nil {
		t.Fatal("deref incomplete after eviction")
	}
	var floods uint64
	for _, sw := range c.Switches {
		floods += sw.Counters().MissFloods
	}
	if floods == 0 {
		t.Fatal("no switch recorded a miss-flood")
	}
}

// installShardRouteForTest reinstalls shard s's rule on sw the same
// way the shard manager does, displacing colder rules.
func installShardRouteForTest(t *testing.T, c *Cluster, sw *p4sim.Switch, s int) {
	t.Helper()
	port, ok := c.stationRoutes[sw][c.Sharder.Home(s)]
	if !ok {
		t.Fatalf("%s: no route for shard %d", sw.DevName(), s)
	}
	err := pubsub.InstallShardRoute(sw.FilterTable(), pubsub.ShardRoute{
		Prefix: c.Sharder.Prefix(s),
		Action: p4sim.Action{Type: p4sim.ActForward, Port: port},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShardedTelemetryKeys(t *testing.T) {
	c := newTestCluster(t, Config{Scheme: SchemeSharded})
	owner := c.Node(0)
	adoptHomed(t, c, owner, 4096)
	snap := c.Telemetry()
	for _, key := range []string{
		"coherence.directory_entries",
		"coherence.directory_bytes",
		"sharded.shards",
		"sharded.punts_served",
		"sharded.direct_fallbacks",
		"sharded.filter_evictions",
	} {
		if _, ok := snap.Get(key); !ok {
			t.Fatalf("telemetry snapshot missing %q", key)
		}
	}
	if snap.Value("sharded.shards") != 64 {
		t.Fatalf("sharded.shards = %d", snap.Value("sharded.shards"))
	}
}
