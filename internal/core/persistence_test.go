package core

import (
	"bytes"
	"testing"

	"repro/internal/object"
)

// TestStoreSnapshotSurvivesReboot exercises orthogonal persistence at
// the system level (§3.1): a node's entire store is snapshotted,
// a *fresh* cluster is built (new simulator, new switches, new hosts —
// a reboot), the snapshot is loaded into the corresponding node, and
// every object, cross-object reference, and remote access works
// without any fixup.
func TestStoreSnapshotSurvivesReboot(t *testing.T) {
	// --- First life: build state on node 1.
	c1 := newTestCluster(t, Config{Scheme: SchemeE2E, Seed: 101})
	owner := c1.Node(1)

	detail, err := owner.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	detailOff, _ := detail.AllocString("deep detail")
	root, err := owner.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	slot, _ := root.Alloc(8, 8)
	if err := root.StoreRef(slot, detail.ID(), detailOff, object.FlagRead); err != nil {
		t.Fatal(err)
	}
	rootOff, _ := root.AllocString("root payload")
	c1.Run()

	var snap bytes.Buffer
	if err := owner.Store.SaveTo(&snap); err != nil {
		t.Fatal(err)
	}

	// --- Reboot: a brand-new cluster; node 1 restores its store and
	// re-announces its objects.
	c2 := newTestCluster(t, Config{Scheme: SchemeE2E, Seed: 202})
	restored := c2.Node(1)
	n, err := restored.Store.LoadFrom(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d objects", n)
	}
	for _, id := range restored.Store.HomeList() {
		restored.Resolver.Announce(id)
		o, _ := restored.Store.Get(id)
		c2.registerMeta(id, o.Size(), restored.Station)
	}

	// A different node reads the root payload and then follows the
	// cross-object reference — both across the new network.
	reader := c2.Node(0)
	var rootObj *object.Object
	reader.Deref(object.Global{Obj: root.ID()}, func(o *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		rootObj = o
	})
	c2.Run()
	if rootObj == nil {
		t.Fatal("root unreachable after reboot")
	}
	if s, _ := rootObj.LoadString(rootOff); s != "root payload" {
		t.Fatalf("root payload = %q", s)
	}
	ref, err := rootObj.LoadRef(slot)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Obj != detail.ID() || ref.Off != detailOff {
		t.Fatalf("reference corrupted across reboot: %v", ref)
	}
	var got string
	reader.Deref(ref, func(o *object.Object, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got, _ = o.LoadString(ref.Off)
	})
	c2.Run()
	if got != "deep detail" {
		t.Fatalf("followed reference = %q", got)
	}
}
