// Package core is the paper's primary contribution assembled into a
// runtime: a global object space spanning a cluster, in which both
// data and code are objects named by 128-bit IDs, references cross
// machine boundaries as first-class values, the network routes on data
// identity, and computation is expressed as "run this code reference
// on these data references" with the system — not the programmer —
// choosing where code and data rendezvous (§3).
//
// A Cluster builds the §4 evaluation topology (hosts attached to a
// fabric of interconnected P4 switches, with an optional SDN
// controller) on the deterministic network simulator. Each Node owns a
// store, a transport endpoint, a discovery resolver (E2E, Controller,
// or Hybrid), a coherence engine, an optional reachability prefetcher,
// a function registry, and a baseline RPC stack for comparisons.
package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/inc"
	"repro/internal/netsim"
	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/placement"
	"repro/internal/prefetch"
	"repro/internal/pubsub"
	"repro/internal/realnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Scheme selects the discovery scheme (§4).
type Scheme int

// Discovery schemes.
const (
	// SchemeE2E uses host destination caches populated by broadcast.
	SchemeE2E Scheme = iota
	// SchemeController uses an SDN controller installing object
	// routes in switch tables.
	SchemeController
	// SchemeHybrid uses controller fast path with E2E fallback.
	SchemeHybrid
	// SchemeSharded derives each object's home from its ID through a
	// rendezvous-hash sharder; the fabric routes on aggregated
	// shard-prefix rules, so switch state scales with the shard count
	// — not the object count (ROADMAP item 2, §3.2 at scale).
	SchemeSharded
	// SchemeControllerHA replicates the controller scheme's control
	// plane across ControllerReplicas stations with raft consensus:
	// announcements commit to a replicated log before switch rules
	// install, and clients follow leader redirects, so killing the
	// leader mid-run loses no committed state (ROADMAP item 1).
	SchemeControllerHA
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeE2E:
		return "e2e"
	case SchemeController:
		return "controller"
	case SchemeHybrid:
		return "hybrid"
	case SchemeSharded:
		return "sharded"
	case SchemeControllerHA:
		return "controller-ha"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// BackendKind selects which backend.Clock/Link implementation a
// cluster runs on.
type BackendKind int

// Backends.
const (
	// BackendSim runs on the deterministic discrete-event simulator
	// (virtual time, bit-identical per seed). The default.
	BackendSim BackendKind = iota
	// BackendRealnet runs the identical stack over localhost UDP
	// sockets on wall-clock time. E2E discovery only (there is no
	// simulated fabric to program), and runs are not deterministic.
	BackendRealnet
)

// String names the backend.
func (b BackendKind) String() string {
	switch b {
	case BackendSim:
		return "sim"
	case BackendRealnet:
		return "realnet"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Config describes a cluster.
type Config struct {
	// Backend selects the execution backend (default BackendSim).
	Backend BackendKind
	// Seed drives every random source (fully deterministic runs; the
	// realnet backend still uses it for ID generation).
	Seed int64
	// NumNodes is the host count (default 3, like §4).
	NumNodes int
	// NumLeaves is the leaf-switch count; with the core switch this
	// gives the "four interconnected switches" of §4 (default 3).
	NumLeaves int
	// Scheme selects discovery.
	Scheme Scheme
	// LinkLatency is per-hop propagation delay (default 5µs).
	LinkLatency netsim.Duration
	// LinkBitsPerSec is link bandwidth (default 10 Gb/s).
	LinkBitsPerSec int64
	// PipelineDelay is per-switch processing (default 1µs).
	PipelineDelay netsim.Duration
	// ObjectTableMemory overrides switch object-table SRAM
	// (0 = default model, negative = unlimited).
	ObjectTableMemory int
	// Shards is the shard count for SchemeSharded, rounded up to a
	// power of two (default 64). More shards spread load finer but
	// cost more aggregated rules.
	Shards int
	// FilterTableMemory is the SRAM budget for the filter table
	// holding SchemeSharded's aggregated shard rules (0 = default
	// model, negative = unlimited).
	FilterTableMemory int
	// TableEviction selects the switch-table eviction policy (object
	// and shard-filter tables). Zero value keeps the historical
	// reject-at-capacity behavior.
	TableEviction p4sim.EvictionPolicy
	// ObjectMiss selects the switch fallback for object-routed frames
	// that miss (drop/flood/punt). Zero value drops, as before.
	ObjectMiss p4sim.MissPolicy
	// SeenCapacity/RegCacheCapacity bound the switches' register-
	// backed broadcast dedup filter and reply cache (0 = defaults);
	// E12 shrinks them to model small-register switches.
	SeenCapacity     int
	RegCacheCapacity int
	// StoreBudget bounds each node's store (0 = unlimited).
	StoreBudget int
	// EnablePrefetch turns on the reachability prefetcher.
	EnablePrefetch bool
	// Prefetch tunes the prefetcher when enabled.
	Prefetch prefetch.Config
	// Transport tunes endpoints.
	Transport transport.Config
	// DiscoveryTimeout bounds E2E broadcasts (default 2ms).
	DiscoveryTimeout netsim.Duration
	// DiscoveryRetries is the E2E rebroadcast count (0 = resolver
	// default).
	DiscoveryRetries int
	// ControllerInstallDelay models rule programming (default 20µs).
	ControllerInstallDelay netsim.Duration
	// ControllerReplicas is the control-plane replica count under
	// SchemeControllerHA (default 3; other schemes ignore it).
	ControllerReplicas int
	// ControllerElectionTimeout is the raft base election timeout for
	// SchemeControllerHA (0 = raft's default).
	ControllerElectionTimeout netsim.Duration
	// DropRate injects loss on every link.
	DropRate float64
	// Trace configures causal span recording (zero = tracing off;
	// off means no frame ever carries wire.FlagTraced, so runs are
	// bit-identical to a build without tracing).
	Trace trace.Config
	// Check configures the protocol invariant checker (zero = off;
	// off means internal/check installs nothing, so runs are
	// bit-identical to a build without checking).
	Check CheckConfig

	// In-network computation (internal/inc; sim-only). Each gate is
	// independent and OFF by default: with all three false no engine
	// is built, no switch gets a station identity, and runs are
	// bit-identical to a build without INC.
	//
	// IncCache parks hot objects' bytes in switch register state and
	// serves reads at the first hop.
	IncCache bool
	// IncCacheMemory overrides the cache table's SRAM budget
	// (0 = inc.DefaultCacheMemory, negative = unlimited).
	IncCacheMemory int
	// IncMcast replicates one group invalidate along the spanning
	// tree instead of per-sharer unicasts (controller schemes only —
	// the control plane installs the group tables).
	IncMcast bool
	// IncAckAgg coalesces invalidate-acks into one bitmap ack at the
	// switch nearest the home.
	IncAckAgg bool
	// IncAggTimeout is the switch-side aggregation flush timeout
	// (0 = inc.DefaultAggTimeout).
	IncAggTimeout netsim.Duration
	// IncAckTimeout is the home-side ack-collection window before
	// falling back to per-sharer invalidation
	// (0 = coherence.DefaultIncAckTimeout).
	IncAckTimeout netsim.Duration

	// Hot-path delivery (ROADMAP item 5). Every knob is off by default;
	// with all of them zero, event scheduling is bit-identical to a
	// build without the feature.
	//
	// BatchDelivery coalesces every frame arriving at a host in the
	// same virtual tick into one doorbell-style delivery batch
	// (sim-only; ignored under BackendRealnet, where the kernel's
	// socket buffering already plays this role).
	BatchDelivery bool
	// HostRxCost models fixed per-delivery receive overhead at each
	// host NIC (sim-only). Unbatched, every frame pays it; with
	// BatchDelivery a whole batch pays it once — the mechanism that
	// moves the saturation knee (E15).
	HostRxCost netsim.Duration
	// RingGroups lists sets of co-resident nodes by node index;
	// same-group unicast traffic bypasses the fabric through same-host
	// SPSC ring queues (dataplane.Ring) on both backends. Empty = no
	// rings. A node may belong to at most one group.
	RingGroups [][]int
	// RingDelay is the modeled same-host handoff latency under the
	// simulator (default 1µs; the realnet backend always uses 0 — its
	// handoff is real).
	RingDelay netsim.Duration
	// RingSlots is each directed ring's capacity
	// (0 = dataplane.RingDefaultSlots).
	RingSlots int
}

// IncEnabled reports whether any in-network computation is on.
func (c *Config) IncEnabled() bool { return c.IncCache || c.IncMcast || c.IncAckAgg }

// CheckConfig enables and tunes the internal/check invariant checker.
// It lives here (not in internal/check) so core carries no dependency
// on the checker; check.New reads it back via Cluster.CheckConfig.
type CheckConfig struct {
	// Enabled turns invariant evaluation on.
	Enabled bool
	// MaxViolations caps recorded violations per run (default 32).
	MaxViolations int
	// FetchBound is the longest an object fetch may stay outstanding
	// before the per-op scan flags it (default 20ms, comfortably past
	// the coherence stall watchdog).
	FetchBound netsim.Duration
	// SkipContent disables the byte-exact copy-divergence digests —
	// for very large stores where hashing every object per scan is
	// too slow.
	SkipContent bool
}

func (c *Config) fill() {
	if c.NumNodes == 0 {
		c.NumNodes = 3
	}
	if c.NumLeaves == 0 {
		c.NumLeaves = 3
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 5 * netsim.Microsecond
	}
	if c.LinkBitsPerSec == 0 {
		c.LinkBitsPerSec = 10_000_000_000
	}
	if c.PipelineDelay == 0 {
		c.PipelineDelay = netsim.Microsecond
	}
	if c.ControllerInstallDelay == 0 {
		c.ControllerInstallDelay = 20 * netsim.Microsecond
	}
	if c.ControllerReplicas == 0 {
		c.ControllerReplicas = 3
	}
	if c.Shards == 0 {
		c.Shards = 64
	}
	if c.Check.MaxViolations == 0 {
		c.Check.MaxViolations = 32
	}
	if c.Check.FetchBound == 0 {
		c.Check.FetchBound = 20 * netsim.Millisecond
	}
	if c.RingDelay == 0 {
		c.RingDelay = netsim.Microsecond
	}
}

// buildRingGroups validates Config.RingGroups and returns each node
// index's co-residence group (nil when rings are disabled).
func buildRingGroups(cfg *Config, delay backend.Duration) (map[int]*dataplane.RingGroup, error) {
	if len(cfg.RingGroups) == 0 {
		return nil, nil
	}
	byIdx := make(map[int]*dataplane.RingGroup)
	for _, members := range cfg.RingGroups {
		g := dataplane.NewRingGroup(dataplane.RingConfig{Slots: cfg.RingSlots, Delay: delay})
		for _, idx := range members {
			if idx < 0 || idx >= cfg.NumNodes {
				return nil, fmt.Errorf("core: RingGroups index %d out of range [0,%d)", idx, cfg.NumNodes)
			}
			if _, dup := byIdx[idx]; dup {
				return nil, fmt.Errorf("core: node %d appears in more than one ring group", idx)
			}
			byIdx[idx] = g
		}
	}
	return byIdx, nil
}

// objMeta is the cluster metadata service's view of one object: the
// "whole-system view of object identity" (§5) that placement consults.
type objMeta struct {
	size int
	home wire.StationID
}

// Cluster is a deployment on either backend.
type Cluster struct {
	cfg Config

	// Clock is the backend clock every node runs on: the simulator
	// under BackendSim, wall time under BackendRealnet.
	Clock backend.Clock

	// Sim and Net are the simulator and its fabric — nil under
	// BackendRealnet. Code that manipulates them directly (fault
	// injection, switch table inspection) is sim-only.
	Sim      *netsim.Sim
	Net      *netsim.Network
	Switches []*p4sim.Switch
	Nodes    []*Node

	// IncEngines holds each switch's in-network computation program,
	// index-aligned with Switches (empty unless Config enables INC).
	IncEngines []*inc.Engine

	// rn is the realnet backend — nil under BackendSim.
	rn *realnet.Cluster

	// Controllers holds every control-plane replica: one under
	// SchemeController/SchemeHybrid, ControllerReplicas under
	// SchemeControllerHA, empty otherwise. Controller aliases the
	// first replica for the single-controller callers.
	Controllers     []*discovery.Controller
	Controller      *discovery.Controller
	controllerNodes []*netsim.Host
	controllerNode  *netsim.Host
	controllerEPs   []*transport.Endpoint
	controllerEP    *transport.Endpoint
	ctrlDown        []bool

	// Placement is the shared rendezvous engine.
	Placement *placement.Engine

	// Sharder is the shard→home map under SchemeSharded (nil
	// otherwise).
	Sharder *placement.Sharder

	// stationRoutes is each switch's egress port toward each station,
	// kept under SchemeSharded for the shard manager's reinstalls.
	stationRoutes   map[discovery.ProgrammableSwitch]map[wire.StationID]int
	shardsByStation map[wire.StationID][]int
	homedSeq        uint64
	shardMgr        *netsim.Host
	shardPunts      uint64

	// Tracer records causal spans when Config.Trace enables sampling
	// (nil otherwise — a nil recorder is valid and records nothing).
	Tracer *trace.Recorder

	gen  *oid.Generator
	meta map[oid.ID]*objMeta
}

// controllerStation is the controller's well-known station ID.
const controllerStation wire.StationID = 1000

// NewCluster builds a cluster on the configured backend. Under
// BackendSim this is the §4 evaluation topology: one core switch,
// NumLeaves leaf switches, nodes attached round-robin to leaves, and
// (for controller schemes) a controller host on the core switch.
// Under BackendRealnet the same nodes bind localhost UDP sockets in a
// full mesh instead (see cluster_realnet.go).
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.fill()
	if cfg.Backend == BackendRealnet {
		return newRealnetCluster(cfg)
	}
	return newSimCluster(cfg)
}

func newSimCluster(cfg Config) (*Cluster, error) {
	c := &Cluster{
		cfg:       cfg,
		Sim:       netsim.NewSim(cfg.Seed),
		gen:       oid.NewSeededGenerator(cfg.Seed + 1),
		meta:      make(map[oid.ID]*objMeta),
		Placement: placement.NewEngine(),
	}
	c.Net = netsim.NewNetwork(c.Sim)
	c.Net.SetBatchDelivery(cfg.BatchDelivery)
	c.Net.SetHostRxCost(cfg.HostRxCost)
	rings, err := buildRingGroups(&cfg, cfg.RingDelay)
	if err != nil {
		return nil, err
	}
	link := netsim.LinkConfig{
		Latency:    cfg.LinkLatency,
		BitsPerSec: cfg.LinkBitsPerSec,
		DropRate:   cfg.DropRate,
	}

	swCfg := p4sim.SwitchConfig{
		PipelineDelay:     cfg.PipelineDelay,
		ObjectTableMemory: cfg.ObjectTableMemory,
		LearnStations: cfg.Scheme != SchemeController && cfg.Scheme != SchemeSharded &&
			cfg.Scheme != SchemeControllerHA,
		ObjectEviction:   cfg.TableEviction,
		ObjectMiss:       cfg.ObjectMiss,
		SeenCapacity:     cfg.SeenCapacity,
		RegCacheCapacity: cfg.RegCacheCapacity,
	}

	// In-network computation gives each switch a station identity so
	// its engine can originate frames (cache-served replies,
	// aggregated acks). 2000+ is clear of host (1+) and controller
	// (1000+) stations.
	if cfg.IncEnabled() {
		swCfg.Station = 2000
	}

	// Core switch: NumLeaves downlinks + one port per control-plane
	// replica (a single port for everything but SchemeControllerHA).
	ctrlPorts := 1
	if cfg.Scheme == SchemeControllerHA {
		ctrlPorts = cfg.ControllerReplicas
	}
	coreSw, err := p4sim.NewSwitch(c.Net, "core", cfg.NumLeaves+ctrlPorts, swCfg)
	if err != nil {
		return nil, err
	}
	c.Switches = append(c.Switches, coreSw)

	// Leaf switches: 1 uplink + enough host ports. Under the sharded
	// scheme a leaf's punts climb the uplink toward the core, whose
	// CPU port hosts the shard manager.
	leafCfg := swCfg
	leafCfg.PuntUplink = cfg.Scheme == SchemeSharded
	hostsPerLeaf := (cfg.NumNodes + cfg.NumLeaves - 1) / cfg.NumLeaves
	for i := 0; i < cfg.NumLeaves; i++ {
		if cfg.IncEnabled() {
			leafCfg.Station = wire.StationID(2001 + i)
		}
		leaf, err := p4sim.NewSwitch(c.Net, fmt.Sprintf("leaf%d", i), hostsPerLeaf+1, leafCfg)
		if err != nil {
			return nil, err
		}
		if err := c.Net.Connect(coreSw, i, leaf, 0, link); err != nil {
			return nil, err
		}
		c.Switches = append(c.Switches, leaf)
	}

	// Attach the in-network computation engines: one per switch — the
	// pubsub-compiled classifier plus cache/group/aggregation state —
	// with the cache coupled to the object table so a rule eviction
	// takes the cached line with it.
	if cfg.IncEnabled() {
		incCfg := inc.Config{
			Cache:       cfg.IncCache,
			CacheMemory: cfg.IncCacheMemory,
			Mcast:       cfg.IncMcast,
			AckAgg:      cfg.IncAckAgg,
			AggTimeout:  cfg.IncAggTimeout,
		}
		for _, sw := range c.Switches {
			eng, err := inc.New(sw.DevName(), sw, incCfg)
			if err != nil {
				return nil, err
			}
			sw.SetIncProgram(eng)
			eng.CoupleObjectTable(sw.ObjectTable())
			c.IncEngines = append(c.IncEngines, eng)
		}
	}

	// Nodes.
	stations := make(map[wire.StationID]netsim.Device)
	for i := 0; i < cfg.NumNodes; i++ {
		leaf := c.Switches[1+i%cfg.NumLeaves]
		port := 1 + i/cfg.NumLeaves
		host, err := netsim.NewHost(c.Net, fmt.Sprintf("node%d", i))
		if err != nil {
			return nil, err
		}
		if err := c.Net.Connect(host, 0, leaf, port, link); err != nil {
			return nil, err
		}
		st := wire.StationID(i + 1)
		stations[st] = host
		// Co-resident nodes attach through a ring-accelerated link:
		// same-group unicasts bypass the fabric via SPSC rings; all
		// other traffic uses the host NIC unchanged.
		var nodeLink backend.Link = host
		var rl *dataplane.RingLink
		if g := rings[i]; g != nil {
			rl = g.Join(st, host)
			nodeLink = rl
		}
		n, err := newNode(c, nodeLink, st)
		if err != nil {
			return nil, err
		}
		n.Host = host
		n.Ring = rl
		c.Nodes = append(c.Nodes, n)
	}

	// Control plane: one replica for the classic controller schemes,
	// ControllerReplicas raft-replicated ones for SchemeControllerHA.
	if cfg.Scheme == SchemeController || cfg.Scheme == SchemeHybrid ||
		cfg.Scheme == SchemeControllerHA {
		ctrlStations := c.controllerStations()
		// Hosts first, so every replica's route computation sees the
		// complete station map (including its peers).
		for i, st := range ctrlStations {
			name := "controller"
			if i > 0 {
				name = fmt.Sprintf("controller-%d", i)
			}
			ch, err := netsim.NewHost(c.Net, name)
			if err != nil {
				return nil, err
			}
			if err := c.Net.Connect(ch, 0, coreSw, cfg.NumLeaves+i, link); err != nil {
				return nil, err
			}
			stations[st] = ch
			c.controllerNodes = append(c.controllerNodes, ch)
		}
		for i, st := range ctrlStations {
			ep := transport.NewEndpoint(c.controllerNodes[i], st, cfg.Transport)
			opts := []discovery.ControllerOption{
				discovery.WithInstallDelay(cfg.ControllerInstallDelay),
			}
			if len(ctrlStations) > 1 {
				opts = append(opts,
					discovery.WithReplicas(ctrlStations...),
					discovery.WithElectionTimeout(cfg.ControllerElectionTimeout),
					discovery.WithSeed(uint64(cfg.Seed)))
			}
			ctrl := discovery.NewController(ep, opts...)
			for _, sw := range c.Switches {
				ctrl.AddSwitch(sw)
			}
			if err := ctrl.ComputeRoutes(c.Net, stations); err != nil {
				return nil, err
			}
			if i == 0 {
				// Station tables are identical from every replica's view;
				// program them once.
				if err := ctrl.ProgramStationTables(); err != nil {
					return nil, err
				}
			}
			ep.Mux().Handle(wire.MsgAnnounce, ctrl.HandleFrame)
			ep.Mux().Handle(wire.MsgLocate, ctrl.HandleFrame)
			if cfg.IncEnabled() {
				// Multicast group installs arrive as MsgCtrl requests.
				ep.Mux().Handle(wire.MsgCtrl, ctrl.HandleFrame)
			}
			if rn := ctrl.Raft(); rn != nil {
				ep.Mux().Handle(wire.MsgRaft, rn.HandleFrame)
			}
			c.Controllers = append(c.Controllers, ctrl)
			c.controllerEPs = append(c.controllerEPs, ep)
		}
		c.Controller = c.Controllers[0]
		c.controllerNode = c.controllerNodes[0]
		c.controllerEP = c.controllerEPs[0]
		c.ctrlDown = make([]bool, len(c.Controllers))
	}

	// Sharded scheme: homes are a pure function of the ID, so the
	// fabric is programmed once, up front — station tables for unicast
	// plus aggregated shard-prefix rules for object-routed frames —
	// and a shard manager on the core CPU port restores evicted rules.
	if cfg.Scheme == SchemeSharded {
		if err := c.wireSharded(cfg, stations, coreSw, link); err != nil {
			return nil, err
		}
	}

	// Tracing: one recorder spans the whole cluster, so a single
	// operation's spans line up across requester, switches, links and
	// responder on the shared virtual clock.
	c.Tracer = trace.NewRecorder(c.Sim, cfg.Trace)
	if c.Tracer != nil {
		c.Net.SetFrameSpanHook(c.Tracer.LinkHook())
		for _, sw := range c.Switches {
			sw.SetTracer(c.Tracer)
		}
		for i, ctrl := range c.Controllers {
			ctrl.SetTracer(c.Tracer)
			c.controllerEPs[i].SetTracer(c.Tracer)
		}
	}

	// Wire resolvers now that the controller exists.
	for _, n := range c.Nodes {
		n.initResolver(cfg)
	}
	c.Clock = c.Sim
	return c, nil
}

// wireSharded programs the fabric for SchemeSharded: it builds the
// rendezvous sharder over the node stations, installs station tables
// on every switch (the unicast reply path), compiles each switch's
// aggregated shard-prefix rules into a filter table, and attaches a
// shard manager to the core switch's CPU port to serve punts.
func (c *Cluster) wireSharded(cfg Config, stations map[wire.StationID]netsim.Device,
	coreSw *p4sim.Switch, link netsim.LinkConfig) error {
	members := make([]wire.StationID, len(c.Nodes))
	for i, n := range c.Nodes {
		members[i] = n.Station
	}
	c.Sharder = placement.NewSharder(cfg.Shards, members)
	c.shardsByStation = c.Sharder.Assignments()

	progSwitches := make([]discovery.ProgrammableSwitch, len(c.Switches))
	for i, sw := range c.Switches {
		progSwitches[i] = sw
	}
	routes, err := discovery.ComputeStationRoutes(c.Net, progSwitches, stations)
	if err != nil {
		return err
	}
	c.stationRoutes = routes
	for _, sw := range c.Switches {
		for st, port := range routes[sw] {
			if err := sw.InstallStationRoute(st, port); err != nil {
				return err
			}
		}
	}

	// Per-switch shard rules: shard s forwards toward Home(s). The
	// rules land in the filter table (consulted before the object
	// table), under their own SRAM budget and eviction policy.
	for _, sw := range c.Switches {
		var shardRoutes []pubsub.ShardRoute
		for s := 0; s < c.Sharder.Shards(); s++ {
			port, ok := routes[sw][c.Sharder.Home(s)]
			if !ok {
				return fmt.Errorf("core: switch %s has no route to shard %d home", sw.DevName(), s)
			}
			shardRoutes = append(shardRoutes, pubsub.ShardRoute{
				Prefix: c.Sharder.Prefix(s),
				Action: p4sim.Action{Type: p4sim.ActForward, Port: port},
			})
		}
		ft, err := pubsub.NewFilterTable(sw.DevName()+"/shard", p4sim.TableConfig{
			MemoryBytes: cfg.FilterTableMemory,
			Eviction:    cfg.TableEviction,
		})
		if err != nil {
			return err
		}
		if err := pubsub.CompileShardRoutes(ft, pubsub.AggregateRoutes(shardRoutes)); err != nil {
			return err
		}
		sw.SetFilterTable(ft)
	}

	// Shard manager: a raw host (not a transport endpoint — it must
	// not ack frames it relays) on the core CPU port. Object-routed
	// frames whose shard rule was evicted punt here; the manager
	// reinstalls the rule on every switch and forwards the frame to
	// its home by station address.
	mgr, err := netsim.NewHost(c.Net, "shardmgr")
	if err != nil {
		return err
	}
	if err := c.Net.Connect(mgr, 0, coreSw, cfg.NumLeaves, link); err != nil {
		return err
	}
	c.shardMgr = mgr
	mgr.SetOnFrame(func(fr netsim.Frame) {
		var h wire.Header
		if err := h.DecodeFrom(fr); err != nil {
			return
		}
		if h.Flags&wire.FlagRouteOnObject == 0 || h.Dst != wire.StationAny {
			return
		}
		c.shardPunts++
		shard := c.Sharder.ShardOf(h.Object)
		route := pubsub.ShardRoute{Prefix: c.Sharder.Prefix(shard)}
		for _, sw := range c.Switches {
			ft := sw.FilterTable()
			port, ok := c.stationRoutes[sw][c.Sharder.Home(shard)]
			if ft == nil || !ok {
				continue
			}
			route.Action = p4sim.Action{Type: p4sim.ActForward, Port: port}
			// Best-effort: under EvictNone a full table keeps rejecting
			// and the frame still reaches its home via the rewrite below.
			_ = pubsub.InstallShardRoute(ft, route)
		}
		h.Dst = c.Sharder.Home(shard)
		h.Flags &^= wire.FlagRouteOnObject
		out, err := wire.Encode(&h, wire.Payload(fr))
		if err != nil {
			return
		}
		mgr.Send(out)
	})
	return nil
}

// ShardPunts reports how many object-routed frames the shard manager
// has served after a shard-rule miss punted them to the CPU port.
func (c *Cluster) ShardPunts() uint64 { return c.shardPunts }

// NewIDHomedAt allocates a fresh object ID whose sharded home is the
// given station (SchemeSharded only; it panics without a sharder).
// The ID is drawn from one of the station's shards round-robin, so
// fabric routing and resolver agree on placement with no metadata. It
// returns false when rendezvous assigned the station no shards (possible
// when shards < stations) — no ID can home there.
func (c *Cluster) NewIDHomedAt(st wire.StationID) (oid.ID, bool) {
	shards := c.shardsByStation[st]
	if len(shards) == 0 {
		return oid.ID{}, false
	}
	c.homedSeq++
	return c.gen.NewInPrefix(c.Sharder.Prefix(shards[c.homedSeq%uint64(len(shards))])), true
}

// RegisterAll installs fn under symbol in every node's registry —
// the common case for code that should be runnable wherever the
// system places it.
func (c *Cluster) RegisterAll(symbol string, fn Func) {
	for _, n := range c.Nodes {
		n.Registry.Register(symbol, fn)
	}
}

// Run drains the event loop. Sim-only: wall time cannot be drained —
// under BackendRealnet use RunFor (which sleeps) or Await on futures.
func (c *Cluster) Run() {
	if c.Sim == nil {
		panic("core: Run is sim-only; under BackendRealnet wait with RunFor or Await")
	}
	c.Sim.Run()
}

// RunFor advances virtual time by d under the simulator, or sleeps d
// of wall time under realnet (deliveries and timers proceed
// underneath).
func (c *Cluster) RunFor(d netsim.Duration) {
	if c.Sim != nil {
		c.Sim.RunFor(d)
		return
	}
	c.rn.Sleep(d)
}

// Close releases backend resources (realnet sockets and reader
// goroutines). A sim cluster needs no teardown; Close is always safe
// to defer.
func (c *Cluster) Close() error {
	if c.rn != nil {
		return c.rn.Close()
	}
	return nil
}

// Exec runs fn serialized with every node's upcalls — the safe entry
// point for harness code that touches node state. Under the
// simulator, upcalls only run inside Run/RunFor, so fn runs inline.
func (c *Cluster) Exec(fn func()) {
	if c.rn == nil {
		fn()
		return
	}
	c.Nodes[0].Link.Exec(fn)
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// CheckConfig returns the cluster's invariant-checker configuration
// (defaults filled).
func (c *Cluster) CheckConfig() CheckConfig { return c.cfg.Check }

// NewID allocates a fresh object ID.
func (c *Cluster) NewID() oid.ID { return c.gen.New() }

// Generator exposes the cluster's ID generator (for builders that
// allocate many objects, e.g. model partitioning).
func (c *Cluster) Generator() *oid.Generator { return c.gen }

// registerMeta records an object with the metadata service.
func (c *Cluster) registerMeta(obj oid.ID, size int, home wire.StationID) {
	c.meta[obj] = &objMeta{size: size, home: home}
}

// Locate answers the metadata service's view of an object.
func (c *Cluster) Locate(obj oid.ID) (home wire.StationID, size int, ok bool) {
	m, found := c.meta[obj]
	if !found {
		return 0, 0, false
	}
	return m.home, m.size, true
}

// MoveObject migrates an object's home between nodes with a byte-level
// copy: the mechanism behind Figure 3's "moved objects" and the §3.1
// serialization claim. The movement itself is performed out-of-band
// (as by an operator or rebalancer); discovery state updates
// accordingly: the new home announces, the old home withdraws —
// requesters with stale destination caches discover the move on their
// next access.
func (c *Cluster) MoveObject(obj oid.ID, from, to *Node) error {
	e, err := from.Store.GetEntry(obj)
	if err != nil {
		return fmt.Errorf("core: move source: %w", err)
	}
	raw := e.Obj.CloneBytes()
	version := e.Version
	if err := from.Store.Delete(obj); err != nil {
		return err
	}
	from.Resolver.Withdraw(obj)
	moved, err := object.FromBytes(obj, raw)
	if err != nil {
		return err
	}
	if err := to.Store.Put(moved, version, true); err != nil {
		return err
	}
	to.Resolver.Announce(obj)
	if m, ok := c.meta[obj]; ok {
		m.home = to.Station
	} else {
		c.registerMeta(obj, len(raw), to.Station)
	}
	return nil
}

// ReplicateObject seeds a cached copy of a home object at node (the
// replication §5 discusses for masking failures). The copy registers
// with the home's coherence directory like any fetched copy, so
// writes still invalidate it.
func (c *Cluster) ReplicateObject(obj oid.ID, at *Node, cb func(error)) {
	at.Coherence.AcquireSharedCB(obj, func(_ *object.Object, err error) { cb(err) })
}

// PromoteReplica makes node's cached copy of obj the authoritative
// home — the recovery step after the original home fails. The caller
// is responsible for ensuring the old home is really gone (promoting
// while it lives creates two homes). The new home's coherence
// directory is rebuilt by scanning the other live nodes for cached
// copies, so post-promotion writes still invalidate every sharer.
func (c *Cluster) PromoteReplica(obj oid.ID, node *Node) error {
	e, err := node.Store.GetEntry(obj)
	if err != nil {
		return fmt.Errorf("core: no replica at %v: %w", node.Station, err)
	}
	if e.Home {
		return nil
	}
	// Re-put as home: pins the entry and keeps the freshest version.
	if err := node.Store.Put(e.Obj, e.Version+1, true); err != nil {
		return err
	}
	node.Resolver.Announce(obj)
	if m, ok := c.meta[obj]; ok {
		m.home = node.Station
	} else {
		c.registerMeta(obj, e.Obj.Size(), node.Station)
	}
	// Directory rebuild: the old home's sharer list died with it.
	for _, other := range c.Nodes {
		if other == node || other.down {
			continue
		}
		if other.Store.Contains(obj) {
			node.Coherence.AddSharer(obj, other.Station)
		}
	}
	return nil
}

// CrashNode fail-stops node i: its access link goes down and all of
// its volatile state — object store (home copies included), resolver
// caches, coherence directory, transport timers — is lost, exactly as
// a process crash loses it. It returns the IDs of the objects the
// node was home for, so a recovery orchestrator can promote surviving
// replicas. Crashing an already-down node is a no-op.
func (c *Cluster) CrashNode(i int) []oid.ID {
	if c.Net == nil {
		panic("core: CrashNode is sim-only (realnet has no injectable link failures)")
	}
	n := c.Nodes[i]
	if n.down {
		return nil
	}
	homed := n.Store.HomeList()
	c.Net.SetLinkDown(n.Host, 0, true)
	n.EP.Reset()
	n.Store.Clear()
	n.Resolver.Reset()
	n.Coherence.Reset()
	n.down = true
	// A dead node is no longer a placement candidate.
	c.Placement.RemoveNode(n.Station)
	return homed
}

// RestartNode brings a crashed node back with an empty store — the
// durable state is gone; only the process and its link return. The
// node rejoins the placement pool and serves fresh traffic, but
// objects it was home for stay lost until promoted elsewhere or
// re-created. Restarting a live node is a no-op.
func (c *Cluster) RestartNode(i int) {
	if c.Net == nil {
		panic("core: RestartNode is sim-only")
	}
	n := c.Nodes[i]
	if !n.down {
		return
	}
	c.Net.SetLinkDown(n.Host, 0, false)
	n.down = false
	c.Placement.SetNode(n.placementInfo())
}

// Stats is a cluster-wide counter snapshot.
type Stats struct {
	Network  backend.NetStats
	Switches []p4sim.Counters
	// FrameDrops counts frames that reached an endpoint's mux but no
	// handler claimed (unknown or unhandled message types), summed over
	// every node and the controller. Before the dataplane mux these
	// vanished silently.
	FrameDrops uint64
}

// Stats snapshots cluster-wide counters.
func (c *Cluster) Stats() Stats {
	s := Stats{Network: c.netStats()}
	for _, sw := range c.Switches {
		s.Switches = append(s.Switches, sw.Counters())
	}
	for _, n := range c.Nodes {
		s.FrameDrops += n.EP.Mux().Stats().Dropped
	}
	for _, ep := range c.controllerEPs {
		s.FrameDrops += ep.Mux().Stats().Dropped
	}
	return s
}

// netStats reads the backend's frame counters.
func (c *Cluster) netStats() backend.NetStats {
	if c.Net != nil {
		return c.Net.Stats()
	}
	return c.rn.Stats()
}

// ResetStats zeroes network, switch, and mux counters.
func (c *Cluster) ResetStats() {
	if c.Net != nil {
		c.Net.ResetStats()
	} else {
		c.rn.ResetStats()
	}
	for _, sw := range c.Switches {
		sw.ResetCounters()
	}
	for _, n := range c.Nodes {
		n.EP.Mux().ResetStats()
	}
	for _, ep := range c.controllerEPs {
		ep.Mux().ResetStats()
	}
}

// AddTelemetry registers every stats surface in the cluster —
// network, switches, endpoints, muxes, discovery, coherence,
// prefetch, RPC, tracing — into r with stable snake_case names.
// Callers (the workload harness, benchmarks) layer their own
// counters into the same registry before snapshotting.
func (c *Cluster) AddTelemetry(r *telemetry.Registry) {
	r.Add("net", c.netStats())
	for _, sw := range c.Switches {
		r.Add("switch", sw.Counters())
	}
	// INC counters only exist when engines do, so the disabled
	// telemetry name-set is unchanged.
	if len(c.IncEngines) > 0 {
		for _, eng := range c.IncEngines {
			r.Add("inc", eng.Counters())
		}
		var saved, fallbacks uint64
		for _, n := range c.Nodes {
			ic := n.Coherence.IncCounters()
			saved += ic.McastFramesSaved
			fallbacks += ic.FallbackInvalidates
		}
		r.Set("inc.mcast_frames_saved", saved)
		r.Set("inc.fallback_invalidates", fallbacks)
	}
	for _, n := range c.Nodes {
		r.Add("transport", n.EP.Counters())
		r.Add("mux", n.EP.Mux().Stats())
		r.Add("coherence", n.Coherence.Counters())
		if n.Prefetch != nil {
			r.Add("prefetch", n.Prefetch.Counters())
		}
		if n.e2e != nil {
			r.Add("discovery", n.e2e.Counters())
		}
		if n.cc != nil {
			r.Add("discovery", n.cc.Counters())
		}
		if n.sharded != nil {
			r.Add("discovery", n.sharded.Counters())
		}
		r.Add("rpc_client", n.RPCClient.Counters())
		r.Add("rpc_server", n.RPCServer.Counters())
	}
	for _, ep := range c.controllerEPs {
		r.Add("transport", ep.Counters())
		r.Add("mux", ep.Mux().Stats())
	}
	// Consensus state of the replicated control plane: term and commit
	// index are cluster-wide maxima, election counts cluster-wide sums.
	if rafts := c.RaftNodes(); len(rafts) > 0 {
		var term, commit, elections, leaderChanges uint64
		for _, rn := range rafts {
			if t := rn.Term(); t > term {
				term = t
			}
			if ci := rn.CommitIndex(); ci > commit {
				commit = ci
			}
			elections += rn.Counters().ElectionsStarted
			leaderChanges += rn.Counters().BecameLeader
		}
		r.Set("raft.term", term)
		r.Set("raft.commit_index", commit)
		r.Set("raft.elections_total", elections)
		r.Set("raft.leader_changes_total", leaderChanges)
	}
	// Ring counters only exist when ring groups do, so the disabled
	// telemetry name-set is unchanged.
	var ringSent, ringDelivered, ringDropped uint64
	haveRings := false
	for _, n := range c.Nodes {
		if n.Ring == nil {
			continue
		}
		haveRings = true
		rs := n.Ring.Stats()
		ringSent += rs.RingSent
		ringDelivered += rs.RingDelivered
		ringDropped += rs.RingDroppedFull
	}
	if haveRings {
		r.Set("ring.sent", ringSent)
		r.Set("ring.delivered", ringDelivered)
		r.Set("ring.dropped_full", ringDropped)
	}
	// Directory footprint: how much coherence-directory state the
	// cluster carries per object is the headline scale metric (E12).
	var dirEntries, dirBytes uint64
	for _, n := range c.Nodes {
		d := n.Coherence.Directory()
		dirEntries += uint64(d.Len())
		dirBytes += uint64(d.Bytes())
	}
	r.Set("coherence.directory_entries", dirEntries)
	r.Set("coherence.directory_bytes", dirBytes)
	if c.Sharder != nil {
		r.Set("sharded.shards", uint64(c.Sharder.Shards()))
		r.Set("sharded.punts_served", c.shardPunts)
		var fallbacks, evictions uint64
		for _, n := range c.Nodes {
			if n.sharded != nil {
				fallbacks += uint64(n.sharded.DirectFallbacks())
			}
		}
		for _, sw := range c.Switches {
			if ft := sw.FilterTable(); ft != nil {
				evictions += ft.Evictions()
			}
		}
		r.Set("sharded.direct_fallbacks", fallbacks)
		r.Set("sharded.filter_evictions", evictions)
	}
	if c.Tracer != nil {
		r.Set("trace.spans", uint64(len(c.Tracer.Spans())))
		r.Set("trace.dropped", c.Tracer.Dropped())
	}
}

// Telemetry flattens every stats surface into one snapshot. Per-node
// counters registered under a shared prefix sum across nodes; the
// native typed accessors (Stats, Counters) remain for callers that
// need per-instance or per-type breakdowns.
func (c *Cluster) Telemetry() telemetry.Snapshot {
	r := telemetry.NewRegistry()
	c.AddTelemetry(r)
	return r.Snapshot()
}

// BroadcastsObserved sums switch flood events — the quantity on
// Figure 2's right axis.
func (c *Cluster) BroadcastsObserved() uint64 {
	var n uint64
	for _, sw := range c.Switches {
		n += sw.Counters().Flooded
	}
	return n
}

// storeBudget is the per-node store budget from the config.
func (c *Cluster) storeBudget() int { return c.cfg.StoreBudget }
