package placement

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/oid"
	"repro/internal/wire"
)

var gen = oid.NewSeededGenerator(61)

const gbit = 1_000_000_000

// paperScenario builds the §2 cast: Alice (weak edge), Bob (loaded
// cloud, holds the model shard), Carol (idle cloud).
func paperScenario() (*Engine, *Request) {
	e := NewEngine()
	e.SetNode(NodeInfo{Station: 1, ComputeRate: 1, Load: 0, LinkBitsPerSec: 100_000_000})   // Alice
	e.SetNode(NodeInfo{Station: 2, ComputeRate: 10, Load: 0.95, LinkBitsPerSec: 10 * gbit}) // Bob
	e.SetNode(NodeInfo{Station: 3, ComputeRate: 10, Load: 0.05, LinkBitsPerSec: 10 * gbit}) // Carol
	req := &Request{
		Code:        DataItem{Obj: gen.New(), Size: 64 << 10, Location: 1},
		Data:        []DataItem{{Obj: gen.New(), Size: 512 << 20, Location: 2}}, // shard on Bob
		Invoker:     1,
		ComputeWork: 5,
		ResultSize:  1 << 10,
	}
	return e, req
}

func TestChoosePicksCarol(t *testing.T) {
	e, req := paperScenario()
	d, err := e.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Executor != 3 {
		t.Fatalf("executor = %v, want Carol (3); candidates %+v", d.Executor, d.Candidates)
	}
	if len(d.Candidates) != 3 {
		t.Fatalf("candidates = %d", len(d.Candidates))
	}
	// Candidates sorted ascending by cost.
	for i := 1; i < len(d.Candidates); i++ {
		if d.Candidates[i-1].Total > d.Candidates[i].Total {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestDataGravityKeepsWorkOnBobWhenIdle(t *testing.T) {
	// If Bob is idle, moving half a gigabyte to Carol can't win.
	e, req := paperScenario()
	e.SetNode(NodeInfo{Station: 2, ComputeRate: 10, Load: 0.05, LinkBitsPerSec: 10 * gbit})
	d, err := e.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Executor != 2 {
		t.Fatalf("executor = %v, want Bob (2)", d.Executor)
	}
	if d.Cost.DataTransfer != 0 {
		t.Fatalf("data transfer at Bob = %v", d.Cost.DataTransfer)
	}
}

func TestDavePowerfulEdgeRunsLocally(t *testing.T) {
	// §5: Dave has the resources to do the work locally — with the
	// data cached at Dave, local execution wins (no RPC mechanism
	// could express this).
	e, req := paperScenario()
	e.SetNode(NodeInfo{Station: 4, ComputeRate: 8, Load: 0, LinkBitsPerSec: gbit})
	req.Invoker = 4
	req.Code.Location = 4
	req.Data[0].CachedAt = []wire.StationID{4}
	d, err := e.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Executor != 4 {
		t.Fatalf("executor = %v, want Dave (4)", d.Executor)
	}
	if d.Cost.BytesMoved != 0 {
		t.Fatalf("bytes moved = %d", d.Cost.BytesMoved)
	}
}

func TestPinnedExcluded(t *testing.T) {
	e, req := paperScenario()
	e.SetNode(NodeInfo{Station: 3, ComputeRate: 10, Load: 0.05, LinkBitsPerSec: 10 * gbit, Pinned: true})
	d, err := e.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Executor == 3 {
		t.Fatal("pinned node selected")
	}
}

func TestNoCandidates(t *testing.T) {
	e := NewEngine()
	if _, err := e.Choose(&Request{}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
	e.SetNode(NodeInfo{Station: 1, Pinned: true})
	if _, err := e.Choose(&Request{}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("all-pinned err = %v", err)
	}
}

func TestCostBreakdownAccounting(t *testing.T) {
	e := NewEngine()
	e.SetNode(NodeInfo{Station: 5, ComputeRate: 2, Load: 0.5, LinkBitsPerSec: gbit})
	req := &Request{
		Code:        DataItem{Size: 1000, Location: 1},
		Data:        []DataItem{{Size: 2000, Location: 1}, {Size: 3000, Location: 5}},
		Invoker:     1,
		ComputeWork: 4,
		ResultSize:  500,
	}
	d, err := e.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Cost
	// Data: only the 2000-byte item moves. Code moves. Result returns.
	if c.BytesMoved != 2000+1000+500 {
		t.Fatalf("BytesMoved = %d", c.BytesMoved)
	}
	if c.TransferCount != 2 {
		t.Fatalf("TransferCount = %d", c.TransferCount)
	}
	wantCompute := 4.0 / (2 * 0.5)
	if c.Compute != wantCompute {
		t.Fatalf("Compute = %v, want %v", c.Compute, wantCompute)
	}
	if c.Total != c.DataTransfer+c.CodeTransfer+c.Compute+c.ResultReturn {
		t.Fatal("Total != sum of parts")
	}
}

func TestInvokerPaysNoResultReturn(t *testing.T) {
	e := NewEngine()
	e.SetNode(NodeInfo{Station: 1, ComputeRate: 1, LinkBitsPerSec: gbit})
	req := &Request{Invoker: 1, ComputeWork: 1, ResultSize: 1 << 30}
	d, err := e.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost.ResultReturn != 0 {
		t.Fatal("local execution charged result return")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	e := NewEngine()
	for st := wire.StationID(5); st >= 1; st-- {
		e.SetNode(NodeInfo{Station: st, ComputeRate: 1, LinkBitsPerSec: gbit})
	}
	req := &Request{Invoker: 99, ComputeWork: 1}
	for i := 0; i < 10; i++ {
		d, err := e.Choose(req)
		if err != nil {
			t.Fatal(err)
		}
		if d.Executor != 1 {
			t.Fatalf("tie-break chose %v", d.Executor)
		}
	}
}

func TestNodeAccessors(t *testing.T) {
	e := NewEngine()
	e.SetNode(NodeInfo{Station: 7, ComputeRate: 3})
	if n, ok := e.Node(7); !ok || n.ComputeRate != 3 {
		t.Fatal("Node accessor")
	}
	if len(e.Nodes()) != 1 {
		t.Fatal("Nodes")
	}
	e.RemoveNode(7)
	if _, ok := e.Node(7); ok {
		t.Fatal("RemoveNode")
	}
}

func TestPropertyChoiceIsMinimal(t *testing.T) {
	f := func(loads []uint8, dataSize uint32, work uint16) bool {
		if len(loads) == 0 {
			return true
		}
		if len(loads) > 8 {
			loads = loads[:8]
		}
		e := NewEngine()
		for i, l := range loads {
			e.SetNode(NodeInfo{
				Station:        wire.StationID(i + 1),
				ComputeRate:    1 + float64(l%5),
				Load:           float64(l%90) / 100,
				LinkBitsPerSec: gbit,
			})
		}
		req := &Request{
			Data:        []DataItem{{Size: int64(dataSize), Location: 1}},
			Invoker:     1,
			ComputeWork: float64(work),
		}
		d, err := e.Choose(req)
		if err != nil {
			return false
		}
		for _, c := range d.Candidates {
			if c.Total < d.Cost.Total {
				return false
			}
		}
		return d.Cost.Station == d.Executor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
