// Package placement implements the rendezvous engine of §3.1 and §5:
// "the placement decision would be made by the system". Given a
// requested computation — a code reference, the data references it
// touches, and where the invoker sits — the engine costs out running
// the computation at each candidate node (data transfer, code
// transfer, compute under load, result return) and picks the cheapest.
//
// Because movement is byte-level copy in the object model, transfer
// costs are linear in object size with no deserialization surcharge,
// which is exactly what makes them "included in cost-models more
// easily" (§3.1 Serialization).
package placement

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/oid"
	"repro/internal/wire"
)

// ErrNoCandidates reports an empty candidate set.
var ErrNoCandidates = errors.New("placement: no candidate nodes")

// NodeInfo describes one candidate executor.
type NodeInfo struct {
	Station wire.StationID
	// ComputeRate is relative work units per second (an idle cloud
	// server might be 10, a phone 1).
	ComputeRate float64
	// Load is current utilization in [0,1); available compute scales
	// by (1-Load).
	Load float64
	// LinkBitsPerSec is the node's access bandwidth.
	LinkBitsPerSec int64
	// Pinned excludes the node from selection (capacity constraint).
	Pinned bool
}

// DataItem is one object a computation touches.
type DataItem struct {
	Obj      oid.ID
	Size     int64
	Location wire.StationID
	// CachedAt lists stations already holding a valid copy (transfer
	// is free there).
	CachedAt []wire.StationID
}

// availableAt reports whether the item needs no transfer to st.
func (d *DataItem) availableAt(st wire.StationID) bool {
	if d.Location == st {
		return true
	}
	for _, c := range d.CachedAt {
		if c == st {
			return true
		}
	}
	return false
}

// Request describes a computation to place.
type Request struct {
	// Code is the code object (code mobility: it transfers like data).
	Code DataItem
	// Data are the argument objects.
	Data []DataItem
	// Invoker receives the result.
	Invoker wire.StationID
	// ComputeWork is the abstract work-unit count.
	ComputeWork float64
	// ResultSize is the result bytes returned to the invoker.
	ResultSize int64
	// Hint, when non-zero, biases selection toward that station: its
	// cost is discounted by HintDiscount, so the hint wins ties and
	// near-ties but a clearly cheaper candidate still prevails.
	Hint wire.StationID
}

// HintDiscount is the multiplicative cost discount a hinted station
// receives (10%).
const HintDiscount = 0.9

// CandidateCost is the cost breakdown for one candidate.
type CandidateCost struct {
	Station       wire.StationID
	DataTransfer  float64 // seconds
	CodeTransfer  float64
	Compute       float64
	ResultReturn  float64
	Total         float64
	BytesMoved    int64
	TransferCount int
}

// Decision is the engine's choice.
type Decision struct {
	Executor   wire.StationID
	Cost       CandidateCost
	Candidates []CandidateCost // sorted by total cost ascending
}

// Engine holds the candidate set.
type Engine struct {
	nodes map[wire.StationID]NodeInfo
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{nodes: make(map[wire.StationID]NodeInfo)}
}

// SetNode registers or updates a candidate.
func (e *Engine) SetNode(info NodeInfo) {
	e.nodes[info.Station] = info
}

// RemoveNode deregisters a candidate.
func (e *Engine) RemoveNode(st wire.StationID) {
	delete(e.nodes, st)
}

// Node returns a candidate's info.
func (e *Engine) Node(st wire.StationID) (NodeInfo, bool) {
	n, ok := e.nodes[st]
	return n, ok
}

// Nodes returns all candidates sorted by station.
func (e *Engine) Nodes() []NodeInfo {
	out := make([]NodeInfo, 0, len(e.nodes))
	for _, n := range e.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Station < out[j].Station })
	return out
}

// transferSeconds costs moving n bytes onto a node.
func transferSeconds(n int64, bw int64) float64 {
	if n <= 0 {
		return 0
	}
	if bw <= 0 {
		bw = 1_000_000_000
	}
	return float64(n*8) / float64(bw)
}

// costAt computes the full cost breakdown of executing req at node.
func costAt(req *Request, node NodeInfo) CandidateCost {
	c := CandidateCost{Station: node.Station}
	for i := range req.Data {
		d := &req.Data[i]
		if d.availableAt(node.Station) {
			continue
		}
		c.DataTransfer += transferSeconds(d.Size, node.LinkBitsPerSec)
		c.BytesMoved += d.Size
		c.TransferCount++
	}
	if !req.Code.availableAt(node.Station) && req.Code.Size > 0 {
		c.CodeTransfer = transferSeconds(req.Code.Size, node.LinkBitsPerSec)
		c.BytesMoved += req.Code.Size
		c.TransferCount++
	}
	rate := node.ComputeRate * (1 - node.Load)
	if rate <= 0 {
		rate = 1e-6
	}
	c.Compute = req.ComputeWork / rate
	if node.Station != req.Invoker {
		c.ResultReturn = transferSeconds(req.ResultSize, node.LinkBitsPerSec)
		c.BytesMoved += req.ResultSize
	}
	c.Total = c.DataTransfer + c.CodeTransfer + c.Compute + c.ResultReturn
	return c
}

// Choose picks the cheapest executor. Ties break toward the lower
// station ID for determinism.
func (e *Engine) Choose(req *Request) (Decision, error) {
	var cands []CandidateCost
	for _, n := range e.nodes {
		if n.Pinned {
			continue
		}
		c := costAt(req, n)
		if req.Hint != 0 && n.Station == req.Hint {
			c.Total *= HintDiscount
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return Decision{}, fmt.Errorf("%w (registered: %d)", ErrNoCandidates, len(e.nodes))
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Total != cands[j].Total {
			return cands[i].Total < cands[j].Total
		}
		return cands[i].Station < cands[j].Station
	})
	return Decision{Executor: cands[0].Station, Cost: cands[0], Candidates: cands}, nil
}
