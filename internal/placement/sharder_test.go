package placement

import (
	"math/rand"
	"testing"

	"repro/internal/oid"
	"repro/internal/wire"
)

func TestSharderDeterministicAndCovering(t *testing.T) {
	stations := []wire.StationID{3, 1, 2, 7}
	a := NewSharder(64, stations)
	b := NewSharder(64, []wire.StationID{7, 2, 1, 3}) // different order, same set
	if a.Shards() != 64 {
		t.Fatalf("Shards() = %d, want 64", a.Shards())
	}
	gen := oid.NewSeededGenerator(1)
	for i := 0; i < 10000; i++ {
		id := gen.New()
		ha, hb := a.HomeOf(id), b.HomeOf(id)
		if ha != hb {
			t.Fatalf("membership order changed assignment: %v vs %v for %v", ha, hb, id)
		}
		found := false
		for _, st := range stations {
			if st == ha {
				found = true
			}
		}
		if !found {
			t.Fatalf("HomeOf(%v) = %d not in membership", id, ha)
		}
		shard := a.ShardOf(id)
		if !a.Prefix(shard).Matches(id) {
			t.Fatalf("Prefix(%d) does not cover %v", shard, id)
		}
		if a.Home(shard) != ha {
			t.Fatalf("Home(ShardOf(id)) != HomeOf(id)")
		}
	}
}

func TestSharderRoundsUpToPowerOfTwo(t *testing.T) {
	s := NewSharder(33, []wire.StationID{1, 2})
	if s.Shards() != 64 {
		t.Fatalf("Shards() = %d, want 64", s.Shards())
	}
	s = NewSharder(0, []wire.StationID{1})
	if s.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", s.Shards())
	}
	if s.ShardOf(oid.ID{Hi: ^uint64(0), Lo: ^uint64(0)}) != 0 {
		t.Fatalf("single-shard ShardOf must be 0")
	}
}

func TestSharderBalance(t *testing.T) {
	stations := make([]wire.StationID, 16)
	for i := range stations {
		stations[i] = wire.StationID(i + 1)
	}
	s := NewSharder(1024, stations)
	counts := make(map[wire.StationID]int)
	for shard := 0; shard < s.Shards(); shard++ {
		counts[s.Home(shard)]++
	}
	mean := float64(s.Shards()) / float64(len(stations))
	for st, c := range counts {
		if float64(c) < mean*0.5 || float64(c) > mean*1.8 {
			t.Errorf("station %d owns %d shards, mean %.1f — badly unbalanced", st, c, mean)
		}
	}
}

// TestSharderMinimalReassignment checks the rendezvous property:
// removing one station only moves the shards it owned.
func TestSharderMinimalReassignment(t *testing.T) {
	stations := []wire.StationID{1, 2, 3, 4, 5, 6, 7, 8}
	full := NewSharder(512, stations)
	without := NewSharder(512, stations[:7]) // drop station 8
	moved := 0
	for shard := 0; shard < full.Shards(); shard++ {
		if full.Home(shard) == 8 {
			continue // must move somewhere
		}
		if full.Home(shard) != without.Home(shard) {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d shards not owned by the removed station were reassigned", moved)
	}
}

func TestSharderPrefixesPartitionSpace(t *testing.T) {
	s := NewSharder(16, []wire.StationID{1, 2, 3})
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		id := oid.ID{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
		matches := 0
		for shard := 0; shard < s.Shards(); shard++ {
			if s.Prefix(shard).Matches(id) {
				matches++
				if shard != s.ShardOf(id) {
					t.Fatalf("id %v matched prefix of shard %d but ShardOf = %d", id, shard, s.ShardOf(id))
				}
			}
		}
		if matches != 1 {
			t.Fatalf("id %v matched %d shard prefixes, want exactly 1", id, matches)
		}
	}
}
