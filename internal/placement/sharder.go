// Sharder maps object IDs to coherence home stations by rendezvous
// hashing over a fixed power-of-two shard space. It answers the §3.2
// capacity question at million-object scale: the shard — not the
// object — is the routing unit, so switch state and directory
// ownership scale with the shard count while objects stay free to
// fill the 128-bit ID space.
//
// The shard index is the top bits of id.Hi. Object IDs are uniformly
// random (oid.Generator draws raw random words), so this needs no
// cooperation from allocation, and it makes every shard a contiguous
// ID prefix: one ternary switch rule of Prefix(shard) covers every
// object the shard will ever hold.
package placement

import (
	"fmt"
	"math/bits"

	"repro/internal/oid"
	"repro/internal/wire"
)

// Sharder is an immutable shard→home assignment. Build one with
// NewSharder; HomeOf and ShardOf are alloc-free and safe for
// concurrent use.
type Sharder struct {
	bits     int // log2(shards)
	shards   int
	stations []wire.StationID // sorted copy of the membership
	assign   []wire.StationID // shard index → home station
}

// hashShardStation scores a (shard, station) pair for rendezvous
// hashing — splitmix64-style finalizer over the packed pair.
func hashShardStation(shard int, st wire.StationID) uint64 {
	x := uint64(shard)*0x9e3779b97f4a7c15 ^ uint64(st)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewSharder builds the assignment table for the given shard count
// (rounded up to a power of two, min 1) over the station set. It
// panics on an empty membership: a cluster with no homes cannot
// place anything.
func NewSharder(shards int, stations []wire.StationID) *Sharder {
	if len(stations) == 0 {
		panic("placement: NewSharder with no stations")
	}
	if shards < 1 {
		shards = 1
	}
	// Round up to a power of two so the shard index is a pure bit
	// extraction from the ID.
	n := 1 << bits.Len(uint(shards-1))
	members := make([]wire.StationID, len(stations))
	copy(members, stations)
	// Deterministic tie-break order (lowest station wins equal scores)
	// regardless of the caller's slice order.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && members[j] < members[j-1]; j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	s := &Sharder{
		bits:     bits.Len(uint(n)) - 1,
		shards:   n,
		stations: members,
		assign:   make([]wire.StationID, n),
	}
	for shard := 0; shard < n; shard++ {
		best := members[0]
		bestScore := hashShardStation(shard, members[0])
		for _, st := range members[1:] {
			if sc := hashShardStation(shard, st); sc > bestScore {
				best, bestScore = st, sc
			}
		}
		s.assign[shard] = best
	}
	return s
}

// Shards returns the (power-of-two) shard count.
func (s *Sharder) Shards() int { return s.shards }

// ShardOf extracts the shard index from an object ID: the top
// log2(shards) bits of the high word.
func (s *Sharder) ShardOf(id oid.ID) int {
	if s.bits == 0 {
		return 0
	}
	return int(id.Hi >> (64 - uint(s.bits)))
}

// HomeOf returns the home station for an object.
func (s *Sharder) HomeOf(id oid.ID) wire.StationID {
	return s.assign[s.ShardOf(id)]
}

// Home returns the home station for a shard index.
func (s *Sharder) Home(shard int) wire.StationID {
	return s.assign[shard]
}

// Prefix returns the ID prefix covering exactly the objects of one
// shard — the match key for an aggregated switch rule.
func (s *Sharder) Prefix(shard int) oid.Prefix {
	if shard < 0 || shard >= s.shards {
		panic(fmt.Sprintf("placement: shard %d out of range [0,%d)", shard, s.shards))
	}
	var id oid.ID
	if s.bits > 0 {
		id.Hi = uint64(shard) << (64 - uint(s.bits))
	}
	return oid.MakePrefix(id, s.bits)
}

// Stations returns the sorted membership the sharder was built over.
// The slice is shared; callers must not mutate it.
func (s *Sharder) Stations() []wire.StationID { return s.stations }

// Assignments returns home station → shard indexes it owns, for
// balance reporting and directory pre-sizing.
func (s *Sharder) Assignments() map[wire.StationID][]int {
	m := make(map[wire.StationID][]int, len(s.stations))
	for shard, st := range s.assign {
		m[st] = append(m[st], shard)
	}
	return m
}
