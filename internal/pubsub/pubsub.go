// Package pubsub implements Packet Subscriptions [Jepsen et al.,
// CoNEXT '20] as used by the paper's prototype (§3.2): pub/sub-style
// forwarding over user-defined packet formats. Subscribers register
// predicates over GASP header fields; the compiler lowers the
// predicate language (equality, masked match, prefix, and/or) into
// prioritized ternary match-action entries installable in a P4
// pipeline.
package pubsub

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/p4sim"
	"repro/internal/wire"
)

// Pred is a boolean predicate over a GASP header.
type Pred interface {
	// Eval answers the predicate in software (host-side fallback).
	Eval(h *wire.Header) bool
	String() string
}

// eqPred matches a field exactly.
type eqPred struct {
	field wire.Field
	val   wire.Value
}

// Eq matches field == v.
func Eq(field wire.Field, v wire.Value) Pred { return eqPred{field, v} }

// EqType matches the message type.
func EqType(t wire.MsgType) Pred { return Eq(wire.FieldType, wire.ValueOf(uint64(t))) }

// EqObject matches the object routing key.
func EqObject(id wire.Value) Pred { return Eq(wire.FieldObject, id) }

func (p eqPred) Eval(h *wire.Header) bool {
	v, err := h.Extract(p.field)
	return err == nil && v == p.val
}

func (p eqPred) String() string {
	return fmt.Sprintf("%s==%x:%x", p.field, p.val.Hi, p.val.Lo)
}

// maskPred matches (field & mask) == (val & mask).
type maskPred struct {
	field wire.Field
	val   wire.Value
	mask  wire.Value
}

// Mask matches field under a bit mask.
func Mask(field wire.Field, v, m wire.Value) Pred { return maskPred{field, v, m} }

func (p maskPred) Eval(h *wire.Header) bool {
	v, err := h.Extract(p.field)
	if err != nil {
		return false
	}
	return v.Hi&p.mask.Hi == p.val.Hi&p.mask.Hi && v.Lo&p.mask.Lo == p.val.Lo&p.mask.Lo
}

func (p maskPred) String() string {
	return fmt.Sprintf("%s&%x:%x==%x:%x", p.field, p.mask.Hi, p.mask.Lo, p.val.Hi, p.val.Lo)
}

// prefixPred matches the high bits of a field (hierarchical object
// overlays, §3.2).
type prefixPred struct {
	field wire.Field
	val   wire.Value
	bits  int
}

// Prefix matches the high n bits of field.
func Prefix(field wire.Field, v wire.Value, n int) Pred { return prefixPred{field, v, n} }

func (p prefixPred) Eval(h *wire.Header) bool {
	return maskPred{p.field, p.val, prefixMask(p.field.Width(), p.bits)}.Eval(h)
}

func (p prefixPred) String() string {
	return fmt.Sprintf("%s/%d==%x:%x", p.field, p.bits, p.val.Hi, p.val.Lo)
}

// prefixMask builds the mask selecting the high n bits of a w-bit
// field. Values narrower than 128 bits live in Lo.
func prefixMask(w, n int) wire.Value {
	if n <= 0 {
		return wire.Value{}
	}
	if n > w {
		n = w
	}
	if w <= 64 {
		return wire.Value{Lo: (^uint64(0) << uint(w-n)) & (^uint64(0) >> uint(64-w))}
	}
	if n <= 64 {
		return wire.Value{Hi: ^uint64(0) << uint(64-n)}
	}
	return wire.Value{Hi: ^uint64(0), Lo: ^uint64(0) << uint(128-n)}
}

// andPred is a conjunction.
type andPred struct{ preds []Pred }

// And builds a conjunction.
func And(preds ...Pred) Pred { return andPred{preds} }

func (p andPred) Eval(h *wire.Header) bool {
	for _, q := range p.preds {
		if !q.Eval(h) {
			return false
		}
	}
	return true
}

func (p andPred) String() string { return joinPreds(p.preds, " && ") }

// orPred is a disjunction.
type orPred struct{ preds []Pred }

// Or builds a disjunction.
func Or(preds ...Pred) Pred { return orPred{preds} }

func (p orPred) Eval(h *wire.Header) bool {
	for _, q := range p.preds {
		if q.Eval(h) {
			return true
		}
	}
	return false
}

func (p orPred) String() string { return joinPreds(p.preds, " || ") }

// truePred matches everything.
type truePred struct{}

// True matches every frame.
func True() Pred { return truePred{} }

func (truePred) Eval(*wire.Header) bool { return true }
func (truePred) String() string         { return "true" }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// atom is one field constraint in a compiled conjunction.
type atom struct {
	field wire.Field
	val   wire.Value
	mask  wire.Value
}

// conjunction is a set of per-field constraints; fields absent are
// wildcards.
type conjunction map[wire.Field]atom

// Compilation errors.
var (
	ErrUnsupported   = errors.New("pubsub: predicate not compilable")
	ErrUnsatisfiable = errors.New("pubsub: predicate is unsatisfiable")
)

// compile lowers a predicate to disjunctive normal form.
func compile(p Pred) ([]conjunction, error) {
	switch q := p.(type) {
	case truePred:
		return []conjunction{{}}, nil
	case eqPred:
		w := q.field.Width()
		if w == 0 {
			return nil, fmt.Errorf("%w: unknown field", ErrUnsupported)
		}
		return []conjunction{{q.field: atom{q.field, q.val, prefixMask(w, w)}}}, nil
	case maskPred:
		return []conjunction{{q.field: atom{q.field, q.val, q.mask}}}, nil
	case prefixPred:
		return []conjunction{{q.field: atom{q.field, q.val, prefixMask(q.field.Width(), q.bits)}}}, nil
	case andPred:
		acc := []conjunction{{}}
		for _, sub := range q.preds {
			terms, err := compile(sub)
			if err != nil {
				return nil, err
			}
			var next []conjunction
			for _, a := range acc {
				for _, b := range terms {
					m, ok := mergeConj(a, b)
					if ok {
						next = append(next, m)
					}
				}
			}
			acc = next
		}
		if len(acc) == 0 {
			return nil, ErrUnsatisfiable
		}
		return acc, nil
	case orPred:
		var out []conjunction
		for _, sub := range q.preds {
			terms, err := compile(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, terms...)
		}
		if len(out) == 0 {
			return nil, ErrUnsatisfiable
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, p)
	}
}

// mergeConj intersects two conjunctions; ok=false if contradictory.
func mergeConj(a, b conjunction) (conjunction, bool) {
	out := make(conjunction, len(a)+len(b))
	for f, at := range a {
		out[f] = at
	}
	for f, bt := range b {
		at, exists := out[f]
		if !exists {
			out[f] = bt
			continue
		}
		// Intersect: overlapping mask bits must agree.
		overlapHi := at.mask.Hi & bt.mask.Hi
		overlapLo := at.mask.Lo & bt.mask.Lo
		if at.val.Hi&overlapHi != bt.val.Hi&overlapHi ||
			at.val.Lo&overlapLo != bt.val.Lo&overlapLo {
			return nil, false
		}
		merged := atom{
			field: f,
			mask:  wire.Value{Hi: at.mask.Hi | bt.mask.Hi, Lo: at.mask.Lo | bt.mask.Lo},
			val: wire.Value{
				Hi: (at.val.Hi & at.mask.Hi) | (bt.val.Hi & bt.mask.Hi),
				Lo: (at.val.Lo & at.mask.Lo) | (bt.val.Lo & bt.mask.Lo),
			},
		}
		out[f] = merged
	}
	return out, true
}

// Subscription pairs a compiled filter with a forwarding action.
type Subscription struct {
	ID     int
	Filter Pred
	Action p4sim.Action
}

// Engine manages subscriptions and compiles them into a switch table.
type Engine struct {
	nextID int
	subs   []Subscription
}

// NewEngine creates an empty subscription engine.
func NewEngine() *Engine { return &Engine{} }

// Subscribe registers a filter; it returns the subscription ID.
// The filter is compiled eagerly so invalid predicates fail here.
func (e *Engine) Subscribe(filter Pred, act p4sim.Action) (int, error) {
	if _, err := compile(filter); err != nil {
		return 0, err
	}
	e.nextID++
	e.subs = append(e.subs, Subscription{ID: e.nextID, Filter: filter, Action: act})
	return e.nextID, nil
}

// Unsubscribe removes a subscription by ID; reports whether it existed.
func (e *Engine) Unsubscribe(id int) bool {
	for i, s := range e.subs {
		if s.ID == id {
			e.subs = append(e.subs[:i], e.subs[i+1:]...)
			return true
		}
	}
	return false
}

// Subscriptions returns a copy of the registered subscriptions.
func (e *Engine) Subscriptions() []Subscription {
	return append([]Subscription(nil), e.subs...)
}

// Match evaluates subscriptions in software, earliest-registered
// first; used on hosts (the end-to-end fallback).
func (e *Engine) Match(h *wire.Header) (p4sim.Action, bool) {
	for _, s := range e.subs {
		if s.Filter.Eval(h) {
			return s.Action, true
		}
	}
	return p4sim.Action{}, false
}

// FilterKeys is the ternary key schema the compiled table uses: every
// matchable header field.
func FilterKeys() []p4sim.Key {
	return []p4sim.Key{
		{Field: wire.FieldType, Kind: p4sim.MatchTernary},
		{Field: wire.FieldFlags, Kind: p4sim.MatchTernary},
		{Field: wire.FieldSrc, Kind: p4sim.MatchTernary},
		{Field: wire.FieldDst, Kind: p4sim.MatchTernary},
		{Field: wire.FieldObject, Kind: p4sim.MatchTernary},
		{Field: wire.FieldSeq, Kind: p4sim.MatchTernary},
	}
}

// NewFilterTable builds a table with the FilterKeys schema.
func NewFilterTable(name string, cfg p4sim.TableConfig) (*p4sim.Table, error) {
	return p4sim.NewTable(name, FilterKeys(), cfg)
}

// CompileTo clears table and installs one ternary entry per DNF term
// of every subscription. More-constrained terms get higher priority;
// ties break toward earlier subscriptions.
func (e *Engine) CompileTo(table *p4sim.Table) error {
	type row struct {
		entry p4sim.Entry
		bits  int
		order int
	}
	var rows []row
	for order, s := range e.subs {
		terms, err := compile(s.Filter)
		if err != nil {
			return fmt.Errorf("pubsub: subscription %d: %w", s.ID, err)
		}
		for _, conj := range terms {
			match := make([]p4sim.KeyValue, len(FilterKeys()))
			maskBits := 0
			for i, k := range FilterKeys() {
				if at, ok := conj[k.Field]; ok {
					match[i] = p4sim.KeyValue{Value: at.val, Mask: at.mask}
					maskBits += bits.OnesCount64(at.mask.Hi) + bits.OnesCount64(at.mask.Lo)
				}
			}
			rows = append(rows, row{
				entry: p4sim.Entry{Match: match, Action: s.Action},
				bits:  maskBits,
				order: order,
			})
		}
	}
	// Priority: specificity first, then registration order.
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].bits != rows[j].bits {
			return rows[i].bits > rows[j].bits
		}
		return rows[i].order < rows[j].order
	})
	table.Clear()
	for i := range rows {
		rows[i].entry.Priority = len(rows) - i
		if err := table.Insert(rows[i].entry); err != nil {
			return err
		}
	}
	return nil
}
