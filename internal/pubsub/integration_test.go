package pubsub

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

// pubsubFabric: one switch, three hosts (publisher, subscriber A,
// subscriber B), with a compiled filter table installed.
type pubsubFabric struct {
	sim   *netsim.Sim
	sw    *p4sim.Switch
	hosts []*netsim.Host
	got   [][]wire.Header
}

func newPubsubFabric(t *testing.T) *pubsubFabric {
	t.Helper()
	sim := netsim.NewSim(61)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw", 3, p4sim.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := &pubsubFabric{sim: sim, sw: sw, got: make([][]wire.Header, 3)}
	for i := 0; i < 3; i++ {
		h, err := netsim.NewHost(net, "h"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		i := i
		h.OnFrame = func(fr netsim.Frame) {
			var hd wire.Header
			if err := hd.DecodeFrom(fr); err == nil {
				f.got[i] = append(f.got[i], hd)
			}
		}
		if err := net.Connect(h, 0, sw, i, netsim.LinkConfig{Latency: netsim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		f.hosts = append(f.hosts, h)
	}
	return f
}

func (f *pubsubFabric) publish(t *testing.T, h wire.Header) {
	t.Helper()
	fr, err := wire.Encode(&h, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.hosts[0].Send(fr)
}

// TestTopicRoutingEndToEnd: a subscriber registers interest in an
// object-ID prefix (a "topic"); the compiled filter steers published
// frames to it through the switch data plane, Packet Subscriptions
// style.
func TestTopicRoutingEndToEnd(t *testing.T) {
	f := newPubsubFabric(t)
	topicA := gen.New()
	prefA := Prefix(wire.FieldObject, wire.ValueOfID(topicA), 32)

	e := NewEngine()
	// Subscriber on port 1 wants topic A; everything else that is a
	// MsgMem "publication" is dropped by a low-priority rule.
	if _, err := e.Subscribe(And(EqType(wire.MsgMem), prefA),
		p4sim.Action{Type: p4sim.ActForward, Port: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subscribe(EqType(wire.MsgMem),
		p4sim.Action{Type: p4sim.ActDrop}); err != nil {
		t.Fatal(err)
	}
	tb, err := NewFilterTable("subs", p4sim.TableConfig{MemoryBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompileTo(tb); err != nil {
		t.Fatal(err)
	}
	f.sw.SetFilterTable(tb)

	// Publish three frames on topic A (same /32 prefix) and two off
	// topic.
	inTopic := topicA
	for i := 0; i < 3; i++ {
		inTopic.Lo = uint64(i)
		f.publish(t, wire.Header{Type: wire.MsgMem, Src: 1, Dst: 99, Object: inTopic, Seq: uint64(i + 1)})
	}
	off := gen.New()
	off.Hi ^= 0xFFFF_FFFF_0000_0000 // definitely different /32
	f.publish(t, wire.Header{Type: wire.MsgMem, Src: 1, Dst: 99, Object: off, Seq: 10})
	f.publish(t, wire.Header{Type: wire.MsgMem, Src: 1, Dst: 99, Object: off, Seq: 11})
	f.sim.Run()

	if len(f.got[1]) != 3 {
		t.Fatalf("subscriber received %d frames, want 3", len(f.got[1]))
	}
	if len(f.got[2]) != 0 {
		t.Fatalf("bystander received %d frames", len(f.got[2]))
	}
	if f.sw.Counters().FilterHits != 5 {
		t.Fatalf("FilterHits = %d", f.sw.Counters().FilterHits)
	}
	// Non-publication traffic is untouched by the filter: a hello
	// broadcast still floods.
	f.publish(t, wire.Header{Type: wire.MsgHello, Src: 1, Dst: wire.StationBroadcast, Seq: 99})
	f.sim.Run()
	if len(f.got[1]) != 4 || len(f.got[2]) != 1 {
		t.Fatalf("broadcast after filters: %d, %d", len(f.got[1]), len(f.got[2]))
	}
}

// TestSubscriptionUpdateRecompiles: withdrawing a subscription and
// recompiling changes the data plane.
func TestSubscriptionUpdateRecompiles(t *testing.T) {
	f := newPubsubFabric(t)
	e := NewEngine()
	id, err := e.Subscribe(EqType(wire.MsgMem), p4sim.Action{Type: p4sim.ActForward, Port: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := NewFilterTable("subs", p4sim.TableConfig{MemoryBytes: -1})
	if err := e.CompileTo(tb); err != nil {
		t.Fatal(err)
	}
	f.sw.SetFilterTable(tb)

	f.publish(t, wire.Header{Type: wire.MsgMem, Src: 1, Dst: 99, Seq: 1})
	f.sim.Run()
	if len(f.got[2]) != 1 {
		t.Fatalf("pre-withdraw delivery: %d", len(f.got[2]))
	}

	if !e.Unsubscribe(id) {
		t.Fatal("unsubscribe failed")
	}
	if err := e.CompileTo(tb); err != nil {
		t.Fatal(err)
	}
	f.publish(t, wire.Header{Type: wire.MsgMem, Src: 1, Dst: 99, Seq: 2})
	f.sim.Run()
	// With no filter hit and unknown unicast, the frame floods — but
	// it must not be a *filtered* delivery.
	if f.sw.Counters().FilterHits != 1 {
		t.Fatalf("FilterHits = %d after withdraw", f.sw.Counters().FilterHits)
	}
}
