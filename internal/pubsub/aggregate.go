package pubsub

import (
	"fmt"
	"slices"

	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

// ShardRoute binds one object-ID prefix to a forwarding action — the
// aggregated-rule form of §3.2's hierarchical identifier overlay:
// a switch routes a whole shard of the ID space with one ternary
// entry instead of one exact entry per object.
type ShardRoute struct {
	Prefix oid.Prefix
	Action p4sim.Action
}

// AggregateRoutes merges sibling prefixes that share an action into
// their parent, repeatedly, until no merge applies. Input routes must
// be non-overlapping (e.g. the equal-length shard partition a
// placement.Sharder produces); under that precondition the merge is
// exact — a parent rule replaces exactly the union of its two
// children, so no ID changes its action. The returned slice is sorted
// by (bits, prefix) and is typically far smaller than the input when
// neighboring shards land on the same egress port.
func AggregateRoutes(routes []ShardRoute) []ShardRoute {
	out := slices.Clone(routes)
	for {
		slices.SortFunc(out, func(a, b ShardRoute) int {
			if a.Prefix.Bits != b.Prefix.Bits {
				return a.Prefix.Bits - b.Prefix.Bits
			}
			if a.Prefix.ID != b.Prefix.ID {
				if a.Prefix.ID.Less(b.Prefix.ID) {
					return -1
				}
				return 1
			}
			return 0
		})
		merged := out[:0]
		changed := false
		for i := 0; i < len(out); i++ {
			if i+1 < len(out) && out[i].Prefix.Bits == out[i+1].Prefix.Bits &&
				out[i].Prefix.Bits > 0 && out[i].Action == out[i+1].Action {
				b := out[i].Prefix.Bits
				parent := oid.MakePrefix(out[i].Prefix.ID, b-1)
				if out[i].Prefix.ID != out[i+1].Prefix.ID && parent.Matches(out[i+1].Prefix.ID) {
					merged = append(merged, ShardRoute{Prefix: parent, Action: out[i].Action})
					changed = true
					i++ // consumed the sibling
					continue
				}
			}
			merged = append(merged, out[i])
		}
		out = merged
		if !changed {
			return out
		}
	}
}

// CompileShardRoutes clears table (which must use the FilterKeys
// schema) and installs one ternary entry per route: the object field
// under the prefix mask, gated on FlagRouteOnObject so aggregated
// rules steer only object-routed requests — never unicast responses,
// which also carry the object ID in their header. Longer prefixes get
// higher priority, giving longest-prefix-match semantics when routes
// of mixed length coexist after aggregation.
func CompileShardRoutes(table *p4sim.Table, routes []ShardRoute) error {
	table.Clear()
	for _, r := range routes {
		if err := table.Insert(shardEntry(r)); err != nil {
			return fmt.Errorf("pubsub: shard route %v: %w", r.Prefix, err)
		}
	}
	return nil
}

// shardEntry builds the FilterKeys-schema entry for one shard route.
func shardEntry(r ShardRoute) p4sim.Entry {
	flag := wire.ValueOf(uint64(wire.FlagRouteOnObject))
	match := make([]p4sim.KeyValue, len(FilterKeys()))
	for i, k := range FilterKeys() {
		switch k.Field {
		case wire.FieldFlags:
			match[i] = p4sim.KeyValue{Value: flag, Mask: flag}
		case wire.FieldObject:
			match[i] = p4sim.KeyValue{
				Value: wire.ValueOfID(r.Prefix.ID),
				Mask:  prefixMask(wire.FieldObject.Width(), r.Prefix.Bits),
			}
		}
	}
	return p4sim.Entry{Match: match, Priority: r.Prefix.Bits, Action: r.Action}
}

// InstallShardRoute (re)installs a single shard route without clearing
// the table: any existing entry with the same match is replaced first,
// so the call is idempotent. The sharded scheme's shard manager uses
// it to restore rules the eviction policy displaced.
func InstallShardRoute(table *p4sim.Table, r ShardRoute) error {
	e := shardEntry(r)
	table.Delete(e.Match)
	if err := table.Insert(e); err != nil {
		return fmt.Errorf("pubsub: shard route %v: %w", r.Prefix, err)
	}
	return nil
}

// MatchShardRoutes evaluates routes in longest-prefix-match order for
// an object ID — the reference semantics CompileShardRoutes must
// reproduce in the table (the fuzz target checks them against each
// other).
func MatchShardRoutes(routes []ShardRoute, id oid.ID) (p4sim.Action, bool) {
	best := -1
	var act p4sim.Action
	for _, r := range routes {
		if r.Prefix.Matches(id) && r.Prefix.Bits > best {
			best = r.Prefix.Bits
			act = r.Action
		}
	}
	return act, best >= 0
}
