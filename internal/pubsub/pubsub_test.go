package pubsub

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

var gen = oid.NewSeededGenerator(31)

func filterTable(t *testing.T) *p4sim.Table {
	t.Helper()
	tb, err := NewFilterTable("filters", p4sim.TableConfig{MemoryBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestEqEval(t *testing.T) {
	id := gen.New()
	p := EqObject(wire.ValueOfID(id))
	if !p.Eval(&wire.Header{Object: id}) {
		t.Fatal("Eq miss")
	}
	if p.Eval(&wire.Header{Object: gen.New()}) {
		t.Fatal("Eq false hit")
	}
	if EqType(wire.MsgDiscover).Eval(&wire.Header{Type: wire.MsgMem}) {
		t.Fatal("EqType false hit")
	}
}

func TestMaskEval(t *testing.T) {
	p := Mask(wire.FieldFlags,
		wire.ValueOf(uint64(wire.FlagReliable)),
		wire.ValueOf(uint64(wire.FlagReliable)))
	if !p.Eval(&wire.Header{Flags: wire.FlagReliable | wire.FlagResponse}) {
		t.Fatal("mask miss")
	}
	if p.Eval(&wire.Header{Flags: wire.FlagResponse}) {
		t.Fatal("mask false hit")
	}
}

func TestPrefixEval(t *testing.T) {
	base := oid.ID{Hi: 0xABCD_0000_0000_0000}
	p := Prefix(wire.FieldObject, wire.ValueOfID(base), 16)
	if !p.Eval(&wire.Header{Object: oid.ID{Hi: 0xABCD_1234_5678_0000, Lo: 99}}) {
		t.Fatal("prefix miss")
	}
	if p.Eval(&wire.Header{Object: oid.ID{Hi: 0xABCE_0000_0000_0000}}) {
		t.Fatal("prefix false hit")
	}
}

func TestPrefixMaskWidths(t *testing.T) {
	// 16-bit field, high 8 bits.
	m := prefixMask(16, 8)
	if m.Lo != 0xFF00 || m.Hi != 0 {
		t.Fatalf("prefixMask(16,8) = %x:%x", m.Hi, m.Lo)
	}
	// 64-bit field, full width.
	m = prefixMask(64, 64)
	if m.Lo != ^uint64(0) {
		t.Fatalf("prefixMask(64,64) = %x", m.Lo)
	}
	// 128-bit field, 72 bits.
	m = prefixMask(128, 72)
	allOnes := ^uint64(0)
	if m.Hi != allOnes || m.Lo != allOnes<<56 {
		t.Fatalf("prefixMask(128,72) = %x:%x", m.Hi, m.Lo)
	}
	// Zero bits = empty mask.
	if prefixMask(64, 0) != (wire.Value{}) {
		t.Fatal("prefixMask(64,0)")
	}
	// Clamp beyond width.
	if prefixMask(8, 50).Lo != 0xFF {
		t.Fatalf("clamp = %x", prefixMask(8, 50).Lo)
	}
}

func TestAndOrTrue(t *testing.T) {
	id := gen.New()
	p := And(EqType(wire.MsgMem), EqObject(wire.ValueOfID(id)))
	if !p.Eval(&wire.Header{Type: wire.MsgMem, Object: id}) {
		t.Fatal("And miss")
	}
	if p.Eval(&wire.Header{Type: wire.MsgAck, Object: id}) {
		t.Fatal("And false hit")
	}
	q := Or(EqType(wire.MsgMem), EqType(wire.MsgAck))
	if !q.Eval(&wire.Header{Type: wire.MsgAck}) || q.Eval(&wire.Header{Type: wire.MsgHello}) {
		t.Fatal("Or wrong")
	}
	if !True().Eval(&wire.Header{}) {
		t.Fatal("True")
	}
	if p.String() == "" || q.String() == "" || True().String() != "true" {
		t.Fatal("String")
	}
}

func TestSubscribeAndSoftwareMatch(t *testing.T) {
	e := NewEngine()
	id1, err := e.Subscribe(EqType(wire.MsgDiscover), p4sim.Action{Type: p4sim.ActForward, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := e.Subscribe(True(), p4sim.Action{Type: p4sim.ActDrop})
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate IDs")
	}
	act, ok := e.Match(&wire.Header{Type: wire.MsgDiscover})
	if !ok || act.Port != 1 {
		t.Fatalf("Match = %+v %v", act, ok)
	}
	act, ok = e.Match(&wire.Header{Type: wire.MsgMem})
	if !ok || act.Type != p4sim.ActDrop {
		t.Fatalf("fallback Match = %+v %v", act, ok)
	}
	if !e.Unsubscribe(id2) || e.Unsubscribe(id2) {
		t.Fatal("Unsubscribe")
	}
	if _, ok := e.Match(&wire.Header{Type: wire.MsgMem}); ok {
		t.Fatal("match after unsubscribe")
	}
	if len(e.Subscriptions()) != 1 {
		t.Fatal("Subscriptions")
	}
}

func TestSubscribeRejectsUnsatisfiable(t *testing.T) {
	e := NewEngine()
	contradiction := And(EqType(wire.MsgMem), EqType(wire.MsgAck))
	if _, err := e.Subscribe(contradiction, p4sim.Action{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileToTable(t *testing.T) {
	e := NewEngine()
	id := gen.New()
	e.Subscribe(And(EqType(wire.MsgMem), EqObject(wire.ValueOfID(id))),
		p4sim.Action{Type: p4sim.ActForward, Port: 2})
	e.Subscribe(EqType(wire.MsgMem), p4sim.Action{Type: p4sim.ActForward, Port: 9})
	tb := filterTable(t)
	if err := e.CompileTo(tb); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("table entries = %d", tb.Len())
	}
	// The more specific subscription must win for the exact object.
	act, ok := tb.Lookup(&wire.Header{Type: wire.MsgMem, Object: id})
	if !ok || act.Port != 2 {
		t.Fatalf("specific lookup = %+v %v", act, ok)
	}
	act, ok = tb.Lookup(&wire.Header{Type: wire.MsgMem, Object: gen.New()})
	if !ok || act.Port != 9 {
		t.Fatalf("general lookup = %+v %v", act, ok)
	}
	if _, ok := tb.Lookup(&wire.Header{Type: wire.MsgAck}); ok {
		t.Fatal("lookup matched unsubscribed type")
	}
}

func TestCompileOrProducesMultipleEntries(t *testing.T) {
	e := NewEngine()
	e.Subscribe(Or(EqType(wire.MsgMem), EqType(wire.MsgAck)),
		p4sim.Action{Type: p4sim.ActForward, Port: 3})
	tb := filterTable(t)
	if err := e.CompileTo(tb); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("entries = %d, want 2 (one per disjunct)", tb.Len())
	}
	for _, typ := range []wire.MsgType{wire.MsgMem, wire.MsgAck} {
		if _, ok := tb.Lookup(&wire.Header{Type: typ}); !ok {
			t.Fatalf("miss for %v", typ)
		}
	}
}

func TestCompileMergesOverlappingMasks(t *testing.T) {
	// Two mask atoms on the same field that agree on overlap.
	p := And(
		Mask(wire.FieldFlags, wire.ValueOf(0b01), wire.ValueOf(0b01)),
		Mask(wire.FieldFlags, wire.ValueOf(0b10), wire.ValueOf(0b10)),
	)
	e := NewEngine()
	if _, err := e.Subscribe(p, p4sim.Action{Type: p4sim.ActForward, Port: 1}); err != nil {
		t.Fatal(err)
	}
	tb := filterTable(t)
	if err := e.CompileTo(tb); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Lookup(&wire.Header{Flags: 0b11}); !ok {
		t.Fatal("merged mask miss")
	}
	if _, ok := tb.Lookup(&wire.Header{Flags: 0b01}); ok {
		t.Fatal("merged mask matched partial flags")
	}
}

func TestDistributionOverOr(t *testing.T) {
	// (A || B) && C → 2 conjunctions.
	id := gen.New()
	p := And(Or(EqType(wire.MsgMem), EqType(wire.MsgRPC)), EqObject(wire.ValueOfID(id)))
	e := NewEngine()
	e.Subscribe(p, p4sim.Action{Type: p4sim.ActForward, Port: 5})
	tb := filterTable(t)
	if err := e.CompileTo(tb); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("entries = %d", tb.Len())
	}
	if _, ok := tb.Lookup(&wire.Header{Type: wire.MsgRPC, Object: id}); !ok {
		t.Fatal("distributed term miss")
	}
	if _, ok := tb.Lookup(&wire.Header{Type: wire.MsgRPC, Object: gen.New()}); ok {
		t.Fatal("object constraint lost in distribution")
	}
}

func TestPropertyCompiledMatchesEval(t *testing.T) {
	// Table lookup must agree with software Eval on random headers.
	f := func(typ uint8, flags uint16, src, dst, hi, lo uint64) bool {
		h := &wire.Header{
			Type: wire.MsgType(typ % 10), Flags: wire.Flags(flags),
			Src: wire.StationID(src % 8), Dst: wire.StationID(dst % 8),
			Object: oid.ID{Hi: hi % 4, Lo: lo % 4},
		}
		e := NewEngine()
		pred := Or(
			And(EqType(wire.MsgMem), Eq(wire.FieldSrc, wire.ValueOf(src%8))),
			Eq(wire.FieldObject, wire.ValueOfID(oid.ID{Hi: 1, Lo: 2})),
		)
		e.Subscribe(pred, p4sim.Action{Type: p4sim.ActForward, Port: 1})
		tb, err := NewFilterTable("p", p4sim.TableConfig{MemoryBytes: -1})
		if err != nil {
			return false
		}
		if err := e.CompileTo(tb); err != nil {
			return false
		}
		_, hwHit := tb.Lookup(h)
		return hwHit == pred.Eval(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredStrings(t *testing.T) {
	ps := []Pred{
		Eq(wire.FieldSrc, wire.ValueOf(1)),
		Mask(wire.FieldFlags, wire.ValueOf(1), wire.ValueOf(1)),
		Prefix(wire.FieldObject, wire.ValueOfID(gen.New()), 16),
		And(True(), True()),
		Or(True()),
	}
	for _, p := range ps {
		if p.String() == "" {
			t.Fatalf("empty String for %T", p)
		}
	}
}
