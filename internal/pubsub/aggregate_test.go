package pubsub

import (
	"math/rand"
	"testing"

	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

func fwd(port int) p4sim.Action { return p4sim.Action{Type: p4sim.ActForward, Port: port} }

// shardPartition builds the 2^bits equal-length shard prefixes with
// actions chosen by pick.
func shardPartition(bits int, pick func(shard int) p4sim.Action) []ShardRoute {
	routes := make([]ShardRoute, 1<<bits)
	for s := range routes {
		var id oid.ID
		if bits > 0 {
			id.Hi = uint64(s) << (64 - uint(bits))
		}
		routes[s] = ShardRoute{Prefix: oid.MakePrefix(id, bits), Action: pick(s)}
	}
	return routes
}

func TestAggregateRoutesCollapsesUniform(t *testing.T) {
	routes := shardPartition(6, func(int) p4sim.Action { return fwd(1) })
	agg := AggregateRoutes(routes)
	if len(agg) != 1 || agg[0].Prefix.Bits != 0 {
		t.Fatalf("uniform 64-shard partition aggregated to %d routes (want 1 catch-all), got %v", len(agg), agg)
	}
}

func TestAggregateRoutesHalves(t *testing.T) {
	// Top half of the space to port 1, bottom half to port 2: 64
	// shards must aggregate to exactly two /1 rules.
	routes := shardPartition(6, func(s int) p4sim.Action {
		if s < 32 {
			return fwd(1)
		}
		return fwd(2)
	})
	agg := AggregateRoutes(routes)
	if len(agg) != 2 {
		t.Fatalf("two-port partition aggregated to %d routes, want 2: %v", len(agg), agg)
	}
	for _, r := range agg {
		if r.Prefix.Bits != 1 {
			t.Fatalf("aggregated route %v is not a /1", r.Prefix)
		}
	}
}

func TestAggregateRoutesPreservesSemantics(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	routes := shardPartition(8, func(int) p4sim.Action { return fwd(rnd.Intn(3)) })
	agg := AggregateRoutes(routes)
	if len(agg) >= len(routes) {
		t.Fatalf("aggregation did not shrink: %d -> %d", len(routes), len(agg))
	}
	for i := 0; i < 5000; i++ {
		id := oid.ID{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
		want, wok := MatchShardRoutes(routes, id)
		got, gok := MatchShardRoutes(agg, id)
		if wok != gok || want != got {
			t.Fatalf("id %v: original %v/%v, aggregated %v/%v", id, want, wok, got, gok)
		}
	}
}

func TestCompileShardRoutesFlagGate(t *testing.T) {
	table, err := NewFilterTable("t", p4sim.TableConfig{MemoryBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	routes := shardPartition(2, func(s int) p4sim.Action { return fwd(s) })
	if err := CompileShardRoutes(table, routes); err != nil {
		t.Fatal(err)
	}
	id := oid.ID{Hi: 3 << 62} // shard 3
	h := &wire.Header{Flags: wire.FlagRouteOnObject, Object: id}
	act, ok := table.Lookup(h)
	if !ok || act.Port != 3 {
		t.Fatalf("flagged lookup = %v/%v, want forward port 3", act, ok)
	}
	// A response frame carries the same object ID but no
	// route-on-object flag: shard rules must not steer it.
	h2 := &wire.Header{Flags: wire.FlagResponse, Object: id, Dst: 7}
	if act, ok := table.Lookup(h2); ok {
		t.Fatalf("unflagged frame matched a shard rule: %v", act)
	}
}

// buildTriePartition derives a non-overlapping prefix partition from a
// byte stream: each byte decides split (descend both children) or
// leaf (emit a route with an action derived from the byte). This is
// the fuzz generator — any byte string yields valid, non-overlapping
// input.
func buildTriePartition(data []byte, maxDepth int) []ShardRoute {
	var routes []ShardRoute
	pos := 0
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[pos%len(data)]
		pos++
		return b
	}
	var walk func(p oid.Prefix)
	walk = func(p oid.Prefix) {
		b := next()
		if p.Bits < maxDepth && b&1 == 1 {
			// Split into the two children.
			l := oid.MakePrefix(p.ID, p.Bits+1)
			rid := p.ID
			if p.Bits < 64 {
				rid.Hi |= 1 << (63 - uint(p.Bits))
			} else {
				rid.Lo |= 1 << (127 - uint(p.Bits))
			}
			r := oid.MakePrefix(rid, p.Bits+1)
			walk(l)
			walk(r)
			return
		}
		routes = append(routes, ShardRoute{Prefix: p, Action: fwd(int(b>>1) % 5)})
	}
	walk(oid.Prefix{})
	return routes
}

// FuzzCompileShardRoutes checks the central aggregation safety
// property: after AggregateRoutes + CompileShardRoutes, no rule may
// shadow a more-specific live entry — every object ID must get
// exactly the action the original (unaggregated) route set gives it,
// and unflagged frames must never match.
func FuzzCompileShardRoutes(f *testing.F) {
	f.Add([]byte{1, 1, 0, 2, 1, 4, 6})
	f.Add([]byte{255, 255, 255, 0})
	f.Add([]byte{0})
	f.Add([]byte{1, 3, 5, 7, 9, 11, 13, 15, 2, 4, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		routes := buildTriePartition(data, 10)
		agg := AggregateRoutes(routes)
		if len(agg) > len(routes) {
			t.Fatalf("aggregation grew the rule set: %d -> %d", len(routes), len(agg))
		}
		table, err := NewFilterTable("fuzz", p4sim.TableConfig{MemoryBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := CompileShardRoutes(table, agg); err != nil {
			t.Fatal(err)
		}
		seed := int64(len(data))
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		rnd := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			id := oid.ID{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
			want, wok := MatchShardRoutes(routes, id)
			act, ok := table.Lookup(&wire.Header{Flags: wire.FlagRouteOnObject, Object: id})
			if ok != wok || (ok && act != want) {
				t.Fatalf("id %v: table %v/%v, reference %v/%v (aggregated rule shadowed a more-specific entry)",
					id, act, ok, want, wok)
			}
			if _, ok := table.Lookup(&wire.Header{Object: id, Dst: 3}); ok {
				t.Fatalf("unflagged frame matched shard rule for %v", id)
			}
		}
	})
}
