package realnet_test

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/backend/conformance"
	"repro/internal/realnet"
)

// TestBackendConformance runs the shared backend contract suite over
// real loopback UDP sockets: the same FIFO, refcount, and timer
// guarantees the simulator provides, now under the race detector with
// genuine reader-goroutine concurrency.
func TestBackendConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Fixture {
		rn := realnet.NewCluster()
		a, err := rn.NewLink("a", 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rn.NewLink("b", 2)
		if err != nil {
			rn.Close()
			t.Fatal(err)
		}
		rn.Start()
		return &conformance.Fixture{
			A: a, B: b,
			StA: 1, StB: 2,
			Settle: func(d backend.Duration) { rn.Sleep(d) },
			Close:  func() { rn.Close() },
		}
	})
}
