// Package realnet implements the backend seam over real UDP sockets
// and wall-clock time: the same protocol stack that runs on the
// deterministic simulator runs here against the kernel's network path,
// real scheduling jitter, and real backpressure.
//
// A Cluster is a set of localhost UDP endpoints (one per node, bound
// to 127.0.0.1:0) with an in-process peer table mapping station IDs to
// socket addresses — the moral equivalent of the simulator's fabric,
// minus the fabric: there are no switches, so only destination-routed
// frames (the E2E discovery scheme) work. Broadcast frames unicast to
// every peer, mirroring the simulator's flood semantics (the sender is
// excluded).
//
// Concurrency model: one cluster-wide upcall mutex serializes every
// frame delivery and timer callback, preserving the single-threaded
// execution model the stack was written against on the simulator.
// Reader goroutines (one per link) and fired timers take the lock
// before calling up; external code enters through Link.Exec. This
// trades parallelism for fidelity to the sim's semantics — the point
// of this backend is an honest kernel path, not a fast one.
package realnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/wire"
)

// MaxDatagram is the largest UDP payload deliverable over IPv4
// (65535 - 20 IP - 8 UDP): the realnet link MTU. Senders of large
// transfers size fragments to it via backend.Link.MTU.
const MaxDatagram = 65507

// Cluster is a set of UDP links sharing one upcall lock, one wall
// clock, and one peer table.
type Cluster struct {
	mu    sync.Mutex // the upcall lock: serializes deliveries, timers, Exec
	epoch time.Time
	links []*Link
	peers map[wire.StationID]*net.UDPAddr
	stats backend.NetStats // guarded by mu

	started bool
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// NewCluster creates an empty cluster. Add links with NewLink, wire
// the stack onto them, then call Start to begin delivering frames.
func NewCluster() *Cluster {
	return &Cluster{
		epoch: time.Now(),
		peers: make(map[wire.StationID]*net.UDPAddr),
	}
}

// Clock returns the cluster's wall clock (zero at cluster creation).
func (c *Cluster) Clock() backend.Clock { return (*wallClock)(c) }

// Stats returns a copy of the frame counters. Call from outside the
// upcall context (it takes the upcall lock).
func (c *Cluster) Stats() backend.NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the frame counters.
func (c *Cluster) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = backend.NetStats{}
}

// NewLink binds a fresh localhost UDP socket for station st and
// registers it in the peer table. Call before Start.
func (c *Cluster) NewLink(name string, st wire.StationID) (*Link, error) {
	if c.started {
		return nil, fmt.Errorf("realnet: NewLink after Start")
	}
	if _, dup := c.peers[st]; dup {
		return nil, fmt.Errorf("realnet: station %v already has a link", st)
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("realnet: bind %s: %w", name, err)
	}
	l := &Link{cluster: c, name: name, station: st, conn: conn}
	c.links = append(c.links, l)
	c.peers[st] = conn.LocalAddr().(*net.UDPAddr)
	return l, nil
}

// Start launches one reader goroutine per link. Frames arriving
// before Start are buffered by the kernel socket, not lost.
func (c *Cluster) Start() {
	c.started = true
	for _, l := range c.links {
		c.wg.Add(1)
		go l.readLoop(&c.wg)
	}
}

// Close shuts every socket down and waits for the reader goroutines
// to exit. Timers still pending may fire afterwards; their sends fail
// quietly against the closed sockets.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, l := range c.links {
		l.conn.Close()
	}
	c.wg.Wait()
	return nil
}

// Sleep blocks for d of wall time — the realnet analogue of advancing
// the simulator's clock. Deliveries and timers proceed underneath.
func (c *Cluster) Sleep(d backend.Duration) { time.Sleep(time.Duration(d)) }

// --- clock ---

// wallClock implements backend.Clock on time.Since(epoch). Timer
// callbacks run under the cluster's upcall lock, preserving the
// single-threaded model the stack assumes.
type wallClock Cluster

func (w *wallClock) Now() backend.Time {
	return backend.Time(time.Since(w.epoch))
}

func (w *wallClock) Schedule(d backend.Duration, fn func()) {
	w.AfterFunc(d, fn)
}

func (w *wallClock) AfterFunc(d backend.Duration, fn func()) backend.Timer {
	t := &wallTimer{c: (*Cluster)(w), fn: fn}
	t.arm(d)
	return t
}

// wallTimer wraps time.Timer with a stop flag checked under the
// upcall lock. Stop itself takes no locks, so it is safe to call from
// inside upcalls without deadlocking against a firing timer. It
// implements backend.ResettableTimer: Reset re-arms the same callback,
// and a generation counter makes any in-flight firing of the previous
// arming a no-op (the check runs under the upcall lock, so a Reset
// completed inside an upcall wins against a concurrently fired timer,
// exactly as on the simulator).
type wallTimer struct {
	stopped atomic.Bool
	gen     atomic.Uint32
	c       *Cluster
	fn      func()
	t       *time.Timer
}

// arm schedules a firing for the timer's current generation.
func (t *wallTimer) arm(d backend.Duration) {
	if d < 0 {
		d = 0
	}
	myGen := t.gen.Load()
	t.t = time.AfterFunc(time.Duration(d), func() {
		c := t.c
		c.mu.Lock()
		defer c.mu.Unlock()
		// Re-check under the lock: a Stop or Reset that completed
		// inside an upcall must win against a concurrently fired timer.
		if t.gen.Load() != myGen || c.closed.Load() || t.stopped.Swap(true) {
			return
		}
		t.fn()
	})
}

func (t *wallTimer) Stop() bool {
	if t.stopped.Swap(true) {
		return false
	}
	t.t.Stop() // best-effort; the flag is what guarantees fn won't run
	return true
}

// Reset implements backend.ResettableTimer: it re-arms the callback
// after d whether or not the timer already fired or was stopped, and
// reports whether a pending firing was superseded. Call only from
// upcall context (under the cluster lock), the same single-owner
// contract as the simulator's Timer.
func (t *wallTimer) Reset(d backend.Duration) bool {
	pending := !t.stopped.Load()
	t.gen.Add(1) // invalidate any in-flight firing of the old arming
	if t.t != nil {
		t.t.Stop()
	}
	t.stopped.Store(false)
	t.arm(d)
	return pending
}

// --- link ---

// Link is one node's UDP attachment: implements backend.Link.
type Link struct {
	cluster *Cluster
	name    string
	station wire.StationID
	conn    *net.UDPConn
	onFrame func(fr backend.Frame)
}

// Name returns the link's node name.
func (l *Link) Name() string { return l.name }

// Addr returns the link's bound UDP address.
func (l *Link) Addr() *net.UDPAddr { return l.conn.LocalAddr().(*net.UDPAddr) }

// SetOnFrame implements backend.Link. Install handlers before Start
// (or inside Exec) — the reader goroutine reads it under the lock.
func (l *Link) SetOnFrame(fn func(fr backend.Frame)) { l.onFrame = fn }

// Clock implements backend.Link.
func (l *Link) Clock() backend.Clock { return l.cluster.Clock() }

// Exec implements backend.Link: fn runs holding the cluster's upcall
// lock, mutually excluded with every frame delivery and timer.
func (l *Link) Exec(fn func()) {
	l.cluster.mu.Lock()
	defer l.cluster.mu.Unlock()
	fn()
}

// MTU implements backend.Link: one frame per datagram.
func (l *Link) MTU() int { return MaxDatagram }

// SendBuf implements backend.Link: the frame is routed on its wire
// destination station — unicast to the peer's socket, or one unicast
// per peer for broadcasts (the fabric-less flood). Unroutable frames
// (unknown station, StationAny with no fabric to route on object ID,
// frames too short for a header) are counted as drops, exactly like a
// sim send on a dead port. The kernel copies the bytes out in
// WriteToUDP, so buf's reference is released before returning.
func (l *Link) SendBuf(fr backend.Frame, buf backend.FrameBuffer) {
	c := l.cluster
	c.stats.FramesSent++
	defer func() {
		if buf != nil {
			buf.Release()
		}
	}()
	dst, ok := wire.PeekDst(fr)
	if !ok {
		c.stats.FramesDropped++
		return
	}
	if dst == wire.StationBroadcast {
		sent := false
		for st, addr := range c.peers {
			if st == l.station {
				continue
			}
			if _, err := l.conn.WriteToUDP(fr, addr); err != nil {
				c.stats.FramesDropped++
			} else {
				sent = true
			}
		}
		if !sent {
			c.stats.FramesDropped++
		}
		return
	}
	addr, known := c.peers[dst]
	if !known { // includes StationAny: no fabric routes on object ID here
		c.stats.FramesDropped++
		return
	}
	if _, err := l.conn.WriteToUDP(fr, addr); err != nil {
		c.stats.FramesDropped++
	}
}

// readLoop is the link's reader goroutine: one reusable buffer, one
// upcall per datagram under the cluster lock. The upcall borrows the
// buffer for its duration (the same contract as the simulator), so a
// single buffer per link suffices.
func (l *Link) readLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	buf := make([]byte, MaxDatagram)
	c := l.cluster
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		c.mu.Lock()
		c.stats.FramesDelivered++
		c.stats.BytesDelivered += uint64(n)
		if l.onFrame != nil {
			l.onFrame(buf[:n])
		}
		c.mu.Unlock()
	}
}
