// Package raft replicates the control plane's state machine with a
// compact Raft: randomized-timeout leader election, log replication
// with follower catch-up, and a commit index advanced only through
// current-term entries (§5.4.2 of the Raft paper). It exists to make
// the paper's point structural rather than rhetorical: consensus is
// written purely against the backend seam — backend.Clock for timers,
// a transport.Endpoint for frames — so the identical implementation
// runs deterministically under netsim and over UDP under realnet.
//
// Scope is deliberately small: no snapshots, no membership change, no
// disk (a "crash" loses volatile state but keeps term/vote/log, which
// models a persisted store). Messages travel as unreliable MsgRaft
// frames; heartbeats double as retransmission, so no reliable
// transport machinery is layered underneath.
//
// Concurrency: the backend serializes a node's upcalls (frames and
// timers), so Node has no locks. All methods must be called from the
// node's upcall context.
package raft

import (
	"fmt"
	"sort"

	"repro/internal/backend"
	"repro/internal/gasperr"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrNotLeader reports that a proposal reached a replica that is not
// the current leader. It wraps gasperr.ErrNotLeader so callers above
// the discovery layer classify it without importing raft.
var ErrNotLeader = fmt.Errorf("raft: %w", gasperr.ErrNotLeader)

// State is a replica's role in the current term.
type State int

// Raft roles.
const (
	Follower State = iota
	Candidate
	Leader
)

// String names the state for traces and telemetry.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Entry is one log slot: the term it was appended under and an opaque
// command for the state machine. An empty Cmd is the no-op a fresh
// leader appends to commit its term (it is never handed to Apply).
type Entry struct {
	Term uint64
	Cmd  []byte
}

// Config parameterizes a replica.
type Config struct {
	// Peers lists every replica's station, including this one. All
	// replicas must agree on the set (no membership change).
	Peers []wire.StationID
	// EP is the node's transport endpoint; its station identifies this
	// replica within Peers, its clock drives all timers.
	EP *transport.Endpoint
	// ElectionTimeout is the base election timeout T; each arming
	// draws uniformly from [T, 2T). Zero means 1.5ms.
	ElectionTimeout backend.Duration
	// Heartbeat is the leader's AppendEntries period (also the
	// retransmission period for lagging followers). Zero means 150µs.
	Heartbeat backend.Duration
	// Seed perturbs the election-timeout PRNG so replicas with the
	// same config do not tie forever.
	Seed uint64
	// Apply consumes a committed command, in log order, exactly once
	// per (index, restart): after a crash the volatile applied cursor
	// resets and the log replays, so Apply must be idempotent.
	Apply func(index uint64, cmd []byte)
	// OnLeaderChange (optional) fires when this replica learns of a
	// new leader; self reports whether that leader is this replica.
	OnLeaderChange func(leader wire.StationID, self bool)
}

// Counters are monotonic per-replica event counts (survive Restart,
// reset only with a new Node).
type Counters struct {
	ElectionsStarted uint64 // timeouts that began a candidacy
	BecameLeader     uint64 // elections this replica won
	VotesGranted     uint64 // ballots granted to some candidate
	Proposals        uint64 // commands accepted while leader
	EntriesApplied   uint64 // log entries applied (incl. no-ops)
	FramesSent       uint64 // raft frames transmitted
}

// Node is one Raft replica. Create with New (which arms the election
// timer immediately), crash with Stop, revive with Restart.
type Node struct {
	cfg    Config
	ep     *transport.Endpoint
	clock  backend.Clock
	id     wire.StationID
	others []wire.StationID // peers minus self, in Peers order
	quorum int

	// Persistent state: survives Stop/Restart (models stable storage).
	currentTerm uint64
	voted       bool           // votedFor is only meaningful when set; station 0
	votedFor    wire.StationID // is wire.StationAny, so a flag is needed
	log         []Entry        // log[i] holds index i+1 (1-based protocol indexing)
	termsLed    []uint64       // every term this replica won — checker evidence

	// Volatile state: lost on Stop.
	running     bool
	state       State
	leader      wire.StationID // 0 = unknown
	commitIndex uint64
	lastApplied uint64
	votes       map[wire.StationID]bool
	nextIndex   map[wire.StationID]uint64
	matchIndex  map[wire.StationID]uint64
	pending     map[uint64]func(index uint64, err error)

	electionTimer  backend.Timer
	heartbeatTimer backend.Timer
	rngState       uint64
	ctr            Counters
}

// New creates a replica and starts it as a follower with its election
// timer armed. The caller wires frames in with ep.Mux().Handle(
// wire.MsgRaft, node.HandleFrame).
func New(cfg Config) *Node {
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 1500 * backend.Microsecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 150 * backend.Microsecond
	}
	n := &Node{
		cfg:      cfg,
		ep:       cfg.EP,
		clock:    cfg.EP.Clock(),
		id:       cfg.EP.Station(),
		quorum:   len(cfg.Peers)/2 + 1,
		rngState: cfg.Seed ^ (uint64(cfg.EP.Station()) * 0x9e3779b97f4a7c15),
	}
	for _, p := range cfg.Peers {
		if p != n.id {
			n.others = append(n.others, p)
		}
	}
	n.resetVolatile()
	n.running = true
	n.resetElectionTimer()
	return n
}

func (n *Node) resetVolatile() {
	n.state = Follower
	n.leader = 0
	n.commitIndex = 0
	n.lastApplied = 0
	n.votes = make(map[wire.StationID]bool)
	n.nextIndex = make(map[wire.StationID]uint64)
	n.matchIndex = make(map[wire.StationID]uint64)
	n.pending = make(map[uint64]func(uint64, error))
}

// splitmix64: tiny deterministic PRNG for election jitter, so raft
// depends on neither math/rand nor the simulator's random source.
func (n *Node) rand() uint64 {
	n.rngState += 0x9e3779b97f4a7c15
	z := n.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// --- log accessors (1-based protocol indexing) ---

func (n *Node) lastLogIndex() uint64 { return uint64(len(n.log)) }

// termAt returns the term of log index i (0 for the sentinel index 0
// or anything beyond the log).
func (n *Node) termAt(i uint64) uint64 {
	if i == 0 || i > uint64(len(n.log)) {
		return 0
	}
	return n.log[i-1].Term
}

// --- timers ---

// Election and heartbeat timers are daemon timers: they perpetually
// re-arm, and must not keep Sim.Run from draining after a workload
// quiesces (see backend.DaemonClock).

func (n *Node) resetElectionTimer() {
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	d := n.cfg.ElectionTimeout + backend.Duration(n.rand()%uint64(n.cfg.ElectionTimeout))
	n.electionTimer = backend.AfterFuncDaemon(n.clock, d, n.onElectionTimeout)
}

func (n *Node) armHeartbeat() {
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
	}
	n.heartbeatTimer = backend.AfterFuncDaemon(n.clock, n.cfg.Heartbeat, n.onHeartbeat)
}

func (n *Node) stopTimers() {
	if n.electionTimer != nil {
		n.electionTimer.Stop()
		n.electionTimer = nil
	}
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
		n.heartbeatTimer = nil
	}
}

func (n *Node) onElectionTimeout() {
	if !n.running || n.state == Leader {
		return
	}
	n.startElection()
}

func (n *Node) onHeartbeat() {
	if !n.running || n.state != Leader {
		return
	}
	n.broadcastAppend()
	n.armHeartbeat()
}

// --- elections ---

func (n *Node) startElection() {
	n.state = Candidate
	n.currentTerm++
	n.voted = true
	n.votedFor = n.id
	n.leader = 0
	n.votes = map[wire.StationID]bool{n.id: true}
	n.ctr.ElectionsStarted++
	if len(n.votes) >= n.quorum { // single-replica degenerate case
		n.becomeLeader()
		return
	}
	req := encodeVote(voteMsg{
		term:         n.currentTerm,
		lastLogIndex: n.lastLogIndex(),
		lastLogTerm:  n.termAt(n.lastLogIndex()),
	})
	for _, p := range n.others {
		n.send(p, req)
	}
	n.resetElectionTimer()
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.ctr.BecameLeader++
	n.termsLed = append(n.termsLed, n.currentTerm)
	for _, p := range n.others {
		n.nextIndex[p] = n.lastLogIndex() + 1
		n.matchIndex[p] = 0
	}
	// Append a no-op so the new term has an entry to commit: committing
	// it transitively commits every earlier-term entry beneath it
	// (the §5.4.2 rule forbids counting replicas for old-term entries
	// directly).
	n.log = append(n.log, Entry{Term: n.currentTerm})
	n.advanceCommit()
	n.broadcastAppend()
	n.armHeartbeat()
	n.setLeader(n.id)
}

// stepDown moves to follower in term (which must be >= currentTerm).
// A deposed leader fails its in-flight proposals: they may yet commit
// under the new leader, but this replica can no longer promise it.
func (n *Node) stepDown(term uint64) {
	if term > n.currentTerm {
		n.currentTerm = term
		n.voted = false
		n.votedFor = 0
	}
	wasLeader := n.state == Leader
	n.state = Follower
	n.leader = 0
	n.votes = make(map[wire.StationID]bool)
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
		n.heartbeatTimer = nil
	}
	if wasLeader {
		n.failPending(ErrNotLeader)
	}
	n.resetElectionTimer()
}

func (n *Node) setLeader(l wire.StationID) {
	if n.leader == l {
		return
	}
	n.leader = l
	if n.cfg.OnLeaderChange != nil {
		n.cfg.OnLeaderChange(l, l == n.id)
	}
}

func (n *Node) failPending(err error) {
	if len(n.pending) == 0 {
		return
	}
	idxs := make([]uint64, 0, len(n.pending))
	for i := range n.pending {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		done := n.pending[i]
		delete(n.pending, i)
		done(i, err)
	}
}

// --- replication ---

func (n *Node) broadcastAppend() {
	for _, p := range n.others {
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(p wire.StationID) {
	ni := n.nextIndex[p]
	if ni < 1 {
		ni = 1
	}
	m := appendMsg{
		term:         n.currentTerm,
		prevLogIndex: ni - 1,
		prevLogTerm:  n.termAt(ni - 1),
		leaderCommit: n.commitIndex,
	}
	for i := ni; i <= n.lastLogIndex() && len(m.entries) < maxAppendEntries; i++ {
		m.entries = append(m.entries, n.log[i-1])
	}
	n.send(p, encodeAppend(m))
}

// advanceCommit moves commitIndex to the highest index replicated on
// a quorum whose entry is from the current term (§5.4.2: a leader
// never counts replicas to commit an old-term entry; the no-op it
// appended on election covers them transitively).
func (n *Node) advanceCommit() {
	for idx := n.lastLogIndex(); idx > n.commitIndex; idx-- {
		if n.termAt(idx) != n.currentTerm {
			break
		}
		count := 1 // self
		for _, p := range n.others {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count >= n.quorum {
			n.commitIndex = idx
			break
		}
	}
	n.applyEntries()
}

// applyEntries feeds newly committed commands to the state machine in
// log order, then resolves any proposal waiting on them.
func (n *Node) applyEntries() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		e := n.log[n.lastApplied-1]
		if len(e.Cmd) > 0 && n.cfg.Apply != nil {
			n.cfg.Apply(n.lastApplied, e.Cmd)
		}
		n.ctr.EntriesApplied++
		if done, ok := n.pending[n.lastApplied]; ok {
			delete(n.pending, n.lastApplied)
			done(n.lastApplied, nil)
		}
	}
}

// --- message handlers ---

// HandleFrame consumes MsgRaft frames; register it on the endpoint's
// mux. A stopped (crashed) replica silently swallows frames.
func (n *Node) HandleFrame(h *wire.Header, payload []byte) bool {
	if h.Type != wire.MsgRaft {
		return false
	}
	if !n.running || len(payload) == 0 {
		return true
	}
	src := h.Src
	switch payload[0] {
	case rmsgVote:
		if m, err := decodeVote(payload); err == nil {
			n.handleVote(src, m)
		}
	case rmsgVoteReply:
		if m, err := decodeVoteReply(payload); err == nil {
			n.handleVoteReply(src, m)
		}
	case rmsgAppend:
		if m, err := decodeAppend(payload); err == nil {
			n.handleAppend(src, m)
		}
	case rmsgAppendReply:
		if m, err := decodeAppendReply(payload); err == nil {
			n.handleAppendReply(src, m)
		}
	}
	return true
}

func (n *Node) handleVote(src wire.StationID, m voteMsg) {
	if m.term > n.currentTerm {
		n.stepDown(m.term)
	}
	granted := false
	if m.term == n.currentTerm && (!n.voted || n.votedFor == src) && n.logUpToDate(m) {
		granted = true
		n.voted = true
		n.votedFor = src
		n.ctr.VotesGranted++
		n.resetElectionTimer()
	}
	n.send(src, encodeVoteReply(voteReplyMsg{term: n.currentTerm, granted: granted}))
}

// logUpToDate implements the §5.4.1 election restriction: grant only
// to candidates whose log is at least as complete as ours.
func (n *Node) logUpToDate(m voteMsg) bool {
	lastTerm := n.termAt(n.lastLogIndex())
	if m.lastLogTerm != lastTerm {
		return m.lastLogTerm > lastTerm
	}
	return m.lastLogIndex >= n.lastLogIndex()
}

func (n *Node) handleVoteReply(src wire.StationID, m voteReplyMsg) {
	if m.term > n.currentTerm {
		n.stepDown(m.term)
		return
	}
	if n.state != Candidate || m.term != n.currentTerm || !m.granted {
		return
	}
	n.votes[src] = true
	if len(n.votes) >= n.quorum {
		n.becomeLeader()
	}
}

func (n *Node) handleAppend(src wire.StationID, m appendMsg) {
	if m.term < n.currentTerm {
		n.send(src, encodeAppendReply(appendReplyMsg{
			term: n.currentTerm, success: false, matchIndex: n.lastLogIndex(),
		}))
		return
	}
	if m.term > n.currentTerm || n.state != Follower {
		n.stepDown(m.term)
	}
	n.setLeader(src)
	n.resetElectionTimer()

	// Consistency check: our log must contain the anchor entry.
	if m.prevLogIndex > n.lastLogIndex() || n.termAt(m.prevLogIndex) != m.prevLogTerm {
		hint := n.lastLogIndex()
		if hint >= m.prevLogIndex && m.prevLogIndex > 0 {
			hint = m.prevLogIndex - 1 // anchor term conflicts: back past it
		}
		n.send(src, encodeAppendReply(appendReplyMsg{
			term: n.currentTerm, success: false, matchIndex: hint,
		}))
		return
	}

	// Append, truncating on the first conflict; entries we already
	// hold with matching terms are left in place (the frame may be a
	// duplicate — Send is unreliable and heartbeats retransmit).
	for i, e := range m.entries {
		idx := m.prevLogIndex + 1 + uint64(i)
		if idx <= n.lastLogIndex() {
			if n.termAt(idx) == e.Term {
				continue
			}
			n.log = n.log[:idx-1]
		}
		n.log = append(n.log, e)
	}
	match := m.prevLogIndex + uint64(len(m.entries))
	if m.leaderCommit > n.commitIndex {
		ci := m.leaderCommit
		if last := n.lastLogIndex(); ci > last {
			ci = last
		}
		n.commitIndex = ci
		n.applyEntries()
	}
	n.send(src, encodeAppendReply(appendReplyMsg{
		term: n.currentTerm, success: true, matchIndex: match,
	}))
}

func (n *Node) handleAppendReply(src wire.StationID, m appendReplyMsg) {
	if m.term > n.currentTerm {
		n.stepDown(m.term)
		return
	}
	if n.state != Leader || m.term != n.currentTerm {
		return
	}
	if m.success {
		if m.matchIndex > n.matchIndex[src] {
			n.matchIndex[src] = m.matchIndex
		}
		n.nextIndex[src] = n.matchIndex[src] + 1
		n.advanceCommit()
		if n.state == Leader && n.nextIndex[src] <= n.lastLogIndex() {
			n.sendAppend(src) // keep streaming catch-up batches
		}
		return
	}
	// Rejected: back off nextIndex using the follower's hint and retry
	// immediately (the heartbeat would retry anyway, this is faster).
	ni := n.nextIndex[src]
	if ni > 1 {
		ni--
	}
	if h := m.matchIndex + 1; h < ni {
		ni = h
	}
	if ni < 1 {
		ni = 1
	}
	n.nextIndex[src] = ni
	n.sendAppend(src)
}

// --- client interface ---

// Propose submits a command for replication. done (optional) fires
// with the entry's log index once the entry commits and has been
// applied, or with an error wrapping gasperr.ErrNotLeader — possibly
// synchronously — if this replica is not (or ceases to be) the
// leader. A proposal that fails with ErrNotLeader may still commit
// under the next leader; proposers needing exactly-once must make
// commands idempotent (the controller's are: announce is a map put).
func (n *Node) Propose(cmd []byte, done func(index uint64, err error)) {
	if !n.running || n.state != Leader {
		if done != nil {
			done(0, ErrNotLeader)
		}
		return
	}
	n.ctr.Proposals++
	n.log = append(n.log, Entry{Term: n.currentTerm, Cmd: cmd})
	idx := n.lastLogIndex()
	if done != nil {
		n.pending[idx] = done
	}
	n.advanceCommit() // commits immediately when quorum == 1
	if n.state == Leader {
		n.broadcastAppend()
	}
}

// Stop crashes the replica: volatile state (role, leadership, commit
// and applied cursors, in-flight proposals) is lost; persistent state
// (term, vote, log, termsLed) survives for Restart. The owner of the
// applied state machine must discard it too, so replay from index 1
// reconstructs it.
func (n *Node) Stop() {
	if !n.running {
		return
	}
	n.running = false
	n.stopTimers()
	n.failPending(ErrNotLeader)
	n.resetVolatile()
}

// Restart revives a stopped replica as a follower. The log replays
// into Apply as the commit index re-advances.
func (n *Node) Restart() {
	if n.running {
		return
	}
	n.running = true
	n.resetVolatile()
	n.resetElectionTimer()
}

// --- accessors ---

// ID returns this replica's station.
func (n *Node) ID() wire.StationID { return n.id }

// Running reports whether the replica is alive (not crashed).
func (n *Node) Running() bool { return n.running }

// State returns the replica's current role.
func (n *Node) State() State { return n.state }

// Term returns the replica's current term.
func (n *Node) Term() uint64 { return n.currentTerm }

// Leader returns the station this replica believes leads, and whether
// it knows one at all.
func (n *Node) Leader() (wire.StationID, bool) { return n.leader, n.leader != 0 }

// CommitIndex returns the highest log index known committed.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LastApplied returns the highest log index fed to Apply.
func (n *Node) LastApplied() uint64 { return n.lastApplied }

// LastLogIndex returns the highest log index held (committed or not).
func (n *Node) LastLogIndex() uint64 { return n.lastLogIndex() }

// EntryInfo returns the term and a content digest (FNV-64a over the
// command) of log index i, for cross-replica prefix comparison by the
// invariant checker.
func (n *Node) EntryInfo(i uint64) (term, digest uint64, ok bool) {
	if i == 0 || i > n.lastLogIndex() {
		return 0, 0, false
	}
	e := n.log[i-1]
	d := uint64(14695981039346656037)
	for _, b := range e.Cmd {
		d ^= uint64(b)
		d *= 1099511628211
	}
	return e.Term, d, true
}

// TermsLed returns a copy of every term this replica has won,
// including terms led before a crash: the checker unions these across
// replicas to verify at-most-one-leader-per-term.
func (n *Node) TermsLed() []uint64 {
	out := make([]uint64, len(n.termsLed))
	copy(out, n.termsLed)
	return out
}

// Counters returns the replica's monotonic event counts.
func (n *Node) Counters() Counters { return n.ctr }
