package raft

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/gasperr"
	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// tnode is one replica under test: host, endpoint, raft node, and the
// applied state machine (index → command) it builds.
type tnode struct {
	host    *netsim.Host
	n       *Node
	applied map[uint64]string
}

// newCluster builds k replicas on a star fabric (learning switch, 5µs
// links) with stations 1..k, raft nodes started.
func newCluster(t *testing.T, k int, seed int64) (*netsim.Sim, *netsim.Network, []*tnode) {
	t.Helper()
	sim := netsim.NewSim(seed)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw", k, p4sim.SwitchConfig{LearnStations: true})
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]wire.StationID, k)
	for i := range peers {
		peers[i] = wire.StationID(i + 1)
	}
	nodes := make([]*tnode, k)
	for i := 0; i < k; i++ {
		h, err := netsim.NewHost(net, fmt.Sprintf("r%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(h, 0, sw, i, netsim.LinkConfig{Latency: 5 * netsim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		ep := transport.NewEndpoint(h, peers[i], transport.Config{})
		tn := &tnode{host: h, applied: make(map[uint64]string)}
		tn.n = New(Config{
			Peers: peers,
			EP:    ep,
			Seed:  uint64(seed),
			Apply: func(idx uint64, cmd []byte) { tn.applied[idx] = string(cmd) },
		})
		ep.Mux().Handle(wire.MsgRaft, tn.n.HandleFrame)
		nodes[i] = tn
	}
	return sim, net, nodes
}

// runUntil advances the simulation in 100µs slices until cond holds
// or limit elapses. Raft's timers are daemon events, so tests advance
// virtual time explicitly rather than draining with sim.Run.
func runUntil(sim *netsim.Sim, limit netsim.Duration, cond func() bool) bool {
	deadline := sim.Now().Add(limit)
	for sim.Now() < deadline {
		if cond() {
			return true
		}
		sim.RunFor(100 * netsim.Microsecond)
	}
	return cond()
}

// liveLeaders returns the running replicas currently in the Leader role.
func liveLeaders(nodes []*tnode) []*tnode {
	var out []*tnode
	for _, tn := range nodes {
		if tn.n.Running() && tn.n.State() == Leader {
			out = append(out, tn)
		}
	}
	return out
}

// awaitLeader runs until exactly one live leader exists and returns it.
func awaitLeader(t *testing.T, sim *netsim.Sim, nodes []*tnode) *tnode {
	t.Helper()
	if !runUntil(sim, 50*netsim.Millisecond, func() bool { return len(liveLeaders(nodes)) == 1 }) {
		t.Fatalf("no single leader after 50ms; leaders = %d", len(liveLeaders(nodes)))
	}
	return liveLeaders(nodes)[0]
}

// checkTermsLedUnique verifies election safety: across all replicas,
// no term was ever won by two different stations.
func checkTermsLedUnique(t *testing.T, nodes []*tnode) {
	t.Helper()
	winner := make(map[uint64]wire.StationID)
	for _, tn := range nodes {
		for _, term := range tn.n.TermsLed() {
			if prev, ok := winner[term]; ok && prev != tn.n.ID() {
				t.Fatalf("term %d led by both station %d and station %d", term, prev, tn.n.ID())
			}
			winner[term] = tn.n.ID()
		}
	}
}

// propose submits cmd to the leader and runs until every running
// replica has applied it.
func propose(t *testing.T, sim *netsim.Sim, nodes []*tnode, leader *tnode, cmd string) uint64 {
	t.Helper()
	var idx uint64
	var perr error
	done := false
	leader.n.Propose([]byte(cmd), func(i uint64, err error) { idx, perr, done = i, err, true })
	ok := runUntil(sim, 20*netsim.Millisecond, func() bool {
		if !done {
			return false
		}
		for _, tn := range nodes {
			if tn.n.Running() && tn.n.LastApplied() < idx {
				return false
			}
		}
		return true
	})
	if perr != nil {
		t.Fatalf("propose %q: %v", cmd, perr)
	}
	if !ok {
		t.Fatalf("propose %q: not applied everywhere after 20ms", cmd)
	}
	return idx
}

func TestElectionElectsSingleLeader(t *testing.T) {
	sim, _, nodes := newCluster(t, 3, 42)
	leader := awaitLeader(t, sim, nodes)
	// Let heartbeats settle, then every replica must agree on who leads.
	sim.RunFor(2 * netsim.Millisecond)
	for _, tn := range nodes {
		l, ok := tn.n.Leader()
		if !ok || l != leader.n.ID() {
			t.Fatalf("station %d believes leader=%d (known=%v), want %d",
				tn.n.ID(), l, ok, leader.n.ID())
		}
		if tn.n.Term() != leader.n.Term() {
			t.Fatalf("station %d at term %d, leader at %d", tn.n.ID(), tn.n.Term(), leader.n.Term())
		}
	}
	checkTermsLedUnique(t, nodes)
	if got := leader.n.Counters().BecameLeader; got == 0 {
		t.Fatal("leader counter BecameLeader = 0")
	}
}

func TestElectionSafetyAcrossPartition(t *testing.T) {
	sim, net, nodes := newCluster(t, 3, 7)
	first := awaitLeader(t, sim, nodes)

	// Isolate the leader: the majority side must elect a successor
	// while the old leader, unable to reach a quorum, keeps its role
	// in the stale term.
	net.SetLinkDown(first.host, 0, true)
	rest := make([]*tnode, 0, 2)
	for _, tn := range nodes {
		if tn != first {
			rest = append(rest, tn)
		}
	}
	second := awaitLeader(t, sim, rest)
	if second.n.Term() <= first.n.TermsLed()[len(first.n.TermsLed())-1] {
		t.Fatalf("successor term %d not beyond deposed leader's", second.n.Term())
	}

	// Heal: the old leader must step down on first contact with the
	// higher term, leaving exactly one leader.
	net.SetLinkDown(first.host, 0, false)
	if !runUntil(sim, 50*netsim.Millisecond, func() bool {
		return len(liveLeaders(nodes)) == 1 && first.n.State() == Follower
	}) {
		t.Fatalf("cluster did not converge to one leader after heal")
	}
	checkTermsLedUnique(t, nodes)
}

func TestReplicationAndFollowerCatchUp(t *testing.T) {
	sim, net, nodes := newCluster(t, 3, 11)
	leader := awaitLeader(t, sim, nodes)
	propose(t, sim, nodes, leader, "a")
	propose(t, sim, nodes, leader, "b")

	// Partition one follower; the quorum of two keeps committing.
	var lagger *tnode
	for _, tn := range nodes {
		if tn != leader {
			lagger = tn
			break
		}
	}
	net.SetLinkDown(lagger.host, 0, true)
	live := make([]*tnode, 0, 2)
	for _, tn := range nodes {
		if tn != lagger {
			live = append(live, tn)
		}
	}
	for i := 0; i < 4; i++ {
		propose(t, sim, live, leader, fmt.Sprintf("c%d", i))
	}

	// Heal. The lagger may have started elections while isolated and
	// pushed the term up, deposing the leader — any single leader with
	// full catch-up is acceptable; log matching is what's under test.
	net.SetLinkDown(lagger.host, 0, false)
	final := awaitLeader(t, sim, nodes)
	want := final.n.LastApplied()
	if !runUntil(sim, 50*netsim.Millisecond, func() bool {
		for _, tn := range nodes {
			if tn.n.LastApplied() < want {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("lagger did not catch up to applied index %d (at %d)", want, lagger.n.LastApplied())
	}

	// Log matching: identical (term, digest) at every applied index.
	for i := uint64(1); i <= want; i++ {
		refTerm, refDig, ok := final.n.EntryInfo(i)
		if !ok {
			t.Fatalf("leader missing entry %d", i)
		}
		for _, tn := range nodes {
			term, dig, ok := tn.n.EntryInfo(i)
			if !ok || term != refTerm || dig != refDig {
				t.Fatalf("station %d entry %d = (term %d, %x, %v), leader has (term %d, %x)",
					tn.n.ID(), i, term, dig, ok, refTerm, refDig)
			}
		}
	}
	// Applied state machines agree, and every proposed command landed.
	for _, tn := range nodes {
		for i := uint64(1); i <= want; i++ {
			if tn.applied[i] != final.applied[i] {
				t.Fatalf("station %d applied[%d] = %q, leader %q", tn.n.ID(), i, tn.applied[i], final.applied[i])
			}
		}
	}
	got := make(map[string]bool)
	for _, cmd := range final.applied {
		got[cmd] = true
	}
	for _, cmd := range []string{"a", "b", "c0", "c1", "c2", "c3"} {
		if !got[cmd] {
			t.Fatalf("committed command %q lost; applied = %v", cmd, final.applied)
		}
	}
	checkTermsLedUnique(t, nodes)
}

func TestProposeOnFollowerFailsNotLeader(t *testing.T) {
	sim, _, nodes := newCluster(t, 3, 3)
	leader := awaitLeader(t, sim, nodes)
	var follower *tnode
	for _, tn := range nodes {
		if tn != leader {
			follower = tn
			break
		}
	}
	var gotErr error
	called := false
	follower.n.Propose([]byte("x"), func(_ uint64, err error) { gotErr, called = err, true })
	if !called {
		t.Fatal("follower Propose must fail synchronously")
	}
	if !errors.Is(gotErr, ErrNotLeader) || !errors.Is(gotErr, gasperr.ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader wrapping gasperr.ErrNotLeader", gotErr)
	}
}

func TestCrashRestartReplaysLog(t *testing.T) {
	sim, net, nodes := newCluster(t, 3, 19)
	first := awaitLeader(t, sim, nodes)
	propose(t, sim, nodes, first, "pre1")
	propose(t, sim, nodes, first, "pre2")

	// Crash the leader: raft volatile state gone, link cut.
	first.n.Stop()
	net.SetLinkDown(first.host, 0, true)
	first.applied = make(map[uint64]string) // owner discards the state machine too
	if first.n.CommitIndex() != 0 || first.n.LastApplied() != 0 {
		t.Fatal("Stop must clear volatile commit/applied cursors")
	}

	rest := make([]*tnode, 0, 2)
	for _, tn := range nodes {
		if tn != first {
			rest = append(rest, tn)
		}
	}
	second := awaitLeader(t, sim, rest)
	propose(t, sim, rest, second, "post1")

	// Revive: the replayed log must rebuild the full state machine —
	// entries applied before the crash included.
	net.SetLinkDown(first.host, 0, false)
	first.n.Restart()
	want := second.n.LastApplied()
	if !runUntil(sim, 50*netsim.Millisecond, func() bool { return first.n.LastApplied() >= want }) {
		t.Fatalf("restarted replica applied %d, want >= %d", first.n.LastApplied(), want)
	}
	for i := uint64(1); i <= want; i++ {
		if first.applied[i] != second.applied[i] {
			t.Fatalf("replayed applied[%d] = %q, want %q", i, first.applied[i], second.applied[i])
		}
	}
	checkTermsLedUnique(t, nodes)
}

// TestCommitOnlyCurrentTerm white-boxes the §5.4.2 rule: a leader
// must not advance the commit index over an old-term entry by
// counting replicas, even when that entry sits on a quorum; the entry
// commits only transitively, once a current-term entry above it does.
func TestCommitOnlyCurrentTerm(t *testing.T) {
	_, _, nodes := newCluster(t, 3, 1)
	n := nodes[0].n // stations are 1 (self), 2, 3

	n.state = Leader
	n.currentTerm = 3
	n.log = []Entry{{Term: 1, Cmd: []byte("old")}}
	n.matchIndex[2] = 1 // old-term entry is on a quorum (self + station 2)

	n.advanceCommit()
	if n.commitIndex != 0 {
		t.Fatalf("commitIndex = %d; old-term entry must not commit by counting", n.commitIndex)
	}

	// A current-term entry on a quorum commits, and the old entry
	// beneath it commits transitively.
	n.log = append(n.log, Entry{Term: 3, Cmd: []byte("new")})
	n.matchIndex[2] = 2
	n.advanceCommit()
	if n.commitIndex != 2 {
		t.Fatalf("commitIndex = %d, want 2", n.commitIndex)
	}
	if nodes[0].applied[1] != "old" || nodes[0].applied[2] != "new" {
		t.Fatalf("applied = %v", nodes[0].applied)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	v := voteMsg{term: 9, lastLogIndex: 4, lastLogTerm: 2}
	if got, err := decodeVote(encodeVote(v)); err != nil || got != v {
		t.Fatalf("vote round trip: %+v, %v", got, err)
	}
	vr := voteReplyMsg{term: 9, granted: true}
	if got, err := decodeVoteReply(encodeVoteReply(vr)); err != nil || got != vr {
		t.Fatalf("vote reply round trip: %+v, %v", got, err)
	}
	a := appendMsg{term: 7, prevLogIndex: 3, prevLogTerm: 2, leaderCommit: 3,
		entries: []Entry{{Term: 7, Cmd: []byte("hello")}, {Term: 7}}}
	got, err := decodeAppend(encodeAppend(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.term != a.term || got.prevLogIndex != a.prevLogIndex ||
		got.prevLogTerm != a.prevLogTerm || got.leaderCommit != a.leaderCommit ||
		len(got.entries) != 2 || string(got.entries[0].Cmd) != "hello" ||
		got.entries[1].Term != 7 || len(got.entries[1].Cmd) != 0 {
		t.Fatalf("append round trip: %+v", got)
	}
	ar := appendReplyMsg{term: 7, success: true, matchIndex: 5}
	if got, err := decodeAppendReply(encodeAppendReply(ar)); err != nil || got != ar {
		t.Fatalf("append reply round trip: %+v, %v", got, err)
	}
	if _, err := decodeAppend([]byte{rmsgAppend, 0, 0}); err == nil {
		t.Fatal("short AppendEntries must fail to decode")
	}
}
